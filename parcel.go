// Package parcel is the public API of the PARCEL reproduction: a
// proxy-assisted mobile web-browsing system (Sivakumar et al., CoNEXT 2014)
// together with every substrate its evaluation needs — a discrete-event LTE
// network simulator, an LTE RRC radio-energy model, a from-scratch browsing
// engine (HTML/CSS parsing and a mini-JS interpreter), the DIR and
// cloud-browser baselines, a calibrated synthetic page-set generator, and
// the experiment harnesses that regenerate every table and figure of the
// paper.
//
// # Quick start
//
//	pages := parcel.GeneratePages(1, 1)
//	topo := parcel.BuildTopology(pages[0], parcel.DefaultNetwork())
//	run := parcel.RunPARCEL(topo, parcel.IND())
//	fmt.Printf("OLT %v, radio %.2f J\n", run.OLT, run.RadioJ)
//
// Compare against the traditional browser on a fresh topology:
//
//	topo2 := parcel.BuildTopology(pages[0], parcel.DefaultNetwork())
//	dir := parcel.RunDIR(topo2)
//
// The experiment entry points (Fig3 … Fig11, Headline, Model) reproduce the
// paper's evaluation; cmd/parcel-bench renders them as tables.
package parcel

import (
	"time"

	"github.com/parcel-go/parcel/internal/browser"
	"github.com/parcel-go/parcel/internal/cloudbrowser"
	"github.com/parcel-go/parcel/internal/core"
	"github.com/parcel-go/parcel/internal/dirbrowser"
	"github.com/parcel-go/parcel/internal/experiments"
	"github.com/parcel-go/parcel/internal/metrics"
	"github.com/parcel-go/parcel/internal/radio"
	"github.com/parcel-go/parcel/internal/scenario"
	"github.com/parcel-go/parcel/internal/sched"
	"github.com/parcel-go/parcel/internal/spdybrowser"
	"github.com/parcel-go/parcel/internal/webgen"
)

// Page is one synthetic evaluation page: its objects, domains and metadata.
type Page = webgen.Page

// NetworkParams describes the simulated topology (LTE access, proxy link,
// origin delays).
type NetworkParams = scenario.Params

// Topology is a built simulation network for one page.
type Topology = scenario.Topology

// PageRun is the measured outcome of loading one page with one scheme.
type PageRun = metrics.PageRun

// Schedule is a PARCEL bundle-transfer schedule (IND / PARCEL(X) / ONLD).
type Schedule = sched.Config

// RadioParams is the LTE RRC state-machine and power model.
type RadioParams = radio.Params

// RadioReport is the outcome of an RRC/energy simulation over a trace.
type RadioReport = radio.Report

// AnalyticModel is the paper's §6 closed-form latency/energy model.
type AnalyticModel = sched.Model

// ProxyConfig tunes the PARCEL proxy (schedule, completion heuristic, CPU).
type ProxyConfig = core.ProxyConfig

// ClientConfig tunes the PARCEL client browser.
type ClientConfig = core.ClientConfig

// CPUModel prices browser processing work (parse, JS execution, decode).
type CPUModel = browser.CPUModel

// ExperimentConfig controls the evaluation sweeps (page count, rounds,
// jitter, topology overrides).
type ExperimentConfig = experiments.Config

// GeneratePages deterministically generates n evaluation pages calibrated to
// the paper's page statistics (§7.2). n <= 0 yields the paper's 34.
func GeneratePages(seed int64, n int) []Page {
	return webgen.Generate(webgen.Spec{Seed: seed, NumPages: n})
}

// InteractivePage returns the gallery page used for interaction experiments.
func InteractivePage(pages []Page) Page { return webgen.InteractivePage(pages) }

// DefaultNetwork returns the paper-calibrated topology parameters: 78 ms LTE
// RTT, ≈6.75 Mbps downlink, 20 ms proxy↔origin RTT.
func DefaultNetwork() NetworkParams { return scenario.DefaultParams() }

// BuildTopology wires the simulation network for one page. Each run needs a
// fresh topology (the paper likewise flushes caches between runs, §7.3).
func BuildTopology(page Page, params NetworkParams) *Topology {
	return scenario.Build(page, params)
}

// IND returns the push-each-object schedule (Figure 5b).
func IND() Schedule { return sched.ConfigIND }

// Threshold returns the PARCEL(X) schedule with an X-byte bundle threshold
// (Figure 5d).
func Threshold(bytes int) Schedule {
	return sched.Config{Policy: sched.Threshold, ThresholdBytes: bytes}
}

// ONLD returns the single-batch-at-onload schedule (Figure 5c).
func ONLD() Schedule { return sched.ConfigONLD }

// DefaultProxyConfig returns the PARCEL proxy defaults (IND schedule, 3 s
// completion quiet period, proxy CPU profile).
func DefaultProxyConfig() ProxyConfig { return core.DefaultProxyConfig() }

// DefaultClientConfig returns the PARCEL client defaults (mobile CPU
// profile, replay rewrite enabled).
func DefaultClientConfig() ClientConfig { return core.DefaultClientConfig() }

// RunPARCEL loads the topology's page through a PARCEL proxy with the given
// schedule and returns the client-side measurements.
func RunPARCEL(topo *Topology, schedule Schedule) PageRun {
	cfg := core.DefaultProxyConfig()
	cfg.Sched = schedule
	return core.Run(topo, cfg, core.DefaultClientConfig())
}

// RunPARCELWith is RunPARCEL with full proxy/client control.
func RunPARCELWith(topo *Topology, proxyCfg ProxyConfig, clientCfg ClientConfig) PageRun {
	return core.Run(topo, proxyCfg, clientCfg)
}

// RunDIR loads the topology's page with the traditional mobile browser
// baseline (per-object HTTP over the cellular link, 6 connections/domain).
func RunDIR(topo *Topology) PageRun {
	return dirbrowser.Run(topo, dirbrowser.Options{FixedRandom: true})
}

// RunCB loads the topology's page with the cloud-heavy browser baseline
// (cloud-side JS, per-interaction snapshots, §8.2).
func RunCB(topo *Topology) PageRun {
	return cloudbrowser.Run(topo, cloudbrowser.DefaultConfig())
}

// RunSPDY loads the topology's page with the SPDY-transport baseline: one
// multiplexed connection per domain, client-side object identification
// (Table 1's SPDY-proxies column).
func RunSPDY(topo *Topology) PageRun {
	return spdybrowser.Run(topo, spdybrowser.Options{FixedRandom: true})
}

// NewParcelSession starts a PARCEL proxy and client on the topology without
// running it, for callers that drive interactions (see examples).
func NewParcelSession(topo *Topology, proxyCfg ProxyConfig, clientCfg ClientConfig) *core.Client {
	core.StartProxy(topo, proxyCfg)
	return core.NewClient(topo, clientCfg)
}

// DefaultLTERadio returns the calibrated LTE RRC parameters (α ≈ 0.74).
func DefaultLTERadio() RadioParams { return radio.DefaultLTE() }

// SimulateRadio runs the RRC state machine over device activity and returns
// occupancy and energy (the ARO-equivalent, §7.1).
func SimulateRadio(activities []radio.Activity, p RadioParams, horizon time.Duration) RadioReport {
	return radio.Simulate(activities, p, horizon)
}

// OptimalBundleSize evaluates Eq. 1: b* = α·sqrt(s·B), for download speed s
// (bytes/s) and page size B (bytes).
func OptimalBundleSize(p RadioParams, speedBps, pageBytes float64) float64 {
	m := sched.Model{Radio: p, SpeedBps: speedBps, PageBytes: pageBytes}
	return m.OptimalBundleSize()
}

// DefaultExperiments returns the standard evaluation configuration
// (34 pages, 5 rounds, LTE jitter).
func DefaultExperiments() ExperimentConfig { return experiments.DefaultConfig() }

// Headline computes the abstract-level result: median OLT and radio-energy
// reductions of PARCEL vs DIR (paper: 49.6% and 65%).
func Headline(cfg ExperimentConfig) experiments.Summary { return experiments.Headline(cfg) }
