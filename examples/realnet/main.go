// Realnet: the whole PARCEL system over real TCP on loopback — a replay
// origin server, the PARCEL proxy, and a client whose proxy connection is
// shaped like the paper's LTE access with netem (the dummynet equivalent,
// §7.3). This is the deployable path: the same split of functionality as the
// simulation, running on net.Conn.
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"github.com/parcel-go/parcel/internal/netem"
	"github.com/parcel-go/parcel/internal/parcelnet"
	"github.com/parcel-go/parcel/internal/replay"
	"github.com/parcel-go/parcel/internal/sched"
	"github.com/parcel-go/parcel/internal/webgen"
)

func main() {
	// 1. Record a page set into a replay archive and serve it.
	pages := webgen.Generate(webgen.Spec{Seed: 42, NumPages: 4})
	page := pages[0]
	archive := replay.FromPages(page)
	origin, err := parcelnet.StartOrigin("127.0.0.1:0", replay.Rewriting{Store: archive})
	if err != nil {
		log.Fatal(err)
	}
	defer origin.Close()
	fmt.Printf("origin:  %s (%d objects, %.2f MB)\n", origin.Addr(), archive.Len(), float64(archive.TotalBytes())/1e6)

	// 2. Start the PARCEL proxy against the origin.
	proxy, err := parcelnet.StartProxy("127.0.0.1:0", parcelnet.ProxyConfig{
		OriginAddr:  origin.Addr(),
		Sched:       sched.Config512K,
		QuietPeriod: 2 * time.Second,
		FixedRandom: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer proxy.Close()
	fmt.Printf("proxy:   %s (schedule %s)\n", proxy.Addr(), sched.Config512K)

	// 3. Connect through an LTE-shaped link and load the page.
	lteDial := func(network, addr string) (net.Conn, error) {
		conn, err := net.Dial(network, addr)
		if err != nil {
			return nil, err
		}
		return netem.Wrap(conn, netem.LTE()), nil
	}
	client, err := parcelnet.Dial(proxy.Addr(), lteDial)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	start := time.Now()
	if err := client.RequestPage(page.MainURL, "realnet-example/1.0", "720x1280"); err != nil {
		log.Fatal(err)
	}
	note, err := client.WaitComplete(60 * time.Second)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nloaded %s over shaped LTE:\n", page.MainURL)
	fmt.Printf("  objects pushed:   %d (page has %d)\n", note.ObjectsPushed, page.ObjectCount)
	fmt.Printf("  bundles received: %d\n", client.BundlesReceived)
	fmt.Printf("  wire bytes:       %.2f MB\n", float64(client.BytesReceived)/1e6)
	fmt.Printf("  first byte:       %v\n", client.FirstAt.Sub(start).Round(time.Millisecond))
	fmt.Printf("  complete:         %v\n", client.CompleteAt.Sub(start).Round(time.Millisecond))
	fmt.Printf("  fallback requests: %d\n", client.Fallbacks)

	// 4. The client store now holds the page; a WebView would render from it.
	hero, err := client.Object(page.MainURL, time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  main document:    %d bytes of %s\n", len(hero.Body), hero.ContentType)
}
