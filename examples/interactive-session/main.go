// Interactive session: the §8.2 experiment. A user loads a shop page and
// clicks through a product gallery once per minute. PARCEL and DIR execute
// the click handlers locally (the images were prefetched at first download),
// so clicks cost no network traffic; the cloud-heavy browser (CB) relays
// every click to the cloud and pays a radio wake-up each time — which is why
// its cumulative energy overtakes everyone by the end of the session
// (Figure 8).
package main

import (
	"fmt"

	"github.com/parcel-go/parcel"
	"github.com/parcel-go/parcel/internal/experiments"
)

func main() {
	cfg := parcel.DefaultExperiments()
	cfg.Pages = 8
	cfg.Runs = 1
	cfg.Jitter = 0

	r := experiments.Fig8(cfg)
	fmt.Printf("interactive page: %s (%d clicks, 60 s apart)\n\n", r.Page, r.Clicks)

	fmt.Printf("cumulative radio energy (J):\n%-8s", "event")
	for _, s := range r.Results {
		fmt.Printf(" %8s", s.Scheme)
	}
	fmt.Println()
	for i := range r.Results[0].Points {
		fmt.Printf("%-8s", r.Results[0].Points[i].Label)
		for _, s := range r.Results {
			fmt.Printf(" %8.2f", s.Points[i].CumRadioJ)
		}
		fmt.Println()
	}

	fmt.Printf("\ncumulative total device energy (J, screen excluded):\n%-8s", "event")
	for _, s := range r.Results {
		fmt.Printf(" %8s", s.Scheme)
	}
	fmt.Println()
	for i := range r.Results[0].Points {
		fmt.Printf("%-8s", r.Results[0].Points[i].Label)
		for _, s := range r.Results {
			fmt.Printf(" %8.2f", s.Points[i].CumTotalJ)
		}
		fmt.Println()
	}

	cb, _ := r.SchemeNamed("CB")
	p, _ := r.SchemeNamed("PARCEL")
	fmt.Printf("\nCB pays %.2f J of radio per click on average; PARCEL pays %.2f J.\n",
		(cb.Points[len(cb.Points)-1].CumRadioJ-cb.Points[0].CumRadioJ)/float64(r.Clicks),
		(p.Points[len(p.Points)-1].CumRadioJ-p.Points[0].CumRadioJ)/float64(r.Clicks))
}
