// Quickstart: load one synthetic page with the traditional mobile browser
// (DIR) and with PARCEL on a simulated LTE network, and compare onload time,
// total load time, radio energy and client request counts — the comparison
// behind the paper's headline result (§8.1).
package main

import (
	"fmt"

	"github.com/parcel-go/parcel"
)

func main() {
	// A deterministic page set calibrated to the paper's Alexa statistics.
	pages := parcel.GeneratePages(1, 4)
	page := pages[2]
	fmt.Printf("page %s: %d objects, %.2f MB over %d domains\n\n",
		page.Name, page.ObjectCount, float64(page.TotalBytes)/1e6, len(page.Domains))

	// Each scheme runs on a fresh topology: same page, same LTE access,
	// caches cold (the paper's per-round methodology, §7.3).
	dir := parcel.RunDIR(parcel.BuildTopology(page, parcel.DefaultNetwork()))
	ind := parcel.RunPARCEL(parcel.BuildTopology(page, parcel.DefaultNetwork()), parcel.IND())
	onld := parcel.RunPARCEL(parcel.BuildTopology(page, parcel.DefaultNetwork()), parcel.ONLD())

	fmt.Printf("%-14s %8s %8s %10s %10s %8s\n", "scheme", "OLT", "TLT", "radio (J)", "requests", "conns")
	for _, run := range []parcel.PageRun{dir, ind, onld} {
		fmt.Printf("%-14s %7.2fs %7.2fs %10.2f %10d %8d\n",
			run.Scheme, run.OLT.Seconds(), run.TLT.Seconds(), run.RadioJ,
			run.HTTPRequests, run.ConnsOpened)
	}

	fmt.Printf("\nPARCEL(IND) vs DIR: OLT -%.0f%%, radio energy -%.0f%%\n",
		100*(1-ind.OLT.Seconds()/dir.OLT.Seconds()),
		100*(1-ind.RadioJ/dir.RadioJ))
	fmt.Printf("RRC transitions: DIR %d vs PARCEL %d (fewer transitions = friendlier to the radio)\n",
		dir.Radio.Transitions, ind.Radio.Transitions)
}
