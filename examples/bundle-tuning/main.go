// Bundle tuning: explore PARCEL's latency/energy trade-off (§4.4, §6, §8.3).
// The proxy can push objects individually (IND), in fixed-size bundles
// (PARCEL(X)) or as one batch at onload (ONLD). The §6 model predicts the
// energy-optimal bundle size b* = α·sqrt(s·B); this example sweeps measured
// bundle sizes around it on a large page and prints both the analytic curve
// and the simulated outcomes.
package main

import (
	"fmt"
	"time"

	"github.com/parcel-go/parcel"
)

func main() {
	pages := parcel.GeneratePages(7, 34)
	// Pick a large page — bundling matters most there (Figure 9c).
	page := pages[0]
	for _, p := range pages {
		if p.TotalBytes > page.TotalBytes {
			page = p
		}
	}
	fmt.Printf("page %s: %.2f MB, %d objects\n\n", page.Name, float64(page.TotalBytes)/1e6, page.ObjectCount)

	radio := parcel.DefaultLTERadio()
	speed := 6e6 / 8.0 // ≈ the observed median download speed (§8.3)
	bStar := parcel.OptimalBundleSize(radio, speed, float64(page.TotalBytes))
	fmt.Printf("analytic: alpha=%.3f, b* = %.0f KB for this page at 6 Mbps\n\n", radio.Alpha(), bStar/1e3)

	fmt.Printf("%-14s %8s %8s %10s\n", "schedule", "OLT", "TLT", "radio (J)")
	schedules := []parcel.Schedule{
		parcel.IND(),
		parcel.Threshold(256 << 10),
		parcel.Threshold(512 << 10),
		parcel.Threshold(int(bStar)),
		parcel.Threshold(2 << 20),
		parcel.ONLD(),
	}
	var baseline parcel.PageRun
	for i, s := range schedules {
		topo := parcel.BuildTopology(page, parcel.DefaultNetwork())
		run := parcel.RunPARCEL(topo, s)
		if i == 0 {
			baseline = run
		}
		marker := ""
		if s == parcel.Threshold(int(bStar)) {
			marker = "  <- analytic b*"
		}
		fmt.Printf("%-14s %7.2fs %7.2fs %10.2f%s\n", run.Scheme, run.OLT.Seconds(), run.TLT.Seconds(), run.RadioJ, marker)
	}

	fmt.Printf("\nrelative to IND: larger bundles trade onload latency for fewer radio\n")
	fmt.Printf("state transitions; IND baseline OLT %.2fs, energy %.2f J.\n",
		baseline.OLT.Seconds(), baseline.RadioJ)
	_ = time.Second
}
