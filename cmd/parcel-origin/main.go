// Command parcel-origin serves a recorded page archive over HTTP — the
// web-page-replay equivalent (§7.3). Every logical domain in the archive is
// answered from this one listener via the Host header.
//
// With -archive it serves a previously saved archive; otherwise it generates
// the synthetic evaluation page set and serves (and optionally saves) it.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"

	"github.com/parcel-go/parcel/internal/parcelnet"
	"github.com/parcel-go/parcel/internal/replay"
	"github.com/parcel-go/parcel/internal/webgen"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8081", "listen address")
	archivePath := flag.String("archive", "", "archive file to serve (default: generate pages)")
	save := flag.String("save", "", "write the generated archive to this file")
	seed := flag.Int64("seed", 1, "page-set generator seed")
	pages := flag.Int("pages", 34, "number of generated pages")
	flag.Parse()

	var archive *replay.Archive
	if *archivePath != "" {
		var err error
		archive, err = replay.Load(*archivePath)
		if err != nil {
			log.Fatalf("parcel-origin: %v", err)
		}
		log.Printf("loaded %d objects (%0.1f MB) from %s", archive.Len(), float64(archive.TotalBytes())/1e6, *archivePath)
	} else {
		set := webgen.Generate(webgen.Spec{Seed: *seed, NumPages: *pages})
		archive = replay.FromPages(set...)
		log.Printf("generated %d pages, %d objects (%0.1f MB)", len(set), archive.Len(), float64(archive.TotalBytes())/1e6)
		for _, p := range set {
			fmt.Printf("  %s\n", p.MainURL)
		}
		if *save != "" {
			if err := archive.Save(*save); err != nil {
				log.Fatalf("parcel-origin: save: %v", err)
			}
			log.Printf("saved archive to %s", *save)
		}
	}

	origin, err := parcelnet.StartOrigin(*addr, replay.Rewriting{Store: archive})
	if err != nil {
		log.Fatalf("parcel-origin: %v", err)
	}
	log.Printf("serving on %s", origin.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	origin.Close()
}
