// Command parcel-proxy runs the real-network PARCEL proxy (§4.2): it accepts
// client connections, performs object identification by parsing and
// executing pages fetched from the origin, and pushes MHTML bundles per the
// configured schedule.
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"github.com/parcel-go/parcel/internal/parcelnet"
	"github.com/parcel-go/parcel/internal/sched"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	origin := flag.String("origin", "127.0.0.1:8081", "origin (replay server) address")
	policy := flag.String("sched", "ind", `bundle schedule: "ind", "onld", or a byte threshold like "512K"/"1M"`)
	quiet := flag.Duration("quiet", 3*time.Second, "completion-heuristic inactivity window (§4.5)")
	verbose := flag.Bool("v", false, "log per-session activity")
	flag.Parse()

	cfg := parcelnet.ProxyConfig{
		OriginAddr:  *origin,
		Sched:       parseSched(*policy),
		QuietPeriod: *quiet,
		FixedRandom: true,
	}
	if *verbose {
		cfg.Logf = log.Printf
	}
	proxy, err := parcelnet.StartProxy(*addr, cfg)
	if err != nil {
		log.Fatalf("parcel-proxy: %v", err)
	}
	log.Printf("PARCEL proxy on %s (origin %s, schedule %s)", proxy.Addr(), *origin, cfg.Sched)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	proxy.Close()
}

// parseSched accepts "ind", "onld", or a threshold like "512K", "1M", "300000".
func parseSched(s string) sched.Config {
	switch strings.ToLower(s) {
	case "ind":
		return sched.ConfigIND
	case "onld":
		return sched.ConfigONLD
	}
	mult := 1
	num := s
	switch {
	case strings.HasSuffix(strings.ToUpper(s), "K"):
		mult, num = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(strings.ToUpper(s), "M"):
		mult, num = 1<<20, s[:len(s)-1]
	}
	n, err := strconv.Atoi(num)
	if err != nil || n <= 0 {
		log.Fatalf("parcel-proxy: bad -sched %q", s)
	}
	return sched.Config{Policy: sched.Threshold, ThresholdBytes: n * mult}
}
