// Command parcel-client loads a page through a real-network PARCEL proxy and
// reports what arrived: bundles, objects, bytes, and timings. With -lte it
// shapes the proxy connection like the paper's cellular access (§7.2).
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"time"

	"github.com/parcel-go/parcel/internal/netem"
	"github.com/parcel-go/parcel/internal/parcelnet"
)

func main() {
	proxy := flag.String("proxy", "127.0.0.1:8080", "PARCEL proxy address")
	url := flag.String("url", "", "page URL to load (required)")
	lte := flag.Bool("lte", false, "shape the connection like the paper's LTE access")
	mux := flag.Bool("mux", false, "use the parcelmux stream layer (prioritized, flow-controlled pushes)")
	wait := flag.Duration("wait", 30*time.Second, "completion wait budget")
	list := flag.Bool("list", false, "list every received object")
	flag.Parse()
	if *url == "" {
		log.Fatal("parcel-client: -url required")
	}

	dial := net.Dial
	if *lte {
		dial = func(network, addr string) (net.Conn, error) {
			conn, err := net.Dial(network, addr)
			if err != nil {
				return nil, err
			}
			return netem.Wrap(conn, netem.LTE()), nil
		}
	}

	start := time.Now()
	client, err := parcelnet.DialConfig(*proxy, parcelnet.ClientConfig{Dial: dial, Mux: *mux})
	if err != nil {
		log.Fatalf("parcel-client: %v", err)
	}
	defer client.Close()
	if err := client.RequestPage(*url, "parcel-client/1.0", "720x1280"); err != nil {
		log.Fatalf("parcel-client: %v", err)
	}
	note, err := client.WaitComplete(*wait)
	if err != nil {
		log.Fatalf("parcel-client: %v", err)
	}
	elapsed := time.Since(start)

	fmt.Printf("page:      %s\n", *url)
	fmt.Printf("objects:   %d pushed (%.2f MB page bytes)\n", note.ObjectsPushed, float64(note.BytesPushed)/1e6)
	if *mux {
		fmt.Printf("streams:   %.2f MB on the wire, resumed %d\n", float64(client.BytesReceived)/1e6, note.ObjectsResumed)
		if !client.FirstCriticalAt.IsZero() {
			fmt.Printf("first critical: %v\n", client.FirstCriticalAt.Sub(start))
		}
	} else {
		fmt.Printf("bundles:   %d (%.2f MB on the wire)\n", client.BundlesReceived, float64(client.BytesReceived)/1e6)
	}
	fmt.Printf("first byte: %v\n", client.FirstAt.Sub(start))
	fmt.Printf("complete:  %v (wall %v)\n", client.CompleteAt.Sub(start), elapsed)
	fmt.Printf("fallbacks: %d\n", client.Fallbacks)
	if *list {
		for i, u := range client.Objects() {
			fmt.Printf("  %3d %s\n", i+1, u)
		}
	}
}
