// Command parcel-vet runs the repository's custom go/analysis suite
// (determinism, pooldiscipline, noclosure, wireerr; see internal/analysis).
//
// It speaks the `go vet -vettool` unitchecker protocol, so the same binary
// works both ways:
//
//	go run ./cmd/parcel-vet ./...          # direct: re-execs via go vet
//	go vet -vettool=$(which parcel-vet) ./...
//
// When invoked with package patterns, parcel-vet re-executes itself through
// `go vet -vettool=<self>`, which handles loading, type checking, and export
// data; when the go command invokes it back with a *.cfg unit file (or -V),
// it runs the unitchecker.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"github.com/parcel-go/parcel/internal/analysis"
)

func main() {
	args := os.Args[1:]
	direct := len(args) == 0
	for _, a := range args {
		if !strings.HasPrefix(a, "-") && !strings.HasSuffix(a, ".cfg") {
			direct = true
		}
	}
	if !direct {
		unitchecker.Main(analysis.Analyzers()...) // never returns
	}

	if len(args) == 0 {
		args = []string{"./..."}
	}
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "parcel-vet: cannot locate own binary: %v\n", err)
		os.Exit(2)
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + exe}, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if _, ok := err.(*exec.ExitError); !ok {
			fmt.Fprintf(os.Stderr, "parcel-vet: %v\n", err)
		}
		os.Exit(1)
	}
}
