// Command parcel-escape is the compiler-escape budget gate: it rebuilds the
// hot-path packages with -gcflags=-m, attributes every "escapes to heap" /
// "moved to heap" diagnostic to the declared hot functions, and compares the
// per-function counts against the checked-in budget (escape_budget.json at
// the repository root). The hot set is the code whose zero-allocation
// discipline the benchmarks depend on: the minijs interpreter loop, the
// eventsim step, the simnet sender, and the parcelnet wire encode/decode
// path. A count above budget fails the gate — an accidental closure capture
// or interface boxing on these paths is a performance regression even when
// every test stays green.
//
// Escape analysis output is a compiler implementation detail, so the budget
// records the Go release it was measured with: the gate enforces on a
// matching major.minor toolchain and downgrades to a warning otherwise.
// Run with -update after a deliberate change (or a toolchain bump) to
// re-measure and rewrite the budget.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// hotFunc is one declared hot-path function: a package (repo-relative import
// directory), a receiver type name ("" for plain functions), and the method
// or function name.
type hotFunc struct {
	pkg  string
	recv string
	name string
}

// key is the budget-file identity: pkg.(*Recv).name / pkg.name.
func (h hotFunc) key() string {
	if h.recv == "" {
		return h.pkg + "." + h.name
	}
	return h.pkg + ".(*" + h.recv + ")." + h.name
}

// hotSet is the declared hot path. Adding a function here puts it under the
// gate; removing one is a declaration that its allocations stopped mattering
// and belongs in the same change that relaxes it.
var hotSet = []hotFunc{
	// minijs interpreter: one step per budget tick, frames and arg slices
	// pooled.
	{"internal/minijs", "Interp", "step"},
	{"internal/minijs", "Interp", "exec"},
	{"internal/minijs", "Interp", "execBlock"},
	{"internal/minijs", "Interp", "execScope"},
	{"internal/minijs", "Interp", "newFrame"},
	{"internal/minijs", "Interp", "freeFrame"},
	{"internal/minijs", "Interp", "getArgs"},
	{"internal/minijs", "Interp", "putArgs"},

	// eventsim: the virtual-clock dispatch loop.
	{"internal/eventsim", "Simulator", "Step"},

	// simnet: the per-segment sender path.
	{"internal/simnet", "sender", "pump"},
	{"internal/simnet", "sender", "onSegmentArrived"},
	{"internal/simnet", "sender", "onAck"},
	{"internal/simnet", "Conn", "Send"},

	// parcelnet wire path: hpack-style meta coding and the mux frame
	// assembler, plus the benchmark steps that pin them.
	{"internal/parcelnet", "MetaEncoder", "AppendMeta"},
	{"internal/parcelnet", "MetaDecoder", "ReadMeta"},
	{"internal/parcelnet", "muxSender", "nextFrame"},
	{"internal/parcelnet", "WireBench", "EncodeStep"},
	{"internal/parcelnet", "WireBench", "DecodeStep"},
}

// budgetFile is the checked-in gate state.
type budgetFile struct {
	// Go is the major.minor toolchain release the counts were measured with.
	Go string `json:"go"`
	// Escapes maps hotFunc keys to the number of heap-escape diagnostics
	// the compiler reported inside the function body.
	Escapes map[string]int `json:"escapes"`
}

// escapeRe matches one -gcflags=-m diagnostic line.
var escapeRe = regexp.MustCompile(`^(.+\.go):(\d+):\d+: (.*)$`)

func main() {
	update := flag.Bool("update", false, "re-measure and rewrite the budget file")
	budgetPath := flag.String("budget", "escape_budget.json", "budget file, relative to the repository root")
	flag.Parse()

	root, err := repoRoot()
	if err != nil {
		fatalf("locate repository root: %v", err)
	}
	counts, err := measure(root)
	if err != nil {
		fatalf("%v", err)
	}

	path := filepath.Join(root, *budgetPath)
	if *update {
		if err := writeBudget(path, counts); err != nil {
			fatalf("write budget: %v", err)
		}
		fmt.Printf("parcel-escape: wrote %s for go %s\n", *budgetPath, goMinor())
		printCounts(counts)
		return
	}

	var budget budgetFile
	data, err := os.ReadFile(path)
	if err != nil {
		fatalf("read budget: %v (run parcel-escape -update to create it)", err)
	}
	if err := json.Unmarshal(data, &budget); err != nil {
		fatalf("parse budget: %v", err)
	}

	if budget.Go != goMinor() {
		fmt.Fprintf(os.Stderr,
			"parcel-escape: WARNING: budget measured with go %s, running go %s — escape analysis differs across releases, gate not enforced (run -update on the pinned toolchain)\n",
			budget.Go, goMinor())
		printCounts(counts)
		return
	}

	failed := false
	for _, h := range hotSet {
		k := h.key()
		want, ok := budget.Escapes[k]
		if !ok {
			fmt.Fprintf(os.Stderr, "parcel-escape: %s is in the hot set but not in the budget (run -update)\n", k)
			failed = true
			continue
		}
		got := counts[k]
		switch {
		case got > want:
			fmt.Fprintf(os.Stderr, "parcel-escape: FAIL %s: %d heap escapes, budget %d\n", k, got, want)
			failed = true
		case got < want:
			fmt.Fprintf(os.Stderr, "parcel-escape: note: %s improved to %d escapes (budget %d) — run -update to ratchet\n", k, got, want)
		}
	}
	for k := range budget.Escapes {
		if !inHotSet(k) {
			fmt.Fprintf(os.Stderr, "parcel-escape: budget entry %s is not in the hot set (run -update)\n", k)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Printf("parcel-escape: %d hot functions within budget (go %s)\n", len(hotSet), goMinor())
}

func inHotSet(key string) bool {
	for _, h := range hotSet {
		if h.key() == key {
			return true
		}
	}
	return false
}

// repoRoot resolves the module root so package patterns and diagnostic paths
// are stable regardless of the invoking directory.
func repoRoot() (string, error) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return "", err
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("not inside a module")
	}
	return filepath.Dir(gomod), nil
}

// measure rebuilds the hot packages with -gcflags=-m and attributes heap
// escapes to hot functions by file:line containment.
func measure(root string) (map[string]int, error) {
	pkgs := map[string]bool{}
	var args []string
	for _, h := range hotSet {
		if !pkgs[h.pkg] {
			pkgs[h.pkg] = true
			args = append(args, "./"+h.pkg)
		}
	}
	spans, err := functionSpans(root)
	if err != nil {
		return nil, err
	}

	cmd := exec.Command("go", append([]string{"build", "-gcflags=-m"}, args...)...)
	cmd.Dir = root
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go build -gcflags=-m: %v\n%s", err, out.String())
	}

	counts := map[string]int{}
	for _, h := range hotSet {
		counts[h.key()] = 0
	}
	for _, line := range strings.Split(out.String(), "\n") {
		m := escapeRe.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		msg := m[3]
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		ln, _ := strconv.Atoi(m[2])
		file := filepath.ToSlash(m[1])
		for key, span := range spans {
			if span.file == file && ln >= span.start && ln <= span.end {
				counts[key]++
				break
			}
		}
	}
	return counts, nil
}

// span is one hot function's body extent.
type span struct {
	file       string // repo-relative, slash-separated
	start, end int
}

// functionSpans parses the hot packages' sources and locates each declared
// hot function.
func functionSpans(root string) (map[string]span, error) {
	out := map[string]span{}
	fset := token.NewFileSet()
	for _, h := range hotSet {
		dir := filepath.Join(root, filepath.FromSlash(h.pkg))
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		found := false
		for _, e := range entries {
			name := e.Name()
			if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, 0)
			if err != nil {
				return nil, err
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Name.Name != h.name || recvName(fd) != h.recv {
					continue
				}
				start := fset.Position(fd.Pos())
				end := fset.Position(fd.End())
				out[h.key()] = span{
					file:  h.pkg + "/" + name,
					start: start.Line,
					end:   end.Line,
				}
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("hot function %s not found in %s: update hotSet", h.key(), h.pkg)
		}
	}
	return out, nil
}

// recvName extracts a FuncDecl's receiver type name ("" for functions).
func recvName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

func writeBudget(path string, counts map[string]int) error {
	b := budgetFile{Go: goMinor(), Escapes: counts}
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// goMinor is the running toolchain's major.minor ("1.24").
func goMinor() string {
	v := strings.TrimPrefix(runtime.Version(), "go")
	parts := strings.SplitN(v, ".", 3)
	if len(parts) >= 2 {
		return parts[0] + "." + parts[1]
	}
	return v
}

func printCounts(counts map[string]int) {
	var keys []string
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %-50s %d\n", k, counts[k])
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "parcel-escape: "+format+"\n", args...)
	os.Exit(1)
}
