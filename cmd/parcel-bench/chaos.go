package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"time"

	"github.com/parcel-go/parcel/internal/experiments"
	"github.com/parcel-go/parcel/internal/httpsim"
	"github.com/parcel-go/parcel/internal/metrics"
	"github.com/parcel-go/parcel/internal/parcelnet"
	"github.com/parcel-go/parcel/internal/replay"
	"github.com/parcel-go/parcel/internal/resilience"
	"github.com/parcel-go/parcel/internal/sched"
	"github.com/parcel-go/parcel/internal/webgen"
)

// chaosArm is one arm of the chaos run in BENCH_chaos.json: the loadgen
// numbers plus the resilience counters that prove the run was hostile and the
// fleet absorbed it.
type chaosArm struct {
	loadgenArm

	FaultsInjected int64 `json:"faults_injected"`
	Retries        int64 `json:"retries"`
	StaleServes    int64 `json:"stale_serves"`
	BreakerOpens   int64 `json:"breaker_opens"`
	DrainedNotices int64 `json:"drained_notices"`
	DrainedClients int64 `json:"drained_clients"`

	// PhaseP99MS splits p99 completion latency by phase: "0" is steady state,
	// "1" is sessions that completed after the drain began (tcp arm only).
	PhaseP99MS map[string]float64 `json:"phase_p99_ms,omitempty"`
}

// chaosReport is the JSON shape the chaosgen target writes.
type chaosReport struct {
	Tenants int        `json:"tenants"`
	Arms    []chaosArm `json:"arms"`
}

func chaosArmFromReport(name string, tenants, pages int, r metrics.FleetReport, wall time.Duration) chaosArm {
	arm := chaosArm{
		loadgenArm:     armFromReport(name, tenants, pages, r, wall),
		Retries:        r.Retries,
		StaleServes:    r.StaleServes,
		BreakerOpens:   r.BreakerOpens,
		DrainedClients: r.Drained,
	}
	if len(r.PhaseP99) > 0 {
		arm.PhaseP99MS = make(map[string]float64, len(r.PhaseP99))
		for phase, p99 := range r.PhaseP99 {
			arm.PhaseP99MS[strconv.Itoa(phase)] = float64(p99) / float64(time.Millisecond)
		}
	}
	return arm
}

// benchChaos runs the chaos harness on both arms — the deterministic fleet
// simulation under injected origin faults, and the real-TCP fleet under
// origin faults plus a mid-run proxy drain and restart — and writes
// BENCH_chaos.json. Gates: every session completes on both arms, the origins
// actually injected faults, the retry path actually fired, the tcp drain
// actually notified sessions, and no fallback write failed silently.
func benchChaos(w io.Writer, tenants int, seed int64, path string) error {
	header(w, "chaosgen: fleet under origin faults, proxy drain, and restart")
	if tenants <= 0 {
		tenants = 200
	}
	const nPages = 4

	// Sim arm: a startup flap plus a steady error rate; the retry budget is
	// sized so every fetch survives. Deterministic from the seed.
	t0 := time.Now()
	sim := experiments.LoadgenSim(experiments.LoadgenSimConfig{
		Tenants:    tenants,
		Pages:      nPages,
		Seed:       seed,
		Sched:      sched.ConfigONLD,
		CacheBytes: 256 << 20,
		OriginFaults: httpsim.OriginFaults{
			ErrorRate: 0.05,
			Flaps:     []httpsim.FlapWindow{{Start: 0, End: 300 * time.Millisecond}},
		},
		Resilience: &resilience.Policy{
			Timeout:          10 * time.Second,
			MaxRetries:       5,
			BackoffBase:      200 * time.Millisecond,
			BackoffMax:       time.Second,
			FailureThreshold: 1 << 20,
		},
	})
	simWall := time.Since(t0)
	simFaults := int64(sim.Faults.Errors + sim.Faults.Stalls + sim.Faults.Partials + sim.Faults.FlapErrors)

	// TCP arm: the same pages through a sharded proxy that is drained and
	// restarted while the staggered fleet is mid-flight, with the origin
	// flapping at startup and erroring throughout.
	pages := webgen.Generate(webgen.Spec{Seed: seed, NumPages: nPages})
	archive := replay.FromPages(pages...)
	urls := make([]string, len(pages))
	for i, p := range pages {
		urls[i] = p.MainURL
	}
	t1 := time.Now()
	tcp, err := parcelnet.RunChaosLoadgen(parcelnet.ChaosConfig{
		Loadgen: parcelnet.LoadgenConfig{
			Clients:     tenants,
			Store:       replay.Rewriting{Store: archive},
			URLs:        urls,
			Sched:       sched.ConfigONLD,
			Shards:      4,
			CacheBytes:  256 << 20,
			FixedRandom: true,
			Mux:         true,
			Stagger:     2 * time.Millisecond,
		},
		Faults: replay.OriginFaults{
			ErrorRate: 0.1,
			Seed:      seed,
			Flaps:     []replay.FlapWindow{{Start: 0, End: 80 * time.Millisecond}},
		},
		Resilience: resilience.Policy{
			MaxRetries:       3,
			BackoffBase:      20 * time.Millisecond,
			BackoffMax:       200 * time.Millisecond,
			FailureThreshold: 1 << 20,
		},
		DrainAfter:   150 * time.Millisecond,
		DrainTimeout: 300 * time.Millisecond,
	})
	if err != nil {
		return fmt.Errorf("tcp chaos loadgen: %w", err)
	}
	tcpWall := time.Since(t1)

	simArm := chaosArmFromReport("sim", tenants, nPages, sim.Report, simWall)
	simArm.FaultsInjected = simFaults
	tcpArm := chaosArmFromReport("tcp", tenants, nPages, tcp.Report, tcpWall)
	tcpArm.FaultsInjected = tcp.Faults.Total()
	tcpArm.StaleServes += tcp.Cache.StaleServes
	tcpArm.DrainedNotices = tcp.DrainedSessions

	rep := chaosReport{Tenants: tenants, Arms: []chaosArm{simArm, tcpArm}}
	for _, arm := range rep.Arms {
		fmt.Fprintf(w, "%-4s %4d tenants: completed=%d failed=%d p50=%.0fms p99=%.0fms faults=%d retries=%d stale=%d breaker=%d drained=%d wall=%.2fs\n",
			arm.Arm, arm.Tenants, arm.Complete, arm.Failed, arm.P50MS, arm.P99MS,
			arm.FaultsInjected, arm.Retries, arm.StaleServes, arm.BreakerOpens,
			arm.DrainedClients, arm.WallSeconds)
	}
	if len(tcpArm.PhaseP99MS) > 0 {
		fmt.Fprintf(w, "tcp phase p99:")
		for _, phase := range []string{"0", "1"} {
			if v, ok := tcpArm.PhaseP99MS[phase]; ok {
				fmt.Fprintf(w, " phase%s=%.0fms", phase, v)
			}
		}
		fmt.Fprintln(w)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", path)

	for _, arm := range rep.Arms {
		if arm.Failed > 0 || arm.Complete != tenants {
			return fmt.Errorf("chaosgen %s arm: %d/%d sessions completed (%d failed)",
				arm.Arm, arm.Complete, arm.Tenants, arm.Failed)
		}
		if arm.FaultsInjected == 0 {
			return fmt.Errorf("chaosgen %s arm: origins injected no faults — the run was not chaotic", arm.Arm)
		}
		if arm.Retries == 0 {
			return fmt.Errorf("chaosgen %s arm: resilient fetch path never retried", arm.Arm)
		}
		if arm.FallbackWriteErrors > 0 {
			return fmt.Errorf("chaosgen %s arm: %d fallback object requests failed to write (silent degradation)",
				arm.Arm, arm.FallbackWriteErrors)
		}
	}
	if tcpArm.DrainedNotices == 0 {
		return fmt.Errorf("chaosgen tcp arm: the drain notified no session")
	}
	return nil
}
