package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"github.com/parcel-go/parcel/internal/experiments"
	"github.com/parcel-go/parcel/internal/metrics"
	"github.com/parcel-go/parcel/internal/parcelnet"
	"github.com/parcel-go/parcel/internal/replay"
	"github.com/parcel-go/parcel/internal/sched"
	"github.com/parcel-go/parcel/internal/webgen"
)

// loadgenArm is one arm of the multi-tenant load run in BENCH_loadgen.json.
type loadgenArm struct {
	Arm      string `json:"arm"` // "sim" (virtual clock) or "tcp" (real sockets + netem)
	Tenants  int    `json:"tenants"`
	Pages    int    `json:"pages"`
	Complete int    `json:"completed"`
	Failed   int    `json:"failed"`

	P50MS float64 `json:"p50_ms"`
	P90MS float64 `json:"p90_ms"`
	P99MS float64 `json:"p99_ms"`

	// Time-to-first-critical-object: how fast the first render-blocking
	// object (HTML/CSS/JS/JSON) lands, the latency the mux priority
	// scheduler exists to protect.
	TTFCP50MS float64 `json:"ttfc_p50_ms"`
	TTFCP90MS float64 `json:"ttfc_p90_ms"`
	TTFCP99MS float64 `json:"ttfc_p99_ms"`

	// FallbackWriteErrors counts silent fallback-request write failures; any
	// nonzero value fails the run.
	FallbackWriteErrors int64 `json:"fallback_write_errors"`

	CacheHitRate     float64 `json:"cache_hit_rate"`
	EgressPerSession float64 `json:"egress_bytes_per_session"`
	OriginBytes      int64   `json:"origin_bytes_total"`

	Deferred int64 `json:"deferred"`
	Shed     int64 `json:"shed"`

	WallSeconds float64 `json:"wall_seconds"`
}

// loadgenReport is the JSON shape the loadgen target writes.
type loadgenReport struct {
	Tenants int          `json:"tenants"`
	Arms    []loadgenArm `json:"arms"`
}

func armFromReport(name string, tenants, pages int, r metrics.FleetReport, wall time.Duration) loadgenArm {
	return loadgenArm{
		Arm: name, Tenants: tenants, Pages: pages,
		Complete: r.Completed, Failed: r.Failed,
		P50MS:               float64(r.P50) / float64(time.Millisecond),
		P90MS:               float64(r.P90) / float64(time.Millisecond),
		P99MS:               float64(r.P99) / float64(time.Millisecond),
		TTFCP50MS:           float64(r.TTFCP50) / float64(time.Millisecond),
		TTFCP90MS:           float64(r.TTFCP90) / float64(time.Millisecond),
		TTFCP99MS:           float64(r.TTFCP99) / float64(time.Millisecond),
		FallbackWriteErrors: r.FallbackWriteErrors,
		CacheHitRate:        r.CacheHitRate,
		EgressPerSession:    r.EgressPerSession,
		OriginBytes:         r.OriginBytes,
		Deferred:            r.Deferred,
		Shed:                r.Shed,
		WallSeconds:         wall.Seconds(),
	}
}

// benchLoadgen runs the multi-tenant load harness on both arms — the
// deterministic fleet simulation and the real-TCP sharded proxy — and writes
// BENCH_loadgen.json. Gates: every session must complete and the shared
// cache must actually hit on both arms; p99Budget (0 = off) additionally
// bounds the sim arm's deterministic p99 completion latency.
func benchLoadgen(w io.Writer, tenants int, seed int64, path string, p99Budget time.Duration) error {
	header(w, "loadgen: multi-tenant fleet through one proxy, shared object cache")
	if tenants <= 0 {
		tenants = 200
	}
	const nPages = 4

	t0 := time.Now()
	sim := experiments.LoadgenSim(experiments.LoadgenSimConfig{
		Tenants:    tenants,
		Pages:      nPages,
		Seed:       seed,
		Sched:      sched.ConfigONLD,
		CacheBytes: 256 << 20,
	})
	simWall := time.Since(t0)

	pages := webgen.Generate(webgen.Spec{Seed: seed, NumPages: nPages})
	archive := replay.FromPages(pages...)
	urls := make([]string, len(pages))
	for i, p := range pages {
		urls[i] = p.MainURL
	}
	t1 := time.Now()
	tcp, err := parcelnet.RunLoadgen(parcelnet.LoadgenConfig{
		Clients:     tenants,
		Store:       replay.Rewriting{Store: archive},
		URLs:        urls,
		Sched:       sched.ConfigONLD,
		CacheBytes:  256 << 20,
		FixedRandom: true,
		Mux:         true,
	})
	if err != nil {
		return fmt.Errorf("tcp loadgen: %w", err)
	}
	tcpWall := time.Since(t1)

	rep := loadgenReport{
		Tenants: tenants,
		Arms: []loadgenArm{
			armFromReport("sim", tenants, nPages, sim.Report, simWall),
			armFromReport("tcp", tenants, nPages, tcp.Report, tcpWall),
		},
	}
	for _, arm := range rep.Arms {
		fmt.Fprintf(w, "%-4s %4d tenants: completed=%d failed=%d p50=%.0fms p90=%.0fms p99=%.0fms ttfc-p50=%.0fms ttfc-p99=%.0fms hit-rate=%.2f egress/user=%.0fKB origin=%.1fMB wall=%.2fs\n",
			arm.Arm, arm.Tenants, arm.Complete, arm.Failed, arm.P50MS, arm.P90MS, arm.P99MS,
			arm.TTFCP50MS, arm.TTFCP99MS,
			arm.CacheHitRate, arm.EgressPerSession/1e3, float64(arm.OriginBytes)/1e6, arm.WallSeconds)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", path)

	for _, arm := range rep.Arms {
		if arm.Failed > 0 {
			return fmt.Errorf("loadgen %s arm: %d/%d sessions failed", arm.Arm, arm.Failed, arm.Tenants)
		}
		if arm.CacheHitRate <= 0 {
			return fmt.Errorf("loadgen %s arm: shared cache never hit", arm.Arm)
		}
		if arm.FallbackWriteErrors > 0 {
			return fmt.Errorf("loadgen %s arm: %d fallback object requests failed to write (silent degradation)",
				arm.Arm, arm.FallbackWriteErrors)
		}
	}
	if p99Budget > 0 {
		if p99 := sim.Report.P99; p99 > p99Budget {
			return fmt.Errorf("loadgen sim arm p99 %v exceeds budget %v", p99, p99Budget)
		}
	}
	return nil
}
