package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"testing"

	"github.com/parcel-go/parcel/internal/core"
	"github.com/parcel-go/parcel/internal/dirbrowser"
	"github.com/parcel-go/parcel/internal/htmlparse"
	"github.com/parcel-go/parcel/internal/metrics"
	"github.com/parcel-go/parcel/internal/minijs"
	"github.com/parcel-go/parcel/internal/parcelnet"
	"github.com/parcel-go/parcel/internal/scenario"
	"github.com/parcel-go/parcel/internal/webgen"
)

// newStubInterp builds an interpreter with no-op versions of the browser
// builtins generated scripts call, so a script body can be benchmarked in
// isolation from the engine.
func newStubInterp() *minijs.Interp {
	in := minijs.New()
	noop := func([]minijs.Value) (minijs.Value, error) { return minijs.Null(), nil }
	for _, name := range []string{"fetch", "fetchAsync", "setTimeout", "onEvent", "log"} {
		in.BindNative(name, noop)
	}
	in.BindNative("rand", func([]minijs.Value) (minijs.Value, error) {
		return minijs.Number(webgen.FixedRandValue), nil
	})
	in.Bind("document", minijs.Namespace(map[string]minijs.Value{
		"write":  minijs.NativeValue(noop),
		"append": minijs.NativeValue(noop),
		"remove": minijs.NativeValue(noop),
		"show":   minijs.NativeValue(noop),
		"hide":   minijs.NativeValue(noop),
	}))
	return in
}

// hotpathBaselineAllocs is the PARCEL page-load allocation count measured
// before the pooling/arena work (simnet closures per packet, map-backed
// attribute storage, slice-doubling trace recorder). It is recorded so the
// report states the reduction against a fixed reference, not against
// whatever the previous run happened to be.
const hotpathBaselineAllocs = 29634

// hotpathTargetAllocs is the regression budget: a PARCEL page load must stay
// at or under this many allocations. Lowered from 10000 after the pooled
// httpsim pending queue, the interval/energy scratch reuse in radio, and the
// webgen page cache closed the residual hot-path churn (measured ~2.1k).
const hotpathTargetAllocs = 2500

// hotpathCase is one measured benchmark in the hot-path report.
type hotpathCase struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// hotpathReport is the JSON shape the benchhotpath target writes.
type hotpathReport struct {
	BaselineAllocsPerOp int64         `json:"baseline_allocs_per_op"`
	TargetAllocsPerOp   int64         `json:"target_allocs_per_op"`
	ReductionPercent    float64       `json:"reduction_percent"`
	WithinTarget        bool          `json:"within_target"`
	Cases               []hotpathCase `json:"cases"`
	// Minijs tracks the interpreter's own trajectory (compile-cache hit
	// path and steady-state execution), like simnet/htmlparse/trace.
	Minijs []hotpathCase `json:"minijs"`
	// Wire is the parcelmux frame path. The encode/decode data path and the
	// HPACK-lite meta encoder are gated at zero allocs/op (WireZeroAlloc);
	// meta decode materializes a URL string per object so it is measured but
	// not gated.
	Wire          []hotpathCase `json:"wire"`
	WireZeroAlloc bool          `json:"wire_zero_alloc"`
}

// benchHotpath measures the allocation profile of the simulator's hot paths
// — a full PARCEL page load, a full DIR page load, and an HTML parse — and
// writes the report to path. The PARCEL case is compared against the
// committed pre-optimization baseline and the regression budget; the target
// exits non-zero if the budget is blown, so CI can gate on it.
func benchHotpath(w io.Writer, path string) error {
	header(w, "benchhotpath: hot-path allocation profile")
	page := webgen.Generate(webgen.Spec{Seed: 77, NumPages: 4})[2]

	cases := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"PageLoadPARCEL", func(b *testing.B) {
			// Steady-state load on the batched engine — shared arenas, the
			// exec-outcome cache, and collector scratch amortized across
			// iterations, exactly what one page costs a sweep worker. One
			// warm load outside the timer fills the pools and caches, the
			// way a worker's first batch member does for the rest.
			res := scenario.NewResources()
			var col metrics.Collector
			load := func() {
				topo := scenario.BuildWith(page, scenario.DefaultParams(), res)
				core.StartProxy(topo, core.DefaultProxyConfig())
				client := core.NewClient(topo, core.DefaultClientConfig())
				client.Start()
				topo.Sim.Run()
				client.CollectWith(&col)
				topo.Release()
			}
			load()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				load()
			}
		}},
		{"PageLoadPARCELLegacy", func(b *testing.B) {
			// The pre-batching engine: private topology, no pools, no exec
			// cache. Kept as the reference the batched steady state is
			// measured against.
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				topo := scenario.Build(page, scenario.DefaultParams())
				core.Run(topo, core.DefaultProxyConfig(), core.DefaultClientConfig())
			}
		}},
		{"PageLoadDIR", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				topo := scenario.Build(page, scenario.DefaultParams())
				dirbrowser.Run(topo, dirbrowser.Options{FixedRandom: true})
			}
		}},
		{"ParseHTML", func(b *testing.B) {
			var body []byte
			for _, obj := range page.Objects {
				if obj.ContentType == "text/html" {
					body = obj.Body
					break
				}
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := htmlparse.Parse(body); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}

	// Minijs cases benchmark the interpreter on a real generated script
	// body: steady-state execution on a reused interpreter (frames from the
	// free lists) and the program-cache hit path.
	var jsBody []byte
	for _, obj := range page.Objects {
		if strings.Contains(obj.ContentType, "javascript") {
			jsBody = obj.Body
			break
		}
	}
	minijsCases := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"MinijsExec", func(b *testing.B) {
			prog, err := minijs.CompileBytes(jsBody)
			if err != nil {
				b.Fatal(err)
			}
			in := newStubInterp()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				in.ResetOps()
				if err := in.Run(prog); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"MinijsCompileCached", func(b *testing.B) {
			if _, err := minijs.CompileBytes(jsBody); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := minijs.CompileBytes(jsBody); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}

	// Wire cases benchmark the parcelmux frame path: steady-state data
	// encode (sender scratch reuse) and decode (assembler append into the
	// preallocated body), plus the HPACK-lite meta codec. The per-stream
	// setup (open frame, body buffer) amortizes across a whole stream cycle,
	// so anything above 0 allocs/op means the per-chunk path regressed.
	wireGated := map[string]bool{
		"MuxEncodeData": true,
		"MuxDecodeData": true,
		"MuxMetaEncode": true,
	}
	wireCases := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"MuxEncodeData", func(b *testing.B) {
			wb := parcelnet.NewWireBench(4<<20, 32<<10)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				wb.EncodeStep()
			}
		}},
		{"MuxDecodeData", func(b *testing.B) {
			wb := parcelnet.NewWireBench(4<<20, 32<<10)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := wb.DecodeStep(); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"MuxMetaEncode", func(b *testing.B) {
			var enc parcelnet.MetaEncoder
			// First call inserts the origin prefix; the timed loop measures
			// the indexed repeat-origin path a bundle's tail objects take.
			dst := enc.AppendMeta(nil, "https://bench.test/assets/app.css", "text/css", 200)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dst = enc.AppendMeta(dst[:0], "https://bench.test/assets/hero.png", "image/png", 200)
			}
		}},
		{"MuxMetaDecode", func(b *testing.B) {
			var enc parcelnet.MetaEncoder
			var dec parcelnet.MetaDecoder
			prime := enc.AppendMeta(nil, "https://bench.test/assets/app.css", "text/css", 200)
			if _, _, _, _, err := dec.ReadMeta(prime); err != nil {
				b.Fatal(err)
			}
			meta := enc.AppendMeta(nil, "https://bench.test/assets/hero.png", "image/png", 200)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, _, _, err := dec.ReadMeta(meta); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}

	rep := hotpathReport{
		BaselineAllocsPerOp: hotpathBaselineAllocs,
		TargetAllocsPerOp:   hotpathTargetAllocs,
		WireZeroAlloc:       true,
	}
	measure := func(name string, fn func(b *testing.B)) hotpathCase {
		r := testing.Benchmark(fn)
		hc := hotpathCase{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		fmt.Fprintf(w, "%-20s %10.0f ns/op %10d B/op %8d allocs/op\n",
			hc.Name, hc.NsPerOp, hc.BytesPerOp, hc.AllocsPerOp)
		return hc
	}
	for _, c := range cases {
		rep.Cases = append(rep.Cases, measure(c.name, c.fn))
	}
	for _, c := range minijsCases {
		rep.Minijs = append(rep.Minijs, measure(c.name, c.fn))
	}
	for _, c := range wireCases {
		hc := measure(c.name, c.fn)
		if wireGated[hc.Name] && hc.AllocsPerOp > 0 {
			rep.WireZeroAlloc = false
		}
		rep.Wire = append(rep.Wire, hc)
	}

	parcelAllocs := rep.Cases[0].AllocsPerOp
	rep.ReductionPercent = 100 * (1 - float64(parcelAllocs)/float64(hotpathBaselineAllocs))
	rep.WithinTarget = parcelAllocs <= hotpathTargetAllocs
	fmt.Fprintf(w, "PARCEL page load: %d allocs/op (baseline %d, -%.1f%%; budget %d)\n",
		parcelAllocs, rep.BaselineAllocsPerOp, rep.ReductionPercent, rep.TargetAllocsPerOp)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", path)
	if !rep.WithinTarget {
		return fmt.Errorf("hot-path regression: PARCEL page load %d allocs/op exceeds budget %d",
			parcelAllocs, hotpathTargetAllocs)
	}
	if !rep.WireZeroAlloc {
		return fmt.Errorf("hot-path regression: parcelmux encode/decode no longer alloc-free (see wire cases)")
	}
	return nil
}
