package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"testing"

	"github.com/parcel-go/parcel/internal/core"
	"github.com/parcel-go/parcel/internal/dirbrowser"
	"github.com/parcel-go/parcel/internal/htmlparse"
	"github.com/parcel-go/parcel/internal/scenario"
	"github.com/parcel-go/parcel/internal/webgen"
)

// hotpathBaselineAllocs is the PARCEL page-load allocation count measured
// before the pooling/arena work (simnet closures per packet, map-backed
// attribute storage, slice-doubling trace recorder). It is recorded so the
// report states the reduction against a fixed reference, not against
// whatever the previous run happened to be.
const hotpathBaselineAllocs = 29634

// hotpathTargetAllocs is the regression budget: a PARCEL page load must stay
// at or under this many allocations.
const hotpathTargetAllocs = 15000

// hotpathCase is one measured benchmark in the hot-path report.
type hotpathCase struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// hotpathReport is the JSON shape the benchhotpath target writes.
type hotpathReport struct {
	BaselineAllocsPerOp int64         `json:"baseline_allocs_per_op"`
	TargetAllocsPerOp   int64         `json:"target_allocs_per_op"`
	ReductionPercent    float64       `json:"reduction_percent"`
	WithinTarget        bool          `json:"within_target"`
	Cases               []hotpathCase `json:"cases"`
}

// benchHotpath measures the allocation profile of the simulator's hot paths
// — a full PARCEL page load, a full DIR page load, and an HTML parse — and
// writes the report to path. The PARCEL case is compared against the
// committed pre-optimization baseline and the regression budget; the target
// exits non-zero if the budget is blown, so CI can gate on it.
func benchHotpath(w io.Writer, path string) error {
	header(w, "benchhotpath: hot-path allocation profile")
	page := webgen.Generate(webgen.Spec{Seed: 77, NumPages: 4})[2]

	cases := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"PageLoadPARCEL", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				topo := scenario.Build(page, scenario.DefaultParams())
				core.Run(topo, core.DefaultProxyConfig(), core.DefaultClientConfig())
			}
		}},
		{"PageLoadDIR", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				topo := scenario.Build(page, scenario.DefaultParams())
				dirbrowser.Run(topo, dirbrowser.Options{FixedRandom: true})
			}
		}},
		{"ParseHTML", func(b *testing.B) {
			var body []byte
			for _, obj := range page.Objects {
				if obj.ContentType == "text/html" {
					body = obj.Body
					break
				}
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := htmlparse.Parse(body); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}

	rep := hotpathReport{
		BaselineAllocsPerOp: hotpathBaselineAllocs,
		TargetAllocsPerOp:   hotpathTargetAllocs,
	}
	for _, c := range cases {
		r := testing.Benchmark(c.fn)
		hc := hotpathCase{
			Name:        c.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		rep.Cases = append(rep.Cases, hc)
		fmt.Fprintf(w, "%-16s %10.0f ns/op %10d B/op %8d allocs/op\n",
			hc.Name, hc.NsPerOp, hc.BytesPerOp, hc.AllocsPerOp)
	}

	parcelAllocs := rep.Cases[0].AllocsPerOp
	rep.ReductionPercent = 100 * (1 - float64(parcelAllocs)/float64(hotpathBaselineAllocs))
	rep.WithinTarget = parcelAllocs <= hotpathTargetAllocs
	fmt.Fprintf(w, "PARCEL page load: %d allocs/op (baseline %d, -%.1f%%; budget %d)\n",
		parcelAllocs, rep.BaselineAllocsPerOp, rep.ReductionPercent, rep.TargetAllocsPerOp)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", path)
	if !rep.WithinTarget {
		return fmt.Errorf("hot-path regression: PARCEL page load %d allocs/op exceeds budget %d",
			parcelAllocs, hotpathTargetAllocs)
	}
	return nil
}
