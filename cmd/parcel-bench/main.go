// Command parcel-bench regenerates every table and figure of the PARCEL
// paper's evaluation (§8) and prints the series each one plots.
//
// Usage:
//
//	parcel-bench [-pages N] [-runs N] [-seed S] [-jitter D] [-parallelism N] TARGET...
//
// Targets: fig3 fig5 fig6a fig6b fig6c fig7a fig7b fig7c fig8 fig9 fig10
// fig11 model delay table1 spdy summary benchsweep benchhotpath loadgen all
//
// Independent targets render concurrently (each into its own buffer, printed
// in request order); the simulations inside each target additionally fan out
// on the -parallelism worker pool. benchsweep times a serial vs parallel
// sweep and writes the result to BENCH_sweep.json; benchhotpath profiles
// page-load allocations against the committed budget and writes
// BENCH_hotpath.json; loadgen drives a multi-tenant fleet through one proxy
// on both the virtual-clock and real-TCP arms and writes BENCH_loadgen.json;
// chaosgen repeats the fleet run under injected origin faults plus a mid-run
// proxy drain and restart and writes BENCH_chaos.json. These timing targets
// always run by themselves, before any other requested target, so nothing
// competes with the clock.
//
// Absolute numbers come from a simulator, not the authors' LTE testbed; the
// shapes (who wins, by what factor, the trade-off orderings) are what the
// harness reproduces. See EXPERIMENTS.md for paper-vs-measured.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"time"

	"github.com/parcel-go/parcel/internal/experiments"
	"github.com/parcel-go/parcel/internal/radio"
	"github.com/parcel-go/parcel/internal/runner"
	"github.com/parcel-go/parcel/internal/sched"
	"github.com/parcel-go/parcel/internal/stats"
	"github.com/parcel-go/parcel/internal/trace"
)

var allTargets = []string{
	"fig3", "fig5", "fig6a", "fig6b", "fig6c", "fig7a", "fig7b", "fig7c",
	"fig8", "fig9", "fig10", "fig11", "model", "delay", "table1", "spdy",
	"summary", "losssweep",
}

func main() {
	pages := flag.Int("pages", 34, "evaluation page-set size (paper: 34)")
	runs := flag.Int("runs", 3, "measurement rounds per page/scheme")
	seed := flag.Int64("seed", 1, "generator and jitter seed")
	jitter := flag.Duration("jitter", 2*time.Millisecond, "LTE per-packet jitter stddev")
	parallelism := flag.Int("parallelism", 0, "simulation worker pool size (0 = one per CPU, 1 = serial)")
	batch := flag.Int("batch", 16, "simulations multiplexed per worker (1 = legacy per-task engine)")
	benchOut := flag.String("benchout", "BENCH_sweep.json", "output path for the benchsweep target")
	hotpathOut := flag.String("hotpathout", "BENCH_hotpath.json", "output path for the benchhotpath target")
	minSpeedup := flag.Float64("minspeedup", 0, "benchsweep fails if parallel speedup is below this (0 = no floor; use on multi-core CI)")
	loadgenOut := flag.String("loadgenout", "BENCH_loadgen.json", "output path for the loadgen target")
	chaosOut := flag.String("chaosout", "BENCH_chaos.json", "output path for the chaosgen target")
	tenants := flag.Int("tenants", 200, "loadgen fleet size (concurrent sessions per arm)")
	loadgenP99 := flag.Duration("loadgenp99", 0, "loadgen fails if the sim arm's p99 completion latency exceeds this (0 = no gate)")
	flag.Parse()

	cfg := experiments.DefaultConfig()
	cfg.Pages = *pages
	cfg.Runs = *runs
	cfg.Seed = *seed
	cfg.Jitter = *jitter
	cfg.Parallelism = *parallelism
	cfg.BatchSize = *batch

	targets := flag.Args()
	if len(targets) == 0 {
		fmt.Fprintf(os.Stderr, "usage: parcel-bench [flags] TARGET...\ntargets: %s benchsweep benchhotpath loadgen chaosgen all\n",
			strings.Join(allTargets, " "))
		os.Exit(2)
	}
	if len(targets) == 1 && targets[0] == "all" {
		targets = allTargets
	}

	// Validate everything up front so an unknown target fails before any
	// multi-second sweep starts, and pull benchsweep out: it measures wall
	// clock, so it must not share the machine with other targets.
	wantBench := false
	wantHotpath := false
	wantLoadgen := false
	wantChaos := false
	renderTargets := targets[:0:0]
	for _, t := range targets {
		if t == "benchsweep" {
			wantBench = true
			continue
		}
		if t == "benchhotpath" {
			wantHotpath = true
			continue
		}
		if t == "loadgen" {
			wantLoadgen = true
			continue
		}
		if t == "chaosgen" {
			wantChaos = true
			continue
		}
		if !knownTarget(t) {
			fmt.Fprintf(os.Stderr, "parcel-bench: unknown target %q (want one of %s benchsweep benchhotpath loadgen chaosgen)\n",
				t, strings.Join(allTargets, " "))
			os.Exit(2)
		}
		renderTargets = append(renderTargets, t)
	}
	// The timing targets run alone, before anything else competes for the
	// machine.
	if wantBench {
		if err := benchSweep(os.Stdout, cfg, *batch, *benchOut, *minSpeedup); err != nil {
			fmt.Fprintf(os.Stderr, "parcel-bench: %v\n", err)
			os.Exit(1)
		}
	}
	if wantHotpath {
		if err := benchHotpath(os.Stdout, *hotpathOut); err != nil {
			fmt.Fprintf(os.Stderr, "parcel-bench: %v\n", err)
			os.Exit(1)
		}
	}
	// loadgen also runs alone: its TCP arm reports wall-clock percentiles.
	if wantLoadgen {
		if err := benchLoadgen(os.Stdout, *tenants, *seed, *loadgenOut, *loadgenP99); err != nil {
			fmt.Fprintf(os.Stderr, "parcel-bench: %v\n", err)
			os.Exit(1)
		}
	}
	// chaosgen likewise: its TCP arm times drain/restart recovery on the
	// wall clock.
	if wantChaos {
		if err := benchChaos(os.Stdout, *tenants, *seed, *chaosOut); err != nil {
			fmt.Fprintf(os.Stderr, "parcel-bench: %v\n", err)
			os.Exit(1)
		}
	}

	// Each remaining target is independent of the others: render them
	// concurrently, each into a private buffer, and print the buffers in
	// the order they were asked for.
	outputs := runner.Map(cfg.Parallelism, len(renderTargets), func(i int) []byte {
		var buf bytes.Buffer
		render(&buf, renderTargets[i], cfg)
		return buf.Bytes()
	})
	for _, out := range outputs {
		os.Stdout.Write(out)
	}
}

func knownTarget(target string) bool {
	for _, t := range allTargets {
		if t == target {
			return true
		}
	}
	return false
}

func render(w io.Writer, target string, cfg experiments.Config) {
	switch target {
	case "fig3":
		fig3(w, cfg)
	case "fig5":
		fig5(w, cfg)
	case "fig6a":
		fig6a(w, cfg)
	case "fig6b":
		fig6b(w, cfg)
	case "fig6c":
		fig6c(w, cfg)
	case "fig7a":
		fig7a(w, cfg)
	case "fig7b", "fig7c":
		fig7bc(w, cfg, target)
	case "fig8":
		fig8(w, cfg)
	case "fig9":
		fig9(w, cfg)
	case "fig10", "fig11":
		fig1011(w, cfg, target)
	case "model":
		model(w)
	case "delay":
		delay(w, cfg)
	case "table1":
		table1(w, cfg)
	case "spdy":
		spdy(w, cfg)
	case "summary":
		summary(w, cfg)
	case "losssweep":
		losssweep(w, cfg)
	}
}

// benchArm is one timed Sweep configuration: its worker-pool width, batch
// size, and the GOMAXPROCS it ran under, alongside the wall clock.
type benchArm struct {
	Name       string  `json:"name"`
	Workers    int     `json:"workers"`
	BatchSize  int     `json:"batch_size"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Seconds    float64 `json:"seconds"`
}

// benchReport is the JSON shape the benchsweep target writes: the legacy
// serial engine and the batched engine timed over one identical Sweep, and
// the derived speedup.
type benchReport struct {
	Pages       int        `json:"pages"`
	Runs        int        `json:"runs"`
	Schemes     int        `json:"schemes"`
	Simulations int        `json:"simulations"`
	GOMAXPROCS  int        `json:"gomaxprocs"`
	Arms        []benchArm `json:"arms"`
	Speedup     float64    `json:"speedup"`
}

// benchSweep times the same DIR+PARCEL(IND) sweep on the legacy engine (one
// private topology per task, one worker, batch size 1 — the pre-batching
// code path) and on the batched engine (multiplexed simulations over shared
// arenas and the exec-outcome cache, at least four workers), checks the
// outputs agree bit for bit, and writes the report to path. A non-zero
// minSpeedup turns the measured speedup into a gate.
func benchSweep(w io.Writer, cfg experiments.Config, batch int, path string, minSpeedup float64) error {
	header(w, "benchsweep: legacy serial engine vs batched engine wall clock")
	schemes := []experiments.Scheme{
		experiments.DIRScheme,
		experiments.ParcelScheme(sched.ConfigIND),
	}
	// Warm both engines once so page generation and lazy init don't skew
	// either arm (one page only: the exec-outcome and artifact caches stay
	// cold for the rest of the set, which the batched arm fills on its own
	// clock like any real sweep would).
	warm := cfg
	warm.Pages = 1
	warm.Runs = 1
	warm.Parallelism = 1
	warm.BatchSize = 1
	experiments.Sweep(warm, schemes)
	warm.BatchSize = batch
	experiments.Sweep(warm, schemes)

	serialCfg := cfg
	serialCfg.Parallelism = 1
	serialCfg.BatchSize = 1
	t0 := time.Now()
	serial := experiments.Sweep(serialCfg, schemes)
	serialDur := time.Since(t0)

	batchCfg := cfg
	batchCfg.BatchSize = batch
	if batchCfg.Parallelism >= 0 && batchCfg.Parallelism <= 1 {
		// The batched arm always fans out: at least four workers, so the
		// gate exercises batching and parallel claim together even when the
		// flag asked for the default or serial pool.
		batchCfg.Parallelism = max(4, runner.Parallelism(0))
	}
	t1 := time.Now()
	batched := experiments.Sweep(batchCfg, schemes)
	batchedDur := time.Since(t1)

	for i := range serial {
		for name, run := range serial[i].Runs {
			if !reflect.DeepEqual(batched[i].Runs[name], run) {
				return fmt.Errorf("batched sweep diverged from serial on page %d scheme %s", i, name)
			}
		}
	}

	rep := benchReport{
		Pages:       cfg.Pages,
		Runs:        cfg.Runs,
		Schemes:     len(schemes),
		Simulations: cfg.Pages * len(schemes) * cfg.Runs,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Arms: []benchArm{
			{Name: "serial-legacy", Workers: 1, BatchSize: 1,
				GOMAXPROCS: runtime.GOMAXPROCS(0), Seconds: serialDur.Seconds()},
			{Name: "batched", Workers: batchCfg.Parallelism, BatchSize: batch,
				GOMAXPROCS: runtime.GOMAXPROCS(0), Seconds: batchedDur.Seconds()},
		},
	}
	if batchedDur > 0 {
		rep.Speedup = serialDur.Seconds() / batchedDur.Seconds()
	}
	fmt.Fprintf(w, "%d simulations (%d pages x %d schemes x %d runs), GOMAXPROCS=%d\n",
		rep.Simulations, rep.Pages, rep.Schemes, rep.Runs, rep.GOMAXPROCS)
	for _, arm := range rep.Arms {
		fmt.Fprintf(w, "%-14s (workers=%d batch=%2d): %8.3fs\n", arm.Name, arm.Workers, arm.BatchSize, arm.Seconds)
	}
	fmt.Fprintf(w, "speedup: %.2fx (outputs verified identical)\n", rep.Speedup)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", path)
	if minSpeedup > 0 && rep.Speedup < minSpeedup {
		return fmt.Errorf("batched sweep speedup %.2fx below required %.2fx (GOMAXPROCS=%d)",
			rep.Speedup, minSpeedup, rep.GOMAXPROCS)
	}
	return nil
}

func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n=== %s ===\n", title)
}

// cdfRows prints the quartile summary of one or more labelled series.
func cdfRows(w io.Writer, label string, series map[string][]float64, unit string) {
	names := make([]string, 0, len(series))
	for name := range series {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "%-16s %8s %8s %8s %8s %8s  (%s)\n", label, "P10", "P25", "P50", "P75", "P90", unit)
	for _, name := range names {
		xs := series[name]
		fmt.Fprintf(w, "%-16s %8.2f %8.2f %8.2f %8.2f %8.2f\n", name,
			stats.Percentile(xs, 10), stats.Percentile(xs, 25), stats.Median(xs),
			stats.Percentile(xs, 75), stats.Percentile(xs, 90))
	}
}

// cdfSteps prints a coarse CDF (x at each decile) for plotting.
func cdfSteps(w io.Writer, name string, xs []float64) {
	fmt.Fprintf(w, "  %s CDF:", name)
	for p := 10.0; p <= 100; p += 10 {
		fmt.Fprintf(w, " %.0f%%=%.2f", p, stats.Percentile(xs, p))
	}
	fmt.Fprintln(w)
}

func fig3(w io.Writer, cfg experiments.Config) {
	header(w, "Figure 3: median OLT CDF, cellular vs wired download (DIR)")
	r := experiments.Fig3(cfg)
	cdfRows(w, "access", map[string][]float64{
		"cellular (LTE)": r.CellularOLT,
		"wired":          r.WiredOLT,
	}, "seconds")
	fmt.Fprintf(w, "paper: LTE median > 6 s (max ≈ 13 s); wired median ≈ 1.1 s (max ≈ 4 s)\n")
	fmt.Fprintf(w, "measured: LTE median %.2f s; wired median %.2f s\n",
		stats.Median(r.CellularOLT), stats.Median(r.WiredOLT))
}

func fig5(w io.Writer, cfg experiments.Config) {
	header(w, "Figure 5: download patterns (client cumulative bytes)")
	r := experiments.Fig5(cfg, 2)
	fmt.Fprintf(w, "page %s\n", r.Page)
	for _, s := range r.Series {
		lastAt, lastBytes := time.Duration(0), int64(0)
		if n := len(s.Points); n > 0 {
			lastAt, lastBytes = s.Points[n-1].At, s.Points[n-1].Bytes
		}
		fmt.Fprintf(w, "  %-14s transfers=%3d done=%6.2fs bytes=%8d", s.Scheme, len(s.Points), lastAt.Seconds(), lastBytes)
		if s.Bundles > 0 {
			fmt.Fprintf(w, " bundles=%d", s.Bundles)
		}
		fmt.Fprintln(w)
	}
}

func fig6a(w io.Writer, cfg experiments.Config) {
	header(w, "Figure 6a: per-page download timeline, PARCEL vs DIR (largest page)")
	r := experiments.Fig6a(cfg)
	fmt.Fprintf(w, "page %s\n", r.Page)
	fmt.Fprintf(w, "  PARCEL proxy onload  %6.2fs\n", r.ProxyOnload.Seconds())
	fmt.Fprintf(w, "  PARCEL client OLT    %6.2fs\n", r.ParcelClientOLT.Seconds())
	fmt.Fprintf(w, "  DIR client OLT       %6.2fs\n", r.DIRClientOLT.Seconds())
	fmt.Fprintf(w, "  timeline samples (time -> cumulative MB):\n")
	printTimeline(w, "proxy", r.ProxySeries)
	printTimeline(w, "PARCEL client", r.ParcelSeries)
	printTimeline(w, "DIR client", r.DIRSeries)
}

func printTimeline(w io.Writer, name string, pts []trace.Point) {
	fmt.Fprintf(w, "    %-14s", name)
	if len(pts) == 0 {
		fmt.Fprintln(w, " (empty)")
		return
	}
	step := len(pts) / 6
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(pts); i += step {
		fmt.Fprintf(w, " %0.1fs:%.2f", pts[i].At.Seconds(), float64(pts[i].Bytes)/1e6)
	}
	last := pts[len(pts)-1]
	fmt.Fprintf(w, " %0.1fs:%.2f\n", last.At.Seconds(), float64(last.Bytes)/1e6)
}

func fig6b(w io.Writer, cfg experiments.Config) {
	header(w, "Figure 6b: latency CDFs, PARCEL(IND) vs DIR")
	r := experiments.Fig6b(cfg)
	cdfRows(w, "latency", map[string][]float64{
		"PARCEL OLT": r.ParcelOLT,
		"PARCEL TLT": r.ParcelTLT,
		"DIR OLT":    r.DIROLT,
		"DIR TLT":    r.DIRTLT,
	}, "seconds")
	cdfSteps(w, "PARCEL OLT", r.ParcelOLT)
	cdfSteps(w, "DIR OLT", r.DIROLT)
	fracUnder := func(xs []float64, v float64) float64 { return stats.CDFAt(xs, v) }
	fmt.Fprintf(w, "paper: 70%% of pages < 3 s PARCEL OLT; 10%% of pages < 3 s DIR OLT\n")
	fmt.Fprintf(w, "measured: %.0f%% PARCEL OLT < 3 s; %.0f%% DIR OLT < 3 s\n",
		100*fracUnder(r.ParcelOLT, 3), 100*fracUnder(r.DIROLT, 3))
}

func fig6c(w io.Writer, cfg experiments.Config) {
	header(w, "Figure 6c: total-latency reduction vs number of HTTP requests")
	r := experiments.Fig6c(cfg)
	for _, p := range r.Points {
		fmt.Fprintf(w, "  %-14s requests=%4d reduction=%6.2fs\n", p.Page, p.HTTPRequests, p.ReductionSec)
	}
	fmt.Fprintf(w, "correlation: measured %.2f (paper: 0.83)\n", r.Correlation)
}

func fig7a(w io.Writer, cfg experiments.Config) {
	header(w, "Figure 7a: RRC states over time (interactive page)")
	r := experiments.Fig7a(cfg)
	fmt.Fprintf(w, "page %s\n", r.Page)
	fmt.Fprintf(w, "  DIR:    transitions=%2d energy=%5.2fJ onload=%5.2fs\n",
		r.DIRTransitions, r.DIREnergy, r.DIROnload.Seconds())
	fmt.Fprintf(w, "  PARCEL: transitions=%2d energy=%5.2fJ onload=%5.2fs\n",
		r.ParcelTransitions, r.ParcelEnergy, r.ParcelOnload.Seconds())
	fmt.Fprintf(w, "paper example (ebay.com): DIR 22 transitions / 11.16 J; PARCEL 7 / 5.63 J\n")
	fmt.Fprintf(w, "  DIR state timeline:    %s\n", compressIntervals(r.DIRIntervals))
	fmt.Fprintf(w, "  PARCEL state timeline: %s\n", compressIntervals(r.ParcelIntervals))
}

// compressIntervals renders an RRC interval sequence as "STATE(dur) ...".
func compressIntervals(ivs []radio.Interval) string {
	var b strings.Builder
	for i, iv := range ivs {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s(%.2fs)", iv.State, iv.Duration().Seconds())
		if i > 14 {
			fmt.Fprintf(&b, " …(+%d)", len(ivs)-i-1)
			break
		}
	}
	return b.String()
}

func fig7bc(w io.Writer, cfg experiments.Config, target string) {
	r := experiments.Fig7bc(cfg)
	if target == "fig7b" {
		header(w, "Figure 7b: per-page median radio energy, PARCEL vs DIR")
		cdfRows(w, "radio energy", map[string][]float64{
			"PARCEL": r.ParcelEnergy,
			"DIR":    r.DIREnergy,
		}, "joules")
		fmt.Fprintf(w, "paper: PARCEL < 4 J for 80%% of pages (max 8 J); DIR < 4 J for 38%% (max 13 J)\n")
		fmt.Fprintf(w, "measured: PARCEL < 4 J for %.0f%%; DIR < 4 J for %.0f%%\n",
			100*stats.CDFAt(r.ParcelEnergy, 4), 100*stats.CDFAt(r.DIREnergy, 4))
		return
	}
	header(w, "Figure 7c: radio-energy savings fraction per page (and CR share)")
	atLeast20, atLeast50, crHalf := 0, 0, 0
	for i := range r.Pages {
		fmt.Fprintf(w, "  %-14s saving=%5.1f%% CR-share=%5.1f%%\n",
			r.Pages[i], 100*r.TotalSavings[i], 100*r.CRSavingShare[i])
		if r.TotalSavings[i] >= 0.20 {
			atLeast20++
		}
		if r.TotalSavings[i] >= 0.50 {
			atLeast50++
		}
		if r.CRSavingShare[i] >= 0.5 {
			crHalf++
		}
	}
	n := len(r.Pages)
	fmt.Fprintf(w, "paper: >= 20%% saving for 95%% of pages; >= 50%% for half; CR accounts for >= 50%% of savings on 85%%\n")
	fmt.Fprintf(w, "measured: >= 20%% on %d/%d; >= 50%% on %d/%d; CR-dominant on %d/%d\n",
		atLeast20, n, atLeast50, n, crHalf, n)
}

func fig8(w io.Writer, cfg experiments.Config) {
	header(w, "Figure 8: cumulative radio & total device energy over a user session")
	r := experiments.Fig8(cfg)
	fmt.Fprintf(w, "page %s, %d clicks at 60 s intervals\n", r.Page, r.Clicks)
	fmt.Fprintf(w, "%-8s", "event")
	for _, s := range r.Results {
		fmt.Fprintf(w, " | %-9s radio/total", s.Scheme)
	}
	fmt.Fprintln(w)
	if len(r.Results) > 0 {
		for i := range r.Results[0].Points {
			fmt.Fprintf(w, "%-8s", r.Results[0].Points[i].Label)
			for _, s := range r.Results {
				fmt.Fprintf(w, " | %7.2fJ / %7.2fJ   ", s.Points[i].CumRadioJ, s.Points[i].CumTotalJ)
			}
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintln(w, "paper: CB radio grows every click; PARCEL/DIR flat; CB total lowest at FD but highest by C4")
}

func fig9(w io.Writer, cfg experiments.Config) {
	header(w, "Figure 9: bundling variants vs PARCEL(IND)")
	r := experiments.Fig9(cfg)
	olt := map[string][]float64{}
	energy := map[string][]float64{}
	for _, v := range r.Variants {
		olt[v] = r.OLTIncrease[v]
		energy[v] = r.EnergyIncrease[v]
	}
	fmt.Fprintln(w, "(9a) OLT increase over IND:")
	cdfRows(w, "variant", olt, "seconds")
	fmt.Fprintln(w, "(9b) radio-energy increase over IND:")
	cdfRows(w, "variant", energy, "joules")
	fmt.Fprintln(w, "(9c) page size vs energy increase for PARCEL(512K):")
	for i := range r.PageBytes {
		fmt.Fprintf(w, "  %6.2fMB  %+6.2fJ\n", r.PageBytes[i]/1e6, r.EnergyIncrease["PARCEL(512K)"][i])
	}
	fmt.Fprintln(w, "paper: ONLD OLT increase ≈ 0.57 s, 512K ≈ 0.11 s; 512K saves energy on ~60% of pages, mainly large ones")
}

func fig1011(w io.Writer, cfg experiments.Config, target string) {
	r := experiments.Fig1011(cfg)
	if target == "fig10" {
		header(w, "Figure 10: OLT with real web servers (heterogeneous origin RTTs)")
		cdfRows(w, "OLT", map[string][]float64{
			"PARCEL(512K)": r.ParcelOLT,
			"DIR":          r.DIROLT,
		}, "seconds")
		fmt.Fprintf(w, "paper: PARCEL(512K) median < 2.5 s vs DIR ≈ 6 s\n")
		return
	}
	header(w, "Figure 11: radio energy with real web servers")
	cdfRows(w, "radio energy", map[string][]float64{
		"PARCEL(512K)": r.ParcelEnergy,
		"DIR":          r.DIREnergy,
	}, "joules")
	fmt.Fprintf(w, "paper: PARCEL(512K) all pages < 6.5 J; DIR significantly higher for ~40%% of pages\n")
}

func model(w io.Writer) {
	header(w, "§6 analytical model: optimal bundle size")
	m := experiments.Model()
	fmt.Fprintf(w, "alpha: measured %.3f (paper: %.2f)\n", m.Alpha, m.PaperAlpha)
	fmt.Fprintf(w, "b* for 2 MB page at 6 Mbps: %.0f KB (paper: ≈ 900 KB)\n", m.OptimalBundle/1e3)
	fmt.Fprintf(w, "E(n)/OLT(n) trade-off (Tp = 2 s):\n")
	for _, pt := range m.Curve {
		if int(pt.N)%4 == 1 || pt.N == m.MinEnergyN {
			fmt.Fprintf(w, "  n=%2.0f  OLT=%5.2fs  E=%6.2fJ\n", pt.N, pt.OLT.Seconds(), pt.EnergyJ)
		}
	}
	fmt.Fprintf(w, "energy-minimizing n on curve: %.0f\n", m.MinEnergyN)
}

func delay(w io.Writer, cfg experiments.Config) {
	header(w, "§8.3 sensitivity: proxy↔server delay 20 ms vs 60 ms")
	r := experiments.DelaySensitivity(cfg)
	for _, rtt := range r.RTTs {
		k := rtt.String()
		fmt.Fprintf(w, "  RTT %-6s IND OLT=%5.2fs E=%5.2fJ | ONLD OLT=%5.2fs E=%5.2fJ\n", k,
			r.MedianOLT[k]["PARCEL(IND)"], r.MedianEnergy[k]["PARCEL(IND)"],
			r.MedianOLT[k]["PARCEL(ONLD)"], r.MedianEnergy[k]["PARCEL(ONLD)"])
	}
	fmt.Fprintln(w, "paper: higher delay raises ONLD's latency penalty but improves its relative energy")
}

func table1(w io.Writer, cfg experiments.Config) {
	header(w, "Table 1: PARCEL vs existing approaches")
	fmt.Fprintf(w, "%-28s %-12s %-12s %-14s %-10s\n", "property", "HTTP proxies", "SPDY proxies", "cloud browsers", "PARCEL")
	for _, row := range experiments.Table1Static() {
		fmt.Fprintf(w, "%-28s %-12s %-12s %-14s %-10s\n", row.Property, row.HTTPProxy, row.SPDYProxy, row.CloudBrowser, row.PARCEL)
	}
	m := experiments.MeasureTable1(cfg)
	fmt.Fprintf(w, "measured backing: PARCEL client %d conn / %d request; DIR client %d conns / %d requests; proxy identified %d objects; interaction packets %d\n",
		m.ParcelClientConns, m.ParcelClientRequests, m.DIRClientConns, m.DIRClientRequests, m.ParcelProxyIdentified, m.InteractionPackets)
}

func spdy(w io.Writer, cfg experiments.Config) {
	header(w, "Extension: DIR vs SPDY transport vs PARCEL (the §9 future-work comparison)")
	r := experiments.SPDYComparison(cfg)
	cdfRows(w, "OLT", map[string][]float64{
		"DIR":         r.DIROLT,
		"SPDY":        r.SPDYOLT,
		"PARCEL(IND)": r.ParcelOLT,
	}, "seconds")
	cdfRows(w, "radio energy", map[string][]float64{
		"DIR":         r.DIREnergy,
		"SPDY":        r.SPDYEnergy,
		"PARCEL(IND)": r.ParcelEnergy,
	}, "joules")
	fmt.Fprintln(w, "expectation (§3/§4.3): SPDY transport improves on DIR, but client-side")
	fmt.Fprintln(w, "discovery still bounds it — PARCEL retains its advantage")
}

func losssweep(w io.Writer, cfg experiments.Config) {
	header(w, "Robustness: loss sweep across fault profiles, PARCEL vs DIR")
	schemes := []experiments.Scheme{
		experiments.DIRScheme,
		experiments.ParcelScheme(sched.ConfigONLD),
	}
	points := experiments.LossSweep(cfg, nil, nil, schemes)
	fmt.Fprintf(w, "%-8s %5s %-14s %8s %8s %8s %9s %7s %9s %6s\n",
		"profile", "loss", "scheme", "OLT", "TLT", "energy", "dropped", "rexmit", "rexmitB", "fallbk")
	for _, pt := range points {
		fmt.Fprintf(w, "%-8s %4.0f%% %-14s %7.2fs %7.2fs %7.2fJ %9d %7d %9d %6d\n",
			pt.Profile, 100*pt.LossRate, pt.Scheme,
			pt.MeanOLT.Seconds(), pt.MeanTLT.Seconds(), pt.MeanRadioJ,
			pt.Dropped, pt.Retransmits, pt.RetransmitBytes, pt.Fallbacks)
	}
	fmt.Fprintln(w, "expectation: loss stretches both schemes; PARCEL's single connection and")
	fmt.Fprintln(w, "server-side fetching keep its latency/energy growth below DIR's")
}

func summary(w io.Writer, cfg experiments.Config) {
	header(w, "Headline: PARCEL vs DIR")
	s := experiments.Headline(cfg)
	fmt.Fprintf(w, "median OLT: DIR %.2f s -> PARCEL %.2f s  (reduction %.1f%%; paper %.1f%%)\n",
		s.DIRMedianOLT, s.ParcelMedianOLT, 100*s.OLTReduction, 100*s.PaperOLTReduction)
	fmt.Fprintf(w, "median radio energy: DIR %.2f J -> PARCEL %.2f J  (reduction %.1f%%; paper %.1f%%)\n",
		s.DIRMedianEnergy, s.ParcelMedianEnergy, 100*s.EnergyReduction, 100*s.PaperEnergyReduction)
}
