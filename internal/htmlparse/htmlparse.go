// Package htmlparse is a from-scratch HTML tokenizer and DOM-tree builder
// sized for the browsing engine: it handles elements, attributes (quoted and
// bare), text, comments, doctype, void elements, and raw-text elements
// (script/style), and extracts the external resources a page references —
// the object-identification step that PARCEL moves to the proxy (§4.2).
//
// The tokenizer is built for the simulator's hot loop: every token is a view
// into the source string (substring slicing, no copies), nodes and attribute
// pairs are carved from arena blocks owned by the parse (one allocation per
// block instead of one per node), and tag/attribute names that are already
// lowercase — the overwhelmingly common case — are never re-lowercased into
// fresh strings. A single scratch buffer handles the uppercase exceptions.
package htmlparse

import (
	"fmt"
	"strings"
)

// Attr is one element attribute (keys are lowercased).
type Attr struct {
	Key   string
	Value string
}

// AttrList is an element's attributes in source order. It replaces a
// per-element map: pages average a handful of attributes per element, where
// a linear scan over an arena-backed slice beats a heap-allocated map.
type AttrList []Attr

// Get returns the value for key and whether the attribute is present.
func (l AttrList) Get(key string) (string, bool) {
	for i := range l {
		if l[i].Key == key {
			return l[i].Value, true
		}
	}
	return "", false
}

// Has reports whether the attribute is present (possibly empty-valued).
func (l AttrList) Has(key string) bool {
	_, ok := l.Get(key)
	return ok
}

// Node is a DOM node: an element (Tag != "") or a text node (Tag == "").
type Node struct {
	Tag      string
	Attrs    AttrList
	Children []*Node
	Text     string // text nodes and raw-text element content
}

// Attr returns the attribute value (lowercased key) or "".
func (n *Node) Attr(key string) string {
	v, _ := n.Attrs.Get(key)
	return v
}

// HasAttr reports whether the attribute is present, even when empty (the
// boolean attributes: async, defer, checked, ...).
func (n *Node) HasAttr(key string) bool { return n.Attrs.Has(key) }

// voidElements never have closing tags.
var voidElements = map[string]bool{
	"area": true, "base": true, "br": true, "col": true, "embed": true,
	"hr": true, "img": true, "input": true, "link": true, "meta": true,
	"source": true, "track": true, "wbr": true,
}

// rawTextElements contain raw text until their literal closing tag.
var rawTextElements = map[string]bool{"script": true, "style": true, "title": true}

// Parse builds a DOM tree from HTML source. The parser is forgiving the way
// browsers are: unknown tags nest normally, stray closing tags pop to the
// nearest matching open element, and unclosed elements are closed at EOF.
func Parse(src []byte) (*Node, error) {
	p := &parser{src: string(src)}
	root := p.newNode()
	root.Tag = "#document"
	p.stack = append(p.stackBuf[:0], root)
	if err := p.run(); err != nil {
		return nil, err
	}
	return root, nil
}

// nodeBlockSize is how many Nodes one arena block holds. The blocks stay
// reachable through the tree, so the arena only batches allocations — it
// never changes object lifetime.
const nodeBlockSize = 64

// attrBlockSize is how many attribute pairs one arena block holds.
const attrBlockSize = 128

// maxDepth caps the open-element stack, like browsers clamp DOM depth.
// Elements past the cap still appear in the tree but as siblings, not
// children. Beyond sanity, the cap bounds the stray-close-tag scan in popTo:
// without it, byte soup of N opens followed by N unmatched closes costs
// O(N·depth) — a fuzzing hang, not a parse.
const maxDepth = 256

type parser struct {
	src   string
	pos   int
	stack []*Node

	stackBuf  [16]*Node // initial open-element stack storage
	nodeArena []Node
	attrArena []Attr
	attrBuf   []Attr // scratch for the tag currently being tokenized
	lowerBuf  []byte // scratch for the rare uppercase-name lowercasing
}

// newNode carves a zeroed node out of the arena.
func (p *parser) newNode() *Node {
	if len(p.nodeArena) == 0 {
		p.nodeArena = make([]Node, nodeBlockSize)
	}
	n := &p.nodeArena[0]
	p.nodeArena = p.nodeArena[1:]
	return n
}

// internAttrs copies the scratch attribute pairs into the arena and returns
// the element's view. The capacity is clamped so a later append on the view
// could never clobber a neighbouring element's attributes.
func (p *parser) internAttrs(scratch []Attr) AttrList {
	k := len(scratch)
	if k == 0 {
		return nil
	}
	if len(p.attrArena) < k {
		size := attrBlockSize
		if k > size {
			size = k
		}
		p.attrArena = make([]Attr, size)
	}
	out := p.attrArena[:k:k]
	p.attrArena = p.attrArena[k:]
	copy(out, scratch)
	return out
}

// lower returns s lowercased. When s has no uppercase letters — tag and
// attribute names in real markup almost always — it returns s itself, a view
// with no allocation; otherwise it lowercases through the shared scratch
// buffer, paying one small copy.
func (p *parser) lower(s string) string {
	upper := -1
	for i := 0; i < len(s); i++ {
		if c := s[i]; c >= 'A' && c <= 'Z' {
			upper = i
			break
		}
	}
	if upper < 0 {
		return s
	}
	p.lowerBuf = append(p.lowerBuf[:0], s...)
	for i := upper; i < len(p.lowerBuf); i++ {
		if c := p.lowerBuf[i]; c >= 'A' && c <= 'Z' {
			p.lowerBuf[i] = c + ('a' - 'A')
		}
	}
	return string(p.lowerBuf)
}

func (p *parser) top() *Node { return p.stack[len(p.stack)-1] }

func (p *parser) appendChild(n *Node) {
	t := p.top()
	t.Children = append(t.Children, n)
}

func (p *parser) run() error {
	for p.pos < len(p.src) {
		if p.src[p.pos] == '<' {
			if err := p.tag(); err != nil {
				return err
			}
			continue
		}
		p.text()
	}
	return nil
}

func (p *parser) text() {
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] != '<' {
		p.pos++
	}
	chunk := p.src[start:p.pos]
	if strings.TrimSpace(chunk) != "" {
		n := p.newNode()
		n.Text = chunk
		p.appendChild(n)
	}
}

func (p *parser) tag() error {
	// p.src[p.pos] == '<'
	if strings.HasPrefix(p.src[p.pos:], "<!--") {
		end := strings.Index(p.src[p.pos+4:], "-->")
		if end < 0 {
			p.pos = len(p.src)
			return nil
		}
		p.pos += 4 + end + 3
		return nil
	}
	if strings.HasPrefix(p.src[p.pos:], "<!") { // doctype and friends
		end := strings.IndexByte(p.src[p.pos:], '>')
		if end < 0 {
			p.pos = len(p.src)
			return nil
		}
		p.pos += end + 1
		return nil
	}
	if strings.HasPrefix(p.src[p.pos:], "</") {
		end := strings.IndexByte(p.src[p.pos:], '>')
		if end < 0 {
			return fmt.Errorf("htmlparse: unterminated closing tag at offset %d", p.pos)
		}
		name := p.lower(strings.TrimSpace(p.src[p.pos+2 : p.pos+end]))
		p.pos += end + 1
		p.popTo(name)
		return nil
	}
	// Opening tag.
	name, attrs, selfClose, err := p.openTag()
	if err != nil {
		return err
	}
	if name == "" {
		return nil // bare '<' handled inside openTag
	}
	n := p.newNode()
	n.Tag = name
	n.Attrs = attrs
	p.appendChild(n)
	if selfClose || voidElements[name] {
		return nil
	}
	if rawTextElements[name] {
		idx := indexCloseTagFold(p.src[p.pos:], name)
		if idx < 0 {
			n.Text = p.src[p.pos:]
			p.pos = len(p.src)
			return nil
		}
		n.Text = p.src[p.pos : p.pos+idx]
		rest := p.src[p.pos+idx:]
		gt := strings.IndexByte(rest, '>')
		if gt < 0 {
			p.pos = len(p.src)
			return nil
		}
		p.pos += idx + gt + 1
		return nil
	}
	if len(p.stack) < maxDepth {
		p.stack = append(p.stack, n)
	}
	return nil
}

// indexCloseTagFold finds the first ASCII-case-insensitive occurrence of
// "</name" in s, without lowercasing (and so copying) the remaining source
// the way a strings.ToLower scan would.
func indexCloseTagFold(s, name string) int {
	n := len(name) + 2
	for i := 0; i+n <= len(s); i++ {
		if s[i] != '<' || s[i+1] != '/' {
			continue
		}
		if foldEq(s[i+2:i+n], name) {
			return i
		}
	}
	return -1
}

// foldEq reports ASCII-case-insensitive equality of equal-length strings,
// where b is already lowercase.
func foldEq(a, b string) bool {
	for i := 0; i < len(a); i++ {
		ca := a[i]
		if ca >= 'A' && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if ca != b[i] {
			return false
		}
	}
	return true
}

// openTag parses "<name attr=val ...>" starting at p.pos ('<'). A returned
// empty name means the '<' was bare text (already handled).
func (p *parser) openTag() (name string, attrs AttrList, selfClose bool, err error) {
	i := p.pos + 1
	start := i
	for i < len(p.src) && isNameChar(p.src[i]) {
		i++
	}
	if i == start {
		// A bare '<' in text; treat it as text.
		n := p.newNode()
		n.Text = "<"
		p.appendChild(n)
		p.pos++
		return "", nil, true, nil
	}
	name = p.lower(p.src[start:i])
	scratch := p.attrBuf[:0]
	defer func() { p.attrBuf = scratch[:0] }()
	for {
		for i < len(p.src) && isSpace(p.src[i]) {
			i++
		}
		if i >= len(p.src) {
			return "", nil, false, fmt.Errorf("htmlparse: unterminated tag <%s at offset %d", name, p.pos)
		}
		if p.src[i] == '>' {
			p.pos = i + 1
			return name, p.internAttrs(scratch), selfClose, nil
		}
		if p.src[i] == '/' {
			selfClose = true
			i++
			continue
		}
		// Attribute.
		aStart := i
		for i < len(p.src) && !isSpace(p.src[i]) && p.src[i] != '=' && p.src[i] != '>' && p.src[i] != '/' {
			i++
		}
		key := p.lower(p.src[aStart:i])
		val := ""
		for i < len(p.src) && isSpace(p.src[i]) {
			i++
		}
		if i < len(p.src) && p.src[i] == '=' {
			i++
			for i < len(p.src) && isSpace(p.src[i]) {
				i++
			}
			if i < len(p.src) && (p.src[i] == '"' || p.src[i] == '\'') {
				quote := p.src[i]
				i++
				vStart := i
				for i < len(p.src) && p.src[i] != quote {
					i++
				}
				val = p.src[vStart:i]
				if i < len(p.src) {
					i++
				}
			} else {
				vStart := i
				for i < len(p.src) && !isSpace(p.src[i]) && p.src[i] != '>' {
					i++
				}
				val = p.src[vStart:i]
			}
		}
		if key != "" {
			// Duplicate attribute: per the HTML spec the first wins.
			dup := false
			for j := range scratch {
				if scratch[j].Key == key {
					dup = true
					break
				}
			}
			if !dup {
				scratch = append(scratch, Attr{Key: key, Value: val})
			}
		}
	}
}

// popTo closes elements up to and including the nearest element named name.
func (p *parser) popTo(name string) {
	for i := len(p.stack) - 1; i > 0; i-- {
		if p.stack[i].Tag == name {
			p.stack = p.stack[:i]
			return
		}
	}
	// No matching open element: ignore the stray closing tag.
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

func isNameChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '-' || c == '_'
}

// Walk visits every node in document order.
func Walk(n *Node, fn func(*Node)) {
	fn(n)
	for _, c := range n.Children {
		Walk(c, fn)
	}
}

// Find returns every element with the given tag, in document order.
func Find(root *Node, tag string) []*Node {
	var out []*Node
	Walk(root, func(n *Node) {
		if n.Tag == tag {
			out = append(out, n)
		}
	})
	return out
}

// FindByAttr returns the first element whose attribute key equals value.
func FindByAttr(root *Node, key, value string) *Node {
	var found *Node
	Walk(root, func(n *Node) {
		if found == nil && n.Tag != "" && n.Attr(key) == value {
			found = n
		}
	})
	return found
}

// ResKind classifies a referenced resource.
type ResKind int

const (
	// ResStylesheet is a <link rel=stylesheet>.
	ResStylesheet ResKind = iota
	// ResScript is a <script src>.
	ResScript
	// ResImage is an <img src> or <input type=image>.
	ResImage
	// ResIframe is an <iframe src>.
	ResIframe
	// ResMedia is <video>/<audio>/<source>/<embed> content.
	ResMedia
)

func (k ResKind) String() string {
	switch k {
	case ResStylesheet:
		return "css"
	case ResScript:
		return "script"
	case ResImage:
		return "image"
	case ResIframe:
		return "iframe"
	case ResMedia:
		return "media"
	default:
		return "?"
	}
}

// Resource is an external object a page references.
type Resource struct {
	URL   string
	Kind  ResKind
	Async bool // script with the async or defer attribute
}

// Resources extracts every external resource reference in the tree, with
// URLs resolved against baseURL.
func Resources(root *Node, baseURL string) []Resource {
	var out []Resource
	add := func(raw string, kind ResKind, async bool) {
		if raw == "" {
			return
		}
		u := ResolveURL(baseURL, raw)
		if u == "" {
			return
		}
		out = append(out, Resource{URL: u, Kind: kind, Async: async})
	}
	Walk(root, func(n *Node) {
		switch n.Tag {
		case "link":
			rel := strings.ToLower(n.Attr("rel"))
			if rel == "stylesheet" {
				add(n.Attr("href"), ResStylesheet, false)
			}
		case "script":
			if src := n.Attr("src"); src != "" {
				add(src, ResScript, n.HasAttr("async") || n.HasAttr("defer"))
			}
		case "img":
			add(n.Attr("src"), ResImage, false)
		case "input":
			if strings.ToLower(n.Attr("type")) == "image" {
				add(n.Attr("src"), ResImage, false)
			}
		case "iframe":
			add(n.Attr("src"), ResIframe, false)
		case "video", "audio", "embed", "source":
			add(n.Attr("src"), ResMedia, false)
		}
	})
	return out
}

// InlineScripts returns the bodies of <script> elements without src, in
// document order.
func InlineScripts(root *Node) []string {
	var out []string
	Walk(root, func(n *Node) {
		if n.Tag == "script" && n.Attr("src") == "" && strings.TrimSpace(n.Text) != "" {
			out = append(out, n.Text)
		}
	})
	return out
}

// InlineStyles returns the bodies of <style> elements, in document order.
func InlineStyles(root *Node) []string {
	var out []string
	Walk(root, func(n *Node) {
		if n.Tag == "style" && strings.TrimSpace(n.Text) != "" {
			out = append(out, n.Text)
		}
	})
	return out
}

// ResolveURL resolves ref against base. It supports absolute http URLs,
// protocol-relative (//host/path), root-relative (/path) and
// directory-relative (path) references. Fragment-only and non-http schemes
// resolve to "".
func ResolveURL(base, ref string) string {
	ref = strings.TrimSpace(ref)
	switch {
	case ref == "" || strings.HasPrefix(ref, "#"):
		return ""
	case strings.HasPrefix(ref, "http://"), strings.HasPrefix(ref, "https://"):
		// https objects resolve normally; PARCEL routes them over the
		// client's direct fallback path rather than the proxy (§4.5).
		return ref
	case strings.Contains(ref, "://"):
		return "" // unsupported scheme
	case strings.HasPrefix(ref, "//"):
		return "http:" + ref
	}
	rest, ok := strings.CutPrefix(base, "http://")
	if !ok {
		return ""
	}
	host := rest
	dir := "/"
	if slash := strings.IndexByte(rest, '/'); slash >= 0 {
		host = rest[:slash]
		path := rest[slash:]
		if last := strings.LastIndexByte(path, '/'); last >= 0 {
			dir = path[:last+1]
		}
	}
	if strings.HasPrefix(ref, "/") {
		return "http://" + host + ref
	}
	return "http://" + host + dir + ref
}
