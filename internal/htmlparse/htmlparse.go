// Package htmlparse is a from-scratch HTML tokenizer and DOM-tree builder
// sized for the browsing engine: it handles elements, attributes (quoted and
// bare), text, comments, doctype, void elements, and raw-text elements
// (script/style), and extracts the external resources a page references —
// the object-identification step that PARCEL moves to the proxy (§4.2).
package htmlparse

import (
	"fmt"
	"strings"
)

// Node is a DOM node: an element (Tag != "") or a text node (Tag == "").
type Node struct {
	Tag      string
	Attrs    map[string]string
	Children []*Node
	Text     string // text nodes and raw-text element content
}

// Attr returns the attribute value (lowercased key) or "".
func (n *Node) Attr(key string) string {
	if n.Attrs == nil {
		return ""
	}
	return n.Attrs[key]
}

// voidElements never have closing tags.
var voidElements = map[string]bool{
	"area": true, "base": true, "br": true, "col": true, "embed": true,
	"hr": true, "img": true, "input": true, "link": true, "meta": true,
	"source": true, "track": true, "wbr": true,
}

// rawTextElements contain raw text until their literal closing tag.
var rawTextElements = map[string]bool{"script": true, "style": true, "title": true}

// Parse builds a DOM tree from HTML source. The parser is forgiving the way
// browsers are: unknown tags nest normally, stray closing tags pop to the
// nearest matching open element, and unclosed elements are closed at EOF.
func Parse(src []byte) (*Node, error) {
	p := &parser{src: string(src)}
	root := &Node{Tag: "#document"}
	p.stack = []*Node{root}
	if err := p.run(); err != nil {
		return nil, err
	}
	return root, nil
}

type parser struct {
	src   string
	pos   int
	stack []*Node
}

func (p *parser) top() *Node { return p.stack[len(p.stack)-1] }

func (p *parser) appendChild(n *Node) {
	t := p.top()
	t.Children = append(t.Children, n)
}

func (p *parser) run() error {
	for p.pos < len(p.src) {
		if p.src[p.pos] == '<' {
			if err := p.tag(); err != nil {
				return err
			}
			continue
		}
		p.text()
	}
	return nil
}

func (p *parser) text() {
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] != '<' {
		p.pos++
	}
	chunk := p.src[start:p.pos]
	if strings.TrimSpace(chunk) != "" {
		p.appendChild(&Node{Text: chunk})
	}
}

func (p *parser) tag() error {
	// p.src[p.pos] == '<'
	if strings.HasPrefix(p.src[p.pos:], "<!--") {
		end := strings.Index(p.src[p.pos+4:], "-->")
		if end < 0 {
			p.pos = len(p.src)
			return nil
		}
		p.pos += 4 + end + 3
		return nil
	}
	if strings.HasPrefix(p.src[p.pos:], "<!") { // doctype and friends
		end := strings.IndexByte(p.src[p.pos:], '>')
		if end < 0 {
			p.pos = len(p.src)
			return nil
		}
		p.pos += end + 1
		return nil
	}
	if strings.HasPrefix(p.src[p.pos:], "</") {
		end := strings.IndexByte(p.src[p.pos:], '>')
		if end < 0 {
			return fmt.Errorf("htmlparse: unterminated closing tag at offset %d", p.pos)
		}
		name := strings.ToLower(strings.TrimSpace(p.src[p.pos+2 : p.pos+end]))
		p.pos += end + 1
		p.popTo(name)
		return nil
	}
	// Opening tag.
	name, attrs, selfClose, err := p.openTag()
	if err != nil {
		return err
	}
	n := &Node{Tag: name, Attrs: attrs}
	p.appendChild(n)
	if selfClose || voidElements[name] {
		return nil
	}
	if rawTextElements[name] {
		closeTag := "</" + name
		idx := strings.Index(strings.ToLower(p.src[p.pos:]), closeTag)
		if idx < 0 {
			n.Text = p.src[p.pos:]
			p.pos = len(p.src)
			return nil
		}
		n.Text = p.src[p.pos : p.pos+idx]
		rest := p.src[p.pos+idx:]
		gt := strings.IndexByte(rest, '>')
		if gt < 0 {
			p.pos = len(p.src)
			return nil
		}
		p.pos += idx + gt + 1
		return nil
	}
	p.stack = append(p.stack, n)
	return nil
}

// openTag parses "<name attr=val ...>" starting at p.pos ('<').
func (p *parser) openTag() (name string, attrs map[string]string, selfClose bool, err error) {
	i := p.pos + 1
	start := i
	for i < len(p.src) && isNameChar(p.src[i]) {
		i++
	}
	if i == start {
		// A bare '<' in text; treat it as text.
		p.appendChild(&Node{Text: "<"})
		p.pos++
		return "", nil, true, nil
	}
	name = strings.ToLower(p.src[start:i])
	for {
		for i < len(p.src) && isSpace(p.src[i]) {
			i++
		}
		if i >= len(p.src) {
			return "", nil, false, fmt.Errorf("htmlparse: unterminated tag <%s at offset %d", name, p.pos)
		}
		if p.src[i] == '>' {
			p.pos = i + 1
			return name, attrs, selfClose, nil
		}
		if p.src[i] == '/' {
			selfClose = true
			i++
			continue
		}
		// Attribute.
		aStart := i
		for i < len(p.src) && !isSpace(p.src[i]) && p.src[i] != '=' && p.src[i] != '>' && p.src[i] != '/' {
			i++
		}
		key := strings.ToLower(p.src[aStart:i])
		val := ""
		for i < len(p.src) && isSpace(p.src[i]) {
			i++
		}
		if i < len(p.src) && p.src[i] == '=' {
			i++
			for i < len(p.src) && isSpace(p.src[i]) {
				i++
			}
			if i < len(p.src) && (p.src[i] == '"' || p.src[i] == '\'') {
				quote := p.src[i]
				i++
				vStart := i
				for i < len(p.src) && p.src[i] != quote {
					i++
				}
				val = p.src[vStart:i]
				if i < len(p.src) {
					i++
				}
			} else {
				vStart := i
				for i < len(p.src) && !isSpace(p.src[i]) && p.src[i] != '>' {
					i++
				}
				val = p.src[vStart:i]
			}
		}
		if key != "" {
			if attrs == nil {
				attrs = make(map[string]string)
			}
			attrs[key] = val
		}
	}
}

// popTo closes elements up to and including the nearest element named name.
func (p *parser) popTo(name string) {
	for i := len(p.stack) - 1; i > 0; i-- {
		if p.stack[i].Tag == name {
			p.stack = p.stack[:i]
			return
		}
	}
	// No matching open element: ignore the stray closing tag.
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

func isNameChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '-' || c == '_'
}

// Walk visits every node in document order.
func Walk(n *Node, fn func(*Node)) {
	fn(n)
	for _, c := range n.Children {
		Walk(c, fn)
	}
}

// Find returns every element with the given tag, in document order.
func Find(root *Node, tag string) []*Node {
	var out []*Node
	Walk(root, func(n *Node) {
		if n.Tag == tag {
			out = append(out, n)
		}
	})
	return out
}

// FindByAttr returns the first element whose attribute key equals value.
func FindByAttr(root *Node, key, value string) *Node {
	var found *Node
	Walk(root, func(n *Node) {
		if found == nil && n.Tag != "" && n.Attr(key) == value {
			found = n
		}
	})
	return found
}

// ResKind classifies a referenced resource.
type ResKind int

const (
	// ResStylesheet is a <link rel=stylesheet>.
	ResStylesheet ResKind = iota
	// ResScript is a <script src>.
	ResScript
	// ResImage is an <img src> or <input type=image>.
	ResImage
	// ResIframe is an <iframe src>.
	ResIframe
	// ResMedia is <video>/<audio>/<source>/<embed> content.
	ResMedia
)

func (k ResKind) String() string {
	switch k {
	case ResStylesheet:
		return "css"
	case ResScript:
		return "script"
	case ResImage:
		return "image"
	case ResIframe:
		return "iframe"
	case ResMedia:
		return "media"
	default:
		return "?"
	}
}

// Resource is an external object a page references.
type Resource struct {
	URL   string
	Kind  ResKind
	Async bool // script with the async or defer attribute
}

// Resources extracts every external resource reference in the tree, with
// URLs resolved against baseURL.
func Resources(root *Node, baseURL string) []Resource {
	var out []Resource
	add := func(raw string, kind ResKind, async bool) {
		if raw == "" {
			return
		}
		u := ResolveURL(baseURL, raw)
		if u == "" {
			return
		}
		out = append(out, Resource{URL: u, Kind: kind, Async: async})
	}
	Walk(root, func(n *Node) {
		switch n.Tag {
		case "link":
			rel := strings.ToLower(n.Attr("rel"))
			if rel == "stylesheet" {
				add(n.Attr("href"), ResStylesheet, false)
			}
		case "script":
			if src := n.Attr("src"); src != "" {
				_, async := n.Attrs["async"]
				_, deferred := n.Attrs["defer"]
				add(src, ResScript, async || deferred)
			}
		case "img":
			add(n.Attr("src"), ResImage, false)
		case "input":
			if strings.ToLower(n.Attr("type")) == "image" {
				add(n.Attr("src"), ResImage, false)
			}
		case "iframe":
			add(n.Attr("src"), ResIframe, false)
		case "video", "audio", "embed", "source":
			add(n.Attr("src"), ResMedia, false)
		}
	})
	return out
}

// InlineScripts returns the bodies of <script> elements without src, in
// document order.
func InlineScripts(root *Node) []string {
	var out []string
	Walk(root, func(n *Node) {
		if n.Tag == "script" && n.Attr("src") == "" && strings.TrimSpace(n.Text) != "" {
			out = append(out, n.Text)
		}
	})
	return out
}

// InlineStyles returns the bodies of <style> elements, in document order.
func InlineStyles(root *Node) []string {
	var out []string
	Walk(root, func(n *Node) {
		if n.Tag == "style" && strings.TrimSpace(n.Text) != "" {
			out = append(out, n.Text)
		}
	})
	return out
}

// ResolveURL resolves ref against base. It supports absolute http URLs,
// protocol-relative (//host/path), root-relative (/path) and
// directory-relative (path) references. Fragment-only and non-http schemes
// resolve to "".
func ResolveURL(base, ref string) string {
	ref = strings.TrimSpace(ref)
	switch {
	case ref == "" || strings.HasPrefix(ref, "#"):
		return ""
	case strings.HasPrefix(ref, "http://"), strings.HasPrefix(ref, "https://"):
		// https objects resolve normally; PARCEL routes them over the
		// client's direct fallback path rather than the proxy (§4.5).
		return ref
	case strings.Contains(ref, "://"):
		return "" // unsupported scheme
	case strings.HasPrefix(ref, "//"):
		return "http:" + ref
	}
	rest, ok := strings.CutPrefix(base, "http://")
	if !ok {
		return ""
	}
	host := rest
	dir := "/"
	if slash := strings.IndexByte(rest, '/'); slash >= 0 {
		host = rest[:slash]
		path := rest[slash:]
		if last := strings.LastIndexByte(path, '/'); last >= 0 {
			dir = path[:last+1]
		}
	}
	if strings.HasPrefix(ref, "/") {
		return "http://" + host + ref
	}
	return "http://" + host + dir + ref
}
