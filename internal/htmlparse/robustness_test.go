package htmlparse

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// Property: Parse never panics and never loops on arbitrary byte soup, and
// any returned tree walks without crashing — browser-grade resilience.
func TestParseNeverPanicsOnRandomBytes(t *testing.T) {
	f := func(data []byte) bool {
		root, err := Parse(data)
		if err != nil {
			return true
		}
		count := 0
		Walk(root, func(*Node) { count++ })
		return count >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: Parse handles adversarial tag fragments built from HTML-ish
// tokens without panicking.
func TestParseNeverPanicsOnTagSoup(t *testing.T) {
	pieces := []string{
		"<", ">", "</", "/>", "<div", "<img src=", `"`, "'", "=", "<!--",
		"-->", "<!DOCTYPE", "<script>", "</script>", "<style>", "text",
		"<a href='", "<<>>", "</div>", " ", "\n", "<p", "attr", "<iframe src",
	}
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 300; trial++ {
		var b strings.Builder
		n := rng.Intn(60)
		for i := 0; i < n; i++ {
			b.WriteString(pieces[rng.Intn(len(pieces))])
		}
		src := b.String()
		root, err := Parse([]byte(src))
		if err != nil {
			continue
		}
		Resources(root, "http://x.com/")
		InlineScripts(root)
		InlineStyles(root)
	}
}

// Property: ResolveURL output is always empty or an absolute http(s) URL.
func TestResolveURLAlwaysAbsolute(t *testing.T) {
	f := func(ref string) bool {
		got := ResolveURL("http://base.com/dir/page.html", ref)
		return got == "" ||
			strings.HasPrefix(got, "http://") ||
			strings.HasPrefix(got, "https://")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
