package htmlparse

import (
	"strings"
	"testing"

	"github.com/parcel-go/parcel/internal/webgen"
)

// FuzzParse drives the tokenizer with arbitrary bytes. The parser backs
// every token with views into the source and carves nodes from arenas, so
// the invariants worth checking go beyond "no panic": any tree that comes
// back must walk, its attribute keys and tags must be lowercase (the
// contract Resources and the browser rely on), and the downstream
// extractors must run on whatever structure emerged.
//
// The seed corpus is real generator output (the HTML the simulator actually
// parses) plus the adversarial fragments from the robustness tests.
//
// Lowercasing is ASCII-only, matching the HTML spec's ASCII case folding for
// tag and attribute names; the invariant checks exactly that.
func FuzzParse(f *testing.F) {
	for _, page := range webgen.Generate(webgen.Spec{Seed: 77, NumPages: 2}) {
		for _, obj := range page.Objects {
			if obj.ContentType == "text/html" {
				f.Add(obj.Body)
			}
		}
	}
	for _, s := range []string{
		"",
		"<",
		"<div",
		"<div/><p>x",
		`<a href="http://x.com/p" class='c1 c2' data-x=bare checked>link</a>`,
		"<!DOCTYPE html><!-- c --><p>a < b</p>",
		"<script>var x = '</scr' + 'ipt>';</script>",
		"<SCRIPT SRC=HTTP://X.COM/A.JS></SCRIPT>",
		"<style>body{background:url(bg.png)}</style>",
		"<ul><li>one<li>two",
		"</div><<>><img src=",
		"<p\xff\xfe\x00attr=\x01>",
	} {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		root, err := Parse(data)
		if err != nil {
			return
		}
		count := 0
		Walk(root, func(n *Node) {
			count++
			if hasASCIIUpper(n.Tag) {
				t.Fatalf("tag not lowercased: %q", n.Tag)
			}
			for _, a := range n.Attrs {
				if a.Key == "" {
					t.Fatal("empty attribute key survived")
				}
				if hasASCIIUpper(a.Key) {
					t.Fatalf("attr key not lowercased: %q", a.Key)
				}
				if got, ok := n.Attrs.Get(a.Key); !ok || (got != a.Value && n.Attr(a.Key) == "") {
					t.Fatalf("AttrList lookup lost %q", a.Key)
				}
			}
		})
		if count < 1 {
			t.Fatal("parsed tree has no root")
		}
		for _, r := range Resources(root, "http://x.com/dir/") {
			if r.URL == "" {
				t.Fatal("Resources returned empty URL")
			}
			if !strings.HasPrefix(r.URL, "http://") && !strings.HasPrefix(r.URL, "https://") {
				t.Fatalf("Resources returned non-absolute URL %q", r.URL)
			}
		}
		InlineScripts(root)
		InlineStyles(root)
	})
}

func hasASCIIUpper(s string) bool {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c >= 'A' && c <= 'Z' {
			return true
		}
	}
	return false
}
