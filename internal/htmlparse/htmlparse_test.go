package htmlparse

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *Node {
	t.Helper()
	root, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	return root
}

func TestParseSimpleTree(t *testing.T) {
	root := mustParse(t, `<html><body><div id="main"><p>hello</p></div></body></html>`)
	divs := Find(root, "div")
	if len(divs) != 1 || divs[0].Attr("id") != "main" {
		t.Fatalf("div = %+v", divs)
	}
	ps := Find(root, "p")
	if len(ps) != 1 || len(ps[0].Children) != 1 || ps[0].Children[0].Text != "hello" {
		t.Fatalf("p = %+v", ps)
	}
}

func TestVoidElementsDoNotNest(t *testing.T) {
	root := mustParse(t, `<div><img src="a.png"><img src="b.png"></div>`)
	imgs := Find(root, "img")
	if len(imgs) != 2 {
		t.Fatalf("imgs = %d, want 2", len(imgs))
	}
	if len(imgs[0].Children) != 0 {
		t.Fatal("void element has children")
	}
}

func TestSelfClosingTag(t *testing.T) {
	root := mustParse(t, `<div><br/><span>x</span></div>`)
	if len(Find(root, "span")) != 1 {
		t.Fatal("self-closing br swallowed span")
	}
}

func TestAttributes(t *testing.T) {
	root := mustParse(t, `<a href="http://x.com/p" class='c1 c2' data-x=bare checked>link</a>`)
	a := Find(root, "a")[0]
	if a.Attr("href") != "http://x.com/p" {
		t.Errorf("href = %q", a.Attr("href"))
	}
	if a.Attr("class") != "c1 c2" {
		t.Errorf("class = %q", a.Attr("class"))
	}
	if a.Attr("data-x") != "bare" {
		t.Errorf("data-x = %q", a.Attr("data-x"))
	}
	if !a.HasAttr("checked") {
		t.Error("bare attribute missing")
	}
}

func TestCommentsAndDoctypeSkipped(t *testing.T) {
	root := mustParse(t, `<!DOCTYPE html><!-- a comment with <tags> --><p>x</p>`)
	if len(Find(root, "p")) != 1 {
		t.Fatal("p not found")
	}
	if len(root.Children) != 1 {
		t.Fatalf("root children = %d, want 1", len(root.Children))
	}
}

func TestScriptRawText(t *testing.T) {
	src := `<script>if (a < b) { fetch("http://x.com/y.js"); }</script><p>after</p>`
	root := mustParse(t, src)
	scripts := InlineScripts(root)
	if len(scripts) != 1 {
		t.Fatalf("scripts = %d, want 1", len(scripts))
	}
	if !strings.Contains(scripts[0], `a < b`) {
		t.Fatalf("script body mangled: %q", scripts[0])
	}
	if len(Find(root, "p")) != 1 {
		t.Fatal("content after script lost")
	}
}

func TestScriptWithSrcIsNotInline(t *testing.T) {
	root := mustParse(t, `<script src="http://x.com/a.js"></script>`)
	if len(InlineScripts(root)) != 0 {
		t.Fatal("external script treated as inline")
	}
}

func TestInlineStyles(t *testing.T) {
	root := mustParse(t, `<style>body { background: url(bg.png); }</style>`)
	styles := InlineStyles(root)
	if len(styles) != 1 || !strings.Contains(styles[0], "bg.png") {
		t.Fatalf("styles = %v", styles)
	}
}

func TestStrayClosingTagIgnored(t *testing.T) {
	root := mustParse(t, `<div></span><p>x</p></div>`)
	if len(Find(root, "p")) != 1 {
		t.Fatal("stray closing tag broke parse")
	}
}

func TestUnclosedElementsClosedAtEOF(t *testing.T) {
	root := mustParse(t, `<div><ul><li>one<li>two`)
	if len(Find(root, "li")) != 2 {
		t.Fatalf("lis = %d, want 2", len(Find(root, "li")))
	}
}

func TestBareLessThanIsText(t *testing.T) {
	root := mustParse(t, `<p>a < b</p>`)
	if len(Find(root, "p")) != 1 {
		t.Fatal("bare < broke parse")
	}
}

func TestFindByAttr(t *testing.T) {
	root := mustParse(t, `<div id="a"></div><div id="b"><span id="c"></span></div>`)
	n := FindByAttr(root, "id", "c")
	if n == nil || n.Tag != "span" {
		t.Fatalf("FindByAttr = %+v", n)
	}
	if FindByAttr(root, "id", "zzz") != nil {
		t.Fatal("found nonexistent node")
	}
}

func TestResourcesExtraction(t *testing.T) {
	src := `
<html><head>
  <link rel="stylesheet" href="/css/main.css">
  <link rel="icon" href="/favicon.ico">
  <script src="app.js"></script>
  <script src="http://cdn.x.com/lib.js" async></script>
</head><body>
  <img src="//img.x.com/1.png">
  <iframe src="http://ads.x.com/frame"></iframe>
  <video src="/v.mp4"></video>
  <input type="image" src="btn.png">
  <img src="#skip">
  <img src="">
</body></html>`
	root := mustParse(t, src)
	res := Resources(root, "http://www.x.com/index.html")
	byURL := map[string]Resource{}
	for _, r := range res {
		byURL[r.URL] = r
	}
	if len(res) != 7 {
		t.Fatalf("resources = %d (%+v), want 7", len(res), res)
	}
	if r := byURL["http://www.x.com/btn.png"]; r.Kind != ResImage {
		t.Errorf("input type=image wrong: %+v", r)
	}
	if r := byURL["http://www.x.com/css/main.css"]; r.Kind != ResStylesheet {
		t.Errorf("css missing/wrong: %+v", byURL)
	}
	if r := byURL["http://www.x.com/app.js"]; r.Kind != ResScript || r.Async {
		t.Errorf("sync script wrong: %+v", r)
	}
	if r := byURL["http://cdn.x.com/lib.js"]; r.Kind != ResScript || !r.Async {
		t.Errorf("async script wrong: %+v", r)
	}
	if r := byURL["http://img.x.com/1.png"]; r.Kind != ResImage {
		t.Errorf("protocol-relative img wrong: %+v", r)
	}
	if r := byURL["http://ads.x.com/frame"]; r.Kind != ResIframe {
		t.Errorf("iframe wrong: %+v", r)
	}
	if r := byURL["http://www.x.com/v.mp4"]; r.Kind != ResMedia {
		t.Errorf("video wrong: %+v", r)
	}
}

func TestDeferScriptIsAsync(t *testing.T) {
	root := mustParse(t, `<script src="d.js" defer></script>`)
	res := Resources(root, "http://x.com/")
	if len(res) != 1 || !res[0].Async {
		t.Fatalf("defer script: %+v", res)
	}
}

func TestResolveURL(t *testing.T) {
	cases := []struct{ base, ref, want string }{
		{"http://a.com/x/y.html", "http://b.com/z", "http://b.com/z"},
		{"http://a.com/x/y.html", "/abs.png", "http://a.com/abs.png"},
		{"http://a.com/x/y.html", "rel.png", "http://a.com/x/rel.png"},
		{"http://a.com/x/y.html", "//cdn.com/c.js", "http://cdn.com/c.js"},
		{"http://a.com", "rel.png", "http://a.com/rel.png"},
		{"http://a.com/x/y.html", "#frag", ""},
		{"http://a.com/x/y.html", "", ""},
		{"http://a.com/x/y.html", "https://secure.com/a", "https://secure.com/a"},
		{"http://a.com/x/y.html", "ftp://files.com/a", ""},
		{"http://a.com/x/y.html", "  spaced.png ", "http://a.com/x/spaced.png"},
	}
	for _, c := range cases {
		if got := ResolveURL(c.base, c.ref); got != c.want {
			t.Errorf("ResolveURL(%q, %q) = %q, want %q", c.base, c.ref, got, c.want)
		}
	}
}

func TestWalkOrder(t *testing.T) {
	root := mustParse(t, `<a></a><b><c></c></b>`)
	var tags []string
	Walk(root, func(n *Node) {
		if n.Tag != "" {
			tags = append(tags, n.Tag)
		}
	})
	want := []string{"#document", "a", "b", "c"}
	if strings.Join(tags, ",") != strings.Join(want, ",") {
		t.Fatalf("walk order = %v", tags)
	}
}

func TestLargePageParses(t *testing.T) {
	var b strings.Builder
	b.WriteString("<html><body>")
	for i := 0; i < 2000; i++ {
		b.WriteString(`<div class="row"><img src="/img.png"><p>some text content here</p></div>`)
	}
	b.WriteString("</body></html>")
	root := mustParse(t, b.String())
	if got := len(Find(root, "img")); got != 2000 {
		t.Fatalf("imgs = %d", got)
	}
}

func BenchmarkParse100KB(b *testing.B) {
	var sb strings.Builder
	for sb.Len() < 100_000 {
		sb.WriteString(`<div class="c"><a href="/x">link text</a><img src="/i.png"><p>body copy</p></div>`)
	}
	src := []byte(sb.String())
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}
