package browser

import (
	"strings"
	"testing"
	"time"

	"github.com/parcel-go/parcel/internal/eventsim"
)

// fakeFetcher serves from a map after a fixed delay per object.
type fakeFetcher struct {
	sim     *eventsim.Simulator
	store   map[string]Result
	delay   time.Duration
	fetched []string
}

func (f *fakeFetcher) Fetch(url string, cb func(Result)) {
	f.fetched = append(f.fetched, url)
	f.sim.Schedule(f.delay, func() {
		r, ok := f.store[url]
		if !ok {
			cb(Result{URL: url, Status: 404, At: f.sim.Now()})
			return
		}
		r.URL = url
		r.Status = 200
		r.At = f.sim.Now()
		cb(r)
	})
}

func obj(ct, body string) Result { return Result{ContentType: ct, Body: []byte(body)} }

func newEngine(t *testing.T, store map[string]Result, delay time.Duration, opt Options) (*eventsim.Simulator, *Engine, *fakeFetcher) {
	t.Helper()
	sim := eventsim.New(1)
	f := &fakeFetcher{sim: sim, store: store, delay: delay}
	if opt.CPU == (CPUModel{}) {
		opt.CPU = MobileCPU()
	}
	e := New(sim, f, opt)
	return sim, e, f
}

const mainURL = "http://www.site.com/index.html"

func TestSimplePageOnload(t *testing.T) {
	store := map[string]Result{
		mainURL: obj("text/html", `<html><head>
			<link rel="stylesheet" href="/s.css">
			<script src="/a.js"></script>
		</head><body><img src="/i.png"></body></html>`),
		"http://www.site.com/s.css": obj("text/css", `body { color: red; }`),
		"http://www.site.com/a.js":  obj("application/javascript", `var x = 1;`),
		"http://www.site.com/i.png": obj("image/png", strings.Repeat("x", 2048)),
	}
	sim, e, f := newEngine(t, store, 50*time.Millisecond, Options{})
	e.Load(mainURL)
	sim.Run()
	if _, ok := e.OnloadAt(); !ok {
		t.Fatal("onload never fired")
	}
	if _, ok := e.CompleteAt(); !ok {
		t.Fatal("complete never fired")
	}
	if len(f.fetched) != 4 {
		t.Fatalf("fetched %v, want 4 objects", f.fetched)
	}
	ol, _ := e.OnloadAt()
	co, _ := e.CompleteAt()
	if co < ol {
		t.Fatalf("complete %v before onload %v", co, ol)
	}
}

func TestJSDiscoveredObjects(t *testing.T) {
	store := map[string]Result{
		mainURL: obj("text/html", `<html><script src="/app.js"></script></html>`),
		"http://www.site.com/app.js": obj("application/javascript",
			`for (var i = 0; i < 3; i = i + 1) { fetch("/dyn/" + i + ".png"); }`),
		"http://www.site.com/dyn/0.png": obj("image/png", "a"),
		"http://www.site.com/dyn/1.png": obj("image/png", "b"),
		"http://www.site.com/dyn/2.png": obj("image/png", "c"),
	}
	sim, e, _ := newEngine(t, store, 10*time.Millisecond, Options{})
	e.Load(mainURL)
	sim.Run()
	if e.NumRequested() != 5 {
		t.Fatalf("requested %d objects (%v), want 5", e.NumRequested(), e.RequestedURLs())
	}
	if _, ok := e.OnloadAt(); !ok {
		t.Fatal("onload never fired")
	}
	// JS-discovered fetches in parse context block onload.
	ol, _ := e.OnloadAt()
	if ol < 30*time.Millisecond {
		t.Fatalf("onload at %v, too early for a 3-level chain", ol)
	}
}

func TestAsyncScriptDoesNotBlockOnload(t *testing.T) {
	store := map[string]Result{
		mainURL: obj("text/html", `<html>
			<script src="/sync.js"></script>
			<script src="/async.js" async></script>
		</html>`),
		"http://www.site.com/sync.js": obj("application/javascript", `var a = 1;`),
		"http://www.site.com/async.js": obj("application/javascript",
			`fetch("/late.png");`),
		"http://www.site.com/late.png": obj("image/png", "z"),
	}
	// Make async.js slow by giving everything a short delay but checking
	// relative ordering of milestones instead.
	sim, e, _ := newEngine(t, store, 20*time.Millisecond, Options{})
	e.Load(mainURL)
	sim.Run()
	ol, _ := e.OnloadAt()
	co, _ := e.CompleteAt()
	if !(co > ol) {
		t.Fatalf("complete %v should be after onload %v (async tail)", co, ol)
	}
	if !e.loaded["http://www.site.com/late.png"] {
		t.Fatal("async-discovered object never loaded")
	}
}

func TestSetTimeoutFetchIsPostOnload(t *testing.T) {
	store := map[string]Result{
		mainURL: obj("text/html", `<html><script>
			setTimeout(3000, function() { fetch("/ad.png"); });
		</script><img src="/hero.jpg"></html>`),
		"http://www.site.com/hero.jpg": obj("image/jpeg", strings.Repeat("h", 1024)),
		"http://www.site.com/ad.png":   obj("image/png", "ad"),
	}
	sim, e, _ := newEngine(t, store, 10*time.Millisecond, Options{})
	e.Load(mainURL)
	sim.Run()
	ol, _ := e.OnloadAt()
	co, _ := e.CompleteAt()
	if ol > time.Second {
		t.Fatalf("onload at %v — timer must not block it", ol)
	}
	if co < 3*time.Second {
		t.Fatalf("complete at %v — must wait for the 3s timer fetch", co)
	}
	if !e.loaded["http://www.site.com/ad.png"] {
		t.Fatal("timer fetch never loaded")
	}
	if e.TimersSet != 1 {
		t.Fatalf("TimersSet = %d", e.TimersSet)
	}
}

func TestCSSDiscovery(t *testing.T) {
	store := map[string]Result{
		mainURL: obj("text/html", `<html><link rel="stylesheet" href="/main.css"></html>`),
		"http://www.site.com/main.css": obj("text/css",
			`@import "extra.css"; body { background: url(/bg.png); }`),
		"http://www.site.com/extra.css": obj("text/css", `.x { background: url(icon.png); }`),
		"http://www.site.com/bg.png":    obj("image/png", "bg"),
		"http://www.site.com/icon.png":  obj("image/png", "ic"),
	}
	sim, e, _ := newEngine(t, store, 5*time.Millisecond, Options{})
	e.Load(mainURL)
	sim.Run()
	if e.NumRequested() != 5 {
		t.Fatalf("requested %v, want 5", e.RequestedURLs())
	}
	if _, ok := e.CompleteAt(); !ok {
		t.Fatal("complete never fired")
	}
}

func TestDocumentWriteDiscovery(t *testing.T) {
	store := map[string]Result{
		mainURL: obj("text/html", `<html><script>
			document.write("<img src='/w1.png'><script src='/w2.js'></" + "script>");
		</script></html>`),
		"http://www.site.com/w1.png": obj("image/png", "1"),
		"http://www.site.com/w2.js":  obj("application/javascript", `fetch("/w3.png");`),
		"http://www.site.com/w3.png": obj("image/png", "3"),
	}
	sim, e, _ := newEngine(t, store, 5*time.Millisecond, Options{})
	e.Load(mainURL)
	sim.Run()
	for _, u := range []string{"/w1.png", "/w2.js", "/w3.png"} {
		if !e.loaded["http://www.site.com"+u] {
			t.Fatalf("%s not loaded; requested: %v", u, e.RequestedURLs())
		}
	}
}

func TestDuplicateRequestsSuppressed(t *testing.T) {
	store := map[string]Result{
		mainURL: obj("text/html", `<html>
			<img src="/same.png"><img src="/same.png">
			<script>fetch("/same.png");</script>
		</html>`),
		"http://www.site.com/same.png": obj("image/png", "s"),
	}
	sim, e, f := newEngine(t, store, 5*time.Millisecond, Options{})
	e.Load(mainURL)
	sim.Run()
	count := 0
	for _, u := range f.fetched {
		if strings.HasSuffix(u, "same.png") {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("same.png fetched %d times", count)
	}
}

func TestMissingObjectToleratedAs404(t *testing.T) {
	store := map[string]Result{
		mainURL:                        obj("text/html", `<html><img src="/gone.png"><img src="/here.png"></html>`),
		"http://www.site.com/here.png": obj("image/png", "h"),
	}
	sim, e, _ := newEngine(t, store, 5*time.Millisecond, Options{})
	e.Load(mainURL)
	sim.Run()
	if _, ok := e.CompleteAt(); !ok {
		t.Fatal("404 stalled the page")
	}
}

func TestEventHandlersRunLocally(t *testing.T) {
	store := map[string]Result{
		mainURL: obj("text/html", `<html><script>
			var idx = 0;
			onEvent("click", "next", function() {
				idx = idx + 1;
				document.show("img" + idx);
			});
		</script></html>`),
	}
	sim, e, f := newEngine(t, store, 5*time.Millisecond, Options{})
	e.Load(mainURL)
	sim.Run()
	if e.Handlers("click", "next") != 1 {
		t.Fatalf("handlers = %d", e.Handlers("click", "next"))
	}
	fetchesBefore := len(f.fetched)
	domBefore := e.DOMOps
	for i := 0; i < 3; i++ {
		if n := e.FireEvent("click", "next"); n != 1 {
			t.Fatalf("FireEvent ran %d handlers", n)
		}
		sim.Run()
	}
	if len(f.fetched) != fetchesBefore {
		t.Fatal("local interaction caused network fetches")
	}
	if e.DOMOps != domBefore+3 {
		t.Fatalf("DOMOps = %d, want +3", e.DOMOps)
	}
}

func TestEventHandlerCanFetch(t *testing.T) {
	store := map[string]Result{
		mainURL: obj("text/html", `<html><script>
			onEvent("click", "more", function() { fetch("/extra.json"); });
		</script></html>`),
		"http://www.site.com/extra.json": obj("application/json", `{}`),
	}
	sim, e, _ := newEngine(t, store, 5*time.Millisecond, Options{})
	e.Load(mainURL)
	sim.Run()
	e.FireEvent("click", "more")
	sim.Run()
	if !e.loaded["http://www.site.com/extra.json"] {
		t.Fatal("handler fetch not loaded")
	}
}

func TestFixedRandomMakesURLsDeterministic(t *testing.T) {
	mk := func(fixed bool, seed int64) []string {
		store := map[string]Result{
			mainURL: obj("text/html", `<html><script>
				fetch("/ad?r=" + rand(1000000));
			</script></html>`),
		}
		sim := eventsim.New(seed)
		f := &fakeFetcher{sim: sim, store: store, delay: time.Millisecond}
		e := New(sim, f, Options{CPU: MobileCPU(), FixedRandom: fixed})
		e.Load(mainURL)
		sim.Run()
		return f.fetched
	}
	a, b := mk(true, 1), mk(true, 99)
	if a[1] != b[1] {
		t.Fatalf("FixedRandom URLs differ: %v vs %v", a[1], b[1])
	}
	c, d := mk(false, 1), mk(false, 2)
	if c[1] == d[1] {
		t.Fatalf("non-fixed random URLs identical across seeds: %v", c[1])
	}
}

func TestProxyCPUFasterThanMobile(t *testing.T) {
	big := strings.Repeat(`<div><img src="/i.png"><p>text</p></div>`, 2000)
	load := func(cpu CPUModel) time.Duration {
		store := map[string]Result{
			mainURL:                     obj("text/html", `<html>`+big+`</html>`),
			"http://www.site.com/i.png": obj("image/png", "i"),
		}
		sim := eventsim.New(1)
		f := &fakeFetcher{sim: sim, store: store, delay: time.Millisecond}
		e := New(sim, f, Options{CPU: cpu})
		e.Load(mainURL)
		sim.Run()
		ol, ok := e.OnloadAt()
		if !ok {
			t.Fatal("no onload")
		}
		return ol
	}
	mobile, proxy := load(MobileCPU()), load(ProxyCPU())
	if proxy >= mobile {
		t.Fatalf("proxy onload %v not faster than mobile %v", proxy, mobile)
	}
}

func TestCPUActiveAccounted(t *testing.T) {
	store := map[string]Result{
		mainURL: obj("text/html", `<html><script>
			var s = 0;
			for (var i = 0; i < 1000; i = i + 1) { s = s + i; }
		</script></html>`),
	}
	sim, e, _ := newEngine(t, store, time.Millisecond, Options{})
	e.Load(mainURL)
	sim.Run()
	if e.CPUActive() <= 0 {
		t.Fatal("no CPU time accounted")
	}
	// 1000 iterations × several ops × 8µs/op ≫ 10ms.
	if e.CPUActive() < 10*time.Millisecond {
		t.Fatalf("CPUActive = %v, suspiciously small", e.CPUActive())
	}
}

func TestLoadTwicePanics(t *testing.T) {
	sim, e, _ := newEngine(t, map[string]Result{}, time.Millisecond, Options{})
	e.Load(mainURL)
	sim.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("second Load did not panic")
		}
	}()
	e.Load(mainURL)
}

func TestJSErrorDoesNotStallPage(t *testing.T) {
	store := map[string]Result{
		mainURL: obj("text/html", `<html>
			<script>undefined_variable_boom;</script>
			<img src="/ok.png">
		</html>`),
		"http://www.site.com/ok.png": obj("image/png", "ok"),
	}
	sim, e, _ := newEngine(t, store, time.Millisecond, Options{})
	e.Load(mainURL)
	sim.Run()
	if _, ok := e.CompleteAt(); !ok {
		t.Fatal("JS error stalled page")
	}
	if len(e.JSErrors) == 0 {
		t.Fatal("JS error not recorded")
	}
}

func TestIframeRecursion(t *testing.T) {
	store := map[string]Result{
		mainURL:                     obj("text/html", `<html><iframe src="http://ads.net/frame.html"></iframe></html>`),
		"http://ads.net/frame.html": obj("text/html", `<html><img src="/banner.gif"></html>`),
		"http://ads.net/banner.gif": obj("image/gif", "b"),
	}
	sim, e, _ := newEngine(t, store, time.Millisecond, Options{})
	e.Load(mainURL)
	sim.Run()
	if !e.loaded["http://ads.net/banner.gif"] {
		t.Fatalf("iframe resources not loaded: %v", e.RequestedURLs())
	}
}

func TestMaxDepthBoundsRecursion(t *testing.T) {
	// A script chain that would recurse forever via document.write.
	store := map[string]Result{
		mainURL: obj("text/html", `<html><script src="/loop.js"></script></html>`),
		"http://www.site.com/loop.js": obj("application/javascript",
			`document.write("<script src='/loop2.js'></" + "script>");`),
		"http://www.site.com/loop2.js": obj("application/javascript",
			`document.write("<script src='/loop.js'></" + "script>");`),
	}
	sim, e, _ := newEngine(t, store, time.Millisecond, Options{MaxDepth: 3})
	e.Load(mainURL)
	sim.Run()
	if _, ok := e.CompleteAt(); !ok {
		t.Fatal("depth-bounded page did not complete")
	}
}
