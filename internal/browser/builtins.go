package browser

import (
	"fmt"
	"time"

	"github.com/parcel-go/parcel/internal/htmlparse"
	"github.com/parcel-go/parcel/internal/minijs"
)

// bindBuiltins installs the host environment scripts run against.
//
//	fetch(url)              fetch an object (blocks onload in parse context)
//	fetchAsync(url)         fetch without blocking onload
//	setTimeout(ms, fn)      run fn after ms of page time (fetches inside are
//	                        post-onload/async, like real async JS, §2.1)
//	onEvent(evt, id, fn)    register an interaction handler (runs locally)
//	rand(n)                 random int in [0,n) — constant under FixedRandom
//	log(msg)                no-op diagnostic
//	document.write(html)    inject markup; its resources are discovered
//	document.append(id)     DOM mutation (costed, no discovery)
//	document.show(id) / document.hide(id)
func (e *Engine) bindBuiltins() {
	e.in.BindNative("fetch", func(args []minijs.Value) (minijs.Value, error) {
		return e.builtinFetch(args, true)
	})
	e.in.BindNative("fetchAsync", func(args []minijs.Value) (minijs.Value, error) {
		return e.builtinFetch(args, false)
	})
	e.in.BindNative("setTimeout", func(args []minijs.Value) (minijs.Value, error) {
		if len(args) < 2 {
			return minijs.Null(), fmt.Errorf("setTimeout needs (ms, fn)")
		}
		ms := args[0].Num()
		fn := args[1].Closure()
		if fn == nil {
			return minijs.Null(), fmt.Errorf("setTimeout second arg must be a function")
		}
		if e.rec != nil {
			e.rec.cacheable = false // timer captures an engine-bound closure
		}
		ctx := *e.curCtx
		e.addEffect(func() {
			e.TimersSet++
			e.pendingTotal++
			//parcelvet:allow noclosure(one allocation per page-level JS timer, not per packet; the continuation needs the full scriptCtx and closure value, which have no pooled carrier)
			e.sim.Schedule(time.Duration(ms)*time.Millisecond, func() {
				tctx := scriptCtx{baseURL: ctx.baseURL, blocking: false, depth: ctx.depth}
				e.runBuffered(tctx, func() error {
					_, err := e.in.CallClosure(fn)
					return err
				})
			})
		})
		return minijs.Null(), nil
	})
	e.in.BindNative("onEvent", func(args []minijs.Value) (minijs.Value, error) {
		if len(args) < 3 {
			return minijs.Null(), fmt.Errorf("onEvent needs (event, target, fn)")
		}
		event, target := args[0].Str(), args[1].Str()
		fn := args[2].Closure()
		if fn == nil {
			return minijs.Null(), fmt.Errorf("onEvent third arg must be a function")
		}
		if e.rec != nil {
			e.rec.cacheable = false // handler captures an engine-bound closure
		}
		key := event + "/" + target
		e.addEffect(func() {
			e.handlers[key] = append(e.handlers[key], fn)
		})
		return minijs.Null(), nil
	})
	e.in.BindNative("rand", func(args []minijs.Value) (minijs.Value, error) {
		n := 1 << 20
		if len(args) > 0 && args[0].Num() > 0 {
			n = int(args[0].Num())
		}
		if e.opt.FixedRandom {
			// The web-page-replay rewrite (§7.3): a constant replaces the
			// random so proxy and client derive identical URLs.
			if e.rec != nil {
				e.rec.needsFixedRandom = true
			}
			return minijs.Number(4), nil
		}
		if e.rec != nil {
			e.rec.cacheable = false // consumes the simulation RNG stream
		}
		return minijs.Number(float64(e.sim.Rand().Intn(n))), nil
	})
	e.in.BindNative("log", func(args []minijs.Value) (minijs.Value, error) {
		return minijs.Null(), nil
	})
	domOp := func(args []minijs.Value) (minijs.Value, error) {
		if e.rec != nil {
			e.rec.effects = append(e.rec.effects, execEffect{kind: effectDOM})
		}
		e.addEffect(func() { e.DOMOps++ })
		return minijs.Null(), nil
	}
	e.in.Bind("document", minijs.Namespace(map[string]minijs.Value{
		"write": minijs.NativeValue(func(args []minijs.Value) (minijs.Value, error) {
			if len(args) < 1 {
				return minijs.Null(), nil
			}
			html := args[0].Str()
			if e.rec != nil {
				e.rec.effects = append(e.rec.effects, execEffect{kind: effectWrite, s: html})
			}
			ctx := *e.curCtx
			e.addEffect(func() {
				root, ok := cachedHTMLString(html)
				if !ok {
					return
				}
				e.discoverFromTree(root, ctx.baseURL, ctx.blocking, ctx.depth+1)
			})
			return minijs.Null(), nil
		}),
		"append": minijs.NativeValue(domOp),
		"remove": minijs.NativeValue(domOp),
		"show":   minijs.NativeValue(domOp),
		"hide":   minijs.NativeValue(domOp),
	}))
}

func (e *Engine) builtinFetch(args []minijs.Value, respectCtx bool) (minijs.Value, error) {
	if len(args) < 1 {
		return minijs.Null(), fmt.Errorf("fetch needs a URL")
	}
	raw := args[0].Str()
	if e.rec != nil {
		e.rec.effects = append(e.rec.effects, execEffect{kind: effectFetch, s: raw, respect: respectCtx})
	}
	ctx := *e.curCtx
	url := htmlparse.ResolveURL(ctx.baseURL, raw)
	if url == "" {
		return minijs.Null(), nil
	}
	blocking := false
	if respectCtx {
		blocking = ctx.blocking
	}
	e.addEffect(func() {
		e.requestObject(url, blocking, ctx.depth+1)
	})
	return minijs.Null(), nil
}

// FireEvent delivers a user interaction (e.g. a button click, §8.2) to the
// page's registered handlers. Handlers execute locally in this engine; any
// fetches they perform are non-blocking. It returns the number of handlers
// invoked.
func (e *Engine) FireEvent(event, target string) int {
	key := event + "/" + target
	hs := e.handlers[key]
	for _, h := range hs {
		h := h
		e.pendingTotal++ // balanced by runBuffered's finish
		e.runBuffered(scriptCtx{baseURL: e.baseURL, blocking: false, depth: 0}, func() error {
			_, err := e.in.CallClosure(h)
			return err
		})
	}
	return len(hs)
}

// Handlers returns the number of handlers registered for event/target.
func (e *Engine) Handlers(event, target string) int {
	return len(e.handlers[event+"/"+target])
}
