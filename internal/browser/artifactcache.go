package browser

import (
	"strings"
	"sync"

	"github.com/parcel-go/parcel/internal/cssparse"
	"github.com/parcel-go/parcel/internal/htmlparse"
	"github.com/parcel-go/parcel/internal/minijs"
)

// Page-artifact cache: parsed DOM trees, CSS ref lists, and inline-style
// asset URLs, shared across every engine in the process. The same webgen
// page is loaded by the DIR, CB, and PARCEL schemes — and by every round of
// a sweep — and within one PARCEL load the proxy's discovery browser and
// the client's renderer each parse the identical bytes. All cached values
// are pure functions of their keys (document bytes, or stylesheet text +
// base URL), and htmlparse trees are immutable once Parse returns (the
// engine only reads them), so sharing cannot leak state between rounds:
// eviction or a cold cache can only cost a re-parse, never change a metric.
// Modelled CPU costs stay untouched by construction — they derive from byte
// lengths (perKB) and interpreter op counts, not from real Go work done.
//
// Concurrency: the experiment runner loads pages from a worker pool, so the
// cache is guarded by an RWMutex; hits take the read lock only.

// maxArtifactEntries bounds the total entry count across the three maps.
// When full, the cache is cleared outright (epoch clear, like the minijs
// program cache): deterministic, and cheaper than tracking recency.
const maxArtifactEntries = 4096

type htmlArtifact struct {
	root  *htmlparse.Node
	nodes []*htmlparse.Node // element nodes (Tag != "") in document order
	bad   bool              // body does not parse (deterministic per body)
}

var artCache = struct {
	mu sync.RWMutex
	n  int // total entries across all maps
	// html is keyed by document bytes; refs and assets are two-level
	// (base URL, then content) so the hot inner lookup can use Go's
	// byte-slice-keyed string indexing without allocating.
	html   map[string]*htmlArtifact
	refs   map[string]map[string][]cssparse.Ref
	assets map[string]map[string][]string
}{
	html:   make(map[string]*htmlArtifact, 64),
	refs:   make(map[string]map[string][]cssparse.Ref, 16),
	assets: make(map[string]map[string][]string, 16),
}

// evictLocked clears the whole cache once it reaches capacity. Caller holds
// the write lock. Callers that cached an outer map pointer must re-fetch it
// after inserting (insert helpers below handle this).
func evictLocked() {
	if artCache.n < maxArtifactEntries {
		return
	}
	artCache.html = make(map[string]*htmlArtifact, 64)
	artCache.refs = make(map[string]map[string][]cssparse.Ref, 16)
	artCache.assets = make(map[string]map[string][]string, 16)
	artCache.n = 0
}

func buildHTMLArtifact(body []byte) *htmlArtifact {
	root, err := htmlparse.Parse(body)
	if err != nil {
		return &htmlArtifact{bad: true}
	}
	art := &htmlArtifact{root: root}
	htmlparse.Walk(root, func(n *htmlparse.Node) {
		if n.Tag != "" {
			art.nodes = append(art.nodes, n)
		}
	})
	return art
}

// cachedHTML returns the parsed tree and its element list for a document
// body, parsing at most once per distinct body process-wide. ok is false
// when the body does not parse.
func cachedHTML(body []byte) (root *htmlparse.Node, nodes []*htmlparse.Node, ok bool) {
	artCache.mu.RLock()
	art := artCache.html[string(body)]
	artCache.mu.RUnlock()
	if art == nil {
		art = buildHTMLArtifact(body)
		artCache.mu.Lock()
		evictLocked()
		if prev := artCache.html[string(body)]; prev != nil {
			art = prev // lost a race; keep the first tree so sharing holds
		} else {
			artCache.html[string(body)] = art
			artCache.n++
		}
		artCache.mu.Unlock()
	}
	return art.root, art.nodes, !art.bad
}

// cachedHTMLString is cachedHTML for fragments already held as strings
// (document.write payloads).
func cachedHTMLString(html string) (*htmlparse.Node, bool) {
	artCache.mu.RLock()
	art := artCache.html[html]
	artCache.mu.RUnlock()
	if art == nil {
		art = buildHTMLArtifact([]byte(html))
		artCache.mu.Lock()
		evictLocked()
		if prev := artCache.html[html]; prev != nil {
			art = prev
		} else {
			artCache.html[html] = art
			artCache.n++
		}
		artCache.mu.Unlock()
	}
	return art.root, !art.bad
}

// cachedCSSRefs returns cssparse.Refs(body, baseURL), computed once per
// (base URL, stylesheet bytes) pair.
func cachedCSSRefs(body []byte, baseURL string) []cssparse.Ref {
	artCache.mu.RLock()
	inner := artCache.refs[baseURL]
	refs, hit := inner[string(body)]
	artCache.mu.RUnlock()
	if hit {
		return refs
	}
	refs = cssparse.Refs(string(body), baseURL)
	artCache.mu.Lock()
	evictLocked()
	inner = artCache.refs[baseURL] // re-fetch: evictLocked may have cleared
	if inner == nil {
		inner = make(map[string][]cssparse.Ref, 4)
		artCache.refs[baseURL] = inner
	}
	if prev, ok := inner[string(body)]; ok {
		refs = prev
	} else {
		inner[string(body)] = refs
		artCache.n++
	}
	artCache.mu.Unlock()
	return refs
}

// cachedAssetURLs returns cssparse.AssetURLs(text, baseURL), computed once
// per (base URL, inline-style text) pair.
func cachedAssetURLs(text, baseURL string) []string {
	artCache.mu.RLock()
	urls, hit := artCache.assets[baseURL][text]
	artCache.mu.RUnlock()
	if hit {
		return urls
	}
	urls = cssparse.AssetURLs(text, baseURL)
	artCache.mu.Lock()
	evictLocked()
	inner := artCache.assets[baseURL]
	if inner == nil {
		inner = make(map[string][]string, 4)
		artCache.assets[baseURL] = inner
	}
	if prev, ok := inner[text]; ok {
		urls = prev
	} else {
		inner[text] = urls
		artCache.n++
	}
	artCache.mu.Unlock()
	return urls
}

// Prewarm populates the artifact and program caches for one page object
// before any scheme loads it. internal/scenario calls this while building a
// topology, so by the time engines run — across DIR, CB, and PARCEL, and
// across sweep rounds — parsing and script compilation are cache hits. It
// is an optimization only: engines compute identical artifacts on demand if
// it is never called.
func Prewarm(url, contentType string, body []byte) {
	switch {
	case strings.Contains(contentType, "html"):
		_, nodes, ok := cachedHTML(body)
		if !ok {
			return
		}
		for _, n := range nodes {
			switch n.Tag {
			case "script":
				if n.Attr("src") == "" && strings.TrimSpace(n.Text) != "" {
					_, _ = minijs.Compile(n.Text)
				}
			case "style":
				cachedAssetURLs(n.Text, url)
			}
		}
	case strings.Contains(contentType, "css"):
		cachedCSSRefs(body, url)
	case strings.Contains(contentType, "javascript"):
		_, _ = minijs.CompileBytes(body)
	}
}
