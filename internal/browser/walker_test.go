package browser

import (
	"strings"
	"testing"
	"time"
)

// These tests pin the parser-blocking walk semantics — the mechanism that
// separates DIR from PARCEL in the reproduction (see Figure 6a's flat
// segments).

func TestSyncScriptBlocksLaterDiscovery(t *testing.T) {
	store := map[string]Result{
		mainURL: obj("text/html", `<html>
			<img src="/before.png">
			<script src="/blocker.js"></script>
			<img src="/after.png">
		</html>`),
		"http://www.site.com/before.png": obj("image/png", "b"),
		"http://www.site.com/blocker.js": obj("application/javascript", `var x = 1;`),
		"http://www.site.com/after.png":  obj("image/png", "a"),
	}
	sim, e, f := newEngine(t, store, 40*time.Millisecond, Options{})
	e.Load(mainURL)
	sim.Run()

	idx := map[string]int{}
	for i, u := range f.fetched {
		idx[u] = i
	}
	if idx["http://www.site.com/before.png"] > idx["http://www.site.com/blocker.js"] {
		t.Fatal("pre-script image not requested before the script")
	}
	if idx["http://www.site.com/after.png"] < idx["http://www.site.com/blocker.js"] {
		t.Fatal("post-script image requested before the blocking script")
	}
	// The after-image request must wait for the script's round trip.
	if _, ok := e.CompleteAt(); !ok {
		t.Fatal("incomplete")
	}
}

func TestChainedScriptsSerialize(t *testing.T) {
	// Three head scripts: each costs a fetch round trip serially, so onload
	// is at least 3 fetch-delays even though bandwidth is unconstrained.
	const delay = 50 * time.Millisecond
	store := map[string]Result{
		mainURL: obj("text/html", `<html><head>
			<script src="/s1.js"></script>
			<script src="/s2.js"></script>
			<script src="/s3.js"></script>
		</head></html>`),
		"http://www.site.com/s1.js": obj("application/javascript", `var a = 1;`),
		"http://www.site.com/s2.js": obj("application/javascript", `var b = 2;`),
		"http://www.site.com/s3.js": obj("application/javascript", `var c = 3;`),
	}
	sim, e, _ := newEngine(t, store, delay, Options{})
	e.Load(mainURL)
	sim.Run()
	ol, ok := e.OnloadAt()
	if !ok {
		t.Fatal("no onload")
	}
	if ol < 4*delay { // main doc + 3 serialized scripts
		t.Fatalf("onload at %v — scripts did not serialize (want >= %v)", ol, 4*delay)
	}
}

func TestAsyncScriptDoesNotSuspendWalk(t *testing.T) {
	const delay = 50 * time.Millisecond
	store := map[string]Result{
		mainURL: obj("text/html", `<html>
			<script src="/a1.js" async></script>
			<script src="/a2.js" async></script>
			<script src="/a3.js" async></script>
		</html>`),
		"http://www.site.com/a1.js": obj("application/javascript", `var a = 1;`),
		"http://www.site.com/a2.js": obj("application/javascript", `var b = 2;`),
		"http://www.site.com/a3.js": obj("application/javascript", `var c = 3;`),
	}
	sim, e, _ := newEngine(t, store, delay, Options{})
	e.Load(mainURL)
	sim.Run()
	co, ok := e.CompleteAt()
	if !ok {
		t.Fatal("no complete")
	}
	// Async scripts fetch in parallel: done in ~2 delays, not 4.
	if co > 3*delay {
		t.Fatalf("complete at %v — async scripts serialized", co)
	}
}

func TestInlineScriptBlocksWalk(t *testing.T) {
	store := map[string]Result{
		mainURL: obj("text/html", `<html>
			<script>var i = 0; while (i < 20000) { i = i + 1; }</script>
			<img src="/late.png">
		</html>`),
		"http://www.site.com/late.png": obj("image/png", "l"),
	}
	sim, e, f := newEngine(t, store, time.Millisecond, Options{})
	e.Load(mainURL)
	sim.Run()
	// The image fetch is issued only after the heavy inline script executes.
	var imgIssuedAt time.Duration
	for _, u := range f.fetched {
		if strings.HasSuffix(u, "late.png") {
			imgIssuedAt = 1 // found
		}
	}
	if imgIssuedAt == 0 {
		t.Fatal("late image never fetched")
	}
	ol, _ := e.OnloadAt()
	// 20k iterations × ~4 ops × 8 µs ≈ 640 ms of JS before the image.
	if ol < 400*time.Millisecond {
		t.Fatalf("onload %v — inline script cost not serialized", ol)
	}
}

func TestOnloadNetExcludesTrailingCPU(t *testing.T) {
	store := map[string]Result{
		mainURL: obj("text/html", `<html>
			<img src="/i.png">
			<script>var i = 0; while (i < 30000) { i = i + 1; }</script>
		</html>`),
		"http://www.site.com/i.png": obj("image/png", strings.Repeat("x", 100)),
	}
	sim, e, _ := newEngine(t, store, 5*time.Millisecond, Options{})
	e.Load(mainURL)
	sim.Run()
	olNet, ok1 := e.OnloadNetAt()
	olFull, ok2 := e.OnloadAt()
	if !ok1 || !ok2 {
		t.Fatal("missing onload")
	}
	if olNet >= olFull {
		t.Fatalf("network OLT %v >= full OLT %v — trailing JS not excluded", olNet, olFull)
	}
}

func TestDupScriptAcrossWalkAndFetch(t *testing.T) {
	// The same script referenced twice: the second reference must reuse the
	// first fetch (waiters path), not hang the walk.
	store := map[string]Result{
		mainURL: obj("text/html", `<html>
			<script src="/shared.js"></script>
			<script src="/shared.js"></script>
			<img src="/done.png">
		</html>`),
		"http://www.site.com/shared.js": obj("application/javascript", `var s = 1;`),
		"http://www.site.com/done.png":  obj("image/png", "d"),
	}
	sim, e, f := newEngine(t, store, 10*time.Millisecond, Options{})
	e.Load(mainURL)
	sim.Run()
	if _, ok := e.CompleteAt(); !ok {
		t.Fatal("walk hung on duplicate script")
	}
	count := 0
	for _, u := range f.fetched {
		if strings.HasSuffix(u, "shared.js") {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("shared.js fetched %d times", count)
	}
	if !e.loaded["http://www.site.com/done.png"] {
		t.Fatal("content after duplicate script lost")
	}
}

func TestFireEventNoHandlers(t *testing.T) {
	sim, e, _ := newEngine(t, map[string]Result{mainURL: obj("text/html", `<html></html>`)}, time.Millisecond, Options{})
	e.Load(mainURL)
	sim.Run()
	if n := e.FireEvent("click", "nothing"); n != 0 {
		t.Fatalf("handlers = %d", n)
	}
	sim.Run()
}

func TestUnknownContentTypeTreatedAsAsset(t *testing.T) {
	store := map[string]Result{
		mainURL:                        obj("text/html", `<html><img src="/blob.bin"></html>`),
		"http://www.site.com/blob.bin": obj("application/octet-stream", "???"),
	}
	sim, e, _ := newEngine(t, store, time.Millisecond, Options{})
	e.Load(mainURL)
	sim.Run()
	if _, ok := e.CompleteAt(); !ok {
		t.Fatal("unknown content type stalled page")
	}
}
