package browser

import (
	"sync"
	"time"

	"github.com/parcel-go/parcel/internal/htmlparse"
	"github.com/parcel-go/parcel/internal/minijs"
)

// The exec-outcome cache memoizes what running a compiled script *does* —
// its op count, its buffered side effects in abstract form, and its net
// global-scope reads and writes — so sweeps that execute the same generated
// script body thousands of times (every scheme, round, and batch member
// loading the same page) interpret it once and replay the outcome.
//
// Replay is only taken when it is provably bit-identical to execution:
//
//   - the recorded global read-set must match the replaying interpreter's
//     pre-state exactly (scalars by value, builtins by kind), so any
//     pre-state the script could branch on is re-validated;
//   - the recorded op delta must fit the replaying interpreter's op budget,
//     otherwise the script re-executes so the budget error surfaces at the
//     same op it would have without the cache;
//   - scripts that touch engine identity — setTimeout/onEvent (capture
//     closures), rand() without FixedRandom (consumes the simulation RNG),
//     non-scalar global writes, or any runtime error — are marked
//     non-cacheable at record time and always re-execute.
//
// Effects are stored context-free (the raw fetch URL, the written markup)
// and re-resolved against the replaying script context, so one recording
// serves every base URL / blocking / depth combination.

// effectKind enumerates the abstract side effects scripts can buffer.
type effectKind int

const (
	effectFetch effectKind = iota // s = raw URL, respect = honor ctx.blocking
	effectWrite                   // s = injected markup
	effectDOM                     // one costed DOM mutation
)

type execEffect struct {
	kind    effectKind
	s       string
	respect bool
}

// globalRead is one observed dynamic-global read: the value (and presence)
// the recorded execution saw before writing the name itself.
type globalRead struct {
	name string
	v    minijs.Value
	ok   bool
}

// globalWrite is the final value a script left in a global, in first-write
// order.
type globalWrite struct {
	name string
	v    minijs.Value
}

// execOutcome is one recorded script execution. cacheable=false entries are
// kept so repeat executions skip the recording bookkeeping.
type execOutcome struct {
	cacheable        bool
	needsFixedRandom bool
	ops              int
	effects          []execEffect
	reads            []globalRead
	writes           []globalWrite
}

// maxExecEntries bounds the outcome cache the same way the artifact and
// program caches are bounded: on overflow the whole epoch is dropped and
// re-recorded on demand.
const maxExecEntries = 4096

var execCache struct {
	sync.RWMutex
	m map[*minijs.Program]*execOutcome
}

func loadOutcome(prog *minijs.Program) *execOutcome {
	execCache.RLock()
	ent := execCache.m[prog]
	execCache.RUnlock()
	return ent
}

func storeOutcome(prog *minijs.Program, ent *execOutcome) {
	execCache.Lock()
	if execCache.m == nil || len(execCache.m) >= maxExecEntries {
		execCache.m = make(map[*minijs.Program]*execOutcome, 256)
	}
	// First recording wins; racing recorders of the same program produce
	// interchangeable entries (replay re-validates reads either way).
	if _, ok := execCache.m[prog]; !ok {
		execCache.m[prog] = ent
	}
	execCache.Unlock()
}

// execRecorder collects one script execution's outcome while the real run
// proceeds unchanged underneath it.
type execRecorder struct {
	cacheable        bool
	needsFixedRandom bool
	effects          []execEffect
	reads            []globalRead
	readSeen         map[string]bool
	written          map[string]bool
	writeOrder       []string
}

// execCachedThen runs prog through the outcome cache: replay on a validated
// hit, plain execution on a non-cacheable entry or failed validation, and a
// recording run on the first sighting. The caller has already accounted one
// pending unit, exactly as for runBufferedThen.
func (e *Engine) execCachedThen(prog *minijs.Program, ctx scriptCtx, then func()) {
	if ent := loadOutcome(prog); ent != nil {
		if ent.cacheable && e.replayOutcome(ent, ctx, then) {
			return
		}
		e.runBufferedThen(ctx, func() error { return e.in.Run(prog) }, then)
		return
	}
	e.recordThen(prog, ctx, then)
}

// replayOutcome applies a recorded outcome if the current interpreter state
// validates. It mirrors real execution's timeline exactly: global writes and
// op charging happen synchronously (scripts execute inline in virtual time),
// effects apply after the modelled CPU cost on the engine core.
func (e *Engine) replayOutcome(ent *execOutcome, ctx scriptCtx, then func()) bool {
	if ent.needsFixedRandom && !e.opt.FixedRandom {
		return false
	}
	for i := range ent.reads {
		r := &ent.reads[i]
		cur, ok := e.in.Global(r.name)
		if ok != r.ok {
			return false
		}
		if !ok {
			continue
		}
		if r.v.IsScalar() {
			if !r.v.Equals(cur) {
				return false
			}
		} else if !r.v.SameKind(cur) {
			return false
		}
	}
	if !e.in.TryChargeOps(ent.ops) {
		return false
	}
	for i := range ent.writes {
		e.in.Bind(ent.writes[i].name, ent.writes[i].v)
	}
	cost := time.Duration(ent.ops) * e.opt.CPU.JSOp
	e.task(cost, func() {
		for i := range ent.effects {
			ef := &ent.effects[i]
			switch ef.kind {
			case effectFetch:
				url := htmlparse.ResolveURL(ctx.baseURL, ef.s)
				if url == "" {
					continue
				}
				blocking := false
				if ef.respect {
					blocking = ctx.blocking
				}
				e.requestObject(url, blocking, ctx.depth+1)
			case effectWrite:
				if root, ok := cachedHTMLString(ef.s); ok {
					e.discoverFromTree(root, ctx.baseURL, ctx.blocking, ctx.depth+1)
				}
			case effectDOM:
				e.DOMOps++
			}
		}
		e.finish(ctx.blocking)
		if then != nil {
			then()
		}
	})
	return true
}

// recordThen executes prog for real while collecting its outcome, then
// stores the (possibly non-cacheable) entry.
func (e *Engine) recordThen(prog *minijs.Program, ctx scriptCtx, then func()) {
	rec := &execRecorder{
		cacheable: true,
		readSeen:  make(map[string]bool, 8),
		written:   make(map[string]bool, 8),
	}
	e.in.SetGlobalHooks(
		func(name string, v minijs.Value, ok bool) {
			if rec.written[name] || rec.readSeen[name] {
				return
			}
			rec.readSeen[name] = true
			if v.Closure() != nil {
				// Closures are engine-bound; a read of one cannot be
				// validated across interpreters.
				rec.cacheable = false
				return
			}
			rec.reads = append(rec.reads, globalRead{name: name, v: v, ok: ok})
		},
		func(name string) {
			if !rec.written[name] {
				rec.written[name] = true
				rec.writeOrder = append(rec.writeOrder, name)
			}
		})
	e.rec = rec
	before := e.in.Ops()
	var runErr error
	e.runBufferedThen(ctx, func() error {
		runErr = e.in.Run(prog)
		return runErr
	}, then)
	e.rec = nil
	e.in.SetGlobalHooks(nil, nil)

	ent := &execOutcome{
		cacheable:        rec.cacheable && runErr == nil,
		needsFixedRandom: rec.needsFixedRandom,
		ops:              e.in.Ops() - before,
		effects:          rec.effects,
		reads:            rec.reads,
	}
	for _, name := range rec.writeOrder {
		v, ok := e.in.Global(name)
		if !ok || !v.IsScalar() {
			// Deleted (impossible) or engine-bound final value: the write
			// cannot be transplanted into another interpreter.
			ent.cacheable = false
			break
		}
		ent.writes = append(ent.writes, globalWrite{name: name, v: v})
	}
	storeOutcome(prog, ent)
}
