// Package browser implements the browsing engine shared by every scheme in
// the reproduction: the traditional client browser (DIR), the PARCEL proxy's
// headless discovery browser, the PARCEL client's renderer, and the cloud
// browser's remote engine. It drives the fetch → parse → execute loop of
// Figure 1: HTML is parsed into a DOM, stylesheets and scripts are fetched
// and processed, scripts discover further objects (including post-onload
// async loads via timers), and interaction handlers are registered for local
// execution.
//
// Rendering to pixels is out of scope (it does not affect OLT/TLT or radio
// energy; the paper reports a comparable, small rendering time for both
// schemes, §7.1); CPU costs of parsing and script execution are modelled
// explicitly and feed the device energy accounting.
package browser

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/parcel-go/parcel/internal/eventsim"
	"github.com/parcel-go/parcel/internal/htmlparse"
	"github.com/parcel-go/parcel/internal/minijs"
)

// Result is a fetched object as seen by the engine.
type Result struct {
	URL         string
	Status      int
	ContentType string
	Body        []byte
	At          time.Duration
}

// Fetcher retrieves objects asynchronously. Implementations back this with
// the cellular HTTP client (DIR), the proxy's wired HTTP client (PARCEL
// proxy) or the local bundle store (PARCEL client).
type Fetcher interface {
	Fetch(url string, cb func(Result))
}

// CPUModel prices the engine's processing work.
type CPUModel struct {
	HTMLParsePerKB   time.Duration // DOM build cost per KB of markup
	CSSParsePerKB    time.Duration
	ImageDecodePerKB time.Duration
	JSOp             time.Duration // per interpreter operation
}

// MobileCPU approximates a 2014 smartphone ("the relative lack of power of
// mobile browsers", §3).
func MobileCPU() CPUModel {
	return CPUModel{
		HTMLParsePerKB:   3 * time.Millisecond,
		CSSParsePerKB:    time.Millisecond,
		ImageDecodePerKB: 150 * time.Microsecond,
		JSOp:             8 * time.Microsecond,
	}
}

// DesktopCPU approximates a wire-line desktop browser (the Figure 3
// comparison point).
func DesktopCPU() CPUModel {
	return CPUModel{
		HTMLParsePerKB:   600 * time.Microsecond,
		CSSParsePerKB:    200 * time.Microsecond,
		ImageDecodePerKB: 30 * time.Microsecond,
		JSOp:             1500 * time.Nanosecond,
	}
}

// ProxyCPU approximates the well-provisioned proxy server (§4.3).
func ProxyCPU() CPUModel {
	return CPUModel{
		HTMLParsePerKB:   200 * time.Microsecond,
		CSSParsePerKB:    60 * time.Microsecond,
		ImageDecodePerKB: 0, // the proxy does not decode images
		JSOp:             500 * time.Nanosecond,
	}
}

// Events are the engine's observable page milestones.
type Events struct {
	// OnLoad fires when every synchronous (onload-blocking) object has been
	// fetched and processed — the browser Onload event (§2.1).
	OnLoad func(at time.Duration)
	// Complete fires when no fetches, timers or processing remain: every
	// object the page will ever request without user interaction has loaded
	// (the TLT point).
	Complete func(at time.Duration)
	// ObjectLoaded fires per arrived object.
	ObjectLoaded func(url string, size int, at time.Duration)
	// FetchIssued fires when the engine asks its Fetcher for a URL.
	FetchIssued func(url string, blocking bool)
}

// Options tune engine behaviour.
type Options struct {
	CPU    CPUModel
	Events Events
	// FixedRandom, when true, makes the script builtin rand() return a
	// constant — the web-page-replay rewrite of §7.3 that keeps randomized
	// URLs identical across runs (and across proxy/client in PARCEL).
	FixedRandom bool
	// MaxDepth bounds recursive discovery (iframes, document.write chains).
	MaxDepth int
	// ExecCache routes scripts through the process-wide execution-outcome
	// cache (see execcache.go). Replay is validated to be bit-identical to
	// execution; the batched sweep engine enables it, the legacy per-task
	// path leaves it off.
	ExecCache bool
	// JSPools, when non-nil, supplies the interpreter's frame and
	// call-argument free lists — shared across every engine of a
	// simulation batch.
	JSPools *minijs.Pools
}

// Engine loads one page.
type Engine struct {
	sim   *eventsim.Simulator
	fetch Fetcher
	opt   Options
	in    *minijs.Interp

	baseURL string
	dom     *htmlparse.Node

	requested map[string]bool
	loaded    map[string]bool
	results   map[string]Result
	waiters   map[string][]func(Result)

	pendingBlocking int // gates OnLoad
	pendingTotal    int // gates Complete
	onloadFired     bool
	completeFired   bool
	loadStarted     bool

	onloadAt   time.Duration
	completeAt time.Duration

	lastBlockingArrival time.Duration // latest arrival among onload objects
	onloadNetAt         time.Duration // frozen at onload: the paper's trace OLT

	cpuBusy   time.Duration // single-core serialization point
	cpuActive time.Duration // total active CPU time (energy accounting)

	handlers map[string][]*minijs.Closure // "event/target" -> handlers

	// active script context and effect buffer (single-threaded simulator,
	// so plain fields are safe)
	curCtx  *scriptCtx
	effects *[]func()

	// rec collects the outcome of the script currently executing for the
	// exec cache; nil outside a recording run.
	rec *execRecorder

	// DOMOps counts script-driven DOM mutations (instrumentation).
	DOMOps int
	// TimersSet counts setTimeout registrations.
	TimersSet int
	// JSErrors collects script runtime errors (pages tolerate them, like
	// real browsers do).
	JSErrors []error
}

// New builds an engine on sim using fetch for object retrieval.
func New(sim *eventsim.Simulator, fetch Fetcher, opt Options) *Engine {
	if opt.MaxDepth == 0 {
		opt.MaxDepth = 8
	}
	e := &Engine{
		sim:       sim,
		fetch:     fetch,
		opt:       opt,
		in:        minijs.NewWithPools(opt.JSPools),
		requested: make(map[string]bool),
		loaded:    make(map[string]bool),
		results:   make(map[string]Result),
		waiters:   make(map[string][]func(Result)),
		handlers:  make(map[string][]*minijs.Closure),
	}
	e.bindBuiltins()
	return e
}

// OnloadAt returns the OnLoad time (valid once fired).
func (e *Engine) OnloadAt() (time.Duration, bool) { return e.onloadAt, e.onloadFired }

// OnloadNetAt returns the network part of the onload time: the arrival time
// of the last object required to generate the onload event — the paper's
// trace-derived OLT ("time between the first SYN and the last ACK for all
// objects required to generate the onload event", §7.1), which excludes any
// trailing client processing.
func (e *Engine) OnloadNetAt() (time.Duration, bool) { return e.onloadNetAt, e.onloadFired }

// CompleteAt returns the page-complete time (valid once fired).
func (e *Engine) CompleteAt() (time.Duration, bool) { return e.completeAt, e.completeFired }

// CPUActive returns total modelled CPU-active time so far.
func (e *Engine) CPUActive() time.Duration { return e.cpuActive }

// RequestedURLs returns every URL the engine asked its fetcher for.
func (e *Engine) RequestedURLs() []string {
	out := make([]string, 0, len(e.requested))
	for u := range e.requested {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// NumRequested returns the number of distinct objects requested.
func (e *Engine) NumRequested() int { return len(e.requested) }

// Requested reports whether the engine has requested url.
func (e *Engine) Requested(url string) bool { return e.requested[url] }

// DOM returns the document tree (nil before the main document parses).
func (e *Engine) DOM() *htmlparse.Node { return e.dom }

// Load starts loading the page at url. It may be called once per Engine.
func (e *Engine) Load(url string) {
	if e.loadStarted {
		panic("browser: Load called twice")
	}
	e.loadStarted = true
	e.baseURL = url
	e.requestObject(url, true, 0)
}

// requestObject issues a deduplicated fetch; the response is dispatched by
// content type (HTML, CSS, script, or opaque asset).
func (e *Engine) requestObject(url string, blocking bool, depth int) {
	if e.requested[url] {
		return
	}
	e.fetchFresh(url, blocking, func(r Result) {
		e.dispatch(r, blocking, depth)
	})
}

// fetchFresh performs the first fetch of a URL, accounting one pending unit
// that onResult must eventually balance (dispatch and the walker paths do).
// Duplicate interest in the same URL goes through waitFor.
func (e *Engine) fetchFresh(url string, blocking bool, onResult func(Result)) {
	e.requested[url] = true
	e.pendingTotal++
	if blocking {
		e.pendingBlocking++
	}
	if e.opt.Events.FetchIssued != nil {
		e.opt.Events.FetchIssued(url, blocking)
	}
	e.fetch.Fetch(url, func(r Result) {
		e.loaded[url] = true
		e.results[url] = r
		if blocking && !e.onloadFired && r.At > e.lastBlockingArrival {
			e.lastBlockingArrival = r.At
		}
		if e.opt.Events.ObjectLoaded != nil {
			e.opt.Events.ObjectLoaded(url, len(r.Body), r.At)
		}
		onResult(r)
		if ws := e.waiters[url]; len(ws) > 0 {
			delete(e.waiters, url)
			for _, w := range ws {
				w(r)
			}
		}
	})
}

// waitFor delivers the result of an already-requested URL: immediately if it
// arrived, or when it lands. It carries no pending accounting of its own.
func (e *Engine) waitFor(url string, cb func(Result)) {
	if r, ok := e.results[url]; ok {
		cb(r)
		return
	}
	e.waiters[url] = append(e.waiters[url], cb)
}

// dispatch processes a fetched object and eventually calls finish exactly
// once for it.
func (e *Engine) dispatch(r Result, blocking bool, depth int) {
	if r.Status >= 400 {
		e.finish(blocking)
		return
	}
	ct := r.ContentType
	switch {
	case strings.Contains(ct, "html"):
		e.processHTML(r, blocking, depth)
	case strings.Contains(ct, "css"):
		e.processCSS(r, blocking, depth)
	case strings.Contains(ct, "javascript"):
		e.execScriptBytesThen(r.Body, r.URL, blocking, depth, nil)
		e.finish(blocking)
	default:
		cost := perKB(e.opt.CPU.ImageDecodePerKB, len(r.Body))
		if cost == 0 {
			e.finish(blocking)
			return
		}
		e.task(cost, func() { e.finish(blocking) })
	}
}

// finish marks one pending unit done and fires milestones when counts reach
// zero.
func (e *Engine) finish(blocking bool) {
	e.pendingTotal--
	if blocking {
		e.pendingBlocking--
		if e.pendingBlocking == 0 && !e.onloadFired {
			e.onloadFired = true
			e.onloadAt = e.sim.Now()
			e.onloadNetAt = e.lastBlockingArrival
			if e.opt.Events.OnLoad != nil {
				e.opt.Events.OnLoad(e.onloadAt)
			}
		}
	}
	if e.pendingTotal == 0 && e.onloadFired && !e.completeFired {
		e.completeFired = true
		e.completeAt = e.sim.Now()
		if e.opt.Events.Complete != nil {
			e.opt.Events.Complete(e.completeAt)
		}
	}
}

// task serializes processing work on the engine's single CPU core: it runs
// apply after cost of CPU time, queued behind earlier tasks.
func (e *Engine) task(cost time.Duration, apply func()) {
	start := e.sim.Now()
	if start < e.cpuBusy {
		start = e.cpuBusy
	}
	end := start + cost
	e.cpuBusy = end
	e.cpuActive += cost
	e.sim.ScheduleAt(end, apply)
}

func perKB(d time.Duration, bytes int) time.Duration {
	return time.Duration(float64(d) * float64(bytes) / 1024)
}

// processHTML parses a document or iframe and walks it in document order
// with parser-blocking script semantics: when the walker reaches a
// synchronous <script>, discovery of everything after it waits until the
// script is fetched and executed — the behaviour behind the "long flat
// segments" the paper observes in DIR's download timeline (Figure 6a). In
// PARCEL the same walk rarely stalls, because pushed scripts are already in
// the client's local store when the parser reaches them.
func (e *Engine) processHTML(r Result, blocking bool, depth int) {
	cost := perKB(e.opt.CPU.HTMLParsePerKB, len(r.Body))
	e.task(cost, func() {
		// The parsed tree and its element list come from the process-wide
		// artifact cache: every scheme and round loading this document
		// shares one immutable DOM. The parse cost above is modelled from
		// the byte length either way.
		root, nodes, ok := cachedHTML(r.Body)
		if !ok {
			// Treat unparseable HTML like an empty page (browser resilience).
			e.finish(blocking)
			return
		}
		if e.dom == nil {
			e.dom = root
		}
		if depth >= e.opt.MaxDepth {
			e.finish(blocking)
			return
		}
		w := &docWalker{
			e: e, baseURL: r.URL, blocking: blocking, depth: depth,
			nodes: nodes,
		}
		// The walk inherits this document's pending unit and finishes it.
		w.resume()
	})
}

// docWalker walks a parsed document in order, suspending at synchronous
// scripts.
type docWalker struct {
	e        *Engine
	baseURL  string
	blocking bool
	depth    int
	nodes    []*htmlparse.Node
	pos      int
}

func (w *docWalker) resume() {
	e := w.e
	for w.pos < len(w.nodes) {
		n := w.nodes[w.pos]
		w.pos++
		switch n.Tag {
		case "link":
			if strings.EqualFold(n.Attr("rel"), "stylesheet") {
				if u := htmlparse.ResolveURL(w.baseURL, n.Attr("href")); u != "" {
					e.requestObject(u, w.blocking, w.depth+1)
				}
			}
		case "img", "iframe", "video", "audio", "embed", "source":
			if u := htmlparse.ResolveURL(w.baseURL, n.Attr("src")); u != "" {
				e.requestObject(u, w.blocking, w.depth+1)
			}
		case "input":
			if strings.EqualFold(n.Attr("type"), "image") {
				if u := htmlparse.ResolveURL(w.baseURL, n.Attr("src")); u != "" {
					e.requestObject(u, w.blocking, w.depth+1)
				}
			}
		case "style":
			for _, u := range cachedAssetURLs(n.Text, w.baseURL) {
				e.requestObject(u, w.blocking, w.depth+1)
			}
		case "script":
			src := n.Attr("src")
			if src != "" {
				u := htmlparse.ResolveURL(w.baseURL, src)
				if u == "" {
					continue
				}
				if n.HasAttr("async") || n.HasAttr("defer") {
					e.requestObject(u, false, w.depth+1)
					continue
				}
				// Parser-blocking external script: suspend the walk.
				w.awaitScript(u)
				return
			}
			if strings.TrimSpace(n.Text) != "" {
				// Inline scripts also block the parser while they execute.
				e.execScriptThen(n.Text, w.baseURL, w.blocking, w.depth, w.resume)
				return
			}
		}
	}
	e.finish(w.blocking)
}

// awaitScript fetches (or joins the in-flight fetch of) a synchronous
// script, executes it, then resumes the walk.
func (w *docWalker) awaitScript(url string) {
	e := w.e
	onArrive := func(r Result) {
		if r.Status < 400 && strings.Contains(r.ContentType, "javascript") {
			e.execScriptBytesThen(r.Body, r.URL, w.blocking, w.depth, w.resume)
			return
		}
		w.resume()
	}
	if e.requested[url] {
		e.waitFor(url, onArrive)
		return
	}
	e.fetchFresh(url, w.blocking, func(r Result) {
		// Balance fetchFresh's pending unit; execution and the continued
		// walk are covered by the walk's own pending unit.
		e.finish(w.blocking)
		onArrive(r)
	})
}

func (e *Engine) processCSS(r Result, blocking bool, depth int) {
	cost := perKB(e.opt.CPU.CSSParsePerKB, len(r.Body))
	e.task(cost, func() {
		if depth < e.opt.MaxDepth {
			for _, ref := range cachedCSSRefs(r.Body, r.URL) {
				e.requestObject(ref.URL, blocking, depth+1)
			}
		}
		e.finish(blocking)
	})
}

// discoverFromTree flat-discovers a fragment (document.write injections):
// dynamically injected markup does not re-enter the parser-blocking walk.
func (e *Engine) discoverFromTree(root *htmlparse.Node, baseURL string, blocking bool, depth int) {
	if depth >= e.opt.MaxDepth {
		return
	}
	for _, res := range htmlparse.Resources(root, baseURL) {
		b := blocking
		if res.Async {
			b = false
		}
		e.requestObject(res.URL, b, depth+1)
	}
	for _, css := range htmlparse.InlineStyles(root) {
		for _, u := range cachedAssetURLs(css, baseURL) {
			e.requestObject(u, blocking, depth+1)
		}
	}
	for _, script := range htmlparse.InlineScripts(root) {
		e.execScript(script, baseURL, blocking, depth)
	}
}

// scriptCtx carries the execution context script builtins need.
type scriptCtx struct {
	baseURL  string
	blocking bool // fetches block onload (false inside timers/handlers)
	depth    int
}

// execScript runs a script body: the interpreter executes immediately (its
// side effects are buffered), and the effects are applied after the modelled
// CPU cost, serialized on the engine core.
func (e *Engine) execScript(src, baseURL string, blocking bool, depth int) {
	e.execScriptThen(src, baseURL, blocking, depth, nil)
}

// execScriptThen is execScript with a continuation invoked after the
// script's effects apply (the parser-blocking resume point). Scripts go
// through the memoized minijs.Compile, so a body executed by any engine in
// the process — proxy and client in one PARCEL load, every scheme and
// round in a sweep — is lexed, parsed, and slot-resolved exactly once.
func (e *Engine) execScriptThen(src, baseURL string, blocking bool, depth int, then func()) {
	prog, err := minijs.Compile(src)
	e.execCompiledThen(prog, err, baseURL, blocking, depth, then)
}

// execScriptBytesThen is execScriptThen for bodies still held as []byte; on
// a program-cache hit it skips the string conversion entirely.
func (e *Engine) execScriptBytesThen(src []byte, baseURL string, blocking bool, depth int, then func()) {
	prog, err := minijs.CompileBytes(src)
	e.execCompiledThen(prog, err, baseURL, blocking, depth, then)
}

func (e *Engine) execCompiledThen(prog *minijs.Program, err error, baseURL string, blocking bool, depth int, then func()) {
	e.pendingTotal++ // execution itself defers completion
	if blocking {
		e.pendingBlocking++
	}
	if err != nil {
		e.JSErrors = append(e.JSErrors, fmt.Errorf("parse %s: %w", baseURL, err))
		e.finish(blocking)
		if then != nil {
			then()
		}
		return
	}
	ctx := scriptCtx{baseURL: baseURL, blocking: blocking, depth: depth}
	if e.opt.ExecCache {
		e.execCachedThen(prog, ctx, then)
		return
	}
	e.runBufferedThen(ctx, func() error {
		return e.in.Run(prog)
	}, then)
}

// runBuffered executes fn with effect buffering, then applies the buffered
// effects after the measured CPU cost. The caller must already have
// accounted one pending unit (with ctx.blocking) for the execution; it is
// finished when the effects apply.
func (e *Engine) runBuffered(ctx scriptCtx, fn func() error) {
	e.runBufferedThen(ctx, fn, nil)
}

func (e *Engine) runBufferedThen(ctx scriptCtx, fn func() error, then func()) {
	saved := e.curCtx
	e.curCtx = &ctx
	before := e.in.Ops()
	var effects []func()
	savedBuf := e.effects
	e.effects = &effects
	if err := fn(); err != nil {
		e.JSErrors = append(e.JSErrors, err)
	}
	e.effects = savedBuf
	e.curCtx = saved
	cost := time.Duration(e.in.Ops()-before) * e.opt.CPU.JSOp
	e.task(cost, func() {
		for _, apply := range effects {
			apply()
		}
		e.finish(ctx.blocking)
		if then != nil {
			then()
		}
	})
}

func (e *Engine) addEffect(fn func()) {
	if e.effects == nil {
		fn() // no buffering active (defensive; should not happen)
		return
	}
	*e.effects = append(*e.effects, fn)
}
