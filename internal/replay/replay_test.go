package replay

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"github.com/parcel-go/parcel/internal/httpsim"
	"github.com/parcel-go/parcel/internal/webgen"
)

func TestRecordAndGet(t *testing.T) {
	a := NewArchive()
	a.Record(httpsim.Object{URL: "http://x.com/a", ContentType: "text/plain", Body: []byte("hi")})
	o, ok := a.Get("http://x.com/a")
	if !ok || string(o.Body) != "hi" {
		t.Fatalf("Get = %+v, %v", o, ok)
	}
	if _, ok := a.Get("http://x.com/missing"); ok {
		t.Fatal("found missing object")
	}
	if a.Misses != 1 {
		t.Fatalf("Misses = %d", a.Misses)
	}
}

func TestRecordOverwrites(t *testing.T) {
	a := NewArchive()
	a.Record(httpsim.Object{URL: "http://x.com/a", Body: []byte("v1")})
	a.Record(httpsim.Object{URL: "http://x.com/a", Body: []byte("v2")})
	if a.Len() != 1 {
		t.Fatalf("Len = %d", a.Len())
	}
	o, _ := a.Get("http://x.com/a")
	if string(o.Body) != "v2" {
		t.Fatalf("body = %q", o.Body)
	}
}

func TestFromPages(t *testing.T) {
	pages := webgen.Generate(webgen.Spec{Seed: 5, NumPages: 2})
	a := FromPages(pages...)
	want := pages[0].ObjectCount + pages[1].ObjectCount
	if a.Len() != want {
		t.Fatalf("Len = %d, want %d", a.Len(), want)
	}
	if a.TotalBytes() != pages[0].TotalBytes+pages[1].TotalBytes {
		t.Fatal("TotalBytes mismatch")
	}
	if _, ok := a.Get(pages[0].MainURL); !ok {
		t.Fatal("main URL missing")
	}
}

func TestRewriteURL(t *testing.T) {
	cases := []struct{ in, want string }{
		{"http://a.com/pixel?r=99183", "http://a.com/pixel?r=4"},
		{"http://a.com/x?id=5&ts=1700000000", "http://a.com/x?id=5&ts=4"},
		{"http://a.com/x?cb=1&r=2", "http://a.com/x?cb=4&r=4"},
		{"http://a.com/plain", "http://a.com/plain"},
		{"http://a.com/x?name=r5", "http://a.com/x?name=r5"}, // value not numeric-only param
	}
	for _, c := range cases {
		if got := RewriteURL(c.in); got != c.want {
			t.Errorf("RewriteURL(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestRewritingStore(t *testing.T) {
	a := NewArchive()
	a.Record(httpsim.Object{URL: "http://a.com/track?r=4", Body: []byte("pix")})
	rw := Rewriting{Store: a}
	if _, ok := rw.Get("http://a.com/track?r=192837"); !ok {
		t.Fatal("rewritten lookup failed")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "archive.json")
	pages := webgen.Generate(webgen.Spec{Seed: 9, NumPages: 1})
	a := FromPages(pages...)
	if err := a.Save(path); err != nil {
		t.Fatal(err)
	}
	b, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != a.Len() {
		t.Fatalf("loaded %d objects, want %d", b.Len(), a.Len())
	}
	for _, u := range a.URLs() {
		oa, _ := a.Get(u)
		ob, ok := b.Get(u)
		if !ok || !bytes.Equal(oa.Body, ob.Body) || oa.ContentType != ob.ContentType {
			t.Fatalf("object %s did not round-trip", u)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("loaded garbage")
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("loaded missing file")
	}
}
