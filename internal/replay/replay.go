// Package replay is the web-page-replay equivalent the paper's methodology
// depends on (§7.3): record a page's objects once, then serve the exact same
// snapshot to every scheme and run, with randomized URLs rewritten to
// constants so all runs request identical object sets.
//
// An Archive is an immutable snapshot of one or more pages; it implements
// httpsim.Store for the simulated origin servers, serves net/http for the
// real-network mode, and round-trips through a JSON container on disk.
package replay

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strings"
	"sync"

	"github.com/parcel-go/parcel/internal/httpsim"
	"github.com/parcel-go/parcel/internal/webgen"
)

// Archive is a recorded set of objects keyed by URL.
type Archive struct {
	mu      sync.RWMutex
	objects map[string]httpsim.Object
	// Misses counts lookups that found nothing (instrumentation).
	Misses int
}

// NewArchive returns an empty archive.
func NewArchive() *Archive {
	return &Archive{objects: make(map[string]httpsim.Object)}
}

// FromPages records every object of the given generated pages.
func FromPages(pages ...webgen.Page) *Archive {
	a := NewArchive()
	for _, p := range pages {
		for _, o := range p.Objects {
			a.Record(o)
		}
	}
	return a
}

// Record stores one object, overwriting any previous version of its URL.
func (a *Archive) Record(o httpsim.Object) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.objects[o.URL] = o
}

// Get implements httpsim.Store.
func (a *Archive) Get(url string) (httpsim.Object, bool) {
	a.mu.RLock()
	o, ok := a.objects[url]
	a.mu.RUnlock()
	if !ok {
		a.mu.Lock()
		a.Misses++
		a.mu.Unlock()
	}
	return o, ok
}

// Len returns the number of recorded objects.
func (a *Archive) Len() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return len(a.objects)
}

// URLs returns every recorded URL, sorted.
func (a *Archive) URLs() []string {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := make([]string, 0, len(a.objects))
	for u := range a.objects {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// TotalBytes sums recorded body sizes.
func (a *Archive) TotalBytes() int64 {
	a.mu.RLock()
	defer a.mu.RUnlock()
	var sum int64
	for _, o := range a.objects {
		sum += int64(len(o.Body))
	}
	return sum
}

// randParam matches cache-buster style query parameters whose value varies
// per run (r=..., rand=..., t=..., ts=..., cb=... with numeric values).
var randParam = regexp.MustCompile(`([?&](?:r|rand|t|ts|cb|nonce)=)\d+`)

// RewriteURL normalizes a randomized URL the way the paper's modified
// web-page-replay does (§7.3): run-variant numeric cache-buster values are
// replaced by the fixed constant, so all schemes and runs request the same
// object names.
func RewriteURL(url string) string {
	return randParam.ReplaceAllString(url, fmt.Sprintf("${1}%d", webgen.FixedRandValue))
}

// Rewriting wraps an archive (or any store) so lookups are normalized with
// RewriteURL before hitting the store.
type Rewriting struct {
	Store httpsim.Store
}

// Get implements httpsim.Store with URL normalization.
func (r Rewriting) Get(url string) (httpsim.Object, bool) {
	return r.Store.Get(RewriteURL(url))
}

// --- disk container ----------------------------------------------------------

type diskObject struct {
	URL         string `json:"url"`
	ContentType string `json:"content_type"`
	Status      int    `json:"status,omitempty"`
	Body        string `json:"body"` // base64
	// Validator preserves a recorded origin's content validator (ETag).
	// Omitted for archives whose validator is derived from the body.
	Validator string `json:"validator,omitempty"`
}

type diskArchive struct {
	Format  int          `json:"format"`
	Objects []diskObject `json:"objects"`
}

const diskFormat = 1

// Save writes the archive to path as a JSON container.
func (a *Archive) Save(path string) error {
	a.mu.RLock()
	disk := diskArchive{Format: diskFormat}
	for _, u := range a.urlsLocked() {
		o := a.objects[u]
		disk.Objects = append(disk.Objects, diskObject{
			URL: o.URL, ContentType: o.ContentType, Status: o.Status,
			Body:      base64.StdEncoding.EncodeToString(o.Body),
			Validator: o.Validator,
		})
	}
	a.mu.RUnlock()
	data, err := json.Marshal(disk)
	if err != nil {
		return fmt.Errorf("replay: marshal archive: %w", err)
	}
	return os.WriteFile(path, data, 0o644)
}

func (a *Archive) urlsLocked() []string {
	out := make([]string, 0, len(a.objects))
	for u := range a.objects {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// Load reads an archive previously written by Save.
func Load(path string) (*Archive, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var disk diskArchive
	if err := json.Unmarshal(data, &disk); err != nil {
		return nil, fmt.Errorf("replay: parse archive %s: %w", path, err)
	}
	if disk.Format != diskFormat {
		return nil, fmt.Errorf("replay: unsupported archive format %d", disk.Format)
	}
	a := NewArchive()
	for _, d := range disk.Objects {
		body, err := base64.StdEncoding.DecodeString(d.Body)
		if err != nil {
			return nil, fmt.Errorf("replay: body of %s: %w", d.URL, err)
		}
		if !strings.HasPrefix(d.URL, "http://") {
			return nil, fmt.Errorf("replay: non-absolute URL %q in archive", d.URL)
		}
		a.Record(httpsim.Object{URL: d.URL, ContentType: d.ContentType, Status: d.Status, Body: body, Validator: d.Validator})
	}
	return a, nil
}
