package replay

import (
	"testing"
	"time"
)

func TestFaultInjectorValidates(t *testing.T) {
	bad := []OriginFaults{
		{ErrorRate: 1.2},
		{StallRate: -0.1},
		{ErrorRate: 0.7, PartialRate: 0.7},
		{StallFor: -time.Second},
		{Flaps: []FlapWindow{{Start: time.Second, End: time.Second}}},
	}
	for _, cfg := range bad {
		if _, err := NewFaultInjector(cfg); err == nil {
			t.Fatalf("bad config %+v accepted", cfg)
		}
	}
	fi, err := NewFaultInjector(OriginFaults{ErrorRate: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if fi.StallFor() != 2*time.Second {
		t.Fatalf("StallFor default = %v", fi.StallFor())
	}
}

func TestFaultInjectorInactive(t *testing.T) {
	fi, err := NewFaultInjector(OriginFaults{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if d := fi.Decide(time.Duration(i) * time.Second); d != FaultNone {
			t.Fatalf("inactive injector decided %v", d)
		}
	}
	if s := fi.Stats(); s.Total() != 0 {
		t.Fatalf("inactive injector counted faults: %+v", s)
	}
}

func TestFaultInjectorMixAndDeterminism(t *testing.T) {
	run := func() FaultStats {
		fi, err := NewFaultInjector(OriginFaults{ErrorRate: 0.2, StallRate: 0.2, PartialRate: 0.2, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 300; i++ {
			fi.Decide(0)
		}
		return fi.Stats()
	}
	s1, s2 := run(), run()
	if s1 != s2 {
		t.Fatalf("same seed diverged: %+v vs %+v", s1, s2)
	}
	if s1.Errors == 0 || s1.Stalls == 0 || s1.Partials == 0 {
		t.Fatalf("fault mix missing a class: %+v", s1)
	}
	if s1.Total() >= 300 {
		t.Fatalf("60%% rates faulted every request: %+v", s1)
	}
}

func TestFaultInjectorFlapBeatsRates(t *testing.T) {
	fi, err := NewFaultInjector(OriginFaults{
		StallRate: 1,
		Flaps:     []FlapWindow{{Start: time.Second, End: 2 * time.Second}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := fi.Decide(1500 * time.Millisecond); d != FaultError {
		t.Fatalf("inside flap window: %v, want FaultError", d)
	}
	if d := fi.Decide(3 * time.Second); d != FaultStall {
		t.Fatalf("outside flap window: %v, want FaultStall", d)
	}
	s := fi.Stats()
	if s.FlapErrors != 1 || s.Stalls != 1 {
		t.Fatalf("stats = %+v", s)
	}
}
