package replay

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// OriginFaults configures fault injection for a real (parcelnet) origin
// serving a replay archive: errors, stalled responses, truncated bodies, and
// timed availability flaps. The zero value injects nothing; an inactive
// config never touches the RNG, so fault-free runs are byte-identical to a
// build without the injector.
type OriginFaults struct {
	// ErrorRate is the probability a request is answered 503 outright.
	ErrorRate float64
	// StallRate is the probability the response is held for StallFor before
	// being served (a slow origin occupying the fetcher's connection).
	StallRate float64
	// PartialRate is the probability the body is truncated mid-transfer and
	// the connection aborted, so the client sees an io error.
	PartialRate float64
	// StallFor is how long a stalled response waits (default 2 s).
	StallFor time.Duration
	// Flaps are windows (relative to the injector's creation) during which
	// every request is answered 503 — checked before any probability draw.
	Flaps []FlapWindow
	// Seed feeds the injector's private RNG (default 1); same seed + same
	// request order reproduces the same fault sequence.
	Seed int64
}

// FlapWindow is a half-open [Start, End) window of origin unavailability.
type FlapWindow struct {
	Start time.Duration
	End   time.Duration
}

// Active reports whether any fault injection is configured.
func (f OriginFaults) Active() bool {
	return f.ErrorRate > 0 || f.StallRate > 0 || f.PartialRate > 0 || len(f.Flaps) > 0
}

// Validate rejects rates outside [0,1] (individually and summed — one
// uniform draw is cut into the three faults) and inverted flap windows.
func (f OriginFaults) Validate() error {
	for name, r := range map[string]float64{
		"ErrorRate": f.ErrorRate, "StallRate": f.StallRate, "PartialRate": f.PartialRate,
	} {
		if r < 0 || r > 1 {
			return fmt.Errorf("replay: %s %v outside [0,1]", name, r)
		}
	}
	if sum := f.ErrorRate + f.StallRate + f.PartialRate; sum > 1 {
		return fmt.Errorf("replay: fault rates sum to %v > 1", sum)
	}
	if f.StallFor < 0 {
		return fmt.Errorf("replay: negative StallFor %v", f.StallFor)
	}
	for _, w := range f.Flaps {
		if w.End <= w.Start || w.Start < 0 {
			return fmt.Errorf("replay: bad flap window [%v, %v)", w.Start, w.End)
		}
	}
	return nil
}

// Decision is what the injector decided to do to one request.
type Decision int

const (
	// FaultNone serves the request normally.
	FaultNone Decision = iota
	// FaultError answers 503 without serving the body.
	FaultError
	// FaultStall delays the response by StallFor, then serves it.
	FaultStall
	// FaultPartial serves a truncated body and aborts the connection.
	FaultPartial
)

// FaultStats counts injected faults.
type FaultStats struct {
	Errors     int64
	Stalls     int64
	Partials   int64
	FlapErrors int64
}

// Total sums every injected fault.
func (s FaultStats) Total() int64 {
	return s.Errors + s.Stalls + s.Partials + s.FlapErrors
}

// FaultInjector makes per-request fault decisions for a real origin server.
// It owns a private seeded RNG behind a mutex (the origin handles requests
// concurrently); flap windows are evaluated against a caller-supplied elapsed
// time so the injector itself reads no clock.
type FaultInjector struct {
	cfg OriginFaults

	mu    sync.Mutex
	rng   *rand.Rand
	stats FaultStats
}

// NewFaultInjector validates cfg and builds an injector (nil config error on
// bad rates/windows). StallFor defaults to 2 s, Seed to 1.
func NewFaultInjector(cfg OriginFaults) (*FaultInjector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.StallFor == 0 {
		cfg.StallFor = 2 * time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return &FaultInjector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}, nil
}

// StallFor returns the configured (defaulted) stall duration.
func (fi *FaultInjector) StallFor() time.Duration { return fi.cfg.StallFor }

// Decide rolls the dice for one request. elapsed is time since the origin
// started, used only for flap windows (no draw). Inactive configs return
// FaultNone without locking or drawing.
func (fi *FaultInjector) Decide(elapsed time.Duration) Decision {
	if !fi.cfg.Active() {
		return FaultNone
	}
	fi.mu.Lock()
	defer fi.mu.Unlock()
	for _, w := range fi.cfg.Flaps {
		if elapsed >= w.Start && elapsed < w.End {
			fi.stats.FlapErrors++
			return FaultError
		}
	}
	u := fi.rng.Float64()
	switch {
	case u < fi.cfg.ErrorRate:
		fi.stats.Errors++
		return FaultError
	case u < fi.cfg.ErrorRate+fi.cfg.StallRate:
		fi.stats.Stalls++
		return FaultStall
	case u < fi.cfg.ErrorRate+fi.cfg.StallRate+fi.cfg.PartialRate:
		fi.stats.Partials++
		return FaultPartial
	}
	return FaultNone
}

// Stats returns a snapshot of injected-fault counts.
func (fi *FaultInjector) Stats() FaultStats {
	fi.mu.Lock()
	defer fi.mu.Unlock()
	return fi.stats
}
