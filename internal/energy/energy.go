// Package energy accounts total device energy the way the paper's power-
// meter experiment does (§8.2): radio energy from the RRC simulation plus
// CPU energy from modelled processing time, with the screen baseline
// excluded (the paper measures it separately and deducts it).
package energy

import "time"

// DeviceParams models the non-radio device power profile.
type DeviceParams struct {
	// CPUActivePower is the device power draw attributable to active
	// processing (parsing, JS execution, rendering), in mW.
	CPUActivePower float64
	// ScreenPower is the display baseline in mW; reported for reference but
	// excluded from totals, as in the paper ("the baseline screen power
	// (626mW) was measured and deducted").
	ScreenPower float64
}

// DefaultDevice returns a Galaxy-S3-class profile.
func DefaultDevice() DeviceParams {
	return DeviceParams{
		CPUActivePower: 1000,
		ScreenPower:    626,
	}
}

// CPUEnergy returns the joules consumed by cpuActive of processing.
func (p DeviceParams) CPUEnergy(cpuActive time.Duration) float64 {
	return p.CPUActivePower / 1000 * cpuActive.Seconds()
}

// Total returns radio + CPU energy in joules (screen excluded).
func (p DeviceParams) Total(radioJ float64, cpuActive time.Duration) float64 {
	return radioJ + p.CPUEnergy(cpuActive)
}
