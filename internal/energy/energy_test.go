package energy

import (
	"testing"
	"time"
)

func TestCPUEnergy(t *testing.T) {
	p := DeviceParams{CPUActivePower: 1000}
	if got := p.CPUEnergy(2 * time.Second); got != 2 {
		t.Fatalf("CPUEnergy = %v, want 2 J", got)
	}
	if got := p.CPUEnergy(0); got != 0 {
		t.Fatalf("CPUEnergy(0) = %v", got)
	}
}

func TestTotalAddsRadioAndCPU(t *testing.T) {
	p := DefaultDevice()
	total := p.Total(5, time.Second)
	if total <= 5 {
		t.Fatalf("Total = %v, want > radio alone", total)
	}
	if total != 5+p.CPUEnergy(time.Second) {
		t.Fatalf("Total = %v inconsistent", total)
	}
}

func TestScreenExcluded(t *testing.T) {
	p := DefaultDevice()
	if p.ScreenPower <= 0 {
		t.Fatal("screen power missing")
	}
	// Totals must not include the screen baseline.
	if p.Total(0, 0) != 0 {
		t.Fatalf("Total(0,0) = %v, want 0", p.Total(0, 0))
	}
}
