package sched

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/parcel-go/parcel/internal/radio"
)

type flushRec struct {
	items  []Item
	reason FlushReason
}

func record(recs *[]flushRec) func([]Item, FlushReason) {
	return func(items []Item, reason FlushReason) {
		*recs = append(*recs, flushRec{items: items, reason: reason})
	}
}

func item(url string, size int) Item {
	return Item{URL: url, Body: make([]byte, size)}
}

func TestINDFlushesPerObject(t *testing.T) {
	var recs []flushRec
	b := NewBundler(ConfigIND, record(&recs))
	b.Add(item("a", 100))
	b.Add(item("b", 200))
	b.OnLoad()
	b.Complete()
	if len(recs) != 2 {
		t.Fatalf("flushes = %d, want 2", len(recs))
	}
	for _, r := range recs {
		if len(r.items) != 1 || r.reason != FlushObject {
			t.Fatalf("rec = %+v", r)
		}
	}
}

func TestThresholdAccumulates(t *testing.T) {
	var recs []flushRec
	b := NewBundler(Config{Policy: Threshold, ThresholdBytes: 500}, record(&recs))
	b.Add(item("a", 200))
	b.Add(item("b", 200))
	if len(recs) != 0 {
		t.Fatalf("flushed early: %+v", recs)
	}
	b.Add(item("c", 200)) // 600 >= 500
	if len(recs) != 1 || recs[0].reason != FlushThreshold || len(recs[0].items) != 3 {
		t.Fatalf("recs = %+v", recs)
	}
	if b.PendingBytes() != 0 {
		t.Fatalf("pending = %d after flush", b.PendingBytes())
	}
}

func TestThresholdFlushesAtOnload(t *testing.T) {
	var recs []flushRec
	b := NewBundler(Config{Policy: Threshold, ThresholdBytes: 1 << 20}, record(&recs))
	b.Add(item("a", 100))
	b.OnLoad()
	if len(recs) != 1 || recs[0].reason != FlushOnload {
		t.Fatalf("recs = %+v", recs)
	}
}

func TestONLDHoldsUntilOnload(t *testing.T) {
	var recs []flushRec
	b := NewBundler(ConfigONLD, record(&recs))
	b.Add(item("a", 1000))
	b.Add(item("b", 1000))
	if len(recs) != 0 {
		t.Fatal("ONLD flushed before onload")
	}
	b.OnLoad()
	if len(recs) != 1 || len(recs[0].items) != 2 || recs[0].reason != FlushOnload {
		t.Fatalf("recs = %+v", recs)
	}
	// Post-onload arrivals are pushed per-object (stragglers must not wait
	// for a completion drain).
	b.Add(item("c", 500))
	if len(recs) != 2 || recs[1].reason != FlushObject {
		t.Fatalf("recs = %+v", recs)
	}
	b.Complete()
	if len(recs) != 2 {
		t.Fatalf("empty completion drain flushed: %+v", recs)
	}
}

func TestCompleteWithNothingPendingIsQuiet(t *testing.T) {
	var recs []flushRec
	b := NewBundler(ConfigIND, record(&recs))
	b.Complete()
	if len(recs) != 0 {
		t.Fatal("empty complete flushed")
	}
}

func TestByteConservationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, cfg := range []Config{ConfigIND, Config512K, Config1M, ConfigONLD, {Policy: Threshold, ThresholdBytes: 1000}} {
		var got int64
		b := NewBundler(cfg, func(items []Item, _ FlushReason) {
			for _, it := range items {
				got += int64(len(it.Body))
			}
		})
		var want int64
		n := 20 + rng.Intn(100)
		onloadAt := n / 2
		for i := 0; i < n; i++ {
			size := rng.Intn(100_000)
			want += int64(size)
			b.Add(item("u", size))
			if i == onloadAt {
				b.OnLoad()
			}
		}
		b.Complete()
		if got != want || b.BytesOut != want {
			t.Fatalf("%v: bytes out %d (counter %d), want %d", cfg, got, b.BytesOut, want)
		}
	}
}

func TestExtremeThresholdsDegenerate(t *testing.T) {
	// PARCEL(1 byte) behaves like IND (one flush per object); PARCEL(huge)
	// behaves like ONLD (single flush at onload).
	var tiny, huge []flushRec
	bt := NewBundler(Config{Policy: Threshold, ThresholdBytes: 1}, record(&tiny))
	bh := NewBundler(Config{Policy: Threshold, ThresholdBytes: math.MaxInt32}, record(&huge))
	for i := 0; i < 10; i++ {
		bt.Add(item("u", 1000))
		bh.Add(item("u", 1000))
	}
	bt.OnLoad()
	bh.OnLoad()
	bt.Complete()
	bh.Complete()
	if len(tiny) != 10 {
		t.Fatalf("tiny threshold flushes = %d, want 10", len(tiny))
	}
	if len(huge) != 1 || len(huge[0].items) != 10 {
		t.Fatalf("huge threshold flushes = %+v, want single 10-item flush", len(huge))
	}
}

func TestConfigStrings(t *testing.T) {
	cases := map[string]Config{
		"PARCEL(IND)":  ConfigIND,
		"PARCEL(512K)": Config512K,
		"PARCEL(1M)":   Config1M,
		"PARCEL(2M)":   Config2M,
		"PARCEL(ONLD)": ConfigONLD,
	}
	for want, cfg := range cases {
		if got := cfg.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := (Config{Policy: Threshold}).Validate(); err == nil {
		t.Error("zero threshold accepted")
	}
	if err := (Config{Policy: Policy(99)}).Validate(); err == nil {
		t.Error("unknown policy accepted")
	}
	if err := ConfigIND.Validate(); err != nil {
		t.Error(err)
	}
}

// --- §6 analytical model ----------------------------------------------------

func paperModel() Model {
	return Model{
		Radio:       radio.DefaultLTE(),
		SpeedBps:    6e6 / 8,         // 6 Mbps
		PageBytes:   2 * 1024 * 1024, // 2 MB
		ProxyOnload: 2 * time.Second,
	}
}

func TestOptimalBundleSizeMatchesPaper(t *testing.T) {
	// §6: "for a 2MB page, with download speed of 6Mbps, and α = 0.74 ...
	// the optimal bundle size is approximately 0.9MB."
	m := paperModel()
	b := m.OptimalBundleSize()
	if b < 850e3 || b > 1000e3 {
		t.Fatalf("b* = %.0f bytes, want ≈ 0.9 MB", b)
	}
}

func TestOptimalCountConsistent(t *testing.T) {
	m := paperModel()
	n := m.OptimalBundleCount()
	if got := m.PageBytes / n; math.Abs(got-m.OptimalBundleSize()) > 1 {
		t.Fatalf("B/n* = %v != b* = %v", got, m.OptimalBundleSize())
	}
}

func TestEnergyMinimizedNearOptimalN(t *testing.T) {
	m := paperModel()
	m.ProxyOnload = 10 * time.Second // ensure dl(n) stays positive around n*
	nStar := m.OptimalBundleCount()
	eStar := m.RadioEnergy(nStar)
	for _, factor := range []float64{0.25, 0.5, 2, 4} {
		n := nStar * factor
		if n < 1 {
			n = 1
		}
		if e := m.RadioEnergy(n); e < eStar-1e-9 {
			t.Fatalf("E(%.2f·n*) = %v < E(n*) = %v — n* not a minimum", factor, e, eStar)
		}
	}
}

func TestOLTDecreasesWithN(t *testing.T) {
	m := paperModel()
	prev := math.Inf(1)
	for n := 1.0; n <= 64; n *= 2 {
		olt := m.OLT(n).Seconds()
		if olt >= prev {
			t.Fatalf("OLT(%v) = %v not decreasing", n, olt)
		}
		prev = olt
	}
	// As n → ∞ OLT approaches Tp.
	if m.OLT(1e9) < m.ProxyOnload {
		t.Fatal("OLT fell below Tp")
	}
}

func TestLargerBundlesForFasterLinks(t *testing.T) {
	// Eq. 1 intuition: "for higher download speeds, larger bundles are more
	// acceptable."
	slow, fast := paperModel(), paperModel()
	fast.SpeedBps = 4 * slow.SpeedBps
	if fast.OptimalBundleSize() <= slow.OptimalBundleSize() {
		t.Fatal("faster link did not increase optimal bundle size")
	}
	// And larger pages → larger bundles.
	big := paperModel()
	big.PageBytes = 4 * paperModel().PageBytes
	if big.OptimalBundleSize() <= paperModel().OptimalBundleSize() {
		t.Fatal("larger page did not increase optimal bundle size")
	}
}

func TestEnergyInfinityOutsideValidity(t *testing.T) {
	m := paperModel()
	m.ProxyOnload = 100 * time.Millisecond // (n-1) tail cycles exceed Tp fast
	if e := m.RadioEnergy(50); !math.IsInf(e, 1) {
		t.Fatalf("E outside validity = %v, want +Inf", e)
	}
	if e := m.RadioEnergy(0.5); !math.IsInf(e, 1) {
		t.Fatalf("E(n<1) = %v, want +Inf", e)
	}
}
