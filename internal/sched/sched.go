// Package sched implements PARCEL's cellular-friendly data-transfer
// scheduling (§4.4): the policies deciding when the proxy flushes collected
// objects to the client — IND (push each object as it arrives), PARCEL(X)
// (push when X bytes accumulate or onload fires at the proxy), and ONLD (one
// batch at proxy onload) — plus the §6 analytical model of the
// latency/energy trade-off and the optimal bundle size.
package sched

import (
	"fmt"
	"math"
	"time"

	"github.com/parcel-go/parcel/internal/radio"
)

// Policy selects a transfer schedule.
type Policy int

const (
	// IND transfers each object as soon as the proxy has it (Figure 5b).
	IND Policy = iota
	// Threshold is PARCEL(X): flush when X bytes are pending or at the
	// proxy onload event (Figure 5d).
	Threshold
	// ONLD holds everything until the proxy onload event (Figure 5c).
	ONLD
)

// Config is a fully specified schedule.
type Config struct {
	Policy         Policy
	ThresholdBytes int // used by Threshold
}

// Common configurations from the paper's evaluation (§8.3).
var (
	ConfigIND  = Config{Policy: IND}
	Config512K = Config{Policy: Threshold, ThresholdBytes: 512 << 10}
	Config1M   = Config{Policy: Threshold, ThresholdBytes: 1 << 20}
	Config2M   = Config{Policy: Threshold, ThresholdBytes: 2 << 20}
	ConfigONLD = Config{Policy: ONLD}
)

func (c Config) String() string {
	switch c.Policy {
	case IND:
		return "PARCEL(IND)"
	case ONLD:
		return "PARCEL(ONLD)"
	case Threshold:
		switch {
		case c.ThresholdBytes >= 1<<20 && c.ThresholdBytes%(1<<20) == 0:
			return fmt.Sprintf("PARCEL(%dM)", c.ThresholdBytes>>20)
		default:
			return fmt.Sprintf("PARCEL(%dK)", c.ThresholdBytes>>10)
		}
	default:
		return fmt.Sprintf("PARCEL(policy=%d)", int(c.Policy))
	}
}

// Validate rejects nonsensical configurations.
func (c Config) Validate() error {
	if c.Policy == Threshold && c.ThresholdBytes <= 0 {
		return fmt.Errorf("sched: Threshold policy requires positive ThresholdBytes")
	}
	if c.Policy != IND && c.Policy != Threshold && c.Policy != ONLD {
		return fmt.Errorf("sched: unknown policy %d", int(c.Policy))
	}
	return nil
}

// Item is one proxy-collected object awaiting transfer.
type Item struct {
	URL         string
	ContentType string
	Status      int
	Body        []byte
	ArrivedAt   time.Duration
}

// FlushReason explains why a bundle was emitted.
type FlushReason int

const (
	// FlushObject is IND's per-object push.
	FlushObject FlushReason = iota
	// FlushThreshold fired because pending bytes reached X.
	FlushThreshold
	// FlushOnload fired at the proxy onload event.
	FlushOnload
	// FlushComplete fired at page completion (remainder drain).
	FlushComplete
)

func (r FlushReason) String() string {
	switch r {
	case FlushObject:
		return "object"
	case FlushThreshold:
		return "threshold"
	case FlushOnload:
		return "onload"
	case FlushComplete:
		return "complete"
	default:
		return "?"
	}
}

// Bundler accumulates items and emits bundles per the configured policy.
// It is driven by the proxy: Add per collected object, OnLoad at the proxy's
// onload event, Complete when the proxy declares the page done.
type Bundler struct {
	cfg   Config
	flush func(items []Item, reason FlushReason)

	pending      []Item
	pendingBytes int
	onloadSeen   bool

	// Flushes counts emitted bundles.
	Flushes int
	// BytesOut counts total body bytes emitted.
	BytesOut int64
}

// NewBundler constructs a bundler; flush receives each emitted bundle.
func NewBundler(cfg Config, flush func(items []Item, reason FlushReason)) *Bundler {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if flush == nil {
		panic("sched: nil flush")
	}
	return &Bundler{cfg: cfg, flush: flush}
}

// Add offers one collected object to the schedule. Bundling applies to the
// initial page load: once the proxy onload event has passed (Figures 5c/5d
// schedule bundles up to the onload event), post-onload stragglers — async
// ad loads and the like — are pushed as they arrive so the page tail is not
// held back by a threshold that may never fill.
func (b *Bundler) Add(it Item) {
	if b.onloadSeen {
		b.emit([]Item{it}, FlushObject)
		return
	}
	switch b.cfg.Policy {
	case IND:
		b.emit([]Item{it}, FlushObject)
	case Threshold:
		b.pending = append(b.pending, it)
		b.pendingBytes += len(it.Body)
		if b.pendingBytes >= b.cfg.ThresholdBytes {
			b.drain(FlushThreshold)
		}
	case ONLD:
		b.pending = append(b.pending, it)
		b.pendingBytes += len(it.Body)
	}
}

// OnLoad signals the proxy onload event: PARCEL(X) and ONLD flush whatever
// is pending (Figure 5c/5d).
func (b *Bundler) OnLoad() {
	b.onloadSeen = true
	if b.cfg.Policy == Threshold || b.cfg.Policy == ONLD {
		b.drain(FlushOnload)
	}
}

// Complete signals page completion: any remainder is drained.
func (b *Bundler) Complete() {
	b.drain(FlushComplete)
}

// PendingBytes reports bytes currently held back.
func (b *Bundler) PendingBytes() int { return b.pendingBytes }

func (b *Bundler) drain(reason FlushReason) {
	if len(b.pending) == 0 {
		return
	}
	items := b.pending
	b.pending = nil
	b.pendingBytes = 0
	b.emit(items, reason)
}

func (b *Bundler) emit(items []Item, reason FlushReason) {
	b.Flushes++
	for _, it := range items {
		b.BytesOut += int64(len(it.Body))
	}
	b.flush(items, reason)
}

// --- §6 analytical model ---------------------------------------------------

// Model captures the paper's §6 parameters: a page of B aggregate bytes at
// proxy onload, download speed s between proxy and client, proxy onload time
// Tp, and the radio parameters.
type Model struct {
	Radio       radio.Params
	SpeedBps    float64       // s, bytes per second proxy→client
	PageBytes   float64       // B, aggregate object size at proxy onload
	ProxyOnload time.Duration // Tp
}

// OptimalBundleSize returns b* = α·sqrt(s·B) (Eq. 1).
func (m Model) OptimalBundleSize() float64 {
	return m.Radio.Alpha() * math.Sqrt(m.SpeedBps*m.PageBytes)
}

// OptimalBundleCount returns n* = B / b*.
func (m Model) OptimalBundleCount() float64 {
	b := m.OptimalBundleSize()
	if b == 0 {
		return math.Inf(1)
	}
	return m.PageBytes / b
}

// RadioEnergy evaluates E(n), the §6 closed form for radio energy at client
// onload with n equal bundles, in joules. It returns +Inf when n implies a
// negative Long-DRX residence (the model's validity bound).
func (m Model) RadioEnergy(n float64) float64 {
	if n < 1 {
		return math.Inf(1)
	}
	p := m.Radio
	dc := p.CRTail.Seconds()
	ds := p.ShortDRXTail.Seconds()
	pc := p.PowerCR / 1000 // W
	ps := p.PowerShortDRX / 1000
	pl := p.PowerLongDRX / 1000
	txTime := m.PageBytes / m.SpeedBps
	dl := m.ProxyOnload.Seconds() - (n-1)/n*txTime - (n-1)*(dc+ds)
	if dl < 0 {
		return math.Inf(1)
	}
	return pl*dl + (n-1)*(pc*dc+ps*ds) + pc*txTime
}

// OLT evaluates OLT(n) = Tp + (1/n)·B/s (§6): the client onload time with n
// bundles.
func (m Model) OLT(n float64) time.Duration {
	if n < 1 {
		n = 1
	}
	tx := m.PageBytes / m.SpeedBps / n
	return m.ProxyOnload + time.Duration(tx*float64(time.Second))
}
