// Package runner is the parallel experiment-execution engine: a bounded
// worker pool that fans independent simulation tasks out across cores and
// collects their results in deterministic (index) order.
//
// The paper's evaluation shape — rounds × pages × schemes (§7–8) — is
// embarrassingly parallel by construction: every task builds a private
// scenario.Topology with its own eventsim.Simulator, and every task's seed is
// derived from the experiment seed and the task's coordinates, never from
// execution order. The runner therefore guarantees that parallel output is
// bit-for-bit identical to serial output: results land in a slice slot chosen
// by task index, and the caller assembles them exactly as the serial loop
// would have.
package runner

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Parallelism normalizes a parallelism knob: n <= 0 means "one worker per
// available CPU" (runtime.GOMAXPROCS(0)), anything else is used as given.
func Parallelism(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Map runs fn(i) for every i in [0, n) on a bounded worker pool and returns
// the results indexed by i. parallelism <= 0 defaults to the number of CPUs;
// parallelism == 1 (or n <= 1) runs inline on the calling goroutine with no
// synchronization, so the serial path costs exactly what the pre-runner
// serial loops did.
//
// fn must be safe to call from multiple goroutines at once for distinct i —
// for simulation work that means each call builds its own topology and
// touches no shared mutable state. Panics in fn propagate to the caller.
func Map[T any](parallelism, n int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	workers := Parallelism(parallelism)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}

	// Workers pull the next task index from an atomic counter (work
	// stealing): long tasks don't leave a statically-assigned worker idle,
	// and the result slot keeps output order independent of scheduling.
	var next atomic.Int64
	var wg sync.WaitGroup
	// A panic in fn must reach the caller, not kill the process from a
	// worker goroutine (test assertions rely on it).
	var panicOnce sync.Once
	var panicked any
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicked = r })
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	return out
}

// Each is Map for side-effect-only tasks.
func Each(parallelism, n int, fn func(i int)) {
	Map(parallelism, n, func(i int) struct{} {
		fn(i)
		return struct{}{}
	})
}
