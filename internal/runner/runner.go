// Package runner is the parallel experiment-execution engine: a bounded
// worker pool that fans independent simulation tasks out across cores and
// collects their results in deterministic (index) order.
//
// The paper's evaluation shape — rounds × pages × schemes (§7–8) — is
// embarrassingly parallel by construction: every task builds a private
// scenario.Topology with its own eventsim.Simulator, and every task's seed is
// derived from the experiment seed and the task's coordinates, never from
// execution order. The runner therefore guarantees that parallel output is
// bit-for-bit identical to serial output: results land in a slice slot chosen
// by task index, and the caller assembles them exactly as the serial loop
// would have.
package runner

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Parallelism normalizes a parallelism knob: n <= 0 means "one worker per
// available CPU" (runtime.GOMAXPROCS(0)), anything else is used as given.
func Parallelism(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Map runs fn(i) for every i in [0, n) on a bounded worker pool and returns
// the results indexed by i. parallelism <= 0 defaults to the number of CPUs;
// parallelism == 1 (or n <= 1) runs inline on the calling goroutine with no
// synchronization, so the serial path costs exactly what the pre-runner
// serial loops did.
//
// fn must be safe to call from multiple goroutines at once for distinct i —
// for simulation work that means each call builds its own topology and
// touches no shared mutable state. Panics in fn propagate to the caller.
func Map[T any](parallelism, n int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	workers := Parallelism(parallelism)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}

	// Workers pull the next task index from an atomic counter (work
	// stealing): long tasks don't leave a statically-assigned worker idle,
	// and the result slot keeps output order independent of scheduling.
	var next atomic.Int64
	var wg sync.WaitGroup
	// A panic in fn must reach the caller, not kill the process from a
	// worker goroutine (test assertions rely on it).
	var panicOnce sync.Once
	var panicked any
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicked = r })
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	return out
}

// MapBatches runs fn over [0, n) in contiguous batches of batchSize tasks
// and returns the results indexed by task. Each call fills out[0:hi-lo] with
// the results for tasks [lo, hi). Workers claim whole batches from an atomic
// counter, so batch boundaries are a pure function of (n, batchSize) —
// results never depend on scheduling — and every batch a worker claims
// threads that worker's state value through: fn receives the state returned
// by the previous fn call on the same worker (the zero S first). That is how
// a batch engine carries its arena pools from one batch to the next without
// locking: state never crosses goroutines.
//
// parallelism <= 0 defaults to the number of CPUs; one worker (or a single
// batch) runs inline on the calling goroutine in index order. batchSize <= 0
// defaults to 1. Panics in fn propagate to the caller.
func MapBatches[S, T any](parallelism, n, batchSize int, fn func(state S, lo, hi int, out []T) S) []T {
	if n <= 0 {
		return nil
	}
	if batchSize <= 0 {
		batchSize = 1
	}
	out := make([]T, n)
	batches := (n + batchSize - 1) / batchSize
	workers := Parallelism(parallelism)
	if workers > batches {
		workers = batches
	}
	if workers == 1 {
		var state S
		for b := 0; b < batches; b++ {
			lo := b * batchSize
			hi := min(lo+batchSize, n)
			state = fn(state, lo, hi, out[lo:hi])
		}
		return out
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicked any
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicked = r })
				}
			}()
			var state S
			for {
				b := int(next.Add(1)) - 1
				if b >= batches {
					return
				}
				lo := b * batchSize
				hi := min(lo+batchSize, n)
				state = fn(state, lo, hi, out[lo:hi])
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	return out
}

// Each is Map for side-effect-only tasks.
func Each(parallelism, n int, fn func(i int)) {
	Map(parallelism, n, func(i int) struct{} {
		fn(i)
		return struct{}{}
	})
}
