package runner

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestMapOrdersResultsByIndex(t *testing.T) {
	for _, parallelism := range []int{0, 1, 2, 8, 64} {
		got := Map(parallelism, 100, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("parallelism=%d: out[%d] = %d, want %d", parallelism, i, v, i*i)
			}
		}
	}
}

func TestMapRunsEveryTaskExactlyOnce(t *testing.T) {
	var calls [257]atomic.Int32
	Map(16, len(calls), func(i int) struct{} {
		calls[i].Add(1)
		return struct{}{}
	})
	for i := range calls {
		if n := calls[i].Load(); n != 1 {
			t.Fatalf("task %d ran %d times", i, n)
		}
	}
}

func TestMapBoundsWorkers(t *testing.T) {
	const parallelism = 3
	var inFlight, peak atomic.Int32
	Map(parallelism, 64, func(i int) struct{} {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		runtime.Gosched()
		inFlight.Add(-1)
		return struct{}{}
	})
	if p := peak.Load(); p > parallelism {
		t.Fatalf("observed %d concurrent tasks, want <= %d", p, parallelism)
	}
}

func TestMapEmptyAndSingle(t *testing.T) {
	if got := Map(4, 0, func(i int) int { return i }); len(got) != 0 {
		t.Fatalf("n=0 returned %v", got)
	}
	if got := Map(4, 1, func(i int) int { return 41 + i }); len(got) != 1 || got[0] != 41 {
		t.Fatalf("n=1 returned %v", got)
	}
}

func TestMapPropagatesPanic(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("panic in fn did not propagate")
		}
	}()
	Map(4, 16, func(i int) int {
		if i == 7 {
			panic("boom")
		}
		return i
	})
}

func TestParallelismDefaults(t *testing.T) {
	if got := Parallelism(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Parallelism(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Parallelism(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Parallelism(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Parallelism(5); got != 5 {
		t.Fatalf("Parallelism(5) = %d", got)
	}
}

func TestEach(t *testing.T) {
	var sum atomic.Int64
	Each(4, 10, func(i int) { sum.Add(int64(i)) })
	if sum.Load() != 45 {
		t.Fatalf("sum = %d, want 45", sum.Load())
	}
}
