package minijs

import "sync"

// This file is the compile phase of the "compile once, run many" pipeline.
// After parsing, every identifier is resolved to a (hops, slot) index into
// flat []Value frames, so the interpreter never walks map[string]Value
// chains at runtime. Resolution is a pure function of the AST and runs
// exactly once per source string (Parse always resolves; Compile memoizes
// whole programs), after which a Program is immutable and safe to share
// across goroutines — the experiment runner's worker pool executes the same
// compiled scripts concurrently on independent Interps.
//
// The resolved form must be *observationally identical* to the reference
// map-chain interpreter (kept in reference_test.go and enforced by
// FuzzMinijs), which pins down three subtleties:
//
//   - A scope is materialized exactly where the reference allocates an env
//     the program can observe: a function call's param scope, a block with
//     at least one top-level var declaration (fresh per loop iteration, so
//     per-iteration closure capture still works), and a for-init scope when
//     the init is a var declaration. (The reference also allocates an empty
//     env for assignment/expression inits; no name can ever resolve into
//     it, so it is not materialized here.)
//
//   - The reference decides visibility by runtime map membership: a var is
//     invisible until its declaration executes. Slots therefore start as an
//     unset sentinel, and each identifier carries the ordered list of
//     *candidate* bindings in enclosing scopes; at runtime the innermost
//     initialized candidate wins, falling back to the dynamic global map
//     (builtins, top-level vars, implicit globals) by name.
//
//   - Frames are recycled through free lists (see interp.go), which is only
//     sound for scopes no closure can capture. Evaluating a function
//     literal captures the whole live chain, so resolution marks every
//     enclosing scope as escaping; escaping frames are heap-allocated and
//     never pooled.

// scopeInfo is the compiled description of one materialized lexical scope.
type scopeInfo struct {
	// names maps slot index -> variable name (params first for function
	// scopes, then top-level var declarations; duplicates collapse onto one
	// slot, like duplicate map keys did).
	names []string
	// paramSlots maps param index -> slot for function scopes, so duplicate
	// parameter names write the same slot in order (last argument wins,
	// matching map insertion).
	paramSlots []int
	// escapes marks scopes a function literal is created under: their
	// frames may outlive the scope's execution and are never recycled.
	escapes bool
}

func (sc *scopeInfo) slotOf(name string) int {
	for i, n := range sc.names {
		if n == name {
			return i
		}
	}
	return -1
}

// slotRef is one candidate binding for an identifier: slot `slot` of the
// frame `hops` levels up the chain from the identifier's position.
type slotRef struct {
	hops int
	slot int
}

// resolveProgram annotates the AST in place. It runs inside Parse, so every
// Program the package hands out is resolved before it can be shared.
func resolveProgram(p *Program) {
	r := resolver{}
	r.stmts(p.Stmts)
}

// resolver tracks the compile-time chain of materialized scopes; the global
// scope is not represented (it stays a dynamic map at runtime).
type resolver struct {
	stack []*scopeInfo
}

func (r *resolver) enter(sc *scopeInfo) { r.stack = append(r.stack, sc) }
func (r *resolver) exit()               { r.stack = r.stack[:len(r.stack)-1] }

// candidates collects every enclosing scope declaring name, innermost
// first. The runtime walks them in order and takes the first whose slot has
// been initialized, which reproduces the reference interpreter's
// map-membership walk exactly.
func (r *resolver) candidates(name string) []slotRef {
	var cands []slotRef
	for i := len(r.stack) - 1; i >= 0; i-- {
		if slot := r.stack[i].slotOf(name); slot >= 0 {
			cands = append(cands, slotRef{hops: len(r.stack) - 1 - i, slot: slot})
		}
	}
	return cands
}

// blockInfo mirrors blockScope in the reference interpreter: a block gets a
// scope (and therefore a frame) iff it declares at least one variable at
// its top level.
func blockInfo(stmts []Stmt) *scopeInfo {
	var sc *scopeInfo
	for _, s := range stmts {
		if v, ok := s.(*VarStmt); ok {
			if sc == nil {
				sc = &scopeInfo{}
			}
			if sc.slotOf(v.Name) < 0 {
				sc.names = append(sc.names, v.Name)
			}
		}
	}
	return sc
}

// funcScope lays out a function's param scope: parameters first (duplicates
// collapsing onto the earlier slot, later writes winning), then the body's
// top-level var declarations, which the reference wrote into the same env.
func funcScope(params []string, body []Stmt) *scopeInfo {
	sc := &scopeInfo{paramSlots: make([]int, len(params))}
	for i, p := range params {
		if slot := sc.slotOf(p); slot >= 0 {
			sc.paramSlots[i] = slot
			continue
		}
		sc.paramSlots[i] = len(sc.names)
		sc.names = append(sc.names, p)
	}
	for _, s := range body {
		if v, ok := s.(*VarStmt); ok && sc.slotOf(v.Name) < 0 {
			sc.names = append(sc.names, v.Name)
		}
	}
	return sc
}

func (r *resolver) stmts(ss []Stmt) {
	for _, s := range ss {
		r.stmt(s)
	}
}

func (r *resolver) block(ss []Stmt, sc *scopeInfo) {
	if sc == nil {
		r.stmts(ss)
		return
	}
	r.enter(sc)
	r.stmts(ss)
	r.exit()
}

func (r *resolver) stmt(s Stmt) {
	switch s := s.(type) {
	case *VarStmt:
		if s.Init != nil {
			r.expr(s.Init)
		}
		s.slot = -1
		if n := len(r.stack); n > 0 {
			s.slot = r.stack[n-1].slotOf(s.Name)
		}
	case *AssignStmt:
		r.expr(s.X)
		s.cands = r.candidates(s.Name)
	case *ExprStmt:
		r.expr(s.X)
	case *IfStmt:
		r.expr(s.Cond)
		s.thenScope = blockInfo(s.Then)
		r.block(s.Then, s.thenScope)
		s.elseScope = blockInfo(s.Else)
		r.block(s.Else, s.elseScope)
	case *WhileStmt:
		r.expr(s.Cond)
		s.bodyScope = blockInfo(s.Body)
		r.block(s.Body, s.bodyScope)
	case *ForStmt:
		if v, ok := s.Init.(*VarStmt); ok {
			s.initScope = &scopeInfo{names: []string{v.Name}}
			r.enter(s.initScope)
		}
		if s.Init != nil {
			r.stmt(s.Init)
		}
		if s.Cond != nil {
			r.expr(s.Cond)
		}
		if s.Post != nil {
			r.stmt(s.Post)
		}
		s.bodyScope = blockInfo(s.Body)
		r.block(s.Body, s.bodyScope)
		if s.initScope != nil {
			r.exit()
		}
	case *ReturnStmt:
		if s.X != nil {
			r.expr(s.X)
		}
	}
}

func (r *resolver) expr(x Expr) {
	switch x := x.(type) {
	case *Lit:
	case *Ident:
		x.cands = r.candidates(x.Name)
	case *Member:
		r.expr(x.X)
	case *Call:
		r.expr(x.Fn)
		for _, a := range x.Args {
			r.expr(a)
		}
	case *Binary:
		r.expr(x.L)
		r.expr(x.R)
	case *Unary:
		r.expr(x.X)
	case *FuncLit:
		// Evaluating the literal captures the live chain: every enclosing
		// frame may now outlive its scope.
		for _, sc := range r.stack {
			sc.escapes = true
		}
		x.fnScope = funcScope(x.Params, x.Body)
		r.enter(x.fnScope)
		r.stmts(x.Body)
		r.exit()
	}
}

// maxProgCache bounds the program cache. When full it is cleared outright
// (an epoch clear): compiled programs are pure functions of their source,
// so eviction can only cost a recompile, never change a result.
const maxProgCache = 4096

var progCache = struct {
	mu sync.RWMutex
	m  map[string]*Program
}{m: make(map[string]*Program, 64)}

// Compile parses and resolves src, memoizing the result by source string.
// Compiled programs are immutable; concurrent callers — the experiment
// runner's workers, the proxy and client engines of one page load, every
// scheme loading the same webgen page — share one *Program. Parse failures
// are not cached (they are rare and deterministic).
func Compile(src string) (*Program, error) {
	progCache.mu.RLock()
	p := progCache.m[src]
	progCache.mu.RUnlock()
	if p != nil {
		return p, nil
	}
	p, err := Parse(src)
	if err != nil {
		return nil, err
	}
	progCache.mu.Lock()
	if len(progCache.m) >= maxProgCache {
		progCache.m = make(map[string]*Program, 64)
	}
	progCache.m[src] = p
	progCache.mu.Unlock()
	return p, nil
}

// CompileBytes is Compile for byte slices. The cache hit path does not
// allocate: the map lookup uses Go's byte-slice-keyed string indexing, so a
// script body fetched as []byte costs a string conversion only on its first
// compile anywhere in the process.
func CompileBytes(src []byte) (*Program, error) {
	progCache.mu.RLock()
	p := progCache.m[string(src)]
	progCache.mu.RUnlock()
	if p != nil {
		return p, nil
	}
	return Compile(string(src))
}
