//go:build simdebug

package minijs

import "fmt"

// With -tags simdebug every frame release checks the pooled flag, so
// returning a frame to the free list twice — which would silently alias two
// live scopes onto one slot array — panics at the offending call site. This
// mirrors the simnet packet pool and eventsim owner checks: a contract that
// is free in normal builds and loud in debug builds.

func checkFrameFree(f *frame) {
	if f.pooled {
		panic(fmt.Sprintf("minijs: double free of frame (%d slots)", len(f.slots)))
	}
}
