package minijs

import "fmt"

// AST node types.

// Stmt is a statement.
type Stmt interface{ stmtNode() }

// Expr is an expression.
type Expr interface{ exprNode() }

// Program is a parsed script.
type Program struct {
	Stmts []Stmt
	// Source is retained for diagnostics and size accounting.
	Source string
}

// VarStmt declares a variable: var name = init;
type VarStmt struct {
	Name string
	Init Expr // may be nil

	slot int // compiled: slot in the enclosing scope's frame, -1 = global
}

// AssignStmt assigns to an existing variable: name = x;
type AssignStmt struct {
	Name string
	X    Expr

	cands []slotRef // compiled: candidate bindings, innermost first
}

// ExprStmt evaluates an expression for side effects.
type ExprStmt struct{ X Expr }

// IfStmt is if (cond) {then} else {else}.
type IfStmt struct {
	Cond Expr
	Then []Stmt
	Else []Stmt // may be nil

	thenScope, elseScope *scopeInfo // compiled: nil when branch declares no vars
}

// ForStmt is for (init; cond; post) {body}.
type ForStmt struct {
	Init Stmt // may be nil
	Cond Expr // may be nil (infinite, bounded by op budget)
	Post Stmt // may be nil
	Body []Stmt

	initScope *scopeInfo // compiled: non-nil iff Init is a var declaration
	bodyScope *scopeInfo // compiled: nil when body declares no vars
}

// WhileStmt is while (cond) {body}.
type WhileStmt struct {
	Cond Expr
	Body []Stmt

	bodyScope *scopeInfo // compiled: nil when body declares no vars
}

// ReturnStmt returns from the enclosing function.
type ReturnStmt struct{ X Expr } // X may be nil

func (*VarStmt) stmtNode()    {}
func (*AssignStmt) stmtNode() {}
func (*ExprStmt) stmtNode()   {}
func (*IfStmt) stmtNode()     {}
func (*ForStmt) stmtNode()    {}
func (*WhileStmt) stmtNode()  {}
func (*ReturnStmt) stmtNode() {}

// Lit is a literal value.
type Lit struct{ Val Value }

// Ident references a variable.
type Ident struct {
	Name string

	cands []slotRef // compiled: candidate bindings, innermost first
}

// Member accesses X.Name (used for namespace builtins like document.write).
type Member struct {
	X    Expr
	Name string
}

// Call invokes Fn(Args...).
type Call struct {
	Fn   Expr
	Args []Expr
}

// Binary applies an infix operator.
type Binary struct {
	Op   string
	L, R Expr
}

// Unary applies a prefix operator (! or -).
type Unary struct {
	Op string
	X  Expr
}

// FuncLit is a function literal.
type FuncLit struct {
	Params []string
	Body   []Stmt

	fnScope *scopeInfo // compiled: param + body-var scope layout
}

func (*Lit) exprNode()     {}
func (*Ident) exprNode()   {}
func (*Member) exprNode()  {}
func (*Call) exprNode()    {}
func (*Binary) exprNode()  {}
func (*Unary) exprNode()   {}
func (*FuncLit) exprNode() {}

// Parse parses a script into a Program.
func Parse(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var stmts []Stmt
	for !p.at(tokEOF, "") {
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	prog := &Program{Stmts: stmts, Source: src}
	resolveProgram(prog)
	return prog, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind tokKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	t := p.cur()
	return token{}, fmt.Errorf("minijs: expected %q, got %q at offset %d", text, t.text, t.pos)
}

func (p *parser) statement() (Stmt, error) {
	switch {
	case p.at(tokKeyword, "var"):
		return p.varStmt(true)
	case p.at(tokKeyword, "if"):
		return p.ifStmt()
	case p.at(tokKeyword, "for"):
		return p.forStmt()
	case p.at(tokKeyword, "while"):
		return p.whileStmt()
	case p.at(tokKeyword, "return"):
		p.next()
		var x Expr
		if !p.at(tokPunct, ";") {
			var err error
			x, err = p.expr()
			if err != nil {
				return nil, err
			}
		}
		p.accept(tokPunct, ";")
		return &ReturnStmt{X: x}, nil
	}
	return p.simpleStmt(true)
}

// simpleStmt parses an assignment or expression statement.
// consumeSemi controls whether a trailing ';' is required/consumed (it is
// not inside for-headers).
func (p *parser) simpleStmt(consumeSemi bool) (Stmt, error) {
	// Lookahead for "ident =" (but not "==").
	if p.cur().kind == tokIdent && p.toks[p.pos+1].kind == tokPunct && p.toks[p.pos+1].text == "=" {
		name := p.next().text
		p.next() // '='
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if consumeSemi {
			p.accept(tokPunct, ";")
		}
		return &AssignStmt{Name: name, X: x}, nil
	}
	x, err := p.expr()
	if err != nil {
		return nil, err
	}
	if consumeSemi {
		p.accept(tokPunct, ";")
	}
	return &ExprStmt{X: x}, nil
}

func (p *parser) varStmt(consumeSemi bool) (Stmt, error) {
	p.next() // var
	nameTok, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	var init Expr
	if p.accept(tokPunct, "=") {
		init, err = p.expr()
		if err != nil {
			return nil, err
		}
	}
	if consumeSemi {
		p.accept(tokPunct, ";")
	}
	return &VarStmt{Name: nameTok.text, Init: init}, nil
}

func (p *parser) block() ([]Stmt, error) {
	if _, err := p.expect(tokPunct, "{"); err != nil {
		return nil, err
	}
	var stmts []Stmt
	for !p.at(tokPunct, "}") {
		if p.at(tokEOF, "") {
			return nil, fmt.Errorf("minijs: unterminated block")
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	p.next() // '}'
	return stmts, nil
}

func (p *parser) ifStmt() (Stmt, error) {
	p.next() // if
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	then, err := p.block()
	if err != nil {
		return nil, err
	}
	var els []Stmt
	if p.accept(tokKeyword, "else") {
		if p.at(tokKeyword, "if") {
			nested, err := p.ifStmt()
			if err != nil {
				return nil, err
			}
			els = []Stmt{nested}
		} else {
			els, err = p.block()
			if err != nil {
				return nil, err
			}
		}
	}
	return &IfStmt{Cond: cond, Then: then, Else: els}, nil
}

func (p *parser) forStmt() (Stmt, error) {
	p.next() // for
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	var init Stmt
	var err error
	if !p.at(tokPunct, ";") {
		if p.at(tokKeyword, "var") {
			init, err = p.varStmt(false)
		} else {
			init, err = p.simpleStmt(false)
		}
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return nil, err
	}
	var cond Expr
	if !p.at(tokPunct, ";") {
		cond, err = p.expr()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return nil, err
	}
	var post Stmt
	if !p.at(tokPunct, ")") {
		post, err = p.simpleStmt(false)
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &ForStmt{Init: init, Cond: cond, Post: post, Body: body}, nil
}

func (p *parser) whileStmt() (Stmt, error) {
	p.next() // while
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ")"); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Cond: cond, Body: body}, nil
}

// Expression parsing: precedence climbing.
// || < && < == != < > <= >= < + - < * / %

var binPrec = map[string]int{
	"||": 1, "&&": 2,
	"==": 3, "!=": 3,
	"<": 4, ">": 4, "<=": 4, ">=": 4,
	"+": 5, "-": 5,
	"*": 6, "/": 6, "%": 6,
}

func (p *parser) expr() (Expr, error) { return p.binary(0) }

func (p *parser) binary(minPrec int) (Expr, error) {
	left, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		prec, ok := binPrec[t.text]
		if t.kind != tokPunct || !ok || prec < minPrec {
			return left, nil
		}
		p.next()
		right, err := p.binary(prec + 1)
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: t.text, L: left, R: right}
	}
}

func (p *parser) unary() (Expr, error) {
	if p.at(tokPunct, "!") || p.at(tokPunct, "-") {
		op := p.next().text
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: op, X: x}, nil
	}
	return p.postfix()
}

func (p *parser) postfix() (Expr, error) {
	x, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tokPunct, "."):
			nameTok, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			x = &Member{X: x, Name: nameTok.text}
		case p.at(tokPunct, "("):
			p.next()
			var args []Expr
			for !p.at(tokPunct, ")") {
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if !p.accept(tokPunct, ",") {
					break
				}
			}
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
			x = &Call{Fn: x, Args: args}
		default:
			return x, nil
		}
	}
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.next()
		return &Lit{Val: Number(t.num)}, nil
	case t.kind == tokString:
		p.next()
		return &Lit{Val: String(t.text)}, nil
	case t.kind == tokKeyword && t.text == "true":
		p.next()
		return &Lit{Val: Bool(true)}, nil
	case t.kind == tokKeyword && t.text == "false":
		p.next()
		return &Lit{Val: Bool(false)}, nil
	case t.kind == tokKeyword && t.text == "null":
		p.next()
		return &Lit{Val: Null()}, nil
	case t.kind == tokKeyword && t.text == "function":
		p.next()
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		var params []string
		for !p.at(tokPunct, ")") {
			nameTok, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			params = append(params, nameTok.text)
			if !p.accept(tokPunct, ",") {
				break
			}
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.block()
		if err != nil {
			return nil, err
		}
		return &FuncLit{Params: params, Body: body}, nil
	case t.kind == tokIdent:
		p.next()
		return &Ident{Name: t.text}, nil
	case t.kind == tokPunct && t.text == "(":
		p.next()
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		return x, nil
	}
	return nil, fmt.Errorf("minijs: unexpected token %q at offset %d", t.text, t.pos)
}
