package minijs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// Differential harness: run the same program through the slot-resolved
// interpreter and the pre-refactor reference (reference_test.go) under
// identical deterministic builtins, and demand identical observable
// behavior — emitted native calls, error strings, op counts, and final
// globals.

type diffResult struct {
	calls   []string
	err     string
	ops     int
	globals map[string]string
}

func (d diffResult) equal(o diffResult) bool {
	if d.err != o.err || d.ops != o.ops || len(d.calls) != len(o.calls) || len(d.globals) != len(o.globals) {
		return false
	}
	for i := range d.calls {
		if d.calls[i] != o.calls[i] {
			return false
		}
	}
	for k, v := range d.globals {
		if o.globals[k] != v {
			return false
		}
	}
	return true
}

// harnessNatives builds the builtin set both interpreters run under. call
// invokes a closure on the owning interpreter — the only per-side
// difference. setTimeout and onEvent call their callbacks immediately so
// closure capture is exercised on every input that registers one.
func harnessNatives(rec *[]string, call func(*Closure, ...Value) (Value, error)) map[string]Value {
	ctr := 0
	record := func(name string, args []Value) {
		parts := make([]string, len(args))
		for i, a := range args {
			parts[i] = a.Str()
		}
		*rec = append(*rec, name+":"+strings.Join(parts, "|"))
	}
	simple := func(name string) Value {
		return NativeValue(func(args []Value) (Value, error) {
			record(name, args)
			return Null(), nil
		})
	}
	return map[string]Value{
		"emit":  simple("emit"),
		"log":   simple("log"),
		"fetch": simple("fetch"),
		"fetchAsync": NativeValue(func(args []Value) (Value, error) {
			record("fetchAsync", args)
			return Null(), nil
		}),
		"rand": NativeValue(func(args []Value) (Value, error) {
			ctr++
			return Number(float64(ctr)), nil
		}),
		"setTimeout": NativeValue(func(args []Value) (Value, error) {
			record("setTimeout", args)
			if len(args) >= 2 {
				if c := args[1].Closure(); c != nil {
					return call(c)
				}
			}
			return Null(), nil
		}),
		"onEvent": NativeValue(func(args []Value) (Value, error) {
			record("onEvent", args)
			if len(args) >= 3 {
				if c := args[2].Closure(); c != nil {
					return call(c, String("evt"))
				}
			}
			return Null(), nil
		}),
		"document": Namespace(map[string]Value{
			"write": NativeValue(func(args []Value) (Value, error) {
				record("write", args)
				return Null(), nil
			}),
		}),
	}
}

func runSlotted(prog *Program, maxOps int) diffResult {
	in := New()
	in.maxOps = maxOps
	var calls []string
	for name, v := range harnessNatives(&calls, in.CallClosure) {
		in.Bind(name, v)
	}
	res := diffResult{globals: make(map[string]string)}
	if err := in.Run(prog); err != nil {
		res.err = err.Error()
	}
	res.calls = calls
	res.ops = in.Ops()
	for k, v := range in.globals {
		res.globals[k] = v.Str()
	}
	return res
}

func runReference(prog *Program, maxOps int) diffResult {
	in := newRef()
	in.maxOps = maxOps
	var calls []string
	for name, v := range harnessNatives(&calls, in.callClosure) {
		in.bind(name, v)
	}
	res := diffResult{}
	if err := in.run(prog); err != nil {
		res.err = err.Error()
	}
	res.calls = calls
	res.ops = in.ops
	res.globals = in.globalsByStr()
	return res
}

// checkDiff parses src once and runs the same AST through both
// interpreters (the reference reads only the Name fields, ignoring the
// compiled annotations).
func checkDiff(t *testing.T, src string) {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	const maxOps = 200_000
	got, want := runSlotted(prog, maxOps), runReference(prog, maxOps)
	if !got.equal(want) {
		t.Fatalf("slot-resolved and reference interpreters diverge on %q:\n slotted: %+v\n reference: %+v", src, got, want)
	}
}

func TestSlotResolvedMatchesRef(t *testing.T) {
	corpus := []string{
		// Shadowing across block scopes, including use-before-declaration
		// inside the shadowing block (the assignment must hit the outer
		// binding while the block's own var is still unset).
		`var x = 1;
		 if (true) { x = 2; var x = 3; emit(x); }
		 emit(x);`,
		`var x = "outer";
		 for (var i = 0; i < 2; i = i + 1) { emit(x); var x = "inner" + i; emit(x); }
		 emit(x);`,
		`var x = 1;
		 while (x < 3) { var y = x * 10; x = x + 1; emit(y); }
		 emit(x);`,
		// Reading a block var before its declaration falls through to the
		// global of the same name; after declaration the block slot wins.
		`var v = "global";
		 var f = function() { emit(v); var v = "local"; emit(v); };
		 f(); emit(v);`,
		// Implicit globals created from inside closures.
		`var f = function() { g = 42; }; f(); emit(g); g = g + 1; emit(g);`,
		// Per-iteration closure capture: each iteration's block frame is
		// distinct, so each closure sees its own snapshot.
		`var mk = function(n) { return function() { return n * 2; }; };
		 var a = mk(3); var b = mk(5);
		 emit(a(), b(), a());`,
		// Duplicate parameter names: the last argument wins.
		`var f = function(a, a) { return a; }; emit(f(1, 2));`,
		// Missing arguments become null.
		`var f = function(a, b) { emit(a, b); }; f(7);`,
		// Closures escaping their defining loop iteration, called after the
		// loop (and its frames) are gone.
		`var saved = null;
		 for (var i = 0; i < 3; i = i + 1) { var n = i; saved = function() { return n; }; }
		 emit(saved());`,
		// Deep nesting mixes pooled block frames and escaping function frames.
		`var total = 0;
		 var add = function(n) { total = total + n; return total; };
		 for (var i = 1; i <= 3; i = i + 1) {
		   for (var j = 1; j <= 3; j = j + 1) { var p = i * j; add(p); }
		 }
		 emit(total);`,
		// Recursion.
		`var fib = function(n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); };
		 emit(fib(12));`,
		// Builtin-driven closure invocation (setTimeout calls immediately).
		`var hits = 0;
		 setTimeout(10, function() { hits = hits + 1; emit("timer " + hits); });
		 onEvent("click", "buy", function(e) { emit("event " + e); });
		 emit(hits);`,
		// Errors must match exactly: undefined variable...
		`emit(nosuchvar);`,
		// ...calling a non-function...
		`var x = 3; x();`,
		// ...member access on non-objects and unknown members...
		`var x = 1; x.foo();`,
		`document.nosuch();`,
		// ...and op-budget exhaustion (ops at exit must agree too).
		`while (true) { var x = 1; }`,
		// Mixed arithmetic, strings, logic.
		`emit(1 + 2 * 3, "a" + 1, 10 % 3, 10 % 0, -(4), !0, 1 < 2 && "x" < "y");`,
		`emit(null == null, 1 == "1", true != false, 2 <= 2, "b" >= "a");`,
		// for-loop with assignment init and empty sections.
		`var i = 0; for (i = 5; i < 8; i = i + 1) { emit(i); } emit(i);`,
		`var n = 0; for (; n < 2;) { n = n + 1; } emit(n);`,
	}
	for _, src := range corpus {
		checkDiff(t, src)
	}
}

func TestRecursionDepthBounded(t *testing.T) {
	src := `var rec = function(n) { if (n <= 0) { return 0; } return rec(n - 1); }; emit(rec(%d));`
	prog, err := Parse(fmt.Sprintf(src, 500))
	if err != nil {
		t.Fatal(err)
	}
	if res := runSlotted(prog, 5_000_000); res.err != "" {
		t.Fatalf("depth 500 failed: %v", res.err)
	}
	prog, err = Parse(fmt.Sprintf(src, 5000))
	if err != nil {
		t.Fatal(err)
	}
	res := runSlotted(prog, 5_000_000)
	if !strings.Contains(res.err, "call depth exceeded") {
		t.Fatalf("depth 5000: err = %q, want call depth exceeded", res.err)
	}
	// And the reference agrees, including the error string.
	checkDiff(t, fmt.Sprintf(src, 5000))
}

func TestLoopFramesAreRecycled(t *testing.T) {
	// A loop body that declares a variable but creates no closures must
	// recycle its frame: after the run, the pool for 1-slot frames holds
	// exactly the body frame the loop reused each iteration plus the
	// init frame released at loop exit — not 100 per-iteration frames.
	prog, err := Parse(`for (var i = 0; i < 100; i = i + 1) { var y = i * 2; }`)
	if err != nil {
		t.Fatal(err)
	}
	in := New()
	if err := in.Run(prog); err != nil {
		t.Fatal(err)
	}
	if got := len(in.pools.framePool[1]); got != 2 {
		t.Fatalf("1-slot frame pool holds %d frames after loop, want 2 (body reused + init)", got)
	}
	for _, f := range in.pools.framePool[1] {
		for i, v := range f.slots {
			if v.kind != kindUnset {
				t.Fatalf("pooled frame slot %d not reset: kind %d", i, v.kind)
			}
		}
	}
}

func TestEscapingFramesAreNotRecycled(t *testing.T) {
	// A function that returns a closure marks its scope escaping; its
	// frames must never enter the pool, or the captured variable would be
	// clobbered by later calls.
	prog, err := Parse(`
		var mk = function(n) { return function() { return n; }; };
		var a = mk(1); var b = mk(2);
		emit(a(), b());
	`)
	if err != nil {
		t.Fatal(err)
	}
	in := New()
	var calls []string
	in.BindNative("emit", func(args []Value) (Value, error) {
		parts := make([]string, len(args))
		for i, a := range args {
			parts[i] = a.Str()
		}
		calls = append(calls, strings.Join(parts, "|"))
		return Null(), nil
	})
	if err := in.Run(prog); err != nil {
		t.Fatal(err)
	}
	if len(calls) != 1 || calls[0] != "1|2" {
		t.Fatalf("calls = %v, want [1|2]", calls)
	}
	// mk's param frames hold the captured n and must stay out of the pool.
	// (The returned closures' own 0-slot call frames capture nothing and
	// may be recycled — only the defining scope escapes.)
	if got := len(in.pools.framePool[1]); got != 0 {
		t.Fatalf("1-slot pool holds %d frames, want 0 (mk's frames escape)", got)
	}
}

func TestCompileMemoizes(t *testing.T) {
	const src = `var compile_memo_probe = 1;`
	p1, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("Compile did not memoize: distinct *Program for identical source")
	}
	p3, err := CompileBytes([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if p3 != p1 {
		t.Fatal("CompileBytes missed the cache for identical source")
	}
	if _, err := Compile(`var = broken`); err == nil {
		t.Fatal("Compile of invalid source did not error")
	}
}

func TestCompileConcurrentSharing(t *testing.T) {
	// The runner's worker pool compiles and runs the same scripts from many
	// goroutines; the cache must be safe and the shared Program immutable
	// in use. Run with -race to make violations loud.
	srcs := []string{
		`var s = 0; for (var i = 0; i < 50; i = i + 1) { s = s + i; } emit(s);`,
		`var f = function(n) { return n + 1; }; emit(f(1), f(2));`,
		`var x = "a"; if (x == "a") { var y = x + "b"; emit(y); }`,
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				for _, src := range srcs {
					prog, err := Compile(src)
					if err != nil {
						t.Error(err)
						return
					}
					in := New()
					in.BindNative("emit", func([]Value) (Value, error) { return Null(), nil })
					if err := in.Run(prog); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}
