package minijs

import (
	"strings"
	"testing"
)

// run executes src in a fresh interpreter with optional builtins, returning
// the interpreter for inspection.
func run(t *testing.T, src string, builtins map[string]Native) *Interp {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	in := New()
	for name, f := range builtins {
		in.BindNative(name, f)
	}
	if err := in.Run(prog); err != nil {
		t.Fatalf("run: %v", err)
	}
	return in
}

func collectCalls(calls *[]string) Native {
	return func(args []Value) (Value, error) {
		parts := make([]string, len(args))
		for i, a := range args {
			parts[i] = a.Str()
		}
		*calls = append(*calls, strings.Join(parts, "|"))
		return Null(), nil
	}
}

func TestArithmeticAndVars(t *testing.T) {
	var calls []string
	run(t, `var x = 2 + 3 * 4; var y = (2+3) * 4; emit(x, y, 10/4, 7%3);`,
		map[string]Native{"emit": collectCalls(&calls)})
	if len(calls) != 1 || calls[0] != "14|20|2.5|1" {
		t.Fatalf("calls = %v", calls)
	}
}

func TestStringConcat(t *testing.T) {
	var calls []string
	run(t, `var base = "http://x.com/img"; emit(base + "/" + 5 + ".png");`,
		map[string]Native{"emit": collectCalls(&calls)})
	if calls[0] != "http://x.com/img/5.png" {
		t.Fatalf("calls = %v", calls)
	}
}

func TestIfElse(t *testing.T) {
	var calls []string
	run(t, `
var a = 5;
if (a > 3) { emit("big"); } else { emit("small"); }
if (a == 5) { emit("five"); }
if (a != 5) { emit("notfive"); } else if (a >= 5) { emit("ge5"); }
`, map[string]Native{"emit": collectCalls(&calls)})
	want := "big,five,ge5"
	if strings.Join(calls, ",") != want {
		t.Fatalf("calls = %v, want %v", calls, want)
	}
}

func TestForLoop(t *testing.T) {
	var calls []string
	run(t, `for (var i = 0; i < 3; i = i + 1) { emit("it" + i); }`,
		map[string]Native{"emit": collectCalls(&calls)})
	if strings.Join(calls, ",") != "it0,it1,it2" {
		t.Fatalf("calls = %v", calls)
	}
}

func TestWhileLoop(t *testing.T) {
	var calls []string
	run(t, `var n = 3; while (n > 0) { emit(n); n = n - 1; }`,
		map[string]Native{"emit": collectCalls(&calls)})
	if strings.Join(calls, ",") != "3,2,1" {
		t.Fatalf("calls = %v", calls)
	}
}

func TestClosuresCaptureEnvironment(t *testing.T) {
	var calls []string
	run(t, `
var prefix = "img-";
var mk = function(n) { return prefix + n; };
emit(mk(1), mk(2));
`, map[string]Native{"emit": collectCalls(&calls)})
	if calls[0] != "img-1|img-2" {
		t.Fatalf("calls = %v", calls)
	}
}

func TestClosureStoredAndCalledLater(t *testing.T) {
	var handler *Closure
	in := run(t, `
var clicks = 0;
onEvent("click", function() { clicks = clicks + 1; emit("clicked " + clicks); });
`, map[string]Native{
		"emit": func(args []Value) (Value, error) { return Null(), nil },
		"onEvent": func(args []Value) (Value, error) {
			handler = args[1].Closure()
			return Null(), nil
		},
	})
	if handler == nil {
		t.Fatal("handler not captured")
	}
	for i := 0; i < 3; i++ {
		if _, err := in.CallClosure(handler); err != nil {
			t.Fatal(err)
		}
	}
	v, ok := in.Global("clicks")
	if !ok || v.Num() != 3 {
		t.Fatalf("clicks = %v", v)
	}
}

func TestReturnValue(t *testing.T) {
	var calls []string
	run(t, `
var f = function(x) { if (x > 0) { return "pos"; } return "nonpos"; };
emit(f(1), f(-1), f(0));
`, map[string]Native{"emit": collectCalls(&calls)})
	if calls[0] != "pos|nonpos|nonpos" {
		t.Fatalf("calls = %v", calls)
	}
}

func TestNamespaceMemberCall(t *testing.T) {
	var writes []string
	in := New()
	in.Bind("document", Namespace(map[string]Value{
		"write": NativeValue(func(args []Value) (Value, error) {
			writes = append(writes, args[0].Str())
			return Null(), nil
		}),
	}))
	prog, err := Parse(`document.write("<img src='/x.png'>");`)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Run(prog); err != nil {
		t.Fatal(err)
	}
	if len(writes) != 1 || !strings.Contains(writes[0], "x.png") {
		t.Fatalf("writes = %v", writes)
	}
}

func TestBooleansAndLogic(t *testing.T) {
	var calls []string
	run(t, `
var t = true; var f = false;
if (t && !f) { emit("and"); }
if (f || t) { emit("or"); }
if (null == null) { emit("nulleq"); }
`, map[string]Native{"emit": collectCalls(&calls)})
	if strings.Join(calls, ",") != "and,or,nulleq" {
		t.Fatalf("calls = %v", calls)
	}
}

func TestShortCircuitSkipsRHS(t *testing.T) {
	var calls []string
	run(t, `var f = false; f && boom(); var t = true; t || boom(); emit("ok");`,
		map[string]Native{
			"emit": collectCalls(&calls),
			"boom": func([]Value) (Value, error) { panic("short circuit failed") },
		})
	if len(calls) != 1 {
		t.Fatalf("calls = %v", calls)
	}
}

func TestUndefinedVariableErrors(t *testing.T) {
	prog, err := Parse(`emit(nosuchvar);`)
	if err != nil {
		t.Fatal(err)
	}
	in := New()
	in.BindNative("emit", func([]Value) (Value, error) { return Null(), nil })
	if err := in.Run(prog); err == nil {
		t.Fatal("undefined variable did not error")
	}
}

func TestCallNonFunctionErrors(t *testing.T) {
	prog, _ := Parse(`var x = 3; x();`)
	if err := New().Run(prog); err == nil {
		t.Fatal("calling a number did not error")
	}
}

func TestOpBudgetStopsInfiniteLoop(t *testing.T) {
	prog, err := Parse(`while (true) { var x = 1; }`)
	if err != nil {
		t.Fatal(err)
	}
	in := New()
	in.maxOps = 10_000
	if err := in.Run(prog); err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("err = %v, want op budget error", err)
	}
}

func TestOpsCounted(t *testing.T) {
	in := run(t, `for (var i = 0; i < 100; i = i + 1) { var y = i * 2; }`, nil)
	if in.Ops() < 300 {
		t.Fatalf("Ops = %d, want several hundred", in.Ops())
	}
	in.ResetOps()
	if in.Ops() != 0 {
		t.Fatal("ResetOps failed")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`var = 3;`,
		`if (x { }`,
		`function( { }`,
		`"unterminated`,
		`var x = @;`,
		`for (;;) {`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestComments(t *testing.T) {
	var calls []string
	run(t, `
// line comment with fetch("ghost")
/* block
   comment */
emit("real");
`, map[string]Native{"emit": collectCalls(&calls)})
	if len(calls) != 1 || calls[0] != "real" {
		t.Fatalf("calls = %v", calls)
	}
}

func TestImplicitGlobalAssignment(t *testing.T) {
	in := run(t, `var f = function() { g = 42; }; f();`, nil)
	v, ok := in.Global("g")
	if !ok || v.Num() != 42 {
		t.Fatalf("g = %v, ok=%v", v, ok)
	}
}

func TestValueStr(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null(), "null"},
		{Bool(true), "true"},
		{Number(3), "3"},
		{Number(2.5), "2.5"},
		{String("s"), "s"},
	}
	for _, c := range cases {
		if got := c.v.Str(); got != c.want {
			t.Errorf("Str(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestTruthiness(t *testing.T) {
	if Null().Truthy() || Bool(false).Truthy() || Number(0).Truthy() || String("").Truthy() {
		t.Fatal("falsy value was truthy")
	}
	if !Bool(true).Truthy() || !Number(1).Truthy() || !String("x").Truthy() {
		t.Fatal("truthy value was falsy")
	}
}

func TestNestedLoopsAndFunctions(t *testing.T) {
	var calls []string
	run(t, `
var total = 0;
var add = function(n) { total = total + n; return total; };
for (var i = 1; i <= 3; i = i + 1) {
  for (var j = 1; j <= 3; j = j + 1) {
    add(i * j);
  }
}
emit(total);
`, map[string]Native{"emit": collectCalls(&calls)})
	if calls[0] != "36" {
		t.Fatalf("calls = %v", calls)
	}
}

func TestStringEscapes(t *testing.T) {
	var calls []string
	run(t, `emit("a\"b", 'c\'d', "tab\there");`,
		map[string]Native{"emit": collectCalls(&calls)})
	if calls[0] != "a\"b|c'd|tab\there" {
		t.Fatalf("calls = %v", calls)
	}
}

// benchScript exercises the paths a generated page script hits: loops over
// pooled block frames, closure calls, string building, and builtin calls.
const benchScript = `
var base = "http://cdn.example.com/asset";
var mk = function(i) { return base + "/" + i + ".png"; };
var total = 0;
for (var i = 0; i < 50; i = i + 1) {
  var u = mk(i);
  emit(u);
  total = total + i;
}
emit(total);
`

// BenchmarkMinijsExec measures steady-state execution on a reused
// interpreter: the program is compiled once and every frame the run needs
// comes from the free lists, so the remaining allocations are only the
// strings the script itself builds.
func BenchmarkMinijsExec(b *testing.B) {
	prog, err := Compile(benchScript)
	if err != nil {
		b.Fatal(err)
	}
	in := New()
	in.BindNative("emit", func([]Value) (Value, error) { return Null(), nil })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.ResetOps()
		if err := in.Run(prog); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMinijsCompileCached measures the program-cache hit path — what
// every engine after the first pays for a script body it holds as bytes.
func BenchmarkMinijsCompileCached(b *testing.B) {
	src := []byte(benchScript)
	if _, err := CompileBytes(src); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CompileBytes(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInterpLoop(b *testing.B) {
	prog, err := Parse(`var s = 0; for (var i = 0; i < 1000; i = i + 1) { s = s + i; }`)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := New()
		if err := in.Run(prog); err != nil {
			b.Fatal(err)
		}
	}
}
