package minijs

import (
	"testing"

	"github.com/parcel-go/parcel/internal/webgen"
)

// FuzzMinijs is a differential fuzzer: every input that parses is executed
// by both the slot-resolved interpreter and the pre-refactor reference
// implementation (reference_test.go) under identical deterministic
// builtins, and any divergence in emitted calls, error strings, op counts,
// or final globals fails. This is the strongest guarantee the compile-once
// refactor offers: the resolver cannot mis-scope an identifier, and the
// frame pools cannot leak a stale binding, without this target noticing.
//
// The seed corpus is real generator output (every script body the simulator
// actually executes, including document.write payloads) plus hand-written
// fragments that aim at resolver edge cases the generator never produces.
func FuzzMinijs(f *testing.F) {
	for _, page := range webgen.Generate(webgen.Spec{Seed: 77, NumPages: 3}) {
		for _, obj := range page.Objects {
			if obj.ContentType == "application/javascript" {
				f.Add(string(obj.Body))
			}
		}
	}
	for _, s := range []string{
		``,
		`var x = 1; emit(x);`,
		`var x = 1; if (true) { x = 2; var x = 3; emit(x); } emit(x);`,
		`var v = "g"; var f = function() { emit(v); var v = "l"; emit(v); }; f();`,
		`var f = function(a, a) { return a; }; emit(f(1, 2));`,
		`var mk = function(n) { return function() { return n; }; }; emit(mk(1)(), mk(2)());`,
		`var s = null; for (var i = 0; i < 3; i = i + 1) { var n = i; s = function() { return n; }; } emit(s());`,
		`var r = function(n) { if (n <= 0) { return 0; } return r(n - 1); }; emit(r(50));`,
		`var r = function() { return r(); }; r();`,
		`g = 1; emit(g); var g = 2; emit(g);`,
		`setTimeout(5, function() { emit(rand()); });`,
		`onEvent("click", "id", function(e) { emit(e); });`,
		`document.write("<img src='/x.png'>");`,
		`emit(nosuchvar);`,
		`var x = 3; x();`,
		`while (true) { var x = 1; }`,
		`for (var i = 0; i < 2; i = i + 1) { for (var j = 0; j < 2; j = j + 1) { var k = i + j; emit(k); } }`,
		`emit(1 + "a", 10 % 0, -(-3), !null, "a" < "b" && 1 <= 1);`,
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 8192 {
			return // cap work per input; long inputs add size, not structure
		}
		prog, err := Parse(src)
		if err != nil {
			return
		}
		// A tight budget keeps fuzz throughput high while still reaching
		// every interpreter path; both sides get the identical bound.
		const maxOps = 100_000
		got, want := runSlotted(prog, maxOps), runReference(prog, maxOps)
		if !got.equal(want) {
			t.Fatalf("interpreters diverge on %q:\n slotted: %+v\n reference: %+v", src, got, want)
		}
	})
}
