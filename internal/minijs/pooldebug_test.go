//go:build simdebug

package minijs

import "testing"

// These tests only exist under -tags simdebug: they prove the frame-pool
// ownership check actually fires. In normal builds the check compiles to
// nothing, so there is nothing to test there.

func TestDoubleFreeFramePanics(t *testing.T) {
	in := New()
	sc := &scopeInfo{names: []string{"x"}}
	f := in.newFrame(sc, nil)
	in.freeFrame(f, sc)
	defer func() {
		if recover() == nil {
			t.Fatal("double freeFrame: expected panic, got none")
		}
	}()
	in.freeFrame(f, sc)
}

// TestFrameReuseAfterFree sanity-checks the happy path under the debug
// build: allocate, free, re-allocate — the recycled frame must come back
// with the pooled flag cleared and every slot reset, so a later legitimate
// free succeeds.
func TestFrameReuseAfterFree(t *testing.T) {
	in := New()
	sc := &scopeInfo{names: []string{"x", "y"}}
	f := in.newFrame(sc, nil)
	f.slots[0] = Number(7)
	in.freeFrame(f, sc)
	g := in.newFrame(sc, nil)
	if g != f {
		t.Fatal("free list did not recycle the released frame")
	}
	if g.pooled {
		t.Fatal("recycled frame still marked pooled")
	}
	for i, v := range g.slots {
		if v.kind != kindUnset {
			t.Fatalf("recycled frame slot %d not reset (kind %d)", i, v.kind)
		}
	}
	in.freeFrame(g, sc) // must not panic
}

// TestEscapingFrameFreeIsNoop: releasing a frame whose scope escapes must
// leave it untouched (a closure may still hold it), so releasing twice is
// legal and must not panic even under the debug build.
func TestEscapingFrameFreeIsNoop(t *testing.T) {
	in := New()
	sc := &scopeInfo{names: []string{"x"}, escapes: true}
	f := in.newFrame(sc, nil)
	in.freeFrame(f, sc)
	in.freeFrame(f, sc) // must not panic
	if len(in.pools.framePool[1]) != 0 {
		t.Fatal("escaping frame entered the pool")
	}
}
