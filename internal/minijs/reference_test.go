package minijs

import "fmt"

// This file preserves the pre-refactor interpreter — map[string]Value
// environment chains walked by name at runtime — as a reference
// implementation. The slot-resolved interpreter in interp.go must be
// observationally identical to it: same emitted native calls, same error
// strings, same op counts, same final globals. TestSlotResolvedMatchesRef
// and FuzzMinijs enforce that equivalence.
//
// The only deliberate additions relative to the original are the
// maxCallDepth bound (which interp.go also applies, with the identical
// error string — fuzz inputs can otherwise recurse past the Go stack) and
// the clos side map, which stands in for the env field the production
// Closure no longer carries.

type refEnv struct {
	vars   map[string]Value
	parent *refEnv
}

func (e *refEnv) lookup(name string) (Value, bool) {
	for s := e; s != nil; s = s.parent {
		if v, ok := s.vars[name]; ok {
			return v, true
		}
	}
	return Value{}, false
}

func (e *refEnv) assign(name string, v Value) bool {
	for s := e; s != nil; s = s.parent {
		if _, ok := s.vars[name]; ok {
			s.vars[name] = v
			return true
		}
	}
	return false
}

type refInterp struct {
	globals *refEnv
	ops     int
	maxOps  int
	depth   int
	// clos maps each closure created by this interpreter to its captured
	// environment chain.
	clos map[*Closure]*refEnv
}

func newRef() *refInterp {
	return &refInterp{
		globals: &refEnv{vars: make(map[string]Value)},
		maxOps:  DefaultMaxOps,
		clos:    make(map[*Closure]*refEnv),
	}
}

func (in *refInterp) bind(name string, v Value)        { in.globals.vars[name] = v }
func (in *refInterp) bindNative(name string, f Native) { in.bind(name, NativeValue(f)) }

func (in *refInterp) run(p *Program) error {
	err := in.execBlock(p.Stmts, in.globals)
	if _, ok := err.(errReturn); ok {
		return nil // top-level return is tolerated
	}
	return err
}

func (in *refInterp) callClosure(c *Closure, args ...Value) (Value, error) {
	if c == nil {
		return Null(), fmt.Errorf("minijs: call of null closure")
	}
	if in.depth >= maxCallDepth {
		return Null(), fmt.Errorf("minijs: call depth exceeded (%d)", maxCallDepth)
	}
	in.depth++
	scope := &refEnv{vars: make(map[string]Value, len(c.Params)), parent: in.clos[c]}
	for i, p := range c.Params {
		if i < len(args) {
			scope.vars[p] = args[i]
		} else {
			scope.vars[p] = Null()
		}
	}
	err := in.execBlock(c.Body, scope)
	in.depth--
	if r, ok := err.(errReturn); ok {
		return r.v, nil
	}
	return Null(), err
}

func (in *refInterp) step() error {
	in.ops++
	if in.ops > in.maxOps {
		return fmt.Errorf("minijs: op budget exceeded (%d)", in.maxOps)
	}
	return nil
}

func refBlockScope(stmts []Stmt, e *refEnv) *refEnv {
	n := 0
	for _, s := range stmts {
		if _, ok := s.(*VarStmt); ok {
			n++
		}
	}
	if n == 0 {
		return e
	}
	return &refEnv{vars: make(map[string]Value, n), parent: e}
}

func (in *refInterp) execBlock(stmts []Stmt, e *refEnv) error {
	for _, s := range stmts {
		if err := in.exec(s, e); err != nil {
			return err
		}
	}
	return nil
}

func (in *refInterp) exec(s Stmt, e *refEnv) error {
	if err := in.step(); err != nil {
		return err
	}
	switch s := s.(type) {
	case *VarStmt:
		v := Null()
		if s.Init != nil {
			var err error
			v, err = in.eval(s.Init, e)
			if err != nil {
				return err
			}
		}
		e.vars[s.Name] = v
		return nil
	case *AssignStmt:
		v, err := in.eval(s.X, e)
		if err != nil {
			return err
		}
		if !e.assign(s.Name, v) {
			// Implicit global, like sloppy-mode JS.
			in.globals.vars[s.Name] = v
		}
		return nil
	case *ExprStmt:
		_, err := in.eval(s.X, e)
		return err
	case *IfStmt:
		cond, err := in.eval(s.Cond, e)
		if err != nil {
			return err
		}
		if cond.Truthy() {
			return in.execBlock(s.Then, refBlockScope(s.Then, e))
		}
		return in.execBlock(s.Else, refBlockScope(s.Else, e))
	case *WhileStmt:
		for {
			cond, err := in.eval(s.Cond, e)
			if err != nil {
				return err
			}
			if !cond.Truthy() {
				return nil
			}
			if err := in.execBlock(s.Body, refBlockScope(s.Body, e)); err != nil {
				return err
			}
			if err := in.step(); err != nil {
				return err
			}
		}
	case *ForStmt:
		scope := e
		if s.Init != nil {
			// The induction variable needs its own scope; condition-only
			// loops can evaluate against the enclosing one.
			scope = &refEnv{vars: make(map[string]Value, 1), parent: e}
			if err := in.exec(s.Init, scope); err != nil {
				return err
			}
		}
		for {
			if s.Cond != nil {
				cond, err := in.eval(s.Cond, scope)
				if err != nil {
					return err
				}
				if !cond.Truthy() {
					return nil
				}
			}
			if err := in.execBlock(s.Body, refBlockScope(s.Body, scope)); err != nil {
				return err
			}
			if s.Post != nil {
				if err := in.exec(s.Post, scope); err != nil {
					return err
				}
			}
			if err := in.step(); err != nil {
				return err
			}
		}
	case *ReturnStmt:
		v := Null()
		if s.X != nil {
			var err error
			v, err = in.eval(s.X, e)
			if err != nil {
				return err
			}
		}
		return errReturn{v: v}
	default:
		return fmt.Errorf("minijs: unknown statement %T", s)
	}
}

func (in *refInterp) eval(x Expr, e *refEnv) (Value, error) {
	if err := in.step(); err != nil {
		return Null(), err
	}
	switch x := x.(type) {
	case *Lit:
		return x.Val, nil
	case *Ident:
		if v, ok := e.lookup(x.Name); ok {
			return v, nil
		}
		return Null(), fmt.Errorf("minijs: undefined variable %q", x.Name)
	case *Member:
		base, err := in.eval(x.X, e)
		if err != nil {
			return Null(), err
		}
		if base.kind != kindNamespace {
			return Null(), fmt.Errorf("minijs: member access %q on non-object", x.Name)
		}
		v, ok := base.space[x.Name]
		if !ok {
			return Null(), fmt.Errorf("minijs: unknown member %q", x.Name)
		}
		return v, nil
	case *FuncLit:
		c := &Closure{Params: x.Params, Body: x.Body}
		in.clos[c] = e
		return Value{kind: kindClosure, fn: c}, nil
	case *Unary:
		v, err := in.eval(x.X, e)
		if err != nil {
			return Null(), err
		}
		switch x.Op {
		case "!":
			return Bool(!v.Truthy()), nil
		case "-":
			return Number(-v.Num()), nil
		}
		return Null(), fmt.Errorf("minijs: unknown unary op %q", x.Op)
	case *Binary:
		return in.evalBinary(x, e)
	case *Call:
		fnv, err := in.eval(x.Fn, e)
		if err != nil {
			return Null(), err
		}
		args := make([]Value, len(x.Args))
		for i, a := range x.Args {
			args[i], err = in.eval(a, e)
			if err != nil {
				return Null(), err
			}
		}
		switch fnv.kind {
		case kindNative:
			return fnv.nat(args)
		case kindClosure:
			return in.callClosure(fnv.fn, args...)
		default:
			return Null(), fmt.Errorf("minijs: call of non-function")
		}
	default:
		return Null(), fmt.Errorf("minijs: unknown expression %T", x)
	}
}

func (in *refInterp) evalBinary(x *Binary, e *refEnv) (Value, error) {
	// Short-circuit operators.
	if x.Op == "&&" || x.Op == "||" {
		l, err := in.eval(x.L, e)
		if err != nil {
			return Null(), err
		}
		if x.Op == "&&" && !l.Truthy() {
			return l, nil
		}
		if x.Op == "||" && l.Truthy() {
			return l, nil
		}
		return in.eval(x.R, e)
	}
	l, err := in.eval(x.L, e)
	if err != nil {
		return Null(), err
	}
	r, err := in.eval(x.R, e)
	if err != nil {
		return Null(), err
	}
	switch x.Op {
	case "+":
		if l.kind == kindString || r.kind == kindString {
			return String(l.Str() + r.Str()), nil
		}
		return Number(l.Num() + r.Num()), nil
	case "-":
		return Number(l.Num() - r.Num()), nil
	case "*":
		return Number(l.Num() * r.Num()), nil
	case "/":
		return Number(l.Num() / r.Num()), nil
	case "%":
		ri := r.Num()
		if ri == 0 {
			return Number(0), nil
		}
		return Number(float64(int64(l.Num()) % int64(ri))), nil
	case "==":
		return Bool(l.Equals(r)), nil
	case "!=":
		return Bool(!l.Equals(r)), nil
	case "<":
		return compare(l, r, func(c int) bool { return c < 0 }), nil
	case ">":
		return compare(l, r, func(c int) bool { return c > 0 }), nil
	case "<=":
		return compare(l, r, func(c int) bool { return c <= 0 }), nil
	case ">=":
		return compare(l, r, func(c int) bool { return c >= 0 }), nil
	}
	return Null(), fmt.Errorf("minijs: unknown operator %q", x.Op)
}

// refGlobalsByStr renders the reference interpreter's global scope the way
// the differential harness compares it.
func (in *refInterp) globalsByStr() map[string]string {
	m := make(map[string]string, len(in.globals.vars))
	for k, v := range in.globals.vars {
		m[k] = v.Str()
	}
	return m
}
