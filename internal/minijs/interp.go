package minijs

import (
	"fmt"
	"strconv"
	"strings"
)

// Value is a runtime value: null, bool, number, string, closure, native
// function, or namespace.
type Value struct {
	kind  valueKind
	b     bool
	n     float64
	s     string
	fn    *Closure
	nat   Native
	space map[string]Value
}

type valueKind int

const (
	kindNull valueKind = iota
	kindBool
	kindNumber
	kindString
	kindClosure
	kindNative
	kindNamespace
)

// Null returns the null value.
func Null() Value { return Value{} }

// Bool wraps a bool.
func Bool(b bool) Value { return Value{kind: kindBool, b: b} }

// Number wraps a float64.
func Number(n float64) Value { return Value{kind: kindNumber, n: n} }

// String wraps a string.
func String(s string) Value { return Value{kind: kindString, s: s} }

// NativeValue wraps a host function.
func NativeValue(f Native) Value { return Value{kind: kindNative, nat: f} }

// Namespace wraps a map of named host functions (e.g. the document object).
func Namespace(m map[string]Value) Value { return Value{kind: kindNamespace, space: m} }

// IsNull reports whether v is null.
func (v Value) IsNull() bool { return v.kind == kindNull }

// Truthy follows JavaScript-like coercion.
func (v Value) Truthy() bool {
	switch v.kind {
	case kindNull:
		return false
	case kindBool:
		return v.b
	case kindNumber:
		return v.n != 0
	case kindString:
		return v.s != ""
	default:
		return true
	}
}

// Num returns the numeric value (0 for non-numbers).
func (v Value) Num() float64 {
	if v.kind == kindNumber {
		return v.n
	}
	return 0
}

// Str renders the value as a string, the way string concatenation sees it.
func (v Value) Str() string {
	switch v.kind {
	case kindNull:
		return "null"
	case kindBool:
		return strconv.FormatBool(v.b)
	case kindNumber:
		if v.n == float64(int64(v.n)) {
			return strconv.FormatInt(int64(v.n), 10)
		}
		return strconv.FormatFloat(v.n, 'g', -1, 64)
	case kindString:
		return v.s
	case kindClosure:
		return "[function]"
	case kindNative:
		return "[native]"
	default:
		return "[object]"
	}
}

// Closure returns the closure value, or nil.
func (v Value) Closure() *Closure {
	if v.kind == kindClosure {
		return v.fn
	}
	return nil
}

// Equals implements the == operator.
func (v Value) Equals(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case kindNull:
		return true
	case kindBool:
		return v.b == o.b
	case kindNumber:
		return v.n == o.n
	case kindString:
		return v.s == o.s
	default:
		return false // reference equality unsupported; scripts don't need it
	}
}

// Native is a host-provided builtin.
type Native func(args []Value) (Value, error)

// Closure is a user function with its captured environment.
type Closure struct {
	Params []string
	Body   []Stmt
	env    *env
}

type env struct {
	vars   map[string]Value
	parent *env
}

func (e *env) lookup(name string) (Value, bool) {
	for s := e; s != nil; s = s.parent {
		if v, ok := s.vars[name]; ok {
			return v, true
		}
	}
	return Value{}, false
}

func (e *env) assign(name string, v Value) bool {
	for s := e; s != nil; s = s.parent {
		if _, ok := s.vars[name]; ok {
			s.vars[name] = v
			return true
		}
	}
	return false
}

// Interp executes programs against host-bound builtins. One Interp holds the
// global scope of one page's scripting context; every script and handler of
// the page runs in it.
type Interp struct {
	globals *env
	ops     int
	maxOps  int
}

// DefaultMaxOps bounds total statements+expressions evaluated per Interp,
// guarding against runaway generated loops.
const DefaultMaxOps = 5_000_000

// New creates an interpreter with an empty global scope.
func New() *Interp {
	return &Interp{globals: &env{vars: make(map[string]Value)}, maxOps: DefaultMaxOps}
}

// Bind installs a global builtin or value.
func (in *Interp) Bind(name string, v Value) { in.globals.vars[name] = v }

// BindNative installs a global native function.
func (in *Interp) BindNative(name string, f Native) { in.Bind(name, NativeValue(f)) }

// Ops returns the cumulative count of evaluation steps, the interpreter's
// CPU-cost proxy: the browser engine converts it to device CPU time.
func (in *Interp) Ops() int { return in.ops }

// ResetOps zeroes the op counter (e.g. per measurement phase).
func (in *Interp) ResetOps() { in.ops = 0 }

// errReturn carries a return value up the stack.
type errReturn struct{ v Value }

func (errReturn) Error() string { return "return outside function" }

// Run executes a program in the global scope.
func (in *Interp) Run(p *Program) error {
	err := in.execBlock(p.Stmts, in.globals)
	if r, ok := err.(errReturn); ok {
		_ = r
		return nil // top-level return is tolerated
	}
	return err
}

// CallClosure invokes a closure (event handler, timer callback) with args.
func (in *Interp) CallClosure(c *Closure, args ...Value) (Value, error) {
	if c == nil {
		return Null(), fmt.Errorf("minijs: call of null closure")
	}
	scope := &env{vars: make(map[string]Value, len(c.Params)), parent: c.env}
	for i, p := range c.Params {
		if i < len(args) {
			scope.vars[p] = args[i]
		} else {
			scope.vars[p] = Null()
		}
	}
	err := in.execBlock(c.Body, scope)
	if r, ok := err.(errReturn); ok {
		return r.v, nil
	}
	return Null(), err
}

func (in *Interp) step() error {
	in.ops++
	if in.ops > in.maxOps {
		return fmt.Errorf("minijs: op budget exceeded (%d)", in.maxOps)
	}
	return nil
}

// blockScope returns the environment a block should execute in: a fresh
// child scope when the block declares variables at its top level, otherwise
// the enclosing scope itself. Only VarStmt ever writes directly into a
// block's scope (assignments walk the chain and fall back to globals), so a
// declaration-free block is observationally identical either way — and loop
// bodies, which execute their block once per iteration, skip an env+map
// allocation per pass. This was the single largest allocation source in a
// page-load profile.
func blockScope(stmts []Stmt, e *env) *env {
	n := 0
	for _, s := range stmts {
		if _, ok := s.(*VarStmt); ok {
			n++
		}
	}
	if n == 0 {
		return e
	}
	return &env{vars: make(map[string]Value, n), parent: e}
}

func (in *Interp) execBlock(stmts []Stmt, e *env) error {
	for _, s := range stmts {
		if err := in.exec(s, e); err != nil {
			return err
		}
	}
	return nil
}

func (in *Interp) exec(s Stmt, e *env) error {
	if err := in.step(); err != nil {
		return err
	}
	switch s := s.(type) {
	case *VarStmt:
		v := Null()
		if s.Init != nil {
			var err error
			v, err = in.eval(s.Init, e)
			if err != nil {
				return err
			}
		}
		e.vars[s.Name] = v
		return nil
	case *AssignStmt:
		v, err := in.eval(s.X, e)
		if err != nil {
			return err
		}
		if !e.assign(s.Name, v) {
			// Implicit global, like sloppy-mode JS.
			in.globals.vars[s.Name] = v
		}
		return nil
	case *ExprStmt:
		_, err := in.eval(s.X, e)
		return err
	case *IfStmt:
		cond, err := in.eval(s.Cond, e)
		if err != nil {
			return err
		}
		if cond.Truthy() {
			return in.execBlock(s.Then, blockScope(s.Then, e))
		}
		return in.execBlock(s.Else, blockScope(s.Else, e))
	case *WhileStmt:
		for {
			cond, err := in.eval(s.Cond, e)
			if err != nil {
				return err
			}
			if !cond.Truthy() {
				return nil
			}
			if err := in.execBlock(s.Body, blockScope(s.Body, e)); err != nil {
				return err
			}
			if err := in.step(); err != nil {
				return err
			}
		}
	case *ForStmt:
		scope := e
		if s.Init != nil {
			// The induction variable needs its own scope; condition-only
			// loops can evaluate against the enclosing one.
			scope = &env{vars: make(map[string]Value, 1), parent: e}
			if err := in.exec(s.Init, scope); err != nil {
				return err
			}
		}
		for {
			if s.Cond != nil {
				cond, err := in.eval(s.Cond, scope)
				if err != nil {
					return err
				}
				if !cond.Truthy() {
					return nil
				}
			}
			if err := in.execBlock(s.Body, blockScope(s.Body, scope)); err != nil {
				return err
			}
			if s.Post != nil {
				if err := in.exec(s.Post, scope); err != nil {
					return err
				}
			}
			if err := in.step(); err != nil {
				return err
			}
		}
	case *ReturnStmt:
		v := Null()
		if s.X != nil {
			var err error
			v, err = in.eval(s.X, e)
			if err != nil {
				return err
			}
		}
		return errReturn{v: v}
	default:
		return fmt.Errorf("minijs: unknown statement %T", s)
	}
}

func (in *Interp) eval(x Expr, e *env) (Value, error) {
	if err := in.step(); err != nil {
		return Null(), err
	}
	switch x := x.(type) {
	case *Lit:
		return x.Val, nil
	case *Ident:
		if v, ok := e.lookup(x.Name); ok {
			return v, nil
		}
		return Null(), fmt.Errorf("minijs: undefined variable %q", x.Name)
	case *Member:
		base, err := in.eval(x.X, e)
		if err != nil {
			return Null(), err
		}
		if base.kind != kindNamespace {
			return Null(), fmt.Errorf("minijs: member access %q on non-object", x.Name)
		}
		v, ok := base.space[x.Name]
		if !ok {
			return Null(), fmt.Errorf("minijs: unknown member %q", x.Name)
		}
		return v, nil
	case *FuncLit:
		return Value{kind: kindClosure, fn: &Closure{Params: x.Params, Body: x.Body, env: e}}, nil
	case *Unary:
		v, err := in.eval(x.X, e)
		if err != nil {
			return Null(), err
		}
		switch x.Op {
		case "!":
			return Bool(!v.Truthy()), nil
		case "-":
			return Number(-v.Num()), nil
		}
		return Null(), fmt.Errorf("minijs: unknown unary op %q", x.Op)
	case *Binary:
		return in.evalBinary(x, e)
	case *Call:
		fnv, err := in.eval(x.Fn, e)
		if err != nil {
			return Null(), err
		}
		args := make([]Value, len(x.Args))
		for i, a := range x.Args {
			args[i], err = in.eval(a, e)
			if err != nil {
				return Null(), err
			}
		}
		switch fnv.kind {
		case kindNative:
			return fnv.nat(args)
		case kindClosure:
			return in.CallClosure(fnv.fn, args...)
		default:
			return Null(), fmt.Errorf("minijs: call of non-function")
		}
	default:
		return Null(), fmt.Errorf("minijs: unknown expression %T", x)
	}
}

func (in *Interp) evalBinary(x *Binary, e *env) (Value, error) {
	// Short-circuit operators.
	if x.Op == "&&" || x.Op == "||" {
		l, err := in.eval(x.L, e)
		if err != nil {
			return Null(), err
		}
		if x.Op == "&&" && !l.Truthy() {
			return l, nil
		}
		if x.Op == "||" && l.Truthy() {
			return l, nil
		}
		return in.eval(x.R, e)
	}
	l, err := in.eval(x.L, e)
	if err != nil {
		return Null(), err
	}
	r, err := in.eval(x.R, e)
	if err != nil {
		return Null(), err
	}
	switch x.Op {
	case "+":
		if l.kind == kindString || r.kind == kindString {
			return String(l.Str() + r.Str()), nil
		}
		return Number(l.Num() + r.Num()), nil
	case "-":
		return Number(l.Num() - r.Num()), nil
	case "*":
		return Number(l.Num() * r.Num()), nil
	case "/":
		return Number(l.Num() / r.Num()), nil
	case "%":
		ri := r.Num()
		if ri == 0 {
			return Number(0), nil
		}
		return Number(float64(int64(l.Num()) % int64(ri))), nil
	case "==":
		return Bool(l.Equals(r)), nil
	case "!=":
		return Bool(!l.Equals(r)), nil
	case "<":
		return compare(l, r, func(c int) bool { return c < 0 }), nil
	case ">":
		return compare(l, r, func(c int) bool { return c > 0 }), nil
	case "<=":
		return compare(l, r, func(c int) bool { return c <= 0 }), nil
	case ">=":
		return compare(l, r, func(c int) bool { return c >= 0 }), nil
	}
	return Null(), fmt.Errorf("minijs: unknown operator %q", x.Op)
}

func compare(l, r Value, ok func(int) bool) Value {
	if l.kind == kindString && r.kind == kindString {
		return Bool(ok(strings.Compare(l.s, r.s)))
	}
	ln, rn := l.Num(), r.Num()
	switch {
	case ln < rn:
		return Bool(ok(-1))
	case ln > rn:
		return Bool(ok(1))
	default:
		return Bool(ok(0))
	}
}
