package minijs

import (
	"fmt"
	"strconv"
	"strings"
)

// Value is a runtime value: null, bool, number, string, closure, native
// function, or namespace.
type Value struct {
	kind  valueKind
	b     bool
	n     float64
	s     string
	fn    *Closure
	nat   Native
	space map[string]Value
}

type valueKind int

const (
	kindNull valueKind = iota
	kindBool
	kindNumber
	kindString
	kindClosure
	kindNative
	kindNamespace
	// kindUnset marks a declared-but-not-yet-initialized frame slot. It
	// never escapes the interpreter: lookups and assignments skip unset
	// slots, reproducing the visibility rules of the runtime map-membership
	// walk this representation replaced.
	kindUnset
)

// Null returns the null value.
func Null() Value { return Value{} }

// Bool wraps a bool.
func Bool(b bool) Value { return Value{kind: kindBool, b: b} }

// Number wraps a float64.
func Number(n float64) Value { return Value{kind: kindNumber, n: n} }

// String wraps a string.
func String(s string) Value { return Value{kind: kindString, s: s} }

// NativeValue wraps a host function.
func NativeValue(f Native) Value { return Value{kind: kindNative, nat: f} }

// Namespace wraps a map of named host functions (e.g. the document object).
func Namespace(m map[string]Value) Value { return Value{kind: kindNamespace, space: m} }

// IsNull reports whether v is null.
func (v Value) IsNull() bool { return v.kind == kindNull }

// IsScalar reports whether v is null, bool, number or string — a value that
// carries no reference to any interpreter instance and can therefore be
// transplanted between interpreters (the exec-outcome cache relies on this).
func (v Value) IsScalar() bool { return v.kind <= kindString }

// SameKind reports whether v and o hold the same kind of value.
func (v Value) SameKind(o Value) bool { return v.kind == o.kind }

// Truthy follows JavaScript-like coercion.
func (v Value) Truthy() bool {
	switch v.kind {
	case kindNull:
		return false
	case kindBool:
		return v.b
	case kindNumber:
		return v.n != 0
	case kindString:
		return v.s != ""
	default:
		return true
	}
}

// Num returns the numeric value (0 for non-numbers).
func (v Value) Num() float64 {
	if v.kind == kindNumber {
		return v.n
	}
	return 0
}

// Str renders the value as a string, the way string concatenation sees it.
func (v Value) Str() string {
	switch v.kind {
	case kindNull:
		return "null"
	case kindBool:
		return strconv.FormatBool(v.b)
	case kindNumber:
		if v.n == float64(int64(v.n)) {
			return strconv.FormatInt(int64(v.n), 10)
		}
		return strconv.FormatFloat(v.n, 'g', -1, 64)
	case kindString:
		return v.s
	case kindClosure:
		return "[function]"
	case kindNative:
		return "[native]"
	default:
		return "[object]"
	}
}

// Closure returns the closure value, or nil.
func (v Value) Closure() *Closure {
	if v.kind == kindClosure {
		return v.fn
	}
	return nil
}

// Equals implements the == operator.
func (v Value) Equals(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	switch v.kind {
	case kindNull:
		return true
	case kindBool:
		return v.b == o.b
	case kindNumber:
		return v.n == o.n
	case kindString:
		return v.s == o.s
	default:
		return false // reference equality unsupported; scripts don't need it
	}
}

// Native is a host-provided builtin.
type Native func(args []Value) (Value, error)

// Closure is a user function with its captured environment: the compiled
// scope layout of its body plus the frame chain live at creation.
type Closure struct {
	Params []string
	Body   []Stmt
	scope  *scopeInfo
	frame  *frame
}

// frame is one materialized lexical scope: a flat slot array laid out at
// compile time. parent links toward the global scope (nil past the
// outermost frame); the Interp's globals map is the implicit chain root.
//
//parcelvet:pooled
type frame struct {
	slots  []Value
	parent *frame
	pooled bool // on a free list; double-release check under -tags simdebug
}

// maxPooledSlots caps the frame sizes kept on free lists. Generated pages
// declare a handful of variables per scope, so every hot frame is pooled;
// pathological fuzz inputs with huge scopes just fall back to the heap.
const maxPooledSlots = 16

// maxCallDepth bounds minijs-level call recursion so deeply recursive
// scripts fail with a script error instead of exhausting the Go stack. The
// reference interpreter in the test suite applies the identical bound.
const maxCallDepth = 2000

// Pools holds the interpreter's recyclable allocations: non-escaping frames
// by slot count and call-argument slices. A Pools may be shared by every
// Interp of a simulation batch — frames and argument slices are only held
// during a synchronous script execution, never across simulator events, so
// interleaved simulations on one goroutine cannot observe each other's
// frames. Pools is not safe for concurrent use across goroutines.
type Pools struct {
	framePool [maxPooledSlots + 1][]*frame
	argFree   [][]Value
}

// NewPools returns an empty pool set.
func NewPools() *Pools { return &Pools{} }

// Interp executes programs against host-bound builtins. One Interp holds the
// global scope of one page's scripting context; every script and handler of
// the page runs in it.
type Interp struct {
	globals map[string]Value
	ops     int
	maxOps  int
	depth   int // live CallClosure nesting

	// pools recycles frames and call-argument slices, following the
	// simnet/trace free-list pattern: owner-checked under -tags simdebug,
	// invisible otherwise. Private per Interp unless shared via NewWithPools.
	pools *Pools

	// onGlobalRead/onGlobalWrite observe the dynamic-global fallback paths
	// (identifier lookup and assignment that resolve to the globals map).
	// They are nil except while the exec-outcome cache records a script.
	onGlobalRead  func(name string, v Value, ok bool)
	onGlobalWrite func(name string)
}

// DefaultMaxOps bounds total statements+expressions evaluated per Interp,
// guarding against runaway generated loops.
const DefaultMaxOps = 5_000_000

// New creates an interpreter with an empty global scope.
func New() *Interp { return NewWithPools(nil) }

// NewWithPools creates an interpreter drawing frames and argument slices
// from p. A nil p allocates a private pool set.
func NewWithPools(p *Pools) *Interp {
	if p == nil {
		p = NewPools()
	}
	return &Interp{globals: make(map[string]Value, 16), maxOps: DefaultMaxOps, pools: p}
}

// Bind installs a global builtin or value.
func (in *Interp) Bind(name string, v Value) { in.globals[name] = v }

// BindNative installs a global native function.
func (in *Interp) BindNative(name string, f Native) { in.Bind(name, NativeValue(f)) }

// Global returns the value bound to name in the global scope (top-level
// vars, builtins, and implicit globals all live there).
func (in *Interp) Global(name string) (Value, bool) {
	v, ok := in.globals[name]
	return v, ok
}

// Ops returns the cumulative count of evaluation steps, the interpreter's
// CPU-cost proxy: the browser engine converts it to device CPU time.
func (in *Interp) Ops() int { return in.ops }

// ResetOps zeroes the op counter (e.g. per measurement phase).
func (in *Interp) ResetOps() { in.ops = 0 }

// TryChargeOps consumes n evaluation steps from the op budget without
// executing anything — the exec-outcome cache uses it to bill a replayed
// script exactly what its recorded execution cost. It reports false (charging
// nothing) when n does not fit the remaining budget, in which case the caller
// must fall back to real execution so the budget error surfaces at the same
// op it would have without the cache.
func (in *Interp) TryChargeOps(n int) bool {
	if n < 0 || in.ops+n > in.maxOps {
		return false
	}
	in.ops += n
	return true
}

// SetGlobalHooks installs (or, with nil arguments, removes) observers on the
// dynamic-global fallback paths: onRead fires when an identifier lookup falls
// through to the globals map, onWrite when an assignment or top-level var
// declaration writes it. The exec-outcome cache uses them to collect a
// script's global read- and write-sets while recording.
func (in *Interp) SetGlobalHooks(onRead func(name string, v Value, ok bool), onWrite func(name string)) {
	in.onGlobalRead = onRead
	in.onGlobalWrite = onWrite
}

// errReturn carries a return value up the stack.
type errReturn struct{ v Value }

func (errReturn) Error() string { return "return outside function" }

// Run executes a program in the global scope.
func (in *Interp) Run(p *Program) error {
	err := in.execBlock(p.Stmts, nil)
	if r, ok := err.(errReturn); ok {
		_ = r
		return nil // top-level return is tolerated
	}
	return err
}

// CallClosure invokes a closure (event handler, timer callback) with args.
func (in *Interp) CallClosure(c *Closure, args ...Value) (Value, error) {
	if c == nil {
		return Null(), fmt.Errorf("minijs: call of null closure")
	}
	if c.scope == nil {
		return Null(), fmt.Errorf("minijs: call of unresolved closure")
	}
	if in.depth >= maxCallDepth {
		return Null(), fmt.Errorf("minijs: call depth exceeded (%d)", maxCallDepth)
	}
	in.depth++
	sc := c.scope
	f := in.newFrame(sc, c.frame)
	for i := range c.Params {
		slot := sc.paramSlots[i]
		if i < len(args) {
			f.slots[slot] = args[i]
		} else {
			f.slots[slot] = Null()
		}
	}
	err := in.execBlock(c.Body, f)
	in.freeFrame(f, sc)
	in.depth--
	if r, ok := err.(errReturn); ok {
		return r.v, nil
	}
	return Null(), err
}

func (in *Interp) step() error {
	in.ops++
	if in.ops > in.maxOps {
		return fmt.Errorf("minijs: op budget exceeded (%d)", in.maxOps)
	}
	return nil
}

// newFrame materializes a scope, recycling a pooled frame of the right size
// when one is free. Pooled frames come back with every slot already reset
// to the unset sentinel.
func (in *Interp) newFrame(sc *scopeInfo, parent *frame) *frame {
	n := len(sc.names)
	if n <= maxPooledSlots {
		if l := in.pools.framePool[n]; len(l) > 0 {
			f := l[len(l)-1]
			in.pools.framePool[n] = l[:len(l)-1]
			f.pooled = false
			f.parent = parent
			return f
		}
	}
	f := &frame{slots: make([]Value, n), parent: parent}
	for i := range f.slots {
		f.slots[i] = Value{kind: kindUnset}
	}
	return f
}

// freeFrame recycles a frame on scope exit — including error unwinding —
// unless the scope escapes: a scope under which a function literal was
// evaluated may be captured by a closure that outlives it, so it is left to
// the garbage collector. Slots are reset to the unset sentinel on release
// so pooled frames neither pin values alive nor leak stale bindings.
func (in *Interp) freeFrame(f *frame, sc *scopeInfo) {
	if sc.escapes {
		return
	}
	checkFrameFree(f)
	n := len(f.slots)
	if n > maxPooledSlots {
		return
	}
	f.pooled = true
	f.parent = nil
	for i := range f.slots {
		f.slots[i] = Value{kind: kindUnset}
	}
	in.pools.framePool[n] = append(in.pools.framePool[n], f)
}

// getArgs pops a call-argument slice off the free list (or allocates one).
func (in *Interp) getArgs(n int) []Value {
	if n == 0 {
		return nil
	}
	if l := len(in.pools.argFree); l > 0 {
		if s := in.pools.argFree[l-1]; cap(s) >= n {
			in.pools.argFree = in.pools.argFree[:l-1]
			return s[:n]
		}
	}
	if n < 4 {
		return make([]Value, n, 4)
	}
	return make([]Value, n)
}

// putArgs returns a call's argument slice to the free list. Natives must
// not retain the slice past their return — they copy values (or Closure
// pointers) out instead, which every engine builtin does.
func (in *Interp) putArgs(s []Value) {
	if cap(s) == 0 {
		return
	}
	for i := range s {
		s[i] = Value{}
	}
	in.pools.argFree = append(in.pools.argFree, s[:0])
}

// lookup resolves an identifier through its compiled candidate bindings:
// the innermost candidate whose slot has been initialized wins (a var whose
// declaration has not executed yet is invisible), with the dynamic global
// map as the final fallback.
func (in *Interp) lookup(x *Ident, f *frame) (Value, bool) {
	for _, c := range x.cands {
		fr := f
		for h := c.hops; h > 0; h-- {
			fr = fr.parent
		}
		if v := fr.slots[c.slot]; v.kind != kindUnset {
			return v, true
		}
	}
	v, ok := in.globals[x.Name]
	if in.onGlobalRead != nil {
		in.onGlobalRead(x.Name, v, ok)
	}
	return v, ok
}

// assign writes through the same candidate walk as lookup, falling back to
// an implicit global (sloppy-mode JS) when no initialized binding exists.
func (in *Interp) assign(cands []slotRef, name string, v Value, f *frame) {
	for _, c := range cands {
		fr := f
		for h := c.hops; h > 0; h-- {
			fr = fr.parent
		}
		if fr.slots[c.slot].kind != kindUnset {
			fr.slots[c.slot] = v
			return
		}
	}
	if in.onGlobalWrite != nil {
		in.onGlobalWrite(name)
	}
	in.globals[name] = v
}

func (in *Interp) execBlock(stmts []Stmt, f *frame) error {
	for _, s := range stmts {
		if err := in.exec(s, f); err != nil {
			return err
		}
	}
	return nil
}

// execScope runs a block in a fresh frame when the block declares variables
// (sc != nil) — fresh per entry, so loop iterations get independent
// bindings — and directly in the enclosing frame otherwise.
func (in *Interp) execScope(stmts []Stmt, sc *scopeInfo, f *frame) error {
	if sc == nil {
		return in.execBlock(stmts, f)
	}
	nf := in.newFrame(sc, f)
	err := in.execBlock(stmts, nf)
	in.freeFrame(nf, sc)
	return err
}

func (in *Interp) exec(s Stmt, f *frame) error {
	if err := in.step(); err != nil {
		return err
	}
	switch s := s.(type) {
	case *VarStmt:
		v := Null()
		if s.Init != nil {
			var err error
			v, err = in.eval(s.Init, f)
			if err != nil {
				return err
			}
		}
		if s.slot >= 0 {
			f.slots[s.slot] = v
		} else {
			if in.onGlobalWrite != nil {
				in.onGlobalWrite(s.Name)
			}
			in.globals[s.Name] = v
		}
		return nil
	case *AssignStmt:
		v, err := in.eval(s.X, f)
		if err != nil {
			return err
		}
		in.assign(s.cands, s.Name, v, f)
		return nil
	case *ExprStmt:
		_, err := in.eval(s.X, f)
		return err
	case *IfStmt:
		cond, err := in.eval(s.Cond, f)
		if err != nil {
			return err
		}
		if cond.Truthy() {
			return in.execScope(s.Then, s.thenScope, f)
		}
		return in.execScope(s.Else, s.elseScope, f)
	case *WhileStmt:
		for {
			cond, err := in.eval(s.Cond, f)
			if err != nil {
				return err
			}
			if !cond.Truthy() {
				return nil
			}
			if err := in.execScope(s.Body, s.bodyScope, f); err != nil {
				return err
			}
			if err := in.step(); err != nil {
				return err
			}
		}
	case *ForStmt:
		scope := f
		if s.initScope != nil {
			// The induction variable gets its own frame; its lifetime spans
			// every iteration, so it is released only when the loop exits.
			scope = in.newFrame(s.initScope, f)
		}
		err := in.runFor(s, scope)
		if s.initScope != nil {
			in.freeFrame(scope, s.initScope)
		}
		return err
	case *ReturnStmt:
		v := Null()
		if s.X != nil {
			var err error
			v, err = in.eval(s.X, f)
			if err != nil {
				return err
			}
		}
		return errReturn{v: v}
	default:
		return fmt.Errorf("minijs: unknown statement %T", s)
	}
}

func (in *Interp) runFor(s *ForStmt, scope *frame) error {
	if s.Init != nil {
		if err := in.exec(s.Init, scope); err != nil {
			return err
		}
	}
	for {
		if s.Cond != nil {
			cond, err := in.eval(s.Cond, scope)
			if err != nil {
				return err
			}
			if !cond.Truthy() {
				return nil
			}
		}
		if err := in.execScope(s.Body, s.bodyScope, scope); err != nil {
			return err
		}
		if s.Post != nil {
			if err := in.exec(s.Post, scope); err != nil {
				return err
			}
		}
		if err := in.step(); err != nil {
			return err
		}
	}
}

func (in *Interp) eval(x Expr, f *frame) (Value, error) {
	if err := in.step(); err != nil {
		return Null(), err
	}
	switch x := x.(type) {
	case *Lit:
		return x.Val, nil
	case *Ident:
		if v, ok := in.lookup(x, f); ok {
			return v, nil
		}
		return Null(), fmt.Errorf("minijs: undefined variable %q", x.Name)
	case *Member:
		base, err := in.eval(x.X, f)
		if err != nil {
			return Null(), err
		}
		if base.kind != kindNamespace {
			return Null(), fmt.Errorf("minijs: member access %q on non-object", x.Name)
		}
		v, ok := base.space[x.Name]
		if !ok {
			return Null(), fmt.Errorf("minijs: unknown member %q", x.Name)
		}
		return v, nil
	case *FuncLit:
		return Value{kind: kindClosure, fn: &Closure{Params: x.Params, Body: x.Body, scope: x.fnScope, frame: f}}, nil
	case *Unary:
		v, err := in.eval(x.X, f)
		if err != nil {
			return Null(), err
		}
		switch x.Op {
		case "!":
			return Bool(!v.Truthy()), nil
		case "-":
			return Number(-v.Num()), nil
		}
		return Null(), fmt.Errorf("minijs: unknown unary op %q", x.Op)
	case *Binary:
		return in.evalBinary(x, f)
	case *Call:
		fnv, err := in.eval(x.Fn, f)
		if err != nil {
			return Null(), err
		}
		args := in.getArgs(len(x.Args))
		for i, a := range x.Args {
			args[i], err = in.eval(a, f)
			if err != nil {
				in.putArgs(args)
				return Null(), err
			}
		}
		var v Value
		switch fnv.kind {
		case kindNative:
			v, err = fnv.nat(args)
		case kindClosure:
			v, err = in.CallClosure(fnv.fn, args...)
		default:
			in.putArgs(args)
			return Null(), fmt.Errorf("minijs: call of non-function")
		}
		in.putArgs(args)
		return v, err
	default:
		return Null(), fmt.Errorf("minijs: unknown expression %T", x)
	}
}

func (in *Interp) evalBinary(x *Binary, f *frame) (Value, error) {
	// Short-circuit operators.
	if x.Op == "&&" || x.Op == "||" {
		l, err := in.eval(x.L, f)
		if err != nil {
			return Null(), err
		}
		if x.Op == "&&" && !l.Truthy() {
			return l, nil
		}
		if x.Op == "||" && l.Truthy() {
			return l, nil
		}
		return in.eval(x.R, f)
	}
	l, err := in.eval(x.L, f)
	if err != nil {
		return Null(), err
	}
	r, err := in.eval(x.R, f)
	if err != nil {
		return Null(), err
	}
	switch x.Op {
	case "+":
		if l.kind == kindString || r.kind == kindString {
			return String(l.Str() + r.Str()), nil
		}
		return Number(l.Num() + r.Num()), nil
	case "-":
		return Number(l.Num() - r.Num()), nil
	case "*":
		return Number(l.Num() * r.Num()), nil
	case "/":
		return Number(l.Num() / r.Num()), nil
	case "%":
		ri := r.Num()
		if ri == 0 {
			return Number(0), nil
		}
		return Number(float64(int64(l.Num()) % int64(ri))), nil
	case "==":
		return Bool(l.Equals(r)), nil
	case "!=":
		return Bool(!l.Equals(r)), nil
	case "<":
		return compare(l, r, func(c int) bool { return c < 0 }), nil
	case ">":
		return compare(l, r, func(c int) bool { return c > 0 }), nil
	case "<=":
		return compare(l, r, func(c int) bool { return c <= 0 }), nil
	case ">=":
		return compare(l, r, func(c int) bool { return c >= 0 }), nil
	}
	return Null(), fmt.Errorf("minijs: unknown operator %q", x.Op)
}

func compare(l, r Value, ok func(int) bool) Value {
	if l.kind == kindString && r.kind == kindString {
		return Bool(ok(strings.Compare(l.s, r.s)))
	}
	ln, rn := l.Num(), r.Num()
	switch {
	case ln < rn:
		return Bool(ok(-1))
	case ln > rn:
		return Bool(ok(1))
	default:
		return Bool(ok(0))
	}
}
