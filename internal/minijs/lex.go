// Package minijs implements a small JavaScript-like scripting language: the
// substitute for real-page JavaScript in this reproduction. It is rich
// enough to express everything the paper's evaluation depends on — dynamic
// object fetches (including fetches discovered only after a script runs),
// async/post-onload loads via timers, event handlers for user interactions,
// DOM mutations, and randomized URLs (the §7.3 replay problem) — while
// remaining a fully deterministic, from-scratch interpreter.
//
// Language summary:
//
//	var x = 1 + 2;                     // variables, numbers, strings, bools
//	if (x < 3) { ... } else { ... }    // conditionals
//	for (var i = 0; i < 10; i = i+1)   // loops
//	while (cond) { ... }
//	function-valued expressions:       // closures
//	    var f = function(a, b) { return a + b; };
//	host builtins:                     // bound by the embedding browser
//	    fetch("http://..."), setTimeout(1000, function(){...}),
//	    onEvent("click", "buy", function(){...}), document.write("<img...>")
package minijs

import (
	"fmt"
	"strconv"
	"strings"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokPunct
	tokKeyword
)

var keywords = map[string]bool{
	"var": true, "function": true, "if": true, "else": true, "for": true,
	"while": true, "return": true, "true": true, "false": true, "null": true,
}

type token struct {
	kind tokKind
	text string
	num  float64
	pos  int // byte offset, for error messages
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes the source. // and /* */ comments are skipped.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case strings.HasPrefix(l.src[l.pos:], "//"):
			nl := strings.IndexByte(l.src[l.pos:], '\n')
			if nl < 0 {
				l.pos = len(l.src)
			} else {
				l.pos += nl + 1
			}
		case strings.HasPrefix(l.src[l.pos:], "/*"):
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				return nil, fmt.Errorf("minijs: unterminated block comment at %d", l.pos)
			}
			l.pos += 2 + end + 2
		case c == '"' || c == '\'':
			if err := l.lexString(c); err != nil {
				return nil, err
			}
		case c >= '0' && c <= '9':
			l.lexNumber()
		case isIdentStart(c):
			l.lexIdent()
		default:
			if err := l.lexPunct(); err != nil {
				return nil, err
			}
		}
	}
	l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
	return l.toks, nil
}

func (l *lexer) lexString(quote byte) error {
	start := l.pos
	l.pos++
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == quote {
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: b.String(), pos: start})
			return nil
		}
		if c == '\\' && l.pos+1 < len(l.src) {
			l.pos++
			switch l.src[l.pos] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			default:
				b.WriteByte(l.src[l.pos])
			}
			l.pos++
			continue
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("minijs: unterminated string at %d", start)
}

func (l *lexer) lexNumber() {
	start := l.pos
	for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9' || l.src[l.pos] == '.') {
		l.pos++
	}
	text := l.src[start:l.pos]
	// ParseFloat instead of Sscanf: no reflection, no scan-state allocation.
	// Malformed digit runs (e.g. "1.2.3") lex as 0.
	n, err := strconv.ParseFloat(text, 64)
	if err != nil {
		n = 0
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: text, num: n, pos: start})
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentChar(l.src[l.pos]) {
		l.pos++
	}
	text := l.src[start:l.pos]
	kind := tokIdent
	if keywords[text] {
		kind = tokKeyword
	}
	l.toks = append(l.toks, token{kind: kind, text: text, pos: start})
}

var twoCharPuncts = []string{"==", "!=", "<=", ">=", "&&", "||"}

func (l *lexer) lexPunct() error {
	for _, p := range twoCharPuncts {
		if strings.HasPrefix(l.src[l.pos:], p) {
			l.toks = append(l.toks, token{kind: tokPunct, text: p, pos: l.pos})
			l.pos += 2
			return nil
		}
	}
	c := l.src[l.pos]
	if strings.IndexByte("(){};,=+-*/<>.!%", c) >= 0 {
		l.toks = append(l.toks, token{kind: tokPunct, text: string(c), pos: l.pos})
		l.pos++
		return nil
	}
	return fmt.Errorf("minijs: unexpected character %q at %d", c, l.pos)
}

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == '$'
}

func isIdentChar(c byte) bool { return isIdentStart(c) || c >= '0' && c <= '9' }
