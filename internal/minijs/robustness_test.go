package minijs

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// Property: Parse never panics on arbitrary input; it either errors or
// returns a program the interpreter can attempt (bounded by the op budget).
func TestParseNeverPanicsOnRandomInput(t *testing.T) {
	f := func(src string) bool {
		prog, err := Parse(src)
		if err != nil {
			return true
		}
		in := New()
		in.maxOps = 20_000
		_ = in.Run(prog) // runtime errors are fine; panics are not
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// Property: token-soup programs built from valid lexemes never panic the
// parser or interpreter.
func TestTokenSoupNeverPanics(t *testing.T) {
	pieces := []string{
		"var", "x", "=", "1", ";", "(", ")", "{", "}", "function", ",",
		"if", "else", "for", "while", "return", "+", "-", "*", "/", "<",
		"==", "&&", `"str"`, "true", "null", "fetch", ".", "document",
	}
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 400; trial++ {
		var b strings.Builder
		n := rng.Intn(40)
		for i := 0; i < n; i++ {
			b.WriteString(pieces[rng.Intn(len(pieces))])
			b.WriteByte(' ')
		}
		prog, err := Parse(b.String())
		if err != nil {
			continue
		}
		in := New()
		in.maxOps = 20_000
		in.BindNative("fetch", func([]Value) (Value, error) { return Null(), nil })
		in.Bind("document", Namespace(map[string]Value{
			"write": NativeValue(func([]Value) (Value, error) { return Null(), nil }),
		}))
		_ = in.Run(prog)
	}
}

// Property: the op budget bounds every program: Ops never exceeds maxOps by
// more than one step.
func TestOpBudgetIsHardBound(t *testing.T) {
	srcs := []string{
		`while (true) { var x = 1; }`,
		`for (;;) { }`,
		`var f = function() { f_ = 1; while (true) { } }; f();`,
		`var i = 0; while (i < 1000000) { i = i + 1; }`,
	}
	for _, src := range srcs {
		prog, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		in := New()
		in.maxOps = 5000
		_ = in.Run(prog)
		if in.Ops() > in.maxOps+1 {
			t.Fatalf("ops %d exceeded budget %d for %q", in.Ops(), in.maxOps, src)
		}
	}
}
