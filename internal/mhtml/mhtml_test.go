package mhtml

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func samples() []Part {
	return []Part{
		{URL: "http://a.com/index.html", ContentType: "text/html", Status: 200, Body: []byte("<html>x</html>")},
		{URL: "http://b.com/i.png", ContentType: "image/png", Body: []byte{0, 1, 2, 255, 13, 10, 13, 10}},
		{URL: "http://c.com/e", ContentType: "text/plain", Status: 404, Body: nil},
	}
}

func TestRoundTrip(t *testing.T) {
	enc := Encode(samples())
	parts, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	want := samples()
	if len(parts) != len(want) {
		t.Fatalf("parts = %d, want %d", len(parts), len(want))
	}
	for i := range want {
		w := want[i]
		g := parts[i]
		if g.URL != w.URL || g.ContentType != w.ContentType {
			t.Errorf("part %d meta = %+v, want %+v", i, g, w)
		}
		wantStatus := w.Status
		if wantStatus == 0 {
			wantStatus = 200
		}
		if g.Status != wantStatus {
			t.Errorf("part %d status = %d, want %d", i, g.Status, wantStatus)
		}
		if !bytes.Equal(g.Body, w.Body) {
			t.Errorf("part %d body differs", i)
		}
	}
}

func TestBodyContainingBoundarySurvives(t *testing.T) {
	evil := []byte("--" + Boundary + "--\r\nsneaky")
	enc := Encode([]Part{{URL: "http://x.com/evil", ContentType: "application/octet-stream", Body: evil}})
	parts, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(parts[0].Body, evil) {
		t.Fatal("boundary-containing body corrupted")
	}
}

func TestEmptyBundle(t *testing.T) {
	parts, err := Decode(Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 0 {
		t.Fatalf("parts = %d, want 0", len(parts))
	}
}

func TestDecodeErrors(t *testing.T) {
	bad := [][]byte{
		nil,
		[]byte("garbage"),
		[]byte("Content-Type: x\r\n\r\nnot a boundary"),
		bytes.TrimSuffix(Encode(samples()), []byte("--"+Boundary+"--\r\n")),
	}
	for i, b := range bad {
		if _, err := Decode(b); err == nil {
			t.Errorf("case %d: Decode succeeded on malformed input", i)
		}
	}
}

func TestTruncatedBodyRejected(t *testing.T) {
	enc := Encode(samples())
	if _, err := Decode(enc[:len(enc)/2]); err == nil {
		t.Fatal("truncated bundle decoded")
	}
}

func TestEncodedSizeMatches(t *testing.T) {
	parts := samples()
	if got, want := EncodedSize(parts), len(Encode(parts)); got != want {
		t.Fatalf("EncodedSize = %d, actual = %d", got, want)
	}
	if got, want := EncodedSize(nil), len(Encode(nil)); got != want {
		t.Fatalf("EncodedSize(nil) = %d, actual = %d", got, want)
	}
}

// Property: arbitrary binary bodies round-trip byte-exactly and EncodedSize
// is exact.
func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	f := func(n uint8) bool {
		count := int(n%5) + 1
		parts := make([]Part, count)
		for i := range parts {
			body := make([]byte, rng.Intn(4096))
			rng.Read(body)
			parts[i] = Part{
				URL:         "http://h.com/obj" + string(rune('a'+i)),
				ContentType: "application/octet-stream",
				Status:      200 + rng.Intn(300),
				Body:        body,
			}
		}
		enc := Encode(parts)
		if len(enc) != EncodedSize(parts) {
			return false
		}
		dec, err := Decode(enc)
		if err != nil || len(dec) != count {
			return false
		}
		for i := range parts {
			if dec[i].URL != parts[i].URL || dec[i].Status != parts[i].Status || !bytes.Equal(dec[i].Body, parts[i].Body) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncode1MB(b *testing.B) {
	body := make([]byte, 1<<20)
	parts := []Part{{URL: "http://x.com/big", ContentType: "image/jpeg", Body: body}}
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Encode(parts)
	}
}

func BenchmarkDecode1MB(b *testing.B) {
	body := make([]byte, 1<<20)
	enc := Encode([]Part{{URL: "http://x.com/big", ContentType: "image/jpeg", Body: body}})
	b.SetBytes(int64(len(enc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}
