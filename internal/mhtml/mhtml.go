// Package mhtml implements the bundle format the PARCEL proxy uses to push
// collections of objects to the client (§5.1): a multipart/related container
// where each part carries the object's HTTP headers (Content-Location,
// Content-Type, status) followed by its body. Bodies are framed by
// Content-Length, so arbitrary binary content round-trips byte-exactly.
package mhtml

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
)

// Boundary separates parts. The leading dashes follow MIME conventions; the
// value is fixed since bundles are framed by length, not by boundary search.
const Boundary = "----=_PARCEL_BUNDLE"

// Part is one object in a bundle.
type Part struct {
	URL         string
	ContentType string
	Status      int // 0 is treated as 200
	Body        []byte
}

// Encode serializes parts into an MHTML bundle.
func Encode(parts []Part) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "Content-Type: multipart/related; boundary=%q\r\n\r\n", Boundary)
	for _, p := range parts {
		fmt.Fprintf(&b, "--%s\r\n", Boundary)
		fmt.Fprintf(&b, "Content-Location: %s\r\n", p.URL)
		ct := p.ContentType
		if ct == "" {
			ct = "application/octet-stream"
		}
		fmt.Fprintf(&b, "Content-Type: %s\r\n", ct)
		status := p.Status
		if status == 0 {
			status = 200
		}
		fmt.Fprintf(&b, "X-Status: %d\r\n", status)
		fmt.Fprintf(&b, "Content-Length: %d\r\n", len(p.Body))
		b.WriteString("\r\n")
		b.Write(p.Body)
		b.WriteString("\r\n")
	}
	fmt.Fprintf(&b, "--%s--\r\n", Boundary)
	return b.Bytes()
}

// Decode parses a bundle produced by Encode.
func Decode(data []byte) ([]Part, error) {
	rest := data
	// Skip the top-level header block.
	idx := bytes.Index(rest, []byte("\r\n\r\n"))
	if idx < 0 {
		return nil, fmt.Errorf("mhtml: missing top-level header terminator")
	}
	rest = rest[idx+4:]

	open := []byte("--" + Boundary + "\r\n")
	closing := []byte("--" + Boundary + "--")
	var parts []Part
	for {
		switch {
		case bytes.HasPrefix(rest, closing):
			return parts, nil
		case bytes.HasPrefix(rest, open):
			rest = rest[len(open):]
		default:
			return nil, fmt.Errorf("mhtml: expected boundary, got %.40q", rest)
		}
		hEnd := bytes.Index(rest, []byte("\r\n\r\n"))
		if hEnd < 0 {
			return nil, fmt.Errorf("mhtml: unterminated part headers")
		}
		var p Part
		p.Status = 200
		length := -1
		for _, line := range strings.Split(string(rest[:hEnd]), "\r\n") {
			key, val, ok := strings.Cut(line, ":")
			if !ok {
				return nil, fmt.Errorf("mhtml: malformed header line %q", line)
			}
			val = strings.TrimSpace(val)
			switch strings.ToLower(key) {
			case "content-location":
				p.URL = val
			case "content-type":
				p.ContentType = val
			case "x-status":
				s, err := strconv.Atoi(val)
				if err != nil {
					return nil, fmt.Errorf("mhtml: bad status %q", val)
				}
				p.Status = s
			case "content-length":
				n, err := strconv.Atoi(val)
				if err != nil || n < 0 {
					return nil, fmt.Errorf("mhtml: bad content-length %q", val)
				}
				length = n
			}
		}
		if length < 0 {
			return nil, fmt.Errorf("mhtml: part %q missing content-length", p.URL)
		}
		rest = rest[hEnd+4:]
		if len(rest) < length+2 {
			return nil, fmt.Errorf("mhtml: truncated body for %q", p.URL)
		}
		p.Body = append([]byte(nil), rest[:length]...)
		rest = rest[length:]
		if !bytes.HasPrefix(rest, []byte("\r\n")) {
			return nil, fmt.Errorf("mhtml: missing body terminator for %q", p.URL)
		}
		rest = rest[2:]
		parts = append(parts, p)
	}
}

// EncodedSize returns the wire size of a bundle without materializing it —
// the simulator uses this to size transfers while carrying parts in memory.
func EncodedSize(parts []Part) int {
	size := EncodedSizeEmpty()
	for _, p := range parts {
		size += EncodedPartSize(p.URL, p.ContentType, len(p.Body))
	}
	return size
}

// EncodedSizeEmpty returns the wire size of a bundle with no parts: the
// top-level header plus the closing boundary.
func EncodedSizeEmpty() int {
	return len("Content-Type: multipart/related; boundary=\"\"\r\n\r\n") + len(Boundary) +
		len("--"+Boundary+"--\r\n")
}

// EncodedPartSize returns the wire-size contribution of one part, so callers
// holding parts in another representation can size a bundle without building
// a []Part. The status line is fixed-width, so only the URL, content type,
// and body length matter.
func EncodedPartSize(url, contentType string, bodyLen int) int {
	return len("--"+Boundary+"\r\n") +
		len("Content-Location: \r\n") + len(url) +
		len("Content-Type: \r\n") + len(contentType) +
		len("X-Status: 200\r\n") +
		len("Content-Length: \r\n") + numWidth(bodyLen) +
		len("\r\n") + bodyLen + len("\r\n")
}

func numWidth(n int) int {
	if n == 0 {
		return 1
	}
	w := 0
	for n > 0 {
		w++
		n /= 10
	}
	return w
}
