package dirbrowser

import (
	"testing"
	"time"

	"github.com/parcel-go/parcel/internal/browser"
	"github.com/parcel-go/parcel/internal/scenario"
	"github.com/parcel-go/parcel/internal/webgen"
)

func pageAt(t testing.TB, idx int) webgen.Page {
	t.Helper()
	pages := webgen.Generate(webgen.Spec{Seed: 21, NumPages: 6})
	return pages[idx%len(pages)]
}

func TestDIRLoadsEverything(t *testing.T) {
	page := pageAt(t, 0)
	topo := scenario.Build(page, scenario.DefaultParams())
	b := New(topo, Options{FixedRandom: true})
	run := b.Load()
	if run.OLT == 0 || run.TLT == 0 {
		t.Fatalf("milestones missing: %+v", run)
	}
	if _, ok := b.Engine.CompleteAt(); !ok {
		t.Fatal("page never completed")
	}
	if run.ObjectsLoaded < page.ObjectCount-2 {
		t.Fatalf("loaded %d of %d objects", run.ObjectsLoaded, page.ObjectCount)
	}
	// DIR's defining cost: one HTTP request per object over the cell link.
	if run.HTTPRequests < page.ObjectCount-4 {
		t.Fatalf("requests = %d for %d objects", run.HTTPRequests, page.ObjectCount)
	}
}

func TestTotalConnectionCapHolds(t *testing.T) {
	page := pageAt(t, 1)
	topo := scenario.Build(page, scenario.DefaultParams())
	b := New(topo, Options{FixedRandom: true, MaxTotalConns: 10})
	b.Load()
	if got := b.Client.TotalConns(); got > 10 {
		t.Fatalf("open conns = %d, cap 10", got)
	}
}

func TestMoreParallelismLoadsFaster(t *testing.T) {
	page := pageAt(t, 2)
	load := func(perDomain, total int) time.Duration {
		topo := scenario.Build(page, scenario.DefaultParams())
		return Run(topo, Options{
			FixedRandom: true, ConnsPerDomain: perDomain, MaxTotalConns: total,
		}).OLT
	}
	capped := load(2, 6)
	roomy := load(6, 17)
	if roomy >= capped {
		t.Fatalf("roomier pool OLT %v >= tight pool %v", roomy, capped)
	}
}

func TestRequestIssueCostSlowsLoad(t *testing.T) {
	page := pageAt(t, 3)
	load := func(cost time.Duration) time.Duration {
		topo := scenario.Build(page, scenario.DefaultParams())
		return Run(topo, Options{FixedRandom: true, RequestIssueCost: cost}).OLT
	}
	cheap := load(500 * time.Microsecond)
	dear := load(8 * time.Millisecond)
	if dear <= cheap {
		t.Fatalf("8ms dispatch OLT %v <= 0.5ms dispatch %v", dear, cheap)
	}
}

func TestDesktopCPUFasterThanMobile(t *testing.T) {
	page := pageAt(t, 4)
	load := func(cpu browser.CPUModel) time.Duration {
		topo := scenario.Build(page, scenario.DefaultParams())
		return Run(topo, Options{FixedRandom: true, CPU: cpu}).OLT
	}
	if d, m := load(browser.DesktopCPU()), load(browser.MobileCPU()); d >= m {
		t.Fatalf("desktop OLT %v >= mobile %v", d, m)
	}
}

func TestDefaultsApplied(t *testing.T) {
	opt := Options{}.withDefaults()
	if opt.MaxTotalConns != 17 || opt.RequestIssueCost == 0 {
		t.Fatalf("defaults: %+v", opt)
	}
	uncapped := Options{MaxTotalConns: -1}
	if uncapped.withDefaults().MaxTotalConns != 0 {
		t.Fatal("-1 should disable the cap")
	}
}
