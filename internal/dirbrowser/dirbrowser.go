// Package dirbrowser is the DIR baseline (§7.1): a traditional mobile
// browser that performs object identification on the device and fetches
// every object itself over the cellular link with per-object HTTP
// request–response interactions, DNS lookups per domain, and up to six
// persistent connections per domain — the download pattern of Figure 5a
// whose round trips and short transfers PARCEL eliminates.
package dirbrowser

import (
	"time"

	"github.com/parcel-go/parcel/internal/browser"
	"github.com/parcel-go/parcel/internal/httpsim"
	"github.com/parcel-go/parcel/internal/metrics"
	"github.com/parcel-go/parcel/internal/radio"
	"github.com/parcel-go/parcel/internal/scenario"
)

// Options tune the baseline.
type Options struct {
	// ConnsPerDomain is the parallel-connection cap (default 6, §8.1).
	ConnsPerDomain int
	// MaxTotalConns caps parallel connections across all domains, the way
	// 2014-era mobile engines pooled connections (default 17; 0 keeps the
	// default, -1 removes the cap).
	MaxTotalConns int
	// RequestIssueCost is the client CPU spent dispatching each HTTP
	// request (URL canonicalization, cache lookup, socket bookkeeping);
	// requests issue serially on the device (default 2 ms).
	RequestIssueCost time.Duration
	// CPU defaults to the mobile profile.
	CPU browser.CPUModel
	// FixedRandom applies the §7.3 replay rewrite.
	FixedRandom bool
}

func (o Options) withDefaults() Options {
	if o.CPU == (browser.CPUModel{}) {
		o.CPU = browser.MobileCPU()
	}
	if o.MaxTotalConns == 0 {
		o.MaxTotalConns = 17
	}
	if o.MaxTotalConns < 0 {
		o.MaxTotalConns = 0
	}
	if o.RequestIssueCost == 0 {
		o.RequestIssueCost = 3 * time.Millisecond
	}
	return o
}

// Browser is one DIR page-load session.
type Browser struct {
	Engine *browser.Engine
	Client *httpsim.Client
	topo   *scenario.Topology
}

// fetcher adapts the cellular HTTP client to the engine, serializing request
// dispatch on the device (issueBusy models the network-stack portion of the
// main thread).
type fetcher struct {
	topo      *scenario.Topology
	c         *httpsim.Client
	issueCost time.Duration
	issueBusy time.Duration
}

func (f *fetcher) Fetch(url string, cb func(browser.Result)) {
	do := func() {
		f.c.Do(httpsim.Request{Method: "GET", URL: url}, func(resp httpsim.Response, at time.Duration) {
			cb(browser.Result{
				URL: resp.URL, Status: resp.Status, ContentType: resp.ContentType,
				Body: resp.Body, At: at,
			})
		})
	}
	if f.issueCost <= 0 {
		do()
		return
	}
	sim := f.topo.Sim
	start := sim.Now()
	if start < f.issueBusy {
		start = f.issueBusy
	}
	start += f.issueCost
	f.issueBusy = start
	sim.ScheduleAt(start, do)
}

// New prepares a DIR browser on the topology.
func New(topo *scenario.Topology, opt Options) *Browser {
	opt = opt.withDefaults()
	client := httpsim.NewClient(topo.Sim, topo.Client, topo.Dir, topo.ClientResolver, opt.ConnsPerDomain)
	client.SetMaxTotalConns(opt.MaxTotalConns)
	engine := browser.New(topo.Sim, &fetcher{topo: topo, c: client, issueCost: opt.RequestIssueCost}, browser.Options{
		CPU:         opt.CPU,
		FixedRandom: opt.FixedRandom,
		ExecCache:   topo.ExecCache,
		JSPools:     topo.JSPools,
	})
	return &Browser{Engine: engine, Client: client, topo: topo}
}

// Load runs the full page download to quiescence and returns the metrics.
func (b *Browser) Load() metrics.PageRun {
	b.Engine.Load(b.topo.Page.MainURL)
	b.topo.Sim.Run()
	return b.Collect()
}

// Collect assembles metrics for the session so far (callable after
// interactions too).
func (b *Browser) Collect() metrics.PageRun {
	var col metrics.Collector
	return b.CollectWith(&col)
}

// CollectWith is Collect reducing the trace through col's reusable scratch
// (for batch engines that collect many sessions per worker).
func (b *Browser) CollectWith(col *metrics.Collector) metrics.PageRun {
	run := metrics.PageRun{Scheme: "DIR", Page: b.topo.Page.Name}
	onload, _ := b.Engine.OnloadNetAt()
	col.FromTrace(&run, b.topo.ClientTrace, onload, radio.DefaultLTE(), nil)
	run.CPUActive = b.Engine.CPUActive()
	run.HTTPRequests = b.Client.RequestsSent
	run.ConnsOpened = b.Client.ConnsOpened
	run.ObjectsLoaded = b.Engine.NumRequested()
	st := b.topo.Net.FaultStats()
	run.DroppedPackets = st.Dropped
	run.Retransmits = st.Retransmits
	run.RetransmitBytes = st.RetransmitBytes
	return run
}

// Run builds, loads and measures a page in one call.
func Run(topo *scenario.Topology, opt Options) metrics.PageRun {
	return New(topo, opt).Load()
}
