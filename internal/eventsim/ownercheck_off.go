//go:build !simdebug

package eventsim

// claimOwner and checkOwner enforce the Simulator's single-goroutine
// ownership contract. In normal builds they compile to nothing; build with
// -tags simdebug to make cross-goroutine use panic (see ownercheck_on.go).

func (s *Simulator) claimOwner() {}

func (s *Simulator) checkOwner() {}
