//go:build simdebug

package eventsim

import (
	"testing"
	"time"
)

// Run with: go test -tags simdebug ./internal/eventsim/

func TestOwnerCheckPanicsCrossGoroutine(t *testing.T) {
	s := New(1)
	s.Schedule(time.Millisecond, func() {}) // owner use is fine

	done := make(chan any, 1)
	go func() {
		defer func() { done <- recover() }()
		s.Schedule(time.Millisecond, func() {})
	}()
	if r := <-done; r == nil {
		t.Fatal("cross-goroutine Schedule did not panic under simdebug")
	}
}

func TestOwnerCheckAllowsOwningGoroutine(t *testing.T) {
	s := New(1)
	fired := false
	s.Schedule(time.Millisecond, func() { fired = true })
	s.Run()
	if !fired {
		t.Fatal("event did not fire")
	}
}
