// Package eventsim provides the discrete-event simulation core used by all
// PARCEL simulation substrates: a virtual clock, a deterministic event queue,
// and a seedable random source.
//
// Virtual time is represented as time.Duration since the start of the
// simulation. Events scheduled for the same instant fire in the order they
// were scheduled, which makes every simulation run bit-for-bit deterministic
// for a fixed seed.
package eventsim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Event is a scheduled callback. It can be cancelled before it fires.
//
// An event carries either a plain fn (Schedule/ScheduleAt) or an
// argument-taking afn+arg pair (ScheduleArgAt). The latter exists for
// zero-allocation hot paths: a package-level func(any) plus a pooled
// argument pointer schedules without materialising a closure, where a
// capturing closure would heap-allocate once per event.
//
//parcelvet:pooled
type Event struct {
	at     time.Duration
	seq    uint64
	fn     func()
	afn    func(any)
	arg    any
	index  int // heap index; -1 when not queued
	cancel bool
}

// At returns the virtual time the event is scheduled to fire.
func (e *Event) At() time.Duration { return e.at }

// Cancel prevents the event from firing. Cancelling an event that already
// fired (or was cancelled) is a no-op.
func (e *Event) Cancel() {
	e.cancel = true
	e.fn = nil
	e.afn = nil
	e.arg = nil
}

// Cancelled reports whether Cancel was called on the event.
func (e *Event) Cancelled() bool { return e.cancel }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	//parcelvet:allow pooldiscipline(heap.Interface plumbing: the popped Event goes straight to Step, which runs and forgets it; arena blocks are never recycled mid-run)
	return e
}

// eventBlockSize is how many Events one arena block holds. Events are the
// dominant allocation of a simulation run (two-plus per packet), so they are
// carved out of append-only blocks: one heap allocation per block instead of
// one per event. Blocks are never reused within a simulation, which keeps
// outstanding *Event handles (e.g. a held cancellation timer) valid for the
// simulator's whole lifetime.
const eventBlockSize = 256

// Pools recycles event arena blocks across simulators. A batch engine that
// runs many page simulations per worker hands every simulator the same Pools
// so finished runs return their blocks for the next run to carve, instead of
// re-allocating the arena per page. Pools is owned by one goroutine at a
// time (the worker driving its batch); it is not safe for concurrent use.
type Pools struct {
	blocks [][]Event
}

// NewPools returns an empty block pool.
func NewPools() *Pools { return &Pools{} }

func (p *Pools) getBlock() []Event {
	if n := len(p.blocks); n > 0 {
		b := p.blocks[n-1]
		p.blocks[n-1] = nil
		p.blocks = p.blocks[:n-1]
		return b
	}
	return make([]Event, eventBlockSize)
}

// Simulator owns the virtual clock and the pending-event queue.
// The zero value is not usable; construct with New.
//
// A Simulator is owned by a single goroutine: it is not safe for concurrent
// use, and every Schedule/Step/Run call must come from the goroutine that is
// driving the simulation. Parallel experiment runners get their concurrency
// by building one private Simulator (topology) per task, never by sharing
// one. Build with -tags simdebug to turn this contract into a runtime check
// that panics on cross-goroutine use instead of corrupting the event heap.
type Simulator struct {
	now    time.Duration
	queue  eventHeap
	seq    uint64
	rng    *rand.Rand
	fired  uint64
	inStep bool

	arena  []Event   // current arena block; see eventBlockSize
	blocks [][]Event // every block carved this run, for Release
	pools  *Pools    // shared block pool; nil for a private simulator

	owner int64 // owning goroutine id; maintained only under -tags simdebug
}

// New returns a simulator whose clock starts at zero and whose random source
// is seeded with seed.
func New(seed int64) *Simulator { return NewWithPools(seed, nil) }

// NewWithPools is New drawing event arena blocks from p (nil for a private
// arena). Pair with Release to return the blocks when the run is over.
func NewWithPools(seed int64, p *Pools) *Simulator {
	s := &Simulator{
		rng:   rand.New(rand.NewSource(seed)),
		queue: make(eventHeap, 0, eventBlockSize),
		pools: p,
	}
	s.claimOwner()
	return s
}

// newEvent carves an event out of the arena.
func (s *Simulator) newEvent() *Event {
	if len(s.arena) == 0 {
		var b []Event
		if s.pools != nil {
			b = s.pools.getBlock()
		} else {
			b = make([]Event, eventBlockSize)
		}
		s.blocks = append(s.blocks, b)
		s.arena = b
	}
	e := &s.arena[0]
	s.arena = s.arena[1:]
	return e
}

// Release returns every arena block this simulator carved to its shared
// pool. It is only legal once the simulation is over: the event queue must
// be drained, and the caller must have dropped every outstanding *Event
// handle — blocks are zeroed and handed to the next simulator, so a retained
// handle would alias a future run's events. A no-op for pool-less
// simulators.
func (s *Simulator) Release() {
	if s.pools == nil {
		return
	}
	if len(s.queue) != 0 {
		panic(fmt.Sprintf("eventsim: Release with %d events still queued", len(s.queue)))
	}
	for _, b := range s.blocks {
		for i := range b {
			b[i] = Event{}
		}
		s.pools.blocks = append(s.pools.blocks, b)
	}
	s.blocks = nil
	s.arena = nil
}

// Now returns the current virtual time.
func (s *Simulator) Now() time.Duration { return s.now }

// Rand returns the simulation's deterministic random source.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Fired returns the number of events executed so far.
func (s *Simulator) Fired() uint64 { return s.fired }

// Pending returns the number of events currently queued.
func (s *Simulator) Pending() int { return len(s.queue) }

// Schedule queues fn to run after delay of virtual time. A negative delay is
// treated as zero (the event fires at the current instant, after any events
// already scheduled for that instant).
func (s *Simulator) Schedule(delay time.Duration, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	//parcelvet:allow pooldiscipline(Event handles are arena-backed and valid for the simulator's lifetime; callers hold them only to Cancel)
	return s.ScheduleAt(s.now+delay, fn)
}

// ScheduleAt queues fn to run at absolute virtual time t. Scheduling in the
// past panics: it indicates a logic error in the caller, and silently
// reordering events would break causality.
func (s *Simulator) ScheduleAt(t time.Duration, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("eventsim: ScheduleAt(%v) is before now (%v)", t, s.now))
	}
	if fn == nil {
		panic("eventsim: nil event function")
	}
	s.checkOwner()
	s.seq++
	e := s.newEvent()
	*e = Event{at: t, seq: s.seq, fn: fn, index: -1}
	heap.Push(&s.queue, e)
	//parcelvet:allow pooldiscipline(Event handles are arena-backed and valid for the simulator's lifetime; callers hold them only to Cancel)
	return e
}

// ScheduleArgAt queues fn(arg) to run at absolute virtual time t. It is the
// allocation-free variant of ScheduleAt: with a package-level fn and a pooled
// pointer arg, the only storage consumed is the arena-backed Event itself.
// Ordering relative to ScheduleAt events follows the shared seq counter.
func (s *Simulator) ScheduleArgAt(t time.Duration, fn func(any), arg any) *Event {
	if t < s.now {
		panic(fmt.Sprintf("eventsim: ScheduleArgAt(%v) is before now (%v)", t, s.now))
	}
	if fn == nil {
		panic("eventsim: nil event function")
	}
	s.checkOwner()
	s.seq++
	e := s.newEvent()
	*e = Event{at: t, seq: s.seq, afn: fn, arg: arg, index: -1}
	heap.Push(&s.queue, e)
	//parcelvet:allow pooldiscipline(Event handles are arena-backed and valid for the simulator's lifetime; callers hold them only to Cancel)
	return e
}

// Step executes the earliest pending event, advancing the clock to its
// scheduled time. It returns false when no events remain.
func (s *Simulator) Step() bool {
	s.checkOwner()
	for len(s.queue) > 0 {
		e := heap.Pop(&s.queue).(*Event)
		if e.cancel {
			continue
		}
		s.now = e.at
		s.fired++
		if e.afn != nil {
			afn, arg := e.afn, e.arg
			e.afn, e.arg = nil, nil
			afn(arg)
			return true
		}
		fn := e.fn
		e.fn = nil
		fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty.
func (s *Simulator) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with scheduled time <= t, then advances the clock
// to exactly t.
func (s *Simulator) RunUntil(t time.Duration) {
	for len(s.queue) > 0 {
		e := s.queue[0]
		if e.cancel {
			heap.Pop(&s.queue)
			continue
		}
		if e.at > t {
			break
		}
		s.Step()
	}
	if t > s.now {
		s.now = t
	}
}

// RunFor executes events for d of virtual time from the current instant.
func (s *Simulator) RunFor(d time.Duration) { s.RunUntil(s.now + d) }
