package eventsim

import (
	"math/rand"
	"testing"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	s := New(1)
	var order []int
	s.Schedule(20*time.Millisecond, func() { order = append(order, 2) })
	s.Schedule(10*time.Millisecond, func() { order = append(order, 1) })
	s.Schedule(30*time.Millisecond, func() { order = append(order, 3) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", order)
	}
	if s.Now() != 30*time.Millisecond {
		t.Fatalf("Now = %v, want 30ms", s.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	s := New(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(time.Millisecond, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events reordered: %v", order)
		}
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	s := New(1)
	fired := false
	s.Schedule(-time.Second, func() { fired = true })
	s.Run()
	if !fired || s.Now() != 0 {
		t.Fatalf("negative delay: fired=%v now=%v", fired, s.Now())
	}
}

func TestScheduleInPastPanics(t *testing.T) {
	s := New(1)
	s.Schedule(time.Second, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("ScheduleAt in the past did not panic")
		}
	}()
	s.ScheduleAt(500*time.Millisecond, func() {})
}

func TestNilFuncPanics(t *testing.T) {
	s := New(1)
	defer func() {
		if recover() == nil {
			t.Fatal("nil event fn did not panic")
		}
	}()
	s.Schedule(0, nil)
}

func TestCancel(t *testing.T) {
	s := New(1)
	fired := false
	e := s.Schedule(time.Millisecond, func() { fired = true })
	e.Cancel()
	s.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !e.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
}

func TestCancelFromInsideEarlierEvent(t *testing.T) {
	s := New(1)
	fired := false
	later := s.Schedule(2*time.Millisecond, func() { fired = true })
	s.Schedule(time.Millisecond, func() { later.Cancel() })
	s.Run()
	if fired {
		t.Fatal("event fired despite cancellation by earlier event")
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New(1)
	var times []time.Duration
	s.Schedule(time.Millisecond, func() {
		times = append(times, s.Now())
		s.Schedule(time.Millisecond, func() {
			times = append(times, s.Now())
		})
	})
	s.Run()
	if len(times) != 2 || times[0] != time.Millisecond || times[1] != 2*time.Millisecond {
		t.Fatalf("nested times = %v", times)
	}
}

func TestRunUntil(t *testing.T) {
	s := New(1)
	var fired []int
	s.Schedule(time.Millisecond, func() { fired = append(fired, 1) })
	s.Schedule(3*time.Millisecond, func() { fired = append(fired, 3) })
	s.RunUntil(2 * time.Millisecond)
	if len(fired) != 1 || fired[0] != 1 {
		t.Fatalf("fired = %v, want [1]", fired)
	}
	if s.Now() != 2*time.Millisecond {
		t.Fatalf("Now = %v, want 2ms", s.Now())
	}
	s.Run()
	if len(fired) != 2 {
		t.Fatalf("remaining event did not fire")
	}
}

func TestRunFor(t *testing.T) {
	s := New(1)
	s.Schedule(5*time.Millisecond, func() {})
	s.RunFor(3 * time.Millisecond)
	if s.Now() != 3*time.Millisecond {
		t.Fatalf("Now = %v, want 3ms", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", s.Pending())
	}
}

func TestDeterministicRand(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Rand().Int63() != b.Rand().Int63() {
			t.Fatal("same seed produced different random streams")
		}
	}
}

func TestFiredCount(t *testing.T) {
	s := New(1)
	for i := 0; i < 5; i++ {
		s.Schedule(time.Duration(i)*time.Millisecond, func() {})
	}
	s.Run()
	if s.Fired() != 5 {
		t.Fatalf("Fired = %d, want 5", s.Fired())
	}
}

// Property: for any batch of random delays, events fire in nondecreasing
// time order and the clock never goes backwards.
func TestClockMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		s := New(int64(trial))
		var last time.Duration
		ok := true
		n := 1 + rng.Intn(200)
		for i := 0; i < n; i++ {
			s.Schedule(time.Duration(rng.Intn(1000))*time.Millisecond, func() {
				if s.Now() < last {
					ok = false
				}
				last = s.Now()
			})
		}
		s.Run()
		if !ok {
			t.Fatal("clock went backwards")
		}
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := New(1)
		for j := 0; j < 1000; j++ {
			s.Schedule(time.Duration(j%100)*time.Millisecond, func() {})
		}
		s.Run()
	}
}
