//go:build simdebug

package eventsim

import (
	"bytes"
	"fmt"
	"runtime"
	"strconv"
)

// With -tags simdebug every Simulator remembers the goroutine that built it
// and panics when another goroutine schedules or steps it. A parallel-runner
// bug that leaks a topology across workers then fails loudly at the offending
// call site instead of silently corrupting the event heap.

func (s *Simulator) claimOwner() { s.owner = goroutineID() }

func (s *Simulator) checkOwner() {
	if gid := goroutineID(); gid != s.owner {
		panic(fmt.Sprintf(
			"eventsim: Simulator owned by goroutine %d used from goroutine %d; "+
				"a Simulator must be driven by a single goroutine", s.owner, gid))
	}
}

// goroutineID parses the current goroutine's id out of the runtime stack
// header ("goroutine 18 [running]:"). Slow, but this is a debug-only build.
func goroutineID() int64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	fields := bytes.Fields(buf[:n])
	if len(fields) < 2 {
		panic("eventsim: cannot parse runtime.Stack header")
	}
	id, err := strconv.ParseInt(string(fields[1]), 10, 64)
	if err != nil {
		panic("eventsim: cannot parse goroutine id: " + err.Error())
	}
	return id
}
