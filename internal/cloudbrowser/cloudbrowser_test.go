package cloudbrowser

import (
	"testing"
	"time"

	"github.com/parcel-go/parcel/internal/core"
	"github.com/parcel-go/parcel/internal/scenario"
	"github.com/parcel-go/parcel/internal/webgen"
)

func interactivePage(t testing.TB) webgen.Page {
	t.Helper()
	return webgen.InteractivePage(webgen.Generate(webgen.Spec{Seed: 1234, NumPages: 8}))
}

func TestCBLoadsAndSnapshots(t *testing.T) {
	page := interactivePage(t)
	topo := scenario.Build(page, scenario.DefaultParams())
	sess := New(topo, DefaultConfig())
	run := sess.Load()
	if run.OLT == 0 {
		t.Fatal("initial snapshot never arrived")
	}
	if sess.SnapshotsSent < 1 {
		t.Fatal("no snapshots sent")
	}
	if sess.BytesToClient <= 0 {
		t.Fatal("no snapshot bytes")
	}
	// The thin client ships far fewer bytes than the raw page (compression).
	if sess.BytesToClient >= page.TotalBytes {
		t.Fatalf("snapshot bytes %d >= page bytes %d", sess.BytesToClient, page.TotalBytes)
	}
	if len(sess.CloudEngine.JSErrors) > 0 {
		t.Fatalf("cloud JS errors: %v", sess.CloudEngine.JSErrors)
	}
}

func TestCBClicksCostNetwork(t *testing.T) {
	page := interactivePage(t)
	topo := scenario.Build(page, scenario.DefaultParams())
	sess := New(topo, DefaultConfig())
	sess.Load()
	before := topo.ClientTrace.Len()
	var updated time.Duration
	sess.Click("click", "gallery-next", func(at time.Duration) { updated = at })
	topo.Sim.Run()
	if updated == 0 {
		t.Fatal("click update never rendered")
	}
	if topo.ClientTrace.Len() == before {
		t.Fatal("CB click produced no network traffic — it must round-trip")
	}
	if sess.EventsSent != 1 {
		t.Fatalf("EventsSent = %d", sess.EventsSent)
	}
}

func TestCBClickEnergyGrowsButParcelStaysFlat(t *testing.T) {
	// The Figure 8 contrast at unit scale: per-click cumulative radio energy
	// strictly grows for CB and stays flat for PARCEL.
	page := interactivePage(t)

	cbTopo := scenario.Build(page, scenario.DefaultParams())
	cb := New(cbTopo, DefaultConfig())
	cb.Load()
	cbBefore := cbTopo.ClientTrace.Len()
	for i := 0; i < 3; i++ {
		cb.Click("click", "gallery-next", nil)
		cbTopo.Sim.Run()
	}
	cbClicksTraffic := cbTopo.ClientTrace.Len() - cbBefore

	pTopo := scenario.Build(page, scenario.DefaultParams())
	core.StartProxy(pTopo, core.DefaultProxyConfig())
	pc := core.NewClient(pTopo, core.DefaultClientConfig())
	pc.Load()
	pBefore := pTopo.ClientTrace.Len()
	for i := 0; i < 3; i++ {
		pc.Engine.FireEvent("click", "gallery-next")
		pTopo.Sim.Run()
	}
	parcelClicksTraffic := pTopo.ClientTrace.Len() - pBefore

	if cbClicksTraffic == 0 {
		t.Fatal("CB clicks silent")
	}
	if parcelClicksTraffic != 0 {
		t.Fatalf("PARCEL clicks produced %d packets, want 0", parcelClicksTraffic)
	}
}

func TestCBClientCPUIsCheap(t *testing.T) {
	page := interactivePage(t)

	cbTopo := scenario.Build(page, scenario.DefaultParams())
	cb := New(cbTopo, DefaultConfig())
	cb.Load()

	pTopo := scenario.Build(page, scenario.DefaultParams())
	core.StartProxy(pTopo, core.DefaultProxyConfig())
	pcl := core.NewClient(pTopo, core.DefaultClientConfig())
	pRun := pcl.Load()

	if cb.ClientCPUActive() >= pRun.CPUActive {
		t.Fatalf("CB client CPU %v >= PARCEL client CPU %v — thin client must be cheaper",
			cb.ClientCPUActive(), pRun.CPUActive)
	}
}

func TestCBHandlesNonInteractivePage(t *testing.T) {
	pages := webgen.Generate(webgen.Spec{Seed: 1234, NumPages: 8})
	topo := scenario.Build(pages[0], scenario.DefaultParams())
	sess := New(topo, DefaultConfig())
	run := sess.Load()
	if run.OLT == 0 {
		t.Fatal("no snapshot for plain page")
	}
}
