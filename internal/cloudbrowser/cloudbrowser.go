// Package cloudbrowser implements CB, the cloud-heavy baseline of §8.2: a
// thin-client browser in the style of Opera Mini / Skyfire where the cloud
// executes all page logic — including JavaScript — and ships the client
// rendered page snapshots. The client performs no JS execution; every user
// interaction is relayed to the cloud, which runs the handler remotely and
// returns an updated snapshot. This is the design whose interaction cost the
// paper demonstrates PARCEL avoids (Figure 8).
package cloudbrowser

import (
	"strings"
	"time"

	"github.com/parcel-go/parcel/internal/browser"
	"github.com/parcel-go/parcel/internal/httpsim"
	"github.com/parcel-go/parcel/internal/metrics"
	"github.com/parcel-go/parcel/internal/radio"
	"github.com/parcel-go/parcel/internal/scenario"
	"github.com/parcel-go/parcel/internal/simnet"
	"github.com/parcel-go/parcel/internal/trace"
)

// Config tunes the cloud browser.
type Config struct {
	// SnapshotFactor scales page bytes into rendered-snapshot bytes (cloud
	// browsers compress aggressively; OBML-style formats ship well under
	// the raw page weight).
	SnapshotFactor float64
	// UpdateOverheadBytes is the fixed cost of a per-interaction snapshot
	// delta (layout re-serialization).
	UpdateOverheadBytes int
	// ClientRenderPerKB is the thin client's cost to paint a snapshot.
	ClientRenderPerKB time.Duration
	// CPU is the cloud engine profile.
	CPU browser.CPUModel
	// FixedRandom applies the §7.3 replay rewrite in the cloud engine.
	FixedRandom bool
}

// DefaultConfig returns the evaluation defaults.
func DefaultConfig() Config {
	return Config{
		SnapshotFactor:      0.6,
		UpdateOverheadBytes: 24 << 10,
		ClientRenderPerKB:   300 * time.Microsecond,
		CPU:                 browser.ProxyCPU(),
		FixedRandom:         true,
	}
}

// message labels for traces.
const (
	labelSnapshot = "cb:snapshot"
	labelEvent    = "ctl:cb-event"
	labelPageReq  = "ctl:cb-pagereq"
)

type cbPageRequest struct{ URL string }

type cbSnapshot struct {
	Bytes   int
	Initial bool
}

type cbEvent struct{ Event, Target string }

// Session is one CB page session: cloud engine plus thin client.
type Session struct {
	topo *scenario.Topology
	cfg  Config

	CloudEngine *browser.Engine
	conn        *simnet.Conn

	clientCPUBusy   time.Duration
	clientCPUActive time.Duration

	snapshotAt    time.Duration // arrival of the initial snapshot
	renderedAt    time.Duration
	pendingUpdate bool

	// SnapshotsSent counts cloud→client snapshot messages.
	SnapshotsSent int
	// BytesToClient counts snapshot bytes shipped.
	BytesToClient int64
	// EventsSent counts client→cloud interaction round-trips.
	EventsSent int

	onUpdate func(at time.Duration)
}

// New prepares a CB session on the topology: the cloud side listens on the
// proxy host.
func New(topo *scenario.Topology, cfg Config) *Session {
	if cfg.SnapshotFactor == 0 {
		cfg = DefaultConfig()
	}
	s := &Session{topo: topo, cfg: cfg}
	topo.Proxy.Listen(func(c *simnet.Conn) {
		c.OnMessage(topo.Proxy, s.onCloudMessage)
	})
	return s
}

// Load performs the first download (FD): the cloud loads the page and ships
// the initial snapshot at its onload event; post-onload content arrives as a
// trailing update at cloud completion.
func (s *Session) Load() metrics.PageRun {
	topo := s.topo
	s.conn = topo.Client.Dial(topo.Proxy, func(conn *simnet.Conn) {
		conn.Send(topo.Client, 260+len(topo.Page.MainURL), cbPageRequest{URL: topo.Page.MainURL}, labelPageReq, nil)
	})
	s.conn.OnMessage(topo.Client, s.onClientMessage)
	topo.Sim.Run()
	return s.Collect()
}

// onCloudMessage handles client→cloud traffic at the proxy host.
func (s *Session) onCloudMessage(m simnet.Message) {
	switch msg := m.Payload.(type) {
	case cbPageRequest:
		s.startCloudLoad(msg.URL)
	case cbEvent:
		s.handleRemoteEvent(msg)
	}
}

func (s *Session) startCloudLoad(url string) {
	topo := s.topo
	client := httpsim.NewClient(topo.Sim, topo.Proxy, topo.Dir, topo.ProxyResolver, 6)
	client.SetMaxTotalConns(64)
	var bytesAtOnload, bytesTotal int64
	fetcher := cbFetcher{client: client, bytes: &bytesTotal}
	s.CloudEngine = browser.New(topo.Sim, fetcher, browser.Options{
		CPU:         s.cfg.CPU,
		FixedRandom: s.cfg.FixedRandom,
		Events: browser.Events{
			OnLoad: func(at time.Duration) {
				bytesAtOnload = bytesTotal
				s.sendSnapshot(int(float64(bytesAtOnload)*s.cfg.SnapshotFactor), true)
			},
			Complete: func(at time.Duration) {
				tail := bytesTotal - bytesAtOnload
				if tail > 0 {
					s.sendSnapshot(s.cfg.UpdateOverheadBytes+int(float64(tail)*s.cfg.SnapshotFactor), false)
				}
			},
		},
	})
	s.CloudEngine.Load(url)
}

// cbFetcher fetches origin objects for the cloud engine, counting bytes.
type cbFetcher struct {
	client *httpsim.Client
	bytes  *int64
}

func (f cbFetcher) Fetch(url string, cb func(browser.Result)) {
	f.client.Do(httpsim.Request{Method: "GET", URL: url}, func(resp httpsim.Response, at time.Duration) {
		*f.bytes += int64(len(resp.Body))
		cb(browser.Result{URL: resp.URL, Status: resp.Status, ContentType: resp.ContentType, Body: resp.Body, At: at})
	})
}

func (s *Session) sendSnapshot(size int, initial bool) {
	if size < 1024 {
		size = 1024
	}
	s.SnapshotsSent++
	s.BytesToClient += int64(size)
	s.conn.Send(s.topo.Proxy, size, cbSnapshot{Bytes: size, Initial: initial}, labelSnapshot, nil)
}

// handleRemoteEvent runs the interaction in the cloud engine and ships the
// resulting snapshot delta — the network round-trip PARCEL's local JS
// execution avoids.
func (s *Session) handleRemoteEvent(ev cbEvent) {
	bytesBefore := int64(0)
	if s.CloudEngine != nil {
		s.CloudEngine.FireEvent(ev.Event, ev.Target)
	}
	_ = bytesBefore
	// The handler ran remotely; ship the updated view.
	s.sendSnapshot(s.cfg.UpdateOverheadBytes+s.galleryDeltaBytes(), false)
}

// galleryDeltaBytes estimates the content bytes a gallery interaction
// re-displays: the next product image's share of the snapshot.
func (s *Session) galleryDeltaBytes() int {
	var total, n int64
	for _, o := range s.topo.Page.Objects {
		if strings.Contains(o.URL, "/products/") {
			total += int64(len(o.Body))
			n++
		}
	}
	if n == 0 {
		return 8 << 10
	}
	return int(float64(total/n) * s.cfg.SnapshotFactor)
}

// onClientMessage handles cloud→client traffic at the client host.
func (s *Session) onClientMessage(m simnet.Message) {
	snap, ok := m.Payload.(cbSnapshot)
	if !ok {
		return
	}
	// Thin-client render: cheap, serialized on the device CPU.
	cost := time.Duration(float64(s.cfg.ClientRenderPerKB) * float64(snap.Bytes) / 1024)
	start := s.topo.Sim.Now()
	if start < s.clientCPUBusy {
		start = s.clientCPUBusy
	}
	end := start + cost
	s.clientCPUBusy = end
	s.clientCPUActive += cost
	if snap.Initial {
		s.snapshotAt = m.At
		s.topo.Sim.ScheduleArgAt(end, markRendered, s)
	}
	if s.onUpdate != nil {
		cb := s.onUpdate
		s.onUpdate = nil
		//parcelvet:allow noclosure(fires once per user interaction, not per packet; the caller-supplied callback value has no typed carrier field)
		s.topo.Sim.ScheduleAt(end, func() { cb(s.topo.Sim.Now()) })
	}
}

// markRendered is the ScheduleArgAt continuation for the initial snapshot
// render completing on the thin client.
func markRendered(arg any) {
	s := arg.(*Session)
	s.renderedAt = s.topo.Sim.Now()
}

// Click relays a user interaction to the cloud; cb (optional) fires when the
// updated snapshot has been rendered.
func (s *Session) Click(event, target string, cb func(at time.Duration)) {
	s.EventsSent++
	s.onUpdate = cb
	s.conn.Send(s.topo.Client, 300, cbEvent{Event: event, Target: target}, labelEvent, nil)
}

// ClientCPUActive returns the thin client's total render CPU time.
func (s *Session) ClientCPUActive() time.Duration { return s.clientCPUActive }

// Collect assembles metrics. OLT is the initial snapshot arrival (the thin
// client has nothing to show before it); TLT the last snapshot byte.
func (s *Session) Collect() metrics.PageRun {
	run := metrics.PageRun{Scheme: "CB", Page: s.topo.Page.Name}
	metrics.FromTrace(&run, s.topo.ClientTrace, s.snapshotAt, radio.DefaultLTE(), func(p trace.Packet) bool {
		return !strings.HasPrefix(p.Label, "ctl:")
	})
	run.CPUActive = s.clientCPUActive
	run.HTTPRequests = 1 + s.EventsSent
	run.ConnsOpened = 1
	run.ObjectsLoaded = s.SnapshotsSent
	return run
}

// Run loads a page with CB on the topology.
func Run(topo *scenario.Topology, cfg Config) metrics.PageRun {
	return New(topo, cfg).Load()
}
