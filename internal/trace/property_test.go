package trace

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// naiveRecorder is the obviously-correct single-slice reference model the
// chunked Recorder is checked against: every derived metric recomputed from
// one flat append-only slice.
type naiveRecorder struct {
	pkts []Packet
}

func (r *naiveRecorder) record(p Packet) { r.pkts = append(r.pkts, p) }

func (r *naiveRecorder) totalBytes(dir *Dir) int64 {
	var sum int64
	for _, p := range r.pkts {
		if dir == nil || p.Dir == *dir {
			sum += int64(p.Size)
		}
	}
	return sum
}

func (r *naiveRecorder) first() (time.Duration, bool) {
	if len(r.pkts) == 0 {
		return 0, false
	}
	min := r.pkts[0].At
	for _, p := range r.pkts {
		if p.At < min {
			min = p.At
		}
	}
	return min, true
}

func (r *naiveRecorder) last() (time.Duration, bool) {
	if len(r.pkts) == 0 {
		return 0, false
	}
	max := r.pkts[0].At
	for _, p := range r.pkts {
		if p.At > max {
			max = p.At
		}
	}
	return max, true
}

func (r *naiveRecorder) lastDataAt() (time.Duration, bool) {
	var max time.Duration
	found := false
	for _, p := range r.pkts {
		if p.Kind == KindData && (!found || p.At > max) {
			max, found = p.At, true
		}
	}
	return max, found
}

func (r *naiveRecorder) gapHistogram() []time.Duration {
	if len(r.pkts) < 2 {
		return nil
	}
	times := make([]time.Duration, len(r.pkts))
	for i, p := range r.pkts {
		times[i] = p.At
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	gaps := make([]time.Duration, 0, len(times)-1)
	for i := 1; i < len(times); i++ {
		gaps = append(gaps, times[i]-times[i-1])
	}
	sort.Slice(gaps, func(i, j int) bool { return gaps[i] < gaps[j] })
	return gaps
}

func randomPacket(rng *rand.Rand) Packet {
	return Packet{
		At:   time.Duration(rng.Int63n(int64(10 * time.Second))),
		Size: rng.Intn(1500) + 1,
		Dir:  Dir(rng.Intn(2)),
		Kind: Kind(rng.Intn(6)),
		Conn: uint64(rng.Intn(8)),
	}
}

// TestRecorderMatchesNaiveReference drives the chunked Recorder and the
// flat-slice reference with identical random captures — sized to straddle
// block boundaries — and requires every derived metric to agree exactly. It
// interleaves Reset and Reserve calls so block reuse is exercised too.
func TestRecorderMatchesNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	// Counts around the block size and several multiples of it, so the
	// chain has 0, 1, exactly-full, and many-block shapes.
	counts := []int{0, 1, 7, blockSize - 1, blockSize, blockSize + 1,
		2*blockSize - 1, 3 * blockSize, 3*blockSize + 13}
	rec := &Recorder{}
	for round, count := range counts {
		rec.Reset()
		if round%2 == 1 {
			rec.Reserve(count) // every other round exercises pre-sizing
		}
		ref := &naiveRecorder{}
		for i := 0; i < count; i++ {
			p := randomPacket(rng)
			rec.Record(p)
			ref.record(p)
		}
		if rec.Len() != len(ref.pkts) {
			t.Fatalf("round %d: Len = %d, want %d", round, rec.Len(), len(ref.pkts))
		}
		// Packets() materialisation preserves record order.
		got := rec.Packets()
		for i := range ref.pkts {
			if got[i] != ref.pkts[i] {
				t.Fatalf("round %d: Packets()[%d] = %+v, want %+v", round, i, got[i], ref.pkts[i])
			}
		}
		// Each visits the same sequence.
		i := 0
		rec.Each(func(p Packet) {
			if p != ref.pkts[i] {
				t.Fatalf("round %d: Each index %d = %+v, want %+v", round, i, p, ref.pkts[i])
			}
			i++
		})
		if i != len(ref.pkts) {
			t.Fatalf("round %d: Each visited %d packets, want %d", round, i, len(ref.pkts))
		}
		// PacketsSince agrees at every cut point (sampled).
		for _, cut := range []int{0, 1, count / 2, count - 1, count, count + 5} {
			if cut < 0 {
				continue
			}
			since := rec.PacketsSince(cut)
			want := 0
			if cut < len(ref.pkts) {
				want = len(ref.pkts) - cut
			}
			if len(since) != want {
				t.Fatalf("round %d: PacketsSince(%d) len = %d, want %d", round, cut, len(since), want)
			}
			for j := range since {
				if since[j] != ref.pkts[cut+j] {
					t.Fatalf("round %d: PacketsSince(%d)[%d] mismatch", round, cut, j)
				}
			}
		}
		up := Up
		for name, pair := range map[string][2]int64{
			"TotalBytes(nil)": {rec.TotalBytes(nil), ref.totalBytes(nil)},
			"TotalBytes(Up)":  {rec.TotalBytes(&up), func() int64 { d := Up; return ref.totalBytes(&d) }()},
		} {
			if pair[0] != pair[1] {
				t.Fatalf("round %d: %s = %d, want %d", round, name, pair[0], pair[1])
			}
		}
		gf, gok := rec.First()
		wf, wok := ref.first()
		if gf != wf || gok != wok {
			t.Fatalf("round %d: First = (%v,%v), want (%v,%v)", round, gf, gok, wf, wok)
		}
		gl, gok := rec.Last()
		wl, wok := ref.last()
		if gl != wl || gok != wok {
			t.Fatalf("round %d: Last = (%v,%v), want (%v,%v)", round, gl, gok, wl, wok)
		}
		gd, gok := rec.LastDataAt()
		wd, wok := ref.lastDataAt()
		if gd != wd || gok != wok {
			t.Fatalf("round %d: LastDataAt = (%v,%v), want (%v,%v)", round, gd, gok, wd, wok)
		}
		gGaps, wGaps := rec.GapHistogram(), ref.gapHistogram()
		if len(gGaps) != len(wGaps) {
			t.Fatalf("round %d: GapHistogram len = %d, want %d", round, len(gGaps), len(wGaps))
		}
		for j := range wGaps {
			if gGaps[j] != wGaps[j] {
				t.Fatalf("round %d: GapHistogram[%d] = %v, want %v", round, j, gGaps[j], wGaps[j])
			}
		}
	}
}

// TestResetReleasesBlocks pins the memory-discipline fix: after a large
// capture, Reset must drop every block beyond the first so a reused recorder
// does not retain the peak capture.
func TestResetReleasesBlocks(t *testing.T) {
	rec := &Recorder{}
	for i := 0; i < 5*blockSize; i++ {
		rec.Record(Packet{At: time.Duration(i), Size: 1})
	}
	if len(rec.blocks) < 5 {
		t.Fatalf("expected >=5 blocks before Reset, got %d", len(rec.blocks))
	}
	rec.Reset()
	if len(rec.blocks) != 1 {
		t.Fatalf("Reset kept %d blocks, want 1", len(rec.blocks))
	}
	if rec.Len() != 0 {
		t.Fatalf("Len after Reset = %d", rec.Len())
	}
	// The retained block is reusable without reallocation.
	if cap(rec.blocks[0]) != blockSize {
		t.Fatalf("retained block cap = %d, want %d", cap(rec.blocks[0]), blockSize)
	}
	rec.Record(Packet{At: 1, Size: 2})
	if rec.Len() != 1 {
		t.Fatal("record after Reset failed")
	}
}
