// Package trace captures per-host packet traces from the network simulator
// and derives the paper's latency metrics from them: the packet timeline a
// tcpdump capture would show on the device, OLT/TLT extraction, and the
// activity series the radio energy model consumes (§7.1).
package trace

import (
	"sort"
	"time"

	"github.com/parcel-go/parcel/internal/radio"
)

// Kind classifies a packet.
type Kind int

const (
	KindData Kind = iota
	KindSYN
	KindSYNACK
	KindACK
	KindFIN
	KindDNS
)

var kindNames = [...]string{"DATA", "SYN", "SYNACK", "ACK", "FIN", "DNS"}

func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return "?"
	}
	return kindNames[k]
}

// Dir is the packet direction relative to the traced host.
type Dir int

const (
	// Up is a packet the host transmits.
	Up Dir = iota
	// Down is a packet the host receives.
	Down
)

func (d Dir) String() string {
	if d == Up {
		return "UP"
	}
	return "DOWN"
}

// Packet is one captured packet event.
type Packet struct {
	At    time.Duration
	Size  int // bytes on the wire, headers included
	Dir   Dir
	Kind  Kind
	Conn  uint64 // connection id, 0 for connectionless
	Label string // free-form annotation (e.g. object URL)
}

// Recorder accumulates packets observed at one host. The zero value is ready
// to use. Recorder is not safe for concurrent use; the simulator is
// single-threaded by construction.
type Recorder struct {
	packets []Packet
}

// Record appends one packet event.
func (r *Recorder) Record(p Packet) { r.packets = append(r.packets, p) }

// Packets returns the capture in arrival order (the order recorded).
func (r *Recorder) Packets() []Packet { return r.packets }

// Len returns the number of captured packets.
func (r *Recorder) Len() int { return len(r.packets) }

// Reset clears the capture.
func (r *Recorder) Reset() { r.packets = r.packets[:0] }

// TotalBytes sums wire bytes across the capture, optionally filtered by
// direction (pass nil for both).
func (r *Recorder) TotalBytes(dir *Dir) int64 {
	var sum int64
	for _, p := range r.packets {
		if dir == nil || p.Dir == *dir {
			sum += int64(p.Size)
		}
	}
	return sum
}

// First returns the earliest packet time, or ok=false for an empty capture.
func (r *Recorder) First() (time.Duration, bool) {
	if len(r.packets) == 0 {
		return 0, false
	}
	min := r.packets[0].At
	for _, p := range r.packets[1:] {
		if p.At < min {
			min = p.At
		}
	}
	return min, true
}

// Last returns the latest packet time, or ok=false for an empty capture.
func (r *Recorder) Last() (time.Duration, bool) {
	if len(r.packets) == 0 {
		return 0, false
	}
	max := r.packets[0].At
	for _, p := range r.packets[1:] {
		if p.At > max {
			max = p.At
		}
	}
	return max, true
}

// LastDataAt returns the time of the last DATA packet, or ok=false when the
// capture holds none. This is the paper's TLT endpoint ("last ACK for all
// objects in the trace" — in our simulator data delivery time is the
// equivalent observable).
func (r *Recorder) LastDataAt() (time.Duration, bool) {
	var max time.Duration
	found := false
	for _, p := range r.packets {
		if p.Kind == KindData && (!found || p.At > max) {
			max, found = p.At, true
		}
	}
	return max, found
}

// LastDataMatching returns the time of the last DATA packet satisfying keep.
// PARCEL uses this to exclude control messages (completion notification)
// from TLT, which the paper defines over the page's objects.
func (r *Recorder) LastDataMatching(keep func(Packet) bool) (time.Duration, bool) {
	var max time.Duration
	found := false
	for _, p := range r.packets {
		if p.Kind == KindData && keep(p) && (!found || p.At > max) {
			max, found = p.At, true
		}
	}
	return max, found
}

// Activities converts the capture into the radio model's activity series.
// Every packet — data, ACK or DNS, up or down — keeps the radio in CR.
func (r *Recorder) Activities() []radio.Activity {
	acts := make([]radio.Activity, len(r.packets))
	for i, p := range r.packets {
		acts[i] = radio.Activity{At: p.At, Bytes: p.Size}
	}
	return acts
}

// Point is one step in a cumulative byte timeline.
type Point struct {
	At    time.Duration
	Bytes int64
}

// CumulativeBytes returns the running total of DATA payload bytes in the
// given direction over time — the series Figure 6a plots.
func (r *Recorder) CumulativeBytes(dir Dir) []Point {
	pkts := make([]Packet, 0, len(r.packets))
	for _, p := range r.packets {
		if p.Kind == KindData && p.Dir == dir {
			pkts = append(pkts, p)
		}
	}
	sort.SliceStable(pkts, func(i, j int) bool { return pkts[i].At < pkts[j].At })
	points := make([]Point, 0, len(pkts))
	var total int64
	for _, p := range pkts {
		total += int64(p.Size)
		if n := len(points); n > 0 && points[n-1].At == p.At {
			points[n-1].Bytes = total
			continue
		}
		points = append(points, Point{At: p.At, Bytes: total})
	}
	return points
}

// GapHistogram returns the inter-packet gaps in the capture, sorted
// ascending. Useful for validating burstiness claims (bundling reduces gaps).
func (r *Recorder) GapHistogram() []time.Duration {
	if len(r.packets) < 2 {
		return nil
	}
	times := make([]time.Duration, len(r.packets))
	for i, p := range r.packets {
		times[i] = p.At
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	gaps := make([]time.Duration, 0, len(times)-1)
	for i := 1; i < len(times); i++ {
		gaps = append(gaps, times[i]-times[i-1])
	}
	sort.Slice(gaps, func(i, j int) bool { return gaps[i] < gaps[j] })
	return gaps
}
