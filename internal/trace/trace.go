// Package trace captures per-host packet traces from the network simulator
// and derives the paper's latency metrics from them: the packet timeline a
// tcpdump capture would show on the device, OLT/TLT extraction, and the
// activity series the radio energy model consumes (§7.1).
package trace

import (
	"sort"
	"time"

	"github.com/parcel-go/parcel/internal/radio"
)

// Kind classifies a packet.
type Kind int

const (
	KindData Kind = iota
	KindSYN
	KindSYNACK
	KindACK
	KindFIN
	KindDNS
)

var kindNames = [...]string{"DATA", "SYN", "SYNACK", "ACK", "FIN", "DNS"}

func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return "?"
	}
	return kindNames[k]
}

// Dir is the packet direction relative to the traced host.
type Dir int

const (
	// Up is a packet the host transmits.
	Up Dir = iota
	// Down is a packet the host receives.
	Down
)

func (d Dir) String() string {
	if d == Up {
		return "UP"
	}
	return "DOWN"
}

// Packet is one captured packet event.
type Packet struct {
	At    time.Duration
	Size  int // bytes on the wire, headers included
	Dir   Dir
	Kind  Kind
	Conn  uint64 // connection id, 0 for connectionless
	Label string // free-form annotation (e.g. object URL)
}

// blockSize is how many packets one Recorder block holds. Appends fill the
// current block and start a new one when it is full: no slice-doubling copy
// of the whole capture ever happens, and a block is one allocation for 512
// packet slots.
const blockSize = 512

// Recorder accumulates packets observed at one host. The zero value is ready
// to use. Recorder is not safe for concurrent use; the simulator is
// single-threaded by construction.
//
// Storage is a chain of fixed-size blocks (see blockSize): Record is an
// append into the tail block, derived metrics iterate the chain, and Reset
// keeps only the first block so a Recorder reused across thousands of sweep
// rounds does not pin the peak capture's memory.
type Recorder struct {
	blocks [][]Packet
	n      int
}

// Record appends one packet event.
func (r *Recorder) Record(p Packet) {
	if nb := len(r.blocks); nb == 0 || len(r.blocks[nb-1]) == cap(r.blocks[nb-1]) {
		r.blocks = append(r.blocks, make([]Packet, 0, blockSize))
	}
	last := len(r.blocks) - 1
	r.blocks[last] = append(r.blocks[last], p)
	r.n++
}

// Reserve pre-sizes the recorder for a capture of about n packets, so a
// caller that knows its object count (a page scenario, a proxy session) pays
// one allocation up front instead of growing block by block. It only has an
// effect on an empty recorder.
func (r *Recorder) Reserve(n int) {
	if r.n > 0 || n <= blockSize {
		return
	}
	if len(r.blocks) == 0 {
		r.blocks = append(r.blocks, make([]Packet, 0, n))
		return
	}
	if len(r.blocks) == 1 && cap(r.blocks[0]) < n {
		r.blocks[0] = make([]Packet, 0, n)
	}
}

// Each calls fn for every captured packet in record order. It is the
// allocation-free way to scan the capture.
func (r *Recorder) Each(fn func(Packet)) {
	for _, b := range r.blocks {
		for i := range b {
			fn(b[i])
		}
	}
}

// Packets returns a copy of the capture in arrival order (the order
// recorded). It materialises the block chain into one flat slice; use Each
// for allocation-free scans on hot paths.
func (r *Recorder) Packets() []Packet {
	out := make([]Packet, 0, r.n)
	for _, b := range r.blocks {
		out = append(out, b...)
	}
	return out
}

// PacketsSince returns a copy of the packets recorded at index n and later
// (by record order). It lets instrumentation that snapshots Len() before an
// action diff the capture without copying the whole history.
func (r *Recorder) PacketsSince(n int) []Packet {
	if n < 0 {
		n = 0
	}
	if n >= r.n {
		return nil
	}
	out := make([]Packet, 0, r.n-n)
	skip := n
	for _, b := range r.blocks {
		if skip >= len(b) {
			skip -= len(b)
			continue
		}
		out = append(out, b[skip:]...)
		skip = 0
	}
	return out
}

// Len returns the number of captured packets.
func (r *Recorder) Len() int { return r.n }

// Reset clears the capture. It keeps the first block (so steady-state reuse
// does not re-allocate) and releases the rest: a recorder cycled over a
// multi-thousand-round sweep holds one block, not the peak capture.
func (r *Recorder) Reset() {
	if len(r.blocks) == 0 {
		r.n = 0
		return
	}
	r.blocks[0] = r.blocks[0][:0]
	for i := 1; i < len(r.blocks); i++ {
		r.blocks[i] = nil
	}
	r.blocks = r.blocks[:1]
	r.n = 0
}

// TotalBytes sums wire bytes across the capture, optionally filtered by
// direction (pass nil for both).
func (r *Recorder) TotalBytes(dir *Dir) int64 {
	var sum int64
	for _, b := range r.blocks {
		for i := range b {
			if dir == nil || b[i].Dir == *dir {
				sum += int64(b[i].Size)
			}
		}
	}
	return sum
}

// First returns the earliest packet time, or ok=false for an empty capture.
func (r *Recorder) First() (time.Duration, bool) {
	if r.n == 0 {
		return 0, false
	}
	min := r.blocks[0][0].At
	for _, b := range r.blocks {
		for i := range b {
			if b[i].At < min {
				min = b[i].At
			}
		}
	}
	return min, true
}

// Last returns the latest packet time, or ok=false for an empty capture.
func (r *Recorder) Last() (time.Duration, bool) {
	if r.n == 0 {
		return 0, false
	}
	max := r.blocks[0][0].At
	for _, b := range r.blocks {
		for i := range b {
			if b[i].At > max {
				max = b[i].At
			}
		}
	}
	return max, true
}

// LastDataAt returns the time of the last DATA packet, or ok=false when the
// capture holds none. This is the paper's TLT endpoint ("last ACK for all
// objects in the trace" — in our simulator data delivery time is the
// equivalent observable).
func (r *Recorder) LastDataAt() (time.Duration, bool) {
	var max time.Duration
	found := false
	for _, b := range r.blocks {
		for i := range b {
			if b[i].Kind == KindData && (!found || b[i].At > max) {
				max, found = b[i].At, true
			}
		}
	}
	return max, found
}

// LastDataMatching returns the time of the last DATA packet satisfying keep.
// PARCEL uses this to exclude control messages (completion notification)
// from TLT, which the paper defines over the page's objects.
func (r *Recorder) LastDataMatching(keep func(Packet) bool) (time.Duration, bool) {
	var max time.Duration
	found := false
	for _, b := range r.blocks {
		for i := range b {
			if b[i].Kind == KindData && keep(b[i]) && (!found || b[i].At > max) {
				max, found = b[i].At, true
			}
		}
	}
	return max, found
}

// Activities converts the capture into the radio model's activity series.
// Every packet — data, ACK or DNS, up or down — keeps the radio in CR.
func (r *Recorder) Activities() []radio.Activity {
	acts := make([]radio.Activity, 0, r.n)
	for _, b := range r.blocks {
		for i := range b {
			acts = append(acts, radio.Activity{At: b[i].At, Bytes: b[i].Size})
		}
	}
	return acts
}

// Point is one step in a cumulative byte timeline.
type Point struct {
	At    time.Duration
	Bytes int64
}

// CumulativeBytes returns the running total of DATA payload bytes in the
// given direction over time — the series Figure 6a plots.
func (r *Recorder) CumulativeBytes(dir Dir) []Point {
	pkts := make([]Packet, 0, r.n)
	for _, b := range r.blocks {
		for i := range b {
			if b[i].Kind == KindData && b[i].Dir == dir {
				pkts = append(pkts, b[i])
			}
		}
	}
	sort.SliceStable(pkts, func(i, j int) bool { return pkts[i].At < pkts[j].At })
	points := make([]Point, 0, len(pkts))
	var total int64
	for _, p := range pkts {
		total += int64(p.Size)
		if n := len(points); n > 0 && points[n-1].At == p.At {
			points[n-1].Bytes = total
			continue
		}
		points = append(points, Point{At: p.At, Bytes: total})
	}
	return points
}

// GapHistogram returns the inter-packet gaps in the capture, sorted
// ascending. Useful for validating burstiness claims (bundling reduces gaps).
func (r *Recorder) GapHistogram() []time.Duration {
	if r.n < 2 {
		return nil
	}
	times := make([]time.Duration, 0, r.n)
	for _, b := range r.blocks {
		for i := range b {
			times = append(times, b[i].At)
		}
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	gaps := make([]time.Duration, 0, len(times)-1)
	for i := 1; i < len(times); i++ {
		gaps = append(gaps, times[i]-times[i-1])
	}
	sort.Slice(gaps, func(i, j int) bool { return gaps[i] < gaps[j] })
	return gaps
}
