package trace

import (
	"testing"
	"time"
)

func pkt(at int, size int, dir Dir, kind Kind) Packet {
	return Packet{At: time.Duration(at) * time.Millisecond, Size: size, Dir: dir, Kind: kind}
}

func TestRecordAndTotals(t *testing.T) {
	var r Recorder
	r.Record(pkt(0, 100, Up, KindSYN))
	r.Record(pkt(10, 1500, Down, KindData))
	r.Record(pkt(20, 40, Up, KindACK))
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
	if got := r.TotalBytes(nil); got != 1640 {
		t.Fatalf("TotalBytes = %d, want 1640", got)
	}
	up := Up
	if got := r.TotalBytes(&up); got != 140 {
		t.Fatalf("TotalBytes(Up) = %d, want 140", got)
	}
}

func TestFirstLastEmpty(t *testing.T) {
	var r Recorder
	if _, ok := r.First(); ok {
		t.Fatal("First on empty returned ok")
	}
	if _, ok := r.Last(); ok {
		t.Fatal("Last on empty returned ok")
	}
	if _, ok := r.LastDataAt(); ok {
		t.Fatal("LastDataAt on empty returned ok")
	}
}

func TestFirstLastData(t *testing.T) {
	var r Recorder
	r.Record(pkt(50, 40, Up, KindACK))
	r.Record(pkt(10, 100, Up, KindSYN))
	r.Record(pkt(30, 1500, Down, KindData))
	if first, _ := r.First(); first != 10*time.Millisecond {
		t.Fatalf("First = %v", first)
	}
	if last, _ := r.Last(); last != 50*time.Millisecond {
		t.Fatalf("Last = %v", last)
	}
	if ld, _ := r.LastDataAt(); ld != 30*time.Millisecond {
		t.Fatalf("LastDataAt = %v", ld)
	}
}

func TestReset(t *testing.T) {
	var r Recorder
	r.Record(pkt(0, 1, Up, KindData))
	r.Reset()
	if r.Len() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestActivities(t *testing.T) {
	var r Recorder
	r.Record(pkt(5, 1500, Down, KindData))
	r.Record(pkt(9, 40, Up, KindACK))
	acts := r.Activities()
	if len(acts) != 2 {
		t.Fatalf("len = %d", len(acts))
	}
	if acts[0].At != 5*time.Millisecond || acts[0].Bytes != 1500 {
		t.Fatalf("activity 0 = %+v", acts[0])
	}
}

func TestCumulativeBytes(t *testing.T) {
	var r Recorder
	r.Record(pkt(10, 1000, Down, KindData))
	r.Record(pkt(10, 500, Down, KindData)) // same instant merges
	r.Record(pkt(20, 40, Up, KindACK))     // not data-down
	r.Record(pkt(30, 2000, Down, KindData))
	pts := r.CumulativeBytes(Down)
	if len(pts) != 2 {
		t.Fatalf("points = %+v, want 2 entries", pts)
	}
	if pts[0].Bytes != 1500 || pts[1].Bytes != 3500 {
		t.Fatalf("cumulative = %+v", pts)
	}
}

func TestGapHistogram(t *testing.T) {
	var r Recorder
	r.Record(pkt(0, 1, Up, KindData))
	r.Record(pkt(100, 1, Up, KindData))
	r.Record(pkt(130, 1, Up, KindData))
	gaps := r.GapHistogram()
	if len(gaps) != 2 {
		t.Fatalf("gaps = %v", gaps)
	}
	if gaps[0] != 30*time.Millisecond || gaps[1] != 100*time.Millisecond {
		t.Fatalf("gaps = %v (want sorted 30ms, 100ms)", gaps)
	}
	var empty Recorder
	if empty.GapHistogram() != nil {
		t.Fatal("GapHistogram on empty not nil")
	}
}

func TestKindDirStrings(t *testing.T) {
	if KindData.String() != "DATA" || KindSYN.String() != "SYN" || Kind(42).String() != "?" {
		t.Fatal("kind names wrong")
	}
	if Up.String() != "UP" || Down.String() != "DOWN" {
		t.Fatal("dir names wrong")
	}
}
