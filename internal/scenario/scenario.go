// Package scenario wires the simulated evaluation topology of §7: a mobile
// client on a production-like LTE access (high RTT, moderate bandwidth,
// optional signal jitter), a well-provisioned proxy on a wired path, a DNS
// server, and one origin host per page domain — either a replay server
// colocated behind a fixed proxy↔server delay (the paper's
// web-page-replay + dummynet setup, §7.3) or "real" origins with
// heterogeneous per-domain delays (§8.4).
package scenario

import (
	"time"

	"github.com/parcel-go/parcel/internal/browser"
	"github.com/parcel-go/parcel/internal/dnssim"
	"github.com/parcel-go/parcel/internal/eventsim"
	"github.com/parcel-go/parcel/internal/httpsim"
	"github.com/parcel-go/parcel/internal/minijs"
	"github.com/parcel-go/parcel/internal/simnet"
	"github.com/parcel-go/parcel/internal/trace"
	"github.com/parcel-go/parcel/internal/webgen"
)

// Params describes one experiment topology.
type Params struct {
	Seed int64

	// LTE access characteristics (defaults follow §2.3/§8.3: RTT 70–86 ms,
	// observed download speeds 4–8 Mbps with median 6).
	LTERTT     time.Duration
	LTEDownBps int64
	LTEUpBps   int64
	LTEJitter  time.Duration

	// Wired swaps the client's access link for a wire-line profile (the
	// Figure 3 comparison).
	Wired        bool
	WiredRTT     time.Duration
	WiredDownBps int64
	WiredUpBps   int64

	// ProxyOriginRTT is the dummynet-emulated proxy↔server delay
	// (20 ms default; 60 ms for the §8.3 sensitivity study).
	ProxyOriginRTT time.Duration
	// HeterogeneousOrigins gives every domain its own proxy↔origin delay
	// drawn from 10–120 ms (the §8.4 "real web servers" setting).
	HeterogeneousOrigins bool

	ProxyBps      int64
	OriginThink   time.Duration
	DNSServerTime time.Duration

	// AccessFaults injects loss/outages on every path that crosses the
	// client's access link (client↔proxy, client↔DNS, client↔origins). The
	// zero value keeps the network fault-free and bit-identical to the
	// historical topologies.
	AccessFaults simnet.FaultParams

	// OriginFaults arms fault injection on every origin server: 503s, stalled
	// responses, truncated bodies, and timed availability flaps. The zero
	// value injects nothing and consumes no RNG, keeping fault-free runs
	// bit-identical to the historical topologies.
	OriginFaults httpsim.OriginFaults
}

// DefaultParams returns the paper-calibrated defaults.
func DefaultParams() Params {
	return Params{
		Seed:           1,
		LTERTT:         78 * time.Millisecond,
		LTEDownBps:     6_750_000 / 8, // 6.75 Mbps in bytes/s
		LTEUpBps:       2_000_000 / 8,
		LTEJitter:      0,
		WiredRTT:       12 * time.Millisecond,
		WiredDownBps:   50_000_000 / 8,
		WiredUpBps:     20_000_000 / 8,
		ProxyOriginRTT: 20 * time.Millisecond,
		ProxyBps:       200_000_000 / 8,
		OriginThink:    2 * time.Millisecond,
		DNSServerTime:  time.Millisecond,
	}
}

// Topology is a built experiment network for one page.
type Topology struct {
	Params Params
	Sim    *eventsim.Simulator
	Net    *simnet.Network

	Client *simnet.Host
	Proxy  *simnet.Host
	DNS    *simnet.Host

	ClientTrace *trace.Recorder

	// Dir maps every page domain to its origin host.
	Dir httpsim.Directory
	// ClientResolver resolves at the client (used by DIR).
	ClientResolver *dnssim.Resolver
	// ProxyResolver resolves at the proxy (used by PARCEL/CB proxies).
	ProxyResolver *dnssim.Resolver

	Page webgen.Page

	// Origins lists the per-domain origin servers in host-creation order, so
	// fault-injection harnesses can read their OriginFaultStats.
	Origins []*httpsim.Server

	// ExecCache and JSPools configure the browser engines built on this
	// topology (see browser.Options). Both are set by BuildWith when the
	// topology draws from shared Resources; Build leaves them zero so the
	// legacy serial path is byte-for-byte the historical engine.
	ExecCache bool
	JSPools   *minijs.Pools

	res *Resources
}

// Resources bundles the arena pools and scratch that a batch worker threads
// through consecutive (and interleaved) page simulations: event arena
// blocks, packet/message free lists, minijs call frames, and finished trace
// recorders. One Resources serves every simulation driven by one goroutine;
// it is not safe for concurrent use. Construct with NewResources.
type Resources struct {
	Events *eventsim.Pools
	Net    *simnet.Pools
	JS     *minijs.Pools

	recorders []*trace.Recorder
}

// NewResources returns an empty resource bundle for one worker.
func NewResources() *Resources {
	return &Resources{
		Events: eventsim.NewPools(),
		Net:    simnet.NewPools(),
		JS:     minijs.NewPools(),
	}
}

func (r *Resources) getRecorder() *trace.Recorder {
	if n := len(r.recorders); n > 0 {
		rec := r.recorders[n-1]
		r.recorders[n-1] = nil
		r.recorders = r.recorders[:n-1]
		rec.Reset()
		return rec
	}
	return &trace.Recorder{}
}

// Release returns the topology's pooled resources — event arena blocks and
// the client trace recorder — so the worker's next simulation can reuse
// them. It is only legal once the simulation has drained and every metric
// has been collected: reports copy what they keep (radio intervals, byte
// totals), so nothing may still alias the recorder or the event arena. A
// no-op for topologies built without Resources.
func (t *Topology) Release() {
	if t.res == nil {
		return
	}
	t.Sim.Release()
	if t.ClientTrace != nil {
		t.res.recorders = append(t.res.recorders, t.ClientTrace)
		t.ClientTrace = nil
	}
}

// Build constructs the network for one page. The page's objects are loaded
// into per-domain origin servers (the replay-server equivalent).
func Build(page webgen.Page, p Params) *Topology { return BuildWith(page, p, nil) }

// BuildWith is Build drawing arenas and scratch from res (nil for private
// allocations, i.e. plain Build). Topologies built from shared Resources
// also enable the script exec-outcome cache on their engines; replay
// validation keeps results bit-identical to the uncached path.
func BuildWith(page webgen.Page, p Params, res *Resources) *Topology {
	if p.LTERTT == 0 {
		p = DefaultParams()
	}
	var sim *eventsim.Simulator
	var n *simnet.Network
	var clientTrace *trace.Recorder
	if res != nil {
		sim = eventsim.NewWithPools(p.Seed, res.Events)
		n = simnet.NewWithPools(sim, res.Net)
		clientTrace = res.getRecorder()
	} else {
		sim = eventsim.New(p.Seed)
		n = simnet.New(sim)
		clientTrace = &trace.Recorder{}
	}
	// The page's size is known here: the capture holds roughly one DATA
	// packet per MSS of body, an ACK for every other segment, and a few
	// handshake/DNS/control packets per object. Reserving that estimate makes
	// the whole capture one allocation instead of a growing block chain.
	clientTrace.Reserve(int(page.TotalBytes/simnet.MSS)*3/2 + page.ObjectCount*8 + 64)
	clientCfg := simnet.HostConfig{
		DownlinkBps: p.LTEDownBps, UplinkBps: p.LTEUpBps, Recorder: clientTrace,
	}
	accessRTT := p.LTERTT
	jitter := p.LTEJitter
	if p.Wired {
		clientCfg.DownlinkBps = p.WiredDownBps
		clientCfg.UplinkBps = p.WiredUpBps
		accessRTT = p.WiredRTT
		jitter = 0
	}
	client := n.AddHost("client", clientCfg)
	proxy := n.AddHost("proxy", simnet.HostConfig{DownlinkBps: p.ProxyBps, UplinkBps: p.ProxyBps})
	dns := n.AddHost("dns", simnet.HostConfig{})

	n.SetPath(client, proxy, simnet.PathParams{RTT: accessRTT, Jitter: jitter})
	n.SetPath(client, dns, simnet.PathParams{RTT: accessRTT, Jitter: jitter})
	n.SetPath(proxy, dns, simnet.PathParams{RTT: 2 * time.Millisecond})
	if p.AccessFaults.Active() {
		n.SetFaults(client, proxy, p.AccessFaults)
		n.SetFaults(client, dns, p.AccessFaults)
	}

	rng := sim.Rand()
	dir := make(httpsim.Directory, len(page.Domains))
	origins := make([]*httpsim.Server, 0, len(page.Domains))
	store := page.SharedStore()
	for _, domain := range page.Domains {
		origin := n.AddHost("origin:"+domain, simnet.HostConfig{DownlinkBps: p.ProxyBps, UplinkBps: p.ProxyBps})
		originRTT := p.ProxyOriginRTT
		if p.HeterogeneousOrigins {
			originRTT = time.Duration(10+rng.Intn(110)) * time.Millisecond
		}
		// Client reaches origins through the LTE access plus the wired leg.
		n.SetPath(client, origin, simnet.PathParams{RTT: accessRTT + originRTT, Jitter: jitter})
		n.SetPath(proxy, origin, simnet.PathParams{RTT: originRTT})
		if p.AccessFaults.Active() {
			n.SetFaults(client, origin, p.AccessFaults)
		}
		srv := httpsim.NewServer(sim, origin, store, p.OriginThink)
		if p.OriginFaults.Active() {
			if err := srv.SetFaults(p.OriginFaults); err != nil {
				panic("scenario: bad origin faults: " + err.Error())
			}
		}
		origins = append(origins, srv)
		dir[domain] = origin
	}

	dnssim.NewServer(sim, dns, p.DNSServerTime)

	// Pre-warm the process-wide artifact and program caches with the page's
	// objects: every scheme and sweep round that loads this page then hits
	// cached DOM trees, CSS ref lists, and compiled scripts instead of
	// re-parsing identical bytes per engine.
	for _, obj := range page.Objects {
		browser.Prewarm(obj.URL, obj.ContentType, obj.Body)
	}

	topo := &Topology{
		Params:         p,
		Sim:            sim,
		Net:            n,
		Client:         client,
		Proxy:          proxy,
		DNS:            dns,
		ClientTrace:    clientTrace,
		Dir:            dir,
		Origins:        origins,
		ClientResolver: dnssim.NewResolver(client, dns),
		ProxyResolver:  dnssim.NewResolver(proxy, dns),
		Page:           page,
		res:            res,
	}
	if res != nil {
		topo.ExecCache = true
		topo.JSPools = res.JS
	}
	return topo
}
