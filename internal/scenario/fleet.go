package scenario

import (
	"sort"
	"strconv"
	"time"

	"github.com/parcel-go/parcel/internal/browser"
	"github.com/parcel-go/parcel/internal/dnssim"
	"github.com/parcel-go/parcel/internal/eventsim"
	"github.com/parcel-go/parcel/internal/httpsim"
	"github.com/parcel-go/parcel/internal/simnet"
	"github.com/parcel-go/parcel/internal/webgen"
)

// Fleet is the multi-tenant experiment network: one proxy and one origin set
// serving many independent mobile clients, each behind its own LTE access
// link. It reuses Topology for everything proxy-side (core.StartProxy takes
// it unchanged); the tenants are extra access hosts sharing the simulator.
type Fleet struct {
	*Topology

	// Tenants are the per-client access hosts, one per simulated user.
	Tenants []*simnet.Host
	// Pages is the page set the fleet loads (the union of their objects backs
	// the origin servers).
	Pages []webgen.Page
}

// BuildFleet constructs a fleet network: origin hosts for every domain across
// pages (each domain served once, with the union store), a proxy, DNS, and
// tenants access hosts. Domains are deduplicated and sorted so host creation
// order — and with it every seeded draw — is a pure function of the inputs.
func BuildFleet(pages []webgen.Page, tenants int, p Params) *Fleet {
	if p.LTERTT == 0 {
		p = DefaultParams()
	}
	sim := eventsim.New(p.Seed)
	n := simnet.New(sim)

	proxy := n.AddHost("proxy", simnet.HostConfig{DownlinkBps: p.ProxyBps, UplinkBps: p.ProxyBps})
	dns := n.AddHost("dns", simnet.HostConfig{})
	n.SetPath(proxy, dns, simnet.PathParams{RTT: 2 * time.Millisecond})

	// Union the page stores and collect the distinct domains in sorted order.
	store := make(httpsim.MapStore)
	seen := make(map[string]bool)
	domains := make([]string, 0, 8)
	for _, page := range pages {
		for url, obj := range page.SharedStore() {
			store[url] = obj
		}
		for _, domain := range page.Domains {
			if !seen[domain] {
				seen[domain] = true
				domains = append(domains, domain)
			}
		}
	}
	sort.Strings(domains)

	rng := sim.Rand()
	dir := make(httpsim.Directory, len(domains))
	origins := make([]*httpsim.Server, 0, len(domains))
	for _, domain := range domains {
		origin := n.AddHost("origin:"+domain, simnet.HostConfig{DownlinkBps: p.ProxyBps, UplinkBps: p.ProxyBps})
		originRTT := p.ProxyOriginRTT
		if p.HeterogeneousOrigins {
			originRTT = time.Duration(10+rng.Intn(110)) * time.Millisecond
		}
		n.SetPath(proxy, origin, simnet.PathParams{RTT: originRTT})
		srv := httpsim.NewServer(sim, origin, store, p.OriginThink)
		if p.OriginFaults.Active() {
			if err := srv.SetFaults(p.OriginFaults); err != nil {
				panic("scenario: bad origin faults: " + err.Error())
			}
		}
		origins = append(origins, srv)
		dir[domain] = origin
	}
	dnssim.NewServer(sim, dns, p.DNSServerTime)

	// Tenants only talk to the proxy (load clients have no engine and no
	// direct-origin path), so one access path each suffices.
	accessRTT := p.LTERTT
	hosts := make([]*simnet.Host, tenants)
	for i := range hosts {
		h := n.AddHost("tenant:"+strconv.Itoa(i), simnet.HostConfig{
			DownlinkBps: p.LTEDownBps, UplinkBps: p.LTEUpBps,
		})
		n.SetPath(h, proxy, simnet.PathParams{RTT: accessRTT, Jitter: p.LTEJitter})
		hosts[i] = h
	}

	for _, page := range pages {
		for _, obj := range page.Objects {
			browser.Prewarm(obj.URL, obj.ContentType, obj.Body)
		}
	}

	topo := &Topology{
		Params:        p,
		Sim:           sim,
		Net:           n,
		Proxy:         proxy,
		DNS:           dns,
		Dir:           dir,
		Origins:       origins,
		ProxyResolver: dnssim.NewResolver(proxy, dns),
		// Page seeds the proxy sessions' map-capacity hints; the first page
		// is as good a guess as any for a homogeneous fleet.
		Page: pages[0],
	}
	return &Fleet{Topology: topo, Tenants: hosts, Pages: pages}
}
