package scenario

import (
	"testing"
	"time"

	"github.com/parcel-go/parcel/internal/httpsim"
	"github.com/parcel-go/parcel/internal/webgen"
)

func onePage(t testing.TB) webgen.Page {
	t.Helper()
	return webgen.Generate(webgen.Spec{Seed: 3, NumPages: 2})[0]
}

func TestBuildWiresEveryDomain(t *testing.T) {
	page := onePage(t)
	topo := Build(page, DefaultParams())
	if len(topo.Dir) != len(page.Domains) {
		t.Fatalf("directory has %d domains, page has %d", len(topo.Dir), len(page.Domains))
	}
	for _, d := range page.Domains {
		if topo.Dir.HostFor(d) == nil {
			t.Fatalf("domain %s unmapped", d)
		}
	}
	if topo.Client == nil || topo.Proxy == nil || topo.DNS == nil {
		t.Fatal("missing core hosts")
	}
	if topo.ClientTrace == nil {
		t.Fatal("client trace missing")
	}
}

func TestOriginsServePageObjects(t *testing.T) {
	page := onePage(t)
	topo := Build(page, DefaultParams())
	// Fetch the main page from the client over the built topology.
	client := httpsim.NewClient(topo.Sim, topo.Client, topo.Dir, topo.ClientResolver, 6)
	var got httpsim.Response
	client.Do(httpsim.Request{URL: page.MainURL}, func(r httpsim.Response, at time.Duration) { got = r })
	topo.Sim.Run()
	if got.Status != 200 || len(got.Body) == 0 {
		t.Fatalf("main page fetch: %+v", got.Status)
	}
}

func TestWiredProfileFaster(t *testing.T) {
	page := onePage(t)
	fetchTime := func(wired bool) time.Duration {
		params := DefaultParams()
		params.Wired = wired
		topo := Build(page, params)
		client := httpsim.NewClient(topo.Sim, topo.Client, topo.Dir, topo.ClientResolver, 6)
		var done time.Duration
		client.Do(httpsim.Request{URL: page.MainURL}, func(r httpsim.Response, at time.Duration) { done = at })
		topo.Sim.Run()
		return done
	}
	if w, c := fetchTime(true), fetchTime(false); w >= c {
		t.Fatalf("wired fetch %v >= cellular %v", w, c)
	}
}

func TestHeterogeneousOriginsVary(t *testing.T) {
	page := onePage(t)
	params := DefaultParams()
	params.HeterogeneousOrigins = true
	topo := Build(page, params)
	// Paths differ across origins: check at least two distinct RTTs.
	seen := map[time.Duration]bool{}
	for _, d := range page.Domains {
		p := topo.Net.PathBetween(topo.Proxy, topo.Dir.HostFor(d))
		seen[p.RTT] = true
	}
	if len(page.Domains) >= 4 && len(seen) < 2 {
		t.Fatalf("heterogeneous origins produced a single RTT: %v", seen)
	}
}

func TestZeroParamsGetDefaults(t *testing.T) {
	page := onePage(t)
	topo := Build(page, Params{})
	if topo.Params.LTERTT == 0 {
		t.Fatal("defaults not applied")
	}
}

func TestProxyOriginRTTRespected(t *testing.T) {
	page := onePage(t)
	params := DefaultParams()
	params.ProxyOriginRTT = 60 * time.Millisecond
	topo := Build(page, params)
	p := topo.Net.PathBetween(topo.Proxy, topo.Dir.HostFor(page.Domains[0]))
	if p.RTT != 60*time.Millisecond {
		t.Fatalf("proxy-origin RTT = %v", p.RTT)
	}
}
