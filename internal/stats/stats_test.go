package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMedianOdd(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Fatalf("Median = %v, want 2", got)
	}
}

func TestMedianEven(t *testing.T) {
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Fatalf("Median = %v, want 2.5", got)
	}
}

func TestMedianSingle(t *testing.T) {
	if got := Median([]float64{7}); got != 7 {
		t.Fatalf("Median = %v, want 7", got)
	}
}

func TestMedianEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Median of empty slice did not panic")
		}
	}()
	Median(nil)
}

func TestPercentileEndpoints(t *testing.T) {
	xs := []float64{5, 1, 9, 3}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("P0 = %v, want 1", got)
	}
	if got := Percentile(xs, 100); got != 9 {
		t.Errorf("P100 = %v, want 9", got)
	}
}

func TestPercentileInterpolation(t *testing.T) {
	xs := []float64{0, 10}
	if got := Percentile(xs, 25); got != 2.5 {
		t.Errorf("P25 = %v, want 2.5", got)
	}
}

func TestPercentileOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Percentile(101) did not panic")
		}
	}()
	Percentile([]float64{1}, 101)
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestMeanAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Errorf("StdDev = %v, want 2", got)
	}
}

func TestMeanEmpty(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
}

func TestCoefficientOfVariation(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := CoefficientOfVariation(xs); got != 0.4 {
		t.Errorf("CV = %v, want 0.4", got)
	}
	if got := CoefficientOfVariation([]float64{0, 0}); got != 0 {
		t.Errorf("CV of zeros = %v, want 0", got)
	}
}

func TestCDFShape(t *testing.T) {
	points := CDF([]float64{3, 1, 2})
	if len(points) != 3 {
		t.Fatalf("len = %d, want 3", len(points))
	}
	if points[0].X != 1 || points[2].X != 3 {
		t.Errorf("CDF X not sorted: %+v", points)
	}
	if points[2].P != 1 {
		t.Errorf("last P = %v, want 1", points[2].P)
	}
}

func TestCDFEmpty(t *testing.T) {
	if got := CDF(nil); got != nil {
		t.Fatalf("CDF(nil) = %v, want nil", got)
	}
}

func TestCDFAt(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := CDFAt(xs, 2.5); got != 0.5 {
		t.Errorf("CDFAt(2.5) = %v, want 0.5", got)
	}
	if got := CDFAt(xs, 0); got != 0 {
		t.Errorf("CDFAt(0) = %v, want 0", got)
	}
	if got := CDFAt(xs, 10); got != 1 {
		t.Errorf("CDFAt(10) = %v, want 1", got)
	}
}

func TestPearsonPerfectCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if got := Pearson(xs, ys); !almostEqual(got, 1, 1e-12) {
		t.Errorf("Pearson = %v, want 1", got)
	}
	neg := []float64{8, 6, 4, 2}
	if got := Pearson(xs, neg); !almostEqual(got, -1, 1e-12) {
		t.Errorf("Pearson = %v, want -1", got)
	}
}

func TestPearsonZeroVariance(t *testing.T) {
	if got := Pearson([]float64{1, 1, 1}, []float64{1, 2, 3}); got != 0 {
		t.Errorf("Pearson with constant x = %v, want 0", got)
	}
}

func TestPearsonLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pearson length mismatch did not panic")
		}
	}()
	Pearson([]float64{1, 2}, []float64{1})
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 2}
	if Min(xs) != -1 || Max(xs) != 3 || Sum(xs) != 4 {
		t.Fatalf("Min/Max/Sum wrong: %v %v %v", Min(xs), Max(xs), Sum(xs))
	}
}

// Property: CDF probabilities are monotonically nondecreasing and end at 1.
func TestCDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		points := CDF(xs)
		prev := 0.0
		for _, pt := range points {
			if pt.P < prev || pt.P <= 0 || pt.P > 1 {
				return false
			}
			prev = pt.P
		}
		return points[len(points)-1].P == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: percentiles are bounded by min and max and monotone in p.
func TestPercentileBoundsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		lo, hi := Min(xs), Max(xs)
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			v := Percentile(xs, p)
			if v < lo-1e-9 || v > hi+1e-9 {
				t.Fatalf("P%v = %v outside [%v, %v]", p, v, lo, hi)
			}
			if v < prev-1e-9 {
				t.Fatalf("percentile not monotone at p=%v: %v < %v", p, v, prev)
			}
			prev = v
		}
	}
}

// Property: Pearson is symmetric and within [-1, 1].
func TestPearsonRangeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(40)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			ys[i] = rng.NormFloat64()
		}
		r := Pearson(xs, ys)
		if r < -1-1e-9 || r > 1+1e-9 {
			t.Fatalf("Pearson out of range: %v", r)
		}
		if r2 := Pearson(ys, xs); !almostEqual(r, r2, 1e-12) {
			t.Fatalf("Pearson not symmetric: %v vs %v", r, r2)
		}
	}
}

// Property: median lies between min and max and equals the 50th percentile.
func TestMedianConsistencyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(30)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 1000
		}
		med := Median(xs)
		if med != Percentile(xs, 50) {
			t.Fatalf("Median != P50")
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		if med < sorted[0] || med > sorted[n-1] {
			t.Fatalf("median %v outside range", med)
		}
	}
}
