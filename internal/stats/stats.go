// Package stats provides the small statistical toolkit the PARCEL evaluation
// harness needs: medians, percentiles, empirical CDFs, Pearson correlation,
// and coefficient of variation. All functions are deterministic and operate
// on float64 slices without mutating their inputs.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Median returns the median of xs. It panics on an empty slice because a
// median of nothing is a caller bug, not a recoverable condition.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks (the same method as numpy's default).
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: percentile of empty slice")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of range [0,100]", p))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// CoefficientOfVariation returns StdDev/Mean, the dispersion measure the
// paper uses to report page variability (§7.3). It returns 0 when the mean
// is 0.
func CoefficientOfVariation(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return StdDev(xs) / m
}

// CDFPoint is one step of an empirical CDF.
type CDFPoint struct {
	X float64 // value
	P float64 // cumulative probability in (0, 1]
}

// CDF returns the empirical cumulative distribution of xs as sorted step
// points. The result has one point per input value; P at the last point is 1.
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	points := make([]CDFPoint, len(sorted))
	n := float64(len(sorted))
	for i, x := range sorted {
		points[i] = CDFPoint{X: x, P: float64(i+1) / n}
	}
	return points
}

// CDFAt evaluates the empirical CDF of xs at value v: the fraction of samples
// <= v.
func CDFAt(xs []float64, v float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var count int
	for _, x := range xs {
		if x <= v {
			count++
		}
	}
	return float64(count) / float64(len(xs))
}

// Pearson returns the Pearson correlation coefficient between xs and ys.
// It panics if the slices differ in length or have fewer than two points,
// and returns 0 when either input has zero variance.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stats: Pearson inputs differ in length")
	}
	if len(xs) < 2 {
		panic("stats: Pearson needs at least two points")
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Min returns the smallest element of xs. It panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs. It panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}
