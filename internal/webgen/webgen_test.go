package webgen

import (
	"strings"
	"testing"
	"time"

	"github.com/parcel-go/parcel/internal/browser"
	"github.com/parcel-go/parcel/internal/eventsim"
	"github.com/parcel-go/parcel/internal/stats"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Spec{Seed: 42, NumPages: 5})
	b := Generate(Spec{Seed: 42, NumPages: 5})
	if len(a) != len(b) {
		t.Fatal("page counts differ")
	}
	for i := range a {
		if a[i].MainURL != b[i].MainURL || a[i].TotalBytes != b[i].TotalBytes || a[i].ObjectCount != b[i].ObjectCount {
			t.Fatalf("page %d differs across identical seeds", i)
		}
	}
	c := Generate(Spec{Seed: 43, NumPages: 5})
	same := true
	for i := range a {
		if a[i].TotalBytes != c[i].TotalBytes {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical sets")
	}
}

func TestDefaultSetSizeIs34(t *testing.T) {
	if got := len(Generate(Spec{Seed: 1})); got != 34 {
		t.Fatalf("default set size = %d, want 34", got)
	}
}

func TestCalibrationTargets(t *testing.T) {
	// Use a large set for stable statistics; the calibration must hold for
	// any seed.
	pages := Generate(Spec{Seed: 7, NumPages: 200})
	var sizes, counts []float64
	rich := 0
	for _, p := range pages {
		sizes = append(sizes, float64(p.TotalBytes))
		counts = append(counts, float64(p.ObjectCount))
		if p.ObjectCount >= 100 {
			rich++
		}
	}
	medianSize := stats.Median(sizes)
	if medianSize < 500e3 || medianSize > 2e6 {
		t.Errorf("median page size = %.0f, want ≈ 1 MB (paper: 1.04 MB)", medianSize)
	}
	if max := stats.Max(sizes); max > 7e6 {
		t.Errorf("max page size = %.0f, want <= ~6 MB (paper: ~5 MB)", max)
	}
	frac := float64(rich) / float64(len(pages))
	if frac < 0.30 || frac > 0.52 {
		t.Errorf("fraction with >=100 objects = %.2f, want ≈ 0.40", frac)
	}
	if stats.Max(counts) > 250 {
		t.Errorf("max object count = %.0f, implausible", stats.Max(counts))
	}
}

func TestStoreContainsAllObjects(t *testing.T) {
	p := Generate(Spec{Seed: 1, NumPages: 3})[0]
	store := p.Store()
	if len(store) != p.ObjectCount {
		t.Fatalf("store has %d entries, page has %d objects (duplicate URLs?)", len(store), p.ObjectCount)
	}
	if _, ok := store.Get(p.MainURL); !ok {
		t.Fatal("main URL missing from store")
	}
}

func TestNoDuplicateURLs(t *testing.T) {
	for _, p := range Generate(Spec{Seed: 3, NumPages: 10}) {
		seen := map[string]bool{}
		for _, o := range p.Objects {
			if seen[o.URL] {
				t.Fatalf("page %s has duplicate URL %s", p.Name, o.URL)
			}
			seen[o.URL] = true
		}
	}
}

func TestInteractivePageExists(t *testing.T) {
	pages := Generate(Spec{Seed: 1, NumPages: 34})
	p := InteractivePage(pages)
	if !p.Interactive {
		t.Fatal("InteractivePage returned non-interactive page")
	}
	gallery := 0
	for _, o := range p.Objects {
		if strings.Contains(o.URL, "/products/") {
			gallery++
		}
	}
	if gallery != GalleryImages {
		t.Fatalf("gallery images = %d, want %d", gallery, GalleryImages)
	}
}

func TestRandomURLPagesMarked(t *testing.T) {
	pages := Generate(Spec{Seed: 1, NumPages: 34})
	n := 0
	for _, p := range pages {
		if p.HasRandomURL {
			n++
		}
	}
	if n == 0 {
		t.Fatal("no randomized-URL pages in set")
	}
}

func TestDomainSpread(t *testing.T) {
	for _, p := range Generate(Spec{Seed: 5, NumPages: 20}) {
		if len(p.Domains) < 3 {
			t.Fatalf("page %s has only %d domains", p.Name, len(p.Domains))
		}
		if len(p.Domains) > 25 {
			t.Fatalf("page %s has %d domains, implausible", p.Name, len(p.Domains))
		}
	}
}

// storeFetcher adapts a page store to the browser Fetcher interface with a
// tiny constant delay.
type storeFetcher struct {
	sim   *eventsim.Simulator
	store map[string]browser.Result
}

func (f *storeFetcher) Fetch(url string, cb func(browser.Result)) {
	f.sim.Schedule(time.Millisecond, func() {
		r, ok := f.store[url]
		if !ok {
			cb(browser.Result{URL: url, Status: 404, At: f.sim.Now()})
			return
		}
		r.At = f.sim.Now()
		cb(r)
	})
}

// TestEngineDiscoversEveryObject is the generator/engine contract: loading a
// generated page discovers exactly the objects the generator created (under
// the fixed-random replay rewrite).
func TestEngineDiscoversEveryObject(t *testing.T) {
	pages := Generate(Spec{Seed: 11, NumPages: 8})
	for _, p := range pages {
		store := make(map[string]browser.Result, p.ObjectCount)
		for _, o := range p.Objects {
			store[o.URL] = browser.Result{URL: o.URL, Status: 200, ContentType: o.ContentType, Body: o.Body}
		}
		sim := eventsim.New(1)
		f := &storeFetcher{sim: sim, store: store}
		e := browser.New(sim, f, browser.Options{CPU: browser.ProxyCPU(), FixedRandom: true})
		e.Load(p.MainURL)
		sim.Run()
		if _, ok := e.CompleteAt(); !ok {
			t.Fatalf("page %s never completed", p.Name)
		}
		if len(e.JSErrors) > 0 {
			t.Fatalf("page %s JS errors: %v", p.Name, e.JSErrors)
		}
		requested := map[string]bool{}
		for _, u := range e.RequestedURLs() {
			requested[u] = true
		}
		for _, o := range p.Objects {
			if !requested[o.URL] {
				t.Errorf("page %s: object %s never requested", p.Name, o.URL)
			}
		}
		for u := range requested {
			if _, ok := store[u]; !ok {
				t.Errorf("page %s: engine requested unknown URL %s", p.Name, u)
			}
		}
		if t.Failed() {
			t.FailNow()
		}
	}
}

func TestOnloadBeforeCompleteOnGeneratedPages(t *testing.T) {
	p := Generate(Spec{Seed: 2, NumPages: 3})[2]
	store := make(map[string]browser.Result)
	for _, o := range p.Objects {
		store[o.URL] = browser.Result{URL: o.URL, Status: 200, ContentType: o.ContentType, Body: o.Body}
	}
	sim := eventsim.New(1)
	e := browser.New(sim, &storeFetcher{sim: sim, store: store}, browser.Options{CPU: browser.MobileCPU(), FixedRandom: true})
	e.Load(p.MainURL)
	sim.Run()
	ol, ok1 := e.OnloadAt()
	co, ok2 := e.CompleteAt()
	if !ok1 || !ok2 {
		t.Fatal("missing milestones")
	}
	// Generated pages carry post-onload timer ads, so complete > onload.
	if co <= ol {
		t.Fatalf("complete %v <= onload %v", co, ol)
	}
}

func BenchmarkGenerate34Pages(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Generate(Spec{Seed: int64(i), NumPages: 34})
	}
}
