// Package webgen deterministically generates the synthetic page set the
// evaluation runs on: a stand-in for the paper's 34 pages drawn from the
// Alexa top-500 (§7.2), calibrated to the statistics the paper publishes —
// roughly 40% of pages with at least 100 objects, page sizes from a few KB
// to ~5 MB with a median near 1 MB, objects spread over many domains, JS
// files whose execution discovers further objects, and post-onload async
// loads whose inter-arrival times are under 5 s for ~95% of objects (§4.5).
//
// Pages are emitted as real HTML/CSS/mini-JS text: the browsing engine
// discovers objects by actually parsing and executing this content, exactly
// as the PARCEL proxy and clients do.
package webgen

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"

	"github.com/parcel-go/parcel/internal/httpsim"
)

// FixedRandValue is the constant that replaces rand() under the replay
// rewrite (§7.3); it must match the browser engine's FixedRandom builtin.
const FixedRandValue = 4

// Page is one generated page with every object it will ever request.
type Page struct {
	Name    string
	MainURL string
	Objects []httpsim.Object
	Domains []string

	// ObjectCount includes the main HTML.
	ObjectCount int
	// TotalBytes is the sum of object body sizes.
	TotalBytes int64
	// Interactive marks pages carrying a local-interaction gallery (§8.2).
	Interactive bool
	// HasRandomURL marks pages whose JS derives a randomized URL (§7.3).
	HasRandomURL bool
	// HasHTTPS marks pages referencing encrypted objects that take the
	// client's direct fallback path (§4.5).
	HasHTTPS bool

	// store is the page's cached origin store, shared by every topology
	// built for this page (the Generate cache populates it; origin servers
	// only read it). Hand-built pages leave it nil.
	store httpsim.MapStore
}

// Store returns the page's objects as a freshly built origin store. The
// result is the caller's to mutate (tests extend it with extra endpoints).
func (p Page) Store() httpsim.MapStore {
	m := make(httpsim.MapStore, len(p.Objects))
	for _, o := range p.Objects {
		m[o.URL] = o
	}
	return m
}

// SharedStore returns the page's prebuilt origin store, shared by every
// topology serving this page. The result is read-only: origin servers only
// look objects up, and mutating it would poison the generation cache. When
// the page has no prebuilt store, or Objects was extended after generation
// (the store would be stale), it falls back to a fresh Store build.
func (p Page) SharedStore() httpsim.MapStore {
	if p.store != nil && len(p.store) == len(p.Objects) {
		return p.store
	}
	return p.Store()
}

// Spec controls generation.
type Spec struct {
	Seed     int64
	NumPages int // defaults to 34, the paper's evaluation set size
}

// categories label pages the way the paper describes its set ("news, sports,
// photo streaming, business and science").
var categories = []string{"news", "sports", "photos", "business", "science", "shopping", "video", "reference"}

// maxPageCacheEntries bounds the generated-set cache; sweeps use a handful
// of distinct specs, so an overflow means something is generating specs in a
// loop and the epoch is simply dropped (mirroring the browser artifact
// cache).
const maxPageCacheEntries = 64

// pageCache memoizes Generate by spec: generation is deterministic, so every
// scheme, round, and worker of a sweep shares one immutable page set (and
// one origin store per page) instead of regenerating megabytes of identical
// HTML/CSS/JS per figure. Spec is comparable, so it keys the map directly.
var pageCache struct {
	sync.Mutex
	m map[Spec][]Page
}

// Generate produces the full page set for a spec. The result is shared and
// must be treated as immutable — every object body, store, and page slice
// may be aliased by concurrent simulations.
func Generate(spec Spec) []Page {
	if spec.NumPages <= 0 {
		spec.NumPages = 34
	}
	pageCache.Lock()
	defer pageCache.Unlock()
	if pages, ok := pageCache.m[spec]; ok {
		return pages
	}
	pages := generateSet(spec)
	if pageCache.m == nil || len(pageCache.m) >= maxPageCacheEntries {
		pageCache.m = make(map[Spec][]Page, 8)
	}
	pageCache.m[spec] = pages
	return pages
}

func generateSet(spec Spec) []Page {
	rng := rand.New(rand.NewSource(spec.Seed))
	pages := make([]Page, 0, spec.NumPages)
	for i := 0; i < spec.NumPages; i++ {
		name := fmt.Sprintf("%s%02d", categories[i%len(categories)], i)
		cfg := pageConfig{
			name: name,
			// Page 1 of every set is the interactive shop page used for the
			// §8.2 session experiments.
			interactive: i == 1,
			// A few pages use randomized URLs, exercising the §7.3 rewrite
			// and the missing-object fallback.
			randomURL: i%11 == 3,
			// A few pages carry encrypted beacons (§4.5 HTTPS fallback).
			https: i%7 == 2,
		}
		page := generatePage(rng, cfg)
		// Build the origin store once per page; every topology serving this
		// page shares it read-only.
		page.store = make(httpsim.MapStore, len(page.Objects))
		for _, o := range page.Objects {
			page.store[o.URL] = o
		}
		pages = append(pages, page)
	}
	return pages
}

// InteractivePage returns the first interactive page of the set.
func InteractivePage(pages []Page) Page {
	for _, p := range pages {
		if p.Interactive {
			return p
		}
	}
	panic("webgen: no interactive page in set")
}

type pageConfig struct {
	name        string
	interactive bool
	randomURL   bool
	https       bool
}

func generatePage(rng *rand.Rand, cfg pageConfig) Page {
	p := Page{
		Name:         cfg.name,
		Interactive:  cfg.interactive,
		HasRandomURL: cfg.randomURL,
		HasHTTPS:     cfg.https,
	}
	primary := "www." + cfg.name + ".com"
	p.MainURL = "http://" + primary + "/index.html"

	// Object-count category: calibrated so ~40% of pages have >= 100
	// objects (the paper's Alexa analysis, §2.1).
	var nObjects int
	switch u := rng.Float64(); {
	case u < 0.25:
		nObjects = 8 + rng.Intn(23) // 8..30
	case u < 0.60:
		nObjects = 30 + rng.Intn(70) // 30..99
	default:
		nObjects = 100 + rng.Intn(100) // 100..199
	}

	// Domains: primary + CDNs + third parties, growing with richness.
	nDomains := 3 + nObjects/12
	if nDomains > 22 {
		nDomains = 22
	}
	domains := []string{primary}
	for i := 1; i < nDomains; i++ {
		switch {
		case i <= 2:
			domains = append(domains, fmt.Sprintf("cdn%d.%s.com", i, cfg.name))
		case i%3 == 0:
			domains = append(domains, fmt.Sprintf("ads%d.adnet%d.net", i, i%5))
		case i%3 == 1:
			domains = append(domains, fmt.Sprintf("static%d.%s.com", i, cfg.name))
		default:
			domains = append(domains, fmt.Sprintf("widgets%d.tpsvc%d.org", i, i%4))
		}
	}
	p.Domains = domains

	// Partition the object budget.
	nCSS := 2 + rng.Intn(4) // 2..5
	nSyncJS := 3 + nObjects/8
	nAsyncJS := 1 + rng.Intn(3)  // async-attribute scripts
	nTimerAds := 1 + rng.Intn(2) // images fetched by post-onload timers
	nJSDyn := nObjects / 5       // images discovered only by executing JS
	nImages := nObjects - 1 - nCSS - nSyncJS - nAsyncJS - nTimerAds - nJSDyn
	if nImages < 2 {
		nImages = 2
	}

	pickDomain := func(weightPrimary float64) string {
		if rng.Float64() < weightPrimary {
			return domains[rng.Intn(min(3, len(domains)))]
		}
		return domains[rng.Intn(len(domains))]
	}

	var (
		cssURLs     []string
		syncJSURLs  []string
		asyncJSURLs []string
		imgURLs     []string
	)

	// Plain images referenced from the HTML body.
	for i := 0; i < nImages; i++ {
		u := fmt.Sprintf("http://%s/img/%s_%d.jpg", pickDomain(0.55), cfg.name, i)
		imgURLs = append(imgURLs, u)
		p.Objects = append(p.Objects, httpsim.Object{
			URL: u, ContentType: "image/jpeg", Body: filler(imageSize(rng)),
		})
	}

	// CSS files, each pulling a few background assets; the first may import
	// another sheet.
	for i := 0; i < nCSS; i++ {
		domain := pickDomain(0.8)
		u := fmt.Sprintf("http://%s/css/style%d.css", domain, i)
		cssURLs = append(cssURLs, u)
		var refs []string
		nBg := 1 + rng.Intn(3)
		for j := 0; j < nBg; j++ {
			bg := fmt.Sprintf("http://%s/img/bg%d_%d.png", domain, i, j)
			refs = append(refs, bg)
			p.Objects = append(p.Objects, httpsim.Object{
				URL: bg, ContentType: "image/png", Body: filler(2000 + rng.Intn(18000)),
			})
		}
		var imp string
		if i == 0 {
			imp = fmt.Sprintf("http://%s/css/reset.css", domain)
			p.Objects = append(p.Objects, httpsim.Object{
				URL: imp, ContentType: "text/css", Body: []byte(cssBody(rng, nil, "", 3000)),
			})
		}
		p.Objects = append(p.Objects, httpsim.Object{
			URL: u, ContentType: "text/css", Body: []byte(cssBody(rng, refs, imp, 4000+rng.Intn(24000))),
		})
	}

	// Synchronous JS: some files fetch dynamic objects when executed — the
	// dependency chains that inflate DIR's load time (§2.1). The first
	// script additionally document.writes a loader script (a depth-2 chain:
	// HTML → app0.js → loader.js → images), the pattern that forces extra
	// serial round trips in a traditional browser.
	dynPerJS := 0
	if nSyncJS > 0 {
		dynPerJS = nJSDyn / nSyncJS
	}
	dynLeft := nJSDyn
	for i := 0; i < nSyncJS; i++ {
		domain := pickDomain(0.7)
		u := fmt.Sprintf("http://%s/js/app%d.js", domain, i)
		syncJSURLs = append(syncJSURLs, u)
		nDyn := dynPerJS
		if i == nSyncJS-1 {
			nDyn = dynLeft
		}
		dynLeft -= nDyn
		var fetches []string
		for j := 0; j < nDyn; j++ {
			du := fmt.Sprintf("http://%s/dyn/%s_%d_%d.png", pickDomain(0.5), cfg.name, i, j)
			fetches = append(fetches, du)
			p.Objects = append(p.Objects, httpsim.Object{
				URL: du, ContentType: "image/png", Body: filler(imageSize(rng)),
			})
		}
		extra := ""
		if i == 0 {
			loaderDomain := pickDomain(0.4)
			loaderURL := fmt.Sprintf("http://%s/js/loader_%s.js", loaderDomain, cfg.name)
			var loaderFetches []string
			nLoader := 2 + rng.Intn(3)
			for j := 0; j < nLoader; j++ {
				lu := fmt.Sprintf("http://%s/dyn/loaded_%s_%d.png", loaderDomain, cfg.name, j)
				loaderFetches = append(loaderFetches, lu)
				p.Objects = append(p.Objects, httpsim.Object{
					URL: lu, ContentType: "image/png", Body: filler(imageSize(rng)),
				})
			}
			p.Objects = append(p.Objects, httpsim.Object{
				URL: loaderURL, ContentType: "application/javascript",
				Body: []byte(jsBody(rng, loaderFetches, 1200)),
			})
			extra = fmt.Sprintf("document.write(\"<script src='%s'></\" + \"script>\");\n", loaderURL)
		}
		p.Objects = append(p.Objects, httpsim.Object{
			URL: u, ContentType: "application/javascript",
			Body: []byte(extra + jsBody(rng, fetches, 2000+rng.Intn(30000))),
		})
	}

	// Async-attribute scripts: load ad frames without blocking onload.
	for i := 0; i < nAsyncJS; i++ {
		domain := domains[len(domains)-1-i%len(domains)]
		u := fmt.Sprintf("http://%s/js/widget%d.js", domain, i)
		asyncJSURLs = append(asyncJSURLs, u)
		ad := fmt.Sprintf("http://%s/ad/creative%d.gif", domain, i)
		p.Objects = append(p.Objects, httpsim.Object{
			URL: ad, ContentType: "image/gif", Body: filler(5000 + rng.Intn(40000)),
		})
		p.Objects = append(p.Objects, httpsim.Object{
			URL: u, ContentType: "application/javascript",
			Body: []byte(jsBody(rng, []string{ad}, 1500+rng.Intn(6000))),
		})
	}

	// Post-onload timer ads: ~95% under 5 s (the paper's inter-arrival
	// statistic behind the proxy completion heuristic, §4.5).
	var timerStmts []string
	for i := 0; i < nTimerAds; i++ {
		delayMS := 200 + rng.Intn(2300)
		if rng.Float64() < 0.05 {
			delayMS = 4000 + rng.Intn(2500)
		}
		au := fmt.Sprintf("http://%s/ad/late%d.png", pickDomain(0.2), i)
		p.Objects = append(p.Objects, httpsim.Object{
			URL: au, ContentType: "image/png", Body: filler(4000 + rng.Intn(30000)),
		})
		timerStmts = append(timerStmts,
			fmt.Sprintf("setTimeout(%d, function() { fetch(%q); });", delayMS, au))
	}

	// Randomized-URL script (§7.3): the URL derives from rand(); under the
	// replay rewrite both proxy and client compute ...r=FixedRandValue.
	if cfg.randomURL {
		ru := fmt.Sprintf("http://%s/track/pixel_r%d.gif", domains[len(domains)-1], FixedRandValue)
		p.Objects = append(p.Objects, httpsim.Object{
			URL: ru, ContentType: "image/gif", Body: filler(800),
		})
		base := fmt.Sprintf("http://%s/track/pixel_r", domains[len(domains)-1])
		timerStmts = append(timerStmts,
			fmt.Sprintf(`fetch(%q + rand(10) + ".gif");`, base))
	}

	// Interactive gallery (§8.2): preload product images at first download;
	// clicks cycle through them locally.
	var galleryStmts []string
	if cfg.interactive {
		n := GalleryImages
		var urls []string
		for i := 0; i < n; i++ {
			gu := fmt.Sprintf("http://cdn1.%s.com/products/item%d.jpg", cfg.name, i)
			urls = append(urls, gu)
			p.Objects = append(p.Objects, httpsim.Object{
				URL: gu, ContentType: "image/jpeg", Body: filler(30000 + rng.Intn(30000)),
			})
		}
		galleryStmts = append(galleryStmts, "var gallery_idx = 0;")
		for _, gu := range urls {
			galleryStmts = append(galleryStmts, fmt.Sprintf("fetch(%q);", gu))
		}
		galleryStmts = append(galleryStmts, fmt.Sprintf(`
onEvent("click", "gallery-next", function() {
  gallery_idx = (gallery_idx + 1) %% %d;
  document.hide("product-" + gallery_idx);
  document.show("product-" + gallery_idx);
});`, n))
	}

	// Encrypted beacons: the proxy cannot parse or push these; the client
	// fetches them over its direct path (§4.5 fallback).
	var httpsImgs []string
	if cfg.https {
		for i := 0; i < 1+rng.Intn(2); i++ {
			hu := fmt.Sprintf("https://%s/secure/beacon%d.gif", domains[min(1, len(domains)-1)], i)
			httpsImgs = append(httpsImgs, hu)
			p.Objects = append(p.Objects, httpsim.Object{
				URL: hu, ContentType: "image/gif", Body: filler(900 + rng.Intn(2000)),
			})
		}
	}
	imgURLs = append(imgURLs, httpsImgs...)

	inline := strings.Join(append(timerStmts, galleryStmts...), "\n")
	htmlSize := 15000 + rng.Intn(60000)
	html := htmlBody(rng, cssURLs, syncJSURLs, asyncJSURLs, imgURLs, inline, htmlSize)
	p.Objects = append(p.Objects, httpsim.Object{
		URL: p.MainURL, ContentType: "text/html", Body: []byte(html),
	})

	p.ObjectCount = len(p.Objects)
	for _, o := range p.Objects {
		p.TotalBytes += int64(len(o.Body))
	}
	return p
}

// GalleryImages is the product-gallery size of the interactive page.
const GalleryImages = 8

// imageSize draws from a clamped lognormal whose median sits near 10 KB —
// small-to-moderate objects, per the paper's object-size analysis.
func imageSize(rng *rand.Rand) int {
	v := math.Exp(math.Log(10_000) + rng.NormFloat64()*1.2)
	if v < 300 {
		v = 300
	}
	if v > 1_000_000 {
		v = 1_000_000
	}
	return int(v)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// fillerPool backs opaque object bodies (images, fonts): all slices alias one
// read-only buffer so a multi-megabyte page set stays cheap in memory.
var fillerPool = func() []byte {
	b := make([]byte, 1_200_000)
	for i := range b {
		b[i] = byte('A' + i%23)
	}
	return b
}()

func filler(n int) []byte {
	if n <= len(fillerPool) {
		return fillerPool[:n]
	}
	return make([]byte, n)
}

// htmlBody emits real markup referencing the page's resources, padded with
// content paragraphs to approximate targetSize.
func htmlBody(rng *rand.Rand, css, syncJS, asyncJS, imgs []string, inlineJS string, targetSize int) string {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html>\n<head>\n<title>generated page</title>\n")
	for _, u := range css {
		fmt.Fprintf(&b, "<link rel=\"stylesheet\" href=%q>\n", u)
	}
	for _, u := range syncJS {
		fmt.Fprintf(&b, "<script src=%q></script>\n", u)
	}
	for _, u := range asyncJS {
		fmt.Fprintf(&b, "<script src=%q async></script>\n", u)
	}
	b.WriteString("</head>\n<body>\n")
	if inlineJS != "" {
		fmt.Fprintf(&b, "<script>\n%s\n</script>\n", inlineJS)
	}
	// Interleave images with text content.
	for i, u := range imgs {
		fmt.Fprintf(&b, "<div class=\"story\"><img src=%q alt=\"img%d\">", u, i)
		b.WriteString("<p>")
		b.WriteString(loremSentence(rng))
		b.WriteString("</p></div>\n")
	}
	for b.Len() < targetSize {
		fmt.Fprintf(&b, "<p>%s</p>\n", loremSentence(rng))
	}
	b.WriteString("</body>\n</html>\n")
	return b.String()
}

// cssBody emits a stylesheet with the given url() references and optional
// @import, padded with rules to approximate targetSize.
func cssBody(rng *rand.Rand, assetRefs []string, importURL string, targetSize int) string {
	var b strings.Builder
	if importURL != "" {
		fmt.Fprintf(&b, "@import %q;\n", importURL)
	}
	for i, u := range assetRefs {
		fmt.Fprintf(&b, ".bg%d { background-image: url(%q); }\n", i, u)
	}
	i := 0
	for b.Len() < targetSize {
		fmt.Fprintf(&b, ".pad%d { margin: %dpx; padding: %dpx; color: #%06x; }\n",
			i, rng.Intn(40), rng.Intn(40), rng.Intn(0xffffff))
		i++
	}
	return b.String()
}

// jsBody emits a script that fetches the given URLs plus light computational
// work, padded with comments to approximate targetSize.
func jsBody(rng *rand.Rand, fetchURLs []string, targetSize int) string {
	var b strings.Builder
	b.WriteString("var acc = 0;\n")
	// Computational work scaling with script size: executing a framework-
	// sized script costs a 2012-class phone on the order of 100 ms.
	fmt.Fprintf(&b, "for (var i = 0; i < %d; i = i + 1) { acc = acc + i; }\n", targetSize/10+rng.Intn(60))
	for _, u := range fetchURLs {
		fmt.Fprintf(&b, "fetch(%q);\n", u)
	}
	b.WriteString("document.append(\"section\");\n")
	for b.Len() < targetSize {
		fmt.Fprintf(&b, "// %s\n", loremSentence(rng))
	}
	return b.String()
}

var loremWords = strings.Fields(`lorem ipsum dolor sit amet consectetur
adipiscing elit sed do eiusmod tempor incididunt ut labore et dolore magna
aliqua enim ad minim veniam quis nostrud exercitation ullamco laboris nisi
aliquip ex ea commodo consequat`)

func loremSentence(rng *rand.Rand) string {
	n := 8 + rng.Intn(14)
	words := make([]string, n)
	for i := range words {
		words[i] = loremWords[rng.Intn(len(loremWords))]
	}
	return strings.Join(words, " ")
}
