package resilience

import (
	"math/rand"
	"testing"
	"time"
)

func TestPolicyDefaults(t *testing.T) {
	p := Policy{}.WithDefaults()
	if p.Timeout != 10*time.Second || p.MaxRetries != 2 || p.BackoffBase != 50*time.Millisecond ||
		p.BackoffMax != 2*time.Second || p.FailureThreshold != 4 || p.OpenFor != 3*time.Second ||
		p.NegTTL != time.Second {
		t.Fatalf("unexpected defaults: %+v", p)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("defaults must validate: %v", err)
	}
	// Negative MaxRetries means "no retries", normalized to zero.
	if got := (Policy{MaxRetries: -1}.WithDefaults()).MaxRetries; got != 0 {
		t.Fatalf("MaxRetries -1 -> %d, want 0", got)
	}
}

func TestPolicyValidate(t *testing.T) {
	bad := []Policy{
		{Timeout: -1},
		{BackoffBase: -1},
		{BackoffMax: -1},
		{OpenFor: -1},
		{NegTTL: -1},
		{FailureThreshold: -2},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("policy %+v validated", p)
		}
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	p := Policy{}.WithDefaults()
	rng := rand.New(rand.NewSource(1))
	for attempt := 0; attempt <= 8; attempt++ {
		exp := p.BackoffBase << uint(maxInt(attempt, 1)-1)
		if exp > p.BackoffMax || exp <= 0 {
			exp = p.BackoffMax
		}
		for i := 0; i < 100; i++ {
			d := p.Backoff(attempt, rng)
			if d < exp/2 || d > exp {
				t.Fatalf("attempt %d: backoff %v outside [%v, %v]", attempt, d, exp/2, exp)
			}
		}
	}
}

func TestBackoffDeterministic(t *testing.T) {
	p := Policy{}.WithDefaults()
	a := rand.New(rand.NewSource(42))
	b := rand.New(rand.NewSource(42))
	for attempt := 1; attempt <= 5; attempt++ {
		if da, db := p.Backoff(attempt, a), p.Backoff(attempt, b); da != db {
			t.Fatalf("attempt %d: same seed diverged: %v vs %v", attempt, da, db)
		}
	}
}

func TestBreakerOpensAtThreshold(t *testing.T) {
	b := NewBreaker(Policy{FailureThreshold: 3})
	now := time.Second
	for i := 0; i < 2; i++ {
		b.Failure(now)
		if !b.Allow(now) {
			t.Fatalf("closed breaker rejected after %d failures", i+1)
		}
	}
	b.Failure(now)
	if b.State(now) != Open {
		t.Fatalf("state after threshold = %v, want open", b.State(now))
	}
	if b.Allow(now) {
		t.Fatal("open breaker admitted a request")
	}
	if b.Opens() != 1 || b.FastFails() != 1 {
		t.Fatalf("opens=%d fastFails=%d, want 1/1", b.Opens(), b.FastFails())
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	b := NewBreaker(Policy{FailureThreshold: 2})
	now := time.Second
	b.Failure(now)
	b.Success(now)
	b.Failure(now)
	if b.State(now) != Closed {
		t.Fatalf("streak not reset by success: state %v", b.State(now))
	}
}

func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	p := Policy{FailureThreshold: 1, OpenFor: time.Second}
	b := NewBreaker(p)
	b.Failure(0)
	if b.Allow(500 * time.Millisecond) {
		t.Fatal("admitted during cool-down")
	}
	// Cool-down elapsed: exactly one probe admitted.
	if !b.Allow(time.Second) {
		t.Fatal("probe rejected after cool-down")
	}
	if b.State(time.Second) != HalfOpen {
		t.Fatalf("state = %v, want half-open", b.State(time.Second))
	}
	if b.Allow(time.Second) {
		t.Fatal("second concurrent probe admitted")
	}
	// Probe success closes.
	b.Success(time.Second + time.Millisecond)
	if b.State(time.Second+time.Millisecond) != Closed {
		t.Fatal("probe success did not close breaker")
	}
	if !b.Allow(time.Second + time.Millisecond) {
		t.Fatal("closed breaker rejected")
	}
}

func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	p := Policy{FailureThreshold: 1, OpenFor: time.Second}
	b := NewBreaker(p)
	b.Failure(0)
	if !b.Allow(time.Second) {
		t.Fatal("probe rejected")
	}
	b.Failure(time.Second)
	if b.State(time.Second) != Open {
		t.Fatalf("probe failure left state %v, want open", b.State(time.Second))
	}
	if b.Opens() != 2 {
		t.Fatalf("opens = %d, want 2", b.Opens())
	}
	// The new cool-down starts at the probe failure.
	if b.Allow(time.Second + 500*time.Millisecond) {
		t.Fatal("admitted during second cool-down")
	}
	if !b.Allow(2 * time.Second) {
		t.Fatal("second probe rejected after second cool-down")
	}
}

func TestBreakerStragglingFailureWhileOpen(t *testing.T) {
	b := NewBreaker(Policy{FailureThreshold: 1, OpenFor: time.Second})
	b.Failure(0)
	b.Failure(100 * time.Millisecond) // straggler from a request issued pre-open
	if b.Opens() != 1 {
		t.Fatalf("straggling failure re-opened: opens = %d", b.Opens())
	}
	// Cool-down still anchored at the first open.
	if !b.Allow(time.Second) {
		t.Fatal("probe rejected at original cool-down expiry")
	}
}

func TestBreakerStateResolvesElapsedCooldown(t *testing.T) {
	b := NewBreaker(Policy{FailureThreshold: 1, OpenFor: time.Second})
	b.Failure(0)
	if b.State(2 * time.Second) != HalfOpen {
		t.Fatal("State did not resolve elapsed cool-down to half-open")
	}
	// State must not consume the probe slot.
	if !b.Allow(2 * time.Second) {
		t.Fatal("State consumed the probe")
	}
}

func TestGroupPerOriginIsolation(t *testing.T) {
	g := NewGroup(Policy{FailureThreshold: 1, OpenFor: time.Second})
	g.For("sick.example").Failure(0)
	if g.For("sick.example").Allow(0) {
		t.Fatal("sick origin admitted")
	}
	if !g.For("healthy.example").Allow(0) {
		t.Fatal("healthy origin rejected by sick origin's breaker")
	}
	if g.For("sick.example") != g.For("sick.example") {
		t.Fatal("For not stable per origin")
	}
	if g.Opens() != 1 || g.FastFails() != 1 {
		t.Fatalf("group opens=%d fastFails=%d, want 1/1", g.Opens(), g.FastFails())
	}
	if g.Policy().FailureThreshold != 1 {
		t.Fatalf("group policy lost overrides: %+v", g.Policy())
	}
}

func TestGroupConcurrentAccess(t *testing.T) {
	g := NewGroup(Policy{})
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func(i int) {
			defer func() { done <- struct{}{} }()
			origins := [...]string{"a", "b", "c"}
			for j := 0; j < 200; j++ {
				b := g.For(origins[(i+j)%len(origins)])
				now := time.Duration(j) * time.Millisecond
				if b.Allow(now) {
					if j%3 == 0 {
						b.Failure(now)
					} else {
						b.Success(now)
					}
				}
			}
		}(i)
	}
	for i := 0; i < 8; i++ {
		<-done
	}
}

func TestStateString(t *testing.T) {
	if Closed.String() != "closed" || Open.String() != "open" || HalfOpen.String() != "half-open" {
		t.Fatal("State strings wrong")
	}
	if State(9).String() != "State(9)" {
		t.Fatalf("unknown state string: %s", State(9))
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
