// Package resilience is the shared origin-resilience layer behind both
// arms' proxy fetch paths: a per-request retry budget with jittered
// exponential backoff and a per-origin circuit breaker with half-open
// probing. One sick origin must not occupy a proxy shard or starve the
// sessions joined on its single-flight fetch — after a handful of
// consecutive failures the breaker opens and requests fail fast (the cache's
// serve-stale path takes over), and after a cool-down a single probe decides
// whether the origin is back.
//
// The package is deliberately clock-free: every method takes the caller's
// notion of "now" (virtual time on the simulation arm, wall-clock offset on
// the real-TCP arm) and every random draw comes from a caller-owned seeded
// source. That keeps it in parcel-vet's sim-deterministic table — the fleet
// simulation threads the virtual clock through it and reproduces
// bit-identically from a seed.
package resilience

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// ErrOpen is returned (wrapped) by callers when a breaker rejects a request
// without contacting the origin.
var ErrOpen = errors.New("resilience: circuit open")

// Policy tunes the resilient fetch path. The zero value of each field takes
// the default noted on it; apply WithDefaults before use.
type Policy struct {
	// Timeout is the per-request deadline the driver enforces on each origin
	// attempt (default 10 s). The package never sleeps or arms timers itself;
	// drivers translate Timeout into a context deadline (real arm) or a
	// scheduled event (simulation arm).
	Timeout time.Duration
	// MaxRetries is how many times a failed attempt is re-issued before the
	// failure is terminal (default 2, so 3 attempts total). Negative disables
	// retries.
	MaxRetries int
	// BackoffBase and BackoffMax bound the jittered exponential delay between
	// attempts (defaults 50 ms and 2 s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// FailureThreshold is how many consecutive failures open an origin's
	// breaker (default 4).
	FailureThreshold int
	// OpenFor is the open-state cool-down: while it runs every request to the
	// origin fails fast, after it one half-open probe is admitted (default
	// 3 s).
	OpenFor time.Duration
	// NegTTL is how long the cache negatively remembers a hard failure
	// (serve-stale without re-contacting the origin); drivers hand it to
	// objcache (default 1 s).
	NegTTL time.Duration
}

// WithDefaults returns p with zero fields replaced by the defaults.
func (p Policy) WithDefaults() Policy {
	if p.Timeout == 0 {
		p.Timeout = 10 * time.Second
	}
	if p.MaxRetries == 0 {
		p.MaxRetries = 2
	}
	if p.MaxRetries < 0 {
		p.MaxRetries = 0
	}
	if p.BackoffBase == 0 {
		p.BackoffBase = 50 * time.Millisecond
	}
	if p.BackoffMax == 0 {
		p.BackoffMax = 2 * time.Second
	}
	if p.FailureThreshold == 0 {
		p.FailureThreshold = 4
	}
	if p.OpenFor == 0 {
		p.OpenFor = 3 * time.Second
	}
	if p.NegTTL == 0 {
		p.NegTTL = time.Second
	}
	return p
}

// Validate rejects nonsensical configurations.
func (p Policy) Validate() error {
	if p.Timeout < 0 || p.BackoffBase < 0 || p.BackoffMax < 0 || p.OpenFor < 0 || p.NegTTL < 0 {
		return fmt.Errorf("resilience: negative duration in policy %+v", p)
	}
	if p.FailureThreshold < 0 {
		return fmt.Errorf("resilience: negative FailureThreshold %d", p.FailureThreshold)
	}
	return nil
}

// Backoff returns the jittered delay before re-issuing attempt number
// attempt (1 = first retry): exponential in the attempt, capped at
// BackoffMax, with half the span jittered so a fleet of retriers never
// synchronizes. rng is caller-owned — the simulation arm passes the
// simulator's seeded source, so retry timing is part of the reproducible
// schedule.
func (p Policy) Backoff(attempt int, rng *rand.Rand) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	d := p.BackoffBase << uint(attempt-1)
	if d > p.BackoffMax || d <= 0 {
		d = p.BackoffMax
	}
	half := int64(d / 2)
	return time.Duration(half + rng.Int63n(half+1))
}

// State is a breaker's position in its three-state machine.
type State int

const (
	// Closed admits every request; consecutive failures are counted.
	Closed State = iota
	// Open fails every request fast until the cool-down elapses.
	Open
	// HalfOpen admits exactly one probe; its outcome closes or re-opens.
	HalfOpen
)

func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Breaker is one origin's circuit breaker. All methods are safe for
// concurrent use; time is always the caller's.
type Breaker struct {
	mu       sync.Mutex
	policy   Policy
	state    State
	fails    int           // consecutive failures while closed
	openedAt time.Duration // when the breaker last opened
	probing  bool          // a half-open probe is in flight

	opens     int64 // closed/half-open -> open transitions
	fastFails int64 // Allow rejections
}

// NewBreaker builds a breaker under p (defaults applied).
func NewBreaker(p Policy) *Breaker {
	return &Breaker{policy: p.WithDefaults()}
}

// Allow reports whether a request may proceed at now. An open breaker whose
// cool-down has elapsed transitions to half-open and admits the caller as
// the probe; further callers are rejected until the probe settles.
func (b *Breaker) Allow(now time.Duration) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		if now-b.openedAt < b.policy.OpenFor {
			b.fastFails++
			return false
		}
		b.state = HalfOpen
		b.probing = true
		return true
	default: // HalfOpen
		if b.probing {
			b.fastFails++
			return false
		}
		b.probing = true
		return true
	}
}

// Success records a successful attempt: the breaker closes and the failure
// streak resets.
func (b *Breaker) Success(now time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = Closed
	b.fails = 0
	b.probing = false
}

// Failure records a failed attempt. A closed breaker opens at the failure
// threshold; a half-open probe failure re-opens immediately.
func (b *Breaker) Failure(now time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case HalfOpen:
		b.open(now)
	case Closed:
		b.fails++
		if b.fails >= b.policy.FailureThreshold {
			b.open(now)
		}
	default: // Open: a straggling failure from before the transition
	}
}

// open must run with b.mu held.
func (b *Breaker) open(now time.Duration) {
	b.state = Open
	b.openedAt = now
	b.fails = 0
	b.probing = false
	b.opens++
}

// State returns the breaker's position at now (resolving an elapsed
// cool-down to HalfOpen without admitting a probe).
func (b *Breaker) State(now time.Duration) State {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == Open && now-b.openedAt >= b.policy.OpenFor {
		return HalfOpen
	}
	return b.state
}

// Opens returns how many times the breaker has opened.
func (b *Breaker) Opens() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}

// FastFails returns how many requests Allow rejected without origin contact.
func (b *Breaker) FastFails() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.fastFails
}

// Group keys breakers by origin (domain), creating them on demand under one
// policy. Safe for concurrent use.
type Group struct {
	mu     sync.Mutex
	policy Policy
	m      map[string]*Breaker
}

// NewGroup builds an empty breaker group under p (defaults applied).
func NewGroup(p Policy) *Group {
	return &Group{policy: p.WithDefaults(), m: make(map[string]*Breaker)}
}

// Policy returns the group's (defaulted) policy.
func (g *Group) Policy() Policy {
	return g.policy
}

// For returns origin's breaker, creating it on first use.
func (g *Group) For(origin string) *Breaker {
	g.mu.Lock()
	defer g.mu.Unlock()
	b, ok := g.m[origin]
	if !ok {
		b = NewBreaker(g.policy)
		g.m[origin] = b
	}
	return b
}

// Opens sums open transitions across the group's breakers.
func (g *Group) Opens() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	var n int64
	for _, b := range g.m {
		n += b.Opens()
	}
	return n
}

// FastFails sums Allow rejections across the group's breakers.
func (g *Group) FastFails() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	var n int64
	for _, b := range g.m {
		n += b.FastFails()
	}
	return n
}
