package cssparse

import (
	"reflect"
	"testing"
)

func TestURLForms(t *testing.T) {
	css := `
body { background: url(bg1.png); }
.a { background-image: url('bg2.png'); }
.b { background-image: url("http://cdn.x.com/bg3.png"); }
@font-face { src: url( /fonts/f.woff ); }
`
	got := AssetURLs(css, "http://www.x.com/css/main.css")
	want := []string{
		"http://www.x.com/css/bg1.png",
		"http://www.x.com/css/bg2.png",
		"http://cdn.x.com/bg3.png",
		"http://www.x.com/fonts/f.woff",
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestImports(t *testing.T) {
	css := `@import "reset.css";
@import url(theme.css);
body { color: red; }`
	refs := Refs(css, "http://x.com/css/a.css")
	if len(refs) != 2 {
		t.Fatalf("refs = %+v", refs)
	}
	for _, r := range refs {
		if !r.Import {
			t.Fatalf("non-import ref: %+v", r)
		}
	}
	if refs[0].URL != "http://x.com/css/reset.css" || refs[1].URL != "http://x.com/css/theme.css" {
		t.Fatalf("refs = %+v", refs)
	}
}

func TestCommentsSkipped(t *testing.T) {
	css := `/* url(ghost.png) */ .x { background: url(real.png); }`
	got := AssetURLs(css, "http://x.com/")
	if len(got) != 1 || got[0] != "http://x.com/real.png" {
		t.Fatalf("got %v", got)
	}
}

func TestDataURIIgnored(t *testing.T) {
	css := `.x { background: url(data:image/png;base64,AAAA); }`
	if got := AssetURLs(css, "http://x.com/"); len(got) != 0 {
		t.Fatalf("data URI not ignored: %v", got)
	}
}

func TestEmptyAndNoRefs(t *testing.T) {
	if got := Refs("", "http://x.com/"); got != nil {
		t.Fatalf("empty css: %v", got)
	}
	if got := Refs("body { color: blue }", "http://x.com/"); got != nil {
		t.Fatalf("plain css: %v", got)
	}
}

func TestUnterminatedURLTolerated(t *testing.T) {
	// Must not panic or loop forever.
	_ = Refs(".x { background: url(broken", "http://x.com/")
	_ = Refs("/* unterminated comment", "http://x.com/")
	_ = Refs(`@import "unterminated`, "http://x.com/")
}

func TestMixedContent(t *testing.T) {
	css := `@import url(base.css);
.hero { background: url("hero.jpg") no-repeat; }
/* decorative: url(skip.png) */
.icon { background: url(icons/sprite.png) -10px 0; }`
	refs := Refs(css, "http://site.com/styles/app.css")
	if len(refs) != 3 {
		t.Fatalf("refs = %+v", refs)
	}
	imports, assets := 0, 0
	for _, r := range refs {
		if r.Import {
			imports++
		} else {
			assets++
		}
	}
	if imports != 1 || assets != 2 {
		t.Fatalf("imports=%d assets=%d", imports, assets)
	}
}
