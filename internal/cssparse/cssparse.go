// Package cssparse extracts the external object references a stylesheet
// pulls in: url(...) tokens (background images, fonts) and @import rules.
// Stylesheet-referenced objects are part of the dependency chains that force
// extra round trips in a traditional browser (§2.1) and that the PARCEL
// proxy resolves on its fast path.
package cssparse

import (
	"strings"

	"github.com/parcel-go/parcel/internal/htmlparse"
)

// Ref is a reference found in a stylesheet.
type Ref struct {
	URL    string
	Import bool // true for @import (another stylesheet), false for url() assets
}

// Refs scans CSS source and returns every external reference resolved
// against baseURL. Comments are skipped; quoting styles url(x), url('x') and
// url("x") are handled; data: and fragment references are ignored.
func Refs(src string, baseURL string) []Ref {
	var out []Ref
	s := stripComments(src)
	i := 0
	for i < len(s) {
		if imp, n := matchImport(s[i:]); n > 0 {
			if u := resolve(baseURL, imp); u != "" {
				out = append(out, Ref{URL: u, Import: true})
			}
			i += n
			continue
		}
		if raw, n := matchURL(s[i:]); n > 0 {
			if u := resolve(baseURL, raw); u != "" {
				out = append(out, Ref{URL: u})
			}
			i += n
			continue
		}
		i++
	}
	return out
}

// AssetURLs returns just the non-import reference URLs.
func AssetURLs(src, baseURL string) []string {
	var out []string
	for _, r := range Refs(src, baseURL) {
		if !r.Import {
			out = append(out, r.URL)
		}
	}
	return out
}

func stripComments(s string) string {
	// Most generated stylesheets carry no comments at all; return the input
	// unchanged (no copy) in that case.
	if !strings.Contains(s, "/*") {
		return s
	}
	var b strings.Builder
	for {
		start := strings.Index(s, "/*")
		if start < 0 {
			b.WriteString(s)
			return b.String()
		}
		b.WriteString(s[:start])
		end := strings.Index(s[start+2:], "*/")
		if end < 0 {
			return b.String()
		}
		s = s[start+2+end+2:]
	}
}

// matchImport matches a leading `@import "x"` or `@import url(x)` and
// returns the referenced URL and the matched length (0 if no match).
func matchImport(s string) (url string, n int) {
	const kw = "@import"
	if !strings.HasPrefix(s, kw) {
		return "", 0
	}
	i := len(kw)
	for i < len(s) && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n') {
		i++
	}
	if i >= len(s) {
		return "", 0
	}
	if strings.HasPrefix(s[i:], "url(") {
		raw, m := matchURL(s[i:])
		return raw, i + m
	}
	if s[i] == '"' || s[i] == '\'' {
		quote := s[i]
		i++
		start := i
		for i < len(s) && s[i] != quote {
			i++
		}
		if i >= len(s) {
			return "", 0
		}
		return s[start:i], i + 1
	}
	return "", 0
}

// matchURL matches a leading `url(...)` and returns the unquoted content and
// matched length (0 if no match).
func matchURL(s string) (url string, n int) {
	if !strings.HasPrefix(s, "url(") {
		return "", 0
	}
	i := len("url(")
	end := strings.IndexByte(s[i:], ')')
	if end < 0 {
		return "", 0
	}
	inner := strings.TrimSpace(s[i : i+end])
	inner = strings.Trim(inner, `"'`)
	return inner, i + end + 1
}

func resolve(base, ref string) string {
	if strings.HasPrefix(ref, "data:") {
		return ""
	}
	return htmlparse.ResolveURL(base, ref)
}
