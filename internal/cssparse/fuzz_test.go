package cssparse

import (
	"strings"
	"testing"

	"github.com/parcel-go/parcel/internal/webgen"
)

// FuzzRefs drives the stylesheet scanner with arbitrary text. Every
// reference that comes back must be an absolute http(s) URL (never a data:
// URI or fragment), and @import/url() classification must be consistent —
// the proxy's dependency resolution trusts both properties.
//
// Seeds are the generator's real CSS output plus edge-case fragments.
func FuzzRefs(f *testing.F) {
	for _, page := range webgen.Generate(webgen.Spec{Seed: 77, NumPages: 2}) {
		for _, obj := range page.Objects {
			if obj.ContentType == "text/css" {
				f.Add(string(obj.Body))
			}
		}
	}
	for _, s := range []string{
		"",
		"body { background: url(bg.png); }",
		`@import "more.css"; a { color: red }`,
		"@import url('deep/sheet.css');",
		"/* url(commented.png) */ div { background: url( 'spaced.gif' ) }",
		"div { background: url(data:image/png;base64,AAAA) }",
		"@import url(",
		"url()",
		"/* unterminated comment url(x.png)",
		"@import \xff'\x00broken",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		for _, r := range Refs(src, "http://x.com/css/site.css") {
			if r.URL == "" {
				t.Fatal("Refs returned empty URL")
			}
			if !strings.HasPrefix(r.URL, "http://") && !strings.HasPrefix(r.URL, "https://") {
				t.Fatalf("Refs returned non-absolute URL %q", r.URL)
			}
			if strings.HasPrefix(r.URL, "http://x.com/css/data:") {
				t.Fatalf("data: URI leaked through resolution: %q", r.URL)
			}
		}
		assets := AssetURLs(src, "http://x.com/css/site.css")
		for _, u := range assets {
			if u == "" {
				t.Fatal("AssetURLs returned empty URL")
			}
		}
	})
}
