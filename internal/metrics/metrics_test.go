package metrics

import (
	"strings"
	"testing"
	"time"

	"github.com/parcel-go/parcel/internal/radio"
	"github.com/parcel-go/parcel/internal/trace"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func capture() *trace.Recorder {
	var r trace.Recorder
	r.Record(trace.Packet{At: ms(0), Size: 100, Dir: trace.Up, Kind: trace.KindSYN})
	r.Record(trace.Packet{At: ms(80), Size: 1500, Dir: trace.Down, Kind: trace.KindData, Label: "obj"})
	r.Record(trace.Packet{At: ms(200), Size: 1500, Dir: trace.Down, Kind: trace.KindData, Label: "obj"})
	r.Record(trace.Packet{At: ms(5200), Size: 160, Dir: trace.Down, Kind: trace.KindData, Label: "ctl:complete"})
	return &r
}

func TestFromTraceBasics(t *testing.T) {
	var run PageRun
	FromTrace(&run, capture(), ms(250), radio.DefaultLTE(), nil)
	if run.OLT != ms(250) {
		t.Fatalf("OLT = %v", run.OLT)
	}
	// Without a filter, the control packet counts as the trace end.
	if run.TLT != ms(5200) {
		t.Fatalf("TLT = %v", run.TLT)
	}
	if run.BytesDown != 3160 || run.BytesUp != 100 {
		t.Fatalf("bytes = %d down / %d up", run.BytesDown, run.BytesUp)
	}
	if run.RadioJ <= 0 {
		t.Fatal("no radio energy")
	}
}

func TestFromTraceControlFilter(t *testing.T) {
	var filtered, unfiltered PageRun
	keep := func(p trace.Packet) bool { return !strings.HasPrefix(p.Label, "ctl:") }
	FromTrace(&filtered, capture(), ms(250), radio.DefaultLTE(), keep)
	FromTrace(&unfiltered, capture(), ms(250), radio.DefaultLTE(), nil)
	if filtered.TLT != ms(200) {
		t.Fatalf("filtered TLT = %v, want 200ms", filtered.TLT)
	}
	// The energy window follows the filtered TLT, so the late control blip
	// (and the idle gap before it) is excluded.
	if filtered.RadioJ >= unfiltered.RadioJ {
		t.Fatalf("filtered energy %.3f >= unfiltered %.3f", filtered.RadioJ, unfiltered.RadioJ)
	}
	if filtered.Radio.Horizon != ms(200) {
		t.Fatalf("horizon = %v", filtered.Radio.Horizon)
	}
}

func TestFromTraceEmptyCapture(t *testing.T) {
	var run PageRun
	FromTrace(&run, &trace.Recorder{}, 0, radio.DefaultLTE(), nil)
	if run.TLT != 0 || run.RadioJ != 0 {
		t.Fatalf("empty capture produced %+v", run)
	}
}
