package metrics

import (
	"time"

	"github.com/parcel-go/parcel/internal/stats"
)

// SessionLoad is one tenant session's outcome in a multi-tenant load run —
// the fleet-scale unit of measurement the per-page PageRun does not cover:
// how long this user waited, what the shared object cache did for them, and
// how much origin/client traffic their session cost the proxy.
type SessionLoad struct {
	// ID is the session's index in the fleet.
	ID int
	// Page is the page the session loaded.
	Page string
	// Latency is request-to-completion (virtual time in simulation, wall
	// clock over real TCP).
	Latency time.Duration
	// FirstCritical is request-to-first-critical-object (HTML/CSS/JS — the
	// render-blocking set): the latency the mux layer's prioritization
	// targets. Zero when the session never saw a critical object.
	FirstCritical time.Duration
	// Completed reports whether the page finished; failed sessions are
	// excluded from latency percentiles but counted.
	Completed bool

	// CacheHits and CacheMisses count the session's lookups in the proxy's
	// cross-session object cache.
	CacheHits, CacheMisses int
	// EgressBytes is what the proxy pushed to this client.
	EgressBytes int64
	// OriginBytes is what the proxy fetched from origins on this session's
	// behalf (cache hits cost zero).
	OriginBytes int64
	// Deferred and Shed count push-budget admission outcomes: objects parked
	// for later delivery and objects dropped to the client's direct-origin
	// path.
	Deferred, Shed int
	// FallbackWriteErrors counts fallback object requests whose write to the
	// proxy failed — requests the proxy never saw. Nonzero means the session
	// silently lost fallbacks; load generators gate on the fleet total.
	FallbackWriteErrors int
}

// FleetReport aggregates a load-generator run: per-session latency
// percentiles over completed sessions, cache effectiveness, and per-user
// egress — the schema behind BENCH_loadgen.json.
type FleetReport struct {
	Sessions  int
	Completed int
	Failed    int

	P50, P90, P99 time.Duration

	// TTFC percentiles cover time-to-first-critical-object, over completed
	// sessions that saw at least one critical object.
	TTFCP50, TTFCP90, TTFCP99 time.Duration

	CacheHits    int64
	CacheMisses  int64
	CacheHitRate float64 // hits / (hits + misses); 0 when no lookups

	EgressBytes      int64
	EgressPerSession float64
	OriginBytes      int64
	OriginPerSession float64

	Deferred int64
	Shed     int64

	FallbackWriteErrors int64
}

// Fleet reduces per-session loads to the fleet report. Percentiles are over
// completed sessions only; byte and cache totals cover every session.
func Fleet(loads []SessionLoad) FleetReport {
	var r FleetReport
	r.Sessions = len(loads)
	lat := make([]float64, 0, len(loads))
	ttfc := make([]float64, 0, len(loads))
	for _, l := range loads {
		if l.Completed {
			r.Completed++
			lat = append(lat, l.Latency.Seconds())
			if l.FirstCritical > 0 {
				ttfc = append(ttfc, l.FirstCritical.Seconds())
			}
		} else {
			r.Failed++
		}
		r.CacheHits += int64(l.CacheHits)
		r.CacheMisses += int64(l.CacheMisses)
		r.EgressBytes += l.EgressBytes
		r.OriginBytes += l.OriginBytes
		r.Deferred += int64(l.Deferred)
		r.Shed += int64(l.Shed)
		r.FallbackWriteErrors += int64(l.FallbackWriteErrors)
	}
	if len(lat) > 0 {
		r.P50 = time.Duration(stats.Percentile(lat, 50) * float64(time.Second))
		r.P90 = time.Duration(stats.Percentile(lat, 90) * float64(time.Second))
		r.P99 = time.Duration(stats.Percentile(lat, 99) * float64(time.Second))
	}
	if len(ttfc) > 0 {
		r.TTFCP50 = time.Duration(stats.Percentile(ttfc, 50) * float64(time.Second))
		r.TTFCP90 = time.Duration(stats.Percentile(ttfc, 90) * float64(time.Second))
		r.TTFCP99 = time.Duration(stats.Percentile(ttfc, 99) * float64(time.Second))
	}
	if total := r.CacheHits + r.CacheMisses; total > 0 {
		r.CacheHitRate = float64(r.CacheHits) / float64(total)
	}
	if r.Sessions > 0 {
		r.EgressPerSession = float64(r.EgressBytes) / float64(r.Sessions)
		r.OriginPerSession = float64(r.OriginBytes) / float64(r.Sessions)
	}
	return r
}
