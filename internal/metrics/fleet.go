package metrics

import (
	"time"

	"github.com/parcel-go/parcel/internal/stats"
)

// SessionLoad is one tenant session's outcome in a multi-tenant load run —
// the fleet-scale unit of measurement the per-page PageRun does not cover:
// how long this user waited, what the shared object cache did for them, and
// how much origin/client traffic their session cost the proxy.
type SessionLoad struct {
	// ID is the session's index in the fleet.
	ID int
	// Page is the page the session loaded.
	Page string
	// Latency is request-to-completion (virtual time in simulation, wall
	// clock over real TCP).
	Latency time.Duration
	// FirstCritical is request-to-first-critical-object (HTML/CSS/JS — the
	// render-blocking set): the latency the mux layer's prioritization
	// targets. Zero when the session never saw a critical object.
	FirstCritical time.Duration
	// Completed reports whether the page finished; failed sessions are
	// excluded from latency percentiles but counted.
	Completed bool

	// CacheHits and CacheMisses count the session's lookups in the proxy's
	// cross-session object cache.
	CacheHits, CacheMisses int
	// EgressBytes is what the proxy pushed to this client.
	EgressBytes int64
	// OriginBytes is what the proxy fetched from origins on this session's
	// behalf (cache hits cost zero).
	OriginBytes int64
	// Deferred and Shed count push-budget admission outcomes: objects parked
	// for later delivery and objects dropped to the client's direct-origin
	// path.
	Deferred, Shed int
	// FallbackWriteErrors counts fallback object requests whose write to the
	// proxy failed — requests the proxy never saw. Nonzero means the session
	// silently lost fallbacks; load generators gate on the fleet total.
	FallbackWriteErrors int

	// Retries counts origin re-attempts the proxy's resilient fetch path made
	// on this session's behalf, plus any client-side reconnect attempts.
	Retries int
	// StaleServes counts objects served from a stale cache entry because the
	// origin was failing past its retry budget.
	StaleServes int
	// Drained reports that a proxy drain interrupted this session mid-page
	// (the client reconnected with a resume manifest or fell back to DIR).
	Drained bool
	// Phase tags the session for per-phase percentiles in chaos runs (e.g. 0 =
	// completed before the drain, 1 = after). Harness-defined.
	Phase int
}

// FleetReport aggregates a load-generator run: per-session latency
// percentiles over completed sessions, cache effectiveness, and per-user
// egress — the schema behind BENCH_loadgen.json.
type FleetReport struct {
	Sessions  int
	Completed int
	Failed    int

	P50, P90, P99 time.Duration

	// TTFC percentiles cover time-to-first-critical-object, over completed
	// sessions that saw at least one critical object.
	TTFCP50, TTFCP90, TTFCP99 time.Duration

	CacheHits    int64
	CacheMisses  int64
	CacheHitRate float64 // hits / (hits + misses); 0 when no lookups

	EgressBytes      int64
	EgressPerSession float64
	OriginBytes      int64
	OriginPerSession float64

	Deferred int64
	Shed     int64

	FallbackWriteErrors int64

	// Retries/StaleServes/Drained sum the fleet's resilience counters;
	// BreakerOpens is filled in by the harness from the proxy's breaker group
	// (it is proxy-wide, not per-session).
	Retries      int64
	StaleServes  int64
	Drained      int64
	BreakerOpens int64

	// PhaseP99 maps each phase tag seen in the loads to that phase's p99
	// completion latency — how the chaos harness separates "before the drain"
	// from "after the restart". Nil when every session is phase 0.
	PhaseP99 map[int]time.Duration
}

// Fleet reduces per-session loads to the fleet report. Percentiles are over
// completed sessions only; byte and cache totals cover every session.
func Fleet(loads []SessionLoad) FleetReport {
	var r FleetReport
	r.Sessions = len(loads)
	lat := make([]float64, 0, len(loads))
	ttfc := make([]float64, 0, len(loads))
	phases := make(map[int][]float64)
	phased := false
	for _, l := range loads {
		if l.Completed {
			r.Completed++
			lat = append(lat, l.Latency.Seconds())
			if l.FirstCritical > 0 {
				ttfc = append(ttfc, l.FirstCritical.Seconds())
			}
			phases[l.Phase] = append(phases[l.Phase], l.Latency.Seconds())
		} else {
			r.Failed++
		}
		if l.Phase != 0 {
			phased = true
		}
		r.CacheHits += int64(l.CacheHits)
		r.CacheMisses += int64(l.CacheMisses)
		r.EgressBytes += l.EgressBytes
		r.OriginBytes += l.OriginBytes
		r.Deferred += int64(l.Deferred)
		r.Shed += int64(l.Shed)
		r.FallbackWriteErrors += int64(l.FallbackWriteErrors)
		r.Retries += int64(l.Retries)
		r.StaleServes += int64(l.StaleServes)
		if l.Drained {
			r.Drained++
		}
	}
	if phased {
		r.PhaseP99 = make(map[int]time.Duration, len(phases))
		for ph, ls := range phases {
			r.PhaseP99[ph] = time.Duration(stats.Percentile(ls, 99) * float64(time.Second))
		}
	}
	if len(lat) > 0 {
		r.P50 = time.Duration(stats.Percentile(lat, 50) * float64(time.Second))
		r.P90 = time.Duration(stats.Percentile(lat, 90) * float64(time.Second))
		r.P99 = time.Duration(stats.Percentile(lat, 99) * float64(time.Second))
	}
	if len(ttfc) > 0 {
		r.TTFCP50 = time.Duration(stats.Percentile(ttfc, 50) * float64(time.Second))
		r.TTFCP90 = time.Duration(stats.Percentile(ttfc, 90) * float64(time.Second))
		r.TTFCP99 = time.Duration(stats.Percentile(ttfc, 99) * float64(time.Second))
	}
	if total := r.CacheHits + r.CacheMisses; total > 0 {
		r.CacheHitRate = float64(r.CacheHits) / float64(total)
	}
	if r.Sessions > 0 {
		r.EgressPerSession = float64(r.EgressBytes) / float64(r.Sessions)
		r.OriginPerSession = float64(r.OriginBytes) / float64(r.Sessions)
	}
	return r
}
