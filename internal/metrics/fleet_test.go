package metrics

import (
	"testing"
	"time"
)

func TestFleetAggregation(t *testing.T) {
	loads := make([]SessionLoad, 0, 101)
	for i := 0; i < 100; i++ {
		loads = append(loads, SessionLoad{
			ID: i, Completed: true,
			Latency:     time.Duration(i+1) * 10 * time.Millisecond,
			CacheHits:   3,
			CacheMisses: 1,
			EgressBytes: 1000,
			OriginBytes: 250,
			Deferred:    1,
		})
	}
	loads = append(loads, SessionLoad{ID: 100, Completed: false, Shed: 2})

	r := Fleet(loads)
	if r.Sessions != 101 || r.Completed != 100 || r.Failed != 1 {
		t.Fatalf("counts: %+v", r)
	}
	// 100 evenly spaced latencies 10ms..1000ms: the percentiles must land on
	// the spacing, and be ordered.
	if r.P50 < 400*time.Millisecond || r.P50 > 600*time.Millisecond {
		t.Errorf("p50 = %v", r.P50)
	}
	if !(r.P50 <= r.P90 && r.P90 <= r.P99) {
		t.Errorf("percentiles unordered: %v %v %v", r.P50, r.P90, r.P99)
	}
	if r.P99 > time.Second || r.P99 < 900*time.Millisecond {
		t.Errorf("p99 = %v", r.P99)
	}
	if r.CacheHitRate != 0.75 {
		t.Errorf("hit rate = %v, want 0.75", r.CacheHitRate)
	}
	if r.EgressBytes != 100_000 || r.OriginBytes != 25_000 {
		t.Errorf("bytes: egress %d origin %d", r.EgressBytes, r.OriginBytes)
	}
	if r.Deferred != 100 || r.Shed != 2 {
		t.Errorf("deferred %d shed %d", r.Deferred, r.Shed)
	}
	if r.EgressPerSession <= 0 || r.EgressPerSession > 1000 {
		t.Errorf("egress/session = %v", r.EgressPerSession)
	}
}

func TestFleetEmptyAndAllFailed(t *testing.T) {
	if r := Fleet(nil); r.Sessions != 0 || r.P99 != 0 || r.CacheHitRate != 0 {
		t.Fatalf("empty fleet: %+v", r)
	}
	r := Fleet([]SessionLoad{{ID: 0}, {ID: 1}})
	if r.Failed != 2 || r.P50 != 0 {
		t.Fatalf("all-failed fleet: %+v", r)
	}
}
