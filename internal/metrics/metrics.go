// Package metrics assembles the paper's per-run measurements (§7.1) from a
// finished simulation: OLT and TLT from the browser milestones and client
// packet trace, radio energy from the RRC simulation over that trace, and
// the client-side request/connection counts the analysis correlates against.
package metrics

import (
	"time"

	"github.com/parcel-go/parcel/internal/radio"
	"github.com/parcel-go/parcel/internal/trace"
)

// PageRun is the outcome of loading one page with one scheme.
type PageRun struct {
	Scheme string
	Page   string

	// OLT is the client onload time (KPI for initial responsiveness, §2.1).
	OLT time.Duration
	// TLT is the total page-load time: all objects fetched, no interaction.
	TLT time.Duration

	// Radio is the RRC/energy simulation over the client trace.
	Radio radio.Report
	// RadioJ is Radio.TotalEnergy in joules (convenience).
	RadioJ float64

	// CPUActive is modelled client CPU-active time (parse + JS).
	CPUActive time.Duration

	// HTTPRequests counts HTTP requests the client issued over the
	// cellular link (per-object for DIR; one for PARCEL plus fallbacks).
	HTTPRequests int
	// ConnsOpened counts TCP connections the client dialed.
	ConnsOpened int
	// ObjectsLoaded counts objects that reached the client engine.
	ObjectsLoaded int
	// FallbackRequests counts PARCEL missing-object requests (§4.5).
	FallbackRequests int

	// BytesDown and BytesUp are wire bytes at the client.
	BytesDown, BytesUp int64

	// Fault-injection outcomes on the run's network (zero on clean runs):
	// packets the loss model dropped, retransmissions it scheduled, and the
	// wire bytes those retransmissions resent.
	DroppedPackets  int
	Retransmits     int
	RetransmitBytes int64
}

// FromTrace fills the trace-derived fields of r: TLT from the last DATA
// packet (the paper's trace endpoint), byte counts, and the radio report.
// onload is the client engine's onload time. keep filters packets that count
// as page content (nil keeps everything); PARCEL passes a filter that
// excludes its control messages so that — like the paper's metrics — both
// TLT and the energy window end with the page's objects.
func FromTrace(r *PageRun, rec *trace.Recorder, onload time.Duration, params radio.Params, keep func(trace.Packet) bool) {
	var c Collector
	c.FromTrace(r, rec, onload, params, keep)
}

// Collector is a reusable FromTrace: it keeps the activity scratch buffer
// and the radio simulator's interval scratch alive between runs, so a batch
// engine collecting many pages per worker pays the radio-simulation
// allocations once instead of per page. The zero value is ready to use; a
// Collector is not safe for concurrent use.
type Collector struct {
	acts []radio.Activity
	rsim radio.Sim
}

// FromTrace is the package-level FromTrace against the collector's scratch.
func (c *Collector) FromTrace(r *PageRun, rec *trace.Recorder, onload time.Duration, params radio.Params, keep func(trace.Packet) bool) {
	r.OLT = onload
	if keep == nil {
		keep = func(trace.Packet) bool { return true }
	}
	if last, ok := rec.LastDataMatching(keep); ok {
		r.TLT = last
	}
	down, up := trace.Down, trace.Up
	r.BytesDown = rec.TotalBytes(&down)
	r.BytesUp = rec.TotalBytes(&up)
	// The RRC/energy window covers the page-content trace, exactly like
	// running ARO over the paper's per-page tcpdump captures (§7.1): it
	// ends at the last content packet; activity beyond it (e.g. PARCEL's
	// completion notification, seconds after the page is done) is outside
	// the page-load measurement for every scheme alike.
	horizon := r.TLT
	acts := c.acts[:0]
	rec.Each(func(p trace.Packet) {
		if p.At <= horizon {
			acts = append(acts, radio.Activity{At: p.At, Bytes: p.Size})
		}
	})
	c.acts = acts
	r.Radio = c.rsim.Simulate(acts, params, horizon)
	r.RadioJ = r.Radio.TotalEnergy
}
