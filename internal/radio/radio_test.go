package radio

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestDefaultParamsValid(t *testing.T) {
	if err := DefaultLTE().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAlphaCalibration(t *testing.T) {
	// The paper derives α = 0.74 from its LTE measurements (§6); our default
	// parameters are calibrated to reproduce it closely.
	a := DefaultLTE().Alpha()
	if a < 0.70 || a > 0.78 {
		t.Fatalf("Alpha = %v, want ≈ 0.74", a)
	}
}

func TestAlphaDegenerate(t *testing.T) {
	p := DefaultLTE()
	p.PowerLongDRX = 0
	if got := p.Alpha(); got != 0 {
		t.Fatalf("Alpha with zero LDRX power = %v, want 0", got)
	}
}

func TestValidateRejectsBadHierarchy(t *testing.T) {
	p := DefaultLTE()
	p.PowerShortDRX = p.PowerCR + 1
	if err := p.Validate(); err == nil {
		t.Fatal("Validate accepted SDRX > CR")
	}
}

func TestValidateRejectsZeroTimers(t *testing.T) {
	p := DefaultLTE()
	p.CRTail = 0
	if err := p.Validate(); err == nil {
		t.Fatal("Validate accepted zero CR tail")
	}
}

func TestEmptyTraceAllIdle(t *testing.T) {
	p := DefaultLTE()
	r := Simulate(nil, p, 10*time.Second)
	if len(r.Intervals) != 1 || r.Intervals[0].State != Idle {
		t.Fatalf("intervals = %+v, want one IDLE interval", r.Intervals)
	}
	wantE := p.PowerIdle / 1000 * 10
	if math.Abs(r.TotalEnergy-wantE) > 1e-9 {
		t.Fatalf("TotalEnergy = %v, want %v", r.TotalEnergy, wantE)
	}
	if r.Transitions != 0 {
		t.Fatalf("Transitions = %d, want 0", r.Transitions)
	}
}

func TestSingleActivitySequence(t *testing.T) {
	p := DefaultLTE()
	r := Simulate([]Activity{{At: time.Second, Bytes: 1500}}, p, 0)
	// Expected: IDLE [0,1s), PROMO [1s, 1.26s), CR tail, SDRX, LDRX.
	want := []State{Idle, Promotion, CR, ShortDRX, LongDRX}
	if len(r.Intervals) != len(want) {
		t.Fatalf("got %d intervals %+v, want %d", len(r.Intervals), r.Intervals, len(want))
	}
	for i, s := range want {
		if r.Intervals[i].State != s {
			t.Fatalf("interval %d state = %v, want %v (%+v)", i, r.Intervals[i].State, s, r.Intervals)
		}
	}
	if r.TimeInState[CR] != p.CRTail {
		t.Errorf("CR time = %v, want %v", r.TimeInState[CR], p.CRTail)
	}
	if r.TimeInState[ShortDRX] != p.ShortDRXTail {
		t.Errorf("SDRX time = %v, want %v", r.TimeInState[ShortDRX], p.ShortDRXTail)
	}
	if r.TimeInState[LongDRX] != p.LongDRXTail {
		t.Errorf("LDRX time = %v, want %v", r.TimeInState[LongDRX], p.LongDRXTail)
	}
	if r.Transitions != 1 { // CR -> SDRX
		t.Errorf("Transitions = %d, want 1", r.Transitions)
	}
}

func TestBackToBackActivityStaysInCR(t *testing.T) {
	p := DefaultLTE()
	var acts []Activity
	for i := 0; i < 100; i++ {
		acts = append(acts, Activity{At: time.Duration(i) * ms(50) / 50 * 50, Bytes: 1500})
	}
	// 100 activities 50ms apart: all gaps < CRTail (200ms), so exactly one
	// CR interval and one demotion tail.
	acts = acts[:0]
	for i := 0; i < 100; i++ {
		acts = append(acts, Activity{At: time.Duration(i) * ms(50), Bytes: 1500})
	}
	r := Simulate(acts, p, 0)
	crCount := 0
	for _, iv := range r.Intervals {
		if iv.State == CR {
			crCount++
		}
	}
	if crCount != 1 {
		t.Fatalf("CR intervals = %d, want 1 (%+v)", crCount, r.Intervals)
	}
	if r.Transitions != 1 {
		t.Fatalf("Transitions = %d, want 1", r.Transitions)
	}
	// CR runs from the end of the initial promotion through the last
	// activity (at 4950 ms) plus the CR tail.
	wantCR := 99*ms(50) - p.PromotionDelay + p.CRTail
	if r.TimeInState[CR] != wantCR {
		t.Fatalf("CR time = %v, want %v", r.TimeInState[CR], wantCR)
	}
}

func TestGapIntoShortDRXPromotesBack(t *testing.T) {
	p := DefaultLTE()
	// Second activity 300ms after CR entry: inside the SDRX window
	// (200..600ms after the last CR activity).
	r := Simulate([]Activity{{At: 0}, {At: p.PromotionDelay + ms(300)}}, p, 0)
	// Expect: PROMO, CR, SDRX (partial), CR, SDRX, LDRX.
	var states []State
	for _, iv := range r.Intervals {
		states = append(states, iv.State)
	}
	want := []State{Promotion, CR, ShortDRX, CR, ShortDRX, LongDRX}
	if len(states) != len(want) {
		t.Fatalf("states = %v, want %v", states, want)
	}
	for i := range want {
		if states[i] != want[i] {
			t.Fatalf("states = %v, want %v", states, want)
		}
	}
	if r.Transitions != 3 { // CR->SDRX, SDRX->CR, CR->SDRX
		t.Fatalf("Transitions = %d, want 3", r.Transitions)
	}
}

func TestGapIntoLongDRXPromotesBack(t *testing.T) {
	p := DefaultLTE()
	gap := p.PromotionDelay + p.CRTail + p.ShortDRXTail + time.Second // lands in LDRX
	r := Simulate([]Activity{{At: 0}, {At: gap}}, p, 0)
	foundLDRXBeforeCR := false
	for i := 1; i < len(r.Intervals); i++ {
		if r.Intervals[i-1].State == LongDRX && r.Intervals[i].State == CR {
			foundLDRXBeforeCR = true
		}
	}
	if !foundLDRXBeforeCR {
		t.Fatalf("no LDRX→CR promotion found: %+v", r.Intervals)
	}
}

func TestGapToIdleRequiresPromotion(t *testing.T) {
	p := DefaultLTE()
	gap := p.PromotionDelay + p.tailTotal() + 5*time.Second
	r := Simulate([]Activity{{At: 0}, {At: gap}}, p, 0)
	promos := 0
	for _, iv := range r.Intervals {
		if iv.State == Promotion {
			promos++
		}
	}
	if promos != 2 {
		t.Fatalf("promotions = %d, want 2 (%+v)", promos, r.Intervals)
	}
	if r.EnergyByState[Promotion] <= 0 {
		t.Fatal("no promotion energy accounted")
	}
}

func TestHorizonTruncatesTail(t *testing.T) {
	p := DefaultLTE()
	r := Simulate([]Activity{{At: 0}}, p, p.PromotionDelay+ms(100))
	last := r.Intervals[len(r.Intervals)-1]
	if last.State != CR || last.End != p.PromotionDelay+ms(100) {
		t.Fatalf("last interval = %+v, want CR ending at horizon", last)
	}
}

func TestUnsortedActivitiesAreSorted(t *testing.T) {
	p := DefaultLTE()
	a := Simulate([]Activity{{At: ms(100)}, {At: 0}}, p, 0)
	b := Simulate([]Activity{{At: 0}, {At: ms(100)}}, p, 0)
	if a.TotalEnergy != b.TotalEnergy || len(a.Intervals) != len(b.Intervals) {
		t.Fatal("unsorted input produced different result")
	}
}

func TestNegativeActivityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative activity time did not panic")
		}
	}()
	Simulate([]Activity{{At: -1}}, DefaultLTE(), 0)
}

func TestTransferEnergyScalesWithBytes(t *testing.T) {
	p := DefaultLTE()
	small := Simulate([]Activity{{At: 0, Bytes: 1000}}, p, 0)
	big := Simulate([]Activity{{At: 0, Bytes: 2000}}, p, 0)
	if big.TransferEnergy <= small.TransferEnergy {
		t.Fatal("transfer energy not increasing in bytes")
	}
	if got, want := big.TransferEnergy-small.TransferEnergy, 1000*p.EnergyPerByte*1e-6; math.Abs(got-want) > 1e-12 {
		t.Fatalf("marginal transfer energy = %v, want %v", got, want)
	}
}

func TestEnergyUpToMonotone(t *testing.T) {
	p := DefaultLTE()
	r := Simulate([]Activity{{At: 0}, {At: time.Second}, {At: 3 * time.Second}}, p, 0)
	prev := -1.0
	for t0 := time.Duration(0); t0 < r.Horizon; t0 += 100 * time.Millisecond {
		e := r.EnergyUpTo(t0)
		if e < prev {
			t.Fatalf("EnergyUpTo not monotone at %v: %v < %v", t0, e, prev)
		}
		prev = e
	}
	full := r.EnergyUpTo(r.Horizon + time.Hour)
	var sum float64
	for _, e := range r.EnergyByState {
		sum += e
	}
	if math.Abs(full-sum) > 1e-9 {
		t.Fatalf("EnergyUpTo(∞) = %v, want %v", full, sum)
	}
}

func TestStateAt(t *testing.T) {
	p := DefaultLTE()
	r := Simulate([]Activity{{At: 0}}, p, 0)
	if s := r.StateAt(p.PromotionDelay / 2); s != Promotion {
		t.Fatalf("StateAt(mid-promo) = %v", s)
	}
	if s := r.StateAt(p.PromotionDelay + p.CRTail/2); s != CR {
		t.Fatalf("StateAt(mid-CR) = %v", s)
	}
	if s := r.StateAt(r.Horizon + time.Hour); s != Idle {
		t.Fatalf("StateAt(after end) = %v", s)
	}
}

// Property: intervals are contiguous, non-overlapping, start at 0, and cover
// the horizon exactly; the demotion sequence ordering is always legal.
func TestIntervalContiguityProperty(t *testing.T) {
	p := DefaultLTE()
	rng := rand.New(rand.NewSource(11))
	legalNext := map[State][]State{
		Idle:      {Promotion},
		Promotion: {CR},
		CR:        {ShortDRX, CR},
		ShortDRX:  {LongDRX, CR},
		LongDRX:   {Idle, CR},
	}
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(60)
		acts := make([]Activity, n)
		t0 := time.Duration(0)
		for i := range acts {
			t0 += time.Duration(rng.Intn(4000)) * time.Millisecond
			acts[i] = Activity{At: t0, Bytes: rng.Intn(3000)}
		}
		r := Simulate(acts, p, 0)
		if len(r.Intervals) == 0 {
			t.Fatal("no intervals")
		}
		if r.Intervals[0].Start != 0 && acts[0].At != 0 {
			t.Fatalf("first interval starts at %v", r.Intervals[0].Start)
		}
		for i, iv := range r.Intervals {
			if iv.End <= iv.Start {
				t.Fatalf("empty/negative interval %+v", iv)
			}
			if i > 0 {
				prev := r.Intervals[i-1]
				if prev.End != iv.Start {
					t.Fatalf("gap between %+v and %+v", prev, iv)
				}
				ok := false
				for _, s := range legalNext[prev.State] {
					if iv.State == s {
						ok = true
					}
				}
				if !ok {
					t.Fatalf("illegal transition %v -> %v", prev.State, iv.State)
				}
			}
		}
		if last := r.Intervals[len(r.Intervals)-1]; last.End != r.Horizon {
			t.Fatalf("intervals end %v != horizon %v", last.End, r.Horizon)
		}
		// Occupancy sums to horizon minus leading idle-free start offset.
		var sum time.Duration
		for _, d := range r.TimeInState {
			sum += d
		}
		if sum != r.Horizon-r.Intervals[0].Start {
			t.Fatalf("occupancy %v != horizon span %v", sum, r.Horizon-r.Intervals[0].Start)
		}
	}
}

// Property: adding activity never decreases total energy (more activity, more
// CR time, more transfer energy) when the horizon is fixed and long.
func TestEnergyMonotoneInActivityProperty(t *testing.T) {
	p := DefaultLTE()
	rng := rand.New(rand.NewSource(5))
	horizon := 120 * time.Second
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(30)
		acts := make([]Activity, 0, n)
		t0 := time.Duration(0)
		for i := 0; i < n; i++ {
			t0 += time.Duration(rng.Intn(3000)) * time.Millisecond
			acts = append(acts, Activity{At: t0, Bytes: 1500})
		}
		base := Simulate(acts, p, horizon)
		// Add one more activity somewhere inside the window.
		extra := append(append([]Activity(nil), acts...), Activity{At: t0 + time.Duration(rng.Intn(5000))*time.Millisecond, Bytes: 1500})
		more := Simulate(extra, p, horizon)
		if more.TotalEnergy < base.TotalEnergy-1e-9 {
			t.Fatalf("energy decreased when adding activity: %v -> %v", base.TotalEnergy, more.TotalEnergy)
		}
	}
}

// Property: bundled transfers (same bytes, fewer bursts) never cost more
// radio energy than widely spaced transfers — the paper's core energy claim.
func TestBundlingSavesEnergyProperty(t *testing.T) {
	p := DefaultLTE()
	horizon := 200 * time.Second
	for _, gap := range []time.Duration{ms(700), ms(1500), 3 * time.Second, 8 * time.Second} {
		var spread []Activity
		for i := 0; i < 20; i++ {
			spread = append(spread, Activity{At: time.Duration(i) * gap, Bytes: 50_000})
		}
		bundled := []Activity{{At: 0, Bytes: 20 * 50_000}}
		eSpread := Simulate(spread, p, horizon).TotalEnergy
		eBundled := Simulate(bundled, p, horizon).TotalEnergy
		if eBundled >= eSpread {
			t.Fatalf("gap %v: bundled %vJ >= spread %vJ", gap, eBundled, eSpread)
		}
	}
}

func TestOptimalBundleSizeMatchesPaper(t *testing.T) {
	// §6: for a 2 MB page at 6 Mbps with α = 0.74, b* ≈ 0.9 MB.
	p := DefaultLTE()
	s := 6e6 / 8           // bytes/sec
	B := 2 * 1024.0 * 1024 // bytes
	bStar := p.Alpha() * math.Sqrt(s*B)
	if bStar < 800e3 || bStar > 1000e3 {
		t.Fatalf("b* = %v bytes, want ≈ 0.9 MB", bStar)
	}
}

func TestStateStringer(t *testing.T) {
	if CR.String() != "CR" || Idle.String() != "IDLE" || ShortDRX.String() != "SDRX" {
		t.Fatal("state names wrong")
	}
	if State(99).String() == "" {
		t.Fatal("out-of-range state produced empty string")
	}
}

func BenchmarkSimulate1kActivities(b *testing.B) {
	p := DefaultLTE()
	acts := make([]Activity, 1000)
	for i := range acts {
		acts[i] = Activity{At: time.Duration(i) * 37 * time.Millisecond, Bytes: 1460}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Simulate(acts, p, 0)
	}
}
