// Package radio models the LTE Radio Resource Control (RRC) state machine
// and the radio energy it implies, in the style of the ARO tool the PARCEL
// paper uses (§7.1): given the packet activity observed at the device, it
// performs a fine-grained simulation of RRC state occupancy and integrates
// per-state power to obtain radio energy.
//
// The state machine follows the paper's Figure 2: the device must be in
// Continuous Reception (CR) to transfer data; after an inactivity period it
// demotes CR → Short DRX → Long DRX → IDLE; any activity while demoted
// promotes it back to CR (with a promotion delay and energy cost when coming
// from IDLE).
package radio

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// State is an RRC radio state.
type State int

const (
	// Idle is RRC_IDLE: radio off apart from paging.
	Idle State = iota
	// Promotion is the IDLE→CONNECTED transition period.
	Promotion
	// CR is Continuous Reception within RRC_CONNECTED: the only state in
	// which data transfer occurs, and the highest-power state.
	CR
	// ShortDRX is the first discontinuous-reception tail stage.
	ShortDRX
	// LongDRX is the second, lower-power discontinuous-reception stage.
	LongDRX
)

// NumStates is the number of RRC states (array-indexed accounting).
const NumStates = 5

var stateNames = [NumStates]string{"IDLE", "PROMO", "CR", "SDRX", "LDRX"}

func (s State) String() string {
	if s < 0 || int(s) >= len(stateNames) {
		return fmt.Sprintf("State(%d)", int(s))
	}
	return stateNames[s]
}

// Params holds the device- and operator-specific RRC model parameters.
// Powers are in milliwatts; timers in virtual time.
type Params struct {
	PowerIdle     float64 // mW in IDLE (paging average)
	PowerPromo    float64 // mW during IDLE→CR promotion
	PowerCR       float64 // mW in CR (base, excluding per-byte cost)
	PowerShortDRX float64 // mW average in Short DRX
	PowerLongDRX  float64 // mW average in Long DRX

	PromotionDelay time.Duration // IDLE→CR promotion time
	CRTail         time.Duration // dc: inactivity time spent in CR before Short DRX
	ShortDRXTail   time.Duration // ds: time spent in Short DRX before Long DRX
	LongDRXTail    time.Duration // time spent in Long DRX before IDLE

	// EnergyPerByte is the marginal transfer energy in microjoules per byte,
	// added on top of CR base power for every byte sent or received.
	EnergyPerByte float64
}

// DefaultLTE returns parameters in the style of Huang et al. (MobiSys'12)
// measurements, calibrated the way the paper calibrates its own model (§7.1:
// "power values are device-specific and timer values are periodically tuned
// by operators"): the CR power and promotion cost follow the published
// device measurements; the DRX powers are duty-cycle averages (the radio
// sleeps most of each DRX cycle); and the timers are tuned so that (i) the
// paper's analytical constant α comes out at ≈ 0.74 (we obtain 0.740) and
// (ii) per-page radio energies land on the scale of the paper's Figure 7
// (DIR up to ~13 J, PARCEL mostly under ~4 J).
func DefaultLTE() Params {
	return Params{
		PowerIdle:      11.4,
		PowerPromo:     1210,
		PowerCR:        1680,
		PowerShortDRX:  365,
		PowerLongDRX:   300,
		PromotionDelay: 260 * time.Millisecond,
		CRTail:         100 * time.Millisecond,
		ShortDRXTail:   400 * time.Millisecond,
		LongDRXTail:    7 * time.Second,
		EnergyPerByte:  0.012, // µJ/byte marginal transfer cost
	}
}

// Validate reports whether the parameters are self-consistent: positive
// timers and the power hierarchy CR > SDRX > LDRX > IDLE the paper describes.
func (p Params) Validate() error {
	if p.CRTail <= 0 || p.ShortDRXTail <= 0 || p.LongDRXTail <= 0 || p.PromotionDelay < 0 {
		return fmt.Errorf("radio: non-positive timer in params %+v", p)
	}
	if !(p.PowerCR > p.PowerShortDRX && p.PowerShortDRX > p.PowerLongDRX && p.PowerLongDRX > p.PowerIdle) {
		return fmt.Errorf("radio: power hierarchy violated (want CR > SDRX > LDRX > IDLE): %+v", p)
	}
	if p.EnergyPerByte < 0 {
		return fmt.Errorf("radio: negative per-byte energy")
	}
	return nil
}

// Alpha returns the paper's §6 constant
//
//	α = sqrt(((pc−pl)·dc + (ps−pl)·ds) / pl)
//
// which captures the relative radio state-transition overhead. Its unit is
// sqrt(seconds), so that α·sqrt(s·B) is in bytes when s is bytes/second.
func (p Params) Alpha() float64 {
	dc := p.CRTail.Seconds()
	ds := p.ShortDRXTail.Seconds()
	num := (p.PowerCR-p.PowerLongDRX)*dc + (p.PowerShortDRX-p.PowerLongDRX)*ds
	if num <= 0 || p.PowerLongDRX <= 0 {
		return 0
	}
	return math.Sqrt(num / p.PowerLongDRX)
}

// tailTotal is the full CR-exit to IDLE demotion time.
func (p Params) tailTotal() time.Duration {
	return p.CRTail + p.ShortDRXTail + p.LongDRXTail
}

// power returns the state's power draw in milliwatts. A switch instead of a
// lookup map keeps the per-simulation integration allocation-free.
func (p Params) power(s State) float64 {
	switch s {
	case Idle:
		return p.PowerIdle
	case Promotion:
		return p.PowerPromo
	case CR:
		return p.PowerCR
	case ShortDRX:
		return p.PowerShortDRX
	case LongDRX:
		return p.PowerLongDRX
	}
	return 0
}

// Activity is one unit of network activity at the device: a packet (or packet
// burst) of Bytes at virtual time At. Direction does not matter for RRC
// occupancy; both send and receive require CR.
type Activity struct {
	At    time.Duration
	Bytes int
}

// Interval is a contiguous stay in one RRC state.
type Interval struct {
	State      State
	Start, End time.Duration
}

// Duration returns the interval length.
func (iv Interval) Duration() time.Duration { return iv.End - iv.Start }

// Report is the outcome of an RRC simulation over a trace.
type Report struct {
	Params    Params
	Intervals []Interval

	// EnergyByState is integrated energy per state in joules, excluding the
	// per-byte transfer energy, which is reported separately. Indexed by
	// State; an array instead of a map so a Report costs no per-simulation
	// allocations.
	EnergyByState [NumStates]float64
	// TransferEnergy is the marginal per-byte energy in joules.
	TransferEnergy float64
	// TotalEnergy is the sum of all state energies plus transfer energy.
	TotalEnergy float64
	// TimeInState is total occupancy per state, indexed by State.
	TimeInState [NumStates]time.Duration
	// Transitions counts state changes between CR and the DRX states in
	// either direction (the quantity Figure 7a reports: 22 for DIR vs 7 for
	// PARCEL on the example page).
	Transitions int
	// Horizon is the end of the simulated window.
	Horizon time.Duration
}

// Sim is a reusable RRC simulator: it keeps the activity sort buffer and the
// interval accumulation backing across runs, so a sweep that simulates
// thousands of traces re-walks the same scratch instead of reallocating it.
// The zero value is ready to use; Sim is not safe for concurrent use.
type Sim struct {
	acts []Activity
	w    simWriter
}

// simWriter accumulates state intervals in time order, merging adjacent
// intervals of the same state.
type simWriter struct {
	intervals []Interval
}

func (w *simWriter) emit(s State, start, end time.Duration) {
	if end <= start {
		return
	}
	if n := len(w.intervals); n > 0 && w.intervals[n-1].State == s && w.intervals[n-1].End == start {
		w.intervals[n-1].End = end
		return
	}
	w.intervals = append(w.intervals, Interval{State: s, Start: start, End: end})
}

// emitTail writes the demotion sequence that begins when CR ends at crEnd,
// truncated at limit: Short DRX, Long DRX, then IDLE.
func (w *simWriter) emitTail(p Params, crEnd, limit time.Duration) {
	t := crEnd
	for _, stage := range []struct {
		s State
		d time.Duration
	}{{ShortDRX, p.ShortDRXTail}, {LongDRX, p.LongDRXTail}} {
		end := t + stage.d
		if end > limit {
			w.emit(stage.s, t, limit)
			return
		}
		w.emit(stage.s, t, end)
		t = end
	}
	w.emit(Idle, t, limit)
}

// Simulate runs the RRC state machine over the given activity trace.
//
// The device starts in IDLE at time 0. Each activity promotes the radio to CR
// (inserting a Promotion interval when coming from IDLE); after the last
// activity in a busy period the radio demotes through CR-tail, Short DRX and
// Long DRX back to IDLE. The simulation window ends at horizon; if horizon is
// 0 it extends to the end of the natural demotion tail after the last
// activity.
func Simulate(activities []Activity, p Params, horizon time.Duration) Report {
	var s Sim
	return s.Simulate(activities, p, horizon)
}

// Simulate is the scratch-reusing form of the package-level Simulate: the
// activity copy and the interval walk run in s's retained backing arrays.
// The returned Report carries an exact-size copy of the intervals, so it
// stays valid after the next run reuses the scratch.
func (s *Sim) Simulate(activities []Activity, p Params, horizon time.Duration) Report {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	s.acts = append(s.acts[:0], activities...)
	acts := s.acts
	sort.SliceStable(acts, func(i, j int) bool { return acts[i].At < acts[j].At })

	r := Report{Params: p}

	s.w.intervals = s.w.intervals[:0]
	w := &s.w
	var transferBytes int64

	// lastCREntry is when the current busy period's most recent activity put
	// the radio in CR; the inactivity tail is measured from there.
	var lastCREntry time.Duration
	busy := false // radio has been promoted at least once

	for _, a := range acts {
		if a.At < 0 {
			panic(fmt.Sprintf("radio: negative activity time %v", a.At))
		}
		transferBytes += int64(a.Bytes)

		if !busy {
			w.emit(Idle, 0, a.At)
			w.emit(Promotion, a.At, a.At+p.PromotionDelay)
			lastCREntry = a.At + p.PromotionDelay
			busy = true
			continue
		}

		sinceCR := a.At - lastCREntry
		if sinceCR < 0 {
			// Activity while the promotion is still in progress: it is
			// absorbed into the CR period that begins when promotion ends.
			continue
		}
		switch {
		case sinceCR <= p.CRTail:
			// Still within the CR tail: CR extends through a.At.
			// Nothing to emit yet; the CR interval is written when the busy
			// period's tail is resolved. We just move the tail anchor.
			w.emit(CR, lastCREntry, a.At)
			lastCREntry = a.At
		case sinceCR <= p.CRTail+p.ShortDRXTail+p.LongDRXTail:
			// Radio had demoted into DRX; emit the partial tail, then the
			// activity promotes it straight back to CR (fast, in-CONNECTED).
			w.emit(CR, lastCREntry, lastCREntry+p.CRTail)
			w.emitTail(p, lastCREntry+p.CRTail, a.At)
			lastCREntry = a.At
		default:
			// Radio reached IDLE; full tail, idle gap, then a promotion.
			crEnd := lastCREntry + p.CRTail
			w.emit(CR, lastCREntry, crEnd)
			w.emitTail(p, crEnd, crEnd+p.ShortDRXTail+p.LongDRXTail)
			w.emit(Idle, crEnd+p.ShortDRXTail+p.LongDRXTail, a.At)
			w.emit(Promotion, a.At, a.At+p.PromotionDelay)
			lastCREntry = a.At + p.PromotionDelay
		}
	}

	// Close out the final busy period (or an empty trace).
	if busy {
		naturalEnd := lastCREntry + p.tailTotal()
		end := horizon
		if end == 0 {
			end = naturalEnd
		}
		crEnd := lastCREntry + p.CRTail
		if end <= crEnd {
			w.emit(CR, lastCREntry, end)
		} else {
			w.emit(CR, lastCREntry, crEnd)
			w.emitTail(p, crEnd, end)
		}
		r.Horizon = end
	} else {
		if horizon > 0 {
			w.emit(Idle, 0, horizon)
		}
		r.Horizon = horizon
	}

	// Integrate energy and occupancy; count CR<->DRX transitions.
	prev := State(-1)
	for _, iv := range w.intervals {
		r.TimeInState[iv.State] += iv.Duration()
		r.EnergyByState[iv.State] += p.power(iv.State) / 1000 * iv.Duration().Seconds()
		if prev >= 0 && isTransition(prev, iv.State) {
			r.Transitions++
		}
		prev = iv.State
	}
	r.Intervals = append(make([]Interval, 0, len(w.intervals)), w.intervals...)
	r.TransferEnergy = float64(transferBytes) * p.EnergyPerByte * 1e-6
	// Sum in fixed state order (array index order) so TotalEnergy is
	// bit-for-bit deterministic.
	for st := range r.EnergyByState {
		r.TotalEnergy += r.EnergyByState[st]
	}
	r.TotalEnergy += r.TransferEnergy
	return r
}

func isTransition(a, b State) bool {
	drx := func(s State) bool { return s == ShortDRX || s == LongDRX }
	return (a == CR && drx(b)) || (drx(a) && b == CR)
}

// EnergyUpTo integrates radio energy from time 0 to t using the report's
// intervals, excluding per-byte transfer energy (which has no timestamp
// granularity finer than the whole trace).
func (r Report) EnergyUpTo(t time.Duration) float64 {
	var e float64
	for _, iv := range r.Intervals {
		if iv.Start >= t {
			break
		}
		end := iv.End
		if end > t {
			end = t
		}
		e += r.Params.power(iv.State) / 1000 * (end - iv.Start).Seconds()
	}
	return e
}

// StateAt returns the RRC state at time t per the report's intervals, or
// Idle if t falls outside every interval.
func (r Report) StateAt(t time.Duration) State {
	for _, iv := range r.Intervals {
		if t >= iv.Start && t < iv.End {
			return iv.State
		}
	}
	return Idle
}
