package experiments

import (
	"time"

	"github.com/parcel-go/parcel/internal/simnet"
)

// FaultProfile is a named loss shape for the robustness sweep. Base carries
// everything but the headline loss rate: Gilbert–Elliott burst parameters,
// outage windows, RTO tuning. At() stamps a concrete rate onto it.
type FaultProfile struct {
	Name string
	Base simnet.FaultParams
}

// At returns the profile's fault parameters at the given loss rate. Burst
// profiles (PBadGood set) scale their bad-state loss to 10× the base rate,
// capped at 1 — the usual "rare but severe" burst shape.
func (fp FaultProfile) At(rate float64) simnet.FaultParams {
	f := fp.Base
	f.LossRate = rate
	if f.PBadGood > 0 {
		bad := rate * 10
		if bad > 1 {
			bad = 1
		}
		f.LossRateBad = bad
	}
	return f
}

// DefaultFaultProfiles returns the sweep's standard shapes: uniform i.i.d.
// loss, bursty Gilbert–Elliott loss, and uniform loss plus a mid-load outage.
func DefaultFaultProfiles() []FaultProfile {
	return []FaultProfile{
		{Name: "uniform"},
		{Name: "burst", Base: simnet.FaultParams{PGoodBad: 0.02, PBadGood: 0.3}},
		{Name: "outage", Base: simnet.FaultParams{
			Outages: []simnet.Outage{{Start: 300 * time.Millisecond, End: 800 * time.Millisecond}},
		}},
	}
}

// DefaultLossRates is the sweep's standard loss grid.
var DefaultLossRates = []float64{0, 0.01, 0.05, 0.1}

// LossPoint aggregates one (profile, rate, scheme) cell of the sweep over
// the whole page set: mean of the per-page median-of-rounds KPIs, plus the
// summed fault and recovery counters.
type LossPoint struct {
	Profile  string
	LossRate float64
	Scheme   string

	MeanOLT    time.Duration
	MeanTLT    time.Duration
	MeanRadioJ float64

	// Summed across pages (from the representative round of each cell).
	Dropped         int
	Retransmits     int
	RetransmitBytes int64
	Fallbacks       int
}

// LossSweep runs every scheme over the page set at every (profile, rate)
// point and aggregates per cell. It inherits Sweep's determinism: the same
// cfg.Seed gives bit-identical points at any parallelism level.
func LossSweep(cfg Config, rates []float64, profiles []FaultProfile, schemes []Scheme) []LossPoint {
	cfg = cfg.withDefaults()
	if len(rates) == 0 {
		rates = DefaultLossRates
	}
	if len(profiles) == 0 {
		profiles = DefaultFaultProfiles()
	}
	var out []LossPoint
	for _, fp := range profiles {
		for _, rate := range rates {
			c := cfg
			c.Scenario.AccessFaults = fp.At(rate)
			results := Sweep(c, schemes)
			for _, s := range schemes {
				pt := LossPoint{Profile: fp.Name, LossRate: rate, Scheme: s.Name}
				var olt, tlt, radio float64
				for _, pr := range results {
					run := pr.Runs[s.Name]
					olt += run.OLT.Seconds()
					tlt += run.TLT.Seconds()
					radio += run.RadioJ
					pt.Dropped += run.DroppedPackets
					pt.Retransmits += run.Retransmits
					pt.RetransmitBytes += run.RetransmitBytes
					pt.Fallbacks += run.FallbackRequests
				}
				n := float64(len(results))
				pt.MeanOLT = time.Duration(olt / n * float64(time.Second))
				pt.MeanTLT = time.Duration(tlt / n * float64(time.Second))
				pt.MeanRadioJ = radio / n
				out = append(out, pt)
			}
		}
	}
	return out
}
