// Package experiments reproduces every table and figure of the paper's
// evaluation (§8): it builds topologies, runs the schemes over the page set,
// repeats runs the way the paper's rounds do (§7.2), and reduces the results
// to the series each figure plots. cmd/parcel-bench renders them.
package experiments

import (
	"time"

	"github.com/parcel-go/parcel/internal/core"
	"github.com/parcel-go/parcel/internal/dirbrowser"
	"github.com/parcel-go/parcel/internal/metrics"
	"github.com/parcel-go/parcel/internal/objcache"
	"github.com/parcel-go/parcel/internal/scenario"
	"github.com/parcel-go/parcel/internal/sched"
	"github.com/parcel-go/parcel/internal/stats"
	"github.com/parcel-go/parcel/internal/webgen"
)

// Config holds the experiment-wide knobs.
type Config struct {
	// Seed controls page generation and network jitter.
	Seed int64
	// Pages is the evaluation set size (default 34, §7.2).
	Pages int
	// Runs is the number of measurement rounds per page/scheme; the paper
	// uses 20–40 LTE rounds to beat radio variability, we default to 5
	// (the simulator varies only by jitter seed).
	Runs int
	// Jitter adds per-packet LTE delay noise across runs.
	Jitter time.Duration
	// Scenario overrides the topology defaults (zero value = defaults).
	Scenario scenario.Params
	// Parallelism bounds the worker pool that fans out independent
	// (page, scheme, round) simulations: 0 (the default) means one worker
	// per CPU, 1 forces the serial path. Every task derives its jitter seed
	// from (Seed, round) alone, so results are bit-for-bit identical at any
	// parallelism level.
	Parallelism int
	// BatchSize is how many page simulations one worker multiplexes through
	// its shared event loop and arena pools (see batch.go): 0 (the default)
	// means 16, 1 forces the legacy one-topology-per-task engine. Results
	// are bit-for-bit identical at any batch size.
	BatchSize int
	// SharedCache gives every PARCEL proxy the sweep starts a cross-session
	// object cache (a fresh one per topology). Sweep sessions are
	// single-tenant with unique per-page URLs, so the cache never hits and
	// the figures must not move — the golden suite pins that invariance.
	SharedCache bool
}

// DefaultConfig returns the standard evaluation configuration.
func DefaultConfig() Config {
	return Config{Seed: 1, Pages: 34, Runs: 5, Jitter: 2 * time.Millisecond}
}

func (c Config) withDefaults() Config {
	if c.Pages == 0 {
		c.Pages = 34
	}
	if c.Runs == 0 {
		c.Runs = 5
	}
	if c.Scenario.LTERTT == 0 {
		c.Scenario = scenario.DefaultParams()
	}
	if c.Jitter > 0 {
		c.Scenario.LTEJitter = c.Jitter
	}
	if c.BatchSize == 0 {
		c.BatchSize = 16
	}
	return c
}

// PageSet generates the evaluation pages for a config.
func (c Config) PageSet() []webgen.Page {
	c = c.withDefaults()
	return webgen.Generate(webgen.Spec{Seed: c.Seed, NumPages: c.Pages})
}

// Scheme identifies a comparison arm.
type Scheme struct {
	// Name is the display label ("DIR", "PARCEL(IND)", ...).
	Name string
	// Sched is the PARCEL schedule; ignored when DIR is true.
	Sched sched.Config
	// DIR marks the traditional-browser baseline.
	DIR bool
}

// DIRScheme is the traditional mobile browser arm.
var DIRScheme = Scheme{Name: "DIR", DIR: true}

// ParcelScheme returns a PARCEL arm with the given schedule.
func ParcelScheme(cfg sched.Config) Scheme { return Scheme{Name: cfg.String(), Sched: cfg} }

// RunOnce loads one page with one scheme on a fresh topology and returns the
// run metrics. seed perturbs the topology (jitter draw), mirroring the
// paper's per-round variability.
func RunOnce(page webgen.Page, s Scheme, cfg Config, seed int64) metrics.PageRun {
	cfg = cfg.withDefaults()
	params := cfg.Scenario
	params.Seed = seed
	topo := scenario.Build(page, params)
	if s.DIR {
		return dirbrowser.Run(topo, dirbrowser.Options{FixedRandom: true})
	}
	pc := proxyConfigFor(cfg, s)
	return core.Run(topo, pc, core.DefaultClientConfig())
}

// proxyConfigFor builds one task's proxy configuration, attaching a fresh
// shared cache when the sweep asks for one. Per-topology caches keep tasks
// independent (and therefore order-free): cross-task sharing would make a
// task's timing depend on which tasks ran before it.
func proxyConfigFor(cfg Config, s Scheme) core.ProxyConfig {
	pc := core.DefaultProxyConfig()
	pc.Sched = s.Sched
	if cfg.SharedCache {
		pc.Cache = objcache.New(objcache.Config{Capacity: 64 << 20})
	}
	return pc
}

// roundSeed derives the jitter seed of measurement round r. It depends only
// on the experiment seed and the round index — never on execution order —
// which is what makes parallel sweeps reproduce serial output exactly.
func roundSeed(cfg Config, r int) int64 { return cfg.Seed + int64(r)*7919 }

// medianReduce collapses the per-round runs of one (page, scheme) cell into
// the paper's median-of-rounds reduction (§7.1): per-metric medians on top of
// round 0 as the representative run for trace-level detail.
func medianReduce(runs []metrics.PageRun) metrics.PageRun {
	olts := make([]float64, len(runs))
	tlts := make([]float64, len(runs))
	radios := make([]float64, len(runs))
	for i, run := range runs {
		olts[i] = run.OLT.Seconds()
		tlts[i] = run.TLT.Seconds()
		radios[i] = run.RadioJ
	}
	rep := runs[0]
	rep.OLT = time.Duration(stats.Median(olts) * float64(time.Second))
	rep.TLT = time.Duration(stats.Median(tlts) * float64(time.Second))
	rep.RadioJ = stats.Median(radios)
	return rep
}

// MedianRun loads a page cfg.Runs times with different jitter seeds and
// returns the per-metric medians (the paper's median-of-rounds reduction,
// §7.1), along with one representative run for trace-level detail. Rounds
// run batched on the cfg.Parallelism worker pool.
func MedianRun(page webgen.Page, s Scheme, cfg Config) metrics.PageRun {
	cfg = cfg.withDefaults()
	runs := runTasks(cfg, cfg.Runs, func(r int) batchTask {
		return batchTask{page: page, s: s, seed: roundSeed(cfg, r)}
	})
	return medianReduce(runs)
}

// PageResult couples a page with its per-scheme median runs.
type PageResult struct {
	Page webgen.Page
	Runs map[string]metrics.PageRun // keyed by scheme name
}

// Sweep runs every scheme over every page. It fans every (page, scheme,
// round) simulation out as one task of the batched engine — the flattening
// exposes the evaluation's full width (pages × schemes × rounds independent
// topologies) to the cfg.Parallelism worker pool, and each worker
// multiplexes cfg.BatchSize of those simulations through shared arena pools
// — and then reduces rounds to medians in index order, so the result is
// identical to the serial page-by-page loop at any parallelism level and
// any batch size.
func Sweep(cfg Config, schemes []Scheme) []PageResult {
	cfg = cfg.withDefaults()
	pages := cfg.PageSet()
	nSchemes, nRuns := len(schemes), cfg.Runs
	runs := runTasks(cfg, len(pages)*nSchemes*nRuns, func(i int) batchTask {
		return batchTask{
			page: pages[i/(nSchemes*nRuns)],
			s:    schemes[i/nRuns%nSchemes],
			seed: roundSeed(cfg, i%nRuns),
		}
	})
	out := make([]PageResult, 0, len(pages))
	for pi, page := range pages {
		pr := PageResult{Page: page, Runs: make(map[string]metrics.PageRun, nSchemes)}
		for si, s := range schemes {
			cell := (pi*nSchemes + si) * nRuns
			pr.Runs[s.Name] = medianReduce(runs[cell : cell+nRuns])
		}
		out = append(out, pr)
	}
	return out
}
