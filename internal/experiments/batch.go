// Batched simulation engine: one event loop per worker multiplexes many
// concurrent page simulations. Every simulation keeps its own virtual clock
// (its private eventsim.Simulator), but the batch shares one arena pool set
// — event blocks, packets, minijs call frames, trace recorders — and the
// process-wide script exec-outcome cache, so the allocation and
// interpretation cost of a page amortizes across the whole sweep instead of
// being paid per (page, scheme, round) task.
//
// Determinism: a simulation's event order is internal to its own simulator
// and seeded by (Seed, task index) alone, so the round-robin interleaving
// below cannot reorder anything observable. Batch boundaries are a pure
// function of (n, BatchSize), never of scheduling, and results land in
// index-chosen slots — batched output is bit-for-bit the serial output.
package experiments

import (
	"github.com/parcel-go/parcel/internal/core"
	"github.com/parcel-go/parcel/internal/dirbrowser"
	"github.com/parcel-go/parcel/internal/metrics"
	"github.com/parcel-go/parcel/internal/runner"
	"github.com/parcel-go/parcel/internal/scenario"
	"github.com/parcel-go/parcel/internal/webgen"
)

// batchTask is one (page, scheme, seed) simulation of a flattened sweep.
type batchTask struct {
	page webgen.Page
	s    Scheme
	seed int64
}

// batchState is the per-worker state threaded through runner.MapBatches:
// the arena pools every simulation this worker drives shares, plus the
// metrics collector scratch. It never crosses goroutines.
type batchState struct {
	res *scenario.Resources
	col metrics.Collector
}

// batchSession is one admitted simulation: its topology plus the
// scheme-specific collector that assembles its metrics once drained.
type batchSession struct {
	topo    *scenario.Topology
	collect func(*metrics.Collector) metrics.PageRun
	scheme  string
}

// stepQuantum is how many events a simulation executes before the worker
// rotates to the next member of its batch. The value only shapes cache
// locality (larger = fewer rotations, smaller = fairer interleaving); it
// cannot affect results, because each simulation's event order is private.
const stepQuantum = 64

// runBatch admits the tasks of one batch, interleaves their event loops
// until every simulation drains, and collects metrics in task order into
// out. st carries the worker's pools between batches (nil on the worker's
// first batch).
func runBatch(st *batchState, tasks []batchTask, cfg Config, out []metrics.PageRun) *batchState {
	if st == nil {
		st = &batchState{res: scenario.NewResources()}
	}
	sessions := make([]batchSession, len(tasks))
	for i, tk := range tasks {
		params := cfg.Scenario
		params.Seed = tk.seed
		topo := scenario.BuildWith(tk.page, params, st.res)
		if tk.s.DIR {
			b := dirbrowser.New(topo, dirbrowser.Options{FixedRandom: true})
			b.Engine.Load(topo.Page.MainURL)
			sessions[i] = batchSession{topo: topo, collect: b.CollectWith, scheme: "DIR"}
		} else {
			pc := proxyConfigFor(cfg, tk.s)
			core.StartProxy(topo, pc)
			client := core.NewClient(topo, core.DefaultClientConfig())
			client.Start()
			sessions[i] = batchSession{topo: topo, collect: client.CollectWith, scheme: pc.Sched.String()}
		}
	}

	// Multiplex: round-robin a quantum of events per live simulation until
	// all of them drain. Virtual clocks advance independently.
	remaining := len(sessions)
	done := make([]bool, len(sessions))
	for remaining > 0 {
		for i := range sessions {
			if done[i] {
				continue
			}
			sim := sessions[i].topo.Sim
			for q := 0; q < stepQuantum; q++ {
				if !sim.Step() {
					done[i] = true
					remaining--
					break
				}
			}
		}
	}

	for i := range sessions {
		run := sessions[i].collect(&st.col)
		run.Scheme = sessions[i].scheme
		out[i] = run
		sessions[i].topo.Release()
	}
	return st
}

// runTasks fans n simulation tasks out across the cfg.Parallelism pool with
// the batch engine. BatchSize == 1 instead takes the legacy engine — one
// private topology per task through RunOnce, no shared arenas, no exec
// cache — which is the pre-batching code path, kept both as the baseline
// arm for benchmarking and as the reference the batch engine must match
// bit-for-bit.
func runTasks(cfg Config, n int, task func(i int) batchTask) []metrics.PageRun {
	if cfg.BatchSize == 1 {
		return runner.Map(cfg.Parallelism, n, func(i int) metrics.PageRun {
			t := task(i)
			return RunOnce(t.page, t.s, cfg, t.seed)
		})
	}
	return runner.MapBatches(cfg.Parallelism, n, cfg.BatchSize,
		func(st *batchState, lo, hi int, out []metrics.PageRun) *batchState {
			tasks := make([]batchTask, hi-lo)
			for i := range tasks {
				tasks[i] = task(lo + i)
			}
			return runBatch(st, tasks, cfg, out)
		})
}
