package experiments

import (
	"github.com/parcel-go/parcel/internal/core"
	"github.com/parcel-go/parcel/internal/dirbrowser"
	"github.com/parcel-go/parcel/internal/runner"
	"github.com/parcel-go/parcel/internal/scenario"
	"github.com/parcel-go/parcel/internal/sched"
)

// Table1Row is one row of the paper's Table 1 qualitative comparison.
type Table1Row struct {
	Property     string
	HTTPProxy    string
	SPDYProxy    string
	CloudBrowser string
	PARCEL       string
}

// Table1Static returns the paper's published comparison.
func Table1Static() []Table1Row {
	return []Table1Row{
		{"# of TCP connections", "many", "single", "single", "single"},
		{"# of HTTP requests", "per object", "per object", "single", "single"},
		{"Object identification", "client", "client", "proxy", "proxy"},
		{"Interactive JS", "client", "client", "proxy", "client"},
		{"Cellular-friendly transfer", "no", "no", "no", "yes"},
	}
}

// Table1Measured verifies the PARCEL column against the implementation: a
// PARCEL page load uses one TCP connection and one HTTP request from the
// client, object identification happens at the proxy, and interactions stay
// local. It returns observed counts for the report.
type Table1Measured struct {
	ParcelClientConns     int
	ParcelClientRequests  int
	ParcelProxyIdentified int
	DIRClientConns        int
	DIRClientRequests     int
	InteractionPackets    int
}

// MeasureTable1 runs one page under both schemes — two parallel tasks on
// independent topologies — and extracts the Table 1 quantities.
func MeasureTable1(cfg Config) Table1Measured {
	cfg = cfg.withDefaults()
	pages := cfg.PageSet()
	page := pages[2%len(pages)]
	params := cfg.Scenario
	params.Seed = cfg.Seed

	halves := runner.Map(cfg.Parallelism, 2, func(i int) Table1Measured {
		if i == 0 {
			dTopo := scenario.Build(page, params)
			dRun := dirbrowser.Run(dTopo, dirbrowser.Options{FixedRandom: true})
			return Table1Measured{
				DIRClientConns:    dRun.ConnsOpened,
				DIRClientRequests: dRun.HTTPRequests,
			}
		}
		pTopo := scenario.Build(page, params)
		pc := core.DefaultProxyConfig()
		pc.Sched = sched.ConfigIND
		proxy := core.StartProxy(pTopo, pc)
		client := core.NewClient(pTopo, core.DefaultClientConfig())
		pRun := client.Load()

		before := pTopo.ClientTrace.Len()
		client.Engine.FireEvent("click", "gallery-next") // no-op on plain pages
		pTopo.Sim.Run()
		return Table1Measured{
			ParcelClientConns:     pRun.ConnsOpened,
			ParcelClientRequests:  pRun.HTTPRequests,
			ParcelProxyIdentified: proxy.Sessions[0].ObjectsPushed,
			InteractionPackets:    pTopo.ClientTrace.Len() - before,
		}
	})
	out := halves[1]
	out.DIRClientConns = halves[0].DIRClientConns
	out.DIRClientRequests = halves[0].DIRClientRequests
	return out
}
