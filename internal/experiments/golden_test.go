package experiments

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// The golden-metrics suite pins the numeric output of every figure harness at
// a fixed seed. The simulators are deterministic by construction, so any
// change in these numbers means an optimisation altered simulated behaviour —
// exactly the regression a hot-path rewrite must not introduce. Durations are
// stored as integer nanoseconds and everything else as float64; the
// comparison is exact (bit-identical), not approximate.
//
// Regenerate intentionally with:
//
//	go test ./internal/experiments/ -run TestGoldenFigures -update
var updateGolden = flag.Bool("update", false, "rewrite testdata/golden_figs.json from the current code")

// goldenConfig is the fixed evaluation slice the suite runs: small enough to
// keep the suite fast, wide enough that every harness exercises multi-page
// sweeps, jitter rounds, and all schemes.
func goldenConfig() Config {
	cfg := DefaultConfig()
	cfg.Pages = 6
	cfg.Runs = 2
	cfg.Jitter = 2 * time.Millisecond
	cfg.Parallelism = 1
	return cfg
}

type goldenFig5 struct {
	Scheme  string `json:"scheme"`
	Points  int    `json:"points"`
	DoneNS  int64  `json:"done_ns"`
	Bytes   int64  `json:"bytes"`
	Bundles int    `json:"bundles"`
}

type goldenFig8 struct {
	Scheme string    `json:"scheme"`
	Radio  []float64 `json:"radio_j"`
	Total  []float64 `json:"total_j"`
}

type goldenFigs struct {
	Fig3CellularOLT []float64 `json:"fig3_cellular_olt_s"`
	Fig3WiredOLT    []float64 `json:"fig3_wired_olt_s"`

	Fig5 []goldenFig5 `json:"fig5"`

	Fig6aProxyOnloadNS int64 `json:"fig6a_proxy_onload_ns"`
	Fig6aParcelOLTNS   int64 `json:"fig6a_parcel_olt_ns"`
	Fig6aDIROLTNS      int64 `json:"fig6a_dir_olt_ns"`

	Fig6bParcelOLT    []float64 `json:"fig6b_parcel_olt_s"`
	Fig6bParcelTLT    []float64 `json:"fig6b_parcel_tlt_s"`
	Fig6bDIROLT       []float64 `json:"fig6b_dir_olt_s"`
	Fig6bDIRTLT       []float64 `json:"fig6b_dir_tlt_s"`
	Fig7bParcelEnergy []float64 `json:"fig7b_parcel_energy_j"`
	Fig7bDIREnergy    []float64 `json:"fig7b_dir_energy_j"`

	Fig6cCorrelation float64   `json:"fig6c_correlation"`
	Fig6cRequests    []int     `json:"fig6c_requests"`
	Fig6cReductions  []float64 `json:"fig6c_reductions_s"`

	Fig7aDIRTransitions    int     `json:"fig7a_dir_transitions"`
	Fig7aParcelTransitions int     `json:"fig7a_parcel_transitions"`
	Fig7aDIREnergy         float64 `json:"fig7a_dir_energy_j"`
	Fig7aParcelEnergy      float64 `json:"fig7a_parcel_energy_j"`

	Fig8 []goldenFig8 `json:"fig8"`

	Fig9OLTIncrease    map[string][]float64 `json:"fig9_olt_increase_s"`
	Fig9EnergyIncrease map[string][]float64 `json:"fig9_energy_increase_j"`

	Fig1011ParcelOLT    []float64 `json:"fig1011_parcel_olt_s"`
	Fig1011DIROLT       []float64 `json:"fig1011_dir_olt_s"`
	Fig1011ParcelEnergy []float64 `json:"fig1011_parcel_energy_j"`
	Fig1011DIREnergy    []float64 `json:"fig1011_dir_energy_j"`

	DelayMedianOLT    map[string]map[string]float64 `json:"delay_median_olt_s"`
	DelayMedianEnergy map[string]map[string]float64 `json:"delay_median_energy_j"`

	Table1ParcelConns    int `json:"table1_parcel_conns"`
	Table1ParcelRequests int `json:"table1_parcel_requests"`
	Table1DIRConns       int `json:"table1_dir_conns"`
	Table1DIRRequests    int `json:"table1_dir_requests"`
	Table1Identified     int `json:"table1_identified"`
	Table1Interaction    int `json:"table1_interaction_packets"`

	SPDYOLT    []float64 `json:"spdy_olt_s"`
	SPDYEnergy []float64 `json:"spdy_energy_j"`

	ModelAlpha         float64 `json:"model_alpha"`
	ModelOptimalBundle float64 `json:"model_optimal_bundle"`
	ModelMinEnergyN    float64 `json:"model_min_energy_n"`

	HeadlineOLTReduction    float64 `json:"headline_olt_reduction"`
	HeadlineEnergyReduction float64 `json:"headline_energy_reduction"`
}

// measureGolden runs every figure harness on the given config.
func measureGolden(t *testing.T, cfg Config) goldenFigs {
	t.Helper()
	var g goldenFigs

	r3 := Fig3(cfg)
	g.Fig3CellularOLT = r3.CellularOLT
	g.Fig3WiredOLT = r3.WiredOLT

	r5 := Fig5(cfg, 2)
	for _, s := range r5.Series {
		gs := goldenFig5{Scheme: s.Scheme, Points: len(s.Points), Bundles: s.Bundles}
		if n := len(s.Points); n > 0 {
			gs.DoneNS = int64(s.Points[n-1].At)
			gs.Bytes = s.Points[n-1].Bytes
		}
		g.Fig5 = append(g.Fig5, gs)
	}

	r6a := Fig6a(cfg)
	g.Fig6aProxyOnloadNS = int64(r6a.ProxyOnload)
	g.Fig6aParcelOLTNS = int64(r6a.ParcelClientOLT)
	g.Fig6aDIROLTNS = int64(r6a.DIRClientOLT)

	r6b := Fig6bAndEnergy(cfg)
	g.Fig6bParcelOLT = r6b.ParcelOLT
	g.Fig6bParcelTLT = r6b.ParcelTLT
	g.Fig6bDIROLT = r6b.DIROLT
	g.Fig6bDIRTLT = r6b.DIRTLT
	g.Fig7bParcelEnergy = r6b.ParcelEnergy
	g.Fig7bDIREnergy = r6b.DIREnergy

	r6c := Fig6c(cfg)
	g.Fig6cCorrelation = r6c.Correlation
	for _, p := range r6c.Points {
		g.Fig6cRequests = append(g.Fig6cRequests, p.HTTPRequests)
		g.Fig6cReductions = append(g.Fig6cReductions, p.ReductionSec)
	}

	r7a := Fig7a(cfg)
	g.Fig7aDIRTransitions = r7a.DIRTransitions
	g.Fig7aParcelTransitions = r7a.ParcelTransitions
	g.Fig7aDIREnergy = r7a.DIREnergy
	g.Fig7aParcelEnergy = r7a.ParcelEnergy

	r8 := Fig8(cfg)
	for _, s := range r8.Results {
		gs := goldenFig8{Scheme: s.Scheme}
		for _, p := range s.Points {
			gs.Radio = append(gs.Radio, p.CumRadioJ)
			gs.Total = append(gs.Total, p.CumTotalJ)
		}
		g.Fig8 = append(g.Fig8, gs)
	}

	r9 := Fig9(cfg)
	g.Fig9OLTIncrease = r9.OLTIncrease
	g.Fig9EnergyIncrease = r9.EnergyIncrease

	r1011 := Fig1011(cfg)
	g.Fig1011ParcelOLT = r1011.ParcelOLT
	g.Fig1011DIROLT = r1011.DIROLT
	g.Fig1011ParcelEnergy = r1011.ParcelEnergy
	g.Fig1011DIREnergy = r1011.DIREnergy

	rd := DelaySensitivity(cfg)
	g.DelayMedianOLT = rd.MedianOLT
	g.DelayMedianEnergy = rd.MedianEnergy

	rt := MeasureTable1(cfg)
	g.Table1ParcelConns = rt.ParcelClientConns
	g.Table1ParcelRequests = rt.ParcelClientRequests
	g.Table1DIRConns = rt.DIRClientConns
	g.Table1DIRRequests = rt.DIRClientRequests
	g.Table1Identified = rt.ParcelProxyIdentified
	g.Table1Interaction = rt.InteractionPackets

	rs := SPDYComparison(cfg)
	g.SPDYOLT = rs.SPDYOLT
	g.SPDYEnergy = rs.SPDYEnergy

	rm := Model()
	g.ModelAlpha = rm.Alpha
	g.ModelOptimalBundle = rm.OptimalBundle
	g.ModelMinEnergyN = rm.MinEnergyN

	rh := Headline(cfg)
	g.HeadlineOLTReduction = rh.OLTReduction
	g.HeadlineEnergyReduction = rh.EnergyReduction

	return g
}

const goldenPath = "testdata/golden_figs.json"

func TestGoldenFigures(t *testing.T) {
	got := measureGolden(t, goldenConfig())

	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatalf("marshal golden: %v", err)
		}
		data = append(data, '\n')
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatalf("mkdir testdata: %v", err)
		}
		if err := os.WriteFile(goldenPath, data, 0o644); err != nil {
			t.Fatalf("write golden: %v", err)
		}
		t.Logf("rewrote %s", goldenPath)
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with -update to generate): %v", err)
	}
	var want goldenFigs
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parse golden: %v", err)
	}

	// Compare field by field so a drift names the figure it moved.
	gv, wv := reflect.ValueOf(got), reflect.ValueOf(want)
	typ := gv.Type()
	for i := 0; i < typ.NumField(); i++ {
		if !reflect.DeepEqual(gv.Field(i).Interface(), wv.Field(i).Interface()) {
			t.Errorf("%s drifted from golden:\n got:  %#v\n want: %#v",
				typ.Field(i).Name, gv.Field(i).Interface(), wv.Field(i).Interface())
		}
	}
}

// TestGoldenSharedCacheInvariant asserts the cross-session cache is inert in
// single-tenant sweeps: every session is alone on its proxy with a fresh
// cache and page-unique URLs, so enabling it must reproduce the committed
// golden figures bit for bit. Any drift means the cache path changed a
// session's own timing — a correctness bug, not a tuning choice.
func TestGoldenSharedCacheInvariant(t *testing.T) {
	cfg := goldenConfig()
	cfg.SharedCache = true
	got := measureGolden(t, cfg)

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with -update to generate): %v", err)
	}
	var want goldenFigs
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parse golden: %v", err)
	}
	gv, wv := reflect.ValueOf(got), reflect.ValueOf(want)
	typ := gv.Type()
	for i := 0; i < typ.NumField(); i++ {
		if !reflect.DeepEqual(gv.Field(i).Interface(), wv.Field(i).Interface()) {
			t.Errorf("%s drifted under SharedCache:\n got:  %#v\n want: %#v",
				typ.Field(i).Name, gv.Field(i).Interface(), wv.Field(i).Interface())
		}
	}
}

// TestGoldenParallelismInvariant asserts the golden metrics do not depend on
// the worker-pool width: the same figure harness at parallelism 2 must produce
// the same bits as the serial golden run (the PR 1 determinism contract).
func TestGoldenParallelismInvariant(t *testing.T) {
	cfg := goldenConfig()
	serial := Fig6bAndEnergy(cfg)
	cfg.Parallelism = 2
	parallel := Fig6bAndEnergy(cfg)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("Fig6bAndEnergy differs between parallelism 1 and 2")
	}
}
