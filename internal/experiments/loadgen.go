// Fleet load simulation: many tenants through one proxy on the virtual
// clock. This is the deterministic arm of the loadgen harness — the real-TCP
// arm lives in parcelnet.RunLoadgen — and exists so multi-tenant scaling
// numbers (latency percentiles, cache hit rate, egress per user) are exactly
// reproducible from a seed.
package experiments

import (
	"time"

	"github.com/parcel-go/parcel/internal/core"
	"github.com/parcel-go/parcel/internal/httpsim"
	"github.com/parcel-go/parcel/internal/metrics"
	"github.com/parcel-go/parcel/internal/objcache"
	"github.com/parcel-go/parcel/internal/resilience"
	"github.com/parcel-go/parcel/internal/scenario"
	"github.com/parcel-go/parcel/internal/sched"
	"github.com/parcel-go/parcel/internal/webgen"
)

// LoadgenSimConfig describes one simulated fleet run.
type LoadgenSimConfig struct {
	// Tenants is the fleet size (concurrent sessions through one proxy).
	Tenants int
	// Pages is the distinct page count; tenants are assigned round-robin.
	Pages int
	// Seed controls page generation and the topology.
	Seed int64
	// Sched is the proxy's bundle schedule (default IND).
	Sched sched.Config
	// CacheBytes sizes the shared cross-session cache (0 disables it).
	CacheBytes int64
	// Stagger spaces tenant arrivals on the virtual clock (default 10 ms).
	Stagger time.Duration
	// QuietPeriod overrides the proxy's §4.5 window (default 500 ms — load
	// runs measure delivery, not the production completion heuristic).
	QuietPeriod time.Duration
	// Scenario overrides the topology defaults (zero value = defaults).
	Scenario scenario.Params

	// OriginFaults arms fault injection on every origin server (the chaos
	// arm). The zero value injects nothing and keeps the run bit-identical to
	// the historical loadgen figures.
	OriginFaults httpsim.OriginFaults
	// Resilience, when set, arms the proxy's resilient origin-fetch path:
	// per-attempt deadlines, retry budget, per-origin breakers. Nil keeps the
	// legacy fetch path.
	Resilience *resilience.Policy
	// CacheFreshFor is the shared cache's freshness window under Resilience —
	// entries older than it revalidate at the origin and serve stale when the
	// origin is failing. 0 means entries never go stale.
	CacheFreshFor time.Duration
}

// LoadgenSimResult is a simulated fleet run's full measurement.
type LoadgenSimResult struct {
	Loads  []metrics.SessionLoad
	Report metrics.FleetReport
	Cache  objcache.Stats
	// Faults aggregates what every origin injected (all zero without
	// OriginFaults).
	Faults httpsim.OriginFaultStats
}

// LoadgenSim runs one fleet simulation: build the multi-tenant topology,
// start a proxy with the shared cache, release the tenants staggered, and
// drain the virtual clock. Deterministic: same config, same bits.
func LoadgenSim(cfg LoadgenSimConfig) LoadgenSimResult {
	if cfg.Tenants <= 0 {
		cfg.Tenants = 1
	}
	if cfg.Pages <= 0 {
		cfg.Pages = 1
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Stagger == 0 {
		cfg.Stagger = 10 * time.Millisecond
	}
	if cfg.QuietPeriod == 0 {
		cfg.QuietPeriod = 500 * time.Millisecond
	}
	params := cfg.Scenario
	if params.LTERTT == 0 {
		params = scenario.DefaultParams()
	}
	params.Seed = cfg.Seed
	if cfg.OriginFaults.Active() {
		params.OriginFaults = cfg.OriginFaults
	}

	pages := webgen.Generate(webgen.Spec{Seed: cfg.Seed, NumPages: cfg.Pages})
	fleet := scenario.BuildFleet(pages, cfg.Tenants, params)

	pc := core.DefaultProxyConfig()
	pc.Sched = cfg.Sched
	pc.QuietPeriod = cfg.QuietPeriod
	pc.Resilience = cfg.Resilience
	var cache *objcache.Cache
	if cfg.CacheBytes > 0 {
		ccfg := objcache.Config{Capacity: cfg.CacheBytes}
		if cfg.Resilience != nil {
			ccfg.FreshFor = cfg.CacheFreshFor
			ccfg.NegTTL = cfg.Resilience.WithDefaults().NegTTL
		}
		cache = objcache.New(ccfg)
		pc.Cache = cache
	}
	proxy := core.StartProxy(fleet.Topology, pc)

	clients := make([]*core.LoadClient, cfg.Tenants)
	for i := range clients {
		url := pages[i%len(pages)].MainURL
		clients[i] = core.NewLoadClient(i, fleet.Sim, fleet.Tenants[i], fleet.Proxy, url)
		clients[i].StartAt(time.Duration(i) * cfg.Stagger)
	}
	fleet.Sim.Run()

	loads := make([]metrics.SessionLoad, cfg.Tenants)
	for i, c := range clients {
		loads[i] = c.SessionLoad()
	}
	res := LoadgenSimResult{Loads: loads, Report: metrics.Fleet(loads)}
	if cache != nil {
		res.Cache = cache.Stats()
	}
	if g := proxy.Resilience(); g != nil {
		res.Report.BreakerOpens = g.Opens()
	}
	for _, srv := range fleet.Origins {
		fs := srv.FaultStats()
		res.Faults.Errors += fs.Errors
		res.Faults.Stalls += fs.Stalls
		res.Faults.Partials += fs.Partials
		res.Faults.FlapErrors += fs.FlapErrors
	}
	return res
}
