package experiments

import (
	"reflect"
	"testing"

	"github.com/parcel-go/parcel/internal/sched"
)

// TestBatchMatchesSerial pins the batch engine to the legacy engine: every
// (batch size, parallelism) combination must reproduce the BatchSize == 1
// serial sweep bit for bit — with the shared object cache off and on. This is
// the determinism contract of batch.go — shared arenas, the exec-outcome
// cache, round-robin multiplexing, and the per-topology cache may change
// where time and memory go, never what the figures say.
func TestBatchMatchesSerial(t *testing.T) {
	for _, sharedCache := range []bool{false, true} {
		cfg := goldenConfig()
		cfg.SharedCache = sharedCache
		schemes := []Scheme{DIRScheme, ParcelScheme(sched.ConfigIND), ParcelScheme(sched.Config512K)}
		cfg.BatchSize = 1
		want := Sweep(cfg, schemes)
		for _, batch := range []int{1, 4, 16} {
			for _, par := range []int{1, 4} {
				c := cfg
				c.BatchSize = batch
				c.Parallelism = par
				if got := Sweep(c, schemes); !reflect.DeepEqual(got, want) {
					t.Errorf("sharedCache=%v batch %d × parallelism %d: sweep differs from the serial legacy engine",
						sharedCache, batch, par)
				}
			}
		}
	}
}

// TestBatchRaceStress repeats parallel batched sweeps so the race detector
// sees the cross-worker surfaces — the process-wide exec-outcome cache, the
// webgen page cache, and the artifact caches — under contention, and so
// repeated reuse of each worker's arenas (events, packets, frames,
// recorders) across batches stays deterministic. Run with -race in CI.
func TestBatchRaceStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	cfg := goldenConfig()
	cfg.Pages = 4
	cfg.Parallelism = 4
	cfg.BatchSize = 4
	schemes := []Scheme{DIRScheme, ParcelScheme(sched.ConfigIND)}
	want := Sweep(cfg, schemes)
	for i := 0; i < 3; i++ {
		if got := Sweep(cfg, schemes); !reflect.DeepEqual(got, want) {
			t.Fatalf("sweep %d diverged across arena reuse", i)
		}
	}
}
