package experiments

import (
	"os"
	"reflect"
	"strconv"
	"testing"
	"time"

	"github.com/parcel-go/parcel/internal/sched"
)

// chaosSeed returns the experiment seed for fault-injection tests. The CI
// chaos job sweeps it via CHAOS_SEED; locally it defaults to 1.
func chaosSeed() int64 {
	if v := os.Getenv("CHAOS_SEED"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			return n
		}
	}
	return 1
}

// chaosConfig is a small-but-real sweep configuration: enough pages and
// rounds to exercise loss paths without making the suite slow.
func chaosConfig() Config {
	return Config{Seed: chaosSeed(), Pages: 3, Runs: 2, Jitter: 2 * time.Millisecond}
}

var chaosSchemes = []Scheme{DIRScheme, ParcelScheme(sched.ConfigONLD)}

// TestLossSweepDeterministic is the in-tree half of the chaos acceptance
// gate: the same seed and fault profile must reproduce every counter —
// retries, drops, fallbacks — and every KPI bit-for-bit across runs and
// across parallelism levels.
func TestLossSweepDeterministic(t *testing.T) {
	rates := []float64{0.02}
	profiles := DefaultFaultProfiles()
	serial := chaosConfig()
	serial.Parallelism = 1
	parallel := chaosConfig()
	parallel.Parallelism = 4

	a := LossSweep(serial, rates, profiles, chaosSchemes)
	b := LossSweep(serial, rates, profiles, chaosSchemes)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged across runs:\n%+v\nvs\n%+v", a, b)
	}
	c := LossSweep(parallel, rates, profiles, chaosSchemes)
	if !reflect.DeepEqual(a, c) {
		t.Fatalf("parallel sweep diverged from serial:\n%+v\nvs\n%+v", a, c)
	}
}

// TestLossSweepFinalObjectSetsStable pins the stronger per-run property: at
// a fixed seed and profile, each faulty page load finishes with the identical
// object count and fault counters, run after run.
func TestLossSweepFinalObjectSetsStable(t *testing.T) {
	cfg := chaosConfig()
	cfg.Scenario = DefaultConfig().Scenario
	page := cfg.PageSet()[0]
	profile := DefaultFaultProfiles()[1] // burst
	cfg2 := cfg.withDefaults()
	cfg2.Scenario.AccessFaults = profile.At(0.05)

	r1 := RunOnce(page, chaosSchemes[1], cfg2, chaosSeed())
	r2 := RunOnce(page, chaosSchemes[1], cfg2, chaosSeed())
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("faulty run not reproducible:\n%+v\nvs\n%+v", r1, r2)
	}
	if r1.ObjectsLoaded != page.ObjectCount {
		t.Fatalf("faulty run lost objects: loaded %d of %d", r1.ObjectsLoaded, page.ObjectCount)
	}
	if r1.Retransmits == 0 || r1.DroppedPackets == 0 {
		t.Fatalf("burst profile at 5%% injected nothing: %+v", r1)
	}
}

// TestLossSlowsAndCostsEnergy checks the sweep measures what the paper's
// robustness story predicts: loss increases load time and radio energy.
func TestLossSlowsAndCostsEnergy(t *testing.T) {
	cfg := chaosConfig()
	page := cfg.PageSet()[0]
	clean := cfg.withDefaults()
	lossy := cfg.withDefaults()
	lossy.Scenario.AccessFaults = (FaultProfile{Name: "uniform"}).At(0.08)

	rClean := RunOnce(page, chaosSchemes[1], clean, chaosSeed())
	rLossy := RunOnce(page, chaosSchemes[1], lossy, chaosSeed())
	if rLossy.TLT <= rClean.TLT {
		t.Fatalf("8%% loss did not slow the load: clean %v lossy %v", rClean.TLT, rLossy.TLT)
	}
	if rLossy.RadioJ <= rClean.RadioJ {
		t.Fatalf("8%% loss did not cost energy: clean %.3fJ lossy %.3fJ", rClean.RadioJ, rLossy.RadioJ)
	}
	if rLossy.RetransmitBytes == 0 {
		t.Fatal("lossy run recorded no retransmitted bytes")
	}
}

// TestZeroFaultSweepMatchesPlainSweep pins the off-switch: a sweep at rate 0
// with the uniform profile must equal the plain Sweep byte for byte.
func TestZeroFaultSweepMatchesPlainSweep(t *testing.T) {
	cfg := chaosConfig()
	plain := Sweep(cfg, chaosSchemes)
	faultless := LossSweep(cfg, []float64{0}, []FaultProfile{{Name: "uniform"}}, chaosSchemes)
	for i, pr := range plain {
		for _, s := range chaosSchemes {
			run := pr.Runs[s.Name]
			if run.DroppedPackets != 0 || run.Retransmits != 0 {
				t.Fatalf("plain sweep recorded fault stats: %+v", run)
			}
			_ = i
		}
	}
	// Cross-check the aggregate KPIs of the zero-rate point against the
	// plain sweep's own aggregation.
	for _, pt := range faultless {
		var olt float64
		for _, pr := range plain {
			olt += pr.Runs[pt.Scheme].OLT.Seconds()
		}
		want := time.Duration(olt / float64(len(plain)) * float64(time.Second))
		if pt.MeanOLT != want {
			t.Fatalf("zero-rate point OLT %v != plain sweep %v", pt.MeanOLT, want)
		}
		if pt.Dropped != 0 || pt.Retransmits != 0 || pt.RetransmitBytes != 0 {
			t.Fatalf("zero-rate point carries fault stats: %+v", pt)
		}
	}
}
