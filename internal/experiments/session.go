package experiments

import (
	"strings"
	"time"

	"github.com/parcel-go/parcel/internal/cloudbrowser"
	"github.com/parcel-go/parcel/internal/core"
	"github.com/parcel-go/parcel/internal/dirbrowser"
	"github.com/parcel-go/parcel/internal/energy"
	"github.com/parcel-go/parcel/internal/radio"
	"github.com/parcel-go/parcel/internal/runner"
	"github.com/parcel-go/parcel/internal/scenario"
	"github.com/parcel-go/parcel/internal/webgen"
)

// SessionPoint is one bar group of Figure 8: cumulative energy up to an
// event (FD, C1..C4).
type SessionPoint struct {
	Label     string
	At        time.Duration // when the event's effects settle
	CumRadioJ float64
	CumTotalJ float64 // radio + CPU (screen excluded, §8.2)
}

// SessionResult is one scheme's Figure 8 series.
type SessionResult struct {
	Scheme string
	Points []SessionPoint
}

// Fig8Result holds the full interactive-session comparison.
type Fig8Result struct {
	Page    string
	Clicks  int
	Results []SessionResult
}

// Fig8 reproduces the §8.2 session experiment: the interactive (ebay-style)
// page is loaded once (FD), then the user clicks through the product gallery
// once per minute (C1..C4). PARCEL and DIR handle clicks locally; CB
// round-trips each one to the cloud.
func Fig8(cfg Config) Fig8Result {
	cfg = cfg.withDefaults()
	page := webgen.InteractivePage(cfg.PageSet())
	const clicks = 4
	const clickInterval = 60 * time.Second
	dev := energy.DefaultDevice()

	// The three scheme sessions are independent topologies: run them as
	// parallel tasks, slotted so the result order stays PARCEL, DIR, CB.
	sessions := []func() SessionResult{
		func() SessionResult { return runParcelSession(page, cfg, clicks, clickInterval, dev) },
		func() SessionResult { return runDIRSession(page, cfg, clicks, clickInterval, dev) },
		func() SessionResult { return runCBSession(page, cfg, clicks, clickInterval, dev) },
	}
	out := Fig8Result{Page: page.Name, Clicks: clicks}
	out.Results = runner.Map(cfg.Parallelism, len(sessions), func(i int) SessionResult {
		return sessions[i]()
	})
	return out
}

// sessionEnergy converts a client trace + CPU history into cumulative points
// evaluated at the given event-settle times.
func sessionEnergy(scheme string, topo *scenario.Topology, cpuAt func(time.Duration) time.Duration, eventTimes []time.Duration, labels []string, dev energy.DeviceParams) SessionResult {
	last, _ := topo.ClientTrace.Last()
	horizon := last + time.Second
	rep := radio.Simulate(topo.ClientTrace.Activities(), radio.DefaultLTE(), horizon)
	res := SessionResult{Scheme: scheme}
	for i, t := range eventTimes {
		res.Points = append(res.Points, SessionPoint{
			Label:     labels[i],
			At:        t,
			CumRadioJ: rep.EnergyUpTo(t),
			CumTotalJ: rep.EnergyUpTo(t) + dev.CPUEnergy(cpuAt(t)),
		})
	}
	return res
}

// sessionLabels returns FD, C1..Cn.
func sessionLabels(clicks int) []string {
	labels := []string{"FD"}
	for i := 1; i <= clicks; i++ {
		labels = append(labels, "C"+itoa(i))
	}
	return labels
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

// cpuSampler records a monotone (time, cpuActive) history and interpolates
// step-wise.
type cpuSampler struct {
	times []time.Duration
	cpu   []time.Duration
}

func (c *cpuSampler) record(at time.Duration, active time.Duration) {
	c.times = append(c.times, at)
	c.cpu = append(c.cpu, active)
}

func (c *cpuSampler) at(t time.Duration) time.Duration {
	var out time.Duration
	for i, ts := range c.times {
		if ts <= t {
			out = c.cpu[i]
		}
	}
	return out
}

func runParcelSession(page webgen.Page, cfg Config, clicks int, interval time.Duration, dev energy.DeviceParams) SessionResult {
	params := cfg.Scenario
	params.Seed = cfg.Seed
	topo := scenario.Build(page, params)
	core.StartProxy(topo, core.DefaultProxyConfig())
	client := core.NewClient(topo, core.DefaultClientConfig())
	client.Load()

	var sampler cpuSampler
	fd := topo.Sim.Now()
	sampler.record(fd, client.Engine.CPUActive())
	eventTimes := []time.Duration{fd + 5*time.Second}
	for i := 1; i <= clicks; i++ {
		at := fd + time.Duration(i)*interval
		topo.Sim.RunUntil(at)
		client.Engine.FireEvent("click", "gallery-next")
		topo.Sim.Run()
		sampler.record(topo.Sim.Now(), client.Engine.CPUActive())
		eventTimes = append(eventTimes, at+5*time.Second)
	}
	return sessionEnergy("PARCEL", topo, sampler.at, eventTimes, sessionLabels(clicks), dev)
}

func runDIRSession(page webgen.Page, cfg Config, clicks int, interval time.Duration, dev energy.DeviceParams) SessionResult {
	params := cfg.Scenario
	params.Seed = cfg.Seed
	topo := scenario.Build(page, params)
	b := dirbrowser.New(topo, dirbrowser.Options{FixedRandom: true})
	b.Load()

	var sampler cpuSampler
	fd := topo.Sim.Now()
	sampler.record(fd, b.Engine.CPUActive())
	eventTimes := []time.Duration{fd + 5*time.Second}
	for i := 1; i <= clicks; i++ {
		at := fd + time.Duration(i)*interval
		topo.Sim.RunUntil(at)
		b.Engine.FireEvent("click", "gallery-next")
		topo.Sim.Run()
		sampler.record(topo.Sim.Now(), b.Engine.CPUActive())
		eventTimes = append(eventTimes, at+5*time.Second)
	}
	return sessionEnergy("DIR", topo, sampler.at, eventTimes, sessionLabels(clicks), dev)
}

func runCBSession(page webgen.Page, cfg Config, clicks int, interval time.Duration, dev energy.DeviceParams) SessionResult {
	params := cfg.Scenario
	params.Seed = cfg.Seed
	topo := scenario.Build(page, params)
	sess := cloudbrowser.New(topo, cloudbrowser.DefaultConfig())
	sess.Load()

	var sampler cpuSampler
	fd := topo.Sim.Now()
	sampler.record(fd, sess.ClientCPUActive())
	eventTimes := []time.Duration{fd + 5*time.Second}
	for i := 1; i <= clicks; i++ {
		at := fd + time.Duration(i)*interval
		topo.Sim.RunUntil(at)
		sess.Click("click", "gallery-next", nil)
		topo.Sim.Run()
		sampler.record(topo.Sim.Now(), sess.ClientCPUActive())
		eventTimes = append(eventTimes, at+5*time.Second)
	}
	return sessionEnergy("CB", topo, sampler.at, eventTimes, sessionLabels(clicks), dev)
}

// SchemeNamed fetches one scheme's series from a Fig8Result.
func (r Fig8Result) SchemeNamed(name string) (SessionResult, bool) {
	for _, s := range r.Results {
		if strings.EqualFold(s.Scheme, name) {
			return s, true
		}
	}
	return SessionResult{}, false
}
