package experiments

import (
	"time"

	"github.com/parcel-go/parcel/internal/radio"
	"github.com/parcel-go/parcel/internal/sched"
)

// ModelPoint is one bundle-count evaluation of the §6 closed forms.
type ModelPoint struct {
	N       float64
	OLT     time.Duration
	EnergyJ float64
}

// ModelResult validates the §6 analysis: the α constant, the optimal bundle
// size for the paper's worked example (2 MB page, 6 Mbps ⇒ b* ≈ 0.9 MB), and
// the E(n)/OLT(n) trade-off curves.
type ModelResult struct {
	Alpha            float64
	PaperAlpha       float64
	OptimalBundle    float64 // bytes
	PaperOptimalLow  float64
	PaperOptimalHigh float64
	Curve            []ModelPoint
	MinEnergyN       float64
}

// Model runs the §6 analytical model for the paper's worked example.
func Model() ModelResult {
	p := radio.DefaultLTE()
	// Tp is set high enough that E(n) stays within the model's validity
	// bound across the plotted n range (the closed form requires a
	// nonnegative Long-DRX residence, §6).
	m := sched.Model{
		Radio:       p,
		SpeedBps:    6e6 / 8,
		PageBytes:   2 * 1024 * 1024,
		ProxyOnload: 10 * time.Second,
	}
	out := ModelResult{
		Alpha:            p.Alpha(),
		PaperAlpha:       0.74,
		OptimalBundle:    m.OptimalBundleSize(),
		PaperOptimalLow:  0.8e6,
		PaperOptimalHigh: 1.0e6,
	}
	best := ModelPoint{N: 1, EnergyJ: m.RadioEnergy(1)}
	for n := 1.0; n <= 32; n++ {
		pt := ModelPoint{N: n, OLT: m.OLT(n), EnergyJ: m.RadioEnergy(n)}
		out.Curve = append(out.Curve, pt)
		if pt.EnergyJ < best.EnergyJ {
			best = pt
		}
	}
	out.MinEnergyN = best.N
	return out
}
