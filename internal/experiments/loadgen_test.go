package experiments

import (
	"reflect"
	"testing"
	"time"

	"github.com/parcel-go/parcel/internal/httpsim"
	"github.com/parcel-go/parcel/internal/resilience"
	"github.com/parcel-go/parcel/internal/sched"
)

// TestLoadgenSimSharedCache drives a simulated fleet through one proxy with
// the cross-session cache: every tenant completes, later tenants hit the
// cache, and the fleet's origin traffic collapses to one copy per object.
func TestLoadgenSimSharedCache(t *testing.T) {
	res := LoadgenSim(LoadgenSimConfig{
		Tenants:    40,
		Pages:      2,
		Seed:       7,
		Sched:      sched.ConfigIND,
		CacheBytes: 64 << 20,
	})
	r := res.Report
	if r.Sessions != 40 || r.Completed != 40 {
		t.Fatalf("completion: %+v", r)
	}
	if r.CacheHitRate <= 0.5 {
		t.Errorf("cache hit rate = %v over 40 tenants of 2 pages, want > 0.5", r.CacheHitRate)
	}
	if !(r.P50 > 0 && r.P50 <= r.P90 && r.P90 <= r.P99) {
		t.Errorf("percentiles unordered: p50=%v p90=%v p99=%v", r.P50, r.P90, r.P99)
	}
	if r.EgressPerSession <= 0 {
		t.Errorf("egress/session = %v", r.EgressPerSession)
	}
	if res.Cache.Hits == 0 {
		t.Errorf("cache never hit: %+v", res.Cache)
	}
	// Cross-session dedup: with the cache, fleet origin bytes are far below
	// tenants × page weight — they equal what the earliest tenant of each
	// page pulled (plus any pre-hit concurrent fetches during warmup).
	var withCache int64
	for _, l := range res.Loads {
		withCache += l.OriginBytes
	}
	nocache := LoadgenSim(LoadgenSimConfig{
		Tenants: 40, Pages: 2, Seed: 7, Sched: sched.ConfigIND,
	})
	if nocache.Report.CacheHitRate != 0 {
		t.Errorf("cache disabled but hit rate = %v", nocache.Report.CacheHitRate)
	}
	if nocache.Report.Completed != 40 {
		t.Fatalf("uncached fleet completion: %+v", nocache.Report)
	}
	if withCache >= nocache.Report.OriginBytes/2 {
		t.Errorf("shared cache barely reduced origin traffic: %d cached vs %d uncached",
			withCache, nocache.Report.OriginBytes)
	}
}

// chaosSimConfig is the shared fixture for the sim-arm chaos tests: a fleet
// under a startup origin flap plus a steady error rate, with the resilient
// fetch path armed to carry sessions through.
func chaosSimConfig() LoadgenSimConfig {
	return LoadgenSimConfig{
		Tenants:    40,
		Pages:      2,
		Seed:       7,
		Sched:      sched.ConfigIND,
		CacheBytes: 64 << 20,
		OriginFaults: httpsim.OriginFaults{
			ErrorRate: 0.05,
			Flaps:     []httpsim.FlapWindow{{Start: 0, End: 300 * time.Millisecond}},
		},
		Resilience: &resilience.Policy{
			Timeout:          10 * time.Second,
			MaxRetries:       5,
			BackoffBase:      200 * time.Millisecond,
			BackoffMax:       time.Second,
			FailureThreshold: 1 << 20,
		},
	}
}

// TestLoadgenSimChaos is the deterministic chaos arm: origin faults bite, the
// retry budget absorbs them, and every tenant still completes.
func TestLoadgenSimChaos(t *testing.T) {
	res := LoadgenSim(chaosSimConfig())
	r := res.Report
	if r.Completed != 40 {
		t.Fatalf("%d/40 tenants completed (%d failed) under origin faults", r.Completed, r.Failed)
	}
	total := res.Faults.Errors + res.Faults.Stalls + res.Faults.Partials + res.Faults.FlapErrors
	if total == 0 {
		t.Error("origins injected no faults")
	}
	if r.Retries == 0 {
		t.Error("resilient fetch path never retried")
	}
	if !(r.P50 > 0 && r.P50 <= r.P99) {
		t.Errorf("percentiles unordered: p50=%v p99=%v", r.P50, r.P99)
	}
}

// TestLoadgenSimOriginFaultProfiles is the CI chaos job's origin-fault
// matrix: each profile — outright errors, slow stalls, timed flaps — is run
// on its own (the job crosses the subtests with CHAOS_SEED), every tenant
// must complete through it, the profile's own fault kind must actually fire,
// and the run must reproduce bit-identically from the seed.
func TestLoadgenSimOriginFaultProfiles(t *testing.T) {
	profiles := []struct {
		name   string
		faults httpsim.OriginFaults
		fired  func(s httpsim.OriginFaultStats) int
	}{
		{"errors",
			httpsim.OriginFaults{ErrorRate: 0.25},
			func(s httpsim.OriginFaultStats) int { return s.Errors }},
		{"stalls",
			httpsim.OriginFaults{StallRate: 0.3, StallFor: 500 * time.Millisecond},
			func(s httpsim.OriginFaultStats) int { return s.Stalls }},
		{"flaps",
			httpsim.OriginFaults{Flaps: []httpsim.FlapWindow{
				{Start: 0, End: 300 * time.Millisecond},
				{Start: time.Second, End: 1200 * time.Millisecond},
			}},
			func(s httpsim.OriginFaultStats) int { return s.FlapErrors }},
	}
	for _, p := range profiles {
		t.Run(p.name, func(t *testing.T) {
			cfg := chaosSimConfig()
			cfg.Seed = chaosSeed()
			cfg.OriginFaults = p.faults
			res := LoadgenSim(cfg)
			if res.Report.Completed != cfg.Tenants {
				t.Fatalf("%d/%d tenants completed (%d failed) under %s profile, seed %d",
					res.Report.Completed, cfg.Tenants, res.Report.Failed, p.name, cfg.Seed)
			}
			if p.fired(res.Faults) == 0 {
				t.Errorf("%s profile injected none of its own fault kind: %+v", p.name, res.Faults)
			}
			if again := LoadgenSim(cfg); !reflect.DeepEqual(res, again) {
				t.Errorf("%s profile at seed %d not reproducible", p.name, cfg.Seed)
			}
		})
	}
}

// TestLoadgenSimChaosDeterministic pins that the chaos arm — fault RNG, retry
// backoff RNG and all — replays bit-identically from its seed.
func TestLoadgenSimChaosDeterministic(t *testing.T) {
	a := LoadgenSim(chaosSimConfig())
	b := LoadgenSim(chaosSimConfig())
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two runs of one chaos LoadgenSimConfig produced different results")
	}
}

// TestLoadgenSimDeterministic pins the fleet simulation's reproducibility:
// same config, same bits — loads, report, and cache stats alike.
func TestLoadgenSimDeterministic(t *testing.T) {
	cfg := LoadgenSimConfig{
		Tenants:    25,
		Pages:      3,
		Seed:       11,
		Sched:      sched.ConfigONLD,
		CacheBytes: 32 << 20,
	}
	a := LoadgenSim(cfg)
	b := LoadgenSim(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two runs of one LoadgenSimConfig produced different results")
	}
}
