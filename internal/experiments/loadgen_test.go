package experiments

import (
	"reflect"
	"testing"

	"github.com/parcel-go/parcel/internal/sched"
)

// TestLoadgenSimSharedCache drives a simulated fleet through one proxy with
// the cross-session cache: every tenant completes, later tenants hit the
// cache, and the fleet's origin traffic collapses to one copy per object.
func TestLoadgenSimSharedCache(t *testing.T) {
	res := LoadgenSim(LoadgenSimConfig{
		Tenants:    40,
		Pages:      2,
		Seed:       7,
		Sched:      sched.ConfigIND,
		CacheBytes: 64 << 20,
	})
	r := res.Report
	if r.Sessions != 40 || r.Completed != 40 {
		t.Fatalf("completion: %+v", r)
	}
	if r.CacheHitRate <= 0.5 {
		t.Errorf("cache hit rate = %v over 40 tenants of 2 pages, want > 0.5", r.CacheHitRate)
	}
	if !(r.P50 > 0 && r.P50 <= r.P90 && r.P90 <= r.P99) {
		t.Errorf("percentiles unordered: p50=%v p90=%v p99=%v", r.P50, r.P90, r.P99)
	}
	if r.EgressPerSession <= 0 {
		t.Errorf("egress/session = %v", r.EgressPerSession)
	}
	if res.Cache.Hits == 0 {
		t.Errorf("cache never hit: %+v", res.Cache)
	}
	// Cross-session dedup: with the cache, fleet origin bytes are far below
	// tenants × page weight — they equal what the earliest tenant of each
	// page pulled (plus any pre-hit concurrent fetches during warmup).
	var withCache int64
	for _, l := range res.Loads {
		withCache += l.OriginBytes
	}
	nocache := LoadgenSim(LoadgenSimConfig{
		Tenants: 40, Pages: 2, Seed: 7, Sched: sched.ConfigIND,
	})
	if nocache.Report.CacheHitRate != 0 {
		t.Errorf("cache disabled but hit rate = %v", nocache.Report.CacheHitRate)
	}
	if nocache.Report.Completed != 40 {
		t.Fatalf("uncached fleet completion: %+v", nocache.Report)
	}
	if withCache >= nocache.Report.OriginBytes/2 {
		t.Errorf("shared cache barely reduced origin traffic: %d cached vs %d uncached",
			withCache, nocache.Report.OriginBytes)
	}
}

// TestLoadgenSimDeterministic pins the fleet simulation's reproducibility:
// same config, same bits — loads, report, and cache stats alike.
func TestLoadgenSimDeterministic(t *testing.T) {
	cfg := LoadgenSimConfig{
		Tenants:    25,
		Pages:      3,
		Seed:       11,
		Sched:      sched.ConfigONLD,
		CacheBytes: 32 << 20,
	}
	a := LoadgenSim(cfg)
	b := LoadgenSim(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two runs of one LoadgenSimConfig produced different results")
	}
}
