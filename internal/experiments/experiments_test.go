package experiments

import (
	"reflect"
	"testing"
	"time"

	"github.com/parcel-go/parcel/internal/sched"
	"github.com/parcel-go/parcel/internal/stats"
)

// quickCfg keeps test sweeps small; parcel-bench runs the full evaluation.
func quickCfg(pages int) Config {
	cfg := DefaultConfig()
	cfg.Pages = pages
	cfg.Runs = 1
	cfg.Jitter = 0
	return cfg
}

func TestFig3WiredBeatsCellular(t *testing.T) {
	r := Fig3(quickCfg(8))
	if len(r.CellularOLT) != 8 || len(r.WiredOLT) != 8 {
		t.Fatalf("series lengths wrong: %d/%d", len(r.CellularOLT), len(r.WiredOLT))
	}
	cell, wired := stats.Median(r.CellularOLT), stats.Median(r.WiredOLT)
	// Figure 3: cellular OLT median > 6 s, wired ≈ 1.1 s — we require the
	// strong ordering and a multiple-of gap.
	if wired >= cell {
		t.Fatalf("wired median %.2fs >= cellular %.2fs", wired, cell)
	}
	if cell < 2*wired {
		t.Fatalf("cellular %.2fs not substantially slower than wired %.2fs", cell, wired)
	}
}

func TestFig5PatternsDiffer(t *testing.T) {
	r := Fig5(quickCfg(8), 2)
	if len(r.Series) != 4 {
		t.Fatalf("series = %d, want 4", len(r.Series))
	}
	byScheme := map[string]Fig5Series{}
	for _, s := range r.Series {
		if len(s.Points) == 0 {
			t.Fatalf("scheme %s has empty timeline", s.Scheme)
		}
		byScheme[s.Scheme] = s
	}
	// ONLD makes strictly fewer bundles than IND.
	if byScheme["PARCEL(ONLD)"].Bundles >= byScheme["PARCEL(IND)"].Bundles {
		t.Fatalf("ONLD bundles %d >= IND bundles %d",
			byScheme["PARCEL(ONLD)"].Bundles, byScheme["PARCEL(IND)"].Bundles)
	}
	// All schemes deliver the same total page bytes (within framing noise).
	last := func(s Fig5Series) int64 { return s.Points[len(s.Points)-1].Bytes }
	ind, onld := last(byScheme["PARCEL(IND)"]), last(byScheme["PARCEL(ONLD)"])
	if diff := float64(ind-onld) / float64(ind); diff > 0.1 || diff < -0.1 {
		t.Fatalf("byte totals differ: IND %d vs ONLD %d", ind, onld)
	}
}

func TestFig6aTimelineOrdering(t *testing.T) {
	r := Fig6a(quickCfg(8))
	if len(r.ProxySeries) == 0 || len(r.ParcelSeries) == 0 || len(r.DIRSeries) == 0 {
		t.Fatal("missing series")
	}
	// Figure 6a: download completes first at the proxy, then the PARCEL
	// client, then the DIR client.
	if !(r.ProxyOnload < r.ParcelClientOLT) {
		t.Fatalf("proxy onload %v not before PARCEL client OLT %v", r.ProxyOnload, r.ParcelClientOLT)
	}
	if !(r.ParcelClientOLT < r.DIRClientOLT) {
		t.Fatalf("PARCEL OLT %v not before DIR OLT %v", r.ParcelClientOLT, r.DIRClientOLT)
	}
}

func TestFig6bParcelDominates(t *testing.T) {
	r := Fig6bAndEnergy(quickCfg(10))
	if stats.Median(r.ParcelOLT) >= stats.Median(r.DIROLT) {
		t.Fatalf("PARCEL OLT median %.2f >= DIR %.2f", stats.Median(r.ParcelOLT), stats.Median(r.DIROLT))
	}
	if stats.Median(r.ParcelTLT) >= stats.Median(r.DIRTLT) {
		t.Fatalf("PARCEL TLT median %.2f >= DIR %.2f", stats.Median(r.ParcelTLT), stats.Median(r.DIRTLT))
	}
	// Energy ordering too (Figure 7b).
	if stats.Median(r.ParcelEnergy) >= stats.Median(r.DIREnergy) {
		t.Fatalf("PARCEL energy median %.2f >= DIR %.2f", stats.Median(r.ParcelEnergy), stats.Median(r.DIREnergy))
	}
}

func TestFig6cPositiveCorrelation(t *testing.T) {
	r := Fig6c(quickCfg(12))
	if len(r.Points) != 12 {
		t.Fatalf("points = %d", len(r.Points))
	}
	// Paper: correlation coefficient 0.83 — richer pages benefit more. We
	// require a clearly positive correlation.
	if r.Correlation < 0.5 {
		t.Fatalf("correlation = %.2f, want strongly positive", r.Correlation)
	}
}

func TestFig7aTransitionsAndEnergy(t *testing.T) {
	r := Fig7a(quickCfg(8))
	// Figure 7a: DIR transitions (22) far exceed PARCEL's (7), and DIR
	// consumes roughly twice the energy (11.16 J vs 5.63 J).
	if r.ParcelTransitions >= r.DIRTransitions {
		t.Fatalf("PARCEL transitions %d >= DIR %d", r.ParcelTransitions, r.DIRTransitions)
	}
	if r.ParcelEnergy >= r.DIREnergy {
		t.Fatalf("PARCEL energy %.2f >= DIR %.2f", r.ParcelEnergy, r.DIREnergy)
	}
	if len(r.DIRIntervals) == 0 || len(r.ParcelIntervals) == 0 {
		t.Fatal("missing RRC intervals")
	}
}

func TestFig7cSavingsDecomposition(t *testing.T) {
	r := Fig7bc(quickCfg(10))
	positive := 0
	for i, s := range r.TotalSavings {
		if s > 0 {
			positive++
		}
		if r.CRSavingShare[i] < 0 || r.CRSavingShare[i] > 1 {
			t.Fatalf("CR share out of range: %v", r.CRSavingShare[i])
		}
	}
	// Paper: PARCEL saves at least 20% of radio energy for 95% of pages.
	if positive < len(r.TotalSavings)*8/10 {
		t.Fatalf("only %d/%d pages saved energy", positive, len(r.TotalSavings))
	}
	// CR savings account for at least half of total savings for most pages.
	crMajority := 0
	for _, share := range r.CRSavingShare {
		if share >= 0.5 {
			crMajority++
		}
	}
	if crMajority < len(r.CRSavingShare)/2 {
		t.Fatalf("CR-dominant savings on only %d/%d pages", crMajority, len(r.CRSavingShare))
	}
}

func TestFig8SessionShapes(t *testing.T) {
	r := Fig8(quickCfg(8))
	cb, ok := r.SchemeNamed("CB")
	if !ok {
		t.Fatal("no CB series")
	}
	parcel, _ := r.SchemeNamed("PARCEL")
	dir, _ := r.SchemeNamed("DIR")

	// CB cumulative radio energy grows significantly with every click.
	for i := 1; i < len(cb.Points); i++ {
		if cb.Points[i].CumRadioJ <= cb.Points[i-1].CumRadioJ+0.1 {
			t.Fatalf("CB radio energy flat at click %d: %+v", i, cb.Points)
		}
	}
	// PARCEL and DIR stay (nearly) flat after FD.
	for _, s := range []SessionResult{parcel, dir} {
		growth := s.Points[len(s.Points)-1].CumRadioJ - s.Points[0].CumRadioJ
		if growth > 1.0 {
			t.Fatalf("%s radio energy grew %.2f J across clicks, want ~flat", s.Scheme, growth)
		}
	}
	// Paper: CB's total energy is lower right after FD (no client JS)...
	if cb.Points[0].CumTotalJ >= parcel.Points[0].CumTotalJ {
		t.Fatalf("CB FD total %.2f >= PARCEL %.2f — thin client must start cheaper",
			cb.Points[0].CumTotalJ, parcel.Points[0].CumTotalJ)
	}
	// ...but by the end of the session it exceeds both PARCEL and DIR.
	lastCB := cb.Points[len(cb.Points)-1].CumTotalJ
	if lastCB <= parcel.Points[len(parcel.Points)-1].CumTotalJ {
		t.Fatalf("CB final total %.2f <= PARCEL %.2f", lastCB, parcel.Points[len(parcel.Points)-1].CumTotalJ)
	}
	if lastCB <= dir.Points[len(dir.Points)-1].CumTotalJ {
		t.Fatalf("CB final total %.2f <= DIR %.2f", lastCB, dir.Points[len(dir.Points)-1].CumTotalJ)
	}
	// And PARCEL's cumulative total stays below DIR's throughout.
	for i := range parcel.Points {
		if parcel.Points[i].CumTotalJ >= dir.Points[i].CumTotalJ {
			t.Fatalf("PARCEL total %.2f >= DIR %.2f at %s",
				parcel.Points[i].CumTotalJ, dir.Points[i].CumTotalJ, parcel.Points[i].Label)
		}
	}
}

func TestFig9VariantShapes(t *testing.T) {
	r := Fig9(quickCfg(10))
	if len(r.Variants) != 4 {
		t.Fatalf("variants = %v", r.Variants)
	}
	// Figure 9a: median OLT increase is nonnegative for every variant and
	// largest for ONLD.
	med := func(name string) float64 { return stats.Median(r.OLTIncrease[name]) }
	if med("PARCEL(ONLD)") < med("PARCEL(512K)")-0.05 {
		t.Fatalf("ONLD increase %.2f < 512K increase %.2f", med("PARCEL(ONLD)"), med("PARCEL(512K)"))
	}
	if med("PARCEL(512K)") < -0.1 {
		t.Fatalf("512K median OLT increase %.2f strongly negative", med("PARCEL(512K)"))
	}
	// Figure 9b: energy increases are small either way (no uniform winner).
	for _, v := range r.Variants {
		if e := stats.Median(r.EnergyIncrease[v]); e > 1.5 || e < -1.5 {
			t.Fatalf("%s median energy increase %.2f J out of plausible band", v, e)
		}
	}
}

func TestFig1011RealServers(t *testing.T) {
	r := Fig1011(quickCfg(10))
	if stats.Median(r.ParcelOLT) >= stats.Median(r.DIROLT) {
		t.Fatalf("real servers: PARCEL OLT %.2f >= DIR %.2f", stats.Median(r.ParcelOLT), stats.Median(r.DIROLT))
	}
	if stats.Median(r.ParcelEnergy) >= stats.Median(r.DIREnergy) {
		t.Fatalf("real servers: PARCEL energy %.2f >= DIR %.2f", stats.Median(r.ParcelEnergy), stats.Median(r.DIREnergy))
	}
}

func TestDelaySensitivity(t *testing.T) {
	r := DelaySensitivity(quickCfg(6))
	k20, k60 := (20 * time.Millisecond).String(), (60 * time.Millisecond).String()
	// Higher proxy↔server delay raises everyone's OLT.
	if r.MedianOLT[k60]["PARCEL(IND)"] <= r.MedianOLT[k20]["PARCEL(IND)"] {
		t.Fatalf("60ms IND OLT %.2f <= 20ms %.2f", r.MedianOLT[k60]["PARCEL(IND)"], r.MedianOLT[k20]["PARCEL(IND)"])
	}
	// §8.3: with higher delay, ONLD's latency penalty over IND grows.
	pen20 := r.MedianOLT[k20]["PARCEL(ONLD)"] - r.MedianOLT[k20]["PARCEL(IND)"]
	pen60 := r.MedianOLT[k60]["PARCEL(ONLD)"] - r.MedianOLT[k60]["PARCEL(IND)"]
	if pen60 < pen20-0.2 {
		t.Fatalf("ONLD penalty shrank with delay: %.2f -> %.2f", pen20, pen60)
	}
}

func TestHeadlineReductions(t *testing.T) {
	s := Headline(quickCfg(12))
	// The abstract claims 49.6% OLT and 65% radio-energy reduction; the
	// reproduced shape must show reductions of at least 35% and 40%.
	if s.OLTReduction < 0.35 {
		t.Fatalf("OLT reduction %.1f%%, want >= 35%% (paper: 49.6%%)", 100*s.OLTReduction)
	}
	if s.EnergyReduction < 0.40 {
		t.Fatalf("energy reduction %.1f%%, want >= 40%% (paper: 65%%)", 100*s.EnergyReduction)
	}
	if s.OLTReduction > 0.75 || s.EnergyReduction > 0.85 {
		t.Fatalf("reductions implausibly large: %.2f / %.2f", s.OLTReduction, s.EnergyReduction)
	}
}

func TestTable1Measured(t *testing.T) {
	m := MeasureTable1(quickCfg(8))
	if m.ParcelClientConns != 1 {
		t.Fatalf("PARCEL conns = %d, want 1 (Table 1: single)", m.ParcelClientConns)
	}
	if m.ParcelClientRequests != 1 {
		t.Fatalf("PARCEL requests = %d, want 1 (Table 1: single)", m.ParcelClientRequests)
	}
	if m.DIRClientConns <= 1 {
		t.Fatalf("DIR conns = %d, want many", m.DIRClientConns)
	}
	if m.DIRClientRequests <= m.ParcelClientRequests {
		t.Fatalf("DIR requests = %d, want per-object", m.DIRClientRequests)
	}
	if m.ParcelProxyIdentified == 0 {
		t.Fatal("proxy identified no objects")
	}
	if m.InteractionPackets != 0 {
		t.Fatalf("interaction packets = %d, want 0 (local JS)", m.InteractionPackets)
	}
}

func TestModelWorkedExample(t *testing.T) {
	m := Model()
	if m.Alpha < 0.70 || m.Alpha > 0.78 {
		t.Fatalf("alpha = %.3f, want ≈ 0.74", m.Alpha)
	}
	if m.OptimalBundle < m.PaperOptimalLow || m.OptimalBundle > m.PaperOptimalHigh {
		t.Fatalf("b* = %.0f, want within [%.0f, %.0f]", m.OptimalBundle, m.PaperOptimalLow, m.PaperOptimalHigh)
	}
	if len(m.Curve) == 0 {
		t.Fatal("empty model curve")
	}
	// OLT decreases in n along the curve.
	for i := 1; i < len(m.Curve); i++ {
		if m.Curve[i].OLT > m.Curve[i-1].OLT {
			t.Fatalf("OLT(n) not decreasing at n=%v", m.Curve[i].N)
		}
	}
}

func TestSweepDeterministic(t *testing.T) {
	cfg := quickCfg(3)
	a := Sweep(cfg, []Scheme{ParcelScheme(sched.ConfigIND)})
	b := Sweep(cfg, []Scheme{ParcelScheme(sched.ConfigIND)})
	for i := range a {
		ra, rb := a[i].Runs["PARCEL(IND)"], b[i].Runs["PARCEL(IND)"]
		if ra.OLT != rb.OLT || ra.RadioJ != rb.RadioJ {
			t.Fatalf("sweep not deterministic on page %d", i)
		}
	}
}

// TestSweepParallelMatchesSerial is the determinism contract of the runner
// rewire: a parallel sweep must reproduce the serial sweep bit for bit —
// every metric, trace point, and radio interval — because each task's seed
// derives from (cfg.Seed, round) alone, never from execution order. Jitter
// is on and rounds > 1 so the per-round seeds actually differ.
func TestSweepParallelMatchesSerial(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Pages = 4
	cfg.Runs = 3
	cfg.Jitter = 2 * time.Millisecond
	schemes := []Scheme{DIRScheme, ParcelScheme(sched.ConfigIND), ParcelScheme(sched.Config512K)}

	cfg.Parallelism = 1
	serial := Sweep(cfg, schemes)
	cfg.Parallelism = 8
	parallel := Sweep(cfg, schemes)

	if !reflect.DeepEqual(serial, parallel) {
		for i := range serial {
			for _, s := range schemes {
				if !reflect.DeepEqual(serial[i].Runs[s.Name], parallel[i].Runs[s.Name]) {
					t.Errorf("page %d scheme %s: serial %+v != parallel %+v",
						i, s.Name, serial[i].Runs[s.Name], parallel[i].Runs[s.Name])
				}
			}
		}
		t.Fatal("parallel sweep diverged from serial sweep")
	}
}
