package experiments

import (
	"time"

	"github.com/parcel-go/parcel/internal/browser"
	"github.com/parcel-go/parcel/internal/core"
	"github.com/parcel-go/parcel/internal/dirbrowser"
	"github.com/parcel-go/parcel/internal/metrics"
	"github.com/parcel-go/parcel/internal/radio"
	"github.com/parcel-go/parcel/internal/runner"
	"github.com/parcel-go/parcel/internal/scenario"
	"github.com/parcel-go/parcel/internal/sched"
	"github.com/parcel-go/parcel/internal/spdybrowser"
	"github.com/parcel-go/parcel/internal/stats"
	"github.com/parcel-go/parcel/internal/trace"
	"github.com/parcel-go/parcel/internal/webgen"
)

// --- Figure 3: median OLT, cellular vs wired ------------------------------

// Fig3Result carries the two OLT distributions of Figure 3.
type Fig3Result struct {
	CellularOLT []float64 // seconds, one per page (median of runs)
	WiredOLT    []float64
}

// Fig3 downloads the page set with the traditional browser over the LTE
// access (mobile device) and over a wire-line access (desktop-class client),
// the §2.3 motivation comparison. Pages run in parallel; the wired and
// cellular arms of one page are two further independent tasks.
func Fig3(cfg Config) Fig3Result {
	cfg = cfg.withDefaults()
	pages := cfg.PageSet()
	type pagePair struct{ cell, wired float64 }
	pairs := runner.Map(cfg.Parallelism, len(pages), func(i int) pagePair {
		page := pages[i]
		cell := MedianRun(page, DIRScheme, cfg)

		params := cfg.Scenario
		params.Wired = true
		params.Seed = cfg.Seed
		topo := scenario.Build(page, params)
		wired := dirbrowser.Run(topo, dirbrowser.Options{
			FixedRandom:      true,
			CPU:              browser.DesktopCPU(),
			RequestIssueCost: time.Millisecond,
			MaxTotalConns:    35, // desktop-class pool
		})
		return pagePair{cell: cell.OLT.Seconds(), wired: wired.OLT.Seconds()}
	})
	var out Fig3Result
	for _, p := range pairs {
		out.CellularOLT = append(out.CellularOLT, p.cell)
		out.WiredOLT = append(out.WiredOLT, p.wired)
	}
	return out
}

// --- Figure 5: download patterns ------------------------------------------

// Fig5Series is a client-side cumulative download timeline for one scheme.
type Fig5Series struct {
	Scheme  string
	Points  []trace.Point
	Bundles int
}

// Fig5Result shows the transfer patterns of DIR and the PARCEL schedules on
// one representative page.
type Fig5Result struct {
	Page   string
	Series []Fig5Series
}

// Fig5 reproduces the Figure 5 download-pattern comparison. The four arms
// (DIR plus three PARCEL schedules) each build a private topology and run in
// parallel.
func Fig5(cfg Config, pageIndex int) Fig5Result {
	cfg = cfg.withDefaults()
	pages := cfg.PageSet()
	page := pages[pageIndex%len(pages)]

	params := cfg.Scenario
	params.Seed = cfg.Seed

	parcelScheds := []sched.Config{sched.ConfigIND, sched.ConfigONLD, sched.Config512K}
	series := runner.Map(cfg.Parallelism, 1+len(parcelScheds), func(i int) Fig5Series {
		if i == 0 {
			dTopo := scenario.Build(page, params)
			dirbrowser.Run(dTopo, dirbrowser.Options{FixedRandom: true})
			return Fig5Series{Scheme: "DIR", Points: dTopo.ClientTrace.CumulativeBytes(trace.Down)}
		}
		sc := parcelScheds[i-1]
		topo := scenario.Build(page, params)
		pc := core.DefaultProxyConfig()
		pc.Sched = sc
		proxy := core.StartProxy(topo, pc)
		core.NewClient(topo, core.DefaultClientConfig()).Load()
		return Fig5Series{
			Scheme:  sc.String(),
			Points:  topo.ClientTrace.CumulativeBytes(trace.Down),
			Bundles: proxy.Sessions[0].BundlesSent,
		}
	})
	return Fig5Result{Page: page.Name, Series: series}
}

// --- Figure 6a: per-page timeline ------------------------------------------

// Fig6aResult is the taobao-style timeline: cumulative bytes at the PARCEL
// proxy, the PARCEL client, and the DIR client, with their OLT marks.
type Fig6aResult struct {
	Page            string
	ProxySeries     []trace.Point
	ParcelSeries    []trace.Point
	DIRSeries       []trace.Point
	ProxyOnload     time.Duration
	ParcelClientOLT time.Duration
	DIRClientOLT    time.Duration
}

// Fig6a loads the largest page of the set with PARCEL and DIR and records
// the three download timelines of Figure 6a.
func Fig6a(cfg Config) Fig6aResult {
	cfg = cfg.withDefaults()
	pages := cfg.PageSet()
	page := pages[0]
	for _, p := range pages {
		if p.TotalBytes > page.TotalBytes {
			page = p
		}
	}
	params := cfg.Scenario
	params.Seed = cfg.Seed

	// The DIR and PARCEL loads are independent topologies; run them as two
	// parallel tasks and merge the halves.
	halves := runner.Map(cfg.Parallelism, 2, func(i int) Fig6aResult {
		var out Fig6aResult
		if i == 0 {
			dTopo := scenario.Build(page, params)
			dRun := dirbrowser.Run(dTopo, dirbrowser.Options{FixedRandom: true})
			out.DIRSeries = dTopo.ClientTrace.CumulativeBytes(trace.Down)
			out.DIRClientOLT = dRun.OLT
			return out
		}
		pTopo := scenario.Build(page, params)
		// Record the proxy-side download timeline via ObjectLoaded counting
		// at the proxy session.
		proxy := core.StartProxy(pTopo, core.DefaultProxyConfig())
		client := core.NewClient(pTopo, core.DefaultClientConfig())
		pRun := client.Load()
		out.ParcelSeries = pTopo.ClientTrace.CumulativeBytes(trace.Down)
		out.ParcelClientOLT = pRun.OLT
		sess := proxy.Sessions[0]
		out.ProxyOnload = sess.OnloadAt
		out.ProxySeries = sess.DownloadTimeline()
		return out
	})
	out := halves[1]
	out.Page = page.Name
	out.DIRSeries = halves[0].DIRSeries
	out.DIRClientOLT = halves[0].DIRClientOLT
	return out
}

// --- Figure 6b: latency CDFs ------------------------------------------------

// Fig6bResult holds per-page median latencies for PARCEL(IND) and DIR.
type Fig6bResult struct {
	ParcelOLT, ParcelTLT []float64 // seconds
	DIROLT, DIRTLT       []float64
}

// Fig6b sweeps the page set with PARCEL(IND) and DIR.
func Fig6b(cfg Config) Fig6bResult {
	cfg = cfg.withDefaults()
	var out Fig6bResult
	for _, pr := range Sweep(cfg, []Scheme{DIRScheme, ParcelScheme(sched.ConfigIND)}) {
		d := pr.Runs["DIR"]
		p := pr.Runs["PARCEL(IND)"]
		out.DIROLT = append(out.DIROLT, d.OLT.Seconds())
		out.DIRTLT = append(out.DIRTLT, d.TLT.Seconds())
		out.ParcelOLT = append(out.ParcelOLT, p.OLT.Seconds())
		out.ParcelTLT = append(out.ParcelTLT, p.TLT.Seconds())
	}
	return out
}

// --- Figure 6c: latency reduction vs request count --------------------------

// Fig6cPoint is one page's scatter point.
type Fig6cPoint struct {
	Page         string
	HTTPRequests int     // client HTTP requests under DIR
	ReductionSec float64 // DIR TLT − PARCEL TLT (median)
}

// Fig6cResult is the scatter plus its Pearson correlation (paper: 0.83).
type Fig6cResult struct {
	Points      []Fig6cPoint
	Correlation float64
}

// Fig6c correlates total-latency reduction with the number of HTTP requests.
func Fig6c(cfg Config) Fig6cResult {
	cfg = cfg.withDefaults()
	var out Fig6cResult
	var xs, ys []float64
	for _, pr := range Sweep(cfg, []Scheme{DIRScheme, ParcelScheme(sched.ConfigIND)}) {
		d := pr.Runs["DIR"]
		p := pr.Runs["PARCEL(IND)"]
		pt := Fig6cPoint{
			Page:         pr.Page.Name,
			HTTPRequests: d.HTTPRequests,
			ReductionSec: d.TLT.Seconds() - p.TLT.Seconds(),
		}
		out.Points = append(out.Points, pt)
		xs = append(xs, float64(pt.HTTPRequests))
		ys = append(ys, pt.ReductionSec)
	}
	out.Correlation = stats.Pearson(xs, ys)
	return out
}

// --- Figure 7a: RRC states over time ----------------------------------------

// Fig7aResult compares RRC occupancy for one page (the ebay-style example:
// DIR 22 transitions / 11.16 J vs PARCEL 7 transitions / 5.63 J).
type Fig7aResult struct {
	Page              string
	DIRIntervals      []radio.Interval
	ParcelIntervals   []radio.Interval
	DIRTransitions    int
	ParcelTransitions int
	DIREnergy         float64
	ParcelEnergy      float64
	DIROnload         time.Duration
	ParcelOnload      time.Duration
}

// Fig7a runs the interactive (ebay-style) page under both schemes (two
// parallel tasks).
func Fig7a(cfg Config) Fig7aResult {
	cfg = cfg.withDefaults()
	page := webgen.InteractivePage(cfg.PageSet())
	params := cfg.Scenario
	params.Seed = cfg.Seed

	runs := runner.Map(cfg.Parallelism, 2, func(i int) metrics.PageRun {
		topo := scenario.Build(page, params)
		if i == 0 {
			return dirbrowser.Run(topo, dirbrowser.Options{FixedRandom: true})
		}
		return core.Run(topo, core.DefaultProxyConfig(), core.DefaultClientConfig())
	})
	dRun, pRun := runs[0], runs[1]

	return Fig7aResult{
		Page:              page.Name,
		DIRIntervals:      dRun.Radio.Intervals,
		ParcelIntervals:   pRun.Radio.Intervals,
		DIRTransitions:    dRun.Radio.Transitions,
		ParcelTransitions: pRun.Radio.Transitions,
		DIREnergy:         dRun.RadioJ,
		ParcelEnergy:      pRun.RadioJ,
		DIROnload:         dRun.OLT,
		ParcelOnload:      pRun.OLT,
	}
}

// --- Figure 7b/7c: radio energy CDF and savings -----------------------------

// Fig7bcResult carries the per-page radio energies and derived savings.
type Fig7bcResult struct {
	Pages         []string
	ParcelEnergy  []float64 // joules
	DIREnergy     []float64
	TotalSavings  []float64 // fraction of DIR energy saved
	CRSavingShare []float64 // share of the saving attributable to CR
}

// Fig7bc sweeps the set and reduces to the Figure 7b CDF and the Figure 7c
// per-page savings decomposition.
func Fig7bc(cfg Config) Fig7bcResult {
	cfg = cfg.withDefaults()
	var out Fig7bcResult
	for _, pr := range Sweep(cfg, []Scheme{DIRScheme, ParcelScheme(sched.ConfigIND)}) {
		d := pr.Runs["DIR"]
		p := pr.Runs["PARCEL(IND)"]
		out.Pages = append(out.Pages, pr.Page.Name)
		out.DIREnergy = append(out.DIREnergy, d.RadioJ)
		out.ParcelEnergy = append(out.ParcelEnergy, p.RadioJ)
		saving := d.RadioJ - p.RadioJ
		frac := 0.0
		if d.RadioJ > 0 {
			frac = saving / d.RadioJ
		}
		out.TotalSavings = append(out.TotalSavings, frac)
		crSave := d.Radio.EnergyByState[radio.CR] - p.Radio.EnergyByState[radio.CR]
		share := 0.0
		if saving > 0 {
			share = crSave / saving
			if share > 1 {
				share = 1
			}
			if share < 0 {
				share = 0
			}
		}
		out.CRSavingShare = append(out.CRSavingShare, share)
	}
	return out
}

// --- Figure 9: bundling variants ---------------------------------------------

// Fig9Result holds, per page, the OLT and radio-energy increases of each
// bundling variant relative to PARCEL(IND), plus page sizes for Figure 9c.
type Fig9Result struct {
	Variants       []string
	OLTIncrease    map[string][]float64 // seconds, per page
	EnergyIncrease map[string][]float64 // joules, per page
	PageBytes      []float64
}

// Fig9 compares PARCEL(512K/1M/2M/ONLD) against PARCEL(IND) (§8.3).
func Fig9(cfg Config) Fig9Result {
	cfg = cfg.withDefaults()
	variants := []sched.Config{sched.Config512K, sched.Config1M, sched.Config2M, sched.ConfigONLD}
	schemes := []Scheme{ParcelScheme(sched.ConfigIND)}
	out := Fig9Result{
		OLTIncrease:    make(map[string][]float64),
		EnergyIncrease: make(map[string][]float64),
	}
	for _, v := range variants {
		out.Variants = append(out.Variants, v.String())
		schemes = append(schemes, ParcelScheme(v))
	}
	for _, pr := range Sweep(cfg, schemes) {
		base := pr.Runs["PARCEL(IND)"]
		out.PageBytes = append(out.PageBytes, float64(pr.Page.TotalBytes))
		for _, v := range out.Variants {
			run := pr.Runs[v]
			out.OLTIncrease[v] = append(out.OLTIncrease[v], run.OLT.Seconds()-base.OLT.Seconds())
			out.EnergyIncrease[v] = append(out.EnergyIncrease[v], run.RadioJ-base.RadioJ)
		}
	}
	return out
}

// --- Figures 10/11: real web servers -----------------------------------------

// Fig1011Result compares PARCEL(512K) and DIR with heterogeneous per-domain
// origin delays (§8.4).
type Fig1011Result struct {
	ParcelOLT, DIROLT       []float64
	ParcelEnergy, DIREnergy []float64
}

// Fig1011 runs the real-servers setting.
func Fig1011(cfg Config) Fig1011Result {
	cfg = cfg.withDefaults()
	cfg.Scenario.HeterogeneousOrigins = true
	var out Fig1011Result
	for _, pr := range Sweep(cfg, []Scheme{DIRScheme, ParcelScheme(sched.Config512K)}) {
		d := pr.Runs["DIR"]
		p := pr.Runs["PARCEL(512K)"]
		out.DIROLT = append(out.DIROLT, d.OLT.Seconds())
		out.ParcelOLT = append(out.ParcelOLT, p.OLT.Seconds())
		out.DIREnergy = append(out.DIREnergy, d.RadioJ)
		out.ParcelEnergy = append(out.ParcelEnergy, p.RadioJ)
	}
	return out
}

// --- §8.3 delay sensitivity ---------------------------------------------------

// DelaySensResult compares IND and ONLD under two proxy↔server RTTs.
type DelaySensResult struct {
	RTTs []time.Duration
	// Keyed by RTT string then scheme name: median OLT (s), median energy (J).
	MedianOLT    map[string]map[string]float64
	MedianEnergy map[string]map[string]float64
}

// DelaySensitivity runs the §8.3 sensitivity study (20 ms vs 60 ms). The
// outer RTT loop stays serial: each iteration's Sweep already saturates the
// worker pool, so nesting another fan-out would only add scheduling noise.
func DelaySensitivity(cfg Config) DelaySensResult {
	cfg = cfg.withDefaults()
	out := DelaySensResult{
		RTTs:         []time.Duration{20 * time.Millisecond, 60 * time.Millisecond},
		MedianOLT:    make(map[string]map[string]float64),
		MedianEnergy: make(map[string]map[string]float64),
	}
	schemes := []Scheme{ParcelScheme(sched.ConfigIND), ParcelScheme(sched.ConfigONLD)}
	for _, rtt := range out.RTTs {
		c := cfg
		c.Scenario.ProxyOriginRTT = rtt
		olts := map[string][]float64{}
		energies := map[string][]float64{}
		for _, pr := range Sweep(c, schemes) {
			for _, s := range schemes {
				run := pr.Runs[s.Name]
				olts[s.Name] = append(olts[s.Name], run.OLT.Seconds())
				energies[s.Name] = append(energies[s.Name], run.RadioJ)
			}
		}
		key := rtt.String()
		out.MedianOLT[key] = map[string]float64{}
		out.MedianEnergy[key] = map[string]float64{}
		for _, s := range schemes {
			out.MedianOLT[key][s.Name] = stats.Median(olts[s.Name])
			out.MedianEnergy[key][s.Name] = stats.Median(energies[s.Name])
		}
	}
	return out
}

// --- Headline summary -----------------------------------------------------------

// Summary is the paper's abstract-level result: median OLT and radio-energy
// reductions of PARCEL(IND) vs DIR.
type Summary struct {
	DIRMedianOLT, ParcelMedianOLT       float64 // seconds
	DIRMedianEnergy, ParcelMedianEnergy float64 // joules
	OLTReduction, EnergyReduction       float64 // fractions
	PaperOLTReduction                   float64
	PaperEnergyReduction                float64
}

// Headline computes the abstract numbers (paper: 49.6% and 65%).
func Headline(cfg Config) Summary {
	r := Fig6bAndEnergy(cfg)
	s := Summary{
		DIRMedianOLT:         stats.Median(r.DIROLT),
		ParcelMedianOLT:      stats.Median(r.ParcelOLT),
		DIRMedianEnergy:      stats.Median(r.DIREnergy),
		ParcelMedianEnergy:   stats.Median(r.ParcelEnergy),
		PaperOLTReduction:    0.496,
		PaperEnergyReduction: 0.65,
	}
	if s.DIRMedianOLT > 0 {
		s.OLTReduction = 1 - s.ParcelMedianOLT/s.DIRMedianOLT
	}
	if s.DIRMedianEnergy > 0 {
		s.EnergyReduction = 1 - s.ParcelMedianEnergy/s.DIRMedianEnergy
	}
	return s
}

// SPDYResult is the future-work quantitative comparison (§9): DIR vs a
// SPDY-transport browser vs PARCEL(IND).
type SPDYResult struct {
	DIROLT, SPDYOLT, ParcelOLT          []float64
	DIREnergy, SPDYEnergy, ParcelEnergy []float64
}

// SPDYComparison sweeps the page set across the three arms. Every
// (page, arm) pair is an independent topology, so the sweep fans all of them
// out on the worker pool and reassembles per-page triples in index order.
func SPDYComparison(cfg Config) SPDYResult {
	cfg = cfg.withDefaults()
	pages := cfg.PageSet()
	const arms = 3
	runs := runner.Map(cfg.Parallelism, len(pages)*arms, func(i int) metrics.PageRun {
		page := pages[i/arms]
		params := cfg.Scenario
		params.Seed = cfg.Seed
		topo := scenario.Build(page, params)
		switch i % arms {
		case 0:
			return dirbrowser.Run(topo, dirbrowser.Options{FixedRandom: true})
		case 1:
			return spdybrowser.Run(topo, spdybrowser.Options{FixedRandom: true})
		default:
			return core.Run(topo, core.DefaultProxyConfig(), core.DefaultClientConfig())
		}
	})
	var out SPDYResult
	for pi := range pages {
		d, sp, p := runs[pi*arms], runs[pi*arms+1], runs[pi*arms+2]
		out.DIROLT = append(out.DIROLT, d.OLT.Seconds())
		out.SPDYOLT = append(out.SPDYOLT, sp.OLT.Seconds())
		out.ParcelOLT = append(out.ParcelOLT, p.OLT.Seconds())
		out.DIREnergy = append(out.DIREnergy, d.RadioJ)
		out.SPDYEnergy = append(out.SPDYEnergy, sp.RadioJ)
		out.ParcelEnergy = append(out.ParcelEnergy, p.RadioJ)
	}
	return out
}

// CombinedResult carries both latency and energy sweeps over one run.
type CombinedResult struct {
	ParcelOLT, DIROLT       []float64
	ParcelTLT, DIRTLT       []float64
	ParcelEnergy, DIREnergy []float64
}

// Fig6bAndEnergy runs the DIR/PARCEL sweep once and extracts both figures'
// series (cheaper than running Fig6b and Fig7bc separately).
func Fig6bAndEnergy(cfg Config) CombinedResult {
	cfg = cfg.withDefaults()
	var out CombinedResult
	for _, pr := range Sweep(cfg, []Scheme{DIRScheme, ParcelScheme(sched.ConfigIND)}) {
		d := pr.Runs["DIR"]
		p := pr.Runs["PARCEL(IND)"]
		out.DIROLT = append(out.DIROLT, d.OLT.Seconds())
		out.DIRTLT = append(out.DIRTLT, d.TLT.Seconds())
		out.DIREnergy = append(out.DIREnergy, d.RadioJ)
		out.ParcelOLT = append(out.ParcelOLT, p.OLT.Seconds())
		out.ParcelTLT = append(out.ParcelTLT, p.TLT.Seconds())
		out.ParcelEnergy = append(out.ParcelEnergy, p.RadioJ)
	}
	return out
}
