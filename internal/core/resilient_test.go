package core

import (
	"testing"
	"time"

	"github.com/parcel-go/parcel/internal/httpsim"
	"github.com/parcel-go/parcel/internal/objcache"
	"github.com/parcel-go/parcel/internal/resilience"
	"github.com/parcel-go/parcel/internal/scenario"
	"github.com/parcel-go/parcel/internal/sched"
)

// testResiliencePolicy is a permissive policy for tests that exercise
// retries without tripping the breaker.
func testResiliencePolicy() *resilience.Policy {
	return &resilience.Policy{
		Timeout:          10 * time.Second,
		MaxRetries:       5,
		BackoffBase:      500 * time.Millisecond,
		BackoffMax:       2 * time.Second,
		FailureThreshold: 1000,
		OpenFor:          3 * time.Second,
	}
}

// TestSimResilientNoFaultsMatchesLegacy pins the golden-figure contract: with
// the resilient path armed but no faults injected, a page load produces the
// same virtual-clock milestones as the legacy fetch path — deadline events
// are scheduled and cancelled, no retry ever fires, no extra RNG is drawn.
func TestSimResilientNoFaultsMatchesLegacy(t *testing.T) {
	page := testPage(t, 0)

	legacyRun, _, _ := parcelRun(t, page, sched.ConfigIND)

	topo := scenario.Build(page, scenario.DefaultParams())
	pc := DefaultProxyConfig()
	pc.Resilience = testResiliencePolicy()
	proxy := StartProxy(topo, pc)
	client := NewClient(topo, DefaultClientConfig())
	run := client.Load()

	if run.OLT != legacyRun.OLT || run.TLT != legacyRun.TLT {
		t.Errorf("resilient fault-free run diverged: OLT %v vs %v, TLT %v vs %v",
			run.OLT, legacyRun.OLT, run.TLT, legacyRun.TLT)
	}
	sess := proxy.Sessions[0]
	if sess.OriginRetries != 0 || sess.StaleServes != 0 || sess.BreakerFastFails != 0 {
		t.Errorf("fault-free run consumed the resilience machinery: %+v", sess)
	}
	if proxy.Resilience().Opens() != 0 {
		t.Error("breaker opened with no faults")
	}
}

// TestSimResilientRetriesThroughFlap flaps every origin for the first two
// virtual seconds: the retry budget carries each fetch past the window, the
// page completes in full, and the retries surface in session accounting and
// the completion note.
func TestSimResilientRetriesThroughFlap(t *testing.T) {
	page := testPage(t, 0)
	params := scenario.DefaultParams()
	params.OriginFaults = httpsim.OriginFaults{
		Flaps: []httpsim.FlapWindow{{Start: 0, End: 2 * time.Second}},
	}
	topo := scenario.Build(page, params)
	pc := DefaultProxyConfig()
	pc.Resilience = testResiliencePolicy()
	proxy := StartProxy(topo, pc)
	client := NewClient(topo, DefaultClientConfig())
	run := client.Load()

	if run.OLT == 0 {
		t.Fatal("onload never fired: retries did not carry the page past the flap")
	}
	sess := proxy.Sessions[0]
	if sess.OriginRetries == 0 {
		t.Error("no origin retries recorded through a 2 s flap window")
	}
	if sess.ObjectsPushed < page.ObjectCount {
		t.Errorf("proxy pushed %d objects, page has %d", sess.ObjectsPushed, page.ObjectCount)
	}
	var flaps int
	for _, srv := range topo.Origins {
		flaps += srv.FaultStats().FlapErrors
	}
	if flaps == 0 {
		t.Error("origins injected no flap errors")
	}
}

// TestSimResilientBreakerOpens drives retries into a permanently erroring
// origin with a tight threshold: the per-origin breaker opens mid-retry, the
// remaining budget fast-fails instead of dialing, and the counters say so.
func TestSimResilientBreakerOpens(t *testing.T) {
	page := testPage(t, 0)
	params := scenario.DefaultParams()
	params.OriginFaults = httpsim.OriginFaults{ErrorRate: 1}
	topo := scenario.Build(page, params)
	pc := DefaultProxyConfig()
	pc.Resilience = &resilience.Policy{
		Timeout:          5 * time.Second,
		MaxRetries:       4,
		BackoffBase:      100 * time.Millisecond,
		FailureThreshold: 2,
		OpenFor:          time.Minute,
	}
	proxy := StartProxy(topo, pc)
	client := NewClient(topo, DefaultClientConfig())
	client.Load()

	sess := proxy.Sessions[0]
	if sess.OriginRetries == 0 {
		t.Error("no retries against an always-erroring origin")
	}
	if sess.BreakerFastFails == 0 {
		t.Error("breaker never fast-failed a retry after opening")
	}
	if proxy.Resilience().Opens() == 0 {
		t.Error("breaker never opened despite threshold 2 and ErrorRate 1")
	}
}

// TestSimResilientServesStaleWhenOriginFails warms the shared cache with one
// clean load, then flaps every origin forever and loads the page again: the
// second session is served entirely from stale cache entries, completes, and
// tags the degradation in StaleServes on the session and its completion note.
func TestSimResilientServesStaleWhenOriginFails(t *testing.T) {
	page := testPage(t, 0)
	topo := scenario.Build(page, scenario.DefaultParams())
	pc := DefaultProxyConfig()
	pc.Cache = objcache.New(objcache.Config{
		Capacity: 64 << 20,
		FreshFor: time.Nanosecond, // everything is stale by the next load
		NegTTL:   time.Second,
	})
	pc.Resilience = &resilience.Policy{
		Timeout:          5 * time.Second,
		MaxRetries:       0,
		FailureThreshold: 1 << 30, // keep the breaker out of this test
	}
	proxy := StartProxy(topo, pc)

	warm := NewClient(topo, DefaultClientConfig())
	if run := warm.Load(); run.OLT == 0 {
		t.Fatal("warm load never fired onload")
	}

	// Every origin fails from here on.
	for _, srv := range topo.Origins {
		if err := srv.SetFaults(httpsim.OriginFaults{
			Flaps: []httpsim.FlapWindow{{Start: 0, End: 1000 * time.Hour}},
		}); err != nil {
			t.Fatal(err)
		}
	}

	client := NewClient(topo, DefaultClientConfig())
	run := client.Load()
	if run.OLT == 0 {
		t.Fatal("stale load never fired onload: serve-stale did not carry the page")
	}
	sess := proxy.Sessions[1]
	if sess.StaleServes == 0 {
		t.Error("no stale serves recorded with every origin flapping")
	}
	if sess.ObjectsPushed < page.ObjectCount {
		t.Errorf("stale session pushed %d objects, page has %d", sess.ObjectsPushed, page.ObjectCount)
	}
	st := pc.Cache.Stats()
	if st.StaleServes == 0 {
		t.Errorf("cache recorded no stale serves: %+v", st)
	}
}
