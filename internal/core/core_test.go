package core

import (
	"testing"
	"time"

	"github.com/parcel-go/parcel/internal/dirbrowser"
	"github.com/parcel-go/parcel/internal/scenario"
	"github.com/parcel-go/parcel/internal/sched"
	"github.com/parcel-go/parcel/internal/webgen"
)

// testPage returns a midsize generated page (deterministic).
func testPage(t testing.TB, idx int) webgen.Page {
	t.Helper()
	pages := webgen.Generate(webgen.Spec{Seed: 1234, NumPages: 8})
	return pages[idx%len(pages)]
}

func parcelRun(t testing.TB, page webgen.Page, cfg sched.Config) ( /*run*/ struct {
	OLT, TLT time.Duration
	RadioJ   float64
}, *Client, *Proxy) {
	t.Helper()
	topo := scenario.Build(page, scenario.DefaultParams())
	pc := DefaultProxyConfig()
	pc.Sched = cfg
	proxy := StartProxy(topo, pc)
	client := NewClient(topo, DefaultClientConfig())
	run := client.Load()
	if run.OLT == 0 {
		t.Fatalf("PARCEL OLT zero — onload never fired (page %s)", page.Name)
	}
	return struct {
		OLT, TLT time.Duration
		RadioJ   float64
	}{run.OLT, run.TLT, run.RadioJ}, client, proxy
}

func TestParcelLoadsFullPage(t *testing.T) {
	page := testPage(t, 0)
	_, client, proxy := parcelRun(t, page, sched.ConfigIND)
	if _, ok := client.Engine.CompleteAt(); !ok {
		t.Fatal("client never completed page")
	}
	if len(client.Engine.JSErrors) > 0 {
		t.Fatalf("client JS errors: %v", client.Engine.JSErrors)
	}
	// Every object of the generated page was pushed or fetched.
	if client.ObjectsReceived < page.ObjectCount {
		t.Fatalf("client received %d objects, page has %d", client.ObjectsReceived, page.ObjectCount)
	}
	sess := proxy.Sessions[0]
	if sess.ObjectsPushed < page.ObjectCount {
		t.Fatalf("proxy pushed %d, page has %d", sess.ObjectsPushed, page.ObjectCount)
	}
	if !sess.completeSent {
		t.Fatal("proxy never declared completion")
	}
}

func TestParcelNoFallbacksUnderReplayRewrite(t *testing.T) {
	// With FixedRandom on both sides, proxy and client identify identical
	// URL sets — no fallback requests (the §7.3 rewrite contract).
	for idx := 0; idx < 4; idx++ {
		_, client, _ := parcelRun(t, testPage(t, idx), sched.ConfigIND)
		if client.Fallbacks != 0 {
			t.Fatalf("page %d: %d fallback requests under replay rewrite", idx, client.Fallbacks)
		}
	}
}

func TestParcelSuppressesClientRequests(t *testing.T) {
	page := testPage(t, 0)
	_, client, _ := parcelRun(t, page, sched.ConfigIND)
	if client.SuppressedRequests == 0 && len(client.waiting) == 0 {
		t.Fatal("no suppression observed")
	}
	// The client issued exactly one HTTP request (the page request).
	run := client.Collect()
	if run.HTTPRequests != 1 {
		t.Fatalf("client HTTP requests = %d, want 1", run.HTTPRequests)
	}
	if run.ConnsOpened != 1 {
		t.Fatalf("client conns = %d, want 1", run.ConnsOpened)
	}
}

func TestParcelBeatsDIROnLatencyAndEnergy(t *testing.T) {
	// The headline claim (§8.1) at single-page granularity: PARCEL(IND)
	// loads faster and spends less radio energy than DIR.
	for idx := 0; idx < 3; idx++ {
		page := testPage(t, idx)
		pRun, _, _ := parcelRun(t, page, sched.ConfigIND)
		dTopo := scenario.Build(page, scenario.DefaultParams())
		dRun := dirbrowser.Run(dTopo, dirbrowser.Options{FixedRandom: true})
		if dRun.OLT == 0 {
			t.Fatalf("DIR OLT zero on page %d", idx)
		}
		if pRun.OLT >= dRun.OLT {
			t.Errorf("page %d: PARCEL OLT %v >= DIR OLT %v", idx, pRun.OLT, dRun.OLT)
		}
		if pRun.RadioJ >= dRun.RadioJ {
			t.Errorf("page %d: PARCEL radio %.2fJ >= DIR %.2fJ", idx, pRun.RadioJ, dRun.RadioJ)
		}
	}
}

func TestSchedulesOrderOLT(t *testing.T) {
	// §8.3: OLT(IND) <= OLT(PARCEL(X)) <= OLT(ONLD), with larger bundles
	// increasing OLT.
	page := testPage(t, 1)
	ind, _, _ := parcelRun(t, page, sched.ConfigIND)
	x512, _, _ := parcelRun(t, page, sched.Config512K)
	onld, _, _ := parcelRun(t, page, sched.ConfigONLD)
	if !(ind.OLT <= x512.OLT+time.Millisecond) {
		t.Errorf("OLT IND %v > 512K %v", ind.OLT, x512.OLT)
	}
	if !(x512.OLT <= onld.OLT+time.Millisecond) {
		t.Errorf("OLT 512K %v > ONLD %v", x512.OLT, onld.OLT)
	}
}

func TestONLDSingleBundleUntilOnload(t *testing.T) {
	page := testPage(t, 2)
	topo := scenario.Build(page, scenario.DefaultParams())
	pc := DefaultProxyConfig()
	pc.Sched = sched.ConfigONLD
	proxy := StartProxy(topo, pc)
	client := NewClient(topo, DefaultClientConfig())
	client.Load()
	sess := proxy.Sessions[0]
	// ONLD: exactly one onload flush; everything else is per-object straggler
	// pushes after onload (post-onload async ads) — never a threshold flush.
	onloadFlushes, preOnload := 0, 0
	for i, reason := range sess.BundleLog {
		switch reason {
		case sched.FlushOnload:
			onloadFlushes++
			if i != 0 {
				t.Fatalf("onload flush was not the first bundle: %v", sess.BundleLog)
			}
		case sched.FlushThreshold:
			t.Fatalf("ONLD produced a threshold flush: %v", sess.BundleLog)
		case sched.FlushObject:
			if onloadFlushes == 0 {
				preOnload++
			}
		}
	}
	if onloadFlushes != 1 {
		t.Fatalf("onload flushes = %d, want 1 (%v)", onloadFlushes, sess.BundleLog)
	}
	if preOnload != 0 {
		t.Fatalf("%d per-object pushes before onload under ONLD", preOnload)
	}
}

func TestFallbackServesMissingObject(t *testing.T) {
	// Disable the replay rewrite on the client only: the client's JS derives
	// a random URL the proxy didn't push; after the completion notification
	// the client must fetch it via the fallback path and still complete.
	pages := webgen.Generate(webgen.Spec{Seed: 99, NumPages: 34})
	var page webgen.Page
	for _, p := range pages {
		if p.HasRandomURL {
			page = p
			break
		}
	}
	if page.Name == "" {
		t.Fatal("no random-URL page")
	}
	topo := scenario.Build(page, scenario.DefaultParams())
	StartProxy(topo, DefaultProxyConfig())
	cc := DefaultClientConfig()
	cc.FixedRandom = false // client derives a different random URL
	client := NewClient(topo, cc)
	client.Load()
	if _, ok := client.Engine.CompleteAt(); !ok {
		t.Fatal("client stalled on missing object")
	}
	if client.Fallbacks == 0 {
		t.Fatal("expected at least one fallback request")
	}
}

func TestQuietPeriodDelaysCompletion(t *testing.T) {
	page := testPage(t, 0)
	topo := scenario.Build(page, scenario.DefaultParams())
	pc := DefaultProxyConfig()
	pc.QuietPeriod = 2 * time.Second
	proxy := StartProxy(topo, pc)
	NewClient(topo, DefaultClientConfig()).Load()
	sess := proxy.Sessions[0]
	if sess.CompleteAt < sess.OnloadAt+pc.QuietPeriod {
		t.Fatalf("completion %v fired before onload %v + quiet %v",
			sess.CompleteAt, sess.OnloadAt, pc.QuietPeriod)
	}
}

func TestParcelClientTraceHasSingleConnection(t *testing.T) {
	page := testPage(t, 0)
	topo := scenario.Build(page, scenario.DefaultParams())
	StartProxy(topo, DefaultProxyConfig())
	client := NewClient(topo, DefaultClientConfig())
	client.Load()
	conns := map[uint64]bool{}
	for _, p := range topo.ClientTrace.Packets() {
		if p.Conn != 0 {
			conns[p.Conn] = true
		}
	}
	if len(conns) != 1 {
		t.Fatalf("client trace shows %d connections, want 1", len(conns))
	}
}

func TestInteractionStaysLocal(t *testing.T) {
	pages := webgen.Generate(webgen.Spec{Seed: 1234, NumPages: 8})
	page := webgen.InteractivePage(pages)
	topo := scenario.Build(page, scenario.DefaultParams())
	StartProxy(topo, DefaultProxyConfig())
	client := NewClient(topo, DefaultClientConfig())
	client.Load()
	packetsBefore := topo.ClientTrace.Len()
	for i := 0; i < 4; i++ {
		if n := client.Engine.FireEvent("click", "gallery-next"); n == 0 {
			t.Fatal("no gallery handler registered")
		}
		topo.Sim.Run()
	}
	if got := topo.ClientTrace.Len(); got != packetsBefore {
		t.Fatalf("local clicks generated %d network packets", got-packetsBefore)
	}
}
