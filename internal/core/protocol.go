// Package core implements the paper's primary contribution: the PARCEL
// proxy and the PARCEL client browser (§4–§5).
//
// The proxy performs object identification and download on its fast wired
// path — running a full headless browsing engine that parses HTML/CSS and
// executes JS — and pushes the collected objects to the client as MHTML
// bundles over a single TCP connection, scheduled by a cellular-friendly
// policy (IND / PARCEL(X) / ONLD, §4.4). The client parses, renders and
// executes JS locally; it suppresses its own object requests (objects arrive
// pushed), and requests any still-missing objects only after the proxy's
// completion notification (§4.5).
package core

import (
	"time"

	"github.com/parcel-go/parcel/internal/mhtml"
	"github.com/parcel-go/parcel/internal/sched"
)

// Control-message labels used in packet traces. TLT computation excludes
// packets labelled with the control prefix.
const (
	labelBundle   = "bundle"
	ctlPrefix     = "ctl:"
	labelComplete = ctlPrefix + "complete"
	labelPageReq  = ctlPrefix + "pagereq"
	labelObjReq   = ctlPrefix + "objreq"
)

// pageRequest asks the proxy to load a page on the client's behalf. The
// client attributes travel with it so the proxy can emulate the device when
// talking to origin servers (§4.5 "client properties and customization").
type pageRequest struct {
	URL       string
	UserAgent string
	Screen    string
}

// wireSize approximates the request's bytes on the wire.
func (r pageRequest) wireSize() int {
	return 220 + len(r.URL) + len(r.UserAgent) + len(r.Screen)
}

// bundleMsg carries one scheduled flush of objects, MHTML-framed.
type bundleMsg struct {
	Seq    int
	Reason sched.FlushReason
	Parts  []sched.Item
}

// wireSize is the MHTML-encoded size of the bundle, summed per part so no
// []mhtml.Part is materialized on the send path.
func (b bundleMsg) wireSize() int {
	size := mhtml.EncodedSizeEmpty()
	for _, it := range b.Parts {
		size += mhtml.EncodedPartSize(it.URL, it.ContentType, len(it.Body))
	}
	return size
}

// compressedWireSize models proxy-side compression/transcoding (§3): body
// bytes shrink by factor, framing stays.
func (b bundleMsg) compressedWireSize(factor float64) int {
	full := b.wireSize()
	var bodies int
	for _, it := range b.Parts {
		bodies += len(it.Body)
	}
	compressed := int(float64(bodies) * factor)
	return full - bodies + compressed
}

// completeNote is the proxy's page-completion notification (§4.5): after it,
// the client may request objects it identified but never received. The cache
// counters ride along for multi-tenant accounting (the wire size stays the
// fixed 160-byte control frame: a handful of varint counters fit the slack).
type completeNote struct {
	ObjectsPushed int
	BytesPushed   int64
	At            time.Duration

	// CacheHits/CacheMisses split this session's origin fetches by whether
	// the proxy's shared cross-session cache already held the object;
	// OriginBytes is what the session actually pulled from origin servers
	// (misses only). All zero when the shared cache is disabled.
	CacheHits   int
	CacheMisses int
	OriginBytes int64

	// OriginRetries/StaleServes surface the resilient fetch path's work for
	// this session: re-attempts against failing origins, and objects served
	// from a stale cache entry. Zero unless ProxyConfig.Resilience is set.
	OriginRetries int
	StaleServes   int
}

// objectRequest is the client's fallback fetch for a missing object.
type objectRequest struct {
	URL string
}

// objectResponse answers a fallback fetch.
type objectResponse struct {
	Item sched.Item
}

func (o objectResponse) wireSize() int {
	return mhtml.EncodedSize([]mhtml.Part{{
		URL: o.Item.URL, ContentType: o.Item.ContentType, Status: o.Item.Status, Body: o.Item.Body,
	}})
}
