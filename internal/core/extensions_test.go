package core

import (
	"strings"
	"testing"
	"time"

	"github.com/parcel-go/parcel/internal/browser"
	"github.com/parcel-go/parcel/internal/httpsim"
	"github.com/parcel-go/parcel/internal/scenario"
	"github.com/parcel-go/parcel/internal/webgen"
)

func httpsPage(t testing.TB) webgen.Page {
	t.Helper()
	for _, p := range webgen.Generate(webgen.Spec{Seed: 1234, NumPages: 16}) {
		if p.HasHTTPS {
			return p
		}
	}
	t.Fatal("no https page in set")
	return webgen.Page{}
}

func TestHTTPSFallbackPath(t *testing.T) {
	page := httpsPage(t)
	topo := scenario.Build(page, scenario.DefaultParams())
	proxy := StartProxy(topo, DefaultProxyConfig())
	client := NewClient(topo, DefaultClientConfig())
	client.Load()

	if _, ok := client.Engine.CompleteAt(); !ok {
		t.Fatal("https page never completed")
	}
	if client.DirectFetches == 0 {
		t.Fatal("no direct fetches — https fallback not exercised")
	}
	sess := proxy.Sessions[0]
	if sess.SkippedHTTPS == 0 {
		t.Fatal("proxy did not skip https objects")
	}
	// The https objects arrived at the client despite never being pushed.
	for _, o := range page.Objects {
		if strings.HasPrefix(o.URL, "https://") && !client.Engine.Requested(o.URL) {
			t.Fatalf("https object %s never requested by client", o.URL)
		}
	}
	// And the proxy never pushed them.
	for _, it := range sess.cache {
		if strings.HasPrefix(it.URL, "https://") {
			t.Fatalf("proxy cached https object %s", it.URL)
		}
	}
	// The client opened more than the single proxy connection (the direct
	// TLS path), which is the cost the paper accepts for encrypted content.
	if client.direct == nil {
		t.Fatal("direct client never created")
	}
}

func TestDIRFetchesHTTPSWithTLSCost(t *testing.T) {
	page := httpsPage(t)
	topoPlain := scenario.Build(page, scenario.DefaultParams())
	run := NewClient(topoPlain, DefaultClientConfig())
	_ = run
	// Direct httpsim client: https fetch pays the TLS exchange.
	topo := scenario.Build(page, scenario.DefaultParams())
	var httpsURL string
	for _, o := range page.Objects {
		if strings.HasPrefix(o.URL, "https://") {
			httpsURL = o.URL
			break
		}
	}
	httpURL := page.MainURL
	client := httpsim.NewClient(topo.Sim, topo.Client, topo.Dir, topo.ClientResolver, 6)
	var tHTTP, tHTTPS time.Duration
	client.Do(httpsim.Request{URL: httpURL}, func(r httpsim.Response, at time.Duration) { tHTTP = at })
	topo.Sim.Run()
	issued := topo.Sim.Now()
	client.Do(httpsim.Request{URL: httpsURL}, func(r httpsim.Response, at time.Duration) { tHTTPS = at })
	topo.Sim.Run()
	if tHTTPS == 0 || tHTTP == 0 {
		t.Fatal("fetches did not complete")
	}
	// The https fetch on a fresh pool pays handshake + TLS + request ≈ 3
	// RTTs; DNS is cached. It must take longer than 2 plain RTTs.
	rtt := scenario.DefaultParams().LTERTT
	if got := tHTTPS - issued; got < 2*rtt {
		t.Fatalf("https fetch took %v, expected at least TCP+TLS+request ≈ 3 RTT", got)
	}
}

func TestPostRelaying(t *testing.T) {
	page := testPage(t, 0)
	topo := scenario.Build(page, scenario.DefaultParams())

	// Add a POST endpoint whose HTML response references a fresh object.
	store := page.Store()
	followup := "http://" + page.Domains[0] + "/post/receipt.png"
	store["http://"+page.Domains[0]+"/submit"] = httpsim.Object{
		URL: "http://" + page.Domains[0] + "/submit", ContentType: "text/html",
		Body: []byte(`<html><img src="/post/receipt.png"></html>`),
	}
	store[followup] = httpsim.Object{URL: followup, ContentType: "image/png", Body: []byte("receipt-bytes")}
	// Re-point the origin servers at the extended store: rebuild topology.
	page.Objects = append(page.Objects,
		store["http://"+page.Domains[0]+"/submit"], store[followup])
	topo = scenario.Build(page, scenario.DefaultParams())

	StartProxy(topo, DefaultProxyConfig())
	client := NewClient(topo, DefaultClientConfig())
	client.Load()

	var resp browser.Result
	client.Post("http://"+page.Domains[0]+"/submit", 2000, func(r browser.Result) { resp = r })
	topo.Sim.Run()
	if resp.Status != 200 || !strings.Contains(string(resp.Body), "receipt.png") {
		t.Fatalf("post response = %+v", resp)
	}
	// §4.5: the proxy processed the HTML response and pushed its objects.
	deadline := topo.Sim.Now() + 5*time.Second
	topo.Sim.RunUntil(deadline)
	if _, ok := client.store[followup]; !ok {
		t.Fatal("object referenced by POST response was not pushed")
	}
}

func TestPost204ForwardedUnmodified(t *testing.T) {
	page := testPage(t, 0)
	beacon := "http://" + page.Domains[0] + "/beacon"
	page.Objects = append(page.Objects, httpsim.Object{URL: beacon, Status: 204, ContentType: "text/plain"})
	topo := scenario.Build(page, scenario.DefaultParams())
	StartProxy(topo, DefaultProxyConfig())
	client := NewClient(topo, DefaultClientConfig())
	client.Load()
	var resp browser.Result
	client.Post(beacon, 300, func(r browser.Result) { resp = r })
	topo.Sim.Run()
	if resp.Status != 204 {
		t.Fatalf("status = %d, want 204", resp.Status)
	}
}

func TestRevisitPushesNothingNew(t *testing.T) {
	page := testPage(t, 0)
	topo := scenario.Build(page, scenario.DefaultParams())
	proxy := StartProxy(topo, DefaultProxyConfig())
	client := NewClient(topo, DefaultClientConfig())
	first := client.Load()
	sess := proxy.Sessions[0]
	pushedFirst := sess.ObjectsPushed

	revisit := client.Reload()
	if sess.MirrorHits == 0 {
		t.Fatal("no mirror hits on revisit")
	}
	// Unchanged objects were not pushed again.
	if sess.ObjectsPushed != pushedFirst {
		t.Fatalf("revisit pushed %d extra objects", sess.ObjectsPushed-pushedFirst)
	}
	if _, ok := client.Engine.CompleteAt(); !ok {
		t.Fatal("revisit never completed")
	}
	// The revisit is far faster and cheaper than the first load.
	if revisit.TLT >= first.TLT/2 {
		t.Fatalf("revisit TLT %v not much faster than first load %v", revisit.TLT, first.TLT)
	}
	if revisit.RadioJ >= first.RadioJ {
		t.Fatalf("revisit radio %.2f J >= first %.2f J", revisit.RadioJ, first.RadioJ)
	}
}

func TestCompressionShrinksWireBytes(t *testing.T) {
	page := testPage(t, 1)
	run := func(factor float64) int64 {
		topo := scenario.Build(page, scenario.DefaultParams())
		cfg := DefaultProxyConfig()
		cfg.CompressionFactor = factor
		StartProxy(topo, cfg)
		client := NewClient(topo, DefaultClientConfig())
		r := client.Load()
		if _, ok := client.Engine.CompleteAt(); !ok {
			t.Fatal("page incomplete")
		}
		return r.BytesDown
	}
	plain := run(0)
	compressed := run(0.6)
	if compressed >= plain {
		t.Fatalf("compressed bytes %d >= plain %d", compressed, plain)
	}
	if float64(compressed) > 0.8*float64(plain) {
		t.Fatalf("compression too weak: %d vs %d", compressed, plain)
	}
}

func TestCompressionImprovesLatency(t *testing.T) {
	page := testPage(t, 1)
	runOLT := func(factor float64) time.Duration {
		topo := scenario.Build(page, scenario.DefaultParams())
		cfg := DefaultProxyConfig()
		cfg.CompressionFactor = factor
		StartProxy(topo, cfg)
		return NewClient(topo, DefaultClientConfig()).Load().OLT
	}
	if runOLT(0.6) >= runOLT(0) {
		t.Fatal("compression did not reduce OLT on a transfer-bound page")
	}
}
