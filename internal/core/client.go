package core

import (
	"strings"
	"time"

	"github.com/parcel-go/parcel/internal/browser"
	"github.com/parcel-go/parcel/internal/httpsim"
	"github.com/parcel-go/parcel/internal/metrics"
	"github.com/parcel-go/parcel/internal/radio"
	"github.com/parcel-go/parcel/internal/scenario"
	"github.com/parcel-go/parcel/internal/sched"
	"github.com/parcel-go/parcel/internal/simnet"
	"github.com/parcel-go/parcel/internal/trace"
)

// ClientConfig tunes the PARCEL client browser.
type ClientConfig struct {
	CPU         browser.CPUModel
	FixedRandom bool
	UserAgent   string
	Screen      string
}

// DefaultClientConfig returns the evaluation defaults.
func DefaultClientConfig() ClientConfig {
	return ClientConfig{
		CPU:         browser.MobileCPU(),
		FixedRandom: true,
		UserAgent:   "PARCEL/1.0 (Android; Galaxy S3)",
		Screen:      "720x1280",
	}
}

// Client is the PARCEL client browser for one page session. It reuses the
// standard parsing/rendering engine (§5.2) but replaces object retrieval:
// objects arrive pushed from the proxy, requests for identified objects are
// suppressed, and only objects still missing after the proxy's completion
// notification are requested explicitly.
type Client struct {
	topo *scenario.Topology
	cfg  ClientConfig

	Engine *browser.Engine
	conn   *simnet.Conn

	store    map[string]sched.Item
	waiting  map[string][]func(browser.Result)
	notified bool

	// direct is the client's own HTTP client for the HTTPS fallback path
	// (§4.5); created lazily.
	direct      *httpsim.Client
	postSeq     int
	postWaiters map[int]func(browser.Result)

	// Fallbacks counts missing-object requests issued after the completion
	// notification (§4.5).
	Fallbacks int
	// DirectFetches counts HTTPS-fallback fetches that bypassed the proxy.
	DirectFetches int
	// BundlesReceived counts bundle messages from the proxy.
	BundlesReceived int
	// ObjectsReceived counts pushed objects (including fallback responses).
	ObjectsReceived int
	// SuppressedRequests counts engine fetches satisfied without any client
	// HTTP request — the request-suppression benefit of §4.5.
	SuppressedRequests int
}

// NewClient prepares a PARCEL client on the topology. The proxy must be
// started (StartProxy) before Load.
func NewClient(topo *scenario.Topology, cfg ClientConfig) *Client {
	if cfg.CPU == (browser.CPUModel{}) {
		cfg.CPU = browser.MobileCPU()
	}
	c := &Client{
		topo:        topo,
		cfg:         cfg,
		store:       make(map[string]sched.Item),
		waiting:     make(map[string][]func(browser.Result)),
		postWaiters: make(map[int]func(browser.Result)),
	}
	c.Engine = browser.New(topo.Sim, bundleFetcher{c}, browser.Options{
		CPU:         cfg.CPU,
		FixedRandom: cfg.FixedRandom,
		ExecCache:   topo.ExecCache,
		JSPools:     topo.JSPools,
	})
	return c
}

// bundleFetcher is the client's Fetcher: it serves from the pushed-object
// store and defers misses instead of issuing network requests.
type bundleFetcher struct{ c *Client }

func (f bundleFetcher) Fetch(url string, cb func(browser.Result)) {
	c := f.c
	if isHTTPS(url) {
		// Encrypted objects bypass the proxy entirely (§4.5).
		c.directFetch(url, cb)
		return
	}
	if it, ok := c.store[url]; ok {
		c.SuppressedRequests++
		// The result carries the object's arrival time at the client (its
		// ArrivedAt was restamped on receive), so trace-derived OLT reflects
		// when the bytes landed, not when the parser got to them.
		cb(resultFromItem(it, it.ArrivedAt))
		return
	}
	c.waiting[url] = append(c.waiting[url], cb)
	if c.notified {
		c.requestMissing(url)
	}
}

func resultFromItem(it sched.Item, at time.Duration) browser.Result {
	status := it.Status
	if status == 0 {
		status = 200
	}
	return browser.Result{URL: it.URL, Status: status, ContentType: it.ContentType, Body: it.Body, At: at}
}

// Load runs the session: connect, send the page request, and process pushes
// until the page completes.
func (c *Client) Load() metrics.PageRun {
	c.Start()
	c.topo.Sim.Run()
	return c.Collect()
}

// Start begins the session without running the simulator (for callers that
// interleave other work).
func (c *Client) Start() {
	topo := c.topo
	req := pageRequest{URL: topo.Page.MainURL, UserAgent: c.cfg.UserAgent, Screen: c.cfg.Screen}
	c.conn = topo.Client.Dial(topo.Proxy, func(conn *simnet.Conn) {
		conn.Send(topo.Client, req.wireSize(), req, labelPageReq, nil)
	})
	c.conn.OnMessage(topo.Client, c.onMessage)
	c.Engine.Load(topo.Page.MainURL)
}

func (c *Client) onMessage(m simnet.Message) {
	switch msg := m.Payload.(type) {
	case bundleMsg:
		c.BundlesReceived++
		for _, it := range msg.Parts {
			c.receive(it, m.At)
		}
	case objectResponse:
		c.receive(msg.Item, m.At)
	case postResponse:
		if cb, ok := c.postWaiters[msg.ID]; ok {
			delete(c.postWaiters, msg.ID)
			cb(resultFromItem(msg.Item, m.At))
		}
	case completeNote:
		c.notified = true
		for url := range c.waiting {
			c.requestMissing(url)
		}
	}
}

// receive stores one pushed object and satisfies any deferred engine fetch.
// The item's ArrivedAt is restamped with the client-side arrival time.
func (c *Client) receive(it sched.Item, at time.Duration) {
	c.ObjectsReceived++
	it.ArrivedAt = at
	c.store[it.URL] = it
	if cbs, ok := c.waiting[it.URL]; ok {
		delete(c.waiting, it.URL)
		for _, cb := range cbs {
			cb(resultFromItem(it, at))
		}
	}
}

// requestMissing issues the §4.5 fallback request for one URL.
func (c *Client) requestMissing(url string) {
	c.Fallbacks++
	req := objectRequest{URL: url}
	c.conn.Send(c.topo.Client, 180+len(url), req, labelObjReq, nil)
}

// Collect assembles the session metrics.
func (c *Client) Collect() metrics.PageRun {
	var col metrics.Collector
	return c.CollectWith(&col)
}

// CollectWith is Collect reducing the trace through col's reusable scratch
// (for batch engines that collect many sessions per worker).
func (c *Client) CollectWith(col *metrics.Collector) metrics.PageRun {
	run := metrics.PageRun{Scheme: "PARCEL", Page: c.topo.Page.Name}
	onload, _ := c.Engine.OnloadNetAt()
	// Control messages (the completion notification, seconds after the last
	// object) are not page content; TLT and the energy window exclude them.
	col.FromTrace(&run, c.topo.ClientTrace, onload, radio.DefaultLTE(), func(p trace.Packet) bool {
		return !strings.HasPrefix(p.Label, ctlPrefix)
	})
	run.CPUActive = c.Engine.CPUActive()
	run.HTTPRequests = 1 + c.Fallbacks
	run.ConnsOpened = 1
	run.ObjectsLoaded = c.Engine.NumRequested()
	run.FallbackRequests = c.Fallbacks
	fillFaultStats(&run, c.topo.Net.FaultStats())
	return run
}

// fillFaultStats copies the network's injection counters into the run.
func fillFaultStats(run *metrics.PageRun, st simnet.FaultStats) {
	run.DroppedPackets = st.Dropped
	run.Retransmits = st.Retransmits
	run.RetransmitBytes = st.RetransmitBytes
}

// Run builds the proxy and client on a topology and measures one page load
// with the given schedule.
func Run(topo *scenario.Topology, proxyCfg ProxyConfig, clientCfg ClientConfig) metrics.PageRun {
	StartProxy(topo, proxyCfg)
	client := NewClient(topo, clientCfg)
	run := client.Load()
	run.Scheme = proxyCfg.Sched.String()
	return run
}
