package core

import (
	"strings"
	"time"

	"github.com/parcel-go/parcel/internal/eventsim"
	"github.com/parcel-go/parcel/internal/metrics"
	"github.com/parcel-go/parcel/internal/simnet"
)

// LoadClient is the fleet-simulation tenant: it speaks the PARCEL session
// protocol (page request in, bundles and the completion notification out) but
// runs no browser engine — it measures delivery latency and bytes, not
// rendering. That keeps a tenant cheap enough that hundreds share one
// simulator, which is the point of a load run: the proxy under test does the
// heavy lifting, the tenants just receive.
type LoadClient struct {
	sim   *eventsim.Simulator
	host  *simnet.Host
	proxy *simnet.Host
	url   string

	conn *simnet.Conn
	note completeNote

	// ID tags the tenant in fleet reports.
	ID int
	// StartedAt/CompleteAt bracket the session on the virtual clock.
	// FirstCriticalAt is when the first render-blocking object (HTML, CSS,
	// script, JSON) arrived; zero until one does.
	StartedAt       time.Duration
	FirstCriticalAt time.Duration
	CompleteAt      time.Duration
	// Notified is set once the proxy's completion notification arrives.
	Notified bool

	// BundlesReceived/ObjectsReceived count proxy pushes; EgressBytes is
	// every byte the proxy sent this tenant (content and control).
	BundlesReceived int
	ObjectsReceived int
	EgressBytes     int64
}

// NewLoadClient prepares one tenant on its own access host. Start it with
// StartAt; read its sample with SessionLoad after the simulation drains.
func NewLoadClient(id int, sim *eventsim.Simulator, host, proxy *simnet.Host, url string) *LoadClient {
	return &LoadClient{ID: id, sim: sim, host: host, proxy: proxy, url: url}
}

// StartAt schedules the session's page request at virtual time at (staggered
// fleet arrivals).
func (c *LoadClient) StartAt(at time.Duration) {
	c.sim.ScheduleArgAt(at, startLoadClient, c)
}

// startLoadClient opens the tenant's session (the noclosure ScheduleArgAt
// idiom: package-level func, typed argument).
func startLoadClient(arg any) {
	c := arg.(*LoadClient)
	c.StartedAt = c.sim.Now()
	c.conn = c.host.Dial(c.proxy, func(conn *simnet.Conn) {
		req := pageRequest{URL: c.url, UserAgent: "PARCEL-loadgen/1.0", Screen: "720x1280"}
		conn.Send(c.host, req.wireSize(), req, labelPageReq, nil)
	})
	c.conn.OnMessage(c.host, c.onMessage)
}

func (c *LoadClient) onMessage(m simnet.Message) {
	c.EgressBytes += int64(m.Size)
	switch msg := m.Payload.(type) {
	case bundleMsg:
		c.BundlesReceived++
		c.ObjectsReceived += len(msg.Parts)
		if c.FirstCriticalAt == 0 {
			for _, p := range msg.Parts {
				if criticalContentType(p.ContentType) {
					c.FirstCriticalAt = m.At
					break
				}
			}
		}
	case objectResponse:
		c.ObjectsReceived++
	case completeNote:
		if !c.Notified {
			c.Notified = true
			c.CompleteAt = m.At
			c.note = msg
		}
	}
}

// SessionLoad assembles the tenant's fleet sample: completion, latency from
// request to the proxy's completion notification, and the note's shared-cache
// accounting.
func (c *LoadClient) SessionLoad() metrics.SessionLoad {
	l := metrics.SessionLoad{
		ID:          c.ID,
		Page:        c.url,
		Completed:   c.Notified,
		CacheHits:   c.note.CacheHits,
		CacheMisses: c.note.CacheMisses,
		EgressBytes: c.EgressBytes,
		OriginBytes: c.note.OriginBytes,
		Retries:     c.note.OriginRetries,
		StaleServes: c.note.StaleServes,
	}
	if c.Notified {
		l.Latency = c.CompleteAt - c.StartedAt
	}
	if c.FirstCriticalAt > 0 {
		l.FirstCritical = c.FirstCriticalAt - c.StartedAt
	}
	return l
}

// criticalContentType mirrors the parcelnet mux priority classes: the
// render-blocking set whose time-to-first-object both arms report.
func criticalContentType(ct string) bool {
	for _, sub := range [...]string{"html", "css", "javascript", "json"} {
		if strings.Contains(ct, sub) {
			return true
		}
	}
	return false
}
