package core

import (
	"time"

	"github.com/parcel-go/parcel/internal/browser"
	"github.com/parcel-go/parcel/internal/eventsim"
	"github.com/parcel-go/parcel/internal/httpsim"
	"github.com/parcel-go/parcel/internal/objcache"
	"github.com/parcel-go/parcel/internal/resilience"
	"github.com/parcel-go/parcel/internal/sched"
)

// This file is the simulation arm's resilient origin-fetch path, the
// virtual-clock twin of parcelnet's resilientFetcher: per-attempt deadlines,
// a jittered-backoff retry budget, a per-origin circuit breaker, and — with
// the shared cache — serve-stale-on-error and negative caching. The whole
// path is gated on ProxyConfig.Resilience != nil; a nil policy keeps the
// historical fetch path byte-identical, and the retry backoff draws the
// simulator RNG only after a failure, so fault-free runs consume exactly the
// RNG stream they always did.

// originAttempt tracks one resilient fetch across its retries. gen
// invalidates the straggler callbacks of an abandoned attempt: the deadline
// and the origin response race, and whichever resolves the attempt first
// bumps gen so the loser finds itself stale and returns.
type originAttempt struct {
	f   *proxyFetcher
	url string
	cb  func(browser.Result)
	br  *resilience.Breaker

	attempt  int // attempts issued so far (1-based once running)
	gen      int
	deadline *eventsim.Event
}

// fetchResilient is proxyFetcher.Fetch on the resilient path.
func (f *proxyFetcher) fetchResilient(url string, cb func(browser.Result)) {
	p := f.s.proxy
	sim := p.topo.Sim
	now := sim.Now()
	c := p.cfg.Cache
	if c != nil {
		if obj, lk := c.ProbeAt(url, now); lk == objcache.LookupFresh {
			f.s.CacheHits++
			sim.ScheduleArgAt(now, deliverCachedObject, &cachedDelivery{s: f.s, obj: obj, cb: cb})
			return
		}
		if fl, ok := p.flights[url]; ok {
			f.s.CacheHits++
			fl.waiters = append(fl.waiters, &cachedDelivery{s: f.s, cb: cb})
			return
		}
		if c.NegativeActive(url, now) {
			// The URL's recent hard failure is still negatively cached: serve
			// stale or fail fast, but do not contact the origin.
			f.failWithoutOrigin(url, cb)
			return
		}
	}
	domain, _ := httpsim.SplitURL(url)
	br := p.resil.For(domain)
	if !br.Allow(now) {
		f.s.BreakerFastFails++
		f.failWithoutOrigin(url, cb)
		return
	}
	if c != nil {
		p.flights[url] = &simFlight{}
		f.s.CacheMisses++
	}
	f.issueAttempt(&originAttempt{f: f, url: url, cb: cb, br: br})
}

// failWithoutOrigin resolves a fetch that must not touch the origin (open
// breaker or active negative cache): the stale resident body when there is
// one, else a degraded 502 delivered synchronously like the HTTPS skip.
func (f *proxyFetcher) failWithoutOrigin(url string, cb func(browser.Result)) {
	p := f.s.proxy
	sim := p.topo.Sim
	if c := p.cfg.Cache; c != nil {
		if obj, ok := c.ServeStale(url); ok {
			f.s.CacheHits++
			f.s.StaleServes++
			sim.ScheduleArgAt(sim.Now(), deliverCachedObject, &cachedDelivery{s: f.s, obj: obj, cb: cb})
			return
		}
		f.s.CacheMisses++
	}
	cb(browser.Result{URL: url, Status: 502, At: sim.Now()})
}

// issueAttempt sends one origin request with a deadline racing it.
func (f *proxyFetcher) issueAttempt(a *originAttempt) {
	p := f.s.proxy
	sim := p.topo.Sim
	a.attempt++
	a.gen++
	gen := a.gen
	if t := p.cfg.Resilience.Timeout; t > 0 {
		//parcelvet:allow pooldiscipline(Event handles are arena-backed and valid for the simulator's lifetime; the field only holds the handle so the response can Cancel its deadline)
		a.deadline = sim.ScheduleArgAt(sim.Now()+t, originAttemptDeadline, a)
	}
	f.client.Do(httpsim.Request{Method: "GET", URL: a.url}, func(resp httpsim.Response, at time.Duration) {
		f.attemptResponded(a, gen, resp, at)
	})
}

// attemptResponded resolves an attempt with the origin's answer — unless the
// deadline got there first, in which case the response is a straggler.
func (f *proxyFetcher) attemptResponded(a *originAttempt, gen int, resp httpsim.Response, at time.Duration) {
	if gen != a.gen {
		return
	}
	if a.deadline != nil {
		a.deadline.Cancel()
		a.deadline = nil
	}
	now := f.s.proxy.topo.Sim.Now()
	if resp.Status < 500 {
		a.br.Success(now)
		f.finishSuccess(a, resp, at)
		return
	}
	a.br.Failure(now)
	f.attemptFailed(a, resp)
}

// originAttemptDeadline fires when an attempt's per-request deadline passes
// before its response: the attempt is charged as a failure and the pending
// response invalidated (the noclosure ScheduleArgAt idiom: package-level
// func + typed argument).
func originAttemptDeadline(arg any) {
	a := arg.(*originAttempt)
	a.deadline = nil
	a.gen++
	f := a.f
	now := f.s.proxy.topo.Sim.Now()
	a.br.Failure(now)
	f.attemptFailed(a, httpsim.Response{URL: a.url, Status: 504})
}

// attemptFailed routes a failed attempt: retry after jittered backoff while
// budget remains, else resolve terminally. The backoff draw is the only RNG
// this file consumes, and it happens strictly after a failure.
func (f *proxyFetcher) attemptFailed(a *originAttempt, resp httpsim.Response) {
	p := f.s.proxy
	sim := p.topo.Sim
	pol := p.cfg.Resilience
	if a.attempt > pol.MaxRetries {
		f.finishFailure(a, resp)
		return
	}
	delay := pol.Backoff(a.attempt, sim.Rand())
	sim.ScheduleArgAt(sim.Now()+delay, retryOriginAttempt, a)
}

// retryOriginAttempt re-issues a fetch after its backoff — unless the breaker
// opened in the meantime (our own failures, or other sessions failing on the
// same origin), in which case it resolves terminally without dialing.
func retryOriginAttempt(arg any) {
	a := arg.(*originAttempt)
	f := a.f
	now := f.s.proxy.topo.Sim.Now()
	if !a.br.Allow(now) {
		f.s.BreakerFastFails++
		f.finishFailure(a, httpsim.Response{URL: a.url, Status: 503})
		return
	}
	f.s.OriginRetries++
	f.issueAttempt(a)
}

// finishSuccess publishes a successful response exactly as the legacy path
// does — cache, driving session, then every flight joiner in join order.
func (f *proxyFetcher) finishSuccess(a *originAttempt, resp httpsim.Response, at time.Duration) {
	p := f.s.proxy
	fl := f.resolveFlight(a.url)
	f.s.OriginBytes += int64(len(resp.Body))
	if c := p.cfg.Cache; c != nil {
		c.PutAt(objcache.Object{
			URL: resp.URL, ContentType: resp.ContentType, Status: resp.Status,
			Validator: originValidator(resp), Body: resp.Body,
		}, p.topo.Sim.Now())
	}
	it := sched.Item{
		URL: resp.URL, ContentType: resp.ContentType, Status: resp.Status,
		Body: resp.Body, ArrivedAt: at,
	}
	f.s.collect(it)
	a.cb(resultFromItem(it, at))
	if fl != nil {
		for _, w := range fl.waiters {
			w.s.collect(it)
			w.cb(resultFromItem(it, at))
		}
	}
}

// finishFailure resolves a fetch whose retry budget is spent: negatively
// cache the failure, then serve the stale resident body to the driving
// session and every joiner, or surface the failure status when nothing is
// resident (a degraded object, not a hung page).
func (f *proxyFetcher) finishFailure(a *originAttempt, resp httpsim.Response) {
	p := f.s.proxy
	sim := p.topo.Sim
	now := sim.Now()
	fl := f.resolveFlight(a.url)
	c := p.cfg.Cache
	if c != nil {
		c.NoteFailure(a.url, now)
		if obj, ok := c.ServeStale(a.url); ok {
			f.s.StaleServes++
			it := sched.Item{
				URL: obj.URL, ContentType: obj.ContentType, Status: obj.Status,
				Body: obj.Body, ArrivedAt: now,
			}
			f.s.collect(it)
			a.cb(resultFromItem(it, now))
			if fl != nil {
				for _, w := range fl.waiters {
					w.s.StaleServes++
					w.s.collect(it)
					w.cb(resultFromItem(it, now))
				}
			}
			return
		}
	}
	status := resp.Status
	if status < 500 {
		status = 502
	}
	a.cb(browser.Result{URL: a.url, Status: status, At: now})
	if fl != nil {
		for _, w := range fl.waiters {
			w.cb(browser.Result{URL: a.url, Status: status, At: now})
		}
	}
}

// resolveFlight detaches and returns the in-progress flight for url (nil
// without the shared cache).
func (f *proxyFetcher) resolveFlight(url string) *simFlight {
	p := f.s.proxy
	if p.cfg.Cache == nil {
		return nil
	}
	fl := p.flights[url]
	delete(p.flights, url)
	return fl
}

// originValidator is the freshness token for a simulated origin response: the
// server's content-hash ETag when it sent one, else a hash of the body taken
// here. Replay stores are immutable for a topology's lifetime, so equal
// bodies mean equal generations on every arm.
func originValidator(resp httpsim.Response) string {
	if resp.Validator != "" {
		return resp.Validator
	}
	return httpsim.ContentValidator(resp.Body)
}
