package core

import (
	"strings"
	"time"

	"github.com/parcel-go/parcel/internal/browser"
	"github.com/parcel-go/parcel/internal/htmlparse"
	"github.com/parcel-go/parcel/internal/httpsim"
	"github.com/parcel-go/parcel/internal/metrics"
	"github.com/parcel-go/parcel/internal/radio"
	"github.com/parcel-go/parcel/internal/sched"
	"github.com/parcel-go/parcel/internal/trace"
)

// This file implements the §4.5 practical mechanisms beyond the core push
// path: the HTTPS fallback, POST relaying, the personalized-proxy cache
// mirror for repeat visits, and the (orthogonal, §3) proxy-side compression.

// --- HTTPS fallback -----------------------------------------------------------

// isHTTPS reports whether url uses the encrypted scheme the proxy cannot
// parse (§4.5: "PARCEL falls back to the traditional way of downloading").
func isHTTPS(url string) bool { return strings.HasPrefix(url, "https://") }

// directFetch routes one client fetch over the traditional path: the
// client's own connection to the origin, TLS included.
func (c *Client) directFetch(url string, cb func(browser.Result)) {
	if c.direct == nil {
		c.direct = httpsim.NewClient(c.topo.Sim, c.topo.Client, c.topo.Dir, c.topo.ClientResolver, 6)
	}
	c.DirectFetches++
	c.direct.Do(httpsim.Request{Method: "GET", URL: url}, func(resp httpsim.Response, at time.Duration) {
		cb(browser.Result{URL: resp.URL, Status: resp.Status, ContentType: resp.ContentType, Body: resp.Body, At: at})
	})
}

// --- POST relaying --------------------------------------------------------------

// postRequest relays a form submission through the proxy (§4.5).
type postRequest struct {
	ID       int
	URL      string
	BodySize int
}

func (r postRequest) wireSize() int { return 260 + len(r.URL) + r.BodySize }

// postResponse answers a relayed POST.
type postResponse struct {
	ID   int
	Item sched.Item
}

func (r postResponse) wireSize() int {
	return 300 + len(r.Item.URL) + len(r.Item.Body)
}

// Post relays a POST through the proxy. cb receives the response; if the
// response is HTML, the proxy additionally identifies and pushes the objects
// it references before the client asks (§4.5).
func (c *Client) Post(url string, bodySize int, cb func(browser.Result)) {
	c.postSeq++
	id := c.postSeq
	c.postWaiters[id] = cb
	req := postRequest{ID: id, URL: url, BodySize: bodySize}
	c.conn.Send(c.topo.Client, req.wireSize(), req, labelObjReq, nil)
}

// handlePost runs at the proxy: relay to the origin, forward the response,
// and process HTML responses for further objects.
func (s *ProxySession) handlePost(req postRequest) {
	s.fetcher.client.Do(httpsim.Request{Method: "POST", URL: req.URL, BodySize: req.BodySize},
		func(resp httpsim.Response, at time.Duration) {
			it := sched.Item{URL: resp.URL, ContentType: resp.ContentType, Status: resp.Status, Body: resp.Body, ArrivedAt: at}
			rsp := postResponse{ID: req.ID, Item: it}
			s.conn.Send(s.proxy.topo.Proxy, rsp.wireSize(), rsp, labelBundle, nil)
			// §4.5: HTML POST responses are processed like pages — their
			// objects are identified and fetched proactively; responses
			// without content (e.g. 204) are forwarded unmodified.
			if resp.Status < 400 && strings.Contains(resp.ContentType, "html") {
				s.discoverPostObjects(resp)
			}
		})
}

// discoverPostObjects parses an HTML POST response and fetches its objects
// through the session fetcher (which pushes them to the client).
func (s *ProxySession) discoverPostObjects(resp httpsim.Response) {
	root, err := htmlparse.Parse(resp.Body)
	if err != nil {
		return
	}
	for _, res := range htmlparse.Resources(root, resp.URL) {
		if isHTTPS(res.URL) {
			continue
		}
		if _, seen := s.cache[res.URL]; seen {
			continue
		}
		s.fetcher.Fetch(res.URL, func(browser.Result) {})
	}
}

// --- repeat visits (personalized proxy mirror, §4.5) ----------------------------

// Reload loads the session's page again on the same proxy connection. The
// personalized proxy mirrors the client's cache state (§4.5 "the proxy to
// track the object versions sent to the client"), so unchanged objects are
// not pushed again; the client renders them from its local store. It returns
// the reload's metrics measured from the reload start.
func (c *Client) Reload() metrics.PageRun {
	topo := c.topo
	start := topo.Sim.Now()
	packetsBefore := topo.ClientTrace.Len()

	// A fresh engine renders the revisit; the object store persists (the
	// device cache).
	c.Engine = browser.New(topo.Sim, bundleFetcher{c}, browser.Options{
		CPU:         c.cfg.CPU,
		FixedRandom: c.cfg.FixedRandom,
	})
	req := pageRequest{URL: topo.Page.MainURL, UserAgent: c.cfg.UserAgent, Screen: c.cfg.Screen}
	c.conn.Send(topo.Client, req.wireSize(), req, labelPageReq, nil)
	c.Engine.Load(topo.Page.MainURL)
	topo.Sim.Run()

	run := metrics.PageRun{Scheme: "PARCEL(revisit)", Page: topo.Page.Name}
	onload, _ := c.Engine.OnloadNetAt()
	if onload == 0 {
		// Fully cache-served revisit: the network OLT is the reload instant.
		onload = start
	}
	run.OLT = onload - start
	var lastData time.Duration
	for _, p := range topo.ClientTrace.PacketsSince(packetsBefore) {
		if p.Kind == trace.KindData && !strings.HasPrefix(p.Label, ctlPrefix) && p.At > lastData {
			lastData = p.At
		}
	}
	if lastData > start {
		run.TLT = lastData - start
	}
	// Match the page-load energy methodology: the window ends with the last
	// page-content packet; a fully cache-served revisit is charged only for
	// its control exchange burst.
	horizon := run.TLT
	var acts []radio.Activity
	for _, p := range topo.ClientTrace.PacketsSince(packetsBefore) {
		rel := p.At - start
		if horizon == 0 {
			horizon = rel + 500*time.Millisecond // request burst only
		}
		acts = append(acts, radio.Activity{At: rel, Bytes: p.Size})
	}
	filtered := acts[:0]
	for _, a := range acts {
		if a.At <= horizon {
			filtered = append(filtered, a)
		}
	}
	rep := radio.Simulate(filtered, radio.DefaultLTE(), horizon)
	run.Radio = rep
	run.RadioJ = rep.TotalEnergy
	run.CPUActive = c.Engine.CPUActive()
	run.ObjectsLoaded = c.Engine.NumRequested()
	return run
}
