package core

import (
	"time"

	"github.com/parcel-go/parcel/internal/browser"
	"github.com/parcel-go/parcel/internal/eventsim"
	"github.com/parcel-go/parcel/internal/httpsim"
	"github.com/parcel-go/parcel/internal/objcache"
	"github.com/parcel-go/parcel/internal/resilience"
	"github.com/parcel-go/parcel/internal/scenario"
	"github.com/parcel-go/parcel/internal/sched"
	"github.com/parcel-go/parcel/internal/simnet"
	"github.com/parcel-go/parcel/internal/trace"
)

// ProxyConfig tunes the PARCEL proxy.
type ProxyConfig struct {
	// Sched is the bundle schedule (IND / PARCEL(X) / ONLD).
	Sched sched.Config
	// QuietPeriod is the post-onload proxy↔server inactivity window after
	// which the proxy declares the page complete (§4.5). The paper derives
	// it from the post-onload inter-arrival statistic (95% < 5 s).
	QuietPeriod time.Duration
	// CPU defaults to the proxy profile.
	CPU browser.CPUModel
	// FixedRandom applies the §7.3 replay rewrite inside the proxy's JS
	// engine.
	FixedRandom bool
	// ConnsPerDomain bounds the proxy's origin connection pools.
	ConnsPerDomain int
	// CompressionFactor, when in (0,1), scales pushed body bytes on the
	// wire — the orthogonal data-compression/transformation feature cloud
	// proxies offer (§3); 0 disables it.
	CompressionFactor float64
	// Cache, when non-nil, is the cross-session object cache shared by every
	// session this proxy serves: origin responses are published into it and
	// later sessions' fetches are served from it at proxy-local time, so a
	// fleet of tenants loading the same page pulls each object from the
	// origin once. nil (the default) keeps the historical fetch-always path.
	Cache *objcache.Cache
	// Resilience, when non-nil, wraps every origin fetch in the
	// internal/resilience discipline: per-attempt deadlines, jittered-backoff
	// retries, and a per-origin circuit breaker — plus, with Cache set,
	// serve-stale-on-error and negative caching. nil (the default) keeps the
	// historical fetch path byte-identical; the retry backoff is the only new
	// RNG consumer and it draws strictly after a failure, so fault-free runs
	// reproduce the legacy event stream exactly.
	Resilience *resilience.Policy
}

// DefaultProxyConfig returns the evaluation defaults (IND schedule).
func DefaultProxyConfig() ProxyConfig {
	return ProxyConfig{
		Sched:          sched.ConfigIND,
		QuietPeriod:    3 * time.Second,
		CPU:            browser.ProxyCPU(),
		FixedRandom:    true,
		ConnsPerDomain: 6,
	}
}

// Proxy is a running PARCEL proxy: it accepts client connections on the
// topology's proxy host and serves one page session per connection.
type Proxy struct {
	topo *scenario.Topology
	cfg  ProxyConfig

	// Sessions lists per-connection session states (instrumentation).
	Sessions []*ProxySession

	// flights joins concurrent cache-miss fetches of one URL across
	// sessions (single-flight): the origin is asked once, every waiting
	// session is delivered at arrival. Only allocated when cfg.Cache is set.
	flights map[string]*simFlight

	// resil holds the per-origin circuit breakers of the resilient fetch
	// path. Only allocated when cfg.Resilience is set.
	resil *resilience.Group
}

// Resilience exposes the proxy's breaker group for harness-level accounting
// (nil unless ProxyConfig.Resilience was set).
func (p *Proxy) Resilience() *resilience.Group { return p.resil }

// simFlight is one in-progress shared-cache origin fetch; waiters are the
// sessions that requested the URL while it was already on the wire.
type simFlight struct {
	waiters []*cachedDelivery
}

// StartProxy installs the proxy listener.
func StartProxy(topo *scenario.Topology, cfg ProxyConfig) *Proxy {
	if cfg.QuietPeriod == 0 {
		cfg.QuietPeriod = 3 * time.Second
	}
	if cfg.CPU == (browser.CPUModel{}) {
		cfg.CPU = browser.ProxyCPU()
	}
	p := &Proxy{topo: topo, cfg: cfg}
	if cfg.Cache != nil {
		p.flights = make(map[string]*simFlight)
	}
	if cfg.Resilience != nil {
		pol := cfg.Resilience.WithDefaults()
		if err := pol.Validate(); err != nil {
			panic("core: bad resilience policy: " + err.Error())
		}
		p.cfg.Resilience = &pol
		p.resil = resilience.NewGroup(pol)
	}
	topo.Proxy.Listen(func(c *simnet.Conn) {
		s := &ProxySession{proxy: p, conn: c}
		p.Sessions = append(p.Sessions, s)
		c.OnMessage(topo.Proxy, s.onMessage)
	})
	return p
}

// ProxySession is the proxy's state for one client connection.
type ProxySession struct {
	proxy *Proxy
	conn  *simnet.Conn

	engine  *browser.Engine
	fetcher *proxyFetcher
	bundler *sched.Bundler

	// cache holds every object collected (for fallback requests).
	cache map[string]sched.Item
	// arrivals records cache insertions in arrival order. Simulation time is
	// monotone, so the slice is sorted by ArrivedAt by construction — it lets
	// DownloadTimeline build its series without re-sorting the cache.
	arrivals []arrival

	quietTimer   *eventsim.Event
	onloadSeen   bool
	completeSent bool

	// sent mirrors the client cache across page loads in the session: URLs
	// already delivered are not pushed again on a revisit (§4.5).
	sent map[string]bool

	// instrumentation
	BundleLog     []sched.FlushReason
	BundlesSent   int
	MirrorHits    int
	SkippedHTTPS  int
	ObjectsPushed int
	BytesPushed   int64
	FallbacksSeen int
	OnloadAt      time.Duration
	CompleteAt    time.Duration

	// Shared-cache accounting (zero unless ProxyConfig.Cache is set):
	// CacheHits are origin fetches answered from the cross-session cache,
	// CacheMisses went to the origin, and OriginBytes is what the misses
	// actually transferred.
	CacheHits   int
	CacheMisses int
	OriginBytes int64

	// Resilient-path accounting (zero unless ProxyConfig.Resilience is set):
	// OriginRetries counts origin re-attempts made on this session's behalf,
	// StaleServes counts objects served from a stale cache entry because the
	// origin failed past its retry budget, and BreakerFastFails counts
	// fetches refused outright by an open per-origin breaker.
	OriginRetries    int
	StaleServes      int
	BreakerFastFails int
}

// proxyFetcher wraps the proxy's origin HTTP client, teeing every response
// into the session (bundling + cache) before the engine processes it.
type proxyFetcher struct {
	s      *ProxySession
	client *httpsim.Client
}

func (f *proxyFetcher) Fetch(url string, cb func(browser.Result)) {
	if isHTTPS(url) {
		// The proxy cannot parse encrypted traffic; the client fetches
		// these itself over the fallback path (§4.5).
		f.s.SkippedHTTPS++
		cb(browser.Result{URL: url, Status: 204, At: f.s.proxy.topo.Sim.Now()})
		return
	}
	if f.s.proxy.cfg.Resilience != nil {
		f.fetchResilient(url, cb)
		return
	}
	if c := f.s.proxy.cfg.Cache; c != nil {
		if obj, ok := c.Get(url); ok {
			f.s.CacheHits++
			// Deliver asynchronously at proxy-local time: the engine's fetch
			// contract is callback-after-return, and a hit skips the
			// proxy↔origin round trip entirely.
			sim := f.s.proxy.topo.Sim
			sim.ScheduleArgAt(sim.Now(), deliverCachedObject, &cachedDelivery{
				s: f.s, obj: obj, cb: cb,
			})
			return
		}
		p := f.s.proxy
		if fl, ok := p.flights[url]; ok {
			// Single-flight: another session already has this URL on the
			// wire; join its fetch instead of duplicating it. A successful
			// join counts as a hit (the session paid no origin traffic),
			// matching the real-TCP cache's GetOrFetch semantics.
			f.s.CacheHits++
			fl.waiters = append(fl.waiters, &cachedDelivery{s: f.s, cb: cb})
			return
		}
		p.flights[url] = &simFlight{}
		f.s.CacheMisses++
		f.client.Do(httpsim.Request{Method: "GET", URL: url}, func(resp httpsim.Response, at time.Duration) {
			fl := p.flights[url]
			delete(p.flights, url)
			f.s.OriginBytes += int64(len(resp.Body))
			c.Put(objcache.Object{
				URL: resp.URL, ContentType: resp.ContentType, Status: resp.Status,
				Validator: originValidator(resp), Body: resp.Body,
			})
			it := sched.Item{
				URL: resp.URL, ContentType: resp.ContentType, Status: resp.Status,
				Body: resp.Body, ArrivedAt: at,
			}
			f.s.collect(it)
			cb(browser.Result{URL: it.URL, Status: it.Status, ContentType: it.ContentType, Body: it.Body, At: at})
			// Joined sessions receive the same bytes at the same arrival, in
			// join order (deterministic: appends follow the event order).
			if fl != nil {
				for _, w := range fl.waiters {
					w.s.collect(it)
					w.cb(browser.Result{URL: it.URL, Status: it.Status, ContentType: it.ContentType, Body: it.Body, At: at})
				}
			}
		})
		return
	}
	f.client.Do(httpsim.Request{Method: "GET", URL: url}, func(resp httpsim.Response, at time.Duration) {
		f.s.OriginBytes += int64(len(resp.Body))
		f.s.collect(sched.Item{
			URL: resp.URL, ContentType: resp.ContentType, Status: resp.Status,
			Body: resp.Body, ArrivedAt: at,
		})
		cb(browser.Result{URL: resp.URL, Status: resp.Status, ContentType: resp.ContentType, Body: resp.Body, At: at})
	})
}

// cachedDelivery carries one cache hit to its continuation (the noclosure
// ScheduleArgAt idiom: package-level func + typed argument, no capture).
type cachedDelivery struct {
	s   *ProxySession
	obj objcache.Object
	cb  func(browser.Result)
}

// deliverCachedObject hands a cache-resident object to the session exactly as
// an origin response would arrive: collected (bundled + cached for fallback)
// and then surfaced to the engine.
func deliverCachedObject(arg any) {
	d := arg.(*cachedDelivery)
	at := d.s.proxy.topo.Sim.Now()
	it := sched.Item{
		URL: d.obj.URL, ContentType: d.obj.ContentType, Status: d.obj.Status,
		Body: d.obj.Body, ArrivedAt: at,
	}
	d.s.collect(it)
	d.cb(browser.Result{URL: it.URL, Status: it.Status, ContentType: it.ContentType, Body: it.Body, At: at})
}

func (s *ProxySession) onMessage(m simnet.Message) {
	switch msg := m.Payload.(type) {
	case pageRequest:
		s.startPage(msg)
	case objectRequest:
		s.serveFallback(msg.URL)
	case postRequest:
		s.handlePost(msg)
	}
}

// startPage boots the headless engine for the requested URL. On a repeat
// request within the session (a revisit), the object cache and the mirror of
// what the client already holds persist, so only new content is pushed.
func (s *ProxySession) startPage(req pageRequest) {
	topo := s.proxy.topo
	cfg := s.proxy.cfg
	if s.cache == nil {
		// Size both maps for the page up front: a session collects roughly
		// one entry per page object, and growing a map re-hashes every entry.
		s.cache = make(map[string]sched.Item, topo.Page.ObjectCount)
		s.arrivals = make([]arrival, 0, topo.Page.ObjectCount)
	}
	if s.sent == nil {
		s.sent = make(map[string]bool, topo.Page.ObjectCount)
	}
	s.onloadSeen = false
	s.completeSent = false
	if s.quietTimer != nil {
		s.quietTimer.Cancel()
		s.quietTimer = nil
	}
	httpClient := httpsim.NewClient(topo.Sim, topo.Proxy, topo.Dir, topo.ProxyResolver, cfg.ConnsPerDomain)
	httpClient.SetMaxTotalConns(64) // well-provisioned server pool (§4.3)
	s.fetcher = &proxyFetcher{s: s, client: httpClient}
	s.bundler = sched.NewBundler(cfg.Sched, s.flush)
	s.engine = browser.New(topo.Sim, s.fetcher, browser.Options{
		CPU:         cfg.CPU,
		FixedRandom: cfg.FixedRandom,
		ExecCache:   topo.ExecCache,
		JSPools:     topo.JSPools,
		Events: browser.Events{
			OnLoad: func(at time.Duration) {
				s.onloadSeen = true
				s.OnloadAt = at
				s.bundler.OnLoad()
				s.armQuietTimer()
			},
		},
	})
	s.engine.Load(req.URL)
}

// arrival is one cache insertion, remembered under its cache key.
type arrival struct {
	key string
	it  sched.Item
}

// storeItem inserts it into the cache under key and logs the arrival.
func (s *ProxySession) storeItem(key string, it sched.Item) {
	s.cache[key] = it
	s.arrivals = append(s.arrivals, arrival{key: key, it: it})
}

// DownloadTimeline returns the proxy-side cumulative download series: bytes
// collected from origin servers over time (the "PARCEL Proxy Timeline" curve
// of Figure 6a). The arrival log is already in time order, so no sort is
// needed; entries superseded by a later arrival of the same URL (a revisit
// re-fetch) are skipped, matching the cache's latest-wins contents.
func (s *ProxySession) DownloadTimeline() []trace.Point {
	points := make([]trace.Point, 0, len(s.arrivals))
	var total int64
	for _, a := range s.arrivals {
		if cur, ok := s.cache[a.key]; !ok || cur.ArrivedAt != a.it.ArrivedAt {
			continue
		}
		total += int64(len(a.it.Body))
		points = append(points, trace.Point{At: a.it.ArrivedAt, Bytes: total})
	}
	return points
}

// collect records a fetched object, offers it to the schedule, and manages
// the completion heuristic's inactivity window.
func (s *ProxySession) collect(it sched.Item) {
	if s.sent[it.URL] {
		// Already mirrored at the client (same version): no redundant
		// transfer (§4.5).
		s.MirrorHits++
		s.storeItem(it.URL, it)
		if s.onloadSeen && !s.completeSent {
			s.armQuietTimer()
		}
		return
	}
	s.storeItem(it.URL, it)
	if !s.completeSent {
		s.bundler.Add(it)
		if s.onloadSeen {
			s.armQuietTimer()
		}
		return
	}
	// Objects arriving after the completion notification (missed by the
	// heuristic) are pushed individually so the client is never starved.
	s.sendBundle([]sched.Item{it}, sched.FlushComplete)
}

func (s *ProxySession) armQuietTimer() {
	if s.completeSent {
		return
	}
	if s.quietTimer != nil {
		s.quietTimer.Cancel()
	}
	//parcelvet:allow pooldiscipline(Event handles are arena-backed and valid for the simulator's lifetime; the field only holds the handle so a superseding quiet timer can Cancel it)
	s.quietTimer = s.proxy.topo.Sim.Schedule(s.proxy.cfg.QuietPeriod, s.declareComplete)
}

// declareComplete fires the §4.5 heuristic: onload has passed and the
// proxy↔server path has been quiet; drain the schedule and notify the
// client.
func (s *ProxySession) declareComplete() {
	if s.completeSent {
		return
	}
	s.completeSent = true
	s.CompleteAt = s.proxy.topo.Sim.Now()
	s.bundler.Complete()
	note := completeNote{
		ObjectsPushed: s.ObjectsPushed,
		BytesPushed:   s.BytesPushed,
		At:            s.CompleteAt,
		CacheHits:     s.CacheHits,
		CacheMisses:   s.CacheMisses,
		OriginBytes:   s.OriginBytes,
		OriginRetries: s.OriginRetries,
		StaleServes:   s.StaleServes,
	}
	s.conn.Send(s.proxy.topo.Proxy, 160, note, labelComplete, nil)
}

// flush transmits one scheduled bundle to the client.
func (s *ProxySession) flush(items []sched.Item, reason sched.FlushReason) {
	s.sendBundle(items, reason)
}

func (s *ProxySession) sendBundle(items []sched.Item, reason sched.FlushReason) {
	s.BundlesSent++
	s.BundleLog = append(s.BundleLog, reason)
	msg := bundleMsg{Seq: s.BundlesSent, Reason: reason, Parts: items}
	for _, it := range items {
		s.ObjectsPushed++
		s.BytesPushed += int64(len(it.Body))
		s.sent[it.URL] = true
	}
	size := msg.wireSize()
	if f := s.proxy.cfg.CompressionFactor; f > 0 && f < 1 {
		size = msg.compressedWireSize(f)
	}
	s.conn.Send(s.proxy.topo.Proxy, size, msg, labelBundle, nil)
}

// serveFallback answers a client fallback request from cache, or fetches the
// object from the origin if the proxy never saw it (e.g. a URL the client's
// JS derived differently, §4.5).
func (s *ProxySession) serveFallback(url string) {
	s.FallbacksSeen++
	if it, ok := s.cache[url]; ok {
		rsp := objectResponse{Item: it}
		s.conn.Send(s.proxy.topo.Proxy, rsp.wireSize(), rsp, labelBundle, nil)
		return
	}
	s.fetchForFallback(url)
}

func (s *ProxySession) fetchForFallback(url string) {
	s.fetcher.client.Do(httpsim.Request{Method: "GET", URL: url}, func(resp httpsim.Response, at time.Duration) {
		it := sched.Item{URL: resp.URL, ContentType: resp.ContentType, Status: resp.Status, Body: resp.Body, ArrivedAt: at}
		s.storeItem(url, it)
		rsp := objectResponse{Item: it}
		s.conn.Send(s.proxy.topo.Proxy, rsp.wireSize(), rsp, labelBundle, nil)
	})
}
