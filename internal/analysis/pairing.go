package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/cfg"
)

// Pairing is the resource-lifecycle checker: functions annotated with
// //parcelvet:acquire name obtain a resource their callers must hand back
// through a //parcelvet:release or //parcelvet:transfer function on every
// control-flow path. The analyzer runs a forward may-analysis over each
// function's control-flow graph and reports any return path that still holds
// an acquired resource — the static form of the leaks that otherwise surface
// as sendq reservations that never drain, mux windows that never re-open,
// pooled frame buffers that never return, and single-flight channels that
// never close.
//
// Annotation grammar, on the declaration's doc comment:
//
//	//parcelvet:acquire <resource>   calling this function hands the caller
//	                                 one unit of <resource>. If the function
//	                                 returns bool the acquisition holds only
//	                                 on the true result; if its last result
//	                                 is error, only when that error is nil.
//	//parcelvet:release <resource>   calling this function returns the unit.
//	//parcelvet:transfer <resource>  calling this function takes ownership
//	                                 (enqueue/park handoff): the caller no
//	                                 longer holds the unit, the new owner's
//	                                 drain path releases it.
//
// A function annotated acquire may itself return while holding the resource
// — it is the source its callers draw from. A deferred release/transfer
// covers every exit of the enclosing function.
var Pairing = &analysis.Analyzer{
	Name: "pairing",
	Doc: "check //parcelvet:acquire resources are released or transferred on " +
		"every path (sendq reservations, mux windows, pooled frame buffers, " +
		"single-flight channels)",
	Run: runPairing,
}

var pairRe = regexp.MustCompile(`^//parcelvet:(acquire|release|transfer)\s+([a-z][a-z0-9_]*)\s*$`)

// pairKind is an annotation's role in a resource's lifecycle.
type pairKind int

const (
	pairAcquire pairKind = iota
	pairRelease
	pairTransfer
)

// condKind says when an acquire-annotated call actually acquires: always,
// only on a true bool result, or only on a nil trailing error.
type condKind int

const (
	condAlways condKind = iota
	condBool
	condErr
)

// pairAnno is one parsed lifecycle annotation on a function.
type pairAnno struct {
	kind pairKind
	res  string
	cond condKind // meaningful for pairAcquire only
}

// pairingSeeds carries the annotations across package boundaries without
// fact plumbing, exactly like pooledTypes: the in-source doc comments are
// authoritative in-package, and callers in other packages resolve the same
// functions here by import-path suffix. Seeded with the repository's four
// load-bearing pairs.
var pairingSeeds = map[string]map[string][]pairAnno{
	"internal/parcelnet": {
		// Pooled frame buffers: every buffer handed out by the framed reader
		// goes back through ReleaseFrameBuf exactly once.
		"ReadFramePooled": {{kind: pairAcquire, res: "framebuf", cond: condErr}},
		"ReleaseFrameBuf": {{kind: pairRelease, res: "framebuf"}},
	},
}

// runPairing checks every function body against the lifecycle annotations.
func runPairing(pass *analysis.Pass) (any, error) {
	return runPairingImpl(pass, collectAllows(pass, "pairing"))
}

// runPairingImpl is the directive-injectable body: staleallow shadow-runs it
// with a shared, usage-tracked allow set.
func runPairingImpl(pass *analysis.Pass, al *allows) (any, error) {
	local := collectPairAnnos(pass)
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkPairing(pass, al, local, fd)
		}
	}
	return nil, nil
}

// collectPairAnnos parses every lifecycle annotation on this package's
// function declarations, keyed by the declared *types.Func. The acquire
// conditionality is derived from the signature: bool-returning acquires hold
// on true, error-returning acquires hold on nil error, everything else holds
// unconditionally.
func collectPairAnnos(pass *analysis.Pass) map[*types.Func][]pairAnno {
	out := map[*types.Func][]pairAnno{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			for _, c := range fd.Doc.List {
				m := pairRe.FindStringSubmatch(strings.TrimSpace(c.Text))
				if m == nil {
					continue
				}
				a := pairAnno{res: m[2]}
				switch m[1] {
				case "acquire":
					a.kind = pairAcquire
					a.cond = acquireCond(fn.Type().(*types.Signature))
				case "release":
					a.kind = pairRelease
				case "transfer":
					a.kind = pairTransfer
				}
				out[fn] = append(out[fn], a)
			}
		}
	}
	return out
}

// acquireCond classifies an acquire function's signature: trailing error →
// conditional on nil error; single bool → conditional on true; else always.
func acquireCond(sig *types.Signature) condKind {
	res := sig.Results()
	if res.Len() == 0 {
		return condAlways
	}
	last := res.At(res.Len() - 1).Type()
	if types.Identical(last, types.Universe.Lookup("error").Type()) {
		return condErr
	}
	if res.Len() == 1 {
		if b, ok := last.Underlying().(*types.Basic); ok && b.Kind() == types.Bool {
			return condBool
		}
	}
	return condAlways
}

// annosFor resolves the lifecycle annotations of a call's callee: the
// in-package parse first, then the cross-package seed table by import-path
// suffix.
func annosFor(pass *analysis.Pass, local map[*types.Func][]pairAnno, call *ast.CallExpr) []pairAnno {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return nil
	}
	if as, ok := local[fn]; ok {
		return as
	}
	if fn.Pkg() == nil || fn.Pkg() == pass.Pkg {
		return nil
	}
	path := fn.Pkg().Path()
	for entry, funcs := range pairingSeeds {
		if path == entry || strings.HasSuffix(path, "/"+entry) {
			return funcs[fn.Name()]
		}
	}
	return nil
}

// resSet is the dataflow fact: the set of resources held at a program point.
type resSet map[string]bool

func (s resSet) clone() resSet {
	c := make(resSet, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

func (s resSet) equal(o resSet) bool {
	if len(s) != len(o) {
		return false
	}
	for k := range s {
		if !o[k] {
			return false
		}
	}
	return true
}

// condAcq is a conditional acquisition whose result landed in a variable:
// the branch on that variable decides whether the resource is held.
type condAcq struct {
	res    string
	isBool bool // true: bool result var; false: error result var
}

// checkPairing runs the forward may-analysis over fd's CFG and reports every
// return path that still holds a resource the function is not itself
// annotated to hand out.
func checkPairing(pass *analysis.Pass, al *allows, local map[*types.Func][]pairAnno, fd *ast.FuncDecl) {
	// Exempt resources: the enclosing function is the acquire source (its
	// callers take over) or an explicit transfer point.
	exempt := map[string]bool{}
	if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
		for _, a := range local[fn] {
			if a.kind == pairAcquire || a.kind == pairTransfer {
				exempt[a.res] = true
			}
		}
	}

	// Pre-scan: map result variables of conditional acquires to their
	// resource, and collect resources covered by a deferred release.
	condVars := map[types.Object]condAcq{}
	deferred := map[string]bool{}
	interesting := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, a := range annosFor(pass, local, call) {
				if a.kind != pairAcquire {
					continue
				}
				interesting = true
				if a.cond == condAlways || len(n.Lhs) == 0 {
					continue
				}
				// The governing variable: the sole bool result, or the
				// trailing error result.
				id, ok := ast.Unparen(n.Lhs[len(n.Lhs)-1]).(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = pass.TypesInfo.Uses[id]
				}
				if obj != nil {
					condVars[obj] = condAcq{res: a.res, isBool: a.cond == condBool}
				}
			}
		case *ast.DeferStmt:
			for _, a := range annosFor(pass, local, n.Call) {
				if a.kind == pairRelease || a.kind == pairTransfer {
					deferred[a.res] = true
				}
			}
		case *ast.CallExpr:
			if len(annosFor(pass, local, n)) > 0 {
				interesting = true
			}
		}
		return true
	})
	if !interesting {
		return
	}

	g := cfg.New(fd.Body, func(call *ast.CallExpr) bool {
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
			return false
		}
		return true
	})

	// Forward may-analysis to a fixpoint: union at joins, so a resource held
	// on any path into a return is reported.
	in := make([]resSet, len(g.Blocks))
	out := make([]resSet, len(g.Blocks))
	for i := range g.Blocks {
		in[i], out[i] = resSet{}, resSet{}
	}
	for changed := true; changed; {
		changed = false
		for _, b := range g.Blocks {
			if !b.Live {
				continue
			}
			cur := in[b.Index].clone()
			for _, n := range b.Nodes {
				applyPairNode(pass, local, condVars, n, cur)
			}
			if !cur.equal(out[b.Index]) {
				out[b.Index] = cur
				changed = true
			}
			for si, succ := range b.Succs {
				next := cur.clone()
				if res, branch, ok := condAcquireEdge(pass, local, condVars, b); ok {
					if si == branch {
						next[res] = true
					}
				}
				merged := in[succ.Index]
				grew := false
				for k := range next {
					if !merged[k] {
						merged[k] = true
						grew = true
					}
				}
				if grew {
					changed = true
				}
			}
		}
	}

	// Report at every exit still holding a non-exempt, non-deferred resource.
	for _, b := range g.Blocks {
		if !b.Live || len(b.Succs) > 0 {
			continue
		}
		held := out[b.Index]
		var leaks []string
		for res := range held {
			if !exempt[res] && !deferred[res] {
				leaks = append(leaks, res)
			}
		}
		if len(leaks) == 0 {
			continue
		}
		sort.Strings(leaks)
		pos := exitPos(fd, b)
		for _, res := range leaks {
			al.report(pass, pos,
				"acquired resource %q escapes %s without release or transfer on this path",
				res, fd.Name.Name)
		}
	}
}

// applyPairNode folds one CFG node into the held set: unconditional acquires
// add, releases and transfers remove. Conditional acquires whose result is
// discarded (plain expression statement) are treated as unconditional — the
// caller is ignoring the signal that decides whether it holds the resource.
func applyPairNode(pass *analysis.Pass, local map[*types.Func][]pairAnno, condVars map[types.Object]condAcq, n ast.Node, cur resSet) {
	ast.Inspect(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, a := range annosFor(pass, local, call) {
			switch a.kind {
			case pairAcquire:
				if a.cond == condAlways || discardedResult(n, call) {
					cur[a.res] = true
				}
			case pairRelease, pairTransfer:
				delete(cur, a.res)
			}
		}
		return true
	})
}

// discardedResult reports whether call's results are dropped on the floor:
// the node containing it is a bare expression statement or go/defer.
func discardedResult(container ast.Node, call *ast.CallExpr) bool {
	switch c := container.(type) {
	case *ast.ExprStmt:
		return ast.Unparen(c.X) == call
	case *ast.GoStmt:
		return c.Call == call
	case *ast.DeferStmt:
		return c.Call == call
	}
	return false
}

// condAcquireEdge inspects a two-successor block's controlling condition and
// reports which successor (0 = true branch, 1 = false branch) holds the
// conditionally acquired resource:
//
//	if x.reserve(n) { held }            if ok { held }        (bool acquires)
//	if !x.reserve(n) { shed } else ...  if !ok { not held }
//	v, err := Acquire(); if err != nil { not held }           (error acquires)
//	                     if err == nil { held }
func condAcquireEdge(pass *analysis.Pass, local map[*types.Func][]pairAnno, condVars map[types.Object]condAcq, b *cfg.Block) (res string, branch int, ok bool) {
	if len(b.Succs) != 2 || len(b.Nodes) == 0 {
		return "", 0, false
	}
	cond, isExpr := b.Nodes[len(b.Nodes)-1].(ast.Expr)
	if !isExpr {
		return "", 0, false
	}
	return condHolds(pass, local, condVars, ast.Unparen(cond), 0)
}

// condHolds resolves a branch condition to (resource, holding successor).
// branch is the successor taken when the condition is true; negation flips
// it.
func condHolds(pass *analysis.Pass, local map[*types.Func][]pairAnno, condVars map[types.Object]condAcq, cond ast.Expr, branchIfTrue int) (string, int, bool) {
	switch c := cond.(type) {
	case *ast.UnaryExpr:
		if c.Op == token.NOT {
			return condHolds(pass, local, condVars, ast.Unparen(c.X), 1-branchIfTrue)
		}
	case *ast.CallExpr:
		for _, a := range annosFor(pass, local, c) {
			if a.kind == pairAcquire && a.cond == condBool {
				return a.res, branchIfTrue, true
			}
		}
	case *ast.Ident:
		if obj := pass.TypesInfo.Uses[c]; obj != nil {
			if ca, ok := condVars[obj]; ok && ca.isBool {
				return ca.res, branchIfTrue, true
			}
		}
	case *ast.BinaryExpr:
		// err != nil / err == nil against a recorded error-acquire variable.
		if c.Op != token.NEQ && c.Op != token.EQL {
			return "", 0, false
		}
		id, nilSide := errNilOperands(c)
		if id == nil || !nilSide {
			return "", 0, false
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			return "", 0, false
		}
		ca, ok := condVars[obj]
		if !ok || ca.isBool {
			return "", 0, false
		}
		// err == nil: held on the true branch. err != nil: held on the false
		// branch.
		if c.Op == token.EQL {
			return ca.res, branchIfTrue, true
		}
		return ca.res, 1 - branchIfTrue, true
	}
	return "", 0, false
}

// errNilOperands extracts (ident, true) from `ident op nil` / `nil op ident`.
func errNilOperands(b *ast.BinaryExpr) (*ast.Ident, bool) {
	x, y := ast.Unparen(b.X), ast.Unparen(b.Y)
	if id, ok := x.(*ast.Ident); ok && isNilIdent(y) {
		return id, true
	}
	if id, ok := y.(*ast.Ident); ok && isNilIdent(x) {
		return id, true
	}
	return nil, false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// exitPos picks the position to report a leaking exit: the return statement
// when the block has one, otherwise the function's closing position.
func exitPos(fd *ast.FuncDecl, b *cfg.Block) token.Pos {
	if ret := b.Return(); ret != nil {
		return ret.Pos()
	}
	for i := len(b.Nodes) - 1; i >= 0; i-- {
		if n := b.Nodes[i]; n.Pos().IsValid() {
			return n.Pos()
		}
	}
	return fd.Body.Rbrace
}
