// Package analysis implements parcel-vet: a go/analysis suite that turns the
// repository's runtime-checked invariants into static, whole-tree guarantees.
//
// The reproduction's headline claims — bit-identical golden figures,
// exactly-once pooled-packet delivery, zero-alloc hot paths, and bounded
// per-session resources — were previously enforced only when a test happened
// to execute the offending path (-tags simdebug panics, the golden suite,
// the benchhotpath budget). The eight analyzers here catch every violation
// at `go vet` time instead:
//
//   - determinism: sim-deterministic packages must not read wall clocks or
//     the global RNG, and must not let map iteration order reach output.
//   - pooldiscipline: pooled objects (simnet packets/outMsgs, eventsim arena
//     events, minijs frames/arg slices) must not be used after release,
//     escape into fields/globals/maps, be captured by closures, or be
//     returned by non-pool functions.
//   - noclosure: hot packages must schedule continuations with
//     ScheduleArgAt + typed fields, never with capturing closures.
//   - wireerr: parcelnet/netem must never silently discard errors from
//     framed-wire writes, session enqueue wrappers, or deadline setters.
//   - pairing: functions annotated //parcelvet:acquire name must release
//     (or transfer) the resource on every path; flags leaks on early error
//     returns in the proxy admit/shed and mux sender paths.
//   - lockorder: builds the static lock graph over the proxy/objcache/hpack
//     mutexes and reports ordering cycles, double-acquisition, and
//     blocking calls made with a spinlock-class mutex held.
//   - framestate: wire frame emissions must come from functions registered
//     in the declared protocol state machine, in legal phase order.
//   - staleallow: //parcelvet:allow directives that no longer suppress any
//     finding are themselves findings, so the reviewed allow set can't rot.
//
// Escapes are explicit and audited: a `//parcelvet:allow name(reason)`
// comment on (or immediately above) the offending line suppresses one
// analyzer's findings there, and an allow with an empty reason is itself a
// finding. Test files (_test.go) are not analyzed: tests may time things,
// double-free on purpose, and discard errors deliberately.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Analyzers returns the full parcel-vet suite in a stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{Determinism, PoolDiscipline, NoClosure, WireErr, Pairing, LockOrder, FrameState, StaleAllow}
}

// simDeterministic lists the packages whose behaviour must be a pure
// function of their inputs and seeds: everything that runs under the virtual
// clock or feeds the golden-figure metrics. Matched by import-path suffix;
// the bare names are the analysistest fixture packages.
var simDeterministic = map[string]bool{
	"internal/eventsim":    true,
	"internal/simnet":      true,
	"internal/httpsim":     true,
	"internal/dnssim":      true,
	"internal/experiments": true,
	"internal/scenario":    true,
	"internal/runner":      true,
	"internal/minijs":      true,
	"internal/browser":     true,
	"internal/webgen":      true,
	"internal/sched":       true,
	"internal/radio":       true,
	"internal/energy":      true,
	"internal/stats":       true,
	"internal/trace":       true,
	// Packages beyond the core list that are also pure functions of the
	// simulation state.
	"internal/core":         true,
	"internal/cloudbrowser": true,
	"internal/dirbrowser":   true,
	"internal/spdybrowser":  true,
	"internal/mhtml":        true,
	"internal/htmlparse":    true,
	"internal/cssparse":     true,
	"internal/metrics":      true,
	// The cross-session object cache sits on both arms: the fleet simulation
	// shares it between virtual-clock sessions, so recency and eviction must
	// be driven by access order alone — a wall-clock or global-RNG read there
	// would leak real time into golden figures.
	"internal/objcache": true,
	// The resilience layer (retry backoff, breaker cool-downs) sits on both
	// arms too: the simulation threads virtual time and its seeded RNG through
	// it, so a wall-clock or global-RNG read there would make retry schedules
	// — and therefore golden chaos figures — irreproducible.
	"internal/resilience": true,

	// analysistest fixtures
	"determ_sim":         true,
	"determ_sim_clean":   true,
	"determ_cache":       true,
	"determ_cache_clean": true,
	"determ_resil":       true,
	"determ_resil_clean": true,
}

// realClockAllowlist is the checked-in exemption list: packages that talk to
// real networks, real goroutines, or real time, where wall-clock reads are
// the point. A package must never appear in both tables; Determinism reports
// the contradiction if it does.
var realClockAllowlist = map[string]bool{
	"internal/parcelnet": true,
	"internal/netem":     true,
	"internal/replay":    true,
	"internal/leakcheck": true,

	// analysistest fixture
	"determ_exempt": true,
}

// hotPackages lists the packages under the PR 2 closure-free-continuation
// rule: everything on or feeding the per-packet/per-event simulation path.
var hotPackages = map[string]bool{
	"internal/eventsim":     true,
	"internal/simnet":       true,
	"internal/httpsim":      true,
	"internal/dnssim":       true,
	"internal/radio":        true,
	"internal/core":         true,
	"internal/browser":      true,
	"internal/cloudbrowser": true,
	"internal/dirbrowser":   true,
	"internal/spdybrowser":  true,
	// The batch dispatch path: MapBatches workers and the multiplexed
	// session loop schedule continuations on shared arenas, so stray
	// closures there defeat the same pooling the simulation path protects.
	"internal/runner":      true,
	"internal/experiments": true,
	// The resilience layer schedules retry continuations on the simulation
	// arm; a capturing closure per retry would allocate on the same per-event
	// path the rule protects.
	"internal/resilience": true,

	// analysistest fixtures
	"noclosure_hot":   true,
	"noclosure_clean": true,
	"noclosure_resil": true,
}

// wirePackages lists the packages carrying the real-network framed-wire
// protocol, where a silently dropped write or deadline error strands a
// session instead of tearing it down.
var wirePackages = map[string]bool{
	"internal/parcelnet": true,
	"internal/netem":     true,

	// analysistest fixtures
	"wireerr_net":   true,
	"wireerr_clean": true,
}

// pooledTypes names the pooled/arena types per package, keyed by import-path
// suffix. This table is what makes cross-package discipline work without
// fact plumbing: a package storing an eventsim.Event into a field is checked
// against it even though the `//parcelvet:pooled` marker lives in eventsim's
// source. In-package, the marker comment on the type declaration is
// authoritative (and is how fixture packages declare pooled types).
var pooledTypes = map[string][]string{
	"internal/simnet":   {"packet", "outMsg"},
	"internal/eventsim": {"Event"},
	"internal/minijs":   {"frame"},
	"internal/httpsim":  {"pendingReq"},
}

// pkgMatch reports whether the package path matches a table entry: exact
// (fixtures) or by path suffix (real packages under any module prefix).
func pkgMatch(table map[string]bool, path string) bool {
	if table[path] {
		return true
	}
	for entry := range table {
		if strings.HasSuffix(path, "/"+entry) {
			return true
		}
	}
	return false
}

// pooledMarker is the doc-comment marker declaring a type pooled.
const pooledMarker = "//parcelvet:pooled"

// allowPrefix starts an in-source escape: //parcelvet:allow name(reason).
const allowPrefix = "//parcelvet:allow"

var allowRe = regexp.MustCompile(`^//parcelvet:allow\s+([a-z]+)\s*(?:\((.*)\))?\s*$`)

// directive is one parsed //parcelvet:allow comment. used is set by
// suppressed() when the directive actually swallows a finding; staleallow
// shadow-runs the suite and reports well-formed directives that end a full
// pass with used still false.
type directive struct {
	analyzer string
	reason   string
	pos      token.Pos
	used     bool
}

// allows indexes the pass's allow directives by file:line for suppression
// lookups and keeps the flat list for staleness auditing.
type allows struct {
	fset   *token.FileSet
	byLine map[string][]*directive
	all    []*directive
}

func lineKey(p token.Position) string {
	return fmt.Sprintf("%s:%d", p.Filename, p.Line)
}

// collectAllows parses every //parcelvet:allow directive in the pass and
// reports — on behalf of the named analyzer — directives that name it but
// carry no reason. Escapes must say why, or they are findings themselves.
func collectAllows(pass *analysis.Pass, name string) *allows {
	a := &allows{fset: pass.Fset, byLine: map[string][]*directive{}}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				m := allowRe.FindStringSubmatch(text)
				if m == nil || strings.TrimSpace(m[2]) == "" {
					// Malformed or reasonless. Report it exactly once across
					// the suite: by the analyzer it names, or by determinism
					// (the first analyzer) when it names none of them.
					owner := "determinism"
					if m != nil && knownAnalyzer(m[1]) {
						owner = m[1]
					}
					if owner == name {
						pass.Reportf(c.Pos(), "parcelvet:allow directive requires a non-empty reason: %s", text)
					}
					continue
				}
				d := &directive{analyzer: m[1], reason: strings.TrimSpace(m[2]), pos: c.Pos()}
				key := lineKey(pass.Fset.Position(c.Pos()))
				a.byLine[key] = append(a.byLine[key], d)
				a.all = append(a.all, d)
			}
		}
	}
	return a
}

func knownAnalyzer(name string) bool {
	switch name {
	case "determinism", "pooldiscipline", "noclosure", "wireerr",
		"pairing", "lockorder", "framestate", "staleallow":
		return true
	}
	return false
}

// suppressed reports whether a finding by analyzer name at pos is covered by
// an allow directive on the same line or the line directly above, marking
// the covering directive used for the staleness audit.
func (a *allows) suppressed(name string, pos token.Pos) bool {
	p := a.fset.Position(pos)
	for _, line := range []int{p.Line, p.Line - 1} {
		key := fmt.Sprintf("%s:%d", p.Filename, line)
		for _, d := range a.byLine[key] {
			if d.analyzer == name {
				d.used = true
				return true
			}
		}
	}
	return false
}

// report emits a diagnostic unless an allow directive suppresses it.
func (a *allows) report(pass *analysis.Pass, pos token.Pos, format string, args ...any) {
	if a.suppressed(pass.Analyzer.Name, pos) {
		return
	}
	pass.Reportf(pos, format, args...)
}

// isTestFile reports whether the file is a _test.go file; parcel-vet does
// not analyze tests (they time things, double-free on purpose, and discard
// errors deliberately).
func isTestFile(pass *analysis.Pass, f *ast.File) bool {
	name := pass.Fset.Position(f.Pos()).Filename
	return strings.HasSuffix(name, "_test.go")
}

// markedPooledTypes collects the named types in this package whose
// declaration carries the //parcelvet:pooled marker.
func markedPooledTypes(pass *analysis.Pass) map[*types.TypeName]bool {
	marked := map[*types.TypeName]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			declMarked := hasPooledMarker(gd.Doc)
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if !declMarked && !hasPooledMarker(ts.Doc) && !hasPooledMarker(ts.Comment) {
					continue
				}
				if obj, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName); ok {
					marked[obj] = true
				}
			}
		}
	}
	return marked
}

func hasPooledMarker(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), pooledMarker) {
			return true
		}
	}
	return false
}

// isPooled reports whether t (possibly behind pointers) is a pooled type:
// either marked in the current package or listed in the cross-package table.
func isPooled(t types.Type, marked map[*types.TypeName]bool) bool {
	for {
		ptr, ok := t.Underlying().(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if marked[obj] {
		return true
	}
	if obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	if names, ok := pooledTypes[path]; ok {
		for _, n := range names {
			if n == obj.Name() {
				return true
			}
		}
	}
	for entry, names := range pooledTypes {
		if strings.HasSuffix(path, "/"+entry) {
			for _, n := range names {
				if n == obj.Name() {
					return true
				}
			}
		}
	}
	return false
}

// calleeFunc resolves a call expression to the *types.Func it invokes, or
// nil for builtins, conversions, and dynamic calls through variables.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}
