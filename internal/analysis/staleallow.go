package analysis

import (
	"golang.org/x/tools/go/analysis"
)

// StaleAllow audits the escape hatch itself. Every //parcelvet:allow
// directive was reviewed against a finding that existed when it was written;
// when the code under it changes, the directive can outlive the finding and
// silently blanket future, different violations on the same line. StaleAllow
// shadow-runs the other seven analyzers over the package with a shared,
// usage-tracked allow set and diagnostics swallowed; any well-formed
// directive that ends the pass without having suppressed a single finding
// is reported for deletion.
var StaleAllow = &analysis.Analyzer{
	Name: "staleallow",
	Doc:  "flag //parcelvet:allow directives that no longer suppress any finding",
	Run:  runStaleAllow,
}

// staleSiblings are the shadow-run bodies, paired with the analyzer whose
// name drives suppression matching. StaleAllow itself is excluded: its own
// findings are suppressible but not themselves audited for staleness.
var staleSiblings = []struct {
	analyzer *analysis.Analyzer
	impl     func(*analysis.Pass, *allows) (any, error)
}{
	{Determinism, runDeterminismImpl},
	{PoolDiscipline, runPoolDisciplineImpl},
	{NoClosure, runNoClosureImpl},
	{WireErr, runWireErrImpl},
	{Pairing, runPairingImpl},
	{LockOrder, runLockOrderImpl},
	{FrameState, runFrameStateImpl},
}

func runStaleAllow(pass *analysis.Pass) (any, error) {
	al := collectAllows(pass, "staleallow")
	if len(al.all) == 0 {
		return nil, nil
	}
	for _, sib := range staleSiblings {
		shadow := *pass
		shadow.Analyzer = sib.analyzer
		shadow.Report = func(analysis.Diagnostic) {}
		if _, err := sib.impl(&shadow, al); err != nil {
			return nil, err
		}
	}
	for _, d := range al.all {
		if d.analyzer == "staleallow" {
			continue
		}
		if !knownAnalyzer(d.analyzer) {
			// A typo'd analyzer name suppresses nothing, forever.
			al.report(pass, d.pos,
				"parcelvet:allow names unknown analyzer %q: it can never suppress a finding",
				d.analyzer)
			continue
		}
		if !d.used {
			al.report(pass, d.pos,
				"stale parcelvet:allow: no %s finding is suppressed here any more — delete the directive",
				d.analyzer)
		}
	}
	return nil, nil
}
