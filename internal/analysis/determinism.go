package analysis

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
)

// Determinism enforces the golden-figure contract statically: in
// sim-deterministic packages every run must be a pure function of inputs and
// seeds, so wall-clock reads, global-RNG draws, and map-iteration order
// reaching output are all reported at vet time instead of surfacing as a
// flaky golden diff.
var Determinism = &analysis.Analyzer{
	Name: "determinism",
	Doc: "forbid wall-clock and global-RNG calls, and unsorted map-range output, " +
		"in sim-deterministic packages (virtual time and seeded *rand.Rand only)",
	Run: runDeterminism,
}

// wallClockFuncs are the time-package functions whose result depends on the
// real clock. Pure constructors and arithmetic (time.Duration, ParseDuration,
// Unix, Date, ...) stay legal.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTicker": true, "NewTimer": true,
}

// seededRandFuncs are the math/rand package-level functions that are allowed
// because they construct isolated sources rather than drawing from the
// process-global RNG.
var seededRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

func runDeterminism(pass *analysis.Pass) (any, error) {
	return runDeterminismImpl(pass, collectAllows(pass, "determinism"))
}

// runDeterminismImpl is the directive-injectable body: staleallow shadow-runs
// it with a shared, usage-tracked allow set.
func runDeterminismImpl(pass *analysis.Pass, al *allows) (any, error) {
	path := pass.Pkg.Path()
	sim := pkgMatch(simDeterministic, path)
	if sim && pkgMatch(realClockAllowlist, path) {
		pass.Reportf(pass.Files[0].Pos(),
			"package %s appears in both the sim-deterministic table and the real-clock allowlist; fix the parcel-vet config", path)
		return nil, nil
	}
	if !sim {
		return nil, nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkDeterminismCall(pass, al, n)
			case *ast.FuncDecl:
				if n.Body != nil {
					checkMapRanges(pass, al, n.Body)
				}
			}
			return true
		})
	}
	return nil, nil
}

func checkDeterminismCall(pass *analysis.Pass, al *allows, call *ast.CallExpr) {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if wallClockFuncs[fn.Name()] {
			al.report(pass, call.Pos(),
				"call to time.%s in sim-deterministic package %s: virtual time must come from the Simulator clock",
				fn.Name(), pass.Pkg.Name())
		}
	case "math/rand", "math/rand/v2":
		// Methods on *rand.Rand have a receiver; only package-level
		// convenience functions draw from the global source.
		if fn.Type().(*types.Signature).Recv() != nil {
			return
		}
		if !seededRandFuncs[fn.Name()] {
			al.report(pass, call.Pos(),
				"call to top-level rand.%s draws from the global RNG in sim-deterministic package %s: thread a seeded *rand.Rand instead",
				fn.Name(), pass.Pkg.Name())
		}
	}
}

// checkMapRanges flags map-range loops whose iteration order can escape the
// function: either the body calls an output sink directly (trace/metrics
// recording, fmt printing), or the body accumulates into a slice that the
// function later returns without sorting. Both turn Go's randomized map
// order into nondeterministic metrics.
func checkMapRanges(pass *analysis.Pass, al *allows, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		if sink, name := mapRangeSink(pass, rng.Body); sink {
			al.report(pass, rng.Pos(),
				"map-range loop feeds %s: iteration order is randomized, so output is nondeterministic; iterate sorted keys instead", name)
			return true
		}
		for _, obj := range mapRangeAppends(pass, rng) {
			if returnedUnsorted(pass, body, rng, obj) {
				al.report(pass, rng.Pos(),
					"map iteration order flows into returned slice %q: sort it before returning (or iterate sorted keys)", obj.Name())
			}
		}
		return true
	})
}

// mapRangeSink reports whether the loop body directly calls an
// order-sensitive output sink.
func mapRangeSink(pass *analysis.Pass, body *ast.BlockStmt) (bool, string) {
	found := false
	name := ""
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		fn := calleeFunc(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		path := fn.Pkg().Path()
		switch {
		case path == "fmt" && (fn.Name() == "Print" || fn.Name() == "Println" || fn.Name() == "Printf" ||
			fn.Name() == "Fprint" || fn.Name() == "Fprintln" || fn.Name() == "Fprintf"):
			found, name = true, "fmt output"
		case pkgMatch(map[string]bool{"internal/trace": true}, path):
			found, name = true, "trace recording"
		case pkgMatch(map[string]bool{"internal/metrics": true}, path):
			found, name = true, "metrics output"
		}
		return !found
	})
	return found, name
}

// mapRangeAppends returns the variables (declared outside the loop) that the
// loop body grows with append.
func mapRangeAppends(pass *analysis.Pass, rng *ast.RangeStmt) []*types.Var {
	var out []*types.Var
	seen := map[*types.Var]bool{}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok {
				continue
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" {
				continue
			} else if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
				continue
			}
			if i >= len(as.Lhs) {
				continue
			}
			id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
			if !ok {
				continue
			}
			v, ok := pass.TypesInfo.Uses[id].(*types.Var)
			if !ok {
				v, ok = pass.TypesInfo.Defs[id].(*types.Var)
				if !ok {
					continue
				}
			}
			// Only variables that outlive the loop matter.
			if v.Pos() >= rng.Pos() && v.Pos() <= rng.End() {
				continue
			}
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
		return true
	})
	return out
}

// returnedUnsorted reports whether obj is returned by the enclosing function
// after the range loop without an intervening sort call on it.
func returnedUnsorted(pass *analysis.Pass, body *ast.BlockStmt, rng *ast.RangeStmt, obj *types.Var) bool {
	sorted := false
	returned := false
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil || n.Pos() <= rng.End() {
			return true
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn := calleeFunc(pass.TypesInfo, n); fn != nil && fn.Pkg() != nil &&
				(fn.Pkg().Path() == "sort" || fn.Pkg().Path() == "slices") {
				for _, arg := range n.Args {
					if usesVar(pass, arg, obj) {
						sorted = true
					}
				}
			}
		case *ast.ReturnStmt:
			if sorted {
				return true
			}
			for _, res := range n.Results {
				if id, ok := ast.Unparen(res).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					returned = true
				}
			}
		}
		return true
	})
	return returned
}

func usesVar(pass *analysis.Pass, e ast.Expr, obj *types.Var) bool {
	used := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			used = true
		}
		return !used
	})
	return used
}
