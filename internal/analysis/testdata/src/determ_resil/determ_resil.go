// Package determ_resil is the positive determinism fixture for the
// resilience package class: every nondeterminism shortcut a retry/breaker
// layer might reach for — wall-clock cool-down stamps, global-RNG backoff
// jitter, map-order breaker dumps — must be flagged, because the simulation
// arm threads virtual time and a seeded source through the layer and replays
// chaos runs bit-identically from a seed.
package determ_resil

import (
	"fmt"
	"math/rand"
	"time"
)

type breaker struct {
	openedAt time.Time
	openFor  time.Duration
}

func (b *breaker) open() {
	b.openedAt = time.Now() // want "call to time.Now in sim-deterministic package"
}

func (b *breaker) allow() bool {
	return time.Since(b.openedAt) >= b.openFor // want "call to time.Since in sim-deterministic package"
}

func backoff(base time.Duration) time.Duration {
	half := int64(base / 2)
	return base/2 + time.Duration(rand.Int63n(half+1)) // want "top-level rand.Int63n draws from the global RNG"
}

type group struct {
	breakers map[string]*breaker
}

func (g *group) openOrigins() []string {
	var out []string
	for origin, b := range g.breakers { // want "map iteration order flows into returned slice \"out\""
		if b.allow() {
			continue
		}
		out = append(out, origin)
	}
	return out
}

func (g *group) dump() {
	for origin := range g.breakers { // want "map-range loop feeds fmt output"
		fmt.Println(origin)
	}
}
