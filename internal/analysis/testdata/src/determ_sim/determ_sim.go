// Package determ_sim is the positive determinism fixture: every construct
// the analyzer must flag in a sim-deterministic package, plus the allow
// directive in both its legal (reasoned) and illegal (reasonless) forms.
package determ_sim

import (
	"fmt"
	"math/rand"
	"time"
)

func wallClock() time.Time {
	return time.Now() // want "call to time.Now in sim-deterministic package"
}

func sinceStart(start time.Time) time.Duration {
	return time.Since(start) // want "call to time.Since in sim-deterministic package"
}

func sleepy() {
	time.Sleep(time.Millisecond) // want "call to time.Sleep in sim-deterministic package"
}

func globalDraw() int {
	return rand.Intn(6) // want "top-level rand.Intn draws from the global RNG"
}

func seededDraw(r *rand.Rand) int {
	return r.Intn(6) // methods on a threaded *rand.Rand are the sanctioned source
}

func freshSource(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // constructors are allowed
}

func printAll(m map[string]int) {
	for k, v := range m { // want "map-range loop feeds fmt output"
		fmt.Println(k, v)
	}
}

func keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m { // want "map iteration order flows into returned slice \"out\""
		out = append(out, k)
	}
	return out
}

func allowedClock() time.Time {
	//parcelvet:allow determinism(fixture: demonstrates a reasoned escape; suppressed)
	return time.Now()
}

func reasonlessAllow() time.Time {
	//parcelvet:allow determinism() // want "parcelvet:allow directive requires a non-empty reason"
	return time.Now() // want "call to time.Now in sim-deterministic package"
}
