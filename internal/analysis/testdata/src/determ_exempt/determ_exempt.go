// Package determ_exempt stands in for the real-clock allowlist packages
// (parcelnet, netem, replay, leakcheck): wall-clock reads and global RNG are
// the point there, so the determinism analyzer must stay silent.
package determ_exempt

import (
	"math/rand"
	"time"
)

func deadline(timeout time.Duration) time.Time {
	return time.Now().Add(timeout)
}

func backoffJitter() time.Duration {
	return time.Duration(rand.Intn(100)) * time.Millisecond
}
