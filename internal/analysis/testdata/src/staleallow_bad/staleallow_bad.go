// Package staleallow_bad carries allow directives in three states: one that
// still suppresses a pairing finding (kept silently), one whose finding was
// fixed long ago (stale, reported), and one naming an analyzer that does not
// exist (reported). The expectations live in TestStaleAllow rather than
// `// want` trailers: a well-formed directive comment cannot also carry a
// trailer without breaking the directive grammar.
package staleallow_bad

//parcelvet:acquire buf
func grab(n int) []byte { return make([]byte, n) }

//parcelvet:release buf
func release(b []byte) { _ = b }

// waivedLeak really leaks: its directive is load-bearing and must survive the
// audit untouched.
func waivedLeak(n int) []byte {
	b := grab(n)
	//parcelvet:allow pairing(fixture: ownership handed to the caller out of band)
	return b
}

// balanced was fixed after its directive was written: the directive now
// suppresses nothing and must be reported stale.
func balanced(n int) {
	b := grab(n)
	//parcelvet:allow pairing(fixture: historical leak, fixed long ago)
	release(b)
}

// typo names an analyzer that does not exist; it can never suppress anything
// and must be reported.
func typo(n int) int {
	//parcelvet:allow pairng(fixture: typo in the analyzer name)
	return n
}
