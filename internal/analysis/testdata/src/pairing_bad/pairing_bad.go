// Package pairing_bad exercises the pairing analyzer: annotated resources
// acquired on some control-flow path and never released or transferred.
package pairing_bad

//parcelvet:acquire buf
func grab(n int) []byte { return make([]byte, n) }

//parcelvet:release buf
func release(b []byte) { _ = b }

//parcelvet:transfer buf
func enqueue(b []byte) { _ = b }

//parcelvet:acquire budget
func reserve(n int) bool { return n < 10 }

//parcelvet:release budget
func unreserve(n int) { _ = n }

//parcelvet:acquire handle
func open(name string) (int, error) {
	if name == "" {
		return 0, errEmpty
	}
	return 1, nil
}

//parcelvet:release handle
func closeHandle(h int) { _ = h }

var errEmpty error

func use(int) {}

// leakOnEarlyReturn releases on the long path but leaks on the early return —
// the shape of the pre-fix proxy error paths.
func leakOnEarlyReturn(n int) {
	b := grab(n)
	if n > 4 {
		return // want "acquired resource .buf. escapes leakOnEarlyReturn without release or transfer on this path"
	}
	release(b)
}

// leakAlways never hands the buffer back and is not annotated as a source.
func leakAlways(n int) []byte {
	b := grab(n)
	return b // want "acquired resource .buf. escapes leakAlways without release or transfer on this path"
}

// leakOnTrueBranch holds budget only when reserve returns true, then forgets
// it on exactly that branch.
func leakOnTrueBranch(n int) {
	if reserve(n) {
		return // want "acquired resource .budget. escapes leakOnTrueBranch without release or transfer on this path"
	}
}

// leakNegated flips the condition: !reserve means the false branch holds.
func leakNegated(n int) {
	if !reserve(n) {
		return
	}
	use(n)
} // want "acquired resource .budget. escapes leakNegated without release or transfer on this path"

// leakHandleOnSuccess frees nothing after a nil-error acquire; the err != nil
// arm is correctly exempt.
func leakHandleOnSuccess(name string) error {
	h, err := open(name)
	if err != nil {
		return err
	}
	use(h)
	return nil // want "acquired resource .handle. escapes leakHandleOnSuccess without release or transfer on this path"
}

// leakDiscarded drops a conditional acquire's result on the floor: without
// the governing bool the acquire counts unconditionally.
func leakDiscarded(n int) {
	reserve(n)
} // want "acquired resource .budget. escapes leakDiscarded without release or transfer on this path"

// leakOneOfTwo releases buf but leaks budget on the same exit.
func leakOneOfTwo(n int) {
	b := grab(n)
	if !reserve(n) {
		release(b)
		return
	}
	release(b)
} // want "acquired resource .budget. escapes leakOneOfTwo without release or transfer on this path"
