// Package noclosure_clean is the negative noclosure fixture: the sanctioned
// ScheduleArgAt shape — a package-level func(any) plus a typed argument.
package noclosure_clean

type sim struct{}

func (s *sim) ScheduleAt(at int64, fn func())                {}
func (s *sim) ScheduleArgAt(at int64, fn func(any), arg any) {}

type tick struct{ n int }

func step(arg any) {
	t := arg.(*tick)
	t.n++
}

func good(s *sim, t *tick) {
	s.ScheduleArgAt(0, step, t)
}

// A closure that only reads package-level state captures nothing.
var counter int

func goodPackageLevel(s *sim) {
	s.ScheduleAt(0, func() { counter++ })
}
