// Package pairing_clean is the negative space of pairing_bad: every acquire
// is balanced by a release, a transfer, a deferred release, or an exemption,
// and the one deliberate leak carries an allow directive.
package pairing_clean

//parcelvet:acquire buf
func grab(n int) []byte { return make([]byte, n) }

//parcelvet:release buf
func release(b []byte) { _ = b }

//parcelvet:transfer buf
func enqueue(b []byte) { _ = b }

//parcelvet:acquire budget
func reserve(n int) bool { return n < 10 }

//parcelvet:release budget
func unreserve(n int) { _ = n }

//parcelvet:acquire handle
func open(name string) (int, error) {
	if name == "" {
		return 0, errEmpty
	}
	return 1, nil
}

//parcelvet:release handle
func closeHandle(h int) { _ = h }

var errEmpty error

func use(int) {}

// releasedOnAllPaths balances both exits: release on one, transfer on the
// other.
func releasedOnAllPaths(n int) {
	b := grab(n)
	if n > 4 {
		release(b)
		return
	}
	enqueue(b)
}

// deferredRelease covers every exit with one defer.
func deferredRelease(n int) int {
	b := grab(n)
	defer release(b)
	if n > 4 {
		return 1
	}
	return 0
}

// grabTwice is itself an acquire source: holding buf at return is its
// callers' obligation, not a leak.
//
//parcelvet:acquire buf
func grabTwice(n int) []byte {
	return append(grab(n), grab(n)...)
}

// handoff is a transfer point: it may exit holding buf because ownership
// moved to whoever drains it.
//
//parcelvet:transfer buf
func handoff(n int) []byte {
	return grab(n)
}

// reserveChecked only proceeds — and only releases — when the reservation
// took.
func reserveChecked(n int) {
	if !reserve(n) {
		return
	}
	use(n)
	unreserve(n)
}

// reserveVar branches on the stored bool result instead of the call.
func reserveVar(n int) {
	ok := reserve(n)
	if !ok {
		return
	}
	unreserve(n)
}

// handleChecked closes the handle only on the nil-error path that holds it.
func handleChecked(name string) error {
	h, err := open(name)
	if err != nil {
		return err
	}
	use(h)
	closeHandle(h)
	return nil
}

// allowedLeak pins allow-directive parsing: the leak is real but waived with
// a reasoned directive on the report line.
func allowedLeak(n int) []byte {
	b := grab(n)
	//parcelvet:allow pairing(fixture: ownership documented out of band)
	return b
}
