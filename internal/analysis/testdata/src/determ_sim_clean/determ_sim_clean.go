// Package determ_sim_clean is the negative determinism fixture: idiomatic
// sim-deterministic code that must produce zero diagnostics.
package determ_sim_clean

import (
	"math/rand"
	"sort"
	"time"
)

type sim struct{ now time.Duration }

// Virtual time comes from the simulator clock, never the wall clock.
func (s *sim) elapsed(start time.Duration) time.Duration { return s.now - start }

// Randomness is drawn from a seeded source threaded by the caller.
func jitter(r *rand.Rand, base time.Duration) time.Duration {
	return base + time.Duration(r.Intn(1000))*time.Microsecond
}

// Map iteration is fine when the order is sorted before it can escape.
func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Map iteration whose order never escapes the function is fine too.
func total(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}
