// Package noclosure_resil is the noclosure fixture for the resilience
// package class: retry continuations scheduled on the simulation clock must
// use ScheduleArgAt with typed fields, never a capturing closure — one
// allocation per retry lands on the same per-event path the rule protects.
package noclosure_resil

type clock struct{}

func (c *clock) Schedule(delay int64, fn func())               {}
func (c *clock) ScheduleAt(at int64, fn func(any), _ any)      {}
func (c *clock) ScheduleArgAt(at int64, fn func(any), arg any) {}

type retry struct {
	attempt int
	url     string
}

func badRetryClosure(c *clock, r *retry, backoff int64) {
	c.Schedule(backoff, func() { r.attempt++ }) // want "closure passed to Schedule captures \\[r\\]"
}

func retryStep(arg any) { arg.(*retry).attempt++ }

func okRetryArg(c *clock, r *retry, backoff int64) {
	c.ScheduleArgAt(backoff, retryStep, r)
}

func allowedProbeClosure(c *clock, r *retry, at int64) {
	//parcelvet:allow noclosure(fixture: one half-open probe per cool-down, off the per-event path)
	c.Schedule(at, func() { r.attempt = 0 })
}
