// Package lockorder_bad exercises the lockorder analyzer: an ABBA ordering
// cycle, direct and call-propagated self-deadlocks, and blocking operations
// performed under a lock.
package lockorder_bad

import (
	"sync"
	"time"
)

type shard struct {
	mu   sync.Mutex
	busy int
}

type session struct {
	mu   sync.Mutex
	seen int
}

// lockAB orders shard.mu before session.mu; lockBA orders them the other way
// around — together they form the classic ABBA deadlock.
func lockAB(sh *shard, s *session) {
	sh.mu.Lock()
	s.mu.Lock() // want "lock ordering cycle: shard.mu acquired before session.mu in lockAB, but session.mu is acquired before shard.mu elsewhere"
	s.seen++
	s.mu.Unlock()
	sh.mu.Unlock()
}

func lockBA(sh *shard, s *session) {
	s.mu.Lock()
	sh.mu.Lock() // want "lock ordering cycle: session.mu acquired before shard.mu in lockBA, but shard.mu is acquired before session.mu elsewhere"
	sh.busy++
	sh.mu.Unlock()
	s.mu.Unlock()
}

// relock re-acquires the same identity with the first acquisition pending.
func relock(s *session) {
	s.mu.Lock()
	s.mu.Lock() // want "lock session.mu acquired while already held"
	s.mu.Unlock()
	s.mu.Unlock()
}

func helperLocks(s *session) {
	s.mu.Lock()
	s.seen++
	s.mu.Unlock()
}

// callWhileHeld reaches the same lock through a one-level in-package call.
func callWhileHeld(s *session) {
	s.mu.Lock()
	helperLocks(s) // want "call to helperLocks while holding lock session.mu, which helperLocks re-acquires"
	s.mu.Unlock()
}

// sleepUnderLock stalls every peer contending for session.mu.
func sleepUnderLock(s *session) {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want "blocking time.Sleep while holding lock session.mu"
	s.mu.Unlock()
}

// sendUnderLock blocks on a channel with the lock held.
func sendUnderLock(s *session, ch chan int) {
	s.mu.Lock()
	ch <- 1 // want "blocking channel send while holding lock session.mu"
	s.mu.Unlock()
}

// fetchUnderLock calls an injected origin-fetch callback under the lock.
func fetchUnderLock(s *session, fetch func() error) {
	s.mu.Lock()
	_ = fetch() // want "blocking origin fetch fetch while holding lock session.mu"
	s.mu.Unlock()
}
