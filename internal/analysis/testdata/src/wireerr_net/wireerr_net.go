// Package wireerr_net is the positive wireerr fixture: every way the
// analyzer must catch a discarded framed-wire or deadline error.
package wireerr_net

import "time"

type conn struct{}

func (c *conn) SetReadDeadline(t time.Time) error  { return nil }
func (c *conn) SetWriteDeadline(t time.Time) error { return nil }

type FrameWriter struct{}

func (w *FrameWriter) WriteFrame(typ byte, payload []byte) error    { return nil }
func (w *FrameWriter) WriteJSON(typ byte, v any) error              { return nil }
func (w *FrameWriter) Write(p []byte) (int, error)                  { return len(p), nil }
func (w *FrameWriter) WriteRaw(frame []byte) error                  { return nil }
func (w *FrameWriter) WriteWindowUpdate(id, increment uint32) error { return nil }

type session struct{}

// enqueueJSONLocked mirrors the proxy's control-note staging point: its
// error means the note never reached the send queue.
func (s *session) enqueueJSONLocked(typ byte, v any) error { return nil }

func bad(c *conn, w *FrameWriter) {
	c.SetReadDeadline(time.Time{})      // want "error from SetReadDeadline discarded"
	w.WriteFrame(1, nil)                // want "error from WriteFrame discarded"
	go w.WriteJSON(1, nil)              // want "error from WriteJSON discarded by go statement"
	defer w.WriteFrame(2, nil)          // want "error from WriteFrame discarded by defer"
	_ = c.SetWriteDeadline(time.Time{}) // want "error from SetWriteDeadline assigned to blank identifier"
	_, _ = w.Write(nil)                 // want "error from Write assigned to blank identifier"
	w.WriteRaw(nil)                     // want "error from WriteRaw discarded"
	go w.WriteWindowUpdate(1, 64)       // want "error from WriteWindowUpdate discarded by go statement"
	_ = w.WriteWindowUpdate(0, 1)       // want "error from WriteWindowUpdate assigned to blank identifier"
}

func badControlNotes(s *session) {
	s.enqueueJSONLocked(9, nil)      // want "error from enqueueJSONLocked discarded"
	_ = s.enqueueJSONLocked(10, nil) // want "error from enqueueJSONLocked assigned to blank identifier"
	go s.enqueueJSONLocked(11, nil)  // want "error from enqueueJSONLocked discarded by go statement"
}

func allowedDiscard(w *FrameWriter) {
	//parcelvet:allow wireerr(fixture: best-effort notification on an already-dying session)
	w.WriteFrame(3, nil)
}
