// Package lockorder_clean is the negative space of lockorder_bad: consistent
// ordering, branch-balanced acquisitions, goroutine-isolated blocking, and an
// allow-waived bounded sleep.
package lockorder_clean

import (
	"sync"
	"time"
)

type shard struct {
	mu   sync.Mutex
	busy int
}

type session struct {
	mu   sync.Mutex
	seen int
}

// Both multi-lock functions agree on shard.mu before session.mu: edges exist
// but no cycle.
func lockBoth(sh *shard, s *session) {
	sh.mu.Lock()
	s.mu.Lock()
	s.seen++
	s.mu.Unlock()
	sh.mu.Unlock()
}

func lockBothElsewhere(sh *shard, s *session) {
	sh.mu.Lock()
	s.mu.Lock()
	sh.busy++
	s.mu.Unlock()
	sh.mu.Unlock()
}

// branchBalanced acquires once in each exclusive arm — the merge is one
// acquisition, not a self-deadlock. This pins the client.go completion-note
// false positive the branch-aware walker fixed.
func branchBalanced(s *session, ok bool) {
	if ok {
		s.mu.Lock()
		s.seen++
	} else {
		s.mu.Lock()
	}
	s.mu.Unlock()
}

// earlyReturn releases on the terminated arm; the fallthrough still holds it
// exactly once.
func earlyReturn(s *session, ok bool) {
	s.mu.Lock()
	if !ok {
		s.mu.Unlock()
		return
	}
	s.seen++
	s.mu.Unlock()
}

// selectArms acquires independently per arm; arms are balanced.
func selectArms(s *session, ch chan int) {
	select {
	case v := <-ch:
		s.mu.Lock()
		s.seen += v
		s.mu.Unlock()
	default:
		s.mu.Lock()
		s.mu.Unlock()
	}
}

// sleepAfterUnlock blocks only once the lock is released.
func sleepAfterUnlock(s *session) {
	s.mu.Lock()
	s.seen++
	s.mu.Unlock()
	time.Sleep(time.Millisecond)
}

// goStmtNotInherited: the spawned goroutine blocks on its own stack, not
// under the caller's lock.
func goStmtNotInherited(s *session, ch chan int) {
	s.mu.Lock()
	go func() { ch <- s.seen }()
	s.mu.Unlock()
}

// allowedSleep waives a deliberate bounded stall with a reasoned directive.
func allowedSleep(s *session) {
	s.mu.Lock()
	//parcelvet:allow lockorder(fixture: bounded microsecond backoff by design)
	time.Sleep(time.Microsecond)
	s.mu.Unlock()
}
