// Package framestate_bad exercises the framestate analyzer: unregistered
// emitters, phase-order regressions, emission past the TComplete barrier, and
// a frame type the declared state machine does not know.
package framestate_bad

const (
	TPageRequest byte = iota + 1
	TBundle
	TComplete
	TObjectRequest
	TObjectResponse
	TShed
	TMuxSettings
	TStreamOpen
	TStreamData
	TWindowUpdate
	TDrain
	TBogus // not declared in the protocol state machine
)

func write(typ byte, payload []byte) error {
	_ = typ
	_ = payload
	return nil
}

type outFrame struct {
	typ     byte
	payload []byte
}

// rogue is not registered for stream data: a new emitter is a protocol
// change and must be declared in frameEmitters.
func rogue() {
	write(TStreamData, nil) // want "rogue emits TStreamData but is not a registered emitter for it: the protocol state machine allows only nextFrame"
}

// nextFrame owns both stream frames but emits them out of phase: data cannot
// precede the open that names the stream.
func nextFrame() {
	write(TStreamData, nil)
	write(TStreamOpen, nil) // want "nextFrame emits TStreamOpen after TStreamData: protocol phase order violated"
}

// writeLoop crosses the TComplete barrier backwards: a bundle after the
// completion note is both a phase regression and an undeclared emitter.
func writeLoop() {
	write(TComplete, nil)
	write(TBundle, nil) // want "writeLoop emits TBundle but is not a registered emitter" "writeLoop emits TBundle after TComplete: protocol phase order violated"
}

// sneaky stages the frame through a composite literal instead of a write
// call; still an emission.
func sneaky() {
	f := outFrame{typ: TComplete} // want "sneaky emits TComplete but is not a registered emitter for it: the protocol state machine allows only declareComplete/writeLoop"
	_ = f
}

// bogus emits a frame type the state machine has never heard of.
func bogus() {
	write(TBogus, nil) // want "frame type TBogus is not in the declared protocol state machine"
}
