// Package determ_resil_clean is the negative determinism fixture for the
// resilience package class: the caller owns the clock and the RNG — every
// method takes "now" as an argument and every jitter draw comes from a
// threaded *rand.Rand — and map walks either sort their keys or fold into
// order-insensitive sums. Nothing here may be flagged.
package determ_resil_clean

import (
	"math/rand"
	"sort"
	"time"
)

type breaker struct {
	openedAt time.Duration
	openFor  time.Duration
	opens    int64
}

func (b *breaker) open(now time.Duration) {
	b.openedAt = now
	b.opens++
}

func (b *breaker) allow(now time.Duration) bool {
	return now-b.openedAt >= b.openFor
}

func backoff(base time.Duration, rng *rand.Rand) time.Duration {
	half := int64(base / 2)
	return base/2 + time.Duration(rng.Int63n(half+1))
}

type group struct {
	breakers map[string]*breaker
}

func (g *group) openOrigins(now time.Duration) []string {
	var out []string
	for origin, b := range g.breakers {
		if b.allow(now) {
			continue
		}
		out = append(out, origin)
	}
	sort.Strings(out)
	return out
}

func (g *group) opens() int64 {
	var n int64
	for _, b := range g.breakers { // commutative fold: order cannot escape
		n += b.opens
	}
	return n
}
