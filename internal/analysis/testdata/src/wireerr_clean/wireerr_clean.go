// Package wireerr_clean is the negative wireerr fixture: every wire and
// deadline error is handled, and Write on a non-FrameWriter type stays
// outside the rule.
package wireerr_clean

import "time"

type conn struct{}

func (c *conn) SetReadDeadline(t time.Time) error { return nil }

type FrameWriter struct{}

func (w *FrameWriter) WriteFrame(typ byte, payload []byte) error    { return nil }
func (w *FrameWriter) WriteRaw(frame []byte) error                  { return nil }
func (w *FrameWriter) WriteWindowUpdate(id, increment uint32) error { return nil }

type metrics struct{}

// Write here is not the framed-wire writer; its result may be discarded.
func (m *metrics) Write(p []byte) (int, error) { return len(p), nil }

type session struct{}

func (s *session) enqueueJSONLocked(typ byte, v any) error { return nil }

// goodControlNotes handles the staging error by tearing the session down.
func goodControlNotes(s *session, logf func(string, ...any)) error {
	if err := s.enqueueJSONLocked(9, nil); err != nil {
		logf("control note: %v", err)
		return err
	}
	return nil
}

func good(c *conn, w *FrameWriter, m *metrics, logf func(string, ...any)) error {
	if err := c.SetReadDeadline(time.Time{}); err != nil {
		logf("deadline: %v", err)
		return err
	}
	if err := w.WriteFrame(1, nil); err != nil {
		logf("frame: %v", err)
		return err
	}
	if err := w.WriteRaw(nil); err != nil {
		logf("raw: %v", err)
		return err
	}
	if err := w.WriteWindowUpdate(1, 64); err != nil {
		logf("window update: %v", err)
		return err
	}
	m.Write(nil)
	return nil
}
