// Package framestate_clean is the negative space of framestate_bad: every
// emission comes from its registered emitter in non-decreasing phase order,
// frame-type reads are free, and one rogue emission is allow-waived.
package framestate_clean

const (
	TPageRequest byte = iota + 1
	TBundle
	TComplete
	TObjectRequest
	TObjectResponse
	TShed
	TMuxSettings
	TStreamOpen
	TStreamData
	TWindowUpdate
	TDrain
)

func write(typ byte, payload []byte) error {
	_ = typ
	_ = payload
	return nil
}

type outFrame struct {
	typ     byte
	payload []byte
}

// The registered handshake, stream, note, and barrier emitters, each in
// legal phase order.
func RequestPage() {
	write(TPageRequest, nil)
}

func startPage() {
	write(TMuxSettings, nil)
}

func nextFrame() {
	write(TStreamOpen, nil)
	write(TStreamData, nil)
}

func shedLocked() {
	write(TShed, nil)
}

func declareComplete() {
	f := outFrame{typ: TComplete}
	_ = f
}

func drainNotice() {
	write(TDrain, nil)
}

// writeLoop owns the completion barrier.
func writeLoop() {
	write(TComplete, nil)
}

// dispatch only reads frame types — switch cases and comparisons are never
// emissions.
func dispatch(typ byte) int {
	switch typ {
	case TBundle:
		return 1
	case TComplete:
		return 2
	}
	if typ == TDrain {
		return 3
	}
	return 0
}

// repair is a deliberate out-of-table emitter, waived with a reasoned
// directive.
func repair() {
	//parcelvet:allow framestate(fixture: manual stream resync during recovery)
	write(TStreamOpen, nil)
}
