// Package determ_cache_clean is the negative determinism fixture for the
// shared object-cache class: the sanctioned idioms — recency as an intrusive
// access-ordered list, eviction from the list tail, seeded RNG threaded by
// the caller, sorted key listings — produce no findings.
package determ_cache_clean

import (
	"math/rand"
	"sort"
)

type entry struct {
	key        string
	body       []byte
	prev, next *entry
}

type cache struct {
	entries    map[string]*entry
	head, tail *entry
	bytes, cap int64
}

// touch moves the entry to the front of the recency list: access order, not
// wall-clock timestamps, is what orders eviction.
func (c *cache) touch(e *entry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

func (c *cache) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	}
	if c.head == e {
		c.head = e.next
	}
	if c.tail == e {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// evict removes least-recently-used entries until the budget holds.
func (c *cache) evict() {
	for c.bytes > c.cap && c.tail != nil {
		victim := c.tail
		c.unlink(victim)
		delete(c.entries, victim.key)
		c.bytes -= int64(len(victim.body))
	}
}

// sampleVictim draws from a seeded source the caller threads through —
// reproducible given the seed.
func (c *cache) sampleVictim(r *rand.Rand, keys []string) string {
	return keys[r.Intn(len(keys))]
}

// keys returns the resident keys in sorted order: map iteration feeds output
// only after an explicit sort.
func (c *cache) keys() []string {
	out := make([]string, 0, len(c.entries))
	for k := range c.entries {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
