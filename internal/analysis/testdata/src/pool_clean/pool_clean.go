// Package pool_clean is the negative pooldiscipline fixture: the idiomatic
// pool shapes the analyzer must accept — a typed-chain free list inside the
// pool implementation, free-then-return paths, sibling branches, and
// reassignment re-arming a variable.
package pool_clean

//parcelvet:pooled
type buf struct {
	next *buf
	n    int
}

type pool struct{ free *buf }

// The pool implementation (new*/put*) may move pooled pointers through its
// own free-list fields and hand objects out.
func (p *pool) newBuf() *buf {
	if b := p.free; b != nil {
		p.free = b.next
		b.next = nil
		return b
	}
	return &buf{}
}

func (p *pool) putBuf(b *buf) {
	b.n = 0
	b.next = p.free
	p.free = b
}

// Free as the final act of each iteration: nothing after it uses b.
func sum(p *pool, xs []int) int {
	total := 0
	for _, x := range xs {
		b := p.newBuf()
		b.n = x
		total += b.n
		p.putBuf(b)
	}
	return total
}

// Free on an early-return path: the later use is unreachable from the free.
func freeOnReturnPath(p *pool, b *buf, done bool) int {
	if done {
		p.putBuf(b)
		return 0
	}
	return b.n
}

// Free in one branch, use in the sibling branch: never both on one path.
func siblingBranches(p *pool, b *buf, keep bool) int {
	if keep {
		return b.n
	} else {
		p.putBuf(b)
	}
	return 0
}

// A reassignment re-arms the variable with a fresh object.
func rearm(p *pool) int {
	b := p.newBuf()
	p.putBuf(b)
	b = p.newBuf()
	n := b.n
	p.putBuf(b)
	return n
}

// Pooled-to-pooled field stores are the sanctioned continuation encoding.
func chain(a, b *buf) {
	a.next = b
}
