// Package determ_cache is the positive determinism fixture for the shared
// object-cache package class: every nondeterminism shortcut a cache
// implementation might reach for — wall-clock recency stamps, global-RNG
// eviction sampling, map-order victim scans — must be flagged, because the
// cache is shared by virtual-clock sessions and any real-time read there
// leaks into golden figures.
package determ_cache

import (
	"fmt"
	"math/rand"
	"time"
)

type entry struct {
	body     []byte
	lastUsed time.Time
}

type cache struct {
	entries map[string]*entry
}

func (c *cache) touch(key string) {
	if e, ok := c.entries[key]; ok {
		e.lastUsed = time.Now() // want "call to time.Now in sim-deterministic package"
	}
}

func (c *cache) sampleVictim(keys []string) string {
	return keys[rand.Intn(len(keys))] // want "top-level rand.Intn draws from the global RNG"
}

func (c *cache) victims(n int) []string {
	out := make([]string, 0, n)
	for k := range c.entries { // want "map iteration order flows into returned slice \"out\""
		if len(out) == n {
			break
		}
		out = append(out, k)
	}
	return out
}

func (c *cache) dump() {
	for k, e := range c.entries { // want "map-range loop feeds fmt output"
		fmt.Println(k, len(e.body))
	}
}

func (c *cache) expire(ttl time.Duration, key string) bool {
	e, ok := c.entries[key]
	if !ok {
		return false
	}
	return time.Since(e.lastUsed) > ttl // want "call to time.Since in sim-deterministic package"
}
