// Package noclosure_hot is the positive noclosure fixture: capturing
// closures handed to the Schedule family in a hot package.
package noclosure_hot

type sim struct{}

func (s *sim) Schedule(delay int64, fn func())               {}
func (s *sim) ScheduleAt(at int64, fn func())                {}
func (s *sim) ScheduleArgAt(at int64, fn func(any), arg any) {}

func badCapture(s *sim, x int) {
	s.ScheduleAt(0, func() { _ = x }) // want "closure passed to ScheduleAt captures \\[x\\]"
}

func badMultiCapture(s *sim, x, y int) {
	s.Schedule(0, func() { _ = x + y }) // want "closure passed to Schedule captures \\[x, y\\]"
}

func okNoCapture(s *sim) {
	s.ScheduleAt(0, func() {}) // captures nothing: allocation-free
}

func allowedCapture(s *sim, x int) {
	//parcelvet:allow noclosure(fixture: fires once per session, off the per-packet path)
	s.ScheduleAt(0, func() { _ = x })
}
