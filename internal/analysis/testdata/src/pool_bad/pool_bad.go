// Package pool_bad is the positive pooldiscipline fixture: every ownership
// violation the analyzer must flag, against a marker-declared pooled type.
package pool_bad

//parcelvet:pooled
type buf struct {
	next *buf
	n    int
}

type pool struct{ free *buf }

func (p *pool) newBuf() *buf {
	if b := p.free; b != nil {
		p.free = b.next
		b.next = nil
		return b
	}
	return &buf{}
}

func (p *pool) putBuf(b *buf) {
	b.next = p.free
	p.free = b
}

func useAfterFree(p *pool) int {
	b := p.newBuf()
	p.putBuf(b)
	return b.n // want "use of \"b\" after putBuf released it to the pool"
}

func useAfterFreeInLoop(p *pool, xs []int) int {
	total := 0
	for _, x := range xs {
		b := p.newBuf()
		b.n = x
		p.putBuf(b)
		total += b.n // want "use of \"b\" after putBuf released it to the pool"
	}
	return total
}

func capture(p *pool) func() int {
	b := p.newBuf()
	return func() int { return b.n } // want "closure captures pooled \"b\""
}

type holder struct{ b *buf }

func stashField(h *holder, p *pool) {
	h.b = p.newBuf() // want "pooled pointer stored into field b of non-pooled"
}

func stashMap(m map[int]*buf, p *pool) {
	m[0] = p.newBuf() // want "pooled pointer stored into map"
}

var leaked *buf

func stashGlobal(p *pool) {
	leaked = p.newBuf() // want "pooled pointer stored into package-level variable \"leaked\""
}

func handOut(p *pool) *buf {
	return p.newBuf() // want "pooled pointer returned from handOut"
}

func allowedHandOut(p *pool) *buf {
	//parcelvet:allow pooldiscipline(fixture: documented ownership transfer to the caller)
	return p.newBuf()
}
