// Package staleallow_clean is the negative space of staleallow_bad: a
// directive that still earns its keep, and a stale directive explicitly
// retained through the staleallow layer's own escape hatch.
package staleallow_clean

//parcelvet:acquire buf
func grab(n int) []byte { return make([]byte, n) }

//parcelvet:release buf
func release(b []byte) { _ = b }

// waivedLeak really leaks: the directive suppresses a live pairing finding.
func waivedLeak(n int) []byte {
	b := grab(n)
	//parcelvet:allow pairing(fixture: ownership handed to the caller out of band)
	return b
}

// keptStale is stale but waived at the staleallow layer while the fix bakes.
func keptStale(n int) {
	b := grab(n)
	//parcelvet:allow staleallow(fixture: directive retained while the fix soaks in CI)
	//parcelvet:allow pairing(fixture: historical leak, fixed recently)
	release(b)
}
