package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// LockOrder builds a static lock graph over the concurrency-bearing packages
// (the proxy's shard/session mutexes, objcache's segment locks, the client
// and crawler locks that guard the hpack tables and JS engine) and reports
// three hazard classes:
//
//   - ordering cycles: lock A is acquired while holding B in one function
//     and B while holding A in another — the classic ABBA deadlock;
//   - self-deadlock: a mutex acquired while an acquisition of the same lock
//     identity is still pending in the same function, directly or through a
//     one-level call to an in-package function that re-acquires it;
//   - blocking-under-lock: time.Sleep, framed-wire writes, raw connection
//     I/O, channel operations, or origin-fetch callbacks made while a mutex
//     is held, which turns a fast critical section into one that stalls
//     every peer contending for the lock.
//
// Lock identity is (receiver type, field) — "session.mu", "segment.mu" —
// so the graph is over lock roles, not instances. FrameWriter.mu is the
// designed exception: it exists to serialize writes, so holding it across
// the write is the point, and it is allowlisted for the blocking check.
var LockOrder = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "report lock-ordering cycles, self-deadlocks, and blocking calls " +
		"made under proxy/objcache mutexes",
	Run: runLockOrder,
}

// lockPackages are the real-concurrency packages whose mutexes form the
// graph. The simulation arm is single-goroutine-per-virtual-clock and has
// nothing to order.
var lockPackages = map[string]bool{
	"internal/parcelnet": true,
	"internal/objcache":  true,

	// analysistest fixtures
	"lockorder_bad":   true,
	"lockorder_clean": true,
}

// serializationLocks are locks whose whole purpose is to be held across the
// blocking operation they serialize; the blocking-under-lock check skips
// them.
var serializationLocks = map[string]bool{
	"FrameWriter.mu": true,
}

// lockOp is one mutex acquisition or release site.
type lockOp struct {
	id    string // lock identity: "type.field" or a bare var name
	read  bool   // RLock/RUnlock
	write bool   // Lock/Unlock (write side)
	pos   token.Pos
}

// lockEdge records "from held while acquiring to" with the site it was
// observed at.
type lockEdge struct {
	pos token.Pos
	fn  string
}

func runLockOrder(pass *analysis.Pass) (any, error) {
	return runLockOrderImpl(pass, collectAllows(pass, "lockorder"))
}

// runLockOrderImpl is the directive-injectable body: staleallow shadow-runs
// it with a shared, usage-tracked allow set.
func runLockOrderImpl(pass *analysis.Pass, al *allows) (any, error) {
	if !pkgMatch(lockPackages, pass.Pkg.Path()) {
		return nil, nil
	}

	// Pass 1: per-function summaries — every lock identity the function
	// acquires anywhere in its body — for the one-level call propagation.
	fns := map[*types.Func]*lockFnInfo{}
	var order []*types.Func
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			info := &lockFnInfo{decl: fd, acquires: map[string]bool{}}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if op, ok := mutexOp(pass, call); ok && (op == "Lock" || op == "RLock") {
					if id := lockIdentity(pass, call); id != "" {
						info.acquires[id] = true
					}
				}
				return true
			})
			fns[fn] = info
			order = append(order, fn)
		}
	}

	// Pass 2: walk each function in source order tracking the held stack,
	// collecting ordering edges and reporting self-deadlocks and
	// blocking-under-lock on the way.
	edges := map[string]map[string]lockEdge{}
	addEdge := func(from, to string, pos token.Pos, fn string) {
		if edges[from] == nil {
			edges[from] = map[string]lockEdge{}
		}
		if _, ok := edges[from][to]; !ok {
			edges[from][to] = lockEdge{pos: pos, fn: fn}
		}
	}

	for _, fn := range order {
		info := fns[fn]
		w := &lockWalker{pass: pass, al: al, fns: fns, addEdge: addEdge, fnName: info.decl.Name.Name}
		w.stmts(info.decl.Body.List, nil)
	}

	reportLockCycles(pass, al, edges)
	return nil, nil
}

// lockWalker tracks the held-lock stack through a function body with real
// branch structure: exclusive if/else and switch arms are walked with their
// own copies of the stack and merged by intersection, so a lock taken in
// both arms of an if/else is one acquisition, not a self-deadlock.
type lockWalker struct {
	pass    *analysis.Pass
	al      *allows
	fns     map[*types.Func]*lockFnInfo
	addEdge func(from, to string, pos token.Pos, fn string)
	fnName  string
}

func cloneHeld(held []lockOp) []lockOp {
	return append([]lockOp(nil), held...)
}

// intersectHeld keeps the locks held on both merged paths, in a's order.
func intersectHeld(a, b []lockOp) []lockOp {
	var out []lockOp
	for _, h := range a {
		for _, h2 := range b {
			if h2.id == h.id {
				out = append(out, h)
				break
			}
		}
	}
	return out
}

// terminated reports whether the statement list ends by leaving the
// function or loop, so its held stack must not flow into the merge.
func terminated(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch s := list[len(list)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func (w *lockWalker) stmts(list []ast.Stmt, held []lockOp) []lockOp {
	for _, s := range list {
		held = w.stmt(s, held)
	}
	return held
}

func (w *lockWalker) stmt(s ast.Stmt, held []lockOp) []lockOp {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return w.stmts(s.List, held)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, held)
	case *ast.IfStmt:
		if s.Init != nil {
			held = w.stmt(s.Init, held)
		}
		held = w.expr(s.Cond, held)
		thenHeld := w.stmts(s.Body.List, cloneHeld(held))
		elseHeld := held
		if s.Else != nil {
			elseHeld = w.stmt(s.Else, cloneHeld(held))
		}
		switch {
		case terminated(s.Body.List) && s.Else == nil:
			return elseHeld
		case terminated(s.Body.List):
			return elseHeld
		case s.Else != nil && elseTerminated(s.Else):
			return thenHeld
		default:
			return intersectHeld(thenHeld, elseHeld)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			held = w.stmt(s.Init, held)
		}
		if s.Cond != nil {
			held = w.expr(s.Cond, held)
		}
		// The body is assumed lock-balanced (an unbalanced body is still
		// checked internally); the post-loop stack is the entry stack.
		w.stmts(s.Body.List, cloneHeld(held))
		return held
	case *ast.RangeStmt:
		held = w.expr(s.X, held)
		w.stmts(s.Body.List, cloneHeld(held))
		return held
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return w.branchArms(s, held)
	case *ast.DeferStmt:
		// A deferred unlock keeps the lock held to the end of the function,
		// which is exactly how an unmatched acquisition already reads — so
		// skip the call, and don't let a deferred re-lock or blocking call
		// poison the stack either.
		return held
	case *ast.GoStmt:
		// The spawned call runs on its own goroutine with no inherited
		// stack.
		return held
	default:
		return w.expr(s, held)
	}
}

// elseTerminated reports whether an else arm (block or chained if) ends by
// leaving the function.
func elseTerminated(s ast.Stmt) bool {
	if b, ok := s.(*ast.BlockStmt); ok {
		return terminated(b.List)
	}
	return false
}

// branchArms walks switch/type-switch/select arms with independent stacks;
// the post-statement stack is the entry stack (arms are assumed balanced,
// and are still checked internally).
func (w *lockWalker) branchArms(s ast.Stmt, held []lockOp) []lockOp {
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			held = w.stmt(s.Init, held)
		}
		if s.Tag != nil {
			held = w.expr(s.Tag, held)
		}
		for _, c := range s.Body.List {
			w.stmts(c.(*ast.CaseClause).Body, cloneHeld(held))
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			held = w.stmt(s.Init, held)
		}
		held = w.expr(s.Assign, held)
		for _, c := range s.Body.List {
			w.stmts(c.(*ast.CaseClause).Body, cloneHeld(held))
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			armHeld := cloneHeld(held)
			if cc.Comm != nil {
				armHeld = w.stmt(cc.Comm, armHeld)
			}
			w.stmts(cc.Body, armHeld)
		}
	}
	return held
}

// expr scans one non-branching statement or expression in evaluation order
// for mutex operations, blocking channel operations, and calls.
func (w *lockWalker) expr(n ast.Node, held []lockOp) []lockOp {
	if n == nil {
		return held
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			// Closures run later on their own goroutine or schedule; their
			// bodies get no inherited held stack, and scanning them with the
			// outer stack would fabricate edges.
			return false
		case *ast.SendStmt:
			reportBlocking(w.pass, w.al, held, m.Pos(), "channel send")
		case *ast.UnaryExpr:
			if m.Op == token.ARROW {
				reportBlocking(w.pass, w.al, held, m.Pos(), "channel receive")
			}
		case *ast.CallExpr:
			op, ok := mutexOp(w.pass, m)
			if !ok {
				lockCheckCall(w.pass, w.al, w.fns, held, m, w.addEdge, w.fnName)
				return true
			}
			id := lockIdentity(w.pass, m)
			if id == "" {
				return true
			}
			switch op {
			case "Lock", "RLock":
				for _, h := range held {
					if h.id == id && (h.write || op == "Lock") {
						w.al.report(w.pass, m.Pos(),
							"lock %s acquired while already held (self-deadlock; prior acquisition at %s)",
							id, w.pass.Fset.Position(h.pos))
					} else if h.id != id {
						w.addEdge(h.id, id, m.Pos(), w.fnName)
					}
				}
				held = append(held, lockOp{id: id, read: op == "RLock", write: op == "Lock", pos: m.Pos()})
			case "Unlock", "RUnlock":
				for i := len(held) - 1; i >= 0; i-- {
					if held[i].id == id {
						held = append(held[:i], held[i+1:]...)
						break
					}
				}
			}
		}
		return true
	})
	return held
}

// lockFnInfo is one declared function's lock summary: every identity it
// acquires anywhere in its body.
type lockFnInfo struct {
	decl     *ast.FuncDecl
	acquires map[string]bool
}

// lockCheckCall handles a non-mutex call made with locks held: blocking-call
// hazards, and one-level propagation of in-package callees' lock summaries
// (self-deadlock if the callee re-acquires a held identity, ordering edges
// otherwise).
func lockCheckCall(pass *analysis.Pass, al *allows, fns map[*types.Func]*lockFnInfo, held []lockOp, call *ast.CallExpr, addEdge func(string, string, token.Pos, string), fnName string) {
	if len(held) == 0 {
		return
	}
	if what, ok := blockingCall(pass, call); ok {
		reportBlocking(pass, al, held, call.Pos(), what)
		return
	}
	callee := calleeFunc(pass.TypesInfo, call)
	if callee == nil {
		return
	}
	info, ok := fns[callee]
	if !ok {
		return
	}
	var acquired []string
	for id := range info.acquires {
		acquired = append(acquired, id)
	}
	sort.Strings(acquired)
	for _, h := range held {
		for _, id := range acquired {
			if id == h.id {
				al.report(pass, call.Pos(),
					"call to %s while holding lock %s, which %s re-acquires (self-deadlock)",
					callee.Name(), h.id, callee.Name())
			} else {
				addEdge(h.id, id, call.Pos(), fnName)
			}
		}
	}
}

// blockingCall classifies calls that stall the calling goroutine for an
// unbounded or network-scale time: sleeps, framed-wire writes, raw
// connection I/O, and origin-fetch callbacks (func-typed values named
// fetch*, the injected-dependency convention throughout the proxy).
func blockingCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	// Dynamic calls through fetch-named func values.
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if isFetchName(fun.Name) && dynamicFuncValue(pass, fun) {
			return "origin fetch " + fun.Name, true
		}
	case *ast.SelectorExpr:
		if isFetchName(fun.Sel.Name) && dynamicFuncValue(pass, fun.Sel) {
			return "origin fetch " + fun.Sel.Name, true
		}
	}
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return "", false
	}
	name := fn.Name()
	if fn.Pkg() != nil && fn.Pkg().Path() == "time" && name == "Sleep" {
		return "time.Sleep", true
	}
	recv := recvTypeName(fn)
	switch {
	case recv == "FrameWriter" && (name == "Write" || name == "WriteJSON" || name == "WriteRaw" || name == "WriteWindowUpdate"):
		return "FrameWriter." + name, true
	case recv == "" && name == "WriteFrame" && fn.Pkg() != nil && fn.Pkg() == pass.Pkg:
		return "WriteFrame", true
	case recv == "Conn" && fn.Pkg() != nil && fn.Pkg().Path() == "net" && (name == "Read" || name == "Write"):
		return "net.Conn." + name, true
	}
	return "", false
}

// isFetchName matches the injected origin-fetch convention: fetch, Fetch,
// fetchDirect, FetchValidatedCtx, ...
func isFetchName(name string) bool {
	return strings.HasPrefix(name, "fetch") || strings.HasPrefix(name, "Fetch")
}

// dynamicFuncValue reports whether id resolves to a func-typed variable or
// field (not a declared function) — the injected-callback shape.
func dynamicFuncValue(pass *analysis.Pass, id *ast.Ident) bool {
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return false
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	_, isSig := v.Type().Underlying().(*types.Signature)
	return isSig
}

func reportBlocking(pass *analysis.Pass, al *allows, held []lockOp, pos token.Pos, what string) {
	for _, h := range held {
		if serializationLocks[h.id] {
			continue
		}
		al.report(pass, pos,
			"blocking %s while holding lock %s (acquired at %s): release the lock before stalling",
			what, h.id, pass.Fset.Position(h.pos))
	}
}

// mutexOp recognizes sync.Mutex / sync.RWMutex method calls.
func mutexOp(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false
	}
	switch recvTypeName(fn) {
	case "Mutex", "RWMutex":
	default:
		return "", false
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock":
		return fn.Name(), true
	}
	return "", false
}

// recvTypeName returns the callee's receiver type name, "" for plain
// functions.
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// lockIdentity names the lock role a mutex call operates on: "type.field"
// for a struct-owned mutex (whatever the instance), the bare variable name
// for package-level or local mutexes.
func lockIdentity(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	switch base := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		// x.mu.Lock(): identity is (type of x).mu.
		if tn := exprTypeName(pass, base.X); tn != "" {
			return tn + "." + base.Sel.Name
		}
		return base.Sel.Name
	case *ast.Ident:
		// mu.Lock() on a bare variable, or t.Lock() on an embedded mutex.
		if tn := exprTypeName(pass, base); tn != "" {
			return tn + ".Mutex"
		}
		return base.Name
	case *ast.IndexExpr:
		// shards[i].mu.Lock() has a *shard base; unreachable here because
		// the SelectorExpr case above already consumed x.mu, but keep the
		// bare-index shape resolvable.
		if tn := exprTypeName(pass, base); tn != "" {
			return tn + ".Mutex"
		}
	}
	return ""
}

// exprTypeName resolves e's type to a named struct's name (behind
// pointers), or "" when e is not struct-typed — which makes bare mutex
// variables fall back to their variable name.
func exprTypeName(pass *analysis.Pass, e ast.Expr) string {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return ""
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	if _, isStruct := named.Underlying().(*types.Struct); !isStruct {
		return ""
	}
	return named.Obj().Name()
}

// reportLockCycles reports every edge that participates in an ordering
// cycle: A-before-B here while B-before-A holds elsewhere.
func reportLockCycles(pass *analysis.Pass, al *allows, edges map[string]map[string]lockEdge) {
	reach := func(from, to string) bool {
		seen := map[string]bool{from: true}
		stack := []string{from}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for next := range edges[n] {
				if next == to {
					return true
				}
				if !seen[next] {
					seen[next] = true
					stack = append(stack, next)
				}
			}
		}
		return false
	}
	var froms []string
	for from := range edges {
		froms = append(froms, from)
	}
	sort.Strings(froms)
	for _, from := range froms {
		var tos []string
		for to := range edges[from] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, to := range tos {
			e := edges[from][to]
			if reach(to, from) {
				back := describeBackPath(edges, to, from)
				al.report(pass, e.pos,
					"lock ordering cycle: %s acquired before %s in %s, but %s is acquired before %s elsewhere%s",
					from, to, e.fn, to, from, back)
			}
		}
	}
}

// describeBackPath names one witness site of the reverse ordering for the
// cycle report.
func describeBackPath(edges map[string]map[string]lockEdge, from, to string) string {
	if e, ok := edges[from][to]; ok {
		return fmt.Sprintf(" (in %s)", e.fn)
	}
	return ""
}
