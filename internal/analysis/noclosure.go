package analysis

import (
	"go/ast"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// NoClosure enforces the PR 2 closure-free-continuation rule statically: in
// hot packages, a capturing closure handed to Schedule/ScheduleAt allocates
// once per event — on the simnet data path that is once per packet, which is
// exactly the allocation class the benchhotpath budget exists to forbid.
// Continuations there must use ScheduleArgAt with a package-level func and a
// typed argument (usually a pooled object's fields).
var NoClosure = &analysis.Analyzer{
	Name: "noclosure",
	Doc: "flag capturing closures passed to Schedule/ScheduleAt/ScheduleArgAt in hot " +
		"packages; hot-path continuations must use ScheduleArgAt with typed fields",
	Run: runNoClosure,
}

// scheduleFuncs are the event-scheduling entry points (matched by method
// name so fixture simulators work the same as eventsim.Simulator).
var scheduleFuncs = map[string]bool{
	"Schedule":      true,
	"ScheduleAt":    true,
	"ScheduleArgAt": true,
}

func runNoClosure(pass *analysis.Pass) (any, error) {
	return runNoClosureImpl(pass, collectAllows(pass, "noclosure"))
}

// runNoClosureImpl is the directive-injectable body: staleallow shadow-runs
// it with a shared, usage-tracked allow set.
func runNoClosureImpl(pass *analysis.Pass, al *allows) (any, error) {
	if !pkgMatch(hotPackages, pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || !scheduleFuncs[sel.Sel.Name] {
				return true
			}
			for _, arg := range call.Args {
				lit, ok := ast.Unparen(arg).(*ast.FuncLit)
				if !ok {
					continue
				}
				captured := capturedVars(pass, lit)
				if len(captured) == 0 {
					continue
				}
				names := make([]string, len(captured))
				for i, v := range captured {
					names[i] = v.Name()
				}
				al.report(pass, lit.Pos(),
					"closure passed to %s captures [%s]: hot-path continuations allocate per event; use ScheduleArgAt with a package-level func and typed argument fields",
					sel.Sel.Name, strings.Join(names, ", "))
			}
			return true
		})
	}
	return nil, nil
}
