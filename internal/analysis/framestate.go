package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// FrameState checks every wire-frame emission against the declared protocol
// state machine. The PARCEL wire protocol has a strict shape — a session
// handshakes (TPageRequest → TMuxSettings), streams open before they carry
// data (TStreamOpen → TStreamData), the TComplete barrier ends the push
// phase, and TDrain is the terminal retire notice — and PR 8/9 enforce it
// dynamically with the writer-goroutine discipline and the complete barrier.
// This analyzer makes the discipline static:
//
//   - every site that emits a frame-type constant (as a write/enqueue call
//     argument, an outFrame composite literal, or the leading byte of an
//     append-assembled frame) must be a function registered for that frame
//     type in the emission table below — a new emitter is a protocol change
//     and must be declared here;
//   - within one function, emissions must respect the phase ranking
//     (handshake < stream-open < data < complete < drain): emitting
//     TStreamData before TStreamOpen, or anything after the TComplete
//     barrier, is reported.
//
// Frame-type *reads* (switch dispatch, comparisons) are not emissions and
// are never flagged.
var FrameState = &analysis.Analyzer{
	Name: "framestate",
	Doc: "check wire-frame emission sites against the declared protocol " +
		"state machine (registered emitters, legal phase order)",
	Run: runFrameState,
}

// framePackages are the packages whose frame-constant writes are checked.
var framePackages = map[string]bool{
	"internal/parcelnet": true,

	// analysistest fixtures
	"framestate_bad":   true,
	"framestate_clean": true,
}

// frameConstRe matches the wire frame-type constants by name.
var frameConstRe = regexp.MustCompile(`^T[A-Z][A-Za-z]*$`)

// framePhase ranks the protocol phases: emissions within a function must be
// non-decreasing. TComplete is the barrier — rank above all data — and
// TDrain is terminal.
var framePhase = map[string]int{
	"TPageRequest": 0, "TMuxSettings": 0,
	"TStreamOpen": 1,
	"TBundle":     2, "TObjectRequest": 2, "TObjectResponse": 2,
	"TStreamData": 2, "TWindowUpdate": 2, "TShed": 2,
	"TComplete": 3,
	"TDrain":    4,
}

// frameEmitters is the declared protocol state machine's emission table:
// the only functions allowed to put each frame type on the wire. The proxy
// side: startPage answers the handshake, the admit path stages bundles,
// shedLocked/drainNotice emit the two PR 9 notes from their legal states
// (admission overflow, proxy drain), writeLoop/declareComplete own the
// TComplete barrier, and the mux writer goroutine (nextFrame) is the sole
// source of stream frames. The client side: RequestPage/reconnect handshake,
// Object issues fallback requests, WriteWindowUpdate is the only
// flow-control credit writer (the client acks only streams it has seen
// open, so TWindowUpdate stays on live streams by construction).
var frameEmitters = map[string]map[string]bool{
	"TPageRequest":    {"RequestPage": true, "reconnect": true},
	"TMuxSettings":    {"startPage": true},
	"TStreamOpen":     {"nextFrame": true},
	"TStreamData":     {"nextFrame": true},
	"TBundle":         {"admitLocked": true, "admitOneLocked": true},
	"TObjectRequest":  {"Object": true},
	"TObjectResponse": {"serveFallback": true},
	"TWindowUpdate":   {"WriteWindowUpdate": true},
	"TComplete":       {"writeLoop": true, "declareComplete": true},
	"TShed":           {"shedLocked": true},
	"TDrain":          {"drainNotice": true},
}

func runFrameState(pass *analysis.Pass) (any, error) {
	return runFrameStateImpl(pass, collectAllows(pass, "framestate"))
}

// runFrameStateImpl is the directive-injectable body: staleallow shadow-runs
// it with a shared, usage-tracked allow set.
func runFrameStateImpl(pass *analysis.Pass, al *allows) (any, error) {
	if !pkgMatch(framePackages, pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFrameEmissions(pass, al, fd)
		}
	}
	return nil, nil
}

// frameEmission is one frame-type constant reaching the wire.
type frameEmission struct {
	frame string
	pos   token.Pos
}

// checkFrameEmissions collects fd's emissions in source order and applies
// the two rules: registered emitter, non-decreasing phase.
func checkFrameEmissions(pass *analysis.Pass, al *allows, fd *ast.FuncDecl) {
	var emits []frameEmission
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			for _, arg := range n.Args {
				if name, ok := frameConstUse(pass, arg); ok {
					emits = append(emits, frameEmission{frame: name, pos: arg.Pos()})
				}
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				v := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if name, ok := frameConstUse(pass, v); ok {
					emits = append(emits, frameEmission{frame: name, pos: v.Pos()})
				}
			}
		}
		return true
	})
	if len(emits) == 0 {
		return
	}

	fname := fd.Name.Name
	maxPhase, maxFrame := -1, ""
	for _, e := range emits {
		allowed, known := frameEmitters[e.frame]
		if !known {
			al.report(pass, e.pos,
				"frame type %s is not in the declared protocol state machine: add it to frameEmitters with its phase and legal emitters",
				e.frame)
			continue
		}
		if !allowed[fname] {
			al.report(pass, e.pos,
				"%s emits %s but is not a registered emitter for it: the protocol state machine allows only %s",
				fname, e.frame, emitterList(allowed))
		}
		phase := framePhase[e.frame]
		if phase < maxPhase {
			al.report(pass, e.pos,
				"%s emits %s after %s: protocol phase order violated (%s is phase %d, already past phase %d)",
				fname, e.frame, maxFrame, e.frame, phase, maxPhase)
		}
		if phase > maxPhase {
			maxPhase, maxFrame = phase, e.frame
		}
	}
}

// emitterList renders the allowed-emitter set for a diagnostic.
func emitterList(allowed map[string]bool) string {
	var names []string
	for n := range allowed {
		names = append(names, n)
	}
	if len(names) == 0 {
		return "nothing"
	}
	// Stable output for the fixtures.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return strings.Join(names, "/")
}

// frameConstUse reports whether e is a direct use of a wire frame-type
// constant (T-prefixed, declared in a frame package).
func frameConstUse(pass *analysis.Pass, e ast.Expr) (string, bool) {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return "", false
	}
	c, ok := pass.TypesInfo.Uses[id].(*types.Const)
	if !ok || !frameConstRe.MatchString(c.Name()) {
		return "", false
	}
	if c.Pkg() == nil || !pkgMatch(framePackages, c.Pkg().Path()) {
		return "", false
	}
	return c.Name(), true
}
