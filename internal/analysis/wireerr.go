package analysis

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
)

// WireErr flags discarded errors from framed-wire writes and connection
// deadline setters in the real-network packages. A silently dropped
// WriteFrame strands the peer waiting on a frame that never arrives, and a
// dropped SetReadDeadline error disables the idle-reaping contract — both
// must be logged and tear the session down, never ignored.
var WireErr = &analysis.Analyzer{
	Name: "wireerr",
	Doc: "flag discarded error returns from framed-wire writes (WriteFrame/WriteJSON/" +
		"FrameWriter.Write/enqueueJSONLocked) and deadline setters in parcelnet/netem",
	Run: runWireErr,
}

// deadlineFuncs are the net.Conn deadline setters.
var deadlineFuncs = map[string]bool{
	"SetDeadline":      true,
	"SetReadDeadline":  true,
	"SetWriteDeadline": true,
}

// wireWriteFuncs are the framed-wire write entry points, including the
// parcelmux raw-frame and flow-control writers: a dropped WriteRaw strands a
// stream mid-object and a dropped WriteWindowUpdate deadlocks the sender
// against an exhausted window. enqueueJSONLocked is the session-side staging
// point for the PR 9 control notes (TDrain/TShed/TComplete): dropping its
// error silently discards the frame, so the client never learns the session
// is draining or that an object was shed.
var wireWriteFuncs = map[string]bool{
	"WriteFrame":        true,
	"WriteJSON":         true,
	"WriteRaw":          true,
	"WriteWindowUpdate": true,
	"enqueueJSONLocked": true,
}

func runWireErr(pass *analysis.Pass) (any, error) {
	return runWireErrImpl(pass, collectAllows(pass, "wireerr"))
}

// runWireErrImpl is the directive-injectable body: staleallow shadow-runs it
// with a shared, usage-tracked allow set.
func runWireErrImpl(pass *analysis.Pass, al *allows) (any, error) {
	if !pkgMatch(wirePackages, pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkWireCall(pass, al, call, "discarded")
				}
			case *ast.GoStmt:
				checkWireCall(pass, al, n.Call, "discarded by go statement")
			case *ast.DeferStmt:
				checkWireCall(pass, al, n.Call, "discarded by defer")
			case *ast.AssignStmt:
				checkWireAssign(pass, al, n)
			}
			return true
		})
	}
	return nil, nil
}

// isWireCall reports whether call is a wire write or deadline setter that
// returns an error.
func isWireCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	name := calleeName(call)
	if name == "" || (!deadlineFuncs[name] && !wireWriteFuncs[name] && name != "Write") {
		return "", false
	}
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return "", false
	}
	// The bare name "Write" is only the framed-wire writer's method, not
	// every io.Writer in the package.
	if name == "Write" {
		recv := fn.Type().(*types.Signature).Recv()
		if recv == nil {
			return "", false
		}
		t := recv.Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok || named.Obj().Name() != "FrameWriter" {
			return "", false
		}
	}
	// Only calls that actually return an error can discard one.
	sig := fn.Type().(*types.Signature)
	res := sig.Results()
	if res.Len() == 0 {
		return "", false
	}
	last := res.At(res.Len() - 1).Type()
	if !types.Identical(last, types.Universe.Lookup("error").Type()) {
		return "", false
	}
	return name, true
}

func checkWireCall(pass *analysis.Pass, al *allows, call *ast.CallExpr, how string) {
	if name, ok := isWireCall(pass, call); ok {
		al.report(pass, call.Pos(),
			"error from %s %s: wire and deadline failures must be logged and tear the session down, never dropped",
			name, how)
	}
}

// checkWireAssign flags wire-call errors assigned to the blank identifier.
func checkWireAssign(pass *analysis.Pass, al *allows, as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	name, ok := isWireCall(pass, call)
	if !ok {
		return
	}
	// The error is the last result; it is discarded when the corresponding
	// (or only) LHS is blank.
	lhs := as.Lhs[len(as.Lhs)-1]
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name == "_" {
		al.report(pass, as.Pos(),
			"error from %s assigned to blank identifier: wire and deadline failures must be logged and tear the session down, never dropped",
			name)
	}
}
