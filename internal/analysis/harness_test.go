package analysis

// A minimal analysistest-style harness. The x/tools copy vendored under
// third_party (the GOROOT cmd/vendor subset) ships the analysis core and the
// unitchecker but not go/analysis/analysistest or go/packages, so fixtures
// are loaded directly: parse testdata/src/<pkg>, typecheck against GOROOT
// source with the "source" importer (offline-safe), build an analysis.Pass
// by hand, and match diagnostics against `// want "regex"` comments on the
// same line — the analysistest convention.

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// wantRe extracts the quoted regexes of a `// want "..." "..."` comment.
var wantRe = regexp.MustCompile(`\bwant\s+((?:"(?:[^"\\]|\\.)*"\s*)+)$`)

var wantArgRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// expectation is one `// want` regex anchored to a file:line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

func runFixture(t *testing.T, a *analysis.Analyzer, pkgName string) {
	t.Helper()
	got, fset, wants := runAnalyzer(t, a, pkgName)
	matchDiagnostics(t, fset, pkgName, got, wants)
}

// runAnalyzer loads and typechecks one fixture package, runs the analyzer,
// and returns the raw diagnostics plus any `// want` expectations — for
// fixtures (like staleallow's) whose expected reports cannot be expressed as
// trailer comments.
func runAnalyzer(t *testing.T, a *analysis.Analyzer, pkgName string) ([]analysis.Diagnostic, *token.FileSet, []*expectation) {
	t.Helper()
	dir := filepath.Join("testdata", "src", pkgName)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("fixture %s: %v", pkgName, err)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	var wants []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", path, err)
		}
		files = append(files, f)
		wants = append(wants, collectWants(t, fset, f)...)
	}
	if len(files) == 0 {
		t.Fatalf("fixture %s: no Go files", pkgName)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check(pkgName, fset, files, info)
	if err != nil {
		t.Fatalf("typecheck %s: %v", pkgName, err)
	}

	var got []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       fset,
		Files:      files,
		Pkg:        pkg,
		TypesInfo:  info,
		TypesSizes: types.SizesFor("gc", "amd64"),
		ResultOf:   map[*analysis.Analyzer]any{},
		Report:     func(d analysis.Diagnostic) { got = append(got, d) },
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("%s on %s: %v", a.Name, pkgName, err)
	}
	return got, fset, wants
}

// collectWants parses every `// want "regex"` trailer in the file's comments.
func collectWants(t *testing.T, fset *token.FileSet, f *ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := wantRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := fset.Position(c.Pos())
			for _, q := range wantArgRe.FindAllStringSubmatch(m[1], -1) {
				expr, err := strconv.Unquote(`"` + q[1] + `"`)
				if err != nil {
					t.Fatalf("%s: bad want literal %q: %v", pos, q[1], err)
				}
				re, err := regexp.Compile(expr)
				if err != nil {
					t.Fatalf("%s: bad want regex %q: %v", pos, expr, err)
				}
				out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return out
}

// matchDiagnostics pairs each diagnostic with an unmatched want on its line
// and fails on surplus in either direction.
func matchDiagnostics(t *testing.T, fset *token.FileSet, pkgName string, got []analysis.Diagnostic, wants []*expectation) {
	t.Helper()
	sort.Slice(got, func(i, j int) bool { return got[i].Pos < got[j].Pos })
	for _, d := range got {
		pos := fset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: no diagnostic matching %q", fmt.Sprintf("%s:%d", w.file, w.line), w.re)
		}
	}
	if t.Failed() {
		t.Logf("fixture %s reported %d diagnostic(s), expected %d", pkgName, len(got), len(wants))
	}
}

func TestDeterminism(t *testing.T) {
	for _, fix := range []string{"determ_sim", "determ_sim_clean", "determ_exempt", "determ_cache", "determ_cache_clean", "determ_resil", "determ_resil_clean"} {
		t.Run(fix, func(t *testing.T) { runFixture(t, Determinism, fix) })
	}
}

func TestPoolDiscipline(t *testing.T) {
	for _, fix := range []string{"pool_bad", "pool_clean"} {
		t.Run(fix, func(t *testing.T) { runFixture(t, PoolDiscipline, fix) })
	}
}

func TestNoClosure(t *testing.T) {
	for _, fix := range []string{"noclosure_hot", "noclosure_clean", "noclosure_resil"} {
		t.Run(fix, func(t *testing.T) { runFixture(t, NoClosure, fix) })
	}
}

func TestWireErr(t *testing.T) {
	for _, fix := range []string{"wireerr_net", "wireerr_clean"} {
		t.Run(fix, func(t *testing.T) { runFixture(t, WireErr, fix) })
	}
}

func TestPairing(t *testing.T) {
	for _, fix := range []string{"pairing_bad", "pairing_clean"} {
		t.Run(fix, func(t *testing.T) { runFixture(t, Pairing, fix) })
	}
}

func TestLockOrder(t *testing.T) {
	for _, fix := range []string{"lockorder_bad", "lockorder_clean"} {
		t.Run(fix, func(t *testing.T) { runFixture(t, LockOrder, fix) })
	}
}

func TestFrameState(t *testing.T) {
	for _, fix := range []string{"framestate_bad", "framestate_clean"} {
		t.Run(fix, func(t *testing.T) { runFixture(t, FrameState, fix) })
	}
}

// TestStaleAllow asserts the audit's reports by content: a well-formed allow
// directive cannot carry a `// want` trailer without breaking the directive
// grammar's end anchor, so the bad fixture's expectations live here.
func TestStaleAllow(t *testing.T) {
	t.Run("staleallow_bad", func(t *testing.T) {
		got, fset, _ := runAnalyzer(t, StaleAllow, "staleallow_bad")
		wants := []string{
			`stale parcelvet:allow: no pairing finding is suppressed here any more`,
			`parcelvet:allow names unknown analyzer "pairng"`,
		}
		if len(got) != len(wants) {
			for _, d := range got {
				t.Logf("got: %s: %s", fset.Position(d.Pos), d.Message)
			}
			t.Fatalf("reported %d diagnostics, want %d", len(got), len(wants))
		}
		for _, want := range wants {
			found := false
			for _, d := range got {
				if strings.Contains(d.Message, want) {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("no diagnostic containing %q", want)
			}
		}
	})
	t.Run("staleallow_clean", func(t *testing.T) {
		got, fset, _ := runAnalyzer(t, StaleAllow, "staleallow_clean")
		for _, d := range got {
			t.Errorf("unexpected diagnostic: %s: %s", fset.Position(d.Pos), d.Message)
		}
	})
}
