package analysis

import (
	"go/ast"
	"go/types"
	"regexp"

	"golang.org/x/tools/go/analysis"
)

// PoolDiscipline is the static complement to the -tags simdebug runtime
// checks: pooled objects (types carrying a //parcelvet:pooled marker or
// listed in the pooledTypes table) are owned by exactly one holder at a
// time, returned to their free list exactly once, and never referenced
// afterwards. The runtime check panics only when a test executes the buggy
// path; this analyzer rejects the pattern on every path at vet time.
//
// Reported patterns:
//
//   - use of a variable after it was passed to a free*/release*/put* call in
//     the same function (straight-line: the statements that follow the free
//     in its own and enclosing blocks; sibling branches are not flagged, and
//     a reassignment re-arms the variable);
//   - a pooled pointer captured by a closure;
//   - a pooled pointer stored into a field of a non-pooled struct, into a
//     map, or into a package-level variable;
//   - a pooled pointer returned by a function that is not part of the pool
//     implementation (new*/get*/alloc*/free*/release*/put*).
//
// Pooled-to-pooled field stores stay legal: that is exactly how the simnet
// data path encodes continuations (a packet carrying its *outMsg).
var PoolDiscipline = &analysis.Analyzer{
	Name: "pooldiscipline",
	Doc: "flag use-after-free and ownership escapes (fields, globals, maps, closures, " +
		"returns) of pooled objects marked //parcelvet:pooled",
	Run: runPoolDiscipline,
}

// freeFuncRe matches the repository's pool-release naming convention
// (releasePacket, releaseOutMsg, freeFrame, putArgs, ...).
var freeFuncRe = regexp.MustCompile(`^(free|release|put)([A-Z]|$)`)

// poolImplRe matches functions that ARE the pool implementation — they may
// move pooled pointers through free-list fields and return fresh objects.
var poolImplRe = regexp.MustCompile(`^(new|get|alloc|free|release|put)([A-Z]|$)`)

func runPoolDiscipline(pass *analysis.Pass) (any, error) {
	return runPoolDisciplineImpl(pass, collectAllows(pass, "pooldiscipline"))
}

// runPoolDisciplineImpl is the directive-injectable body: staleallow
// shadow-runs it with a shared, usage-tracked allow set.
func runPoolDisciplineImpl(pass *analysis.Pass, al *allows) (any, error) {
	marked := markedPooledTypes(pass)
	pooled := func(t types.Type) bool { return t != nil && isPooled(t, marked) }

	for _, f := range pass.Files {
		if isTestFile(pass, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkUseAfterFree(pass, al, fd)
			checkCaptures(pass, al, fd, pooled)
			if !poolImplRe.MatchString(fd.Name.Name) {
				checkEscapes(pass, al, fd, pooled)
				checkReturns(pass, al, fd, pooled)
			} else {
				// Pool implementations still must not leak pooled pointers
				// into closures; captures were checked above.
				checkMapAndGlobalStores(pass, al, fd, pooled)
			}
		}
	}
	return nil, nil
}

// ---- use after free ----

// stmtList is a block-like statement container: a BlockStmt, a case clause,
// or a comm clause body.
type stmtList struct {
	stmts []ast.Stmt
	index int // index of the statement on the path to the free call
}

// checkUseAfterFree finds free-function calls and flags later uses of the
// freed variable on the straight-line continuation of that call: the
// statements that follow it in its own block, and — when that block falls
// through rather than returning or branching — in each enclosing block.
// Sibling branches are never flagged, a reassignment re-arms the variable,
// and closure/defer bodies are left to the simdebug runtime check (their
// execution point is not statically ordered against the free).
func checkUseAfterFree(pass *analysis.Pass, al *allows, fd *ast.FuncDecl) {
	type siteKey struct {
		call *ast.CallExpr
		obj  *types.Var
	}
	var order []siteKey
	paths := map[siteKey][]stmtList{}

	collect := func(s ast.Stmt, path []stmtList) {
		ast.Inspect(s, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.FuncLit, *ast.DeferStmt, *ast.GoStmt:
				// A free inside a closure, defer, or goroutine is not
				// sequenced before the trailing statements.
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := calleeName(call)
			if name == "" || !freeFuncRe.MatchString(name) {
				return true
			}
			for _, arg := range call.Args {
				id, ok := ast.Unparen(arg).(*ast.Ident)
				if !ok {
					continue
				}
				v, ok := pass.TypesInfo.Uses[id].(*types.Var)
				if !ok || v.IsField() {
					continue
				}
				k := siteKey{call: call, obj: v}
				if _, seen := paths[k]; !seen {
					order = append(order, k)
				}
				// Deeper walks overwrite shallower ones, so the stored path
				// is the innermost statement chain containing the call.
				p := make([]stmtList, len(path))
				copy(p, path)
				paths[k] = p
			}
			return true
		})
	}
	var walk func(stmts []ast.Stmt, path []stmtList)
	walk = func(stmts []ast.Stmt, path []stmtList) {
		for i, s := range stmts {
			here := append(path, stmtList{stmts: stmts, index: i})
			collect(s, here)
			switch s := s.(type) {
			case *ast.BlockStmt:
				walk(s.List, here)
			case *ast.IfStmt:
				walk(s.Body.List, here)
				if b, ok := s.Else.(*ast.BlockStmt); ok {
					walk(b.List, here)
				} else if e, ok := s.Else.(*ast.IfStmt); ok {
					walk([]ast.Stmt{e}, here)
				}
			case *ast.ForStmt:
				walk(s.Body.List, here)
			case *ast.RangeStmt:
				walk(s.Body.List, here)
			case *ast.SwitchStmt:
				for _, c := range s.Body.List {
					if cc, ok := c.(*ast.CaseClause); ok {
						walk(cc.Body, here)
					}
				}
			case *ast.TypeSwitchStmt:
				for _, c := range s.Body.List {
					if cc, ok := c.(*ast.CaseClause); ok {
						walk(cc.Body, here)
					}
				}
			case *ast.SelectStmt:
				for _, c := range s.Body.List {
					if cc, ok := c.(*ast.CommClause); ok {
						walk(cc.Body, here)
					}
				}
			case *ast.LabeledStmt:
				walk([]ast.Stmt{s.Stmt}, here)
			}
		}
	}
	walk(fd.Body.List, nil)

	for _, k := range order {
		scanAfterFree(pass, al, k.obj, k.call, paths[k])
	}
}

// scanAfterFree walks the straight-line continuation of one free call and
// reports the first use of the freed variable.
func scanAfterFree(pass *analysis.Pass, al *allows, obj *types.Var, call *ast.CallExpr, path []stmtList) {
	stop := false // reassignment, flow terminator, or a reported use
	checkStmt := func(s ast.Stmt) {
		ast.Inspect(s, func(n ast.Node) bool {
			if stop {
				return false
			}
			switch n := n.(type) {
			case *ast.FuncLit:
				// Captured uses are the capture check's concern.
				return false
			case *ast.AssignStmt:
				// RHS uses happen before the reassignment takes effect.
				for _, rhs := range n.Rhs {
					if id := firstUse(pass, rhs, obj); id != nil {
						al.report(pass, id.Pos(),
							"use of %q after %s released it to the pool", obj.Name(), calleeName(call))
						stop = true
						return false
					}
				}
				for _, lhs := range n.Lhs {
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
						stop = true // re-armed with a fresh value
						return false
					}
				}
				return true
			case *ast.Ident:
				if pass.TypesInfo.Uses[n] == obj {
					al.report(pass, n.Pos(),
						"use of %q after %s released it to the pool", obj.Name(), calleeName(call))
					stop = true
					return false
				}
			}
			return true
		})
	}
	for level := len(path) - 1; level >= 0 && !stop; level-- {
		bl := path[level]
		terminated := false
		for _, s := range bl.stmts[bl.index+1:] {
			if stop {
				return
			}
			checkStmt(s)
			if terminatesFlow(s) {
				terminated = true
				break
			}
		}
		if terminated {
			return // control never falls through to the enclosing block
		}
	}
}

// firstUse returns an identifier in e that refers to obj, or nil.
func firstUse(pass *analysis.Pass, e ast.Expr, obj *types.Var) *ast.Ident {
	var found *ast.Ident
	ast.Inspect(e, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			found = id
		}
		return found == nil
	})
	return found
}

// terminatesFlow reports whether s unconditionally leaves the enclosing
// block (so statements after the block cannot observe the freed value).
func terminatesFlow(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// ---- escapes ----

// checkCaptures flags closures that capture pooled variables declared
// outside the closure: a captured pooled pointer both heap-allocates the
// closure and lets the pointer outlive its pool ownership window.
func checkCaptures(pass *analysis.Pass, al *allows, fd *ast.FuncDecl, pooled func(types.Type) bool) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		for _, v := range capturedVars(pass, lit) {
			if pooled(v.Type()) {
				al.report(pass, lit.Pos(),
					"closure captures pooled %q (%s); pass it through typed fields or a ScheduleArgAt argument instead",
					v.Name(), v.Type())
			}
		}
		return true
	})
}

// capturedVars returns the function-local variables referenced by lit but
// declared outside it (its free variables). Package-level variables are not
// captures.
func capturedVars(pass *analysis.Pass, lit *ast.FuncLit) []*types.Var {
	var out []*types.Var
	seen := map[*types.Var]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true // declared inside the literal
		}
		if v.Parent() == nil || v.Parent() == types.Universe || v.Parent() == pass.Pkg.Scope() {
			return true // package-level or universe: not a capture
		}
		seen[v] = true
		out = append(out, v)
		return true
	})
	return out
}

// checkEscapes flags pooled pointers stored into fields of non-pooled
// structs, into maps, or into package-level variables.
func checkEscapes(pass *analysis.Pass, al *allows, fd *ast.FuncDecl, pooled func(types.Type) bool) {
	checkMapAndGlobalStores(pass, al, fd, pooled)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			rhs := pairedRhs(as, i)
			if rhs == nil || !pooledValue(pass, rhs, pooled) {
				continue
			}
			sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
			if !ok {
				continue
			}
			if selObj, ok := pass.TypesInfo.Selections[sel]; ok && selObj.Kind() == types.FieldVal {
				if !pooled(selObj.Recv()) {
					al.report(pass, as.Pos(),
						"pooled pointer stored into field %s of non-pooled %s: ownership escapes the pool",
						sel.Sel.Name, selObj.Recv())
				}
			}
		}
		return true
	})
}

// checkMapAndGlobalStores flags pooled pointers stored into maps or
// package-level variables (checked even inside pool implementations: the
// free list itself is a typed chain, never a map or global).
func checkMapAndGlobalStores(pass *analysis.Pass, al *allows, fd *ast.FuncDecl, pooled func(types.Type) bool) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			rhs := pairedRhs(as, i)
			if rhs == nil || !pooledValue(pass, rhs, pooled) {
				continue
			}
			switch lhs := ast.Unparen(lhs).(type) {
			case *ast.IndexExpr:
				if tv, ok := pass.TypesInfo.Types[lhs.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						al.report(pass, as.Pos(),
							"pooled pointer stored into map: ownership escapes the pool")
					}
				}
			case *ast.Ident:
				if v, ok := pass.TypesInfo.Uses[lhs].(*types.Var); ok &&
					v.Parent() == pass.Pkg.Scope() {
					al.report(pass, as.Pos(),
						"pooled pointer stored into package-level variable %q: ownership escapes the pool", v.Name())
				}
			}
		}
		return true
	})
}

// pairedRhs returns the right-hand expression assigned to Lhs[i], or nil
// when the assignment is not 1:1 (multi-value calls are never pooled-typed
// stores of interest here).
func pairedRhs(as *ast.AssignStmt, i int) ast.Expr {
	if len(as.Lhs) == len(as.Rhs) {
		return as.Rhs[i]
	}
	return nil
}

// pooledValue reports whether e is a pooled-typed value (excluding nil).
func pooledValue(pass *analysis.Pass, e ast.Expr, pooled func(types.Type) bool) bool {
	e = ast.Unparen(e)
	if id, ok := e.(*ast.Ident); ok && id.Name == "nil" {
		return false
	}
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.IsNil() {
		return false
	}
	return pooled(tv.Type)
}

// checkReturns flags pooled pointers returned by functions outside the pool
// implementation: callers must receive pooled objects only from the pool's
// own constructors.
func checkReturns(pass *analysis.Pass, al *allows, fd *ast.FuncDecl, pooled func(types.Type) bool) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // literal bodies have their own return semantics
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if pooledValue(pass, res, pooled) {
				al.report(pass, ret.Pos(),
					"pooled pointer returned from %s: pooled objects may only be handed out by the pool implementation (new*/get*)",
					fd.Name.Name)
			}
		}
		return true
	})
}
