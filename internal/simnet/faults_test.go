package simnet

import (
	"os"
	"reflect"
	"strconv"
	"testing"
	"time"

	"github.com/parcel-go/parcel/internal/eventsim"
	"github.com/parcel-go/parcel/internal/trace"
)

// chaosSeed returns the seed for fault-injection tests. The CI chaos job runs
// the suite across a seed matrix via CHAOS_SEED; locally it defaults to 1.
func chaosSeed() int64 {
	if v := os.Getenv("CHAOS_SEED"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			return n
		}
	}
	return 1
}

// faultNet builds the standard two-host test network with faults on the path.
func faultNet(t testing.TB, seed int64, f FaultParams) (*eventsim.Simulator, *Network, *Host, *Host) {
	t.Helper()
	sim := eventsim.New(seed)
	n := New(sim)
	client := n.AddHost("client", HostConfig{DownlinkBps: mbps8, UplinkBps: mbps8 / 4, Recorder: &trace.Recorder{}})
	server := n.AddHost("server", HostConfig{DownlinkBps: mbps100, UplinkBps: mbps100})
	n.SetPath(client, server, PathParams{RTT: 80 * time.Millisecond})
	if f.Active() {
		n.SetFaults(client, server, f)
	}
	return sim, n, client, server
}

// runTransfer sends size bytes server->client and returns the delivery time.
func runTransfer(t testing.TB, sim *eventsim.Simulator, client, server *Host, size int) time.Duration {
	t.Helper()
	var end time.Duration
	server.Listen(func(c *Conn) {
		c.OnMessage(server, func(m Message) {
			c.Send(server, size, nil, "blob", func(at time.Duration) { end = at })
		})
	})
	conn := client.Dial(server, nil)
	conn.Send(client, 200, "go", "req", nil)
	sim.Run()
	if end == 0 {
		t.Fatal("transfer never completed")
	}
	return end
}

func TestFaultsLossDelaysButDelivers(t *testing.T) {
	seed := chaosSeed()
	simClean, _, c1, s1 := faultNet(t, seed, FaultParams{})
	clean := runTransfer(t, simClean, c1, s1, 1<<20)

	simLossy, nLossy, c2, s2 := faultNet(t, seed, FaultParams{LossRate: 0.05})
	lossy := runTransfer(t, simLossy, c2, s2, 1<<20)

	st := nLossy.FaultStats()
	if st.Dropped == 0 || st.Retransmits == 0 {
		t.Fatalf("5%% loss produced no drops: %+v", st)
	}
	if lossy <= clean {
		t.Fatalf("lossy transfer (%v) not slower than clean (%v)", lossy, clean)
	}
}

func TestFaultsDeterministicAcrossRuns(t *testing.T) {
	f := FaultParams{LossRate: 0.02, PGoodBad: 0.05, PBadGood: 0.3, LossRateBad: 0.4}
	seed := chaosSeed()
	run := func() (time.Duration, FaultStats) {
		sim, n, client, server := faultNet(t, seed, f)
		end := runTransfer(t, sim, client, server, 2<<20)
		return end, n.FaultStats()
	}
	end1, st1 := run()
	end2, st2 := run()
	if end1 != end2 || !reflect.DeepEqual(st1, st2) {
		t.Fatalf("same seed diverged: %v/%+v vs %v/%+v", end1, st1, end2, st2)
	}
}

func TestFaultsBurstLossierThanUniform(t *testing.T) {
	// A GE chain that spends ~1/6 of packets in a 50%-loss bad state drops
	// far more than the same chain pinned to its good state.
	seed := chaosSeed()
	_, nBurst, cb, sb := faultNet(t, seed, FaultParams{
		LossRate: 0.001, PGoodBad: 0.05, PBadGood: 0.25, LossRateBad: 0.5,
	})
	simB := nBurst.Sim
	runTransfer(t, simB, cb, sb, 2<<20)

	_, nGood, cg, sg := faultNet(t, seed, FaultParams{LossRate: 0.001})
	runTransfer(t, nGood.Sim, cg, sg, 2<<20)

	if nBurst.FaultStats().Dropped <= nGood.FaultStats().Dropped {
		t.Fatalf("burst profile dropped %d <= uniform %d",
			nBurst.FaultStats().Dropped, nGood.FaultStats().Dropped)
	}
}

func TestFaultsOutageBlocksLink(t *testing.T) {
	// The link goes down 50 ms in for 500 ms; a transfer that finishes in
	// ~1.2 s clean must absorb the window.
	out := Outage{Start: 50 * time.Millisecond, End: 550 * time.Millisecond}
	seed := chaosSeed()
	simClean, _, c1, s1 := faultNet(t, seed, FaultParams{})
	clean := runTransfer(t, simClean, c1, s1, 1<<20)

	simOut, nOut, c2, s2 := faultNet(t, seed, FaultParams{Outages: []Outage{out}})
	blocked := runTransfer(t, simOut, c2, s2, 1<<20)

	if nOut.FaultStats().OutageDeferrals == 0 {
		t.Fatal("no departures deferred by the outage window")
	}
	if blocked < clean+400*time.Millisecond {
		t.Fatalf("outage added only %v, want most of the 500ms window", blocked-clean)
	}
}

func TestFaultsTerminateAtFullLoss(t *testing.T) {
	// LossRate 1 must still terminate via the MaxAttempts forced delivery.
	sim, n, client, server := faultNet(t, chaosSeed(), FaultParams{LossRate: 1, MaxAttempts: 4, RTO: 20 * time.Millisecond})
	runTransfer(t, sim, client, server, 10_000)
	if n.FaultStats().ForcedDeliveries == 0 {
		t.Fatal("full loss completed without forced deliveries")
	}
}

func TestFaultsValidate(t *testing.T) {
	bad := []FaultParams{
		{LossRate: 1.5},
		{PGoodBad: -0.1},
		{Outages: []Outage{{Start: time.Second, End: time.Second}}},
		{RTO: -time.Second},
		{MaxAttempts: -1},
	}
	for i, f := range bad {
		if err := f.Validate(); err == nil {
			t.Errorf("case %d: invalid FaultParams accepted: %+v", i, f)
		}
	}
	if err := (FaultParams{LossRate: 0.1, Outages: []Outage{{End: time.Second}}}).Validate(); err != nil {
		t.Errorf("valid FaultParams rejected: %v", err)
	}
}

func TestSetFaultsRequiresPath(t *testing.T) {
	sim := eventsim.New(1)
	n := New(sim)
	a := n.AddHost("a", HostConfig{})
	b := n.AddHost("b", HostConfig{})
	defer func() {
		if recover() == nil {
			t.Fatal("SetFaults on unwired pair did not panic")
		}
	}()
	n.SetFaults(a, b, FaultParams{LossRate: 0.1})
}

// TestFaultsOffIsFreeOfRandomDraws pins the zero-fault fast path: wiring a
// zero FaultParams (or none at all) must not consume random draws or change
// timing, which is what keeps the golden figures bit-identical.
func TestFaultsOffIsFreeOfRandomDraws(t *testing.T) {
	seed := chaosSeed()
	simA, _, c1, s1 := faultNet(t, seed, FaultParams{})
	endA := runTransfer(t, simA, c1, s1, 1<<20)

	simB, nB, c2, s2 := faultNet(t, seed, FaultParams{})
	nB.SetFaults(c2, s2, FaultParams{}) // explicit zero value
	endB := runTransfer(t, simB, c2, s2, 1<<20)

	if endA != endB {
		t.Fatalf("zero FaultParams changed timing: %v vs %v", endA, endB)
	}
	if st := nB.FaultStats(); st != (FaultStats{}) {
		t.Fatalf("zero FaultParams produced stats %+v", st)
	}
}
