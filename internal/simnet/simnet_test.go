package simnet

import (
	"testing"
	"time"

	"github.com/parcel-go/parcel/internal/eventsim"
	"github.com/parcel-go/parcel/internal/trace"
)

const (
	mbps8   = int64(8e6 / 8)
	mbps100 = int64(100e6 / 8)
)

// testNet builds a two-host network: client (8 Mbps down / 2 Mbps up) and
// server (100 Mbps symmetric), RTT 80 ms, no jitter.
func testNet(t testing.TB) (*eventsim.Simulator, *Network, *Host, *Host) {
	t.Helper()
	sim := eventsim.New(1)
	n := New(sim)
	client := n.AddHost("client", HostConfig{DownlinkBps: mbps8, UplinkBps: mbps8 / 4, Recorder: &trace.Recorder{}})
	server := n.AddHost("server", HostConfig{DownlinkBps: mbps100, UplinkBps: mbps100})
	n.SetPath(client, server, PathParams{RTT: 80 * time.Millisecond})
	return sim, n, client, server
}

func TestHandshakeTakesOneRTT(t *testing.T) {
	sim, _, client, server := testNet(t)
	var established time.Duration
	client.Dial(server, func(c *Conn) { established = sim.Now() })
	sim.Run()
	if established < 80*time.Millisecond || established > 82*time.Millisecond {
		t.Fatalf("handshake completed at %v, want ≈ 80ms", established)
	}
}

func TestRequestResponseLatency(t *testing.T) {
	sim, _, client, server := testNet(t)
	server.Listen(func(c *Conn) {
		c.OnMessage(server, func(m Message) {
			c.Send(server, 1000, "response", "rsp", nil)
		})
	})
	var done time.Duration
	conn := client.Dial(server, nil)
	conn.OnMessage(client, func(m Message) {
		if m.Payload == "response" {
			done = sim.Now()
		}
	})
	conn.Send(client, 500, "request", "req", nil)
	sim.Run()
	// 1 RTT handshake + 1 RTT request/response + serialization ≈ 162 ms.
	if done < 160*time.Millisecond || done > 175*time.Millisecond {
		t.Fatalf("request-response done at %v, want ≈ 162ms", done)
	}
}

func TestLargeTransferApproachesLinkRate(t *testing.T) {
	sim, _, client, server := testNet(t)
	const size = 4 << 20 // 4 MB
	var start, end time.Duration
	server.Listen(func(c *Conn) {
		c.OnMessage(server, func(m Message) {
			start = sim.Now()
			c.Send(server, size, nil, "blob", func(at time.Duration) { end = at })
		})
	})
	conn := client.Dial(server, nil)
	conn.Send(client, 200, "go", "req", nil)
	sim.Run()
	if end == 0 {
		t.Fatal("transfer never completed")
	}
	elapsed := (end - start).Seconds()
	goodput := float64(size) / elapsed
	// Downlink is 1 MB/s; expect at least 70% utilization after slow start
	// and no more than the link rate.
	if goodput < 0.70e6 || goodput > 1.01e6 {
		t.Fatalf("goodput = %.0f B/s over %.2fs, want ≈ 1e6", goodput, elapsed)
	}
}

func TestByteConservation(t *testing.T) {
	sim, _, client, server := testNet(t)
	sizes := []int{1, 100, MSS, MSS + 1, 10_000, 333_333}
	var got []int
	server.Listen(func(c *Conn) {
		c.OnMessage(server, func(m Message) { got = append(got, m.Size) })
	})
	conn := client.Dial(server, nil)
	for _, s := range sizes {
		conn.Send(client, s, nil, "m", nil)
	}
	sim.Run()
	if len(got) != len(sizes) {
		t.Fatalf("delivered %d messages, want %d", len(got), len(sizes))
	}
	for i := range sizes {
		if got[i] != sizes[i] {
			t.Fatalf("message %d size %d, want %d (in-order delivery violated?)", i, got[i], sizes[i])
		}
	}
}

func TestInOrderDelivery(t *testing.T) {
	sim, _, client, server := testNet(t)
	var order []int
	server.Listen(func(c *Conn) {
		c.OnMessage(server, func(m Message) { order = append(order, m.Payload.(int)) })
	})
	conn := client.Dial(server, nil)
	for i := 0; i < 20; i++ {
		conn.Send(client, 700+i, i, "m", nil)
	}
	sim.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("messages reordered: %v", order)
		}
	}
}

func TestSlowStartRamps(t *testing.T) {
	sim, _, client, server := testNet(t)
	var c *Conn
	server.Listen(func(conn *Conn) {
		c = conn
		conn.OnMessage(server, func(m Message) {
			conn.Send(server, 2<<20, nil, "blob", nil)
		})
	})
	conn := client.Dial(server, nil)
	conn.Send(client, 100, nil, "req", nil)
	sim.Run()
	if c == nil {
		t.Fatal("no conn accepted")
	}
	if cw := c.Cwnd(server); cw <= InitialCwnd {
		t.Fatalf("cwnd = %v after 2MB transfer, want > initial %d", cw, InitialCwnd)
	}
	if cw := c.Cwnd(server); cw > MaxCwnd {
		t.Fatalf("cwnd = %v exceeds cap %d", cw, MaxCwnd)
	}
}

func TestTwoConnectionsShareBandwidth(t *testing.T) {
	sim := eventsim.New(1)
	n := New(sim)
	client := n.AddHost("client", HostConfig{DownlinkBps: mbps8})
	s1 := n.AddHost("s1", HostConfig{})
	s2 := n.AddHost("s2", HostConfig{})
	n.SetPath(client, s1, PathParams{RTT: 80 * time.Millisecond})
	n.SetPath(client, s2, PathParams{RTT: 80 * time.Millisecond})
	const size = 1 << 20
	var t1, t2 time.Duration
	handler := func(done *time.Duration) func(*Conn) {
		return func(c *Conn) {
			c.OnMessage(c.Responder(), func(m Message) {
				c.Send(c.Responder(), size, nil, "blob", func(at time.Duration) { *done = at })
			})
		}
	}
	s1.Listen(handler(&t1))
	s2.Listen(handler(&t2))
	client.Dial(s1, nil).Send(client, 100, nil, "r", nil)
	client.Dial(s2, nil).Send(client, 100, nil, "r", nil)
	sim.Run()
	// Two 1 MB transfers over a shared 1 MB/s downlink: both finish around
	// 2 s, i.e. each sees roughly half the link.
	for _, d := range []time.Duration{t1, t2} {
		if d < 1500*time.Millisecond || d > 3*time.Second {
			t.Fatalf("transfer done at %v, want ≈ 2s (sharing)", d)
		}
	}
}

func TestRecorderSeesClientPackets(t *testing.T) {
	sim, _, client, server := testNet(t)
	rec := client.cfg.Recorder
	server.Listen(func(c *Conn) {
		c.OnMessage(server, func(m Message) { c.Send(server, 5000, nil, "rsp", nil) })
	})
	conn := client.Dial(server, nil)
	conn.Send(client, 300, nil, "req", nil)
	sim.Run()
	if rec.Len() == 0 {
		t.Fatal("no packets recorded")
	}
	var kinds = map[trace.Kind]int{}
	for _, p := range rec.Packets() {
		kinds[p.Kind]++
	}
	if kinds[trace.KindSYN] != 1 || kinds[trace.KindSYNACK] != 1 {
		t.Fatalf("handshake packets wrong: %v", kinds)
	}
	if kinds[trace.KindData] < 4 { // 1 up request + 4 down segments
		t.Fatalf("data packets = %d, want >= 4", kinds[trace.KindData])
	}
	if kinds[trace.KindACK] == 0 {
		t.Fatal("no ACKs recorded")
	}
	up := trace.Up
	if rec.TotalBytes(&up) == 0 {
		t.Fatal("no uplink bytes recorded")
	}
}

func TestResponderMayReplyBeforeEstablished(t *testing.T) {
	// The server can start sending as soon as it accepts (data rides just
	// behind the SYN-ACK) — PARCEL's proxy push uses this.
	sim, _, client, server := testNet(t)
	var got time.Duration
	server.Listen(func(c *Conn) {
		c.OnMessage(client, func(m Message) { got = sim.Now() })
		c.Send(server, 1000, nil, "push", nil)
	})
	client.Dial(server, nil)
	sim.Run()
	if got == 0 {
		t.Fatal("push never arrived")
	}
	if got > 90*time.Millisecond {
		t.Fatalf("push arrived at %v, want ≈ 1 RTT", got)
	}
}

func TestDatagramRoundTrip(t *testing.T) {
	sim, _, client, server := testNet(t)
	var reply time.Duration
	server.HandleDatagrams(func(from *Host, payload any, size int, at time.Duration) {
		server.SendDatagram(from, 80, "answer", nil)
	})
	client.HandleDatagrams(func(from *Host, payload any, size int, at time.Duration) {
		if payload == "answer" {
			reply = at
		}
	})
	client.SendDatagram(server, 60, "query", nil)
	sim.Run()
	if reply < 80*time.Millisecond || reply > 85*time.Millisecond {
		t.Fatalf("datagram RTT = %v, want ≈ 80ms", reply)
	}
}

func TestDuplicateHostPanics(t *testing.T) {
	sim := eventsim.New(1)
	n := New(sim)
	n.AddHost("x", HostConfig{})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate host did not panic")
		}
	}()
	n.AddHost("x", HostConfig{})
}

func TestMissingPathPanics(t *testing.T) {
	sim := eventsim.New(1)
	n := New(sim)
	a := n.AddHost("a", HostConfig{})
	b := n.AddHost("b", HostConfig{})
	defer func() {
		if recover() == nil {
			t.Fatal("missing path did not panic")
		}
	}()
	a.Dial(b, nil)
	sim.Run()
}

func TestSendOnClosedConnPanics(t *testing.T) {
	sim, _, client, server := testNet(t)
	conn := client.Dial(server, nil)
	sim.Run()
	conn.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("send on closed conn did not panic")
		}
	}()
	conn.Send(client, 10, nil, "m", nil)
}

func TestZeroSizeSendPanics(t *testing.T) {
	sim, _, client, server := testNet(t)
	conn := client.Dial(server, nil)
	sim.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("zero-size send did not panic")
		}
	}()
	conn.Send(client, 0, nil, "m", nil)
}

func TestDeterminism(t *testing.T) {
	run := func() []trace.Packet {
		sim := eventsim.New(7)
		n := New(sim)
		rec := &trace.Recorder{}
		client := n.AddHost("client", HostConfig{DownlinkBps: mbps8, Recorder: rec})
		server := n.AddHost("server", HostConfig{})
		n.SetPath(client, server, PathParams{RTT: 80 * time.Millisecond, Jitter: 3 * time.Millisecond})
		server.Listen(func(c *Conn) {
			c.OnMessage(server, func(m Message) { c.Send(server, 100_000, nil, "b", nil) })
		})
		client.Dial(server, nil).Send(client, 200, nil, "r", nil)
		sim.Run()
		return rec.Packets()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("different packet counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("packet %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestJitterDelaysButPreservesMessages(t *testing.T) {
	sim := eventsim.New(3)
	n := New(sim)
	client := n.AddHost("client", HostConfig{DownlinkBps: mbps8})
	server := n.AddHost("server", HostConfig{})
	n.SetPath(client, server, PathParams{RTT: 80 * time.Millisecond, Jitter: 10 * time.Millisecond})
	var sizes []int
	server.Listen(func(c *Conn) {}) // accept
	conn := client.Dial(server, nil)
	conn.OnMessage(client, func(m Message) { sizes = append(sizes, m.Size) })
	server.Listen(func(c *Conn) {
		c.OnMessage(server, func(m Message) {
			for i := 0; i < 10; i++ {
				c.Send(server, 20_000, nil, "b", nil)
			}
		})
	})
	conn2 := client.Dial(server, nil)
	conn2.OnMessage(client, func(m Message) { sizes = append(sizes, m.Size) })
	conn2.Send(client, 100, nil, "r", nil)
	sim.Run()
	if len(sizes) != 10 {
		t.Fatalf("delivered %d messages, want 10", len(sizes))
	}
	for _, s := range sizes {
		if s != 20_000 {
			t.Fatalf("message size %d corrupted by jitter", s)
		}
	}
}

func BenchmarkTransfer1MB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sim := eventsim.New(1)
		n := New(sim)
		client := n.AddHost("client", HostConfig{DownlinkBps: mbps8})
		server := n.AddHost("server", HostConfig{})
		n.SetPath(client, server, PathParams{RTT: 80 * time.Millisecond})
		server.Listen(func(c *Conn) {
			c.OnMessage(server, func(m Message) { c.Send(server, 1<<20, nil, "b", nil) })
		})
		client.Dial(server, nil).Send(client, 100, nil, "r", nil)
		sim.Run()
	}
}
