//go:build simdebug

package simnet

import "fmt"

// With -tags simdebug every release checks the pooled flag, so returning a
// packet or message to the free list twice — which would silently alias two
// in-flight deliveries onto one object — panics at the offending call site.
// This mirrors the eventsim owner check: a contract that is free in normal
// builds and loud in debug builds.

func checkPacketFree(p *packet) {
	if p.pooled {
		panic(fmt.Sprintf("simnet: double free of packet (conn %d, kind %v)", p.connID, p.kind))
	}
}

func checkOutMsgFree(m *outMsg) {
	if m.pooled {
		panic(fmt.Sprintf("simnet: double free of outMsg (size %d, label %q)", m.size, m.label))
	}
}
