package simnet

// Fault injection: deterministic, seed-derived packet loss and link outages
// layered under the reliable stream model.
//
// The injection point is transmit: every transmission attempt first waits out
// any configured outage window (the link is simply down — packets serialize
// behind the window's end), then draws a loss decision from the simulation's
// seeded random source. A lost attempt still consumes the sender's uplink
// (and is recorded in the sender's trace, so retransmissions cost energy),
// but never reaches the receiver; instead the same pooled packet is
// re-transmitted after an exponentially backed-off RTO. Delivery therefore
// stays exactly-once and in causal order per message, which preserves the
// simulator's reliable-stream contract — loss shows up as latency, energy,
// and the FaultStats counters, exactly the phenomena the loss sweep measures.
//
// All knobs default to zero, in which case transmit takes the historical
// code path and consumes no random draws: golden figures stay bit-identical.

import (
	"fmt"
	"math/rand"
	"time"
)

// Outage is a timed window during which a link transmits nothing.
type Outage struct {
	Start, End time.Duration
}

// FaultParams configures loss and outage injection for one link direction.
// The zero value disables injection entirely.
type FaultParams struct {
	// LossRate is the i.i.d. per-packet loss probability (good state).
	LossRate float64

	// Gilbert–Elliott burst loss: a two-state chain advanced per packet.
	// PGoodBad/PBadGood are the per-packet transition probabilities and
	// LossRateBad the loss probability while in the bad state (LossRate
	// applies in the good state). All three zero disables the chain.
	PGoodBad    float64
	PBadGood    float64
	LossRateBad float64

	// Outages are windows (in virtual time) during which the link is down.
	Outages []Outage

	// RTO is the base retransmission timeout; it doubles per attempt of the
	// same packet, capped at 8×. Zero means the 200 ms default.
	RTO time.Duration

	// MaxAttempts bounds transmissions of one packet: after MaxAttempts
	// losses the packet is delivered anyway (counted as a forced delivery),
	// so a simulation always terminates even at LossRate 1. Zero means 12.
	MaxAttempts int
}

const (
	defaultRTO         = 200 * time.Millisecond
	defaultMaxAttempts = 12
	maxRTOBackoffShift = 3 // RTO backoff caps at RTO<<3 (8×)
)

// Active reports whether any fault knob is set.
func (f FaultParams) Active() bool {
	return f.LossRate > 0 || f.PGoodBad > 0 || f.PBadGood > 0 || f.LossRateBad > 0 || len(f.Outages) > 0
}

// Validate rejects nonsensical configurations.
func (f FaultParams) Validate() error {
	for _, p := range []float64{f.LossRate, f.PGoodBad, f.PBadGood, f.LossRateBad} {
		if p < 0 || p > 1 {
			return fmt.Errorf("simnet: fault probability %v outside [0,1]", p)
		}
	}
	for _, o := range f.Outages {
		if o.End <= o.Start || o.Start < 0 {
			return fmt.Errorf("simnet: outage window [%v,%v) is empty or negative", o.Start, o.End)
		}
	}
	if f.RTO < 0 {
		return fmt.Errorf("simnet: negative RTO %v", f.RTO)
	}
	if f.MaxAttempts < 0 {
		return fmt.Errorf("simnet: negative MaxAttempts %d", f.MaxAttempts)
	}
	return nil
}

func (f FaultParams) rto() time.Duration {
	if f.RTO > 0 {
		return f.RTO
	}
	return defaultRTO
}

func (f FaultParams) maxAttempts() int {
	if f.MaxAttempts > 0 {
		return f.MaxAttempts
	}
	return defaultMaxAttempts
}

// outageEnd returns the end of the outage window containing t, if any.
func (f FaultParams) outageEnd(t time.Duration) (time.Duration, bool) {
	for _, o := range f.Outages {
		if t >= o.Start && t < o.End {
			return o.End, true
		}
	}
	return 0, false
}

// linkFaults is the mutable per-direction fault state: the configured
// parameters plus the Gilbert–Elliott chain position.
type linkFaults struct {
	p   FaultParams
	bad bool
}

// drop advances the GE chain (when configured) and draws the loss decision.
// Pure-outage configurations consume no random draws.
func (lf *linkFaults) drop(rng *rand.Rand) bool {
	p := &lf.p
	if p.PGoodBad > 0 || p.PBadGood > 0 {
		if lf.bad {
			if rng.Float64() < p.PBadGood {
				lf.bad = false
			}
		} else if rng.Float64() < p.PGoodBad {
			lf.bad = true
		}
	}
	rate := p.LossRate
	if lf.bad {
		rate = p.LossRateBad
	}
	if rate <= 0 {
		return false
	}
	return rng.Float64() < rate
}

// FaultStats aggregates injection outcomes across a Network.
type FaultStats struct {
	// Dropped counts transmission attempts the fault model discarded.
	Dropped int
	// Retransmits counts re-transmissions scheduled for dropped packets.
	Retransmits int
	// RetransmitBytes totals the wire bytes those re-transmissions resent.
	RetransmitBytes int64
	// ForcedDeliveries counts packets delivered despite a loss draw because
	// they hit the MaxAttempts cap.
	ForcedDeliveries int
	// OutageDeferrals counts departures pushed past an outage window.
	OutageDeferrals int
}

// SetFaults configures fault injection on the (already wired) path between a
// and b. Each direction gets independent Gilbert–Elliott state, so a burst on
// the downlink does not imply one on the uplink.
func (n *Network) SetFaults(a, b *Host, f FaultParams) {
	if err := f.Validate(); err != nil {
		panic(err)
	}
	setPeerFaults(a, b, f)
	setPeerFaults(b, a, f)
}

func setPeerFaults(h, to *Host, f FaultParams) {
	for i := range h.peers {
		if h.peers[i].to == to {
			if f.Active() {
				h.peers[i].faults = &linkFaults{p: f}
			} else {
				h.peers[i].faults = nil
			}
			return
		}
	}
	panic(fmt.Sprintf("simnet: SetFaults before SetPath between %q and %q", h.Name, to.Name))
}

// FaultStats returns the injection counters accumulated so far.
func (n *Network) FaultStats() FaultStats { return n.faultStats }

// pktRetransmit re-enters transmit for a packet whose previous attempt was
// lost; it runs as a scheduled event one RTO after the loss.
func pktRetransmit(v any) {
	p := v.(*packet)
	p.net.transmit(p.from, p.to, p)
}
