// Package simnet is a deterministic, discrete-event packet network
// simulator: hosts with asymmetric access-link bandwidth, point-to-point
// paths with propagation delay and jitter, and a TCP-flavoured reliable
// stream model (three-way handshake, slow start with IW10, delayed ACKs,
// in-order message delivery).
//
// It substitutes for the live LTE network of the PARCEL paper: packet
// timestamps recorded at a host are exactly what a tcpdump capture on the
// device would provide to the ARO energy tool, and the request/response
// round-trip structure reproduces the latency phenomena the paper measures.
//
// The simulator is message-oriented: applications send discrete messages
// over connections; the simulator segments them at MSS granularity, applies
// serialization at both access links, propagation delay and the congestion
// window, and delivers each message exactly once, in order, to the receiving
// host's handler.
package simnet

import (
	"fmt"
	"time"

	"github.com/parcel-go/parcel/internal/eventsim"
	"github.com/parcel-go/parcel/internal/trace"
)

const (
	// MSS is the maximum segment payload size.
	MSS = 1460
	// HeaderSize is the per-packet TCP/IP header overhead.
	HeaderSize = 40
	// AckSize is the wire size of a pure ACK.
	AckSize = HeaderSize
	// InitialCwnd is the initial congestion window in segments (IW10).
	InitialCwnd = 10
	// SlowStartThreshold is the cwnd (segments) at which growth switches
	// from exponential to additive.
	SlowStartThreshold = 32
	// MaxCwnd caps the congestion window (a 64 KB receive window).
	MaxCwnd = 44
	// delayedAckCount is how many data segments one ACK covers.
	delayedAckCount = 2
)

// HostConfig describes a host's access link.
type HostConfig struct {
	// UplinkBps and DownlinkBps are access-link bandwidths in bytes/second.
	// Zero means "infinite" (no serialization delay in that direction).
	UplinkBps   int64
	DownlinkBps int64
	// Recorder, when non-nil, captures every packet the host sends or
	// receives (sends are stamped at wire departure, receives at delivery).
	Recorder *trace.Recorder
}

// Host is a network endpoint.
type Host struct {
	Name string
	cfg  HostConfig
	net  *Network

	egressBusy  time.Duration
	ingressBusy time.Duration

	accept func(*Conn)
	dgram  func(from *Host, payload any, size int, at time.Duration)
}

// Network owns the hosts and the paths between them.
type Network struct {
	Sim        *eventsim.Simulator
	hosts      map[string]*Host
	paths      map[pathKey]PathParams
	nextConnID uint64
}

type pathKey struct{ a, b string }

func orderedKey(a, b string) pathKey {
	if a < b {
		return pathKey{a, b}
	}
	return pathKey{b, a}
}

// PathParams describes a point-to-point path.
type PathParams struct {
	// RTT is the base round-trip propagation delay (excluding serialization).
	RTT time.Duration
	// Jitter is the standard deviation of the per-packet one-way delay
	// noise; the noise is non-negative so packets are only ever late.
	Jitter time.Duration
}

// New creates an empty network on the given simulator.
func New(sim *eventsim.Simulator) *Network {
	return &Network{
		Sim:   sim,
		hosts: make(map[string]*Host),
		paths: make(map[pathKey]PathParams),
	}
}

// AddHost registers a host. Duplicate names panic: topology wiring is
// programmer-controlled and a duplicate is always a bug.
func (n *Network) AddHost(name string, cfg HostConfig) *Host {
	if _, ok := n.hosts[name]; ok {
		panic(fmt.Sprintf("simnet: duplicate host %q", name))
	}
	h := &Host{Name: name, cfg: cfg, net: n}
	n.hosts[name] = h
	return h
}

// Host looks up a host by name, or nil.
func (n *Network) Host(name string) *Host { return n.hosts[name] }

// SetPath wires a bidirectional path between two hosts.
func (n *Network) SetPath(a, b *Host, p PathParams) {
	if a == b {
		panic("simnet: path to self")
	}
	n.paths[orderedKey(a.Name, b.Name)] = p
}

// PathBetween returns the path parameters between two hosts; it panics if the
// pair was never wired, which catches topology mistakes at their source.
func (n *Network) PathBetween(a, b *Host) PathParams {
	p, ok := n.paths[orderedKey(a.Name, b.Name)]
	if !ok {
		panic(fmt.Sprintf("simnet: no path between %q and %q", a.Name, b.Name))
	}
	return p
}

// packet is an in-flight wire packet.
type packet struct {
	size    int // wire bytes including headers
	kind    trace.Kind
	connID  uint64
	label   string
	payload any
	arrive  func(at time.Duration) // invoked at delivery on the receiving side
}

// transmit pushes a packet through from's egress queue, the propagation
// path, and to's ingress queue, then invokes pkt.arrive. It models FIFO
// serialization at both access links, which is what makes concurrent
// connections share bandwidth.
func (n *Network) transmit(from, to *Host, pkt packet) {
	now := n.Sim.Now()
	path := n.PathBetween(from, to)

	depart := now
	if depart < from.egressBusy {
		depart = from.egressBusy
	}
	var serialize time.Duration
	if from.cfg.UplinkBps > 0 {
		serialize = time.Duration(float64(pkt.size) / float64(from.cfg.UplinkBps) * float64(time.Second))
	}
	depart += serialize
	from.egressBusy = depart

	if from.cfg.Recorder != nil {
		from.cfg.Recorder.Record(trace.Packet{
			At: depart, Size: pkt.size, Dir: trace.Up, Kind: pkt.kind,
			Conn: pkt.connID, Label: pkt.label,
		})
	}

	prop := path.RTT / 2
	if path.Jitter > 0 {
		noise := n.Sim.Rand().NormFloat64() * float64(path.Jitter)
		if noise < 0 {
			noise = -noise
		}
		prop += time.Duration(noise)
	}
	arriveIngress := depart + prop

	n.Sim.ScheduleAt(arriveIngress, func() {
		deliver := n.Sim.Now()
		if deliver < to.ingressBusy {
			deliver = to.ingressBusy
		}
		if to.cfg.DownlinkBps > 0 {
			deliver += time.Duration(float64(pkt.size) / float64(to.cfg.DownlinkBps) * float64(time.Second))
		}
		to.ingressBusy = deliver
		n.Sim.ScheduleAt(deliver, func() {
			if to.cfg.Recorder != nil {
				to.cfg.Recorder.Record(trace.Packet{
					At: deliver, Size: pkt.size, Dir: trace.Down, Kind: pkt.kind,
					Conn: pkt.connID, Label: pkt.label,
				})
			}
			if pkt.arrive != nil {
				pkt.arrive(deliver)
			}
		})
	})
}

// SendDatagram delivers a single connectionless packet (the DNS substrate
// uses this). size is the wire size; onDelivered may be nil.
func (h *Host) SendDatagram(to *Host, size int, payload any, onDelivered func(at time.Duration)) {
	h.net.transmit(h, to, packet{
		size: size, kind: trace.KindDNS, payload: payload,
		arrive: func(at time.Duration) {
			if to.dgram != nil {
				to.dgram(h, payload, size, at)
			}
			if onDelivered != nil {
				onDelivered(at)
			}
		},
	})
}

// HandleDatagrams registers the host's datagram handler.
func (h *Host) HandleDatagrams(fn func(from *Host, payload any, size int, at time.Duration)) {
	h.dgram = fn
}

// Listen registers the host's connection-accept handler. The handler runs
// when a remote SYN arrives, before the SYN-ACK is sent, so the server can
// register its message handler on the new connection.
func (h *Host) Listen(fn func(*Conn)) { h.accept = fn }

// Message is a received application message.
type Message struct {
	Payload any
	Size    int
	At      time.Duration
}

// Conn is a reliable, in-order, message-preserving bidirectional stream
// between two hosts, with TCP-like congestion behaviour per direction.
type Conn struct {
	ID          uint64
	net         *Network
	initiator   *Host
	responder   *Host
	established bool
	closed      bool

	// one sender state per direction
	toResponder *sender // initiator -> responder
	toInitiator *sender // responder -> initiator

	onMessage map[string]func(Message) // keyed by receiving host name

	pendingDial []func() // sends queued before the handshake completed
}

// sender is per-direction TCP sender state.
type sender struct {
	conn     *Conn
	from, to *Host

	cwnd     float64
	inflight int
	queue    []*outMsg

	unackedSegs int // data segments received but not yet ACKed (receiver side bookkeeping kept at sender's peer)
}

type outMsg struct {
	size      int
	remaining int // bytes not yet handed to the wire
	undeliv   int // bytes not yet arrived at receiver
	payload   any
	label     string
	delivered func(at time.Duration)
}

// Dial opens a connection from h to remote. onEstablished runs at h when the
// SYN-ACK arrives (one RTT later); queued Sends flush at that point.
func (h *Host) Dial(remote *Host, onEstablished func(*Conn)) *Conn {
	n := h.net
	n.nextConnID++
	c := &Conn{
		ID:        n.nextConnID,
		net:       n,
		initiator: h,
		responder: remote,
		onMessage: make(map[string]func(Message)),
	}
	c.toResponder = &sender{conn: c, from: h, to: remote, cwnd: InitialCwnd}
	c.toInitiator = &sender{conn: c, from: remote, to: h, cwnd: InitialCwnd}

	n.transmit(h, remote, packet{
		size: HeaderSize, kind: trace.KindSYN, connID: c.ID,
		arrive: func(at time.Duration) {
			if remote.accept != nil {
				remote.accept(c)
			}
			n.transmit(remote, h, packet{
				size: HeaderSize, kind: trace.KindSYNACK, connID: c.ID,
				arrive: func(at time.Duration) {
					c.established = true
					if onEstablished != nil {
						onEstablished(c)
					}
					for _, fn := range c.pendingDial {
						fn()
					}
					c.pendingDial = nil
				},
			})
		},
	})
	return c
}

// Initiator returns the dialing host.
func (c *Conn) Initiator() *Host { return c.initiator }

// Responder returns the accepting host.
func (c *Conn) Responder() *Host { return c.responder }

// Peer returns the other endpoint relative to h.
func (c *Conn) Peer(h *Host) *Host {
	if h == c.initiator {
		return c.responder
	}
	if h == c.responder {
		return c.initiator
	}
	panic(fmt.Sprintf("simnet: host %q not on conn %d", h.Name, c.ID))
}

// OnMessage registers the handler invoked for every message delivered to at.
func (c *Conn) OnMessage(at *Host, fn func(Message)) {
	if at != c.initiator && at != c.responder {
		panic(fmt.Sprintf("simnet: host %q not on conn %d", at.Name, c.ID))
	}
	c.onMessage[at.Name] = fn
}

// Send queues a message of size bytes from host `from` to its peer. The
// message is segmented at MSS; onDelivered (optional) fires at the receiver
// when the last byte arrives. label annotates the packets in traces.
func (c *Conn) Send(from *Host, size int, payload any, label string, onDelivered func(at time.Duration)) {
	if c.closed {
		panic(fmt.Sprintf("simnet: send on closed conn %d", c.ID))
	}
	if size <= 0 {
		panic(fmt.Sprintf("simnet: message size %d", size))
	}
	s := c.senderFrom(from)
	msg := &outMsg{size: size, remaining: size, undeliv: size, payload: payload, label: label, delivered: onDelivered}
	doSend := func() {
		s.queue = append(s.queue, msg)
		s.pump()
	}
	// The responder may reply on a connection whose SYN-ACK is still in
	// flight back to the initiator (TCP allows data right after SYN-ACK);
	// only the initiator must wait for establishment.
	if !c.established && from == c.initiator {
		c.pendingDial = append(c.pendingDial, doSend)
		return
	}
	doSend()
}

func (c *Conn) senderFrom(from *Host) *sender {
	switch from {
	case c.initiator:
		return c.toResponder
	case c.responder:
		return c.toInitiator
	default:
		panic(fmt.Sprintf("simnet: host %q not on conn %d", from.Name, c.ID))
	}
}

// Close sends a FIN in both directions (best-effort; no time-wait modeling).
func (c *Conn) Close() {
	if c.closed {
		return
	}
	c.closed = true
	c.net.transmit(c.initiator, c.responder, packet{size: HeaderSize, kind: trace.KindFIN, connID: c.ID})
	c.net.transmit(c.responder, c.initiator, packet{size: HeaderSize, kind: trace.KindFIN, connID: c.ID})
}

// Closed reports whether Close was called.
func (c *Conn) Closed() bool { return c.closed }

// pump transmits as many segments as the congestion window allows.
func (s *sender) pump() {
	for s.inflight < int(s.cwnd) && len(s.queue) > 0 {
		head := s.queue[0]
		segPayload := head.remaining
		if segPayload > MSS {
			segPayload = MSS
		}
		head.remaining -= segPayload
		isMsgLast := head.remaining == 0
		if isMsgLast {
			// Move the head out of the send queue; delivery bookkeeping
			// continues via the closure below.
			s.queue = s.queue[1:]
		}
		s.inflight++
		msg := head
		s.conn.net.transmit(s.from, s.to, packet{
			size: segPayload + HeaderSize, kind: trace.KindData,
			connID: s.conn.ID, label: msg.label,
			arrive: func(at time.Duration) {
				s.onSegmentArrived(msg, segPayload, isMsgLast, at)
			},
		})
	}
}

// onSegmentArrived runs at the receiver when a data segment lands.
func (s *sender) onSegmentArrived(msg *outMsg, segPayload int, isMsgLast bool, at time.Duration) {
	msg.undeliv -= segPayload
	if msg.undeliv == 0 {
		if handler := s.conn.onMessage[s.to.Name]; handler != nil {
			handler(Message{Payload: msg.payload, Size: msg.size, At: at})
		}
		if msg.delivered != nil {
			msg.delivered(at)
		}
	}
	// Delayed ACK: one ACK per delayedAckCount segments, flushed immediately
	// when a message completes (mirrors the TCP quickack-on-PSH behaviour).
	s.unackedSegs++
	if s.unackedSegs >= delayedAckCount || isMsgLast {
		covered := s.unackedSegs
		s.unackedSegs = 0
		s.conn.net.transmit(s.to, s.from, packet{
			size: AckSize, kind: trace.KindACK, connID: s.conn.ID,
			arrive: func(time.Duration) { s.onAck(covered) },
		})
	}
}

// onAck runs at the sender when an ACK covering `covered` segments arrives.
func (s *sender) onAck(covered int) {
	s.inflight -= covered
	if s.inflight < 0 {
		s.inflight = 0
	}
	for i := 0; i < covered; i++ {
		if s.cwnd < SlowStartThreshold {
			s.cwnd++
		} else {
			s.cwnd += 1 / s.cwnd
		}
		if s.cwnd > MaxCwnd {
			s.cwnd = MaxCwnd
			break
		}
	}
	s.pump()
}

// Cwnd exposes the current congestion window of the direction from `from`,
// in segments (for tests and instrumentation).
func (c *Conn) Cwnd(from *Host) float64 { return c.senderFrom(from).cwnd }
