// Package simnet is a deterministic, discrete-event packet network
// simulator: hosts with asymmetric access-link bandwidth, point-to-point
// paths with propagation delay and jitter, and a TCP-flavoured reliable
// stream model (three-way handshake, slow start with IW10, delayed ACKs,
// in-order message delivery).
//
// It substitutes for the live LTE network of the PARCEL paper: packet
// timestamps recorded at a host are exactly what a tcpdump capture on the
// device would provide to the ARO energy tool, and the request/response
// round-trip structure reproduces the latency phenomena the paper measures.
//
// The simulator is message-oriented: applications send discrete messages
// over connections; the simulator segments them at MSS granularity, applies
// serialization at both access links, propagation delay and the congestion
// window, and delivers each message exactly once, in order, to the receiving
// host's handler.
//
// Memory discipline: the per-segment data path is allocation-free. Wire
// packets and in-flight messages are drawn from per-Network free lists backed
// by arena blocks, delivery continuations are encoded as typed packet fields
// dispatched by package-level functions (no per-packet closures), and path
// parameters are cached per host so the per-packet lookup never hashes.
// A packet is owned by the network from transmit until its delivery dispatch
// runs, then returns to the free list; build with -tags simdebug to turn
// that ownership contract into a double-free panic check.
package simnet

import (
	"fmt"
	"time"

	"github.com/parcel-go/parcel/internal/eventsim"
	"github.com/parcel-go/parcel/internal/trace"
)

const (
	// MSS is the maximum segment payload size.
	MSS = 1460
	// HeaderSize is the per-packet TCP/IP header overhead.
	HeaderSize = 40
	// AckSize is the wire size of a pure ACK.
	AckSize = HeaderSize
	// InitialCwnd is the initial congestion window in segments (IW10).
	InitialCwnd = 10
	// SlowStartThreshold is the cwnd (segments) at which growth switches
	// from exponential to additive.
	SlowStartThreshold = 32
	// MaxCwnd caps the congestion window (a 64 KB receive window).
	MaxCwnd = 44
	// delayedAckCount is how many data segments one ACK covers.
	delayedAckCount = 2
)

// HostConfig describes a host's access link.
type HostConfig struct {
	// UplinkBps and DownlinkBps are access-link bandwidths in bytes/second.
	// Zero means "infinite" (no serialization delay in that direction).
	UplinkBps   int64
	DownlinkBps int64
	// Recorder, when non-nil, captures every packet the host sends or
	// receives (sends are stamped at wire departure, receives at delivery).
	Recorder *trace.Recorder
}

// peerPath caches the path parameters toward one directly wired peer, so the
// per-packet lookup is a short pointer scan instead of a map hash on a
// composite string key. Topologies wire a handful of paths per host, so the
// scan beats hashing even before the allocation the map key used to cost.
// faults, when non-nil, holds this direction's injection state (SetFaults).
type peerPath struct {
	to     *Host
	params PathParams
	faults *linkFaults
}

// Host is a network endpoint.
type Host struct {
	Name string
	cfg  HostConfig
	net  *Network

	egressBusy  time.Duration
	ingressBusy time.Duration

	peers []peerPath

	accept func(*Conn)
	dgram  func(from *Host, payload any, size int, at time.Duration)
}

// peerTo returns the cached path entry toward to; it panics if the pair was
// never wired, which catches topology mistakes at their source.
func (h *Host) peerTo(to *Host) *peerPath {
	for i := range h.peers {
		if h.peers[i].to == to {
			return &h.peers[i]
		}
	}
	panic(fmt.Sprintf("simnet: no path between %q and %q", h.Name, to.Name))
}

// Network owns the hosts and the paths between them.
type Network struct {
	Sim        *eventsim.Simulator
	hosts      map[string]*Host
	paths      map[pathKey]PathParams
	nextConnID uint64

	// free lists + arena blocks for the allocation-free data path,
	// optionally shared across networks (see Pools).
	pools *Pools

	faultStats FaultStats
}

// Pools holds the packet and message free lists plus their arena blocks.
// One Pools can back many Networks as long as they all run on the same
// goroutine (a batch of interleaved page simulations per worker): a released
// object is fully zeroed before it reaches the free list, so whichever
// network pops it next starts from a clean slate. Pools is not safe for
// concurrent use.
type Pools struct {
	pktArena []packet
	pktFree  *packet
	msgArena []outMsg
	msgFree  *outMsg
}

// NewPools returns an empty packet/message pool.
func NewPools() *Pools { return &Pools{} }

type pathKey struct{ a, b string }

func orderedKey(a, b string) pathKey {
	if a < b {
		return pathKey{a, b}
	}
	return pathKey{b, a}
}

// PathParams describes a point-to-point path.
type PathParams struct {
	// RTT is the base round-trip propagation delay (excluding serialization).
	RTT time.Duration
	// Jitter is the standard deviation of the per-packet one-way delay
	// noise; the noise is non-negative so packets are only ever late.
	Jitter time.Duration
}

// New creates an empty network on the given simulator with a private pool.
func New(sim *eventsim.Simulator) *Network { return NewWithPools(sim, nil) }

// NewWithPools is New drawing packets and messages from p (nil for a private
// pool). Sharing one Pools across the networks of a simulation batch lets a
// finished page's packets feed the next page's data path.
func NewWithPools(sim *eventsim.Simulator, p *Pools) *Network {
	if p == nil {
		p = NewPools()
	}
	return &Network{
		Sim:   sim,
		hosts: make(map[string]*Host),
		paths: make(map[pathKey]PathParams),
		pools: p,
	}
}

// AddHost registers a host. Duplicate names panic: topology wiring is
// programmer-controlled and a duplicate is always a bug.
func (n *Network) AddHost(name string, cfg HostConfig) *Host {
	if _, ok := n.hosts[name]; ok {
		panic(fmt.Sprintf("simnet: duplicate host %q", name))
	}
	h := &Host{Name: name, cfg: cfg, net: n}
	n.hosts[name] = h
	return h
}

// Host looks up a host by name, or nil.
func (n *Network) Host(name string) *Host { return n.hosts[name] }

// SetPath wires a bidirectional path between two hosts.
func (n *Network) SetPath(a, b *Host, p PathParams) {
	if a == b {
		panic("simnet: path to self")
	}
	n.paths[orderedKey(a.Name, b.Name)] = p
	setPeer(a, b, p)
	setPeer(b, a, p)
}

func setPeer(h, to *Host, p PathParams) {
	for i := range h.peers {
		if h.peers[i].to == to {
			h.peers[i].params = p
			return
		}
	}
	h.peers = append(h.peers, peerPath{to: to, params: p})
}

// PathBetween returns the path parameters between two hosts; it panics if the
// pair was never wired, which catches topology mistakes at their source.
func (n *Network) PathBetween(a, b *Host) PathParams {
	p, ok := n.paths[orderedKey(a.Name, b.Name)]
	if !ok {
		panic(fmt.Sprintf("simnet: no path between %q and %q", a.Name, b.Name))
	}
	return p
}

// packet is an in-flight wire packet, pooled per Network. The delivery
// continuation lives in typed fields: data segments and ACKs carry their
// sender-side state directly (the allocation-free fast path), everything else
// (handshake, FIN, datagrams) uses the generic arrive callback.
//
//parcelvet:pooled
type packet struct {
	net      *Network
	from, to *Host

	size    int // wire bytes including headers
	kind    trace.Kind
	connID  uint64
	label   string
	payload any
	arrive  func(at time.Duration) // generic continuation, may be nil

	// data-path continuation (set instead of arrive on the fast path)
	sender     *sender
	msg        *outMsg
	segPayload int
	isMsgLast  bool
	ackCovered int

	deliverAt time.Duration
	attempts  uint8 // transmissions lost so far (fault injection)

	nextFree *packet
	pooled   bool // true while on the free list (double-free detection)
}

const poolBlockSize = 64

// newPacket pops a packet off the free list, or carves one from the arena.
// The returned packet is zeroed except for bookkeeping fields.
func (n *Network) newPacket() *packet {
	pl := n.pools
	if p := pl.pktFree; p != nil {
		pl.pktFree = p.nextFree
		p.nextFree = nil
		p.pooled = false
		return p
	}
	if len(pl.pktArena) == 0 {
		pl.pktArena = make([]packet, poolBlockSize)
	}
	p := &pl.pktArena[0]
	pl.pktArena = pl.pktArena[1:]
	return p
}

// releasePacket returns p to the free list, dropping every reference it
// holds. Releasing a packet twice corrupts the free list; build with
// -tags simdebug to panic at the offending call site instead.
func (n *Network) releasePacket(p *packet) {
	checkPacketFree(p)
	*p = packet{nextFree: n.pools.pktFree, pooled: true}
	n.pools.pktFree = p
}

// newOutMsg pops an in-flight message off the free list or the arena.
func (n *Network) newOutMsg() *outMsg {
	pl := n.pools
	if m := pl.msgFree; m != nil {
		pl.msgFree = m.nextFree
		m.nextFree = nil
		m.pooled = false
		return m
	}
	if len(pl.msgArena) == 0 {
		pl.msgArena = make([]outMsg, poolBlockSize)
	}
	m := &pl.msgArena[0]
	pl.msgArena = pl.msgArena[1:]
	return m
}

// releaseOutMsg returns m to the free list once its last byte was delivered.
func (n *Network) releaseOutMsg(m *outMsg) {
	checkOutMsgFree(m)
	*m = outMsg{nextFree: n.pools.msgFree, pooled: true}
	n.pools.msgFree = m
}

// transmit pushes a packet through from's egress queue, the propagation
// path, and to's ingress queue, then runs its delivery continuation. It
// models FIFO serialization at both access links, which is what makes
// concurrent connections share bandwidth. The packet must come from
// newPacket; transmit owns it until delivery dispatch releases it.
func (n *Network) transmit(from, to *Host, pkt *packet) {
	now := n.Sim.Now()
	pp := from.peerTo(to)
	path := pp.params

	depart := now
	if depart < from.egressBusy {
		depart = from.egressBusy
	}
	var serialize time.Duration
	if from.cfg.UplinkBps > 0 {
		serialize = time.Duration(float64(pkt.size) / float64(from.cfg.UplinkBps) * float64(time.Second))
	}
	depart += serialize
	if pp.faults != nil {
		// During an outage window the link carries nothing: the packet (and,
		// via egressBusy, everything queued behind it) departs when the
		// window ends.
		if end, down := pp.faults.p.outageEnd(depart); down {
			n.faultStats.OutageDeferrals++
			depart = end
		}
	}
	from.egressBusy = depart

	if from.cfg.Recorder != nil {
		from.cfg.Recorder.Record(trace.Packet{
			At: depart, Size: pkt.size, Dir: trace.Up, Kind: pkt.kind,
			Conn: pkt.connID, Label: pkt.label,
		})
	}

	if lf := pp.faults; lf != nil && lf.drop(n.Sim.Rand()) {
		n.faultStats.Dropped++
		if int(pkt.attempts) < lf.p.maxAttempts() {
			// The attempt consumed the uplink (recorded above) but never
			// reaches the receiver: re-transmit the same pooled packet after
			// an exponentially backed-off RTO.
			pkt.attempts++
			n.faultStats.Retransmits++
			n.faultStats.RetransmitBytes += int64(pkt.size)
			shift := uint(pkt.attempts - 1)
			if shift > maxRTOBackoffShift {
				shift = maxRTOBackoffShift
			}
			pkt.net = n
			pkt.from = from
			pkt.to = to
			n.Sim.ScheduleArgAt(depart+lf.p.rto()<<shift, pktRetransmit, pkt)
			return
		}
		// MaxAttempts losses in a row: deliver anyway so the simulation
		// terminates even under LossRate 1 inside an experiment.
		n.faultStats.ForcedDeliveries++
	}

	prop := path.RTT / 2
	if path.Jitter > 0 {
		noise := n.Sim.Rand().NormFloat64() * float64(path.Jitter)
		if noise < 0 {
			noise = -noise
		}
		prop += time.Duration(noise)
	}

	pkt.net = n
	pkt.from = from
	pkt.to = to
	n.Sim.ScheduleArgAt(depart+prop, pktIngress, pkt)
}

// pktIngress runs when a packet reaches the receiver's access link: it queues
// behind earlier arrivals (FIFO ingress serialization) and schedules the
// delivery instant.
func pktIngress(v any) {
	p := v.(*packet)
	n := p.net
	to := p.to
	deliver := n.Sim.Now()
	if deliver < to.ingressBusy {
		deliver = to.ingressBusy
	}
	if to.cfg.DownlinkBps > 0 {
		deliver += time.Duration(float64(p.size) / float64(to.cfg.DownlinkBps) * float64(time.Second))
	}
	to.ingressBusy = deliver
	p.deliverAt = deliver
	n.Sim.ScheduleArgAt(deliver, pktDeliver, p)
}

// pktDeliver records the arrival, releases the packet, and runs its
// continuation. The continuation state is copied to locals first so the
// packet can be reused by sends the continuation itself triggers.
func pktDeliver(v any) {
	p := v.(*packet)
	n := p.net
	to := p.to
	at := p.deliverAt
	if to.cfg.Recorder != nil {
		to.cfg.Recorder.Record(trace.Packet{
			At: at, Size: p.size, Dir: trace.Down, Kind: p.kind,
			Conn: p.connID, Label: p.label,
		})
	}
	switch {
	case p.sender != nil && p.kind == trace.KindData:
		s, msg, seg, last := p.sender, p.msg, p.segPayload, p.isMsgLast
		n.releasePacket(p)
		s.onSegmentArrived(msg, seg, last, at)
	case p.sender != nil && p.kind == trace.KindACK:
		s, covered := p.sender, p.ackCovered
		n.releasePacket(p)
		s.onAck(covered)
	default:
		arrive := p.arrive
		n.releasePacket(p)
		if arrive != nil {
			arrive(at)
		}
	}
}

// SendDatagram delivers a single connectionless packet (the DNS substrate
// uses this). size is the wire size; onDelivered may be nil.
func (h *Host) SendDatagram(to *Host, size int, payload any, onDelivered func(at time.Duration)) {
	p := h.net.newPacket()
	p.size = size
	p.kind = trace.KindDNS
	p.payload = payload
	from := h
	p.arrive = func(at time.Duration) {
		if to.dgram != nil {
			to.dgram(from, payload, size, at)
		}
		if onDelivered != nil {
			onDelivered(at)
		}
	}
	h.net.transmit(h, to, p)
}

// HandleDatagrams registers the host's datagram handler.
func (h *Host) HandleDatagrams(fn func(from *Host, payload any, size int, at time.Duration)) {
	h.dgram = fn
}

// Listen registers the host's connection-accept handler. The handler runs
// when a remote SYN arrives, before the SYN-ACK is sent, so the server can
// register its message handler on the new connection.
func (h *Host) Listen(fn func(*Conn)) { h.accept = fn }

// Message is a received application message.
type Message struct {
	Payload any
	Size    int
	At      time.Duration
}

// Conn is a reliable, in-order, message-preserving bidirectional stream
// between two hosts, with TCP-like congestion behaviour per direction.
// The two per-direction sender states are embedded so a Dial costs a single
// allocation.
type Conn struct {
	ID          uint64
	net         *Network
	initiator   *Host
	responder   *Host
	established bool
	closed      bool

	// one sender state per direction
	sndToResponder sender // initiator -> responder
	sndToInitiator sender // responder -> initiator

	// message handlers, one per endpoint (replaces a per-conn map)
	msgAtInitiator func(Message)
	msgAtResponder func(Message)

	pendingDial []func() // sends queued before the handshake completed
}

// sender is per-direction TCP sender state.
type sender struct {
	conn     *Conn
	from, to *Host

	cwnd     float64
	inflight int
	queue    []*outMsg
	// queueBuf is the queue's inline first backing: most senders hold only
	// a couple of undelivered messages at a time, so seeding queue from
	// here (and resetting to it whenever the queue drains) spares fresh
	// connections a heap slice per direction per send burst.
	queueBuf [4]*outMsg

	unackedSegs int // data segments received but not yet ACKed (receiver side bookkeeping kept at sender's peer)
}

// outMsg is an in-flight application message, pooled per Network: it returns
// to the free list when its last byte is delivered.
//
//parcelvet:pooled
type outMsg struct {
	size      int
	remaining int // bytes not yet handed to the wire
	undeliv   int // bytes not yet arrived at receiver
	payload   any
	label     string
	delivered func(at time.Duration)

	nextFree *outMsg
	pooled   bool
}

// Dial opens a connection from h to remote. onEstablished runs at h when the
// SYN-ACK arrives (one RTT later); queued Sends flush at that point.
func (h *Host) Dial(remote *Host, onEstablished func(*Conn)) *Conn {
	n := h.net
	n.nextConnID++
	c := &Conn{
		ID:        n.nextConnID,
		net:       n,
		initiator: h,
		responder: remote,
	}
	c.sndToResponder = sender{conn: c, from: h, to: remote, cwnd: InitialCwnd}
	c.sndToInitiator = sender{conn: c, from: remote, to: h, cwnd: InitialCwnd}
	c.sndToResponder.queue = c.sndToResponder.queueBuf[:0]
	c.sndToInitiator.queue = c.sndToInitiator.queueBuf[:0]

	syn := n.newPacket()
	syn.size = HeaderSize
	syn.kind = trace.KindSYN
	syn.connID = c.ID
	syn.arrive = func(at time.Duration) {
		if remote.accept != nil {
			remote.accept(c)
		}
		synack := n.newPacket()
		synack.size = HeaderSize
		synack.kind = trace.KindSYNACK
		synack.connID = c.ID
		synack.arrive = func(at time.Duration) {
			c.established = true
			if onEstablished != nil {
				onEstablished(c)
			}
			for _, fn := range c.pendingDial {
				fn()
			}
			c.pendingDial = nil
		}
		n.transmit(remote, h, synack)
	}
	n.transmit(h, remote, syn)
	return c
}

// Initiator returns the dialing host.
func (c *Conn) Initiator() *Host { return c.initiator }

// Responder returns the accepting host.
func (c *Conn) Responder() *Host { return c.responder }

// Peer returns the other endpoint relative to h.
func (c *Conn) Peer(h *Host) *Host {
	if h == c.initiator {
		return c.responder
	}
	if h == c.responder {
		return c.initiator
	}
	panic(fmt.Sprintf("simnet: host %q not on conn %d", h.Name, c.ID))
}

// OnMessage registers the handler invoked for every message delivered to at.
func (c *Conn) OnMessage(at *Host, fn func(Message)) {
	switch at {
	case c.initiator:
		c.msgAtInitiator = fn
	case c.responder:
		c.msgAtResponder = fn
	default:
		panic(fmt.Sprintf("simnet: host %q not on conn %d", at.Name, c.ID))
	}
}

// handlerAt returns the message handler registered for deliveries at h.
func (c *Conn) handlerAt(h *Host) func(Message) {
	if h == c.initiator {
		return c.msgAtInitiator
	}
	return c.msgAtResponder
}

// Send queues a message of size bytes from host `from` to its peer. The
// message is segmented at MSS; onDelivered (optional) fires at the receiver
// when the last byte arrives. label annotates the packets in traces.
func (c *Conn) Send(from *Host, size int, payload any, label string, onDelivered func(at time.Duration)) {
	if c.closed {
		panic(fmt.Sprintf("simnet: send on closed conn %d", c.ID))
	}
	if size <= 0 {
		panic(fmt.Sprintf("simnet: message size %d", size))
	}
	s := c.senderFrom(from)
	msg := c.net.newOutMsg()
	msg.size = size
	msg.remaining = size
	msg.undeliv = size
	msg.payload = payload
	msg.label = label
	msg.delivered = onDelivered
	// The responder may reply on a connection whose SYN-ACK is still in
	// flight back to the initiator (TCP allows data right after SYN-ACK);
	// only the initiator must wait for establishment.
	if !c.established && from == c.initiator {
		//parcelvet:allow pooldiscipline(ownership of msg is parked, not shared: the SYN-ACK continuation drains pendingDial exactly once and hands msg to the queue, which releases it on delivery)
		c.pendingDial = append(c.pendingDial, func() {
			s.queue = append(s.queue, msg)
			s.pump()
		})
		return
	}
	s.queue = append(s.queue, msg)
	s.pump()
}

func (c *Conn) senderFrom(from *Host) *sender {
	switch from {
	case c.initiator:
		return &c.sndToResponder
	case c.responder:
		return &c.sndToInitiator
	default:
		panic(fmt.Sprintf("simnet: host %q not on conn %d", from.Name, c.ID))
	}
}

// Close sends a FIN in both directions (best-effort; no time-wait modeling).
func (c *Conn) Close() {
	if c.closed {
		return
	}
	c.closed = true
	fin1 := c.net.newPacket()
	fin1.size = HeaderSize
	fin1.kind = trace.KindFIN
	fin1.connID = c.ID
	c.net.transmit(c.initiator, c.responder, fin1)
	fin2 := c.net.newPacket()
	fin2.size = HeaderSize
	fin2.kind = trace.KindFIN
	fin2.connID = c.ID
	c.net.transmit(c.responder, c.initiator, fin2)
}

// Closed reports whether Close was called.
func (c *Conn) Closed() bool { return c.closed }

// pump transmits as many segments as the congestion window allows. Each
// segment is a pooled packet carrying its continuation in typed fields —
// no per-segment closure.
func (s *sender) pump() {
	for s.inflight < int(s.cwnd) && len(s.queue) > 0 {
		head := s.queue[0]
		segPayload := head.remaining
		if segPayload > MSS {
			segPayload = MSS
		}
		head.remaining -= segPayload
		isMsgLast := head.remaining == 0
		if isMsgLast {
			// Move the head out of the send queue; delivery bookkeeping
			// continues via the packet's msg reference.
			s.queue = s.queue[1:]
			if len(s.queue) == 0 {
				// Rewind a drained queue onto the inline buffer so the next
				// burst appends in place instead of growing off the slid
				// window (a fresh heap slice per burst).
				s.queue = s.queueBuf[:0]
			}
		}
		s.inflight++
		n := s.conn.net
		p := n.newPacket()
		p.size = segPayload + HeaderSize
		p.kind = trace.KindData
		p.connID = s.conn.ID
		p.label = head.label
		p.sender = s
		p.msg = head
		p.segPayload = segPayload
		p.isMsgLast = isMsgLast
		n.transmit(s.from, s.to, p)
	}
}

// onSegmentArrived runs at the receiver when a data segment lands.
func (s *sender) onSegmentArrived(msg *outMsg, segPayload int, isMsgLast bool, at time.Duration) {
	msg.undeliv -= segPayload
	if msg.undeliv == 0 {
		if handler := s.conn.handlerAt(s.to); handler != nil {
			handler(Message{Payload: msg.payload, Size: msg.size, At: at})
		}
		if msg.delivered != nil {
			msg.delivered(at)
		}
		s.conn.net.releaseOutMsg(msg)
	}
	// Delayed ACK: one ACK per delayedAckCount segments, flushed immediately
	// when a message completes (mirrors the TCP quickack-on-PSH behaviour).
	s.unackedSegs++
	if s.unackedSegs >= delayedAckCount || isMsgLast {
		covered := s.unackedSegs
		s.unackedSegs = 0
		n := s.conn.net
		p := n.newPacket()
		p.size = AckSize
		p.kind = trace.KindACK
		p.connID = s.conn.ID
		p.sender = s
		p.ackCovered = covered
		n.transmit(s.to, s.from, p)
	}
}

// onAck runs at the sender when an ACK covering `covered` segments arrives.
func (s *sender) onAck(covered int) {
	s.inflight -= covered
	if s.inflight < 0 {
		s.inflight = 0
	}
	for i := 0; i < covered; i++ {
		if s.cwnd < SlowStartThreshold {
			s.cwnd++
		} else {
			s.cwnd += 1 / s.cwnd
		}
		if s.cwnd > MaxCwnd {
			s.cwnd = MaxCwnd
			break
		}
	}
	s.pump()
}

// Cwnd exposes the current congestion window of the direction from `from`,
// in segments (for tests and instrumentation).
func (c *Conn) Cwnd(from *Host) float64 { return c.senderFrom(from).cwnd }
