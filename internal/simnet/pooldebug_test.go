//go:build simdebug

package simnet

import (
	"testing"

	"github.com/parcel-go/parcel/internal/eventsim"
)

// These tests only exist under -tags simdebug: they prove the pool ownership
// checks actually fire. In normal builds the checks compile to nothing, so
// there is nothing to test there.

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic, got none", name)
		}
	}()
	fn()
}

func TestDoubleFreePacketPanics(t *testing.T) {
	n := New(eventsim.New(1))
	p := n.newPacket()
	n.releasePacket(p)
	mustPanic(t, "double releasePacket", func() { n.releasePacket(p) })
}

func TestDoubleFreeOutMsgPanics(t *testing.T) {
	n := New(eventsim.New(1))
	m := n.newOutMsg()
	n.releaseOutMsg(m)
	mustPanic(t, "double releaseOutMsg", func() { n.releaseOutMsg(m) })
}

// TestPoolReuseAfterFree sanity-checks the happy path under the debug
// build: allocate, free, re-allocate — the recycled object must come back
// with the pooled flag cleared so a later legitimate free succeeds.
func TestPoolReuseAfterFree(t *testing.T) {
	n := New(eventsim.New(1))
	p := n.newPacket()
	n.releasePacket(p)
	q := n.newPacket()
	if q != p {
		t.Fatal("free list did not recycle the released packet")
	}
	if q.pooled {
		t.Fatal("recycled packet still marked pooled")
	}
	n.releasePacket(q) // must not panic
}
