//go:build !simdebug

package simnet

// checkPacketFree and checkOutMsgFree enforce the pool ownership contract
// (no double frees). In normal builds they compile to nothing; build with
// -tags simdebug to make a double free panic (see pooldebug_on.go).

func checkPacketFree(*packet) {}

func checkOutMsgFree(*outMsg) {}
