package simnet

import (
	"fmt"
	"testing"
	"time"

	"github.com/parcel-go/parcel/internal/eventsim"
	"github.com/parcel-go/parcel/internal/trace"
)

// TestPoolingStressManyConns hammers the packet/outMsg pools: many
// concurrent connections exchanging many messages each, with per-message
// payload identity checks. Because packets and outMsgs are recycled through
// free lists, the bug this guards against is aliasing — a pooled object
// released too early and reused while a continuation still points at it
// would deliver the wrong payload, duplicate a message, or lose one. Run
// under -race in CI, it also proves the pools never smuggle simulator state
// across goroutines.
func TestPoolingStressManyConns(t *testing.T) {
	const (
		nConns   = 24
		nMsgs    = 40
		connOpen = 5 * time.Millisecond
	)
	sim := eventsim.New(7)
	n := New(sim)
	client := n.AddHost("client", HostConfig{DownlinkBps: mbps8, UplinkBps: mbps8 / 4, Recorder: &trace.Recorder{}})
	server := n.AddHost("server", HostConfig{DownlinkBps: mbps100, UplinkBps: mbps100})
	n.SetPath(client, server, PathParams{RTT: 40 * time.Millisecond, Jitter: time.Millisecond})

	type echo struct {
		conn int
		seq  int
	}
	received := make(map[echo]int) // payload -> times seen at client
	var totalEchoed int

	server.Listen(func(c *Conn) {
		c.OnMessage(server, func(m Message) {
			p := m.Payload.(*echo)
			// Echo the exact payload pointer back; if the transport ever
			// aliased the carrying structures, identity would break below.
			c.Send(server, m.Size, p, fmt.Sprintf("echo-%d-%d", p.conn, p.seq), nil)
		})
	})

	sent := make(map[echo]*echo, nConns*nMsgs)
	for ci := 0; ci < nConns; ci++ {
		ci := ci
		// Stagger dials so pools cycle through mixed conn states.
		sim.ScheduleAt(time.Duration(ci)*connOpen, func() {
			conn := client.Dial(server, nil)
			conn.OnMessage(client, func(m Message) {
				p := m.Payload.(*echo)
				key := echo{p.conn, p.seq}
				want, ok := sent[key]
				if !ok {
					t.Errorf("received unknown payload %+v", key)
					return
				}
				if p != want {
					t.Errorf("payload identity broken for %+v: got %p want %p", key, p, want)
				}
				received[key]++
				totalEchoed++
			})
			for s := 0; s < nMsgs; s++ {
				p := &echo{conn: ci, seq: s}
				sent[echo{ci, s}] = p
				// Mixed sizes: sub-MSS, exactly MSS, and multi-segment,
				// so segmentation and the message free path all cycle.
				size := 200 + (s%5)*700
				conn.Send(client, size, p, fmt.Sprintf("msg-%d-%d", ci, s), nil)
			}
		})
	}
	sim.Run()

	if totalEchoed != nConns*nMsgs {
		t.Fatalf("echoed %d messages, want %d", totalEchoed, nConns*nMsgs)
	}
	for key, count := range received {
		if count != 1 {
			t.Fatalf("payload %+v delivered %d times, want exactly 1", key, count)
		}
	}
	// The packet arena must actually be recycling: the run moves far more
	// packets than the pool ever holds live at once.
	if live := len(n.pools.pktArena); live > 4*poolBlockSize {
		t.Fatalf("packet arena grew to %d unused slots; free list not recycling?", live)
	}
}

// TestPoolingStressWithCloses cycles connections through Close while others
// are mid-transfer, so FIN packets and released sender state interleave with
// live traffic through the same pools.
func TestPoolingStressWithCloses(t *testing.T) {
	sim := eventsim.New(11)
	n := New(sim)
	client := n.AddHost("client", HostConfig{DownlinkBps: mbps8, UplinkBps: mbps8 / 4})
	server := n.AddHost("server", HostConfig{DownlinkBps: mbps100, UplinkBps: mbps100})
	n.SetPath(client, server, PathParams{RTT: 30 * time.Millisecond})

	delivered := 0
	server.Listen(func(c *Conn) {
		c.OnMessage(server, func(m Message) { delivered++ })
	})
	const rounds = 30
	for i := 0; i < rounds; i++ {
		i := i
		sim.ScheduleAt(time.Duration(i)*7*time.Millisecond, func() {
			conn := client.Dial(server, func(c *Conn) {
				c.Send(client, 3000, i, "burst", func(at time.Duration) {
					c.Close()
				})
			})
			_ = conn
		})
	}
	sim.Run()
	if delivered != rounds {
		t.Fatalf("delivered %d messages, want %d", delivered, rounds)
	}
}
