package parcelnet

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"github.com/parcel-go/parcel/internal/httpsim"
	"github.com/parcel-go/parcel/internal/objcache"
	"github.com/parcel-go/parcel/internal/resilience"
)

// resilientFetcher wraps the proxy's shared OriginFetcher in the
// internal/resilience discipline: a per-attempt deadline (so a stalled origin
// occupies a connection for Policy.Timeout, not the transport's 30 s
// backstop), a jittered-backoff retry budget, and a per-origin circuit
// breaker so one sick domain fails fast instead of stacking every session's
// retries onto it.
type resilientFetcher struct {
	fetch   *OriginFetcher
	policy  resilience.Policy
	group   *resilience.Group
	started time.Time

	mu  sync.Mutex
	rng *rand.Rand

	retries atomic.Int64
}

func newResilientFetcher(fetch *OriginFetcher, policy resilience.Policy) *resilientFetcher {
	policy = policy.WithDefaults()
	return &resilientFetcher{
		fetch:   fetch,
		policy:  policy,
		group:   resilience.NewGroup(policy),
		started: time.Now(),
		rng:     rand.New(rand.NewSource(1)),
	}
}

// now is the fetcher's monotonic clock for breaker bookkeeping.
func (r *resilientFetcher) now() time.Duration { return time.Since(r.started) }

// backoff draws the jittered delay before retry number attempt.
func (r *resilientFetcher) backoff(attempt int) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.policy.Backoff(attempt, r.rng)
}

// do fetches url with deadlines, retries, and the breaker. A response with
// status < 500 (404s included — the origin answered) is success. Terminal
// failures — transport errors, 5xx past the retry budget, or a fast-fail on
// an open breaker — return an error, which is what lets the cache layer above
// serve stale. onRetry (may be nil) is invoked once per re-attempt so the
// driving session can be charged for them.
func (r *resilientFetcher) do(url string, onRetry func()) (body []byte, ct string, status int, validator string, err error) {
	domain, _ := httpsim.SplitURL(url)
	br := r.group.For(domain)
	if !br.Allow(r.now()) {
		return nil, "", 0, "", fmt.Errorf("fetch %s: %w", url, resilience.ErrOpen)
	}
	attempts := r.policy.MaxRetries + 1
	for attempt := 1; ; attempt++ {
		ctx, cancel := context.WithTimeout(context.Background(), r.policy.Timeout)
		body, ct, status, validator, err = r.fetch.FetchValidatedCtx(ctx, url)
		cancel()
		if err == nil && status < 500 {
			br.Success(r.now())
			return body, ct, status, validator, nil
		}
		br.Failure(r.now())
		if attempt >= attempts {
			break
		}
		if onRetry != nil {
			onRetry()
		}
		r.retries.Add(1)
		time.Sleep(r.backoff(attempt))
		// Between attempts the breaker may have opened (our own failures, or a
		// fleet of sessions failing on the same origin): respect it instead of
		// hammering a declared-sick origin.
		if !br.Allow(r.now()) {
			return nil, "", 0, "", fmt.Errorf("fetch %s: %w", url, resilience.ErrOpen)
		}
	}
	if err == nil {
		err = fmt.Errorf("fetch %s: origin status %d after %d attempts", url, status, attempts)
	}
	return nil, "", 0, "", err
}

// ResilienceStats aggregates the resilient fetch path's counters.
type ResilienceStats struct {
	// Retries is how many re-attempts the fetch path issued.
	Retries int64
	// BreakerOpens is how many times a per-origin breaker opened.
	BreakerOpens int64
	// BreakerFastFails is how many requests failed fast on an open breaker.
	BreakerFastFails int64
}

// ResilienceStats returns the proxy's resilient-fetch counters (zero when the
// resilient path is not configured).
func (p *Proxy) ResilienceStats() ResilienceStats {
	if p.res == nil {
		return ResilienceStats{}
	}
	return ResilienceStats{
		Retries:          p.res.retries.Load(),
		BreakerOpens:     p.res.group.Opens(),
		BreakerFastFails: p.res.group.FastFails(),
	}
}

// fetchResilient is fetchURL on the resilient path: breaker + retries +
// deadlines around the origin, and — with the shared cache enabled —
// serve-stale-on-error and negative caching behind them. Failures still
// return an error; the crawler converts it into a 502 object so the session
// completes (degraded, not dead).
func (s *session) fetchResilient(url string) ([]byte, string, int, error) {
	p := s.proxy
	onRetry := func() {
		s.mu.Lock()
		s.originRetries++
		s.mu.Unlock()
	}
	if p.cache == nil {
		body, ct, status, _, err := p.res.do(url, onRetry)
		if err == nil {
			s.mu.Lock()
			s.originBytes += int64(len(body))
			s.mu.Unlock()
		}
		return body, ct, status, err
	}
	obj, outcome, err := p.cache.GetOrFetchStale(url, p.res.now(), func() (objcache.Object, error) {
		body, ct, status, validator, ferr := p.res.do(url, onRetry)
		if ferr != nil {
			return objcache.Object{}, ferr
		}
		// Only the session whose fetch actually ran pays the origin bytes;
		// single-flight joiners get the object for free.
		s.mu.Lock()
		s.originBytes += int64(len(body))
		s.mu.Unlock()
		return objcache.Object{URL: url, ContentType: ct, Status: status, Validator: validator, Body: body}, nil
	})
	s.mu.Lock()
	switch outcome {
	case objcache.OutcomeHit:
		s.cacheHits++
	case objcache.OutcomeStale:
		// A stale serve costs this session no origin fetch either; count it a
		// hit for the hit-rate and tag the degradation separately.
		s.cacheHits++
		s.staleServes++
	default:
		s.cacheMisses++
	}
	s.mu.Unlock()
	if err != nil {
		return nil, "", 0, err
	}
	return obj.Body, obj.ContentType, obj.Status, nil
}
