package parcelnet

import (
	"fmt"
	"sync"
	"time"

	"github.com/parcel-go/parcel/internal/metrics"
	"github.com/parcel-go/parcel/internal/objcache"
	"github.com/parcel-go/parcel/internal/replay"
	"github.com/parcel-go/parcel/internal/resilience"
)

// ChaosConfig describes one chaos load run: the LoadgenConfig fleet driven
// while the origin injects faults and the proxy is drained and restarted
// mid-run. The run is healthy when every session still completes — retries
// carry fetches over transient faults, serve-stale and DIR fallback cover the
// rest, and the drain hands live sessions to the restarted proxy.
type ChaosConfig struct {
	// Loadgen is the base fleet (clients, store, URLs, schedule, budgets).
	Loadgen LoadgenConfig
	// Faults arms origin fault injection for the whole run. The zero value
	// injects nothing (a drain/restart-only run).
	Faults replay.OriginFaults
	// Resilience is the proxy's origin-fetch discipline; zero fields take the
	// resilience defaults.
	Resilience resilience.Policy
	// CacheFreshFor is the shared cache's freshness window (serve-stale arms
	// beyond it); 0 means entries never go stale.
	CacheFreshFor time.Duration
	// DrainAfter is how long after the fleet launches the proxy drain fires
	// (default 1 s). DrainTimeout bounds the drain itself (default 2 s). The
	// proxy is restarted on the same address immediately after the drain, so
	// interrupted clients resume against the new incarnation.
	DrainAfter   time.Duration
	DrainTimeout time.Duration
}

// ChaosResult is a chaos run's full measurement. Sessions that completed
// after the drain began are tagged Phase 1, so Report.PhaseP99 separates
// steady-state latency from recovery latency.
type ChaosResult struct {
	LoadgenResult
	// DrainedSessions counts sessions the first proxy incarnation handed a
	// TDrain notice.
	DrainedSessions int64
	// Faults tallies what the origin actually injected.
	Faults replay.FaultStats
	// Resilience sums both proxy incarnations' retry/breaker counters.
	Resilience ResilienceStats
}

// RunChaosLoadgen drives cfg.Loadgen.Clients sessions through a faulted
// origin and a proxy that is drained and restarted mid-run, then aggregates
// the fleet report. Everything is torn down before returning, so leak-checked
// tests can call it directly.
func RunChaosLoadgen(cfg ChaosConfig) (ChaosResult, error) {
	lg := cfg.Loadgen
	if lg.Clients <= 0 {
		return ChaosResult{}, fmt.Errorf("parcelnet: chaos loadgen needs Clients > 0")
	}
	if len(lg.URLs) == 0 {
		return ChaosResult{}, fmt.Errorf("parcelnet: chaos loadgen needs at least one URL")
	}
	if lg.QuietPeriod == 0 {
		lg.QuietPeriod = 200 * time.Millisecond
	}
	if lg.Timeout == 0 {
		lg.Timeout = 60 * time.Second
	}
	if cfg.DrainAfter == 0 {
		cfg.DrainAfter = time.Second
	}
	if cfg.DrainTimeout == 0 {
		cfg.DrainTimeout = 2 * time.Second
	}
	pol := cfg.Resilience.WithDefaults()
	if err := pol.Validate(); err != nil {
		return ChaosResult{}, err
	}

	origin, err := StartOrigin("127.0.0.1:0", lg.Store)
	if err != nil {
		return ChaosResult{}, err
	}
	defer origin.Close()
	if cfg.Faults.Active() {
		fi, err := replay.NewFaultInjector(cfg.Faults)
		if err != nil {
			return ChaosResult{}, err
		}
		origin.SetFaults(fi)
	}

	pcfg := ProxyConfig{
		OriginAddr:        origin.Addr(),
		Sched:             lg.Sched,
		QuietPeriod:       lg.QuietPeriod,
		FixedRandom:       lg.FixedRandom,
		Shards:            lg.Shards,
		CacheBytes:        lg.CacheBytes,
		SessionPushBudget: lg.SessionPushBudget,
		ProxyPushBudget:   lg.ProxyPushBudget,
		MuxChunkSize:      lg.MuxChunkSize,
		MuxStreamWindow:   lg.MuxStreamWindow,
		MuxConnWindow:     lg.MuxConnWindow,
		Resilience:        &pol,
		CacheFreshFor:     cfg.CacheFreshFor,
		Logf:              lg.Logf,
	}
	proxy1, err := StartProxy("127.0.0.1:0", pcfg)
	if err != nil {
		return ChaosResult{}, err
	}
	addr := proxy1.Addr()

	// The chaos controller: drain the first incarnation mid-run, then bring a
	// second one up on the same address so interrupted clients can resume.
	var (
		proxy2     *Proxy
		restartErr error
		drainStart time.Time
	)
	ctlDone := make(chan struct{})
	go func() {
		defer close(ctlDone)
		time.Sleep(cfg.DrainAfter)
		drainStart = time.Now()
		proxy1.Drain(cfg.DrainTimeout)
		for i := 0; i < 250; i++ {
			proxy2, restartErr = StartProxy(addr, pcfg)
			if restartErr == nil {
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
	}()

	loads := make([]metrics.SessionLoad, lg.Clients)
	completions := make([]time.Time, lg.Clients)
	var wg sync.WaitGroup
	for i := 0; i < lg.Clients; i++ {
		if lg.Stagger > 0 && i > 0 {
			time.Sleep(lg.Stagger)
		}
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			loads[id], completions[id] = chaosTenant(id, addr, origin.Addr(), lg)
		}(i)
	}
	wg.Wait()
	<-ctlDone
	if restartErr != nil {
		proxy1.Close()
		return ChaosResult{}, fmt.Errorf("parcelnet: proxy restart on %s: %w", addr, restartErr)
	}
	defer proxy2.Close()

	// Sessions that finished after the drain began lived through the handoff:
	// tag them Phase 1 so the report's PhaseP99 splits steady-state latency
	// from recovery latency.
	for i := range loads {
		if loads[i].Completed && !completions[i].IsZero() && completions[i].After(drainStart) {
			loads[i].Phase = 1
		}
	}

	res := ChaosResult{
		LoadgenResult: LoadgenResult{
			Loads:          loads,
			Report:         metrics.Fleet(loads),
			ProxyDeferred:  proxy1.DeferredTotal() + proxy2.DeferredTotal(),
			ProxyShed:      proxy1.ShedTotal() + proxy2.ShedTotal(),
			SessionsServed: proxy1.SessionsServed() + proxy2.SessionsServed(),
		},
		DrainedSessions: proxy1.DrainedSessions(),
		Faults:          origin.FaultStats(),
	}
	res.Cache = sumCacheStats(proxy1.CacheStats(), proxy2.CacheStats())
	r1, r2 := proxy1.ResilienceStats(), proxy2.ResilienceStats()
	res.Resilience = ResilienceStats{
		Retries:          r1.Retries + r2.Retries,
		BreakerOpens:     r1.BreakerOpens + r2.BreakerOpens,
		BreakerFastFails: r1.BreakerFastFails + r2.BreakerFastFails,
	}
	res.Report.BreakerOpens = res.Resilience.BreakerOpens
	return res, nil
}

// chaosTenant drives one session through the chaos run. Unlike the plain
// loadgen tenant it retries session startup — a tenant starting inside the
// drain/restart window finds no listener for a moment, or lands a connection
// in the dying listener's accept backlog that resets before the page request
// is on the wire — and reports when its page completed so the harness can
// phase-tag it.
func chaosTenant(id int, proxyAddr, originAddr string, lg LoadgenConfig) (metrics.SessionLoad, time.Time) {
	url := lg.URLs[id%len(lg.URLs)]
	ccfg := ClientConfig{
		DirectOrigin: originAddr,
		Seed:         int64(id) + 1,
		Mux:          lg.Mux,
		MaxRetries:   8,
	}
	var client *Client
	for attempt := 0; ; attempt++ {
		c, err := DialConfig(proxyAddr, ccfg)
		if err == nil {
			err = c.RequestPage(url, "chaosgen", "1280x800")
			if err == nil {
				client = c
				break
			}
			c.Close()
		}
		if attempt >= 50 {
			return metrics.SessionLoad{ID: id, Page: url}, time.Time{}
		}
		time.Sleep(100 * time.Millisecond)
	}
	defer client.Close()
	client.WaitComplete(lg.Timeout)
	load := client.SessionLoad(id)
	client.mu.Lock()
	completedAt := client.CompleteAt
	client.mu.Unlock()
	return load, completedAt
}

// sumCacheStats merges the two proxy incarnations' cache counters (the
// capacity is shared config, not additive).
func sumCacheStats(a, b objcache.Stats) objcache.Stats {
	return objcache.Stats{
		Hits:        a.Hits + b.Hits,
		Misses:      a.Misses + b.Misses,
		Evictions:   a.Evictions + b.Evictions,
		Shared:      a.Shared + b.Shared,
		StaleServes: a.StaleServes + b.StaleServes,
		NegHits:     a.NegHits + b.NegHits,
		Entries:     a.Entries + b.Entries,
		Bytes:       a.Bytes + b.Bytes,
		Capacity:    a.Capacity,
	}
}
