package parcelnet

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"github.com/parcel-go/parcel/internal/cssparse"
	"github.com/parcel-go/parcel/internal/htmlparse"
	"github.com/parcel-go/parcel/internal/minijs"
	"github.com/parcel-go/parcel/internal/webgen"
)

// Object is one crawled object.
type Object struct {
	URL         string
	ContentType string
	Status      int
	Body        []byte
}

// fetchFunc retrieves one logical URL. Sessions inject it so the crawler is
// agnostic to where bytes come from: a plain origin fetcher, or the shared
// cross-session object cache with single-flight de-duplication in front.
type fetchFunc func(url string) (body []byte, contentType string, status int, err error)

// crawler performs the proxy-side object identification of §4.2 over real
// HTTP: it parses HTML and CSS and executes page JavaScript to discover
// every object, fetching concurrently on the proxy's fast path.
type crawler struct {
	fetch       fetchFunc
	fixedRandom bool
	maxDepth    int
	onObject    func(Object) // called once per fetched object
	onLoad      func()       // all onload-blocking work done
	onIdle      func()       // all work (including timers) done

	mu              sync.Mutex
	requested       map[string]bool
	pendingBlocking int
	pendingTotal    int
	onloadFired     bool
	idleFired       bool

	jsMu sync.Mutex
	js   *minijs.Interp
	rng  *rand.Rand

	// jsCtx is the active script context (guarded by jsMu during Run).
	jsCtx struct {
		baseURL  string
		blocking bool
		depth    int
	}

	// Errors collects tolerated page errors.
	errMu  sync.Mutex
	Errors []error
}

func newCrawler(fetch fetchFunc, fixedRandom bool, onObject func(Object), onLoad, onIdle func()) *crawler {
	c := &crawler{
		fetch:       fetch,
		fixedRandom: fixedRandom,
		maxDepth:    8,
		onObject:    onObject,
		onLoad:      onLoad,
		onIdle:      onIdle,
		requested:   make(map[string]bool),
		js:          minijs.New(),
		rng:         rand.New(rand.NewSource(int64(webgen.FixedRandValue))),
	}
	c.bindBuiltins()
	return c
}

// start crawls from the main URL.
func (c *crawler) start(url string) { c.request(url, true, 0) }

func (c *crawler) addError(err error) {
	c.errMu.Lock()
	c.Errors = append(c.Errors, err)
	c.errMu.Unlock()
}

// request fetches url once; blocking objects gate the onload callback.
func (c *crawler) request(url string, blocking bool, depth int) {
	c.mu.Lock()
	if c.requested[url] || depth > c.maxDepth {
		c.mu.Unlock()
		return
	}
	c.requested[url] = true
	c.pendingTotal++
	if blocking {
		c.pendingBlocking++
	}
	c.mu.Unlock()

	go func() {
		body, ct, status, err := c.fetch(url)
		obj := Object{URL: url, ContentType: ct, Status: status, Body: body}
		if err != nil {
			c.addError(err)
			obj.Status = 502
		}
		c.onObject(obj)
		if obj.Status < 400 {
			c.process(obj, blocking, depth)
		}
		c.finish(blocking)
	}()
}

func (c *crawler) finish(blocking bool) {
	c.mu.Lock()
	c.pendingTotal--
	var fireLoad, fireIdle bool
	if blocking {
		c.pendingBlocking--
		if c.pendingBlocking == 0 && !c.onloadFired {
			c.onloadFired = true
			fireLoad = true
		}
	}
	if c.pendingTotal == 0 && c.onloadFired && !c.idleFired {
		c.idleFired = true
		fireIdle = true
	}
	c.mu.Unlock()
	if fireLoad && c.onLoad != nil {
		c.onLoad()
	}
	if fireIdle && c.onIdle != nil {
		c.onIdle()
	}
}

// process discovers what an object references.
func (c *crawler) process(obj Object, blocking bool, depth int) {
	switch {
	case strings.Contains(obj.ContentType, "html"):
		root, err := htmlparse.Parse(obj.Body)
		if err != nil {
			c.addError(fmt.Errorf("parse %s: %w", obj.URL, err))
			return
		}
		for _, res := range htmlparse.Resources(root, obj.URL) {
			b := blocking && !res.Async
			c.request(res.URL, b, depth+1)
		}
		for _, css := range htmlparse.InlineStyles(root) {
			for _, u := range cssparse.AssetURLs(css, obj.URL) {
				c.request(u, blocking, depth+1)
			}
		}
		for _, script := range htmlparse.InlineScripts(root) {
			c.execScript(script, obj.URL, blocking, depth)
		}
	case strings.Contains(obj.ContentType, "css"):
		for _, ref := range cssparse.Refs(string(obj.Body), obj.URL) {
			c.request(ref.URL, blocking, depth+1)
		}
	case strings.Contains(obj.ContentType, "javascript"):
		c.execScript(string(obj.Body), obj.URL, blocking, depth)
	}
}

// execScript runs page JS under the crawler's interpreter; its fetch/timer
// builtins feed discovery.
func (c *crawler) execScript(src, baseURL string, blocking bool, depth int) {
	prog, err := minijs.Compile(src)
	if err != nil {
		c.addError(fmt.Errorf("js parse %s: %w", baseURL, err))
		return
	}
	c.jsMu.Lock()
	saved := c.jsCtx
	c.jsCtx.baseURL = baseURL
	c.jsCtx.blocking = blocking
	c.jsCtx.depth = depth
	err = c.js.Run(prog)
	c.jsCtx = saved
	c.jsMu.Unlock()
	if err != nil {
		c.addError(fmt.Errorf("js run %s: %w", baseURL, err))
	}
}

func (c *crawler) bindBuiltins() {
	fetchFn := func(respectCtx bool) minijs.Native {
		return func(args []minijs.Value) (minijs.Value, error) {
			if len(args) < 1 {
				return minijs.Null(), fmt.Errorf("fetch needs a URL")
			}
			u := htmlparse.ResolveURL(c.jsCtx.baseURL, args[0].Str())
			if u == "" {
				return minijs.Null(), nil
			}
			blocking := respectCtx && c.jsCtx.blocking
			c.request(u, blocking, c.jsCtx.depth+1)
			return minijs.Null(), nil
		}
	}
	c.js.BindNative("fetch", fetchFn(true))
	c.js.BindNative("fetchAsync", fetchFn(false))
	c.js.BindNative("setTimeout", func(args []minijs.Value) (minijs.Value, error) {
		if len(args) < 2 {
			return minijs.Null(), fmt.Errorf("setTimeout needs (ms, fn)")
		}
		ms := args[0].Num()
		fn := args[1].Closure()
		if fn == nil {
			return minijs.Null(), fmt.Errorf("setTimeout second arg must be a function")
		}
		ctx := c.jsCtx
		c.mu.Lock()
		c.pendingTotal++
		c.mu.Unlock()
		time.AfterFunc(time.Duration(ms)*time.Millisecond, func() {
			c.jsMu.Lock()
			saved := c.jsCtx
			c.jsCtx = ctx
			c.jsCtx.blocking = false
			_, err := c.js.CallClosure(fn)
			c.jsCtx = saved
			c.jsMu.Unlock()
			if err != nil {
				c.addError(err)
			}
			c.finish(false)
		})
		return minijs.Null(), nil
	})
	c.js.BindNative("onEvent", func(args []minijs.Value) (minijs.Value, error) {
		return minijs.Null(), nil // handlers run on the client, not the proxy
	})
	c.js.BindNative("rand", func(args []minijs.Value) (minijs.Value, error) {
		n := 1 << 20
		if len(args) > 0 && args[0].Num() > 0 {
			n = int(args[0].Num())
		}
		if c.fixedRandom {
			return minijs.Number(webgen.FixedRandValue), nil
		}
		return minijs.Number(float64(c.rng.Intn(n))), nil
	})
	c.js.BindNative("log", func([]minijs.Value) (minijs.Value, error) { return minijs.Null(), nil })
	domOp := minijs.NativeValue(func([]minijs.Value) (minijs.Value, error) { return minijs.Null(), nil })
	c.js.Bind("document", minijs.Namespace(map[string]minijs.Value{
		"write": minijs.NativeValue(func(args []minijs.Value) (minijs.Value, error) {
			if len(args) < 1 {
				return minijs.Null(), nil
			}
			root, err := htmlparse.Parse([]byte(args[0].Str()))
			if err != nil {
				return minijs.Null(), nil
			}
			ctx := c.jsCtx
			for _, res := range htmlparse.Resources(root, ctx.baseURL) {
				c.request(res.URL, ctx.blocking && !res.Async, ctx.depth+1)
			}
			for _, script := range htmlparse.InlineScripts(root) {
				// Already under jsMu; run directly in the current context.
				prog, perr := minijs.Compile(script)
				if perr != nil {
					continue
				}
				if rerr := c.js.Run(prog); rerr != nil {
					c.addError(rerr)
				}
			}
			return minijs.Null(), nil
		}),
		"append": domOp, "remove": domOp, "show": domOp, "hide": domOp,
	}))
}
