//go:build simdebug

package parcelnet

import "sync"

// With -tags simdebug the frame-buffer pool tracks which buffers are
// currently parked on a free list, keyed by the backing array's first byte.
// Releasing a buffer twice — which would alias two concurrent frame reads
// onto one array — panics at the second release. The same contract as the
// simnet packet and minijs frame pools: free in normal builds, loud in debug.

var frameBufDebug struct {
	sync.Mutex
	pooled map[*byte]bool
}

func checkFrameBufGrab(buf []byte) {
	if cap(buf) == 0 {
		return
	}
	p := &buf[:1][0]
	frameBufDebug.Lock()
	delete(frameBufDebug.pooled, p)
	frameBufDebug.Unlock()
}

func checkFrameBufRelease(buf []byte) {
	p := &buf[0]
	frameBufDebug.Lock()
	defer frameBufDebug.Unlock()
	if frameBufDebug.pooled == nil {
		frameBufDebug.pooled = make(map[*byte]bool)
	}
	if frameBufDebug.pooled[p] {
		panic("parcelnet: double free of frame buffer")
	}
	frameBufDebug.pooled[p] = true
}
