// Package parcelnet is the real-network implementation of PARCEL: a proxy
// and client speaking a framed bundle protocol over real TCP connections,
// plus an HTTP origin server that serves replay archives. It is the
// deployable counterpart of the simulated internal/core — same split of
// functionality (proxy-side object identification and push, client-side
// local execution), running over net.Conn with optional netem shaping.
package parcelnet

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
)

// Frame types.
const (
	TPageRequest byte = iota + 1
	TBundle           // payload: MHTML bundle
	TComplete         // payload: JSON CompleteNote
	TObjectRequest
	TObjectResponse // payload: MHTML bundle with one part
	TShed           // payload: JSON ShedNote — objects the proxy will not push

	// parcelmux frame types: the multiplexed stream layer. A session that
	// requested Mux in its PageRequest receives objects as interleaved
	// per-stream chunks instead of monolithic TBundle frames, so a large
	// object can no longer head-of-line-block small critical ones.
	TMuxSettings  // payload: [u32 streamWindow][u32 connWindow][u32 chunkSize]
	TStreamOpen   // payload: [u32 id][flags][prio][uvarint offset,total][meta]
	TStreamData   // payload: [u32 id][flags][chunk bytes]
	TWindowUpdate // payload: [u32 id (0 = connection)][u32 increment]

	TDrain // payload: JSON DrainNote — the proxy is retiring this session
)

// maxFrame bounds a frame payload (64 MB) against corrupt length prefixes.
const maxFrame = 64 << 20

// PageRequest asks the proxy to load a page. Have lists objects the client
// already holds — a reconnecting client resumes its session by re-sending the
// request with a manifest, and the proxy pushes only what is still missing.
// Partial extends the manifest to streams that were cut mid-object: the proxy
// re-opens those streams at the recorded offset instead of resending the
// prefix. Mux asks for the parcelmux stream layer; a proxy that honours it
// answers with TMuxSettings before the first stream.
type PageRequest struct {
	URL       string          `json:"url"`
	UserAgent string          `json:"user_agent,omitempty"`
	Screen    string          `json:"screen,omitempty"`
	Have      []string        `json:"have,omitempty"`
	Partial   []PartialObject `json:"partial,omitempty"`
	Mux       bool            `json:"mux,omitempty"`
}

// PartialObject is one partially-received stream in a resume manifest: the
// client holds the first Bytes bytes of the object's body.
type PartialObject struct {
	URL   string `json:"url"`
	Bytes int64  `json:"bytes"`
}

// CompleteNote is the §4.5 completion notification. ObjectsSkipped counts
// objects withheld because the resume manifest already listed them. The
// remaining counters surface the multi-tenant proxy's per-session view:
// admission-control outcomes (deferred pushes that were delivered late, shed
// pushes the client must fetch itself) and shared-object-cache effectiveness
// (hits, misses, and the origin bytes this session actually cost).
type CompleteNote struct {
	ObjectsPushed   int   `json:"objects_pushed"`
	BytesPushed     int64 `json:"bytes_pushed"`
	ObjectsSkipped  int   `json:"objects_skipped,omitempty"`
	ObjectsResumed  int   `json:"objects_resumed,omitempty"`
	ObjectsDeferred int   `json:"objects_deferred,omitempty"`
	ObjectsShed     int   `json:"objects_shed,omitempty"`
	CacheHits       int   `json:"cache_hits,omitempty"`
	CacheMisses     int   `json:"cache_misses,omitempty"`
	OriginRetries   int   `json:"origin_retries,omitempty"`
	StaleServes     int   `json:"stale_serves,omitempty"`
	OriginBytes     int64 `json:"origin_bytes,omitempty"`
}

// ShedNote tells the client which objects the proxy's admission control
// dropped from the push schedule: the client completes them itself over the
// PR 4 direct-origin path (or a fallback object request). Shedding trades
// PARCEL's push benefit for bounded proxy memory — DIR degradation, not OOM.
type ShedNote struct {
	URLs []string `json:"urls"`
}

// ObjectRequest is the client's missing-object fallback.
type ObjectRequest struct {
	URL string `json:"url"`
}

// DrainNote is the proxy's graceful-shutdown handoff: the session should move
// off this connection because the proxy is retiring. Pending lists objects the
// proxy had scheduled but will no longer deliver (parked deferrals and mux
// streams with unsent bytes); the client folds them into the resume manifest
// it replays at the next proxy — or fetches them over its direct-origin path —
// so a drain loses no objects.
type DrainNote struct {
	Pending []string `json:"pending,omitempty"`
}

// WriteFrame writes one framed message: [type][uint32 length][payload].
// It is safe for concurrent use per writer via the caller's lock; use
// a FrameWriter for built-in locking.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("parcelnet: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [5]byte
	hdr[0] = typ
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one framed message. The payload is freshly allocated; hot
// loops that process-and-drop payloads should use ReadFramePooled instead.
func ReadFrame(r io.Reader) (typ byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	typ = hdr[0]
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > maxFrame {
		return 0, nil, fmt.Errorf("parcelnet: frame length %d exceeds limit", n)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return typ, payload, nil
}

// ReadFramePooled reads one framed message into a buffer from the
// size-bucketed frame pool. The caller owns the payload until it calls
// ReleaseFrameBuf — after that the bytes may be reused by another frame, so
// anything retained (object bodies, strings) must be copied out first. The
// pairing analyzer enforces the contract: on a nil error every path must
// release the payload (a read error releases it internally).
//
//parcelvet:acquire framebuf
func ReadFramePooled(r io.Reader) (typ byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	typ = hdr[0]
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > maxFrame {
		return 0, nil, fmt.Errorf("parcelnet: frame length %d exceeds limit", n)
	}
	payload = grabFrameBuf(int(n))
	if _, err := io.ReadFull(r, payload); err != nil {
		ReleaseFrameBuf(payload)
		return 0, nil, err
	}
	return typ, payload, nil
}

// FrameWriter serializes concurrent frame writes onto one connection.
type FrameWriter struct {
	mu sync.Mutex
	w  io.Writer
}

// NewFrameWriter wraps w.
func NewFrameWriter(w io.Writer) *FrameWriter { return &FrameWriter{w: w} }

// Write sends one frame atomically.
func (fw *FrameWriter) Write(typ byte, payload []byte) error {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	return WriteFrame(fw.w, typ, payload)
}

// WriteJSON marshals v and sends it as a frame of the given type.
func (fw *FrameWriter) WriteJSON(typ byte, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return fw.Write(typ, data)
}

// WriteRaw sends one pre-assembled frame — the 5-byte header is already in
// place — as a single write. The mux sender builds frames into a reusable
// buffer and ships them through here so a data chunk costs one syscall and
// zero allocations.
func (fw *FrameWriter) WriteRaw(frame []byte) error {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	_, err := fw.w.Write(frame)
	return err
}

// WriteWindowUpdate sends one flow-control credit: the receiver consumed
// increment bytes of streamID (0 credits the connection-level window).
func (fw *FrameWriter) WriteWindowUpdate(streamID, increment uint32) error {
	var p [8]byte
	binary.BigEndian.PutUint32(p[0:], streamID)
	binary.BigEndian.PutUint32(p[4:], increment)
	return fw.Write(TWindowUpdate, p[:])
}

// dialFunc abstracts net.Dial for netem-shaped connections in tests.
type dialFunc func(network, addr string) (net.Conn, error)
