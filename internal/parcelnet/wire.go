// Package parcelnet is the real-network implementation of PARCEL: a proxy
// and client speaking a framed bundle protocol over real TCP connections,
// plus an HTTP origin server that serves replay archives. It is the
// deployable counterpart of the simulated internal/core — same split of
// functionality (proxy-side object identification and push, client-side
// local execution), running over net.Conn with optional netem shaping.
package parcelnet

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
)

// Frame types.
const (
	TPageRequest byte = iota + 1
	TBundle           // payload: MHTML bundle
	TComplete         // payload: JSON CompleteNote
	TObjectRequest
	TObjectResponse // payload: MHTML bundle with one part
	TShed           // payload: JSON ShedNote — objects the proxy will not push
)

// maxFrame bounds a frame payload (64 MB) against corrupt length prefixes.
const maxFrame = 64 << 20

// PageRequest asks the proxy to load a page. Have lists objects the client
// already holds — a reconnecting client resumes its session by re-sending the
// request with a manifest, and the proxy pushes only what is still missing.
type PageRequest struct {
	URL       string   `json:"url"`
	UserAgent string   `json:"user_agent,omitempty"`
	Screen    string   `json:"screen,omitempty"`
	Have      []string `json:"have,omitempty"`
}

// CompleteNote is the §4.5 completion notification. ObjectsSkipped counts
// objects withheld because the resume manifest already listed them. The
// remaining counters surface the multi-tenant proxy's per-session view:
// admission-control outcomes (deferred pushes that were delivered late, shed
// pushes the client must fetch itself) and shared-object-cache effectiveness
// (hits, misses, and the origin bytes this session actually cost).
type CompleteNote struct {
	ObjectsPushed   int   `json:"objects_pushed"`
	BytesPushed     int64 `json:"bytes_pushed"`
	ObjectsSkipped  int   `json:"objects_skipped,omitempty"`
	ObjectsDeferred int   `json:"objects_deferred,omitempty"`
	ObjectsShed     int   `json:"objects_shed,omitempty"`
	CacheHits       int   `json:"cache_hits,omitempty"`
	CacheMisses     int   `json:"cache_misses,omitempty"`
	OriginBytes     int64 `json:"origin_bytes,omitempty"`
}

// ShedNote tells the client which objects the proxy's admission control
// dropped from the push schedule: the client completes them itself over the
// PR 4 direct-origin path (or a fallback object request). Shedding trades
// PARCEL's push benefit for bounded proxy memory — DIR degradation, not OOM.
type ShedNote struct {
	URLs []string `json:"urls"`
}

// ObjectRequest is the client's missing-object fallback.
type ObjectRequest struct {
	URL string `json:"url"`
}

// WriteFrame writes one framed message: [type][uint32 length][payload].
// It is safe for concurrent use per writer via the caller's lock; use
// a FrameWriter for built-in locking.
func WriteFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("parcelnet: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [5]byte
	hdr[0] = typ
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one framed message.
func ReadFrame(r io.Reader) (typ byte, payload []byte, err error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	typ = hdr[0]
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > maxFrame {
		return 0, nil, fmt.Errorf("parcelnet: frame length %d exceeds limit", n)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return typ, payload, nil
}

// FrameWriter serializes concurrent frame writes onto one connection.
type FrameWriter struct {
	mu sync.Mutex
	w  io.Writer
}

// NewFrameWriter wraps w.
func NewFrameWriter(w io.Writer) *FrameWriter { return &FrameWriter{w: w} }

// Write sends one frame atomically.
func (fw *FrameWriter) Write(typ byte, payload []byte) error {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	return WriteFrame(fw.w, typ, payload)
}

// WriteJSON marshals v and sends it as a frame of the given type.
func (fw *FrameWriter) WriteJSON(typ byte, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return fw.Write(typ, data)
}

// dialFunc abstracts net.Dial for netem-shaped connections in tests.
type dialFunc func(network, addr string) (net.Conn, error)
