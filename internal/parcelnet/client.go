package parcelnet

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/parcel-go/parcel/internal/mhtml"
)

func jsonUnmarshal(data []byte, v any) error { return json.Unmarshal(data, v) }

// Client is the real-network PARCEL client: it opens the single proxy
// connection, sends the page request, receives pushed bundles into a local
// object store, and requests still-missing objects after the proxy's
// completion notification (§4.5). Rendering/JS execution is up to the
// embedding application (the simulation packages model it; a real deployment
// would hand the store to a WebView, §5.2).
type Client struct {
	conn net.Conn
	fw   *FrameWriter

	mu       sync.Mutex
	cond     *sync.Cond
	store    map[string]mhtml.Part
	order    []string
	notified bool
	note     CompleteNote
	rerr     error

	// BundlesReceived counts pushed bundles.
	BundlesReceived int
	// BytesReceived counts MHTML payload bytes received.
	BytesReceived int64
	// Fallbacks counts missing-object requests sent.
	Fallbacks int

	// FirstByteAt and CompleteAt are wall-clock milestones.
	startedAt  time.Time
	FirstAt    time.Time
	CompleteAt time.Time
}

// Dial connects to a PARCEL proxy. dial may be nil (plain net.Dial) or a
// shaping dialer (e.g. one that wraps the conn with netem).
func Dial(addr string, dial func(network, addr string) (net.Conn, error)) (*Client, error) {
	if dial == nil {
		dial = net.Dial
	}
	conn, err := dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:  conn,
		fw:    NewFrameWriter(conn),
		store: make(map[string]mhtml.Part),
	}
	c.cond = sync.NewCond(&c.mu)
	go c.readLoop()
	return c, nil
}

// Close closes the proxy connection.
func (c *Client) Close() error { return c.conn.Close() }

// RequestPage asks the proxy to load url on the client's behalf.
func (c *Client) RequestPage(url, userAgent, screen string) error {
	c.mu.Lock()
	c.startedAt = time.Now()
	c.mu.Unlock()
	return c.fw.WriteJSON(TPageRequest, PageRequest{URL: url, UserAgent: userAgent, Screen: screen})
}

func (c *Client) readLoop() {
	for {
		typ, payload, err := ReadFrame(c.conn)
		if err != nil {
			c.mu.Lock()
			c.rerr = err
			c.cond.Broadcast()
			c.mu.Unlock()
			return
		}
		switch typ {
		case TBundle, TObjectResponse:
			parts, err := mhtml.Decode(payload)
			if err != nil {
				c.mu.Lock()
				c.rerr = fmt.Errorf("parcelnet: bad bundle: %w", err)
				c.cond.Broadcast()
				c.mu.Unlock()
				return
			}
			c.mu.Lock()
			if typ == TBundle {
				c.BundlesReceived++
			}
			c.BytesReceived += int64(len(payload))
			if c.FirstAt.IsZero() {
				c.FirstAt = time.Now()
			}
			for _, p := range parts {
				if _, dup := c.store[p.URL]; !dup {
					c.order = append(c.order, p.URL)
				}
				c.store[p.URL] = p
			}
			c.cond.Broadcast()
			c.mu.Unlock()
		case TComplete:
			var note CompleteNote
			if err := jsonUnmarshal(payload, &note); err == nil {
				c.mu.Lock()
				c.note = note
			} else {
				c.mu.Lock()
			}
			c.notified = true
			c.CompleteAt = time.Now()
			c.cond.Broadcast()
			c.mu.Unlock()
		}
	}
}

// Object returns the named object, waiting for it to be pushed. If the
// completion notification has arrived and the object is still missing, a
// fallback request is sent to the proxy (once). It fails after timeout.
func (c *Client) Object(url string, timeout time.Duration) (mhtml.Part, error) {
	deadline := time.Now().Add(timeout)
	timer := time.AfterFunc(timeout, func() {
		c.mu.Lock()
		c.cond.Broadcast()
		c.mu.Unlock()
	})
	defer timer.Stop()

	c.mu.Lock()
	defer c.mu.Unlock()
	requested := false
	for {
		if p, ok := c.store[url]; ok {
			return p, nil
		}
		if c.rerr != nil {
			return mhtml.Part{}, c.rerr
		}
		if c.notified && !requested {
			requested = true
			c.Fallbacks++
			go c.fw.WriteJSON(TObjectRequest, ObjectRequest{URL: url})
		}
		if time.Now().After(deadline) {
			return mhtml.Part{}, fmt.Errorf("parcelnet: timeout waiting for %s", url)
		}
		c.cond.Wait()
	}
}

// WaitComplete blocks until the proxy's completion notification (or timeout).
func (c *Client) WaitComplete(timeout time.Duration) (CompleteNote, error) {
	deadline := time.Now().Add(timeout)
	timer := time.AfterFunc(timeout, func() {
		c.mu.Lock()
		c.cond.Broadcast()
		c.mu.Unlock()
	})
	defer timer.Stop()

	c.mu.Lock()
	defer c.mu.Unlock()
	for !c.notified {
		if c.rerr != nil {
			return CompleteNote{}, c.rerr
		}
		if time.Now().After(deadline) {
			return CompleteNote{}, fmt.Errorf("parcelnet: timeout waiting for completion")
		}
		c.cond.Wait()
	}
	return c.note, nil
}

// Objects returns the URLs received so far, in arrival order.
func (c *Client) Objects() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.order...)
}

// Has reports whether url has been received.
func (c *Client) Has(url string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.store[url]
	return ok
}
