package parcelnet

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"

	"github.com/parcel-go/parcel/internal/metrics"
	"github.com/parcel-go/parcel/internal/mhtml"
)

func jsonUnmarshal(data []byte, v any) error { return json.Unmarshal(data, v) }

// ErrClosed is returned by Object and WaitComplete after the client itself
// was closed — distinct from a timeout, so callers can tell "you hung up"
// from "the object never arrived".
var ErrClosed = errors.New("parcelnet: client closed")

// ErrProxyGone is returned when the proxy connection died and the retry
// budget was exhausted without a configured direct-origin fallback.
var ErrProxyGone = errors.New("parcelnet: proxy connection lost")

// ClientConfig tunes connection recovery. The zero value gives sensible
// defaults: 5 s dial timeout, 3 reconnect attempts with 50 ms–2 s jittered
// exponential backoff, and no direct-origin fallback.
type ClientConfig struct {
	// Dial overrides net.Dial (e.g. a netem-shaping dialer). When nil,
	// connections use net.DialTimeout with DialTimeout.
	Dial func(network, addr string) (net.Conn, error)
	// DialTimeout bounds each dial attempt (default 5 s; only applies to the
	// built-in dialer — custom Dial funcs own their timeouts).
	DialTimeout time.Duration
	// MaxRetries is the reconnect budget after the proxy connection drops
	// mid-page (default 3; negative disables reconnection entirely).
	MaxRetries int
	// BackoffBase and BackoffMax bound the jittered exponential backoff
	// between reconnect attempts (defaults 50 ms and 2 s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Seed seeds the backoff jitter so recovery replays deterministically
	// (default 1).
	Seed int64
	// DirectOrigin, when set, is the replay origin address the client
	// degrades to once the retry budget is spent: the page completes in DIR
	// mode, fetching remaining objects straight from the origin.
	DirectOrigin string
	// Mux requests the parcelmux stream layer: objects arrive as prioritized,
	// flow-controlled stream chunks instead of monolithic bundles, and a
	// reconnect resumes partially-received objects at their byte offset.
	// Default false — the legacy bundle path.
	Mux bool
	// Logf, when set, receives recovery diagnostics.
	Logf func(format string, args ...any)
}

func (cfg *ClientConfig) fillDefaults() {
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 3
	}
	if cfg.BackoffBase == 0 {
		cfg.BackoffBase = 50 * time.Millisecond
	}
	if cfg.BackoffMax == 0 {
		cfg.BackoffMax = 2 * time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
}

// Client is the real-network PARCEL client: it opens the single proxy
// connection, sends the page request, receives pushed bundles into a local
// object store, and requests still-missing objects after the proxy's
// completion notification (§4.5). If the proxy connection drops mid-page the
// client reconnects with backoff and resumes the session (re-sending the
// request with a manifest of objects it already holds); once the retry
// budget is spent it degrades to fetching directly from the origin when
// ClientConfig.DirectOrigin is set. Rendering/JS execution is up to the
// embedding application (the simulation packages model it; a real deployment
// would hand the store to a WebView, §5.2).
type Client struct {
	addr string
	cfg  ClientConfig

	mu       sync.Mutex
	cond     *sync.Cond
	conn     net.Conn // current connection; compared by readLoop for staleness
	fw       *FrameWriter
	store    map[string]mhtml.Part
	order    []string
	page     *PageRequest // active page, kept for session resume
	notified bool
	note     CompleteNote
	shed     map[string]bool // URLs the proxy's admission control shed to us
	rerr     error
	closed   bool
	degraded bool
	direct   *OriginFetcher
	rng      *rand.Rand // backoff jitter; touched only by the reconnect goroutine
	// asm reassembles mux streams on the current connection; partials carries
	// incomplete stream bodies across reconnects so the next connection can
	// resume each object at its offset instead of resending the prefix.
	asm      *muxAssembler
	partials map[string][]byte

	// BundlesReceived counts pushed bundles.
	BundlesReceived int
	// BytesReceived counts MHTML payload bytes received.
	BytesReceived int64
	// Fallbacks counts missing-object requests (to the proxy, or directly to
	// the origin once degraded).
	Fallbacks int
	// Resumes counts successful session resumes after a reconnect.
	Resumes int
	// Retries counts reconnect dial attempts.
	Retries int
	// DirectFetches counts objects fetched from the origin in degraded mode.
	DirectFetches int
	// ShedReceived counts objects the proxy announced it would not push
	// (admission control shed them); the client fetches those itself.
	ShedReceived int
	// PartialResumes counts objects completed from a mid-stream resume (the
	// reconnect manifest carried a nonzero offset for them).
	PartialResumes int
	// Drained counts TDrain notices received: the proxy asked this session to
	// move off while it shut down, handing back a resume manifest.
	Drained int
	// FallbackWriteErrors counts fallback TObjectRequest writes that failed —
	// requests the proxy never saw. Loadgen gates on this so silent fallback
	// failures cannot pass as healthy runs.
	FallbackWriteErrors int

	// FirstAt and CompleteAt are wall-clock milestones. FirstCriticalAt is
	// when the first critical-class object (HTML/CSS/JS — the render-blocking
	// set) landed; the mux layer exists to pull it forward.
	startedAt       time.Time
	FirstAt         time.Time
	FirstCriticalAt time.Time
	CompleteAt      time.Time
}

// Dial connects to a PARCEL proxy. dial may be nil (plain net.Dial) or a
// shaping dialer (e.g. one that wraps the conn with netem).
func Dial(addr string, dial func(network, addr string) (net.Conn, error)) (*Client, error) {
	return DialConfig(addr, ClientConfig{Dial: dial})
}

// DialConfig connects to a PARCEL proxy with explicit recovery settings.
func DialConfig(addr string, cfg ClientConfig) (*Client, error) {
	cfg.fillDefaults()
	c := &Client{
		addr:  addr,
		cfg:   cfg,
		store: make(map[string]mhtml.Part),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
	c.cond = sync.NewCond(&c.mu)
	conn, err := c.dial()
	if err != nil {
		return nil, err
	}
	c.conn = conn
	c.fw = NewFrameWriter(conn)
	go c.readLoop(conn)
	return c, nil
}

func (c *Client) dial() (net.Conn, error) {
	if c.cfg.Dial != nil {
		return c.cfg.Dial("tcp", c.addr)
	}
	return net.DialTimeout("tcp", c.addr, c.cfg.DialTimeout)
}

// Close closes the proxy connection. Blocked Object/WaitComplete callers
// return ErrClosed.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	if c.rerr == nil {
		c.rerr = ErrClosed
	}
	conn := c.conn
	c.cond.Broadcast()
	c.mu.Unlock()
	return conn.Close()
}

// Degraded reports whether the client fell back to direct-origin fetching.
func (c *Client) Degraded() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.degraded
}

// RequestPage asks the proxy to load url on the client's behalf.
func (c *Client) RequestPage(url, userAgent, screen string) error {
	req := PageRequest{URL: url, UserAgent: userAgent, Screen: screen, Mux: c.cfg.Mux}
	c.mu.Lock()
	c.startedAt = time.Now()
	c.page = &req
	if c.cfg.Mux {
		// The assembler must exist before the request is on the wire: the
		// proxy's TMuxSettings answer can race the unlock otherwise.
		c.asm = newMuxAssembler(c.partialHeld)
	}
	fw := c.fw
	c.mu.Unlock()
	return fw.WriteJSON(TPageRequest, req)
}

// partialHeld is the assembler's resume source: the bytes already held for a
// URL whose stream the proxy reopened at an offset. Called with c.mu held
// (the read loop drives the assembler under the client lock).
func (c *Client) partialHeld(url string) []byte { return c.partials[url] }

func (c *Client) readLoop(conn net.Conn) {
	for {
		// Pooled reads: every branch below copies what it keeps (mhtml.Decode
		// and json.Unmarshal copy, the mux assembler appends chunks into its
		// own buffers), so the payload is recycled at the end of the iteration.
		typ, payload, err := ReadFramePooled(conn)
		if err != nil {
			c.onDisconnect(conn, err)
			return
		}
		fatal := c.handleClientFrame(typ, payload)
		ReleaseFrameBuf(payload)
		if fatal {
			return
		}
	}
}

// handleClientFrame dispatches one inbound frame; it must not retain payload
// (the read loop recycles it). It returns true on a fatal protocol error.
func (c *Client) handleClientFrame(typ byte, payload []byte) bool {
	switch typ {
	case TBundle, TObjectResponse:
		parts, err := mhtml.Decode(payload)
		if err != nil {
			c.fail(fmt.Errorf("parcelnet: bad bundle: %w", err))
			return true
		}
		c.mu.Lock()
		if typ == TBundle {
			c.BundlesReceived++
		}
		c.BytesReceived += int64(len(payload))
		if c.FirstAt.IsZero() {
			c.FirstAt = time.Now()
		}
		for _, p := range parts {
			if c.FirstCriticalAt.IsZero() && prioClass(p.ContentType) == muxClassCritical {
				c.FirstCriticalAt = time.Now()
			}
			if _, dup := c.store[p.URL]; !dup {
				c.order = append(c.order, p.URL)
			}
			c.store[p.URL] = p
		}
		c.cond.Broadcast()
		c.mu.Unlock()
	case TMuxSettings:
		c.mu.Lock()
		var err error
		if c.asm != nil {
			err = c.asm.onSettings(payload)
		}
		c.mu.Unlock()
		if err != nil {
			c.fail(err)
			return true
		}
	case TStreamOpen:
		c.mu.Lock()
		if c.asm == nil {
			c.mu.Unlock()
			c.fail(fmt.Errorf("parcelnet: stream frame without mux session"))
			return true
		}
		c.BytesReceived += int64(len(payload))
		part, err := c.asm.onOpen(payload)
		if part != nil {
			c.deliverPartLocked(part)
		}
		c.mu.Unlock()
		if err != nil {
			c.fail(err)
			return true
		}
	case TStreamData:
		c.mu.Lock()
		if c.asm == nil {
			c.mu.Unlock()
			c.fail(fmt.Errorf("parcelnet: stream frame without mux session"))
			return true
		}
		c.BytesReceived += int64(len(payload))
		part, acks, err := c.asm.onData(payload)
		if part != nil {
			c.deliverPartLocked(part)
		}
		fw := c.fw
		c.mu.Unlock()
		if err != nil {
			c.fail(err)
			return true
		}
		for _, a := range acks {
			if werr := fw.WriteWindowUpdate(a.id, a.inc); werr != nil {
				// The read side will see the broken connection and drive
				// recovery; the lost credit dies with the connection.
				c.cfg.Logf("window update failed: %v", werr)
				break
			}
		}
	case TShed:
		var note ShedNote
		if err := jsonUnmarshal(payload, &note); err != nil {
			c.cfg.Logf("bad shed note: %v", err)
			return false
		}
		c.mu.Lock()
		if c.shed == nil {
			c.shed = make(map[string]bool)
		}
		missing := make([]string, 0, len(note.URLs))
		for _, u := range note.URLs {
			c.shed[u] = true
			if _, ok := c.store[u]; !ok {
				missing = append(missing, u)
			}
		}
		c.ShedReceived += len(note.URLs)
		eager := c.cfg.DirectOrigin != "" && !c.closed
		c.cond.Broadcast()
		c.mu.Unlock()
		if eager {
			// Recover the push benefit we lost: start fetching shed objects
			// before the page asks for them.
			go c.fetchShed(missing)
		}
	case TDrain:
		var note DrainNote
		if err := jsonUnmarshal(payload, &note); err != nil {
			c.cfg.Logf("bad drain note: %v", err)
		}
		c.mu.Lock()
		c.Drained++
		if c.notified {
			// The page already completed; there is nothing to resume. Flagging
			// degraded keeps the dying connection from reading as a failure and
			// routes any later missing-object fetch to the direct-origin path.
			c.degraded = true
		}
		conn := c.conn
		c.mu.Unlock()
		c.cfg.Logf("proxy draining (%d objects pending); recovering", len(note.Pending))
		// Closing our side sends the read loop through the standard disconnect
		// path: harvest partial streams, reconnect with the resume manifest,
		// or fall back to the direct origin once the budget is spent.
		conn.Close()
	case TComplete:
		var note CompleteNote
		if err := jsonUnmarshal(payload, &note); err == nil {
			c.mu.Lock()
			c.note = note
		} else {
			c.mu.Lock()
		}
		c.notified = true
		c.CompleteAt = time.Now()
		c.cond.Broadcast()
		c.mu.Unlock()
	}
	return false
}

// deliverPartLocked lands one reassembled mux object in the store.
func (c *Client) deliverPartLocked(p *muxPart) {
	if c.FirstAt.IsZero() {
		c.FirstAt = time.Now()
	}
	if p.Class == muxClassCritical && c.FirstCriticalAt.IsZero() {
		c.FirstCriticalAt = time.Now()
	}
	if p.Resumed {
		c.PartialResumes++
		delete(c.partials, p.URL)
	}
	if _, dup := c.store[p.URL]; !dup {
		c.order = append(c.order, p.URL)
	}
	c.store[p.URL] = mhtml.Part{URL: p.URL, ContentType: p.ContentType, Status: p.Status, Body: p.Body}
	c.cond.Broadcast()
}

// noteFallbackWriteError counts a fallback request that never reached the
// proxy (the write failed) and logs it. The counter is surfaced through
// SessionLoad so load generators can gate on silent fallback failures.
func (c *Client) noteFallbackWriteError(format string, args ...any) {
	c.mu.Lock()
	c.FallbackWriteErrors++
	c.cond.Broadcast()
	c.mu.Unlock()
	c.cfg.Logf(format, args...)
}

// fail records a fatal protocol error and wakes waiters.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.rerr == nil {
		c.rerr = err
	}
	c.cond.Broadcast()
	c.mu.Unlock()
}

// onDisconnect decides what a dead connection means: nothing (stale
// generation or client closed), a fatal error (no page in flight), or a
// recovery attempt (reconnect with backoff, then degrade or die).
func (c *Client) onDisconnect(conn net.Conn, err error) {
	c.mu.Lock()
	if c.conn != conn || c.closed || c.degraded {
		c.mu.Unlock()
		return
	}
	// Harvest the dead connection's half-received streams into the resume
	// state before anything else: whatever bytes made it across are kept, and
	// the next connection's manifest asks for the rest of each object.
	if c.asm != nil {
		if held := c.asm.partials(); len(held) > 0 {
			if c.partials == nil {
				c.partials = make(map[string][]byte, len(held))
			}
			for u, b := range held {
				c.partials[u] = b
			}
		}
		c.asm = nil
	}
	if c.page == nil || c.notified || c.cfg.MaxRetries < 0 {
		// No page in flight (or it already completed): nothing to resume.
		if c.rerr == nil {
			c.rerr = fmt.Errorf("%w: %v", ErrProxyGone, err)
		}
		c.cond.Broadcast()
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	c.cfg.Logf("proxy connection lost mid-page (%v); reconnecting", err)
	go c.reconnect(conn)
}

// reconnect retries the proxy with jittered exponential backoff, resuming
// the session on success and degrading (or failing) when the budget is spent.
func (c *Client) reconnect(dead net.Conn) {
	for attempt := 0; attempt < c.cfg.MaxRetries; attempt++ {
		time.Sleep(c.backoff(attempt))
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return
		}
		c.Retries++
		c.mu.Unlock()
		conn, err := c.dial()
		if err != nil {
			c.cfg.Logf("reconnect attempt %d: %v", attempt+1, err)
			continue
		}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			conn.Close()
			return
		}
		req := *c.page
		req.Have = make([]string, 0, len(c.store))
		for u := range c.store {
			req.Have = append(req.Have, u)
		}
		sort.Strings(req.Have)
		if req.Mux {
			// Extend the manifest with half-received objects: the proxy
			// reopens each stream at the recorded offset. A fresh assembler
			// serves the new connection (HPACK tables reset with it).
			req.Partial = nil
			for u, b := range c.partials {
				if _, done := c.store[u]; !done && len(b) > 0 {
					req.Partial = append(req.Partial, PartialObject{URL: u, Bytes: int64(len(b))})
				}
			}
			sort.Slice(req.Partial, func(i, j int) bool { return req.Partial[i].URL < req.Partial[j].URL })
			c.asm = newMuxAssembler(c.partialHeld)
		}
		c.conn = conn
		c.fw = NewFrameWriter(conn)
		fw := c.fw
		c.mu.Unlock()
		if err := fw.WriteJSON(TPageRequest, req); err != nil {
			c.cfg.Logf("resume request failed: %v", err)
			conn.Close()
			continue
		}
		c.mu.Lock()
		c.Resumes++
		c.mu.Unlock()
		c.cfg.Logf("session resumed with %d objects already held", len(req.Have))
		go c.readLoop(conn)
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	if c.cfg.DirectOrigin != "" {
		// Graceful degradation: the page finishes in DIR mode. Completion is
		// declared so Object() falls straight through to direct fetches.
		c.degraded = true
		c.notified = true
		if c.CompleteAt.IsZero() {
			c.CompleteAt = time.Now()
		}
		c.cfg.Logf("retry budget spent; degrading to direct origin %s", c.cfg.DirectOrigin)
	} else if c.rerr == nil {
		c.rerr = fmt.Errorf("%w after %d retries", ErrProxyGone, c.cfg.MaxRetries)
	}
	c.cond.Broadcast()
}

// backoff returns the jittered exponential delay before reconnect attempt n.
func (c *Client) backoff(attempt int) time.Duration {
	d := c.cfg.BackoffBase << uint(attempt)
	if d > c.cfg.BackoffMax || d <= 0 {
		d = c.cfg.BackoffMax
	}
	// Half fixed, half jitter: avoids thundering herds while keeping the
	// delay within [d/2, d].
	half := int64(d / 2)
	return time.Duration(half + c.rng.Int63n(half+1))
}

// fetchDirect retrieves url straight from the configured origin (DIR mode).
func (c *Client) fetchDirect(url string) (mhtml.Part, error) {
	c.mu.Lock()
	if c.direct == nil {
		c.direct = NewOriginFetcher(c.cfg.DirectOrigin)
	}
	f := c.direct
	c.Fallbacks++
	c.DirectFetches++
	c.mu.Unlock()
	body, ct, status, err := f.Fetch(url)
	if err != nil {
		return mhtml.Part{}, fmt.Errorf("parcelnet: direct fetch %s: %w", url, err)
	}
	return mhtml.Part{URL: url, ContentType: ct, Status: status, Body: body}, nil
}

// fetchShed pulls shed objects from the origin in the background so they are
// resident by the time the page needs them (DIR semantics for just those
// objects, not the whole page).
func (c *Client) fetchShed(urls []string) {
	for _, u := range urls {
		c.mu.Lock()
		_, have := c.store[u]
		dead := c.closed || c.rerr != nil
		c.mu.Unlock()
		if have || dead {
			continue
		}
		p, err := c.fetchDirect(u)
		if err != nil {
			c.cfg.Logf("shed fetch %s: %v", u, err)
			continue
		}
		c.mu.Lock()
		if _, dup := c.store[p.URL]; !dup {
			c.order = append(c.order, p.URL)
		}
		c.store[p.URL] = p
		c.cond.Broadcast()
		c.mu.Unlock()
	}
}

// Object returns the named object, waiting for it to be pushed. If the
// completion notification has arrived and the object is still missing, a
// fallback request is sent to the proxy (once) — or, in degraded mode,
// fetched directly from the origin. It fails after timeout; a dead client
// fails immediately with ErrClosed or ErrProxyGone instead.
func (c *Client) Object(url string, timeout time.Duration) (mhtml.Part, error) {
	deadline := time.Now().Add(timeout)
	timer := time.AfterFunc(timeout, func() {
		c.mu.Lock()
		c.cond.Broadcast()
		c.mu.Unlock()
	})
	defer timer.Stop()

	c.mu.Lock()
	defer c.mu.Unlock()
	requested := false
	for {
		if p, ok := c.store[url]; ok {
			return p, nil
		}
		if c.rerr != nil {
			return mhtml.Part{}, c.rerr
		}
		if c.degraded {
			c.mu.Unlock()
			p, err := c.fetchDirect(url)
			c.mu.Lock()
			if err != nil {
				return mhtml.Part{}, err
			}
			if _, dup := c.store[p.URL]; !dup {
				c.order = append(c.order, p.URL)
			}
			c.store[p.URL] = p
			c.cond.Broadcast()
			return p, nil
		}
		// A shed object will never be pushed: fetch it directly when we can,
		// or fall back to an object request without waiting for completion.
		if c.shed[url] && !requested {
			if c.cfg.DirectOrigin != "" {
				c.mu.Unlock()
				p, err := c.fetchDirect(url)
				c.mu.Lock()
				if err != nil {
					return mhtml.Part{}, err
				}
				if _, dup := c.store[p.URL]; !dup {
					c.order = append(c.order, p.URL)
				}
				c.store[p.URL] = p
				c.cond.Broadcast()
				return p, nil
			}
			requested = true
			c.Fallbacks++
			fw := c.fw
			go func() {
				if err := fw.WriteJSON(TObjectRequest, ObjectRequest{URL: url}); err != nil {
					c.noteFallbackWriteError("shed object request for %s failed: %v", url, err)
				}
			}()
		}
		if c.notified && !requested {
			requested = true
			c.Fallbacks++
			fw := c.fw
			go func() {
				if err := fw.WriteJSON(TObjectRequest, ObjectRequest{URL: url}); err != nil {
					// The read loop sees the broken connection and drives
					// reconnection; here we surface the failed request as a
					// counted error, not just a log line.
					c.noteFallbackWriteError("fallback object request for %s failed: %v", url, err)
				}
			}()
		}
		if time.Now().After(deadline) {
			return mhtml.Part{}, fmt.Errorf("parcelnet: timeout waiting for %s", url)
		}
		c.cond.Wait()
	}
}

// WaitComplete blocks until the proxy's completion notification (or timeout).
// A degraded client reports completion immediately; a dead client returns
// ErrClosed or ErrProxyGone instead of waiting out the timeout.
func (c *Client) WaitComplete(timeout time.Duration) (CompleteNote, error) {
	deadline := time.Now().Add(timeout)
	timer := time.AfterFunc(timeout, func() {
		c.mu.Lock()
		c.cond.Broadcast()
		c.mu.Unlock()
	})
	defer timer.Stop()

	c.mu.Lock()
	defer c.mu.Unlock()
	for !c.notified {
		if c.rerr != nil {
			return CompleteNote{}, c.rerr
		}
		if time.Now().After(deadline) {
			return CompleteNote{}, fmt.Errorf("parcelnet: timeout waiting for completion")
		}
		c.cond.Wait()
	}
	return c.note, nil
}

// Objects returns the URLs received so far, in arrival order.
func (c *Client) Objects() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.order...)
}

// Has reports whether url has been received.
func (c *Client) Has(url string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.store[url]
	return ok
}

// SessionLoad snapshots this client's page load as one fleet sample: latency
// to the completion notification, push/cache counters from the proxy's
// CompleteNote, and the bytes that crossed the proxy→client link (egress).
func (c *Client) SessionLoad(id int) metrics.SessionLoad {
	c.mu.Lock()
	defer c.mu.Unlock()
	l := metrics.SessionLoad{
		ID:                  id,
		Completed:           c.notified && c.rerr == nil,
		CacheHits:           c.note.CacheHits,
		CacheMisses:         c.note.CacheMisses,
		EgressBytes:         c.BytesReceived,
		OriginBytes:         c.note.OriginBytes,
		Deferred:            c.note.ObjectsDeferred,
		Shed:                c.note.ObjectsShed,
		FallbackWriteErrors: c.FallbackWriteErrors,
		Retries:             c.note.OriginRetries + c.Retries,
		StaleServes:         c.note.StaleServes,
		Drained:             c.Drained > 0,
	}
	if c.page != nil {
		l.Page = c.page.URL
	}
	if !c.startedAt.IsZero() && !c.CompleteAt.IsZero() {
		l.Latency = c.CompleteAt.Sub(c.startedAt)
	}
	if !c.startedAt.IsZero() && !c.FirstCriticalAt.IsZero() {
		l.FirstCritical = c.FirstCriticalAt.Sub(c.startedAt)
	}
	return l
}
