package parcelnet

import (
	"strings"
	"testing"
	"time"

	"github.com/parcel-go/parcel/internal/httpsim"
	"github.com/parcel-go/parcel/internal/leakcheck"
	"github.com/parcel-go/parcel/internal/replay"
)

func faultyOrigin(t *testing.T, cfg replay.OriginFaults) (*Origin, *OriginFetcher) {
	t.Helper()
	store := httpsim.MapStore{
		"http://site.example/": {URL: "http://site.example/", ContentType: "text/html", Body: []byte("<html>0123456789abcdef</html>")},
	}
	o, err := StartOrigin("127.0.0.1:0", store)
	if err != nil {
		t.Fatal(err)
	}
	fi, err := replay.NewFaultInjector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	o.SetFaults(fi)
	return o, NewOriginFetcher(o.Addr())
}

func TestOriginFaultErrorServes503(t *testing.T) {
	defer leakcheck.Check(t)()
	o, f := faultyOrigin(t, replay.OriginFaults{ErrorRate: 1})
	defer o.Close()
	_, _, status, _, err := f.FetchValidated("http://site.example/")
	if err != nil {
		t.Fatalf("503 must be a response, not a transport error: %v", err)
	}
	if status != 503 {
		t.Fatalf("status = %d, want 503", status)
	}
	if s := o.FaultStats(); s.Errors != 1 {
		t.Fatalf("stats = %+v", s)
	}
	f.Client.CloseIdleConnections()
}

func TestOriginFaultPartialIsTransportError(t *testing.T) {
	defer leakcheck.Check(t)()
	o, f := faultyOrigin(t, replay.OriginFaults{PartialRate: 1})
	defer o.Close()
	_, _, _, _, err := f.FetchValidated("http://site.example/")
	if err == nil {
		t.Fatal("truncated body read did not error")
	}
	if s := o.FaultStats(); s.Partials != 1 {
		t.Fatalf("stats = %+v", s)
	}
	f.Client.CloseIdleConnections()
}

func TestOriginFaultStallDelays(t *testing.T) {
	defer leakcheck.Check(t)()
	stall := 300 * time.Millisecond
	o, f := faultyOrigin(t, replay.OriginFaults{StallRate: 1, StallFor: stall})
	defer o.Close()
	t0 := time.Now()
	_, _, status, _, err := f.FetchValidated("http://site.example/")
	if err != nil || status != 200 {
		t.Fatalf("stalled fetch: status %d, err %v", status, err)
	}
	if since := time.Since(t0); since < stall {
		t.Fatalf("fetch returned in %v, want >= %v", since, stall)
	}
	if s := o.FaultStats(); s.Stalls != 1 {
		t.Fatalf("stats = %+v", s)
	}
	f.Client.CloseIdleConnections()
}

func TestOriginServesPinnedValidator(t *testing.T) {
	defer leakcheck.Check(t)()
	store := httpsim.MapStore{
		"http://site.example/": {URL: "http://site.example/", ContentType: "text/html", Body: []byte("body"), Validator: "etag-pinned"},
	}
	o, err := StartOrigin("127.0.0.1:0", store)
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	f := NewOriginFetcher(o.Addr())
	body, _, status, validator, err := f.FetchValidated("http://site.example/")
	if err != nil || status != 200 {
		t.Fatalf("fetch: status %d, err %v", status, err)
	}
	if validator != "etag-pinned" {
		t.Fatalf("validator = %q, want pinned", validator)
	}
	if string(body) != "body" {
		t.Fatalf("body = %q", body)
	}
	f.Client.CloseIdleConnections()
}

func TestOriginDerivedValidatorMatchesSimArm(t *testing.T) {
	defer leakcheck.Check(t)()
	body := []byte("<html>shared-canonical-hash</html>")
	store := httpsim.MapStore{
		"http://site.example/": {URL: "http://site.example/", ContentType: "text/html", Body: body},
	}
	o, err := StartOrigin("127.0.0.1:0", store)
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()
	f := NewOriginFetcher(o.Addr())
	_, _, _, validator, err := f.FetchValidated("http://site.example/")
	if err != nil {
		t.Fatal(err)
	}
	if want := httpsim.ContentValidator(body); validator != want {
		t.Fatalf("real-arm validator %q != sim-arm validator %q", validator, want)
	}
	if !strings.EqualFold(validator, BodyValidator(body)) {
		t.Fatalf("BodyValidator drifted from ContentValidator")
	}
	f.Client.CloseIdleConnections()
}
