package parcelnet

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// parcelmux: the multiplexed, prioritized, flow-controlled stream layer.
//
// The legacy push path writes each object as one monolithic TBundle frame;
// a 1 MB hero image then head-of-line-blocks the 4 KB stylesheet queued
// behind it. parcelmux splits every object into a TStreamOpen frame plus
// interleaved TStreamData chunks, scheduled by a priority-weighted round
// robin: critical classes (HTML, CSS, scripts — the objects that gate first
// paint) get muxCriticalWeight turns for every bulk turn, and streams inside
// a class alternate chunk by chunk. HTTP/2-style windows bound how far the
// sender may run ahead of the client: each stream carries its own window and
// the connection carries a shared one, both refilled by TWindowUpdate
// credits. A zero-window stream is simply ineligible — it emits nothing.
//
// muxSender lives under the owning session's mutex; nextFrame is called only
// by the session writer goroutine and assembles complete frames (header
// included) into one reusable scratch buffer, so the steady-state data path
// is one syscall and zero allocations per chunk.

const (
	muxDefaultChunk        = 32 << 10
	muxDefaultStreamWindow = 256 << 10
	muxDefaultConnWindow   = 1 << 20

	// muxCriticalWeight is how many critical-class sends the scheduler makes
	// per bulk-class send while both classes have eligible streams.
	muxCriticalWeight = 8

	muxFlagEnd byte = 1 << 0

	muxClassCritical = 0
	muxClassBulk     = 1
)

// prioClass maps a content type onto a scheduler class: objects that block
// parsing or rendering are critical, everything else (images, fonts, video)
// is bulk.
func prioClass(contentType string) int {
	for _, sub := range [...]string{"html", "css", "javascript", "json"} {
		if strings.Contains(contentType, sub) {
			return muxClassCritical
		}
	}
	return muxClassBulk
}

// muxStream is one in-flight object push.
type muxStream struct {
	id          uint32
	class       int
	url         string
	contentType string
	status      int
	body        []byte // remaining bytes to send (resume offset already applied)
	sent        int    // bytes of body already framed
	offset      int64  // resume offset: client holds body bytes [0, offset)
	total       int64  // full object size
	window      int64  // stream-level send credit
	opened      bool
}

func (s *muxStream) remaining() int { return len(s.body) - s.sent }

// muxSender schedules a session's outbound streams. All fields are guarded
// by the owning session's mutex.
type muxSender struct {
	henc    MetaEncoder
	nextID  uint32
	classes [2][]*muxStream
	byID    map[uint32]*muxStream
	live    int

	chunk      int
	streamWin  int64
	connWindow int64
	critRuns   int // consecutive critical-class sends since the last bulk send

	scratch []byte // reusable frame assembly buffer
}

func newMuxSender(chunk int, streamWin, connWin int64) *muxSender {
	if chunk <= 0 {
		chunk = muxDefaultChunk
	}
	if streamWin <= 0 {
		streamWin = muxDefaultStreamWindow
	}
	if connWin <= 0 {
		connWin = muxDefaultConnWindow
	}
	return &muxSender{
		nextID:     1,
		byID:       make(map[uint32]*muxStream),
		chunk:      chunk,
		streamWin:  streamWin,
		connWindow: connWin,
		scratch:    make([]byte, 0, 5+9+chunk),
	}
}

// settingsPayload is what the proxy announces in TMuxSettings.
func (m *muxSender) settingsPayload() []byte {
	p := make([]byte, 12)
	binary.BigEndian.PutUint32(p[0:], uint32(m.streamWin))
	binary.BigEndian.PutUint32(p[4:], uint32(m.connWindow))
	binary.BigEndian.PutUint32(p[8:], uint32(m.chunk))
	return p
}

// add opens a stream for one object. body is the remaining bytes to push —
// for a resumed object the caller has already sliced off the first offset
// bytes. The sender holds body by reference and never mutates it, so
// shared-cache slices can be passed directly. The caller's pushq
// reservation for those bytes transfers to the stream: the writer releases
// it chunk by chunk as frames drain, or drain() hands the rest back when
// the session dies.
//
//parcelvet:transfer pushq
func (m *muxSender) add(url, contentType string, status int, body []byte, offset, total int64) *muxStream {
	s := &muxStream{
		id:          m.nextID,
		class:       prioClass(contentType),
		url:         url,
		contentType: contentType,
		status:      status,
		body:        body,
		offset:      offset,
		total:       total,
		window:      m.streamWin,
	}
	m.nextID++
	m.classes[s.class] = append(m.classes[s.class], s)
	m.byID[s.id] = s
	m.live++
	return s
}

// credit applies a TWindowUpdate: id 0 refills the connection window,
// anything else the matching stream (unknown ids — already-finished
// streams — are ignored). This is the release side of the muxwin pair:
// every byte debitWindows claims comes back here as the client acks.
//
//parcelvet:release muxwin
func (m *muxSender) credit(id, inc uint32) {
	if id == 0 {
		m.connWindow += int64(inc)
		return
	}
	if s, ok := m.byID[id]; ok {
		s.window += int64(inc)
	}
}

// eligible reports whether s may emit a frame right now. Flow control is
// strict: a stream with no window writes nothing, not even its open frame,
// and data additionally needs connection-level credit.
func (m *muxSender) eligible(s *muxStream) bool {
	if s.window <= 0 {
		return false
	}
	if s.remaining() > 0 && s.opened && m.connWindow <= 0 {
		return false
	}
	return true
}

// pickLocked chooses the next stream: critical drains ahead of bulk at a
// muxCriticalWeight:1 ratio, round-robin inside each class (the picked
// stream rotates to the back of its queue).
func (m *muxSender) pickLocked() *muxStream {
	first, second := muxClassCritical, muxClassBulk
	if m.critRuns >= muxCriticalWeight && m.eligibleIn(muxClassBulk) >= 0 {
		first, second = muxClassBulk, muxClassCritical
	}
	for _, class := range [2]int{first, second} {
		i := m.eligibleIn(class)
		if i < 0 {
			continue
		}
		q := m.classes[class]
		s := q[i]
		copy(q[i:], q[i+1:])
		q[len(q)-1] = s
		if class == muxClassCritical {
			m.critRuns++
		} else {
			m.critRuns = 0
		}
		return s
	}
	return nil
}

// eligibleIn returns the index of the first eligible stream in class, or -1.
func (m *muxSender) eligibleIn(class int) int {
	for i, s := range m.classes[class] {
		if m.eligible(s) {
			return i
		}
	}
	return -1
}

// nextFrame assembles the next scheduled frame into the sender's scratch
// buffer. It returns the complete frame (valid until the next call), the
// number of body bytes it drains from the session's queue accounting, and
// whether any stream was eligible. Called only by the writer goroutine,
// under the session mutex.
func (m *muxSender) nextFrame() (frame []byte, drained int, ok bool) {
	s := m.pickLocked()
	if s == nil {
		return nil, 0, false
	}
	if !s.opened {
		s.opened = true
		flags := byte(0)
		if s.remaining() == 0 {
			flags |= muxFlagEnd
			m.finish(s)
		}
		b := m.scratch[:0]
		b = append(b, TStreamOpen, 0, 0, 0, 0) // header, length patched below
		b = binary.BigEndian.AppendUint32(b, s.id)
		b = append(b, flags, byte(s.class))
		b = binary.AppendUvarint(b, uint64(s.offset))
		b = binary.AppendUvarint(b, uint64(s.total))
		// Metadata is encoded here, not at add time: the HPACK-lite dynamic
		// table syncs by frame order, and the priority scheduler emits opens
		// in a different order than the bundler queued them. Encoding at
		// emission keeps the encoder's prefix insertions aligned with what
		// the decoder sees.
		b = m.henc.AppendMeta(b, s.url, s.contentType, s.status)
		return m.sealFrame(b), 0, true
	}
	n := s.remaining()
	if n > m.chunk {
		n = m.chunk
	}
	if int64(n) > s.window {
		n = int(s.window)
	}
	if int64(n) > m.connWindow {
		n = int(m.connWindow)
	}
	chunk := s.body[s.sent : s.sent+n]
	s.sent += n
	m.debitWindows(s, n)
	flags := byte(0)
	if s.remaining() == 0 {
		flags |= muxFlagEnd
		m.finish(s)
	}
	b := m.scratch[:0]
	b = append(b, TStreamData, 0, 0, 0, 0)
	b = binary.BigEndian.AppendUint32(b, s.id)
	b = append(b, flags)
	b = append(b, chunk...)
	return m.sealFrame(b), n, true
}

// debitWindows claims n body bytes of s's per-stream window and the shared
// connection window before they go on the wire — the debit half of the
// muxwin pair that credit() refills from the client's TWindowUpdate acks.
//
//parcelvet:acquire muxwin
func (m *muxSender) debitWindows(s *muxStream, n int) {
	s.window -= int64(n)
	m.connWindow -= int64(n)
}

// sealFrame patches the frame-length header and retains the scratch buffer
// for the next assembly. Returning the sealed frame transfers the window
// claim to the wire: the bytes are the client's to ack back via credit().
//
//parcelvet:transfer muxwin
func (m *muxSender) sealFrame(b []byte) []byte {
	binary.BigEndian.PutUint32(b[1:5], uint32(len(b)-5))
	m.scratch = b
	return b
}

// finish removes a stream whose last frame was just assembled.
func (m *muxSender) finish(s *muxStream) {
	delete(m.byID, s.id)
	q := m.classes[s.class]
	for i, t := range q {
		if t == s {
			copy(q[i:], q[i+1:])
			q[len(q)-1] = nil
			m.classes[s.class] = q[:len(q)-1]
			break
		}
	}
	m.live--
}

// pendingBytes is the body bytes still queued across all live streams.
func (m *muxSender) pendingBytes() int64 {
	var n int64
	for _, q := range m.classes {
		for _, s := range q {
			n += int64(s.remaining())
		}
	}
	return n
}

// pendingURLs lists the live streams that still have unsent body bytes — the
// objects a drain notice must hand back to the client as pending work.
func (m *muxSender) pendingURLs() []string {
	var urls []string
	for _, q := range m.classes {
		for _, s := range q {
			if s.remaining() > 0 {
				urls = append(urls, s.url)
			}
		}
	}
	return urls
}

// drain empties the scheduler at session teardown and returns the body bytes
// whose push-budget reservation the caller must release. Idempotent: a
// second call finds nothing live and returns 0.
func (m *muxSender) drain() int64 {
	n := m.pendingBytes()
	m.classes[0], m.classes[1] = nil, nil
	m.byID = make(map[uint32]*muxStream)
	m.live = 0
	return n
}

// --- client side ---------------------------------------------------------

// windowAck is a flow-control credit the client owes the proxy.
type windowAck struct {
	id  uint32 // 0 = connection window
	inc uint32
}

// muxPart is one fully reassembled object.
type muxPart struct {
	URL         string
	ContentType string
	Status      int
	Class       int
	Body        []byte
	Resumed     bool
}

// inStream is one partially received object on the client.
type inStream struct {
	url         string
	contentType string
	status      int
	class       int
	total       int64
	buf         []byte
	resumed     bool
	consumed    uint32 // bytes since the stream's last WINDOW_UPDATE
}

// muxAssembler reassembles interleaved stream frames back into objects and
// produces the window credits that keep the proxy sending. One assembler
// serves one connection; a reconnect starts a fresh one (the HPACK tables
// reset with the connection).
type muxAssembler struct {
	hdec         MetaDecoder
	streams      map[uint32]*inStream
	streamWin    uint32
	connWin      uint32
	chunk        uint32
	connConsumed uint32

	// partial returns the bytes already held for a URL when the proxy
	// reopens a stream at a nonzero offset (resume), or nil.
	partial func(url string) []byte
}

func newMuxAssembler(partial func(url string) []byte) *muxAssembler {
	return &muxAssembler{
		streams:   make(map[uint32]*inStream),
		streamWin: muxDefaultStreamWindow,
		connWin:   muxDefaultConnWindow,
		chunk:     muxDefaultChunk,
		partial:   partial,
	}
}

func (a *muxAssembler) onSettings(p []byte) error {
	if len(p) < 12 {
		return fmt.Errorf("parcelnet: short mux settings frame (%d bytes)", len(p))
	}
	a.streamWin = binary.BigEndian.Uint32(p[0:])
	a.connWin = binary.BigEndian.Uint32(p[4:])
	a.chunk = binary.BigEndian.Uint32(p[8:])
	return nil
}

// onOpen handles a TStreamOpen payload. When the frame carries the END flag
// (empty or fully-resumed object) the completed part is returned.
func (a *muxAssembler) onOpen(p []byte) (*muxPart, error) {
	if len(p) < 6 {
		return nil, fmt.Errorf("parcelnet: short stream open frame (%d bytes)", len(p))
	}
	id := binary.BigEndian.Uint32(p[0:])
	flags := p[4]
	class := int(p[5])
	rest := p[6:]
	offset, rest, err := readUvarint(rest)
	if err != nil {
		return nil, err
	}
	total, rest, err := readUvarint(rest)
	if err != nil {
		return nil, err
	}
	if total > maxFrame || offset > total {
		return nil, fmt.Errorf("parcelnet: stream %d bad extent offset=%d total=%d", id, offset, total)
	}
	url, ct, status, _, err := a.hdec.ReadMeta(rest)
	if err != nil {
		return nil, err
	}
	if url == "" {
		return nil, fmt.Errorf("parcelnet: stream %d has empty URL", id)
	}
	if _, dup := a.streams[id]; dup {
		return nil, fmt.Errorf("parcelnet: duplicate stream id %d", id)
	}
	s := &inStream{
		url:         url,
		contentType: ct,
		status:      status,
		class:       class,
		total:       int64(total),
	}
	if offset > 0 {
		held := a.partial(url)
		if uint64(len(held)) != offset {
			return nil, fmt.Errorf("parcelnet: stream %d resume offset %d but client holds %d bytes", id, offset, len(held))
		}
		s.buf = make([]byte, 0, total)
		s.buf = append(s.buf, held...)
		s.resumed = true
	} else if total > 0 {
		s.buf = make([]byte, 0, total)
	}
	if flags&muxFlagEnd != 0 {
		return &muxPart{URL: url, ContentType: ct, Status: status, Class: class, Body: s.buf, Resumed: s.resumed}, nil
	}
	a.streams[id] = s
	return nil, nil
}

// onData handles a TStreamData payload. It returns the completed part when
// the END flag closes the stream, plus any window credits now due. The
// chunk bytes are copied out of p, so the caller may recycle the frame
// buffer immediately.
func (a *muxAssembler) onData(p []byte) (*muxPart, []windowAck, error) {
	if len(p) < 5 {
		return nil, nil, fmt.Errorf("parcelnet: short stream data frame (%d bytes)", len(p))
	}
	id := binary.BigEndian.Uint32(p[0:])
	flags := p[4]
	chunk := p[5:]
	s, ok := a.streams[id]
	if !ok {
		return nil, nil, fmt.Errorf("parcelnet: data for unknown stream %d", id)
	}
	if int64(len(s.buf)+len(chunk)) > s.total {
		return nil, nil, fmt.Errorf("parcelnet: stream %d overflows declared size %d", id, s.total)
	}
	s.buf = append(s.buf, chunk...)
	s.consumed += uint32(len(chunk))
	a.connConsumed += uint32(len(chunk))
	var acks []windowAck
	if a.connConsumed >= a.connWin/2 && a.connWin > 0 {
		acks = append(acks, windowAck{id: 0, inc: a.connConsumed})
		a.connConsumed = 0
	}
	if flags&muxFlagEnd != 0 {
		delete(a.streams, id)
		return &muxPart{URL: s.url, ContentType: s.contentType, Status: s.status, Class: s.class, Body: s.buf, Resumed: s.resumed}, acks, nil
	}
	if s.consumed >= a.streamWin/2 && a.streamWin > 0 {
		acks = append(acks, windowAck{id: id, inc: s.consumed})
		s.consumed = 0
	}
	return nil, acks, nil
}

// partials snapshots every incomplete stream as url -> bytes held. A
// disconnecting client harvests this into its resume manifest so the next
// connection can reopen the streams mid-object.
func (a *muxAssembler) partials() map[string][]byte {
	if len(a.streams) == 0 {
		return nil
	}
	out := make(map[string][]byte, len(a.streams))
	for _, s := range a.streams {
		if len(s.buf) > 0 {
			out[s.url] = s.buf
		}
	}
	return out
}
