package parcelnet

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"github.com/parcel-go/parcel/internal/httpsim"
	"github.com/parcel-go/parcel/internal/replay"
)

// Origin is a real HTTP server that serves a replay store. All logical
// domains of an archive resolve to this one listener: the logical URL is
// reconstructed from the request's Host header, exactly how the paper's
// web-page-replay server answers for every recorded domain (§7.3).
type Origin struct {
	store   httpsim.Store
	srv     *http.Server
	ln      net.Listener
	started time.Time

	// faults, when set, makes per-request fault decisions (errors, stalls,
	// truncated bodies, flaps). Install with SetFaults before traffic.
	faults *replay.FaultInjector

	// requests counts served requests (atomic: the server handles
	// concurrent crawler fetches).
	requests atomic.Int64
}

// Requests returns how many requests the origin has served.
func (o *Origin) Requests() int64 { return o.requests.Load() }

// SetFaults arms fault injection. Call before serving traffic; the injector
// field is not synchronized against in-flight requests.
func (o *Origin) SetFaults(fi *replay.FaultInjector) { o.faults = fi }

// FaultStats returns injected-fault counts (zero value when no injector).
func (o *Origin) FaultStats() replay.FaultStats {
	if o.faults == nil {
		return replay.FaultStats{}
	}
	return o.faults.Stats()
}

// StartOrigin serves store on addr ("127.0.0.1:0" for an ephemeral port).
func StartOrigin(addr string, store httpsim.Store) (*Origin, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	o := &Origin{store: store, ln: ln, started: time.Now()}
	o.srv = &http.Server{Handler: http.HandlerFunc(o.handle), ReadHeaderTimeout: 5 * time.Second}
	go o.srv.Serve(ln)
	return o, nil
}

// Addr returns the listener address.
func (o *Origin) Addr() string { return o.ln.Addr().String() }

// Close shuts the server down.
func (o *Origin) Close() error { return o.srv.Close() }

func (o *Origin) handle(w http.ResponseWriter, r *http.Request) {
	o.requests.Add(1)
	fault := replay.FaultNone
	if o.faults != nil {
		fault = o.faults.Decide(time.Since(o.started))
	}
	if fault == replay.FaultError {
		http.Error(w, "origin unavailable", http.StatusServiceUnavailable)
		return
	}
	if fault == replay.FaultStall {
		// A slow origin, not a dead one: the response arrives after the stall,
		// pinning the fetcher's connection (and, without the resilient fetch
		// path's per-attempt deadline, the session waiting on it).
		time.Sleep(o.faults.StallFor())
	}
	logical := "http://" + r.Host + r.URL.RequestURI()
	obj, ok := o.store.Get(logical)
	if !ok {
		http.NotFound(w, r)
		return
	}
	if obj.ContentType != "" {
		w.Header().Set("Content-Type", obj.ContentType)
	}
	validator := obj.Validator
	if validator == "" {
		validator = BodyValidator(obj.Body)
	}
	w.Header().Set("Content-Length", strconv.Itoa(len(obj.Body)))
	w.Header().Set("ETag", `"`+validator+`"`)
	status := obj.Status
	if status == 0 {
		status = http.StatusOK
	}
	w.WriteHeader(status)
	if fault == replay.FaultPartial {
		// Truncated transfer: advertise the full length, deliver half, then
		// abort the connection so the fetcher sees a real io error instead of
		// a clean short body.
		w.Write(obj.Body[:len(obj.Body)/2])
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		panic(http.ErrAbortHandler)
	}
	w.Write(obj.Body)
}

// OriginFetcher fetches logical URLs (http://domain/path) by connecting to a
// fixed origin address and carrying the logical domain in the Host header —
// the real-network stand-in for DNS resolution onto the replay server.
type OriginFetcher struct {
	OriginAddr string
	Client     *http.Client
}

// NewOriginFetcher builds a fetcher against the origin at addr, sized for one
// session (the paper's six connections per domain).
func NewOriginFetcher(addr string) *OriginFetcher { return NewOriginFetcherN(addr, 6) }

// NewOriginFetcherN builds a fetcher with an explicit connection budget. The
// multi-tenant proxy shares one fetcher across every session, so its pool
// must be provisioned for the fleet, not one page: all logical domains
// resolve to the single origin address, and http.Transport pools by that
// address, so maxConns bounds the proxy↔origin connection count globally.
func NewOriginFetcherN(addr string, maxConns int) *OriginFetcher {
	return &OriginFetcher{
		OriginAddr: addr,
		Client: &http.Client{
			Timeout: 30 * time.Second,
			Transport: &http.Transport{
				MaxIdleConnsPerHost: maxConns,
				MaxConnsPerHost:     maxConns,
			},
		},
	}
}

// BodyValidator derives the content digest the origin serves as its ETag: the
// canonical content-hash validator shared with the simulation arm, so "same
// validator ⇒ same bytes" holds across both arms' caches.
func BodyValidator(body []byte) string {
	return httpsim.ContentValidator(body)
}

// Fetch retrieves a logical URL, returning the body and content type.
func (f *OriginFetcher) Fetch(logicalURL string) (body []byte, contentType string, status int, err error) {
	body, contentType, status, _, err = f.FetchValidated(logicalURL)
	return body, contentType, status, err
}

// FetchValidated is Fetch plus the origin's validator (the ETag, unquoted; a
// content digest of the body when the origin sends none, so the validator is
// never empty for a successful response).
func (f *OriginFetcher) FetchValidated(logicalURL string) (body []byte, contentType string, status int, validator string, err error) {
	return f.FetchValidatedCtx(context.Background(), logicalURL)
}

// FetchValidatedCtx is FetchValidated under a caller context: the resilient
// fetch path uses the context deadline as its per-attempt timeout, well under
// the Client's own 30 s backstop.
func (f *OriginFetcher) FetchValidatedCtx(ctx context.Context, logicalURL string) (body []byte, contentType string, status int, validator string, err error) {
	domain, path := httpsim.SplitURL(logicalURL)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+f.OriginAddr+path, nil)
	if err != nil {
		return nil, "", 0, "", err
	}
	req.Host = domain
	resp, err := f.Client.Do(req)
	if err != nil {
		return nil, "", 0, "", fmt.Errorf("fetch %s: %w", logicalURL, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, "", 0, "", fmt.Errorf("fetch %s: %w", logicalURL, err)
	}
	validator = strings.Trim(resp.Header.Get("ETag"), `"`)
	if validator == "" {
		validator = BodyValidator(data)
	}
	return data, resp.Header.Get("Content-Type"), resp.StatusCode, validator, nil
}
