package parcelnet

import "sync"

// Frame payload buffers are recycled through size-bucketed free lists so the
// read loops — one frame per proxy request, one per client push chunk — stop
// allocating a fresh []byte per frame. Buckets are powers of two from 512 B
// to maxFrame; each bucket retains at most bufBucketRetainBytes of idle
// buffers so a burst of large frames cannot pin memory forever. With
// -tags simdebug every grab/release pair is checked: releasing a buffer twice
// panics at the offending call site (see pooldebug_on.go), mirroring the
// simnet packet and minijs frame pools.

const (
	bufMinBits = 9  // smallest bucket: 512 B
	bufMaxBits = 26 // largest bucket: 64 MB == maxFrame
	// bufBucketRetainBytes bounds the idle bytes kept per bucket.
	bufBucketRetainBytes = 4 << 20
)

// bufBucketT is one free list: a mutex-guarded stack of same-capacity slices.
type bufBucketT struct {
	mu   sync.Mutex
	free [][]byte
	max  int // retained-buffer cap for this bucket
}

var frameBufBuckets = func() *[bufMaxBits - bufMinBits + 1]bufBucketT {
	var b [bufMaxBits - bufMinBits + 1]bufBucketT
	for i := range b {
		max := bufBucketRetainBytes >> (bufMinBits + i)
		if max < 1 {
			max = 1
		}
		b[i].max = max
	}
	return &b
}()

// bufBucketFor returns the bucket index whose capacity (1<<(bufMinBits+idx))
// holds n bytes. The caller guarantees n <= maxFrame.
func bufBucketFor(n int) int {
	idx := 0
	for n > 1<<(bufMinBits+idx) {
		idx++
	}
	return idx
}

// grabFrameBuf returns a length-n buffer from the pool (or a fresh one).
//
//parcelvet:acquire framebuf
func grabFrameBuf(n int) []byte {
	if n == 0 {
		return nil
	}
	idx := bufBucketFor(n)
	b := &frameBufBuckets[idx]
	b.mu.Lock()
	if last := len(b.free) - 1; last >= 0 {
		buf := b.free[last]
		b.free[last] = nil
		b.free = b.free[:last]
		b.mu.Unlock()
		checkFrameBufGrab(buf)
		return buf[:n]
	}
	b.mu.Unlock()
	return make([]byte, n, 1<<(bufMinBits+idx))
}

// ReleaseFrameBuf returns a ReadFramePooled payload to its bucket. Buffers
// whose capacity is not an exact bucket size (foreign slices) are dropped,
// so releasing something the pool never produced is harmless.
//
//parcelvet:release framebuf
func ReleaseFrameBuf(buf []byte) {
	c := cap(buf)
	if c < 1<<bufMinBits || c > 1<<bufMaxBits || c&(c-1) != 0 {
		return
	}
	idx := 0
	for c > 1<<(bufMinBits+idx) {
		idx++
	}
	b := &frameBufBuckets[idx]
	b.mu.Lock()
	// Deferred so a simdebug double-free panic does not leave the bucket
	// locked for whoever recovers it.
	defer b.mu.Unlock()
	if len(b.free) < b.max {
		checkFrameBufRelease(buf[:1])
		b.free = append(b.free, buf[:0])
	}
}
