package parcelnet

import (
	"testing"
	"time"

	"github.com/parcel-go/parcel/internal/leakcheck"
	"github.com/parcel-go/parcel/internal/replay"
	"github.com/parcel-go/parcel/internal/resilience"
	"github.com/parcel-go/parcel/internal/sched"
)

// TestResilientRetriesThroughFlap runs a session against an origin that is
// down for its first 750 ms (a flap window): the resilient fetch path retries
// with backoff until the window passes, the session completes with the full
// object set, and the retries are charged to the session's CompleteNote and
// SessionLoad.
func TestResilientRetriesThroughFlap(t *testing.T) {
	defer leakcheck.Check(t)()
	archive, mainURL := testArchive()
	origin, err := StartOrigin("127.0.0.1:0", replay.Rewriting{Store: archive})
	if err != nil {
		t.Fatal(err)
	}
	defer origin.Close()
	fi, err := replay.NewFaultInjector(replay.OriginFaults{
		Flaps: []replay.FlapWindow{{Start: 0, End: 750 * time.Millisecond}},
	})
	if err != nil {
		t.Fatal(err)
	}
	origin.SetFaults(fi)
	proxy, err := StartProxy("127.0.0.1:0", ProxyConfig{
		OriginAddr:  origin.Addr(),
		Sched:       sched.ConfigIND,
		QuietPeriod: 300 * time.Millisecond,
		FixedRandom: true,
		Resilience: &resilience.Policy{
			Timeout:          2 * time.Second,
			MaxRetries:       3,
			BackoffBase:      500 * time.Millisecond,
			BackoffMax:       time.Second,
			FailureThreshold: 8,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	client, err := Dial(proxy.Addr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.RequestPage(mainURL, "", ""); err != nil {
		t.Fatal(err)
	}
	note, err := client.WaitComplete(15 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(client.Objects()); got != archive.Len() {
		t.Errorf("received %d objects, want %d", got, archive.Len())
	}
	if note.OriginRetries == 0 {
		t.Error("note.OriginRetries = 0, want at least one retry through the flap window")
	}
	if fs := origin.FaultStats(); fs.FlapErrors == 0 {
		t.Errorf("origin injected no flap errors: %+v", fs)
	}
	if rs := proxy.ResilienceStats(); rs.Retries == 0 {
		t.Errorf("proxy resilience stats recorded no retries: %+v", rs)
	}
	if l := client.SessionLoad(0); l.Retries == 0 {
		t.Errorf("SessionLoad.Retries = 0, want note retries carried through (note=%+v)", note)
	}
}

// TestResilientServesStaleWhenOriginDies loads a page once to warm the shared
// cache, kills the origin, waits out the freshness window, and loads again:
// every object is served from the stale cache instead of failing, the session
// completes with the full set, and the degradation is tagged in StaleServes.
func TestResilientServesStaleWhenOriginDies(t *testing.T) {
	defer leakcheck.Check(t)()
	archive, mainURL := testArchive()
	origin, err := StartOrigin("127.0.0.1:0", replay.Rewriting{Store: archive})
	if err != nil {
		t.Fatal(err)
	}
	defer origin.Close()
	proxy, err := StartProxy("127.0.0.1:0", ProxyConfig{
		OriginAddr:    origin.Addr(),
		Sched:         sched.ConfigIND,
		QuietPeriod:   300 * time.Millisecond,
		FixedRandom:   true,
		CacheBytes:    1 << 20,
		CacheFreshFor: 50 * time.Millisecond,
		Resilience: &resilience.Policy{
			Timeout:    2 * time.Second,
			MaxRetries: 0,
			NegTTL:     time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	warm, err := Dial(proxy.Addr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := warm.RequestPage(mainURL, "", ""); err != nil {
		t.Fatal(err)
	}
	if _, err := warm.WaitComplete(15 * time.Second); err != nil {
		t.Fatal(err)
	}
	warm.Close()

	origin.Close()
	time.Sleep(100 * time.Millisecond) // entries age past CacheFreshFor

	client, err := Dial(proxy.Addr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.RequestPage(mainURL, "", ""); err != nil {
		t.Fatal(err)
	}
	note, err := client.WaitComplete(15 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(client.Objects()); got != archive.Len() {
		t.Errorf("stale session received %d objects, want %d", got, archive.Len())
	}
	if note.StaleServes == 0 {
		t.Errorf("note.StaleServes = 0, want stale serves with the origin dead (note=%+v)", note)
	}
	if l := client.SessionLoad(1); l.StaleServes == 0 {
		t.Error("SessionLoad.StaleServes = 0, want note stale serves carried through")
	}
	if st := proxy.CacheStats(); st.StaleServes == 0 {
		t.Errorf("cache recorded no stale serves: %+v", st)
	}
}

// TestResilientBreakerOpensOnDeadOrigin drives sessions at an origin that was
// never reachable: after FailureThreshold consecutive failures the per-origin
// breaker opens and later fetches fail fast instead of dialing, while every
// session still completes (degraded 502 objects, not hung pages).
func TestResilientBreakerOpensOnDeadOrigin(t *testing.T) {
	defer leakcheck.Check(t)()
	archive, mainURL := testArchive()
	origin, err := StartOrigin("127.0.0.1:0", replay.Rewriting{Store: archive})
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := origin.Addr()
	origin.Close() // nothing listens here any more

	proxy, err := StartProxy("127.0.0.1:0", ProxyConfig{
		OriginAddr:  deadAddr,
		Sched:       sched.ConfigIND,
		QuietPeriod: 100 * time.Millisecond,
		FixedRandom: true,
		Resilience: &resilience.Policy{
			Timeout:          time.Second,
			MaxRetries:       0,
			FailureThreshold: 2,
			OpenFor:          10 * time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	for i := 0; i < 3; i++ {
		client, err := Dial(proxy.Addr(), nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := client.RequestPage(mainURL, "", ""); err != nil {
			client.Close()
			t.Fatal(err)
		}
		if _, err := client.WaitComplete(15 * time.Second); err != nil {
			client.Close()
			t.Fatalf("session %d: %v", i, err)
		}
		client.Close()
	}
	rs := proxy.ResilienceStats()
	if rs.BreakerOpens == 0 {
		t.Errorf("breaker never opened against a dead origin: %+v", rs)
	}
	if rs.BreakerFastFails == 0 {
		t.Errorf("no fast-fails recorded on the open breaker: %+v", rs)
	}
}

// TestResilientPolicyValidation rejects a bad policy at StartProxy time.
func TestResilientPolicyValidation(t *testing.T) {
	defer leakcheck.Check(t)()
	_, err := StartProxy("127.0.0.1:0", ProxyConfig{
		OriginAddr: "127.0.0.1:1",
		Sched:      sched.ConfigIND,
		Resilience: &resilience.Policy{Timeout: -time.Second},
	})
	if err == nil {
		t.Fatal("StartProxy accepted a negative resilience timeout")
	}
}
