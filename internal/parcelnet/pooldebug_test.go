//go:build simdebug

package parcelnet

import "testing"

// TestFrameBufDoubleFreePanics pins the simdebug ownership contract: putting
// the same buffer on the free list twice must panic at the second release,
// because two future grabs would alias one backing array.
func TestFrameBufDoubleFreePanics(t *testing.T) {
	buf := grabFrameBuf(600)
	ReleaseFrameBuf(buf)
	defer func() {
		if recover() == nil {
			t.Fatal("double free not detected")
		}
		// Leave the pool consistent for other tests: take the buffer back out.
		grabFrameBuf(600)
	}()
	ReleaseFrameBuf(buf)
}

// TestFrameBufGrabReleaseCycle: the normal grab→release→grab cycle must not
// trip the checker.
func TestFrameBufGrabReleaseCycle(t *testing.T) {
	for i := 0; i < 4; i++ {
		b := grabFrameBuf(2000)
		ReleaseFrameBuf(b)
	}
}
