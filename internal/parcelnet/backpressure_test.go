package parcelnet

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/parcel-go/parcel/internal/httpsim"
	"github.com/parcel-go/parcel/internal/leakcheck"
	"github.com/parcel-go/parcel/internal/replay"
	"github.com/parcel-go/parcel/internal/sched"
)

// bigArchive builds a page heavy enough that admission control has real work
// to do: a padded HTML shell referencing n images of size bytes each.
func bigArchive(n, size int) (*replay.Archive, string) {
	const main = "http://big.test/index.html"
	a := replay.NewArchive()
	var sb strings.Builder
	sb.WriteString("<!DOCTYPE html><html><body>\n")
	sb.WriteString("<!-- " + strings.Repeat("pad", 700) + " -->\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "<img src=\"/img%d.png\">\n", i)
	}
	sb.WriteString("</body></html>")
	a.Record(httpsim.Object{URL: main, ContentType: "text/html", Body: []byte(sb.String())})
	for i := 0; i < n; i++ {
		a.Record(httpsim.Object{
			URL:         fmt.Sprintf("http://big.test/img%d.png", i),
			ContentType: "image/png",
			Body:        []byte(strings.Repeat("x", size)),
		})
	}
	return a, main
}

// gate blocks writers until opened. Wrapping a session's conn with it is the
// deterministic stand-in for a stalled cellular link: the session writer
// blocks exactly where a full TCP send buffer would block it, without
// depending on kernel buffer sizing.
type gate struct {
	mu   sync.Mutex
	cond *sync.Cond
	open bool
}

func newGate() *gate {
	g := &gate{}
	g.cond = sync.NewCond(&g.mu)
	return g
}

func (g *gate) Open() {
	g.mu.Lock()
	g.open = true
	g.cond.Broadcast()
	g.mu.Unlock()
}

func (g *gate) wait() {
	g.mu.Lock()
	for !g.open {
		g.cond.Wait()
	}
	g.mu.Unlock()
}

// gatedConn holds every Write until its gate opens. Close opens the gate so
// a blocked session writer can observe the dead conn and exit.
type gatedConn struct {
	net.Conn
	g *gate
}

func (c *gatedConn) Write(b []byte) (int, error) {
	c.g.wait()
	return c.Conn.Write(b)
}

func (c *gatedConn) Close() error {
	c.g.Open()
	return c.Conn.Close()
}

// TestSlowReaderDefersThenDelivers is the defer path: while the client's link
// is stalled the session fills its push budget and the proxy parks further
// bundles (Deferred, not OOM); when the link drains, every parked object is
// delivered — nothing shed, nothing lost — and the proxy-wide queue never
// exceeded its budget.
func TestSlowReaderDefersThenDelivers(t *testing.T) {
	defer leakcheck.Check(t)()
	archive, mainURL := bigArchive(16, 32<<10)
	origin, err := StartOrigin("127.0.0.1:0", replay.Rewriting{Store: archive})
	if err != nil {
		t.Fatal(err)
	}
	defer origin.Close()
	g := newGate()
	const proxyBudget = 256 << 10
	proxy, err := StartProxy("127.0.0.1:0", ProxyConfig{
		OriginAddr:        origin.Addr(),
		Sched:             sched.ConfigIND,
		QuietPeriod:       time.Second,
		SessionPushBudget: 64 << 10,
		ProxyPushBudget:   proxyBudget,
		WrapConn:          func(c net.Conn) net.Conn { return &gatedConn{Conn: c, g: g} },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	defer g.Open() // writers must be unblocked before proxy.Close waits on them

	// Sample the proxy-wide reservation while the session queues.
	var maxQueued atomic.Int64
	stop := make(chan struct{})
	sampled := make(chan struct{})
	go func() {
		defer close(sampled)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if q := proxy.QueuedBytes(); q > maxQueued.Load() {
				maxQueued.Store(q)
			}
			time.Sleep(time.Millisecond)
		}
	}()

	client, err := Dial(proxy.Addr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.RequestPage(mainURL, "", ""); err != nil {
		t.Fatal(err)
	}
	// The stalled link fills the session budget: deferrals appear.
	waitFor(t, 5*time.Second, func() bool { return proxy.DeferredTotal() > 0 })
	if got := len(client.Objects()); got == archive.Len() {
		t.Fatal("client received everything through a closed gate")
	}
	g.Open()
	note, err := client.WaitComplete(15 * time.Second)
	close(stop)
	<-sampled
	if err != nil {
		t.Fatal(err)
	}
	if note.ObjectsDeferred == 0 {
		t.Errorf("completion note reports no deferrals: %+v", note)
	}
	if note.ObjectsShed != 0 {
		t.Errorf("deferred pushes were shed: %+v", note)
	}
	if note.ObjectsPushed != archive.Len() {
		t.Errorf("pushed %d, want %d", note.ObjectsPushed, archive.Len())
	}
	waitFor(t, 5*time.Second, func() bool { return len(client.Objects()) == archive.Len() })
	if mq := maxQueued.Load(); mq > proxyBudget {
		t.Errorf("queued bytes peaked at %d, above the %d budget", mq, proxyBudget)
	}
	waitFor(t, 5*time.Second, func() bool { return proxy.QueuedBytes() == 0 })
}

// TestProxyBudgetShedsToDirectOrigin is the shed path: a proxy-wide budget
// smaller than any bundle can never admit a push, so every object is shed —
// and a client with a direct-origin path still completes the page from the
// origin, guided by the shed notes.
func TestProxyBudgetShedsToDirectOrigin(t *testing.T) {
	defer leakcheck.Check(t)()
	archive, mainURL := bigArchive(6, 8<<10)
	origin, err := StartOrigin("127.0.0.1:0", replay.Rewriting{Store: archive})
	if err != nil {
		t.Fatal(err)
	}
	defer origin.Close()
	proxy, err := StartProxy("127.0.0.1:0", ProxyConfig{
		OriginAddr:      origin.Addr(),
		Sched:           sched.ConfigIND,
		QuietPeriod:     300 * time.Millisecond,
		ProxyPushBudget: 1 << 10, // below any bundle: everything sheds
	})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	client, err := DialConfig(proxy.Addr(), ClientConfig{DirectOrigin: origin.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.RequestPage(mainURL, "", ""); err != nil {
		t.Fatal(err)
	}
	note, err := client.WaitComplete(15 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if note.ObjectsPushed != 0 || note.ObjectsShed != archive.Len() {
		t.Fatalf("want everything shed: %+v", note)
	}
	if proxy.ShedTotal() != int64(archive.Len()) {
		t.Errorf("proxy shed counter = %d, want %d", proxy.ShedTotal(), archive.Len())
	}
	// The page still completes: every object is reachable, fetched direct.
	for _, u := range archive.URLs() {
		if _, err := client.Object(u, 10*time.Second); err != nil {
			t.Fatalf("shed object %s unreachable: %v", u, err)
		}
	}
	if client.ShedReceived != archive.Len() {
		t.Errorf("client saw %d shed notices, want %d", client.ShedReceived, archive.Len())
	}
	if client.DirectFetches == 0 {
		t.Error("no direct fetches despite universal shedding")
	}
	if proxy.QueuedBytes() != 0 {
		t.Errorf("queued bytes = %d after completion, want 0", proxy.QueuedBytes())
	}
}

// TestSlowTenantDoesNotStallFastTenants pins the isolation property: one
// tenant behind a stalled link (its pushes deferring, eventually shedding at
// completion) must not delay a normally-connected tenant on the same proxy.
func TestSlowTenantDoesNotStallFastTenants(t *testing.T) {
	defer leakcheck.Check(t)()
	archive, mainURL := bigArchive(16, 32<<10)
	origin, err := StartOrigin("127.0.0.1:0", replay.Rewriting{Store: archive})
	if err != nil {
		t.Fatal(err)
	}
	defer origin.Close()
	// Gate only the first accepted conn — the slow tenant dials first.
	g := newGate()
	var accepted atomic.Int64
	proxy, err := StartProxy("127.0.0.1:0", ProxyConfig{
		OriginAddr:        origin.Addr(),
		Sched:             sched.ConfigIND,
		QuietPeriod:       500 * time.Millisecond,
		Shards:            4,
		CacheBytes:        4 << 20,
		SessionPushBudget: 64 << 10,
		WrapConn: func(c net.Conn) net.Conn {
			if accepted.Add(1) == 1 {
				return &gatedConn{Conn: c, g: g}
			}
			return c
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	defer g.Open()

	slow, err := DialConfig(proxy.Addr(), ClientConfig{DirectOrigin: origin.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer slow.Close()
	if err := slow.RequestPage(mainURL, "", ""); err != nil {
		t.Fatal(err)
	}
	// The slow tenant's writer is jammed before the fast tenant arrives.
	waitFor(t, 5*time.Second, func() bool { return proxy.DeferredTotal() > 0 })

	fast, err := Dial(proxy.Addr(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer fast.Close()
	start := time.Now()
	if err := fast.RequestPage(mainURL, "", ""); err != nil {
		t.Fatal(err)
	}
	note, err := fast.WaitComplete(10 * time.Second)
	if err != nil {
		t.Fatalf("fast tenant stalled behind the slow one: %v", err)
	}
	// Transient deferrals of the fast tenant's own making (its reader can lag
	// briefly) are fine — the isolation property is that nothing of its page
	// is shed and it completes promptly.
	if note.ObjectsShed != 0 {
		t.Errorf("fast tenant had pushes shed: %+v", note)
	}
	if len(fast.Objects()) != archive.Len() {
		t.Errorf("fast tenant got %d objects, want %d", len(fast.Objects()), archive.Len())
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("fast tenant took %v with a slow tenant present", d)
	}

	// Unjam the slow tenant: it completes too, via late delivery plus
	// direct-origin fetches of whatever its completion shed.
	g.Open()
	snote, err := slow.WaitComplete(15 * time.Second)
	if err != nil {
		t.Fatalf("slow tenant never completed: %v", err)
	}
	if snote.ObjectsPushed+snote.ObjectsShed < archive.Len() {
		t.Errorf("slow tenant lost objects: %+v", snote)
	}
	for _, u := range archive.URLs() {
		if _, err := slow.Object(u, 10*time.Second); err != nil {
			t.Fatalf("slow tenant missing %s: %v", u, err)
		}
	}
}

// TestDuplicatePageRequestTearsDownSession pins the double-TPageRequest fix:
// a second page request on one connection must tear the session down instead
// of replacing s.mux/s.bundler in place — the replaced mux's queued bytes
// were reserved against the proxy-wide budget and nothing would ever drain
// them, shrinking the budget for every tenant until restart. After teardown
// the reservation must return to zero.
func TestDuplicatePageRequestTearsDownSession(t *testing.T) {
	defer leakcheck.Check(t)()
	archive, mainURL := bigArchive(8, 16<<10)
	origin, err := StartOrigin("127.0.0.1:0", replay.Rewriting{Store: archive})
	if err != nil {
		t.Fatal(err)
	}
	defer origin.Close()
	proxy, err := StartProxy("127.0.0.1:0", ProxyConfig{
		OriginAddr:  origin.Addr(),
		Sched:       sched.ConfigIND,
		QuietPeriod: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	conn, err := net.Dial("tcp", proxy.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fw := NewFrameWriter(conn)
	req := PageRequest{URL: mainURL, Mux: true}
	if err := fw.WriteJSON(TPageRequest, &req); err != nil {
		t.Fatal(err)
	}
	if err := fw.WriteJSON(TPageRequest, &req); err != nil {
		t.Fatal(err)
	}
	// The proxy must close the connection on the duplicate: drain to EOF.
	if err := conn.SetReadDeadline(time.Now().Add(10 * time.Second)); err != nil {
		t.Fatal(err)
	}
	for {
		_, payload, err := ReadFramePooled(conn)
		if err != nil {
			break
		}
		ReleaseFrameBuf(payload)
	}
	// Teardown must hand every queued byte back to the proxy-wide budget.
	waitFor(t, 5*time.Second, func() bool { return proxy.QueuedBytes() == 0 })
}
