package parcelnet

import (
	"testing"
	"time"

	"github.com/parcel-go/parcel/internal/leakcheck"
	"github.com/parcel-go/parcel/internal/netem"
	"github.com/parcel-go/parcel/internal/replay"
	"github.com/parcel-go/parcel/internal/sched"
)

// TestLoadgenSmoke is the CI-sized load run: a modest fleet over real TCP
// with netem shaping, asserting the report's core invariants — everyone
// completes, the shared cache actually shares, and egress is attributed.
func TestLoadgenSmoke(t *testing.T) {
	defer leakcheck.Check(t)()
	archive, mainURL := testArchive()
	res, err := RunLoadgen(LoadgenConfig{
		Clients:     25,
		Store:       replay.Rewriting{Store: archive},
		URLs:        []string{mainURL},
		Sched:       sched.ConfigONLD,
		Shards:      4,
		CacheBytes:  4 << 20,
		Netem:       &netem.Params{Latency: 5 * time.Millisecond, Bps: 4 << 20},
		FixedRandom: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := res.Report
	if r.Sessions != 25 || r.Completed != 25 {
		t.Fatalf("completion: %+v", r)
	}
	if r.CacheHitRate <= 0 {
		t.Errorf("cache hit rate = %v, want > 0", r.CacheHitRate)
	}
	if !(r.P50 > 0 && r.P50 <= r.P90 && r.P90 <= r.P99) {
		t.Errorf("percentiles unordered: p50=%v p90=%v p99=%v", r.P50, r.P90, r.P99)
	}
	if r.EgressPerSession < float64(archive.TotalBytes()) {
		t.Errorf("egress/session = %v, below page weight %d", r.EgressPerSession, archive.TotalBytes())
	}
	// Cross-session sharing: the fleet's origin bytes are one page copy.
	if r.OriginBytes != archive.TotalBytes() {
		t.Errorf("fleet origin bytes = %d, want %d", r.OriginBytes, archive.TotalBytes())
	}
	if res.SessionsServed != 25 {
		t.Errorf("sessions served = %d", res.SessionsServed)
	}
	if res.Cache.Hits+res.Cache.Shared == 0 {
		t.Errorf("cache never shared: %+v", res.Cache)
	}
}

// TestLoadgen500Tenants is the scale gate from the issue: ≥500 concurrent
// sessions through one proxy complete leak-free. Unshaped (the point is
// session-machinery scale, not link emulation) and skipped in -short runs.
func TestLoadgen500Tenants(t *testing.T) {
	if testing.Short() {
		t.Skip("500-tenant run skipped in -short mode")
	}
	defer leakcheck.Check(t)()
	archive, mainURL := testArchive()
	res, err := RunLoadgen(LoadgenConfig{
		Clients:     500,
		Store:       replay.Rewriting{Store: archive},
		URLs:        []string{mainURL},
		Sched:       sched.ConfigONLD,
		CacheBytes:  16 << 20,
		Timeout:     120 * time.Second,
		FixedRandom: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := res.Report
	if r.Completed != 500 {
		t.Fatalf("only %d/500 sessions completed (%d failed)", r.Completed, r.Failed)
	}
	if r.CacheHitRate <= 0.9 {
		t.Errorf("cache hit rate = %v over 500 sessions of one page, want > 0.9", r.CacheHitRate)
	}
	if r.OriginBytes != archive.TotalBytes() {
		t.Errorf("fleet origin bytes = %d, want one page copy %d", r.OriginBytes, archive.TotalBytes())
	}
}
