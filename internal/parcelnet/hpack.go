package parcelnet

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// HPACK-lite: the compact metadata encoding carried by TStreamOpen frames.
// Object metadata used to ride full JSON; on a page whose objects share a
// few origins that is mostly repeated scheme://host/ prefixes. The codec
// keeps a static table of common content types and a per-connection dynamic
// table of URL prefixes: the first URL from an origin is sent literal (and
// both sides insert its prefix), every later one as [prefix index][suffix].
// Encoder and decoder stay in sync because frames are delivered in order on
// one connection — there is no out-of-band table update.

// muxStaticCT is the static content-type table (1-based indices on the wire;
// 0 means literal). Order is part of the wire protocol — append only.
var muxStaticCT = []string{
	"text/html",
	"text/css",
	"application/javascript",
	"text/javascript",
	"image/png",
	"image/jpeg",
	"image/gif",
	"application/octet-stream",
	"text/plain",
	"application/json",
}

// urlPrefix returns the origin prefix of u through the first path slash
// ("scheme://host/"), or "" when u has no such shape.
func urlPrefix(u string) string {
	i := strings.Index(u, "://")
	if i < 0 {
		return ""
	}
	j := strings.IndexByte(u[i+3:], '/')
	if j < 0 {
		return ""
	}
	return u[:i+3+j+1]
}

// MetaEncoder is the sending half of the HPACK-lite codec. The zero value is
// ready to use; one encoder serves one connection.
type MetaEncoder struct {
	prefix map[string]uint64 // origin prefix -> 1-based dynamic index
}

// AppendMeta appends the encoded (url, contentType, status) tuple to dst and
// returns the extended slice. Repeat-origin URLs shrink to a table index
// plus the path suffix.
func (e *MetaEncoder) AppendMeta(dst []byte, url, contentType string, status int) []byte {
	p := urlPrefix(url)
	if idx, ok := e.prefix[p]; ok && p != "" {
		dst = binary.AppendUvarint(dst, idx)
		suffix := url[len(p):]
		dst = binary.AppendUvarint(dst, uint64(len(suffix)))
		dst = append(dst, suffix...)
	} else {
		dst = binary.AppendUvarint(dst, 0)
		dst = binary.AppendUvarint(dst, uint64(len(url)))
		dst = append(dst, url...)
		if p != "" {
			if e.prefix == nil {
				e.prefix = make(map[string]uint64)
			}
			e.prefix[p] = uint64(len(e.prefix)) + 1
		}
	}
	ct := 0
	for i, s := range muxStaticCT {
		if s == contentType {
			ct = i + 1
			break
		}
	}
	dst = binary.AppendUvarint(dst, uint64(ct))
	if ct == 0 {
		dst = binary.AppendUvarint(dst, uint64(len(contentType)))
		dst = append(dst, contentType...)
	}
	dst = binary.AppendUvarint(dst, uint64(status))
	return dst
}

// MetaDecoder is the receiving half; it mirrors the encoder's dynamic-table
// insertions. The zero value is ready to use; one decoder serves one
// connection.
type MetaDecoder struct {
	prefix []string // dynamic table, index i on the wire = prefix[i-1]
}

var errMetaTruncated = fmt.Errorf("parcelnet: truncated stream metadata")

// readUvarint is binary.Uvarint with explicit truncation/overflow errors.
func readUvarint(p []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, nil, errMetaTruncated
	}
	return v, p[n:], nil
}

// readString reads a uvarint-length-prefixed string.
func readString(p []byte) (string, []byte, error) {
	n, p, err := readUvarint(p)
	if err != nil {
		return "", nil, err
	}
	if n > uint64(len(p)) {
		return "", nil, errMetaTruncated
	}
	return string(p[:n]), p[n:], nil
}

// ReadMeta decodes one metadata tuple from p, returning the remaining bytes.
func (d *MetaDecoder) ReadMeta(p []byte) (url, contentType string, status int, rest []byte, err error) {
	idx, p, err := readUvarint(p)
	if err != nil {
		return "", "", 0, nil, err
	}
	if idx == 0 {
		url, p, err = readString(p)
		if err != nil {
			return "", "", 0, nil, err
		}
		if pre := urlPrefix(url); pre != "" {
			d.prefix = append(d.prefix, pre)
		}
	} else {
		if idx > uint64(len(d.prefix)) {
			return "", "", 0, nil, fmt.Errorf("parcelnet: unknown URL prefix index %d", idx)
		}
		var suffix string
		suffix, p, err = readString(p)
		if err != nil {
			return "", "", 0, nil, err
		}
		url = d.prefix[idx-1] + suffix
	}
	ct, p, err := readUvarint(p)
	if err != nil {
		return "", "", 0, nil, err
	}
	switch {
	case ct == 0:
		contentType, p, err = readString(p)
		if err != nil {
			return "", "", 0, nil, err
		}
	case ct <= uint64(len(muxStaticCT)):
		contentType = muxStaticCT[ct-1]
	default:
		return "", "", 0, nil, fmt.Errorf("parcelnet: unknown content-type index %d", ct)
	}
	st, p, err := readUvarint(p)
	if err != nil {
		return "", "", 0, nil, err
	}
	return url, contentType, int(st), p, nil
}
