package parcelnet

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/parcel-go/parcel/internal/mhtml"
	"github.com/parcel-go/parcel/internal/sched"
)

// ProxyConfig tunes the real-network PARCEL proxy.
type ProxyConfig struct {
	// OriginAddr is where every logical domain is served (the replay
	// origin); production deployments would resolve DNS instead.
	OriginAddr string
	// Sched is the bundle schedule.
	Sched sched.Config
	// QuietPeriod is the §4.5 completion heuristic window.
	QuietPeriod time.Duration
	// IdleTimeout reaps sessions whose client has gone silent: the read side
	// is deadlined per frame, so a dead client frees its session (and the
	// resources behind it) instead of pinning them forever. 0 means the
	// 2-minute default; negative disables the deadline.
	IdleTimeout time.Duration
	// FixedRandom applies the §7.3 replay rewrite in page JS.
	FixedRandom bool
	// Logf, when set, receives diagnostic lines.
	Logf func(format string, args ...any)
}

// Proxy is a running real-network PARCEL proxy.
type Proxy struct {
	cfg ProxyConfig
	ln  net.Listener
	wg  sync.WaitGroup

	mu     sync.Mutex
	active map[*session]struct{}
	served int
	closed bool
}

// StartProxy listens on addr and serves PARCEL sessions.
func StartProxy(addr string, cfg ProxyConfig) (*Proxy, error) {
	if cfg.OriginAddr == "" {
		return nil, fmt.Errorf("parcelnet: ProxyConfig.OriginAddr required")
	}
	if cfg.QuietPeriod == 0 {
		cfg.QuietPeriod = 2 * time.Second
	}
	if cfg.IdleTimeout == 0 {
		cfg.IdleTimeout = 2 * time.Minute
	}
	if err := cfg.Sched.Validate(); err != nil {
		return nil, err
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	p := &Proxy{cfg: cfg, ln: ln, active: make(map[*session]struct{})}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Close stops accepting sessions, tears down the active ones, and waits for
// their goroutines to exit.
func (p *Proxy) Close() error {
	p.mu.Lock()
	p.closed = true
	conns := make([]net.Conn, 0, len(p.active))
	for s := range p.active {
		conns = append(conns, s.conn)
	}
	p.mu.Unlock()
	err := p.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	p.wg.Wait()
	return err
}

// Sessions returns the number of currently active sessions.
func (p *Proxy) Sessions() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.active)
}

// SessionsServed returns the total number of sessions accepted so far.
func (p *Proxy) SessionsServed() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.served
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.serve(conn)
		}()
	}
}

// session is the per-connection proxy state.
type session struct {
	proxy *Proxy
	conn  net.Conn
	fw    *FrameWriter

	mu           sync.Mutex
	bundler      *sched.Bundler
	cache        map[string]Object
	have         map[string]bool // resume manifest: objects the client holds
	quiet        *time.Timer
	onloadSeen   bool
	completeSent bool
	closed       bool
	pushed       int
	pushedBytes  int64
	skipped      int

	fetch *OriginFetcher
}

func (p *Proxy) serve(conn net.Conn) {
	s := &session{
		proxy: p,
		conn:  conn,
		fw:    NewFrameWriter(conn),
		cache: make(map[string]Object),
		fetch: NewOriginFetcher(p.cfg.OriginAddr),
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		conn.Close()
		return
	}
	p.served++
	p.active[s] = struct{}{}
	p.mu.Unlock()
	defer s.teardown()
	for {
		if p.cfg.IdleTimeout > 0 {
			if err := conn.SetReadDeadline(time.Now().Add(p.cfg.IdleTimeout)); err != nil {
				p.cfg.Logf("set read deadline: %v", err)
				return
			}
		}
		typ, payload, err := ReadFrame(conn)
		if err != nil {
			return
		}
		switch typ {
		case TPageRequest:
			var req PageRequest
			if err := json.Unmarshal(payload, &req); err != nil {
				p.cfg.Logf("bad page request: %v", err)
				return
			}
			s.startPage(req)
		case TObjectRequest:
			var req ObjectRequest
			if err := json.Unmarshal(payload, &req); err != nil {
				p.cfg.Logf("bad object request: %v", err)
				return
			}
			go s.serveFallback(req.URL)
		default:
			p.cfg.Logf("unexpected frame type %d", typ)
		}
	}
}

// teardown releases everything a session holds: the connection, the pending
// quiet timer, and the fetcher's idle origin connections. It runs exactly
// once, when serve returns, and unregisters the session from the proxy.
func (s *session) teardown() {
	s.mu.Lock()
	s.closed = true
	if s.quiet != nil {
		s.quiet.Stop()
		s.quiet = nil
	}
	s.mu.Unlock()
	s.conn.Close()
	s.fetch.Client.CloseIdleConnections()
	p := s.proxy
	p.mu.Lock()
	delete(p.active, s)
	p.mu.Unlock()
}

func (s *session) startPage(req PageRequest) {
	cfg := s.proxy.cfg
	cfg.Logf("page request: %s (ua=%q, have=%d)", req.URL, req.UserAgent, len(req.Have))
	s.mu.Lock()
	s.have = make(map[string]bool, len(req.Have))
	for _, u := range req.Have {
		s.have[u] = true
	}
	s.bundler = sched.NewBundler(cfg.Sched, s.flushLocked)
	s.mu.Unlock()

	crawl := newCrawler(s.fetch, cfg.FixedRandom,
		func(obj Object) { s.collect(obj) },
		func() { s.onLoad() },
		func() { /* completion handled by the quiet heuristic */ },
	)
	crawl.start(req.URL)
}

// collect feeds one crawled object into the schedule and resets the §4.5
// inactivity window. Objects the resume manifest already lists are cached
// (they can still be served via fallback) but not re-pushed.
func (s *session) collect(obj Object) {
	s.mu.Lock()
	s.cache[obj.URL] = obj
	if s.have[obj.URL] {
		s.skipped++
		if s.onloadSeen {
			s.armQuietLocked()
		}
		s.mu.Unlock()
		return
	}
	if s.completeSent {
		s.mu.Unlock()
		s.push([]sched.Item{itemFromObject(obj)}, sched.FlushComplete)
		return
	}
	s.bundler.Add(itemFromObject(obj))
	if s.onloadSeen {
		s.armQuietLocked()
	}
	s.mu.Unlock()
}

func (s *session) onLoad() {
	s.mu.Lock()
	s.onloadSeen = true
	s.bundler.OnLoad()
	s.armQuietLocked()
	s.mu.Unlock()
}

func (s *session) armQuietLocked() {
	if s.closed {
		return
	}
	if s.quiet != nil {
		s.quiet.Stop()
	}
	s.quiet = time.AfterFunc(s.proxy.cfg.QuietPeriod, s.declareComplete)
}

func (s *session) declareComplete() {
	s.mu.Lock()
	if s.completeSent || s.closed {
		s.mu.Unlock()
		return
	}
	s.completeSent = true
	s.bundler.Complete()
	note := CompleteNote{ObjectsPushed: s.pushed, BytesPushed: s.pushedBytes, ObjectsSkipped: s.skipped}
	s.mu.Unlock()
	if err := s.fw.WriteJSON(TComplete, note); err != nil {
		s.proxy.cfg.Logf("send complete: %v", err)
	}
}

func itemFromObject(o Object) sched.Item {
	return sched.Item{URL: o.URL, ContentType: o.ContentType, Status: o.Status, Body: o.Body}
}

// flushLocked transmits one bundle; the bundler invokes it with s.mu held.
func (s *session) flushLocked(items []sched.Item, reason sched.FlushReason) {
	s.pushed += len(items)
	for _, it := range items {
		s.pushedBytes += int64(len(it.Body))
	}
	// Encode and write outside the lock via goroutine-safe FrameWriter;
	// ordering is preserved because flushes happen under s.mu in order and
	// the encode below is done before releasing... encoding is cheap enough
	// to do inline.
	parts := make([]mhtml.Part, len(items))
	for i, it := range items {
		parts[i] = mhtml.Part{URL: it.URL, ContentType: it.ContentType, Status: it.Status, Body: it.Body}
	}
	if err := s.fw.Write(TBundle, mhtml.Encode(parts)); err != nil {
		s.proxy.cfg.Logf("send bundle: %v", err)
	}
}

// push sends items outside the bundler path (post-completion stragglers).
func (s *session) push(items []sched.Item, reason sched.FlushReason) {
	s.mu.Lock()
	s.flushLocked(items, reason)
	s.mu.Unlock()
}

// serveFallback answers a missing-object request from cache or the origin.
func (s *session) serveFallback(url string) {
	s.mu.Lock()
	obj, ok := s.cache[url]
	s.mu.Unlock()
	if !ok {
		body, ct, status, err := s.fetch.Fetch(url)
		if err != nil {
			s.proxy.cfg.Logf("fallback fetch %s: %v", url, err)
			status = 502
		}
		obj = Object{URL: url, ContentType: ct, Status: status, Body: body}
		s.mu.Lock()
		s.cache[url] = obj
		s.mu.Unlock()
	}
	enc := mhtml.Encode([]mhtml.Part{{URL: obj.URL, ContentType: obj.ContentType, Status: obj.Status, Body: obj.Body}})
	if err := s.fw.Write(TObjectResponse, enc); err != nil {
		s.proxy.cfg.Logf("send object response: %v", err)
	}
}
