package parcelnet

import (
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/parcel-go/parcel/internal/mhtml"
	"github.com/parcel-go/parcel/internal/sched"
)

// ProxyConfig tunes the real-network PARCEL proxy.
type ProxyConfig struct {
	// OriginAddr is where every logical domain is served (the replay
	// origin); production deployments would resolve DNS instead.
	OriginAddr string
	// Sched is the bundle schedule.
	Sched sched.Config
	// QuietPeriod is the §4.5 completion heuristic window.
	QuietPeriod time.Duration
	// FixedRandom applies the §7.3 replay rewrite in page JS.
	FixedRandom bool
	// Logf, when set, receives diagnostic lines.
	Logf func(format string, args ...any)
}

// Proxy is a running real-network PARCEL proxy.
type Proxy struct {
	cfg ProxyConfig
	ln  net.Listener

	mu       sync.Mutex
	sessions int
}

// StartProxy listens on addr and serves PARCEL sessions.
func StartProxy(addr string, cfg ProxyConfig) (*Proxy, error) {
	if cfg.OriginAddr == "" {
		return nil, fmt.Errorf("parcelnet: ProxyConfig.OriginAddr required")
	}
	if cfg.QuietPeriod == 0 {
		cfg.QuietPeriod = 2 * time.Second
	}
	if err := cfg.Sched.Validate(); err != nil {
		return nil, err
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	p := &Proxy{cfg: cfg, ln: ln}
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Close stops accepting sessions.
func (p *Proxy) Close() error { return p.ln.Close() }

// Sessions returns the number of sessions served so far.
func (p *Proxy) Sessions() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.sessions
}

func (p *Proxy) acceptLoop() {
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		p.sessions++
		p.mu.Unlock()
		go p.serve(conn)
	}
}

// session is the per-connection proxy state.
type session struct {
	proxy *Proxy
	fw    *FrameWriter

	mu           sync.Mutex
	bundler      *sched.Bundler
	cache        map[string]Object
	quiet        *time.Timer
	onloadSeen   bool
	completeSent bool
	pushed       int
	pushedBytes  int64

	fetch *OriginFetcher
}

func (p *Proxy) serve(conn net.Conn) {
	defer conn.Close()
	s := &session{
		proxy: p,
		fw:    NewFrameWriter(conn),
		cache: make(map[string]Object),
		fetch: NewOriginFetcher(p.cfg.OriginAddr),
	}
	for {
		typ, payload, err := ReadFrame(conn)
		if err != nil {
			return
		}
		switch typ {
		case TPageRequest:
			var req PageRequest
			if err := json.Unmarshal(payload, &req); err != nil {
				p.cfg.Logf("bad page request: %v", err)
				return
			}
			s.startPage(req)
		case TObjectRequest:
			var req ObjectRequest
			if err := json.Unmarshal(payload, &req); err != nil {
				p.cfg.Logf("bad object request: %v", err)
				return
			}
			go s.serveFallback(req.URL)
		default:
			p.cfg.Logf("unexpected frame type %d", typ)
		}
	}
}

func (s *session) startPage(req PageRequest) {
	cfg := s.proxy.cfg
	cfg.Logf("page request: %s (ua=%q)", req.URL, req.UserAgent)
	s.mu.Lock()
	s.bundler = sched.NewBundler(cfg.Sched, s.flushLocked)
	s.mu.Unlock()

	crawl := newCrawler(s.fetch, cfg.FixedRandom,
		func(obj Object) { s.collect(obj) },
		func() { s.onLoad() },
		func() { /* completion handled by the quiet heuristic */ },
	)
	crawl.start(req.URL)
}

// collect feeds one crawled object into the schedule and resets the §4.5
// inactivity window.
func (s *session) collect(obj Object) {
	s.mu.Lock()
	s.cache[obj.URL] = obj
	if s.completeSent {
		s.mu.Unlock()
		s.push([]sched.Item{itemFromObject(obj)}, sched.FlushComplete)
		return
	}
	s.bundler.Add(itemFromObject(obj))
	if s.onloadSeen {
		s.armQuietLocked()
	}
	s.mu.Unlock()
}

func (s *session) onLoad() {
	s.mu.Lock()
	s.onloadSeen = true
	s.bundler.OnLoad()
	s.armQuietLocked()
	s.mu.Unlock()
}

func (s *session) armQuietLocked() {
	if s.quiet != nil {
		s.quiet.Stop()
	}
	s.quiet = time.AfterFunc(s.proxy.cfg.QuietPeriod, s.declareComplete)
}

func (s *session) declareComplete() {
	s.mu.Lock()
	if s.completeSent {
		s.mu.Unlock()
		return
	}
	s.completeSent = true
	s.bundler.Complete()
	note := CompleteNote{ObjectsPushed: s.pushed, BytesPushed: s.pushedBytes}
	s.mu.Unlock()
	if err := s.fw.WriteJSON(TComplete, note); err != nil {
		s.proxy.cfg.Logf("send complete: %v", err)
	}
}

func itemFromObject(o Object) sched.Item {
	return sched.Item{URL: o.URL, ContentType: o.ContentType, Status: o.Status, Body: o.Body}
}

// flushLocked transmits one bundle; the bundler invokes it with s.mu held.
func (s *session) flushLocked(items []sched.Item, reason sched.FlushReason) {
	s.pushed += len(items)
	for _, it := range items {
		s.pushedBytes += int64(len(it.Body))
	}
	// Encode and write outside the lock via goroutine-safe FrameWriter;
	// ordering is preserved because flushes happen under s.mu in order and
	// the encode below is done before releasing... encoding is cheap enough
	// to do inline.
	parts := make([]mhtml.Part, len(items))
	for i, it := range items {
		parts[i] = mhtml.Part{URL: it.URL, ContentType: it.ContentType, Status: it.Status, Body: it.Body}
	}
	if err := s.fw.Write(TBundle, mhtml.Encode(parts)); err != nil {
		s.proxy.cfg.Logf("send bundle: %v", err)
	}
}

// push sends items outside the bundler path (post-completion stragglers).
func (s *session) push(items []sched.Item, reason sched.FlushReason) {
	s.mu.Lock()
	s.flushLocked(items, reason)
	s.mu.Unlock()
}

// serveFallback answers a missing-object request from cache or the origin.
func (s *session) serveFallback(url string) {
	s.mu.Lock()
	obj, ok := s.cache[url]
	s.mu.Unlock()
	if !ok {
		body, ct, status, err := s.fetch.Fetch(url)
		if err != nil {
			s.proxy.cfg.Logf("fallback fetch %s: %v", url, err)
			status = 502
		}
		obj = Object{URL: url, ContentType: ct, Status: status, Body: body}
		s.mu.Lock()
		s.cache[url] = obj
		s.mu.Unlock()
	}
	enc := mhtml.Encode([]mhtml.Part{{URL: obj.URL, ContentType: obj.ContentType, Status: obj.Status, Body: obj.Body}})
	if err := s.fw.Write(TObjectResponse, enc); err != nil {
		s.proxy.cfg.Logf("send object response: %v", err)
	}
}
